// Privacy audit walkthrough: what Theorem 1 actually bounds, shown on the
// paper's own Figure 1 example log.
//
// The audit computes, for a concrete count vector x:
//   * Equation 3's worst-case output probability ratio (Condition 2), and
//   * Equation 2's worst-case user leak probability Pr[R(D) in Omega_1]
//     (Condition 3),
// and compares them against e^eps and delta. The example demonstrates a
// compliant solution, a Condition-1 violation (emitting a unique pair), and
// the exposure growth as counts scale.
#include <iostream>
#include <vector>

#include "core/audit.h"
#include "core/oump.h"
#include "log/preprocess.h"
#include "log/search_log.h"

using namespace privsan;

namespace {

SearchLog Figure1Log() {
  SearchLogBuilder builder;
  builder.Add("081", "pregnancy test nyc", "medicinenet.com", 2);
  builder.Add("081", "book", "amazon.com", 3);
  builder.Add("081", "google", "google.com", 15);
  builder.Add("082", "google", "google.com", 7);
  builder.Add("082", "car price", "kbb.com", 2);
  builder.Add("082", "diabetes medecine", "walmart.com", 1);
  builder.Add("083", "google", "google.com", 17);
  builder.Add("083", "car price", "kbb.com", 5);
  builder.Add("083", "book", "amazon.com", 1);
  return builder.Build();
}

}  // namespace

int main() {
  SearchLog raw = Figure1Log();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  std::cout << "privacy parameters: " << params.ToString() << "\n\n";

  // --- A Condition-1 violation: emitting a unique pair. -------------------
  {
    std::vector<uint64_t> x(raw.num_pairs(), 0);
    x[raw.FindPair("pregnancy test nyc", "medicinenet.com").value()] = 1;
    AuditReport report = AuditSolution(raw, params, x).value();
    std::cout << "emitting user 081's unique pair once:\n  "
              << report.ToString() << "\n"
              << "  -> the pair identifies 081 with certainty (leak "
                 "probability 1), which no (eps, delta) can absorb.\n\n";
  }

  // --- The optimal compliant solution. -------------------------------------
  SearchLog log = RemoveUniquePairs(raw).log;
  OumpResult oump = SolveOump(log, params).value();
  {
    AuditReport report = AuditSolution(log, params, oump.x).value();
    std::cout << "O-UMP optimal counts on the preprocessed log (lambda = "
              << oump.lambda << "):\n  " << report.ToString() << "\n\n";
  }

  // --- Exposure as counts scale beyond the optimum. ------------------------
  std::cout << "scaling the optimal counts k-fold:\n";
  for (uint64_t k : {1, 2, 3, 5}) {
    std::vector<uint64_t> scaled(oump.x);
    for (uint64_t& v : scaled) v *= k;
    AuditReport report = AuditSolution(log, params, scaled).value();
    std::cout << "  k=" << k << ": max ratio = " << report.max_ratio
              << " (<= e^eps = 2? " << (report.condition2_ok ? "yes" : "NO")
              << "), max leak = " << report.max_leak_probability
              << " (<= delta = 0.5? " << (report.condition3_ok ? "yes" : "NO")
              << ")\n";
  }

  // --- The epsilon frontier for a fixed count vector. ----------------------
  std::cout << "\nsmallest e^eps accepting the 2x-scaled counts (delta "
               "fixed at 0.9):\n";
  std::vector<uint64_t> doubled(oump.x);
  for (uint64_t& v : doubled) v *= 2;
  for (double e_eps : {1.5, 2.0, 3.0, 4.0, 6.0}) {
    AuditReport report =
        AuditSolution(log, PrivacyParams::FromEEpsilon(e_eps, 0.9), doubled)
            .value();
    std::cout << "  e^eps = " << e_eps << ": "
              << (report.satisfies_privacy ? "private" : "violated") << "\n";
  }
  return 0;
}
