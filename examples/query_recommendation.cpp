// Query recommendation scenario (the F-UMP use case from the paper's
// introduction): a search engine wants to release a sanitized log from which
// a downstream team builds query -> url click-through recommendations.
// Recommendation quality depends on the *frequent* query-url pairs keeping
// their relative supports, which is exactly what F-UMP maximizes.
//
// The example sanitizes a workload with F-UMP, then compares the top-N
// click-through ranking mined from the input against the one mined from the
// sanitized output, alongside the paper's Precision/Recall metrics.
#include <algorithm>
#include <iomanip>
#include <iostream>
#include <vector>

#include "core/sanitizer.h"
#include "metrics/utility_metrics.h"
#include "synth/generator.h"

using namespace privsan;

namespace {

// Returns pairs sorted by descending count: a trivial "recommendation
// ranking" (most clicked query-url associations first).
std::vector<std::pair<std::string, uint64_t>> TopPairs(const SearchLog& log,
                                                       size_t n) {
  std::vector<std::pair<std::string, uint64_t>> ranked;
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    ranked.emplace_back(log.query_name(log.pair_query(p)) + " -> " +
                            log.url_name(log.pair_url(p)),
                        log.pair_total(p));
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (ranked.size() > n) ranked.resize(n);
  return ranked;
}

}  // namespace

int main() {
  SyntheticLogConfig config = TinyConfig();
  config.num_events = 6000;
  config.num_users = 120;
  config.num_queries = 800;
  SearchLog input = GenerateSearchLog(config).value();

  const double min_support = 1.0 / 200;

  SanitizerConfig sanitizer_config;
  sanitizer_config.privacy = PrivacyParams::FromEEpsilon(2.0, 0.5);
  sanitizer_config.objective = UtilityObjective::kFrequentPairs;
  sanitizer_config.min_support = min_support;
  sanitizer_config.output_size = 0;  // auto: the maximum size lambda
  Sanitizer sanitizer(sanitizer_config);

  Result<SanitizeReport> report = sanitizer.Sanitize(input);
  if (!report.ok()) {
    std::cerr << "sanitization failed: " << report.status() << std::endl;
    return 1;
  }
  const SearchLog& reference = report->preprocessed_input;

  // Paper metrics (Section 6.3) on the optimal counts.
  PrecisionRecall pr =
      FrequentPairMetrics(reference, report->optimal_counts, min_support);
  std::cout << "F-UMP sanitization with s = 1/200, " << "e^eps = 2, "
            << "delta = 0.5\n";
  std::cout << "frequent pairs: input " << pr.input_frequent << ", output "
            << pr.output_frequent << ", common " << pr.common << "\n";
  std::cout << "Precision = " << pr.precision << ", Recall = " << pr.recall
            << "\n";
  std::cout << "sum of support distances = "
            << SupportDistanceSum(reference, report->optimal_counts,
                                  min_support)
            << "\n";
  std::cout << "privacy audit: " << report->audit.ToString() << "\n\n";

  // Recommendation ranking comparison: input vs sanitized output.
  constexpr size_t kTop = 8;
  auto input_top = TopPairs(reference, kTop);
  auto output_top = TopPairs(report->output, kTop);
  std::cout << std::left << std::setw(44) << "top input click-throughs"
            << "top sanitized click-throughs\n";
  for (size_t i = 0; i < kTop; ++i) {
    std::string left = i < input_top.size()
                           ? input_top[i].first + " (" +
                                 std::to_string(input_top[i].second) + ")"
                           : "";
    std::string right = i < output_top.size()
                            ? output_top[i].first + " (" +
                                  std::to_string(output_top[i].second) + ")"
                            : "";
    std::cout << std::left << std::setw(44) << left << right << "\n";
  }

  // Overlap of the two rankings — a proxy for recommendation fidelity.
  size_t overlap = 0;
  for (const auto& [name, count] : output_top) {
    for (const auto& [input_name, input_count] : input_top) {
      if (name == input_name) {
        ++overlap;
        break;
      }
    }
  }
  std::cout << "\ntop-" << kTop << " ranking overlap: " << overlap << "/"
            << kTop << "\n";
  return 0;
}
