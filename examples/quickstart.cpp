// Quickstart: sanitize a search log with (ε, δ)-probabilistic differential
// privacy and maximum output size (O-UMP), end to end.
//
//   ./quickstart [input.tsv]
//
// Without an argument a synthetic AOL-profile workload is generated. With a
// TSV path (`user<TAB>query<TAB>url<TAB>count` rows) your own log is used.
#include <iostream>

#include "core/sanitizer.h"
#include "log/log_io.h"
#include "synth/characteristics.h"
#include "synth/generator.h"

using namespace privsan;

int main(int argc, char** argv) {
  // 1. Obtain an input search log.
  SearchLog input;
  if (argc > 1) {
    Result<SearchLog> loaded = ReadSearchLogTsv(argv[1]);
    if (!loaded.ok()) {
      std::cerr << "failed to read " << argv[1] << ": " << loaded.status()
                << std::endl;
      return 1;
    }
    input = std::move(loaded).value();
  } else {
    SyntheticLogConfig config = TinyConfig();
    config.num_events = 4000;
    config.num_users = 80;
    config.num_queries = 500;
    Result<SearchLog> generated = GenerateSearchLog(config);
    if (!generated.ok()) {
      std::cerr << "failed to generate workload: " << generated.status()
                << std::endl;
      return 1;
    }
    input = std::move(generated).value();
  }
  std::cout << "input:  " << ComputeCharacteristics(input).ToString()
            << "\n";

  // 2. Configure the sanitizer: e^eps = 2, delta = 0.5 (a mid-grid point of
  //    the paper's evaluation), maximizing output size.
  SanitizerConfig config;
  config.privacy = PrivacyParams::FromEEpsilon(2.0, 0.5);
  config.objective = UtilityObjective::kOutputSize;
  config.seed = 42;

  // 3. Run Algorithm 1: preprocess -> optimize -> multinomial sampling.
  Sanitizer sanitizer(config);
  Result<SanitizeReport> report = sanitizer.Sanitize(input);
  if (!report.ok()) {
    std::cerr << "sanitization failed: " << report.status() << std::endl;
    return 1;
  }

  // 4. Inspect the result. The output log has the input's schema and can be
  //    analyzed exactly like the input.
  std::cout << "after Condition-1 preprocessing: "
            << report->preprocessed_input.num_pairs()
            << " shared query-url pairs ("
            << report->preprocess_stats.pairs_removed
            << " unique pairs removed)\n";
  std::cout << "output: " << ComputeCharacteristics(report->output).ToString()
            << "\n";
  std::cout << "maximum output size lambda = " << report->output_size << " ("
            << (100.0 * static_cast<double>(report->output_size) /
                static_cast<double>(
                    report->preprocessed_input.total_clicks()))
            << "% of the preprocessed input)\n";
  std::cout << "privacy audit: " << report->audit.ToString() << "\n";

  // 5. A few sample output tuples.
  const SearchLog& output = report->output;
  std::cout << "\nsample output tuples (user, query, url, count):\n";
  size_t shown = 0;
  for (UserId u = 0; u < output.num_users() && shown < 5; ++u) {
    for (const PairCount& cell : output.UserLogOf(u)) {
      std::cout << "  " << output.user_name(u) << "\t"
                << output.query_name(output.pair_query(cell.pair)) << "\t"
                << output.url_name(output.pair_url(cell.pair)) << "\t"
                << cell.count << "\n";
      if (++shown >= 5) break;
    }
  }
  return 0;
}
