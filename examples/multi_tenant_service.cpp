// Serving sanitized releases to many consumers: a walkthrough of the
// asynchronous serve::SanitizerService pipeline (serve/api.h).
//
// One service hosts several tenants — think one per downstream consumer,
// each at its own privacy posture, or one per publisher shard. Every
// operation is a typed ServeRequest handed to Submit(), which returns a
// std::future<ServeResponse> immediately: requests for one tenant execute
// in submission order, distinct tenants in parallel, so a client fans out
// work simply by submitting before awaiting. The walkthrough exercises the
// full serve path: a pipelined create+solve burst, the budget-keyed result
// cache, batched appends landed by the background maintenance thread,
// hot-query refresh, eviction under a global memory budget, and
// snapshot/restore.
#include <chrono>
#include <cstdio>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "serve/api.h"
#include "serve/service.h"
#include "synth/generator.h"

using namespace privsan;

namespace {

SearchLog Workload(uint64_t seed) {
  SyntheticLogConfig config = TinyConfig();
  config.seed = seed;
  config.num_users = 120;
  config.num_events = 6000;
  config.num_queries = 500;
  return GenerateSearchLog(config).value();
}

UmpQuery Query(double e_eps, double delta) {
  UmpQuery query;
  query.privacy = PrivacyParams::FromEEpsilon(e_eps, delta);
  return query;
}

}  // namespace

int main() {
  // Maintenance on: queued appends flush in the background (depth/age
  // triggered) and the most recent query is re-solved after each flush.
  serve::ServiceOptions options;
  options.maintenance_interval_ms = 5;
  options.flush_max_age_ms = 20;
  serve::SanitizerService service(options);

  // 1. Three tenants at different privacy postures. The whole burst —
  //    three creates and three solves — is submitted before any future is
  //    awaited; per-tenant FIFO guarantees each solve sees its create, and
  //    the three tenants run in parallel on the service's workers.
  const std::vector<std::string> tenants = {"strict", "balanced", "loose"};
  const std::vector<double> e_epsilons = {1.1, 1.7, 2.3};
  std::vector<std::future<serve::ServeResponse>> creates, solves;
  for (size_t t = 0; t < tenants.size(); ++t) {
    creates.push_back(service.Submit(serve::CreateTenantRequest{
        tenants[t], Workload(100 + t), std::nullopt}));
    solves.push_back(service.Submit(serve::SolveRequest{
        tenants[t], UtilityObjective::kOutputSize,
        Query(e_epsilons[t], 0.5)}));
  }
  std::vector<uint64_t> lambdas(tenants.size(), 0);
  for (size_t t = 0; t < tenants.size(); ++t) {
    const serve::ServeResponse created = creates[t].get();
    if (!created.ok()) {
      std::cerr << "tenant creation failed: " << created.status << std::endl;
      return 1;
    }
    const serve::ServeResponse solved = solves[t].get();
    if (!solved.ok() || solved.solution() == nullptr) {
      std::cerr << "pipelined solve failed: " << solved.status << std::endl;
      return 1;
    }
    lambdas[t] = solved.solution()->output_size;
    std::cout << "tenant '" << tenants[t] << "' (e^eps = " << e_epsilons[t]
              << "): lambda = " << lambdas[t] << "\n";
  }

  // 2. Repeated queries hit the per-tenant result cache.
  (void)service
      .Submit(serve::SolveRequest{"balanced", UtilityObjective::kOutputSize,
                                  Query(1.7, 0.5)})
      .get();
  serve::TenantStats stats = service.Stats("balanced").value();
  std::cout << "\n'balanced' after a repeated query: " << stats.cache_hits
            << " cache hit(s), " << stats.solves << " actual solve(s)\n";

  // 3. New activity arrives as many small appends. Each Append future
  //    resolves on acceptance; the maintenance thread coalesces the queue
  //    into ONE incremental flush (merge + DP-row patch + basis remap) off
  //    the query path and then re-solves the hot query, so the next client
  //    solve finds a current cache entry.
  const SearchLog growth = Workload(999);
  std::vector<std::future<serve::ServeResponse>> appends;
  for (UserId u = 0; u + 10 <= growth.num_users(); u += 10) {
    appends.push_back(service.Submit(
        serve::AppendRequest{"balanced", UserSlice(growth, u, u + 10)}));
  }
  for (auto& append : appends) {
    if (!append.get().ok()) {
      std::cerr << "append failed" << std::endl;
      return 1;
    }
  }
  while (service.Stats("balanced").value().appends_coalesced <
         appends.size()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  auto grown = service.Solve("balanced", UtilityObjective::kOutputSize,
                             Query(1.7, 0.5));
  if (!grown.ok()) {
    std::cerr << "post-append solve failed: " << grown.status() << std::endl;
    return 1;
  }
  stats = service.Stats("balanced").value();
  std::cout << "\nappended " << stats.appends_coalesced << " batches in "
            << stats.flushes << " flush(es), "
            << stats.maintenance_flushes
            << " by the maintenance thread; DP rows copied/rebuilt: "
            << stats.rows_copied << "/" << stats.rows_rebuilt
            << "; hot-query refreshes: " << stats.refresh_solves
            << "; new lambda = " << grown->output_size << "\n";

  // 4. Snapshot the tenant and restore it in a "restarted" service under a
  //    tight global memory budget: the restored solve warm-starts from the
  //    persisted basis, and once the tenant goes idle the maintenance
  //    thread evicts it to a spill snapshot — the next request reloads it
  //    transparently with the same optimum.
  const std::string path = "multi_tenant_service_snapshot.bin";
  const Status saved = service.SaveSnapshot("balanced", path);
  if (!saved.ok()) {
    std::cerr << "snapshot failed: " << saved << std::endl;
    return 1;
  }
  serve::ServiceOptions restarted_options;
  restarted_options.maintenance_interval_ms = 2;
  restarted_options.memory_budget_bytes = 1;  // evict any idle tenant
  serve::SanitizerService restarted(restarted_options);
  const Status restored = restarted.RestoreTenant("balanced", path);
  std::remove(path.c_str());
  if (!restored.ok()) {
    std::cerr << "restore failed: " << restored << std::endl;
    return 1;
  }
  auto after = restarted.Solve("balanced", UtilityObjective::kOutputSize,
                               Query(1.7, 0.5));
  if (!after.ok()) {
    std::cerr << "post-restore solve failed: " << after.status() << std::endl;
    return 1;
  }
  std::cout << "\nrestored from snapshot: lambda = " << after->output_size
            << (after->stats.warm_started ? " (warm-started, "
                                          : " (cold, ")
            << after->stats.root_iterations << " root iterations)\n";

  while (restarted.Stats("balanced").value().evictions < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  auto reloaded = restarted.Solve("balanced", UtilityObjective::kOutputSize,
                                  Query(1.7, 0.5));
  if (!reloaded.ok()) {
    std::cerr << "post-eviction solve failed: " << reloaded.status()
              << std::endl;
    return 1;
  }
  const serve::TenantStats final_stats =
      restarted.Stats("balanced").value();
  std::cout << "evicted under the memory budget and reloaded on access: "
            << final_stats.evictions << " eviction(s), "
            << final_stats.reloads << " reload(s), lambda = "
            << reloaded->output_size << "\n";

  const bool ok = after->output_size == grown->output_size &&
                  after->stats.warm_started &&
                  reloaded->output_size == grown->output_size;
  std::cout << "\nround trip "
            << (ok ? "consistent: restored and reloaded solves match the "
                     "pre-snapshot optimum warm"
                   : "INCONSISTENT — this is a bug")
            << "\n";
  return ok ? 0 : 1;
}
