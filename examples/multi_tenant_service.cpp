// Serving sanitized releases to many consumers: a walkthrough of
// serve::SanitizerService.
//
// One service hosts several tenants — think one per downstream consumer,
// each at its own privacy posture, or one per publisher shard. Each tenant
// owns a SanitizerSession behind the service's per-tenant lock; a shared
// thread pool shards preprocessing and DP-row builds. The walkthrough
// exercises the full serve path: concurrent per-tenant solves, the
// budget-keyed result cache, batched appends, and snapshot/restore.
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.h"
#include "synth/generator.h"

using namespace privsan;

namespace {

SearchLog Workload(uint64_t seed) {
  SyntheticLogConfig config = TinyConfig();
  config.seed = seed;
  config.num_users = 120;
  config.num_events = 6000;
  config.num_queries = 500;
  return GenerateSearchLog(config).value();
}

UmpQuery Query(double e_eps, double delta) {
  UmpQuery query;
  query.privacy = PrivacyParams::FromEEpsilon(e_eps, delta);
  return query;
}

}  // namespace

int main() {
  serve::SanitizerService service;

  // 1. Three tenants at different privacy postures, solved concurrently.
  //    Distinct tenants never contend on solver state — only the thread
  //    pool is shared.
  const std::vector<std::string> tenants = {"strict", "balanced", "loose"};
  const std::vector<double> e_epsilons = {1.1, 1.7, 2.3};
  for (size_t t = 0; t < tenants.size(); ++t) {
    const Status created =
        service.CreateTenant(tenants[t], Workload(100 + t));
    if (!created.ok()) {
      std::cerr << "tenant creation failed: " << created << std::endl;
      return 1;
    }
  }
  std::vector<uint64_t> lambdas(tenants.size(), 0);
  std::vector<std::thread> clients;
  for (size_t t = 0; t < tenants.size(); ++t) {
    clients.emplace_back([&, t] {
      auto solution = service.Solve(tenants[t], UtilityObjective::kOutputSize,
                                    Query(e_epsilons[t], 0.5));
      if (solution.ok()) lambdas[t] = solution->output_size;
    });
  }
  for (std::thread& client : clients) client.join();
  for (size_t t = 0; t < tenants.size(); ++t) {
    std::cout << "tenant '" << tenants[t] << "' (e^eps = " << e_epsilons[t]
              << "): lambda = " << lambdas[t] << "\n";
    if (lambdas[t] == 0) {
      std::cerr << "concurrent solve failed" << std::endl;
      return 1;
    }
  }

  // 2. Repeated queries hit the per-tenant result cache.
  (void)service.Solve("balanced", UtilityObjective::kOutputSize,
                      Query(1.7, 0.5));
  serve::TenantStats stats = service.Stats("balanced").value();
  std::cout << "\n'balanced' after a repeated query: " << stats.cache_hits
            << " cache hit(s), " << stats.solves << " actual solve(s)\n";

  // 3. New activity arrives as many small appends; one flush lands them
  //    all incrementally (merge + DP-row patch + basis remap), and the
  //    next solve runs warm on the grown log.
  const SearchLog growth = Workload(999);
  for (UserId u = 0; u + 10 <= growth.num_users(); u += 10) {
    if (!service.Append("balanced", UserSlice(growth, u, u + 10)).ok()) {
      std::cerr << "append failed" << std::endl;
      return 1;
    }
  }
  auto grown = service.Solve("balanced", UtilityObjective::kOutputSize,
                             Query(1.7, 0.5));
  if (!grown.ok()) {
    std::cerr << "post-append solve failed: " << grown.status() << std::endl;
    return 1;
  }
  stats = service.Stats("balanced").value();
  std::cout << "\nappended " << stats.appends_coalesced << " batches in "
            << stats.flushes << " flush(es); DP rows copied/rebuilt: "
            << stats.rows_copied << "/" << stats.rows_rebuilt
            << "; new lambda = " << grown->output_size
            << (grown->stats.warm_started ? " (warm-started)" : " (cold)")
            << "\n";

  // 4. Snapshot the tenant and restore it in a "restarted" service: the
  //    first solve after restore warm-starts from the persisted basis and
  //    reproduces the same optimum.
  const std::string path = "multi_tenant_service_snapshot.bin";
  const Status saved = service.SaveSnapshot("balanced", path);
  if (!saved.ok()) {
    std::cerr << "snapshot failed: " << saved << std::endl;
    return 1;
  }
  serve::SanitizerService restarted;
  const Status restored = restarted.RestoreTenant("balanced", path);
  std::remove(path.c_str());
  if (!restored.ok()) {
    std::cerr << "restore failed: " << restored << std::endl;
    return 1;
  }
  auto after = restarted.Solve("balanced", UtilityObjective::kOutputSize,
                               Query(1.7, 0.5));
  if (!after.ok()) {
    std::cerr << "post-restore solve failed: " << after.status() << std::endl;
    return 1;
  }
  std::cout << "\nrestored from snapshot: lambda = " << after->output_size
            << (after->stats.warm_started ? " (warm-started, "
                                          : " (cold, ")
            << after->stats.root_iterations << " root iterations)\n";

  const bool ok = after->output_size == grown->output_size &&
                  after->stats.warm_started;
  std::cout << "\nround trip "
            << (ok ? "consistent: restored solve matches the pre-snapshot "
                     "optimum warm"
                   : "INCONSISTENT — this is a bug")
            << "\n";
  return ok ? 0 : 1;
}
