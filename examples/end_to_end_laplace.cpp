// End-to-end differential privacy (Section 4.2): making the *count
// computation* private, not just the sampling.
//
// The optimal counts x* are a function of the whole input, so releasing
// them verbatim leaks. The paper's remedy: (1) bound each pair's count
// sensitivity by d via leave-one-user-out preprocessing, (2) add Lap(d/eps')
// noise to the counts. This example runs both steps on a small workload and
// shows the utility cost of decreasing d (more users dropped) and of
// decreasing eps' (more noise).
#include <iostream>
#include <numeric>

#include "core/laplace_step.h"
#include "core/oump.h"
#include "core/sampler.h"
#include "log/preprocess.h"
#include "synth/generator.h"

using namespace privsan;

int main() {
  SyntheticLogConfig config = TinyConfig();
  config.num_events = 1200;
  config.num_users = 25;
  config.num_queries = 150;
  Result<SearchLog> generated = GenerateSearchLog(config);
  if (!generated.ok()) {
    std::cerr << "failed to generate workload: " << generated.status()
              << std::endl;
    return 1;
  }
  SearchLog log = RemoveUniquePairs(*generated).log;
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);

  Result<OumpResult> solved = SolveOump(log, params);
  if (!solved.ok()) {
    std::cerr << "O-UMP solve failed: " << solved.status() << std::endl;
    return 1;
  }
  OumpResult base = std::move(solved).value();
  std::cout << "workload: " << log.num_pairs() << " pairs, "
            << log.num_users() << " users; noise-free lambda = "
            << base.lambda << "\n\n";

  // --- Step 1: sensitivity bounding for a range of d. ----------------------
  std::cout << "sensitivity bounding (leave-one-user-out O-UMP re-solves):\n";
  for (double d : {20.0, 5.0, 1.0}) {
    Result<SensitivityBoundResult> bounded =
        BoundOumpSensitivity(log, params, d);
    if (!bounded.ok()) {
      std::cerr << "  d=" << d << ": " << bounded.status() << std::endl;
      continue;
    }
    std::cout << "  d=" << d << ": removed " << bounded->users_removed
              << " user logs; max retained per-pair shift = "
              << bounded->max_shift_retained << "\n";
  }

  // --- Step 2: Laplace noise on the counts for a range of eps'. ------------
  std::cout << "\nLap(d/eps') noise on the optimal counts (d = 2):\n";
  for (double eps_prime : {4.0, 1.0, 0.25}) {
    LaplaceStepOptions options;
    options.d = 2.0;
    options.epsilon_prime = eps_prime;
    options.seed = 7;
    options.repair_feasibility = true;
    LaplaceStepResult noisy =
        AddLaplaceNoise(log, params, base.x_relaxed, options).value();
    // L1 distortion between noise-free and noisy counts.
    uint64_t l1 = 0;
    for (PairId p = 0; p < log.num_pairs(); ++p) {
      l1 += noisy.x[p] > base.x[p] ? noisy.x[p] - base.x[p]
                                   : base.x[p] - noisy.x[p];
    }
    std::cout << "  eps'=" << eps_prime << ": output size " << noisy.total
              << " (vs " << base.lambda << "), L1 distortion " << l1
              << ", feasibility repair scale " << noisy.scale_applied
              << "\n";

    // The noisy counts still sample into a valid output log.
    SearchLog output = SampleOutput(log, noisy.x, 99).value();
    std::cout << "        sampled output: " << output.num_pairs()
              << " pairs, " << output.total_clicks() << " clicks\n";
  }

  std::cout << "\nNote: with repair_feasibility=true the sampling stage's "
               "(eps, delta) guarantee holds exactly even after noise; "
               "without it, noise may push counts outside the DP polytope "
               "(the paper accepts this, as the noise is zero-mean).\n";
  return 0;
}
