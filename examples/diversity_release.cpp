// Diversity-maximizing release (D-UMP, Section 5.3): a research group wants
// as many *distinct* query-url pairs as possible — e.g. to study the breadth
// of search behavior — rather than high counts. D-UMP retains the maximum
// number of distinct pairs under the privacy budget; each retained pair is
// emitted once with a sampled user-ID.
//
// The example runs all four BIP solvers privsan ships (the paper's SPE
// heuristic, a constructive greedy, LP rounding, and budgeted branch &
// bound) and compares retained diversity and runtime — a miniature of the
// paper's Table 7 / Figure 5.
#include <iomanip>
#include <iostream>

#include "core/dump.h"
#include "core/sanitizer.h"
#include "log/preprocess.h"
#include "synth/generator.h"
#include "util/table_printer.h"

using namespace privsan;

int main() {
  SyntheticLogConfig config = TinyConfig();
  config.num_events = 5000;
  config.num_users = 100;
  config.num_queries = 700;
  SearchLog raw = GenerateSearchLog(config).value();
  SearchLog log = RemoveUniquePairs(raw).log;
  std::cout << "preprocessed input: " << log.num_pairs()
            << " shared query-url pairs across " << log.num_users()
            << " users\n\n";

  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);

  TablePrinter table("D-UMP solver comparison (e^eps = 2, delta = 0.5)");
  table.SetHeader({"solver", "retained pairs", "diversity %", "seconds",
                   "proven optimal"});
  for (DumpSolverKind kind :
       {DumpSolverKind::kSpe, DumpSolverKind::kGreedy,
        DumpSolverKind::kLpRounding, DumpSolverKind::kBranchAndBound}) {
    DumpOptions options;
    options.solver = kind;
    options.bnb.max_nodes = 200;
    options.bnb.time_limit_seconds = 20;
    Result<DumpResult> result = SolveDump(log, params, options);
    if (!result.ok()) {
      std::cerr << DumpSolverKindToString(kind)
                << " failed: " << result.status() << std::endl;
      continue;
    }
    std::ostringstream pct, secs;
    pct << std::fixed << std::setprecision(1)
        << 100.0 * result->diversity_ratio;
    secs << std::scientific << std::setprecision(2) << result->wall_seconds;
    table.AddRow({DumpSolverKindToString(kind),
                  std::to_string(result->retained), pct.str(), secs.str(),
                  result->proven_optimal ? "yes" : "no"});
  }
  table.Print(std::cout);

  // Full pipeline with SPE: sample user-IDs for the retained pairs.
  SanitizerConfig sanitizer_config;
  sanitizer_config.privacy = params;
  sanitizer_config.objective = UtilityObjective::kDiversity;
  sanitizer_config.dump_solver = DumpSolverKind::kSpe;
  Sanitizer sanitizer(sanitizer_config);
  Result<SanitizeReport> report = sanitizer.Sanitize(raw);
  if (!report.ok()) {
    std::cerr << "sanitization failed: " << report.status() << std::endl;
    return 1;
  }
  std::cout << "\nreleased log: " << report->output.num_pairs()
            << " distinct pairs, " << report->output.num_users()
            << " users, audit: "
            << (report->audit.satisfies_privacy ? "private" : "VIOLATED")
            << "\n";
  return 0;
}
