// Incremental sanitization with SanitizerSession: append user logs and
// re-solve warm instead of cold.
//
// A service that periodically re-releases a sanitized log doesn't see a
// fresh dataset each time — it sees the same log plus a batch of new user
// activity. SanitizerSession keeps the preprocessed log, the DP constraint
// rows and the last optimal basis alive between calls, so a re-solve after
// AppendUsers dual-warm-starts from the previous optimum. The result is
// identical to a from-scratch solve on the concatenated log; only the path
// to it is shorter.
#include <iostream>

#include "core/session.h"
#include "synth/generator.h"

using namespace privsan;

int main() {
  SyntheticLogConfig config = TinyConfig();
  config.num_events = 6000;
  config.num_users = 100;
  config.num_queries = 400;
  Result<SearchLog> generated = GenerateSearchLog(config);
  if (!generated.ok()) {
    std::cerr << "failed to generate workload: " << generated.status()
              << std::endl;
    return 1;
  }
  const SearchLog full = std::move(generated).value();
  const UserId cut = full.num_users() * 3 / 4;
  const SearchLog initial = UserSlice(full, 0, cut);
  const SearchLog appended = UserSlice(full, cut, full.num_users());

  UmpQuery query;
  query.privacy = PrivacyParams::FromEEpsilon(2.0, 0.5);

  // 1. Open a session on the initial log and solve O-UMP once.
  Result<SanitizerSession> session = SanitizerSession::Create(initial);
  if (!session.ok()) {
    std::cerr << "session creation failed: " << session.status() << std::endl;
    return 1;
  }
  Result<UmpSolution> before =
      session->Solve(UtilityObjective::kOutputSize, query);
  if (!before.ok()) {
    std::cerr << "initial solve failed: " << before.status() << std::endl;
    return 1;
  }
  std::cout << "initial batch: " << session->log().num_users()
            << " user logs, " << session->log().num_pairs()
            << " pairs; lambda = " << before->output_size << " ("
            << before->stats.simplex_iterations << " simplex iterations, cold)"
            << "\n";

  // 2. A new batch of users arrives. The session re-preprocesses, remaps
  //    the previous optimal basis onto the grown model, and re-solves warm.
  Status append = session->AppendUsers(appended);
  if (!append.ok()) {
    std::cerr << "append failed: " << append << std::endl;
    return 1;
  }
  Result<UmpSolution> after =
      session->Solve(UtilityObjective::kOutputSize, query);
  if (!after.ok()) {
    std::cerr << "post-append solve failed: " << after.status() << std::endl;
    return 1;
  }
  std::cout << "after appending " << appended.num_users()
            << " user logs: lambda = " << after->output_size << " ("
            << after->stats.simplex_iterations << " simplex iterations, "
            << (after->stats.warm_started ? "warm-started from the previous "
                                            "optimum"
                                          : "cold")
            << ")\n";

  // 3. Cross-check against a from-scratch session on the concatenated log:
  //    the incremental result is identical, only cheaper to reach.
  Result<SanitizerSession> scratch = SanitizerSession::Create(full);
  if (!scratch.ok()) {
    std::cerr << "scratch session failed: " << scratch.status() << std::endl;
    return 1;
  }
  Result<UmpSolution> cold =
      scratch->Solve(UtilityObjective::kOutputSize, query);
  if (!cold.ok()) {
    std::cerr << "scratch solve failed: " << cold.status() << std::endl;
    return 1;
  }
  std::cout << "from-scratch solve on the concatenated log: lambda = "
            << cold->output_size << " (" << cold->stats.simplex_iterations
            << " simplex iterations, cold)\n";
  // O-UMP optima are massively degenerate (every count prices identically),
  // so the two paths may stop at different optimal vertices — the objective
  // is the invariant. The deterministic D-UMP heuristics (SPE, greedy) give
  // bit-identical counts as well; see tests/session_test.cc.
  std::cout << "identical objective: "
            << (after->output_size == cold->output_size ? "yes"
                                                        : "NO — this is a bug")
            << " (identical counts: " << (after->x == cold->x ? "yes" : "no")
            << "; alternate optima are expected for O-UMP)\n";

  // 4. The same session also runs the full Algorithm-1 pipeline.
  Result<SanitizeReport> report = session->Sanitize(query.privacy);
  if (!report.ok()) {
    std::cerr << "sanitize failed: " << report.status() << std::endl;
    return 1;
  }
  std::cout << "sanitized release: " << report->output.total_clicks()
            << " clicks across " << report->output.num_pairs()
            << " query-url pairs; audit: "
            << (report->audit.satisfies_privacy ? "pass" : "FAIL") << "\n";
  return after->output_size == cold->output_size &&
                 report->audit.satisfies_privacy
             ? 0
             : 1;
}
