#include "core/joint.h"

#include <gtest/gtest.h>

#include "core/audit.h"
#include "core/oump.h"
#include "metrics/utility_metrics.h"
#include "test_fixtures.h"

namespace privsan {
namespace {

using testing_fixtures::SmallSyntheticLog;

TEST(JointUmpTest, RejectsBadWeights) {
  SearchLog log = SmallSyntheticLog();
  JointUmpOptions options;
  options.size_weight = 0.0;
  options.distance_weight = 0.0;
  EXPECT_FALSE(SolveJointUmp(log, PrivacyParams{1.0, 0.5}, options).ok());
  options.size_weight = -1.0;
  options.distance_weight = 1.0;
  EXPECT_FALSE(SolveJointUmp(log, PrivacyParams{1.0, 0.5}, options).ok());
}

TEST(JointUmpTest, PureSizeWeightRecoversOump) {
  SearchLog log = SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  JointUmpOptions options;
  options.size_weight = 1.0;
  options.distance_weight = 0.0;
  JointUmpResult joint = SolveJointUmp(log, params, options).value();
  OumpResult oump = SolveOump(log, params).value();
  EXPECT_NEAR(joint.relaxed_size, oump.lp_objective,
              1e-5 * (1.0 + oump.lp_objective));
  EXPECT_EQ(joint.output_size, oump.lambda);
}

TEST(JointUmpTest, SolutionsAreAlwaysPrivate) {
  SearchLog log = SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(1.7, 0.2);
  for (double alpha : {0.0, 0.5, 2.0}) {
    JointUmpOptions options;
    options.size_weight = 1.0;
    options.distance_weight = alpha;
    options.min_support = 1.0 / 100;
    JointUmpResult joint = SolveJointUmp(log, params, options).value();
    AuditReport audit = AuditSolution(log, params, joint.x).value();
    EXPECT_TRUE(audit.satisfies_privacy)
        << "alpha=" << alpha << ": " << audit.ToString();
  }
}

TEST(JointUmpTest, ParetoTradeoff) {
  // Raising the distance weight can only shrink the relaxed distance sum
  // and can only shrink the relaxed size (the frontier is monotone).
  SearchLog log = SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  double prev_distance = std::numeric_limits<double>::infinity();
  double prev_size = std::numeric_limits<double>::infinity();
  for (double alpha : {0.0, 0.2, 1.0, 5.0, 50.0}) {
    JointUmpOptions options;
    options.size_weight = 1.0;
    options.distance_weight = alpha;
    options.min_support = 1.0 / 100;
    JointUmpResult joint = SolveJointUmp(log, params, options).value();
    EXPECT_LE(joint.relaxed_distance_sum, prev_distance + 1e-7)
        << "alpha=" << alpha;
    EXPECT_LE(joint.relaxed_size, prev_size + 1e-7) << "alpha=" << alpha;
    prev_distance = joint.relaxed_distance_sum;
    prev_size = joint.relaxed_size;
  }
}

TEST(JointUmpTest, HeavyDistanceWeightPreservesSupports) {
  SearchLog log = SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  const double support = 1.0 / 100;

  JointUmpOptions size_only;
  size_only.size_weight = 1.0;
  size_only.distance_weight = 0.0;
  size_only.min_support = support;
  JointUmpOptions balanced;
  balanced.size_weight = 1.0;
  balanced.distance_weight = 20.0;
  balanced.min_support = support;

  JointUmpResult a = SolveJointUmp(log, params, size_only).value();
  JointUmpResult b = SolveJointUmp(log, params, balanced).value();
  EXPECT_LE(b.relaxed_distance_sum, a.relaxed_distance_sum + 1e-9);
}

TEST(JointUmpTest, LambdaReportedForNormalization) {
  SearchLog log = SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  JointUmpResult joint = SolveJointUmp(log, params).value();
  OumpResult oump = SolveOump(log, params).value();
  EXPECT_EQ(joint.lambda, oump.lambda);
  EXPECT_LE(joint.output_size, oump.lambda);
}

}  // namespace
}  // namespace privsan
