#include "lp/bip_heuristics.h"

#include <gtest/gtest.h>

#include "lp/branch_and_bound.h"
#include "rng/random.h"

namespace privsan {
namespace lp {
namespace {

BipProblem MakeProblem(int rows, std::vector<std::vector<SparseEntry>> cols,
                       std::vector<double> rhs) {
  BipProblem problem;
  problem.num_rows = rows;
  problem.columns = std::move(cols);
  problem.rhs = std::move(rhs);
  return problem;
}

BipProblem RandomProblem(uint64_t seed, int vars, int rows) {
  Rng rng(seed);
  BipProblem problem;
  problem.num_rows = rows;
  problem.columns.resize(vars);
  problem.rhs.assign(rows, 0.0);
  for (double& b : problem.rhs) b = rng.NextDouble(0.5, 2.0);
  for (int j = 0; j < vars; ++j) {
    for (int r = 0; r < rows; ++r) {
      if (rng.NextBool(0.5)) {
        problem.columns[j].push_back(
            SparseEntry{r, rng.NextDouble(0.05, 1.0)});
      }
    }
  }
  return problem;
}

TEST(BipProblemTest, ValidateAcceptsWellFormed) {
  BipProblem p = MakeProblem(1, {{{0, 0.5}}, {{0, 0.7}}}, {1.0});
  EXPECT_TRUE(p.Validate().ok());
}

TEST(BipProblemTest, ValidateRejectsBadRhs) {
  EXPECT_FALSE(MakeProblem(1, {{{0, 0.5}}}, {0.0}).Validate().ok());
  EXPECT_FALSE(MakeProblem(1, {{{0, 0.5}}}, {-1.0}).Validate().ok());
  EXPECT_FALSE(MakeProblem(2, {{{0, 0.5}}}, {1.0}).Validate().ok());
}

TEST(BipProblemTest, ValidateRejectsBadWeights) {
  EXPECT_FALSE(MakeProblem(1, {{{0, 0.0}}}, {1.0}).Validate().ok());
  EXPECT_FALSE(MakeProblem(1, {{{0, -0.5}}}, {1.0}).Validate().ok());
  EXPECT_FALSE(MakeProblem(1, {{{1, 0.5}}}, {1.0}).Validate().ok());
}

TEST(BipProblemTest, IsFeasible) {
  BipProblem p = MakeProblem(1, {{{0, 0.6}}, {{0, 0.6}}}, {1.0});
  EXPECT_TRUE(p.IsFeasible({1, 0}));
  EXPECT_TRUE(p.IsFeasible({0, 1}));
  EXPECT_FALSE(p.IsFeasible({1, 1}));  // 1.2 > 1.0
  EXPECT_TRUE(p.IsFeasible({0, 0}));
}

TEST(BipProblemTest, ToLpModelRoundTrip) {
  BipProblem p = MakeProblem(2, {{{0, 0.5}, {1, 0.3}}, {{1, 0.9}}},
                             {1.0, 1.0});
  LpModel model = p.ToLpModel();
  EXPECT_EQ(model.num_variables(), 2);
  EXPECT_EQ(model.num_constraints(), 2);
  EXPECT_TRUE(model.variable(0).is_integer);
  EXPECT_EQ(model.sense(), ObjectiveSense::kMaximize);
}

TEST(GreedyTest, SelectsEverythingWhenLoose) {
  BipProblem p = MakeProblem(1, {{{0, 0.1}}, {{0, 0.1}}, {{0, 0.1}}}, {10.0});
  BipSolution s = SolveBipGreedy(p).value();
  EXPECT_EQ(s.selected, 3);
}

TEST(GreedyTest, RespectsCapacity) {
  BipProblem p = MakeProblem(1, {{{0, 0.6}}, {{0, 0.5}}, {{0, 0.3}}}, {1.0});
  BipSolution s = SolveBipGreedy(p).value();
  EXPECT_TRUE(p.IsFeasible(s.y));
  // Sorted by max weight ascending: 0.3 then 0.5 admitted (0.8), 0.6 skipped.
  EXPECT_EQ(s.selected, 2);
}

TEST(GreedyTest, EmptyColumnsAlwaysSelected) {
  // A variable touching no row costs nothing.
  BipProblem p = MakeProblem(1, {{}, {{0, 0.9}}, {{0, 0.9}}}, {1.0});
  BipSolution s = SolveBipGreedy(p).value();
  EXPECT_EQ(s.y[0], 1);
  EXPECT_EQ(s.selected, 2);
}

TEST(LpRoundingTest, FeasibleAndAtLeastLpFloor) {
  BipProblem p = RandomProblem(3, 30, 6);
  BipSolution s = SolveBipLpRounding(p).value();
  EXPECT_TRUE(p.IsFeasible(s.y));
  EXPECT_GT(s.selected, 0);
}

TEST(LpRoundingTest, MatchesOptimumOnTightSingleRow) {
  // Single row: LP sorts by weight, rounding recovers the exact optimum
  // (max-cardinality knapsack is greedy-by-weight).
  BipProblem p = MakeProblem(
      1, {{{0, 0.5}}, {{0, 0.2}}, {{0, 0.4}}, {{0, 0.05}}}, {0.7});
  BipSolution s = SolveBipLpRounding(p).value();
  EXPECT_TRUE(p.IsFeasible(s.y));
  // Optimum: {0.05, 0.2, 0.4} = 0.65 -> 3 items.
  EXPECT_EQ(s.selected, 3);
}

class HeuristicVsExactTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HeuristicVsExactTest, HeuristicsNeverBeatExactAndStayFeasible) {
  BipProblem p = RandomProblem(GetParam(), 12, 4);
  LpModel model = p.ToLpModel();
  ASSERT_TRUE(model.Validate().ok());
  BnbResult exact = SolveBranchAndBound(model);
  ASSERT_TRUE(exact.proven_optimal);

  BipSolution greedy = SolveBipGreedy(p).value();
  BipSolution rounding = SolveBipLpRounding(p).value();
  EXPECT_TRUE(p.IsFeasible(greedy.y));
  EXPECT_TRUE(p.IsFeasible(rounding.y));
  EXPECT_LE(static_cast<double>(greedy.selected), exact.objective + 1e-6);
  EXPECT_LE(static_cast<double>(rounding.selected), exact.objective + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomBips, HeuristicVsExactTest,
                         ::testing::Values(31, 32, 33, 34, 35, 36));

}  // namespace
}  // namespace lp
}  // namespace privsan
