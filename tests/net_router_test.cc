// The consistent-hash router: ring placement properties, tenant pinning
// across two in-process backends, and explicit migration on ring change —
// a moved tenant's state follows it (snapshot save/restore) and its next
// solve resumes warm with the identical objective.
#include "net/router.h"

#include <algorithm>
#include <cstdint>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/server.h"
#include "serve/api.h"
#include "serve/service.h"
#include "synth/generator.h"
#include "test_fixtures.h"

namespace privsan {
namespace {

using net::HashRing;
using net::Migration;
using net::NetServer;
using net::Router;

SearchLog Synthetic(uint64_t seed, size_t users = 40, size_t events = 1500) {
  SyntheticLogConfig config = TinyConfig();
  config.seed = seed;
  config.num_users = users;
  config.num_events = events;
  return GenerateSearchLog(config).value();
}

UmpQuery Query(double e_eps, double delta) {
  UmpQuery query;
  query.privacy = PrivacyParams::FromEEpsilon(e_eps, delta);
  return query;
}

serve::ServeResponse Call(Router& router, serve::ServeRequest request) {
  std::promise<serve::ServeResponse> promise;
  std::future<serve::ServeResponse> future = promise.get_future();
  router.Submit(std::move(request), [&promise](serve::ServeResponse r) {
    promise.set_value(std::move(r));
  });
  return future.get();
}

// One in-process backend: a service plus a NetServer on its own thread.
struct BackendProcess {
  BackendProcess() : server(&service) {
    EXPECT_TRUE(server.Start().ok());
    thread = std::thread([this] { EXPECT_TRUE(server.Serve().ok()); });
  }
  ~BackendProcess() {
    server.Shutdown();
    thread.join();
  }
  uint16_t port() { return server.port(); }

  serve::SanitizerService service;
  NetServer server;
  std::thread thread;
};

TEST(HashRingTest, RemovalOnlyMovesKeysOwnedByTheRemovedNode) {
  HashRing ring;
  ring.Add("a");
  ring.Add("b");
  ring.Add("c");
  std::vector<std::string> before;
  std::set<std::string> owners;
  for (int i = 0; i < 300; ++i) {
    before.push_back(ring.Locate("key-" + std::to_string(i)));
    owners.insert(before.back());
  }
  EXPECT_EQ(owners.size(), 3u);  // 64 vnodes spread 300 keys over all nodes
  ring.Remove("c");
  for (int i = 0; i < 300; ++i) {
    const std::string& after = ring.Locate("key-" + std::to_string(i));
    if (before[i] != "c") {
      // The defining consistent-hashing property: keys not owned by the
      // removed node do not move.
      EXPECT_EQ(after, before[i]) << "key-" << i;
    } else {
      EXPECT_NE(after, "c");
    }
  }
}

TEST(NetRouterTest, PinsTenantsAndRoutesEveryVerb) {
  BackendProcess a;
  BackendProcess b;
  Router::Options options;
  options.backends = {a.port(), b.port()};
  Router router(options);
  ASSERT_TRUE(router.Start().ok());
  EXPECT_EQ(router.backend_count(), 2u);

  const int kTenants = 8;
  for (int i = 0; i < kTenants; ++i) {
    const std::string tenant = "tenant-" + std::to_string(i);
    ASSERT_TRUE(Call(router,
                     serve::CreateTenantRequest{tenant, Synthetic(100 + i),
                                                std::nullopt})
                    .ok());
    const serve::ServeResponse solved = Call(
        router, serve::SolveRequest{tenant, UtilityObjective::kOutputSize,
                                    Query(2.0, 0.5)});
    ASSERT_TRUE(solved.ok()) << solved.status;
    const serve::ServeResponse stats =
        Call(router, serve::StatsRequest{tenant});
    ASSERT_TRUE(stats.ok()) << stats.status;
    EXPECT_EQ(stats.stats()->solves, 1u);
  }
  // Every tenant lives on exactly one backend, and the two registries
  // partition the tenant set.
  const auto on_a = a.service.Tenants();
  const auto on_b = b.service.Tenants();
  EXPECT_EQ(on_a.size() + on_b.size(), static_cast<size_t>(kTenants));
  for (const std::string& tenant : on_a) {
    EXPECT_EQ(std::count(on_b.begin(), on_b.end(), tenant), 0);
  }
}

TEST(NetRouterTest, AddBackendMigratesTenantsWarm) {
  BackendProcess a;
  BackendProcess b;
  Router::Options options;
  options.backends = {a.port()};
  Router router(options);
  ASSERT_TRUE(router.Start().ok());

  // Choose a tenant name the grown ring will re-home onto backend b, so
  // the migration below is deterministic.
  const std::string key_a = std::to_string(a.port());
  const std::string key_b = std::to_string(b.port());
  HashRing grown;
  grown.Add(key_a);
  grown.Add(key_b);
  std::string mover;
  for (int i = 0; i < 1000 && mover.empty(); ++i) {
    const std::string name = "tenant-" + std::to_string(i);
    if (grown.Locate(name) == key_b) mover = name;
  }
  ASSERT_FALSE(mover.empty());

  const UmpQuery query = Query(2.0, 0.5);
  ASSERT_TRUE(
      Call(router,
           serve::CreateTenantRequest{mover, Synthetic(42), std::nullopt})
          .ok());
  const serve::ServeResponse cold = Call(
      router,
      serve::SolveRequest{mover, UtilityObjective::kOutputSize, query});
  ASSERT_TRUE(cold.ok()) << cold.status;
  EXPECT_FALSE(cold.solution()->stats.warm_started);

  Result<std::vector<Migration>> migrated = router.AddBackend(b.port());
  ASSERT_TRUE(migrated.ok()) << migrated.status();
  bool moved = false;
  for (const Migration& migration : *migrated) {
    if (migration.tenant == mover) {
      moved = true;
      EXPECT_EQ(migration.from, a.port());
      EXPECT_EQ(migration.to, b.port());
    }
  }
  ASSERT_TRUE(moved);
  // The state actually changed hands: registry membership flipped.
  const std::vector<std::string> on_a = a.service.Tenants();
  const std::vector<std::string> on_b = b.service.Tenants();
  EXPECT_EQ(std::count(on_a.begin(), on_a.end(), mover), 0);
  EXPECT_EQ(std::count(on_b.begin(), on_b.end(), mover), 1);

  // The same query through the router now executes on b — warm, with the
  // identical objective (the snapshot carried the solve basis).
  const serve::ServeResponse warm = Call(
      router,
      serve::SolveRequest{mover, UtilityObjective::kOutputSize, query});
  ASSERT_TRUE(warm.ok()) << warm.status;
  EXPECT_TRUE(warm.solution()->stats.warm_started);
  EXPECT_NEAR(warm.solution()->objective_value,
              cold.solution()->objective_value, 1e-6);
  EXPECT_EQ(warm.solution()->output_size, cold.solution()->output_size);
}

// Pins must not outlive tenant state: a drop through the router unpins, a
// NotFound reply unpins a phantom (never-created) tenant, and a tenant
// dropped behind the router's back unpins at migration time or via the
// last-backend probe — so RemoveBackend never wedges on tenants that no
// longer exist.
TEST(NetRouterTest, StalePinsDoNotBlockBackendRemoval) {
  BackendProcess a;
  BackendProcess b;
  Router::Options options;
  options.backends = {a.port(), b.port()};
  Router router(options);
  ASSERT_TRUE(router.Start().ok());

  // Requests naming tenants that never existed fail NotFound and must not
  // pin permanently.
  for (int i = 0; i < 8; ++i) {
    const serve::ServeResponse ghost =
        Call(router, serve::StatsRequest{"ghost-" + std::to_string(i)});
    EXPECT_EQ(ghost.status.code(), StatusCode::kNotFound);
  }
  // A real tenant created, solved, and dropped through the router.
  ASSERT_TRUE(Call(router, serve::CreateTenantRequest{"doomed",
                                                      Synthetic(77),
                                                      std::nullopt})
                  .ok());
  ASSERT_TRUE(Call(router, serve::SolveRequest{
                               "doomed", UtilityObjective::kOutputSize,
                               Query(2.0, 0.5)})
                  .ok());
  ASSERT_TRUE(Call(router, serve::DropTenantRequest{"doomed"}).ok());
  // A tenant dropped behind the router's back, directly on its backend.
  ASSERT_TRUE(Call(router, serve::CreateTenantRequest{"vanished",
                                                      Synthetic(78),
                                                      std::nullopt})
                  .ok());
  for (auto* service : {&a.service, &b.service}) {
    const std::vector<std::string> tenants = service->Tenants();
    if (std::count(tenants.begin(), tenants.end(), "vanished") > 0) {
      ASSERT_TRUE(service->DropTenant("vanished").ok());
    }
  }

  // Both removals must go through: before the pin-lifecycle fixes the
  // stale pins made RemoveBackend fail "still hosts tenants" forever.
  Result<std::vector<Migration>> removed = router.RemoveBackend(a.port());
  ASSERT_TRUE(removed.ok()) << removed.status();
  EXPECT_EQ(router.backend_count(), 1u);
  const Result<std::vector<Migration>> last = router.RemoveBackend(b.port());
  EXPECT_TRUE(last.ok()) << last.status();
  EXPECT_EQ(router.backend_count(), 0u);
}

TEST(NetRouterTest, RemoveBackendDrainsItsTenants) {
  BackendProcess a;
  BackendProcess b;
  Router::Options options;
  options.backends = {a.port(), b.port()};
  Router router(options);
  ASSERT_TRUE(router.Start().ok());

  const int kTenants = 6;
  std::vector<double> objectives(kTenants);
  for (int i = 0; i < kTenants; ++i) {
    const std::string tenant = "tenant-" + std::to_string(i);
    ASSERT_TRUE(Call(router,
                     serve::CreateTenantRequest{tenant, Synthetic(200 + i),
                                                std::nullopt})
                    .ok());
    const serve::ServeResponse solved = Call(
        router, serve::SolveRequest{tenant, UtilityObjective::kOutputSize,
                                    Query(2.0, 0.5)});
    ASSERT_TRUE(solved.ok()) << solved.status;
    objectives[i] = solved.solution()->objective_value;
  }

  Result<std::vector<Migration>> migrated = router.RemoveBackend(a.port());
  ASSERT_TRUE(migrated.ok()) << migrated.status();
  EXPECT_EQ(router.backend_count(), 1u);
  // Everything now lives on b, and every tenant still answers — with the
  // same objective it had before the drain.
  EXPECT_EQ(b.service.Tenants().size(), static_cast<size_t>(kTenants));
  for (int i = 0; i < kTenants; ++i) {
    const std::string tenant = "tenant-" + std::to_string(i);
    const serve::ServeResponse solved = Call(
        router, serve::SolveRequest{tenant, UtilityObjective::kOutputSize,
                                    Query(2.0, 0.5)});
    ASSERT_TRUE(solved.ok()) << solved.status;
    EXPECT_NEAR(solved.solution()->objective_value, objectives[i], 1e-6)
        << tenant;
  }
  // Removing the last backend while it hosts tenants must refuse.
  EXPECT_FALSE(router.RemoveBackend(b.port()).ok());
  EXPECT_EQ(router.backend_count(), 1u);
}

}  // namespace
}  // namespace privsan
