// Snapshot/restore round trips: bit-identical logs, DP rows and bases; a
// restored session's first solve warm-starts from the stored basis and
// reproduces the pre-snapshot objective; corrupt files fail cleanly.
#include "serve/snapshot.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/session.h"
#include "lp/basis_io.h"
#include "serve/service.h"
#include "synth/generator.h"
#include "test_fixtures.h"

namespace privsan {
namespace {

SearchLog Synthetic(uint64_t seed = 41) {
  SyntheticLogConfig config = TinyConfig();
  config.seed = seed;
  config.num_users = 70;
  config.num_events = 3500;
  return GenerateSearchLog(config).value();
}

UmpQuery Query(double e_eps, double delta, uint64_t output_size = 0) {
  UmpQuery query;
  query.privacy = PrivacyParams::FromEEpsilon(e_eps, delta);
  query.output_size = output_size;
  return query;
}

// Id-sensitive log equality: same names at the same ids, same counts.
void ExpectLogsIdentical(const SearchLog& a, const SearchLog& b) {
  ASSERT_EQ(a.num_users(), b.num_users());
  ASSERT_EQ(a.num_pairs(), b.num_pairs());
  ASSERT_EQ(a.total_clicks(), b.total_clicks());
  for (UserId u = 0; u < a.num_users(); ++u) {
    EXPECT_EQ(a.user_name(u), b.user_name(u)) << "user " << u;
    const auto log_a = a.UserLogOf(u);
    const auto log_b = b.UserLogOf(u);
    ASSERT_EQ(log_a.size(), log_b.size()) << "user " << u;
    for (size_t i = 0; i < log_a.size(); ++i) {
      EXPECT_EQ(log_a[i], log_b[i]) << "user " << u << " cell " << i;
    }
  }
  for (PairId p = 0; p < a.num_pairs(); ++p) {
    EXPECT_EQ(a.query_name(a.pair_query(p)), b.query_name(b.pair_query(p)));
    EXPECT_EQ(a.url_name(a.pair_url(p)), b.url_name(b.pair_url(p)));
    EXPECT_EQ(a.pair_total(p), b.pair_total(p));
  }
}

void ExpectBasesEqual(const lp::Basis& a, const lp::Basis& b) {
  EXPECT_EQ(a.basic, b.basic);
  ASSERT_EQ(a.state.size(), b.state.size());
  for (size_t i = 0; i < a.state.size(); ++i) {
    EXPECT_EQ(a.state[i], b.state[i]) << "state " << i;
  }
}

TEST(BasisIoTest, RoundTripsAndValidates) {
  lp::Basis basis;
  basis.state = {lp::VarStatus::kAtLower, lp::VarStatus::kBasic,
                 lp::VarStatus::kAtUpper, lp::VarStatus::kBasic,
                 lp::VarStatus::kFree};
  basis.basic = {1, 3};
  std::stringstream stream;
  lp::WriteBasis(stream, basis);
  const lp::Basis restored = lp::ReadBasis(stream).value();
  ExpectBasesEqual(basis, restored);
  EXPECT_TRUE(lp::ValidateBasisShape(restored, 3, 2).ok());
  EXPECT_FALSE(lp::ValidateBasisShape(restored, 4, 2).ok());

  // Truncation fails with IoError, never crashes.
  std::stringstream truncated(stream.str().substr(0, 10));
  EXPECT_FALSE(lp::ReadBasis(truncated).ok());
}

TEST(SnapshotTest, RoundTripIsBitIdentical) {
  SanitizerSession session = SanitizerSession::Create(Synthetic()).value();
  // Solve two objectives so the snapshot carries non-trivial bases.
  (void)session.Solve(UtilityObjective::kOutputSize, Query(2.0, 0.5))
      .value();
  (void)session.Solve(UtilityObjective::kFrequentPairs, Query(2.0, 0.5))
      .value();

  const SessionSnapshot original = session.Snapshot();
  std::stringstream stream;
  ASSERT_TRUE(serve::WriteSnapshot(stream, original).ok());
  const SessionSnapshot restored = serve::ReadSnapshot(stream).value();

  ExpectLogsIdentical(original.raw, restored.raw);
  ExpectLogsIdentical(original.log, restored.log);
  EXPECT_EQ(original.stats.pairs_removed, restored.stats.pairs_removed);
  EXPECT_EQ(original.stats.clicks_retained, restored.stats.clicks_retained);

  ASSERT_EQ(original.system.num_rows(), restored.system.num_rows());
  ASSERT_EQ(original.system.num_pairs(), restored.system.num_pairs());
  for (size_t r = 0; r < original.system.num_rows(); ++r) {
    EXPECT_EQ(original.system.RowUser(r), restored.system.RowUser(r));
    const auto row_a = original.system.Row(r);
    const auto row_b = restored.system.Row(r);
    ASSERT_EQ(row_a.size(), row_b.size()) << "row " << r;
    for (size_t i = 0; i < row_a.size(); ++i) {
      EXPECT_EQ(row_a[i], row_b[i]) << "row " << r << " entry " << i;
    }
  }
  ASSERT_EQ(original.bases.size(), restored.bases.size());
  for (size_t i = 0; i < original.bases.size(); ++i) {
    ExpectBasesEqual(original.bases[i], restored.bases[i]);
  }
}

TEST(SnapshotTest, RestoredSessionResumesWarmWithIdenticalObjective) {
  const UmpQuery query = Query(2.0, 0.5);
  SanitizerSession session = SanitizerSession::Create(Synthetic()).value();
  const UmpSolution before =
      session.Solve(UtilityObjective::kOutputSize, query).value();
  ASSERT_FALSE(before.stats.warm_started);  // first solve is cold

  SessionSnapshot snapshot = session.Snapshot();
  SanitizerSession restored =
      SanitizerSession::FromSnapshot(std::move(snapshot)).value();
  const UmpSolution after =
      restored.Solve(UtilityObjective::kOutputSize, query).value();

  // The restored basis is optimal for the same rhs: the warm solve must
  // engage and land on the same objective with (far) fewer pivots.
  EXPECT_TRUE(after.stats.warm_started);
  EXPECT_NEAR(after.objective_value, before.objective_value,
              1e-6 * (1.0 + before.objective_value));
  EXPECT_EQ(after.output_size, before.output_size);
  EXPECT_LT(after.stats.root_iterations, before.stats.root_iterations);
}

TEST(SnapshotTest, FileRoundTripThroughService) {
  const std::string path = testing::TempDir() + "/privsan_snapshot_test.bin";
  const UmpQuery query = Query(1.7, 0.5);

  serve::SanitizerService service;
  ASSERT_TRUE(service.CreateTenant("t", Synthetic(43)).ok());
  const UmpSolution before =
      service.Solve("t", UtilityObjective::kOutputSize, query).value();
  ASSERT_TRUE(service.SaveSnapshot("t", path).ok());

  // "Restart": a fresh service restores the tenant from disk.
  serve::SanitizerService after_restart;
  ASSERT_TRUE(after_restart.RestoreTenant("t", path).ok());
  const UmpSolution after =
      after_restart.Solve("t", UtilityObjective::kOutputSize, query).value();
  EXPECT_TRUE(after.stats.warm_started);
  EXPECT_EQ(after.output_size, before.output_size);
  EXPECT_NEAR(after.objective_value, before.objective_value,
              1e-6 * (1.0 + before.objective_value));
  std::remove(path.c_str());
}

TEST(SnapshotTest, AppendAfterRestoreStaysIncremental) {
  const SearchLog full = Synthetic(47);
  SanitizerSession session = SanitizerSession::Create(full).value();
  // Click the least-shared retained pair so most rows stay untouched.
  const SearchLog& log = session.log();
  PairId target = 0;
  for (PairId p = 1; p < log.num_pairs(); ++p) {
    if (log.PairUserCount(p) < log.PairUserCount(target)) target = p;
  }
  SearchLogBuilder extra;
  extra.Add("brand_new_user", log.query_name(log.pair_query(target)),
            log.url_name(log.pair_url(target)), 2);
  (void)session.Solve(UtilityObjective::kOutputSize, Query(2.0, 0.5))
      .value();
  std::stringstream stream;
  ASSERT_TRUE(serve::WriteSnapshot(stream, session.Snapshot()).ok());
  SanitizerSession restored =
      SanitizerSession::FromSnapshot(serve::ReadSnapshot(stream).value())
          .value();

  ASSERT_TRUE(restored.AppendUsers(extra.Build()).ok());
  EXPECT_GT(restored.last_append_stats().rows_copied, 0u);
  const UmpSolution solution =
      restored.Solve(UtilityObjective::kOutputSize, Query(2.0, 0.5)).value();
  EXPECT_TRUE(solution.stats.warm_started);
}

TEST(SnapshotTest, CorruptAndTruncatedFilesFailCleanly) {
  SanitizerSession session = SanitizerSession::Create(Synthetic()).value();
  std::stringstream stream;
  ASSERT_TRUE(serve::WriteSnapshot(stream, session.Snapshot()).ok());
  const std::string bytes = stream.str();

  {
    std::stringstream bad_magic("not a snapshot at all");
    const auto result = serve::ReadSnapshot(bad_magic);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  }
  // Truncation at several depths: header, logs, rows, bases.
  for (const double fraction : {0.1, 0.5, 0.9, 0.99}) {
    std::stringstream truncated(
        bytes.substr(0, static_cast<size_t>(bytes.size() * fraction)));
    EXPECT_FALSE(serve::ReadSnapshot(truncated).ok())
        << "fraction " << fraction;
  }

  EXPECT_EQ(serve::RestoreSession("/nonexistent/path.bin").status().code(),
            StatusCode::kIoError);
}

TEST(SnapshotTest, VersionMismatchNamesBothVersions) {
  SanitizerSession session = SanitizerSession::Create(Synthetic()).value();
  std::stringstream stream;
  ASSERT_TRUE(serve::WriteSnapshot(stream, session.Snapshot()).ok());
  std::string bytes = stream.str();

  // Header layout: 7-byte magic "PSANSNP" + 1-byte format version.
  ASSERT_GT(bytes.size(), 8u);
  ASSERT_EQ(bytes.substr(0, 7), "PSANSNP");
  ASSERT_EQ(bytes[7], '\x02');  // current version — v1 files stay readable

  // A future-format file must fail with a version message, not as generic
  // corruption (and not as a foreign file).
  bytes[7] = '\x03';
  std::stringstream future_version(bytes);
  const auto result = serve::ReadSnapshot(future_version);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_NE(result.status().message().find("version 3"), std::string::npos)
      << result.status();
  EXPECT_NE(result.status().message().find("1-2"), std::string::npos)
      << result.status();

  // A wrong magic stays a distinct failure mode.
  bytes[0] = 'X';
  std::stringstream foreign(bytes);
  const auto foreign_result = serve::ReadSnapshot(foreign);
  ASSERT_FALSE(foreign_result.ok());
  EXPECT_NE(foreign_result.status().message().find("bad magic"),
            std::string::npos)
      << foreign_result.status();
}

TEST(SnapshotTest, MismatchedOptionsDropOnlyTheBases) {
  SanitizerSession session = SanitizerSession::Create(Synthetic()).value();
  (void)session.Solve(UtilityObjective::kFrequentPairs, Query(2.0, 0.5))
      .value();

  // Restoring under a different F-UMP support reshapes the frequent set:
  // the stored F-UMP basis no longer fits and must be dropped — the solve
  // then runs cold but still succeeds.
  SessionOptions other;
  other.fump.min_support = 1.0 / 10;
  SanitizerSession restored =
      SanitizerSession::FromSnapshot(session.Snapshot(), other).value();
  const auto solution =
      restored.Solve(UtilityObjective::kFrequentPairs, Query(2.0, 0.5));
  ASSERT_TRUE(solution.ok());
}

}  // namespace
}  // namespace privsan
