#include "log/histogram.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace privsan {
namespace {

using testing_fixtures::Figure1Log;

TEST(QueryUrlHistogramTest, FromLogMatchesPairTotals) {
  SearchLog log = Figure1Log();
  QueryUrlHistogram histogram = QueryUrlHistogram::FromLog(log);
  ASSERT_EQ(histogram.counts.size(), log.num_pairs());
  EXPECT_EQ(histogram.total, log.total_clicks());
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    EXPECT_EQ(histogram.counts[p], log.pair_total(p));
  }
}

TEST(QueryUrlHistogramTest, SupportMatchesLog) {
  SearchLog log = Figure1Log();
  QueryUrlHistogram histogram = QueryUrlHistogram::FromLog(log);
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    EXPECT_DOUBLE_EQ(histogram.Support(p), log.PairSupport(p));
  }
}

TEST(OutputCountsTest, FromVector) {
  OutputCounts output = OutputCounts::FromVector({0, 3, 20, 0, 4});
  EXPECT_EQ(output.total, 27u);
  EXPECT_DOUBLE_EQ(output.Support(2), 20.0 / 27.0);
  EXPECT_DOUBLE_EQ(output.Support(0), 0.0);
}

TEST(OutputCountsTest, EmptyOutputSupportIsZero) {
  OutputCounts output = OutputCounts::FromVector({0, 0});
  EXPECT_EQ(output.total, 0u);
  EXPECT_DOUBLE_EQ(output.Support(0), 0.0);
}

TEST(TripletHistogramViewTest, TrialProbabilitiesSumToOne) {
  SearchLog log = Figure1Log();
  TripletHistogramView view(log);
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    auto probs = view.TrialProbabilities(p);
    double sum = 0.0;
    for (double q : probs) sum += q;
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(TripletHistogramViewTest, Figure1GoogleProbabilities) {
  SearchLog log = Figure1Log();
  TripletHistogramView view(log);
  PairId google = *log.FindPair("google", "google.com");
  auto probs = view.TrialProbabilities(google);
  ASSERT_EQ(probs.size(), 3u);
  // Users sorted by id: 081 -> 15/39, 082 -> 7/39, 083 -> 17/39.
  EXPECT_DOUBLE_EQ(probs[0], 15.0 / 39.0);
  EXPECT_DOUBLE_EQ(probs[1], 7.0 / 39.0);
  EXPECT_DOUBLE_EQ(probs[2], 17.0 / 39.0);
}

TEST(TripletHistogramViewTest, RowTotals) {
  SearchLog log = Figure1Log();
  TripletHistogramView view(log);
  EXPECT_EQ(view.num_pairs(), log.num_pairs());
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    EXPECT_EQ(view.RowTotal(p), log.pair_total(p));
    uint64_t row_sum = 0;
    for (const UserCount& cell : view.Row(p)) row_sum += cell.count;
    EXPECT_EQ(row_sum, view.RowTotal(p));
  }
}

}  // namespace
}  // namespace privsan
