// The epoll serving front-end and pipelined client: in-process NetServer
// over a real loopback socket. Covers per-connection reply ordering for
// pipelined bursts, admission-control statuses crossing the wire intact,
// error containment (well-framed-but-undecodable requests answer and the
// connection survives; frame-layer garbage answers once and closes), EOF
// draining every in-flight reply, and the text-mode line handler.
#include "net/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/codec.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "serve/api.h"
#include "serve/service.h"
#include "synth/generator.h"
#include "test_fixtures.h"

namespace privsan {
namespace {

using net::Frame;
using net::FrameDecoder;
using net::NetClient;
using net::NetServer;

SearchLog Synthetic(uint64_t seed, size_t users = 40, size_t events = 1500) {
  SyntheticLogConfig config = TinyConfig();
  config.seed = seed;
  config.num_users = users;
  config.num_events = events;
  return GenerateSearchLog(config).value();
}

UmpQuery Query(double e_eps, double delta) {
  UmpQuery query;
  query.privacy = PrivacyParams::FromEEpsilon(e_eps, delta);
  return query;
}

// A NetServer running on its own thread; Shutdown + join on destruction.
class ServerThread {
 public:
  explicit ServerThread(serve::SanitizerService* service) {
    server_ = std::make_unique<NetServer>(service);
    StartAndRun();
  }
  explicit ServerThread(NetServer::TextHandler handler,
                        net::ServerOptions options = {}) {
    server_ = std::make_unique<NetServer>(std::move(handler), options);
    StartAndRun();
  }
  ~ServerThread() {
    server_->Shutdown();
    thread_.join();
  }

  uint16_t port() const { return server_->port(); }

 private:
  void StartAndRun() {
    ASSERT_TRUE(server_->Start().ok());
    thread_ = std::thread([this] {
      const Status status = server_->Serve();
      EXPECT_TRUE(status.ok()) << status;
    });
  }

  std::unique_ptr<NetServer> server_;
  std::thread thread_;
};

// A pipelined create -> append -> solve -> stats burst, sent without
// reading a single reply, must come back in order, all ok, and reflect
// FIFO semantics (the solve sees the append).
TEST(NetServerTest, PipelinedBurstRepliesInOrder) {
  const SearchLog full = Synthetic(3, /*users=*/60, /*events=*/3000);
  const UserId cut = full.num_users() / 2;
  serve::SanitizerService service;
  ServerThread server(&service);

  NetClient client = NetClient::Connect(server.port()).value();
  std::vector<uint64_t> ids;
  ids.push_back(client
                    .Send(serve::CreateTenantRequest{
                        "t", UserSlice(full, 0, cut), std::nullopt})
                    .value());
  ids.push_back(
      client
          .Send(serve::AppendRequest{"t",
                                     UserSlice(full, cut, full.num_users())})
          .value());
  ids.push_back(client
                    .Send(serve::SolveRequest{
                        "t", UtilityObjective::kOutputSize, Query(2.0, 0.5)})
                    .value());
  ids.push_back(client.Send(serve::StatsRequest{"t"}).value());
  EXPECT_EQ(client.pending(), 4u);
  EXPECT_EQ(ids[3], ids[0] + 3);  // sequential request ids

  const serve::ServeResponse created = client.Receive().value();
  const serve::ServeResponse appended = client.Receive().value();
  const serve::ServeResponse solved = client.Receive().value();
  const serve::ServeResponse stats = client.Receive().value();
  EXPECT_EQ(client.pending(), 0u);
  EXPECT_TRUE(created.ok()) << created.status;
  EXPECT_TRUE(appended.ok()) << appended.status;
  ASSERT_TRUE(solved.ok()) << solved.status;
  ASSERT_NE(solved.solution(), nullptr);
  ASSERT_TRUE(stats.ok()) << stats.status;
  ASSERT_NE(stats.stats(), nullptr);
  // The solve, queued behind the append on the same connection, saw the
  // full log — wire pipelining preserved per-tenant FIFO order.
  EXPECT_EQ(stats.stats()->appends_enqueued, 1u);
  EXPECT_EQ(stats.stats()->flushes, 1u);
  SanitizerSession reference = SanitizerSession::Create(full).value();
  EXPECT_EQ(solved.solution()->output_size,
            reference.Solve(UtilityObjective::kOutputSize, Query(2.0, 0.5))
                .value()
                .output_size);
}

// Admission rejections surface on the wire as kResourceExhausted in the
// frame status header, not as dropped connections or generic failures.
TEST(NetServerTest, AdmissionRejectionCrossesTheWireTyped) {
  serve::ServiceOptions options;
  options.num_threads = 1;
  options.max_queue_depth = 2;
  serve::SanitizerService service(options);
  ServerThread server(&service);

  NetClient client = NetClient::Connect(server.port()).value();
  ASSERT_TRUE(client
                  .Call(serve::CreateTenantRequest{
                      "t", Synthetic(5, 120, 6000), std::nullopt})
                  .value()
                  .ok());
  // Park the single worker on a slow sweep, then flood appends past the
  // queue depth. The flood batches are generated up front — building them
  // between Sends would give the parked worker time to finish the sweep
  // and drain queue slots, letting extra appends through.
  const int kFlood = 10;
  std::vector<SearchLog> floods;
  for (int i = 0; i < kFlood; ++i) floods.push_back(Synthetic(50 + i));
  std::vector<UmpQuery> grid;
  for (double delta : {0.2, 0.5, 0.8}) {
    for (int i = 0; i < 6; ++i) grid.push_back(Query(1.5 + 0.2 * i, delta));
  }
  ASSERT_TRUE(client
                  .Send(serve::SweepRequest{
                      "t", UtilityObjective::kOutputSize, grid, {}})
                  .ok());
  for (int i = 0; i < kFlood; ++i) {
    ASSERT_TRUE(client.Send(serve::AppendRequest{"t", floods[i]}).ok());
  }
  const serve::ServeResponse swept = client.Receive().value();
  EXPECT_TRUE(swept.ok()) << swept.status;
  int rejected = 0;
  for (int i = 0; i < kFlood; ++i) {
    const serve::ServeResponse response = client.Receive().value();
    if (response.status.code() == StatusCode::kResourceExhausted) {
      ++rejected;
    } else {
      EXPECT_TRUE(response.ok()) << response.status;
    }
  }
  // At least depth-many appends queue; the slack covers appends the worker
  // drains if a descheduled client lets the sweep finish mid-flood.
  EXPECT_GE(rejected, kFlood - 5);
}

// A frame that parses at the frame layer but fails request decoding gets
// an error reply echoing its request id — and the connection stays usable.
TEST(NetServerTest, UndecodableRequestAnswersAndConnectionSurvives) {
  serve::SanitizerService service;
  ASSERT_TRUE(service.CreateTenant("t", Synthetic(7)).ok());
  ServerThread server(&service);

  NetClient client = NetClient::Connect(server.port()).value();
  Frame garbage;
  garbage.verb = net::FrameVerb::kSolve;
  garbage.request_id = 42;
  garbage.payload = "not a solve request";
  ASSERT_TRUE(client.SendFrame(garbage).ok());
  const Frame reply = client.ReceiveFrame().value();
  EXPECT_EQ(reply.request_id, 42u);
  EXPECT_NE(reply.status, 0);  // typed error in the frame header

  // Same connection, next request: still served.
  const serve::ServeResponse stats =
      client.Call(serve::StatsRequest{"t"}).value();
  ASSERT_TRUE(stats.ok()) << stats.status;
  ASSERT_NE(stats.stats(), nullptr);
}

// Frame-layer garbage (bad magic — the stream has lost sync) answers one
// error frame with request id 0, then the server closes the connection.
TEST(NetServerTest, FrameDesyncAnswersOnceAndCloses) {
  serve::SanitizerService service;
  ServerThread server(&service);

  const int fd = net::ConnectTcp(server.port()).value();
  // A complete frame by length (16 bytes after the length word) whose
  // magic is garbage — the decoder rejects it as soon as it is whole.
  const std::string junk =
      std::string("\x10\x00\x00\x00", 4) + "GARBAGEGARBAGE!!";
  ASSERT_EQ(::write(fd, junk.data(), junk.size()),
            static_cast<ssize_t>(junk.size()));

  FrameDecoder decoder;
  Frame reply;
  bool got_reply = false;
  bool got_eof = false;
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      got_eof = (n == 0);
      break;
    }
    decoder.Feed(buf, static_cast<size_t>(n));
    if (!got_reply && decoder.Next(&reply).value()) got_reply = true;
  }
  ::close(fd);
  ASSERT_TRUE(got_reply);
  EXPECT_TRUE(got_eof);
  EXPECT_EQ(reply.request_id, 0u);
  EXPECT_NE(reply.status, 0);
  const serve::ServeResponse decoded = net::DecodeResponse(reply).value();
  EXPECT_FALSE(decoded.ok());
}

// A client that bursts requests and shuts down its write side still
// collects every reply: EOF drains the pending queue before closing.
TEST(NetServerTest, EofDrainsEveryPendingReply) {
  serve::SanitizerService service;
  ServerThread server(&service);

  const int fd = net::ConnectTcp(server.port()).value();
  std::string wire;
  wire += net::EncodeFrame(
      net::EncodeRequest(
          serve::CreateTenantRequest{"t", Synthetic(9), std::nullopt}, 1)
          .value());
  wire += net::EncodeFrame(
      net::EncodeRequest(serve::AppendRequest{"t", Synthetic(10)}, 2)
          .value());
  wire += net::EncodeFrame(
      net::EncodeRequest(serve::StatsRequest{"t"}, 3).value());
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::write(fd, wire.data() + sent, wire.size() - sent);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);

  FrameDecoder decoder;
  std::vector<Frame> replies;
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    ASSERT_GE(n, 0);
    if (n == 0) break;
    decoder.Feed(buf, static_cast<size_t>(n));
    Frame frame;
    while (decoder.Next(&frame).value()) replies.push_back(frame);
  }
  ::close(fd);
  ASSERT_EQ(replies.size(), 3u);
  for (size_t i = 0; i < replies.size(); ++i) {
    EXPECT_EQ(replies[i].request_id, i + 1);  // request order preserved
    const serve::ServeResponse response =
        net::DecodeResponse(replies[i]).value();
    EXPECT_TRUE(response.ok()) << response.status;
  }
  ASSERT_NE(net::DecodeResponse(replies[2]).value().stats(), nullptr);
}

// A server that accepts but never replies must not wedge the client
// forever (a hung backend would otherwise block a router worker — and any
// migration waiting on it — indefinitely): Receive fails with a timeout
// and closes the connection.
TEST(NetClientTest, ReceiveTimesOutOnSilentServer) {
  uint16_t port = 0;
  const int listen_fd = net::ListenTcp(0, &port).value();
  net::ClientOptions options;
  options.receive_timeout_ms = 100;
  NetClient client = NetClient::Connect(port, options).value();
  ASSERT_TRUE(client.Send(serve::StatsRequest{"t"}).ok());
  const auto start = std::chrono::steady_clock::now();
  const Result<serve::ServeResponse> response = client.Receive();
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kIoError);
  EXPECT_FALSE(client.connected());
  EXPECT_GE(elapsed_ms, 90);  // poll may round the deadline down slightly
  EXPECT_LT(elapsed_ms, 5000);
  ::close(listen_fd);
}

// Backpressure: under tiny pending/outbuf caps, a connection pumping a
// large pipelined burst pauses and resumes its reads rather than queueing
// without bound — and still answers every line, in order.
TEST(NetServerTest, BackpressurePausesReadsWithoutLosingReplies) {
  net::ServerOptions options;
  options.max_pending_replies = 4;
  options.max_outbuf_bytes = 1u << 12;
  ServerThread server(
      NetServer::TextHandler([](std::string line, NetServer::TextDone done) {
        done("ACK " + line + "\n");
      }),
      options);

  const int kLines = 20000;
  const int fd = net::ConnectTcp(server.port()).value();
  // Writer on its own thread: with the server's reads paused the kernel
  // buffers fill and the writes themselves block until the reader drains.
  std::thread writer([fd] {
    std::string chunk;
    for (int i = 0; i < kLines; ++i) {
      chunk += "line-" + std::to_string(i) + "-" + std::string(32, 'x') +
               "\n";
      if (chunk.size() > 32768 || i == kLines - 1) {
        size_t sent = 0;
        while (sent < chunk.size()) {
          const ssize_t n =
              ::write(fd, chunk.data() + sent, chunk.size() - sent);
          ASSERT_GT(n, 0);
          sent += static_cast<size_t>(n);
        }
        chunk.clear();
      }
    }
    ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  });
  std::string out;
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    ASSERT_GE(n, 0);
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  writer.join();
  ::close(fd);
  // Every line answered, in order.
  int next = 0;
  size_t at = 0;
  while (at < out.size()) {
    const std::string expected =
        "ACK line-" + std::to_string(next) + "-" + std::string(32, 'x') +
        "\n";
    ASSERT_EQ(out.compare(at, expected.size(), expected), 0)
        << "reply " << next;
    at += expected.size();
    ++next;
  }
  EXPECT_EQ(next, kLines);
}

// Text mode: lines in, handler replies out, in line order.
TEST(NetServerTest, TextModeServesLinesInOrder) {
  ServerThread server(NetServer::TextHandler(
      [](std::string line, NetServer::TextDone done) {
        done("ACK " + line + "\n");
      }));

  const int fd = net::ConnectTcp(server.port()).value();
  const std::string lines = "alpha\r\nbeta\ngamma\n";
  ASSERT_EQ(::write(fd, lines.data(), lines.size()),
            static_cast<ssize_t>(lines.size()));
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  std::string out;
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    ASSERT_GE(n, 0);
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(out, "ACK alpha\nACK beta\nACK gamma\n");
}

}  // namespace
}  // namespace privsan
