#include "log/log_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "test_fixtures.h"

namespace privsan {
namespace {

class LogIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("privsan_log_io_" + std::to_string(::getpid()) + ".tsv"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

TEST_F(LogIoTest, RoundTripPreservesEverything) {
  SearchLog original = testing_fixtures::Figure1Log();
  ASSERT_TRUE(WriteSearchLogTsv(original, path_).ok());
  SearchLog loaded = ReadSearchLogTsv(path_).value();

  EXPECT_EQ(loaded.num_users(), original.num_users());
  EXPECT_EQ(loaded.num_pairs(), original.num_pairs());
  EXPECT_EQ(loaded.num_tuples(), original.num_tuples());
  EXPECT_EQ(loaded.total_clicks(), original.total_clicks());

  // Counts match tuple by tuple (ids may be permuted; compare by name).
  for (UserId u = 0; u < original.num_users(); ++u) {
    for (const PairCount& cell : original.UserLogOf(u)) {
      PairId loaded_pair =
          *loaded.FindPair(original.query_name(original.pair_query(cell.pair)),
                           original.url_name(original.pair_url(cell.pair)));
      UserId loaded_user = *loaded.FindUser(original.user_name(u));
      EXPECT_EQ(loaded.TripletCount(loaded_pair, loaded_user), cell.count);
    }
  }
}

TEST_F(LogIoTest, RoundTripSynthetic) {
  SearchLog original = testing_fixtures::SmallSyntheticLog();
  ASSERT_TRUE(WriteSearchLogTsv(original, path_).ok());
  SearchLog loaded = ReadSearchLogTsv(path_).value();
  EXPECT_EQ(loaded.total_clicks(), original.total_clicks());
  EXPECT_EQ(loaded.num_pairs(), original.num_pairs());
  EXPECT_EQ(loaded.num_users(), original.num_users());
}

TEST_F(LogIoTest, ReadRejectsWrongFieldCount) {
  std::ofstream(path_) << "user\tquery\turl\n";
  EXPECT_EQ(ReadSearchLogTsv(path_).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(LogIoTest, ReadRejectsNonNumericCount) {
  std::ofstream(path_) << "user\tquery\turl\tmany\n";
  EXPECT_FALSE(ReadSearchLogTsv(path_).ok());
}

TEST_F(LogIoTest, ReadRejectsNegativeCount) {
  std::ofstream(path_) << "user\tquery\turl\t-3\n";
  EXPECT_FALSE(ReadSearchLogTsv(path_).ok());
}

TEST_F(LogIoTest, ReadSkipsComments) {
  std::ofstream(path_) << "# a comment line\nu\tq\tr\t2\n";
  SearchLog log = ReadSearchLogTsv(path_).value();
  EXPECT_EQ(log.total_clicks(), 2u);
}

TEST_F(LogIoTest, ReadSumsDuplicateRows) {
  std::ofstream(path_) << "u\tq\tr\t2\nu\tq\tr\t3\n";
  SearchLog log = ReadSearchLogTsv(path_).value();
  EXPECT_EQ(log.num_tuples(), 1u);
  EXPECT_EQ(log.total_clicks(), 5u);
}

TEST_F(LogIoTest, MissingFile) {
  EXPECT_EQ(ReadSearchLogTsv("/does/not/exist.tsv").status().code(),
            StatusCode::kIoError);
}

TEST_F(LogIoTest, EmptyLogWritesHeaderOnly) {
  SearchLogBuilder builder;
  ASSERT_TRUE(WriteSearchLogTsv(builder.Build(), path_).ok());
  SearchLog loaded = ReadSearchLogTsv(path_).value();
  EXPECT_EQ(loaded.num_tuples(), 0u);
}

}  // namespace
}  // namespace privsan
