#include "core/constraints.h"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "test_fixtures.h"

namespace privsan {
namespace {

using testing_fixtures::Figure1Log;
using testing_fixtures::Figure1Preprocessed;
using testing_fixtures::TwoUserSharedLog;

TEST(ConstraintsTest, RejectsUnpreprocessedLog) {
  // Figure1Log still contains unique pairs -> FailedPrecondition.
  auto result =
      DpConstraintSystem::Build(Figure1Log(), PrivacyParams{1.0, 0.5});
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ConstraintsTest, RejectsInvalidParams) {
  auto result =
      DpConstraintSystem::Build(Figure1Preprocessed(), PrivacyParams{-1, 0.5});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConstraintsTest, OneRowPerUser) {
  DpConstraintSystem system =
      DpConstraintSystem::Build(Figure1Preprocessed(), PrivacyParams{1.0, 0.5})
          .value();
  EXPECT_EQ(system.num_rows(), 3u);
  EXPECT_EQ(system.num_pairs(), 3u);
}

TEST(ConstraintsTest, CoefficientsAreLogTijk) {
  SearchLog log = Figure1Preprocessed();
  DpConstraintSystem system =
      DpConstraintSystem::Build(log, PrivacyParams{1.0, 0.5}).value();

  PairId google = *log.FindPair("google", "google.com");
  UserId u081 = *log.FindUser("081");
  // t for (google, 081) = 39 / (39 - 15) = 1.625.
  bool found = false;
  for (size_t r = 0; r < system.num_rows(); ++r) {
    if (system.RowUser(r) != u081) continue;
    for (const DpConstraintEntry& e : system.Row(r)) {
      if (e.pair == google) {
        EXPECT_NEAR(e.log_t, std::log(39.0 / 24.0), 1e-12);
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(ConstraintsTest, AllCoefficientsPositive) {
  DpConstraintSystem system =
      DpConstraintSystem::Build(testing_fixtures::SmallSyntheticLog(),
                                PrivacyParams{1.0, 0.5})
          .value();
  for (size_t r = 0; r < system.num_rows(); ++r) {
    for (const DpConstraintEntry& e : system.Row(r)) {
      EXPECT_GT(e.log_t, 0.0);
      EXPECT_TRUE(std::isfinite(e.log_t));
    }
  }
}

TEST(ConstraintsTest, BudgetMatchesParams) {
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  DpConstraintSystem system =
      DpConstraintSystem::Build(Figure1Preprocessed(), params).value();
  EXPECT_DOUBLE_EQ(system.budget(), params.Budget());
}

TEST(ConstraintsTest, RowLhsComputation) {
  SearchLog log = TwoUserSharedLog();
  DpConstraintSystem system =
      DpConstraintSystem::Build(log, PrivacyParams{1.0, 0.5}).value();
  ASSERT_EQ(system.num_rows(), 2u);

  PairId q1 = *log.FindPair("q1", "u1");
  PairId q2 = *log.FindPair("q2", "u2");
  std::vector<uint64_t> x(log.num_pairs(), 0);
  x[q1] = 2;
  x[q2] = 1;

  for (size_t r = 0; r < system.num_rows(); ++r) {
    const bool is_alice =
        log.user_name(system.RowUser(r)) == std::string("alice");
    // alice: 2*log(10/6) + 1*log(2); bob: 2*log(10/4) + 1*log(2).
    const double expected =
        is_alice ? 2 * std::log(10.0 / 6.0) + std::log(2.0)
                 : 2 * std::log(10.0 / 4.0) + std::log(2.0);
    EXPECT_NEAR(system.RowLhs(r, std::span<const uint64_t>(x)), expected,
                1e-12);
  }
}

TEST(ConstraintsTest, ZeroVectorAlwaysSatisfies) {
  DpConstraintSystem system =
      DpConstraintSystem::Build(Figure1Preprocessed(),
                                PrivacyParams::FromEEpsilon(1.001, 1e-4))
          .value();
  std::vector<uint64_t> zero(system.num_pairs(), 0);
  EXPECT_TRUE(system.IsSatisfied(zero));
  EXPECT_DOUBLE_EQ(system.MaxRowLhs(zero), 0.0);
}

TEST(ConstraintsTest, LargeCountsViolate) {
  DpConstraintSystem system =
      DpConstraintSystem::Build(Figure1Preprocessed(),
                                PrivacyParams::FromEEpsilon(1.1, 0.01))
          .value();
  std::vector<uint64_t> huge(system.num_pairs(), 1000);
  EXPECT_FALSE(system.IsSatisfied(huge));
  EXPECT_GT(system.MaxRowLhs(huge), system.budget());
}

TEST(ConstraintsTest, DoubleAndIntLhsAgree) {
  SearchLog log = Figure1Preprocessed();
  DpConstraintSystem system =
      DpConstraintSystem::Build(log, PrivacyParams{1.0, 0.5}).value();
  std::vector<uint64_t> xi = {3, 1, 2};
  std::vector<double> xd = {3.0, 1.0, 2.0};
  for (size_t r = 0; r < system.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(system.RowLhs(r, std::span<const uint64_t>(xi)),
                     system.RowLhs(r, std::span<const double>(xd)));
  }
}

TEST(ConstraintsTest, EmptyLogYieldsNoRows) {
  SearchLogBuilder builder;
  SearchLog log = builder.Build();
  DpConstraintSystem system =
      DpConstraintSystem::Build(log, PrivacyParams{1.0, 0.5}).value();
  EXPECT_EQ(system.num_rows(), 0u);
  std::vector<uint64_t> empty;
  EXPECT_TRUE(system.IsSatisfied(empty));
}


TEST(ConstraintsTest, FromRowsRoundTripsParts) {
  const SearchLog log = Figure1Preprocessed();
  const DpConstraintSystem original =
      DpConstraintSystem::BuildRows(log).value();
  std::vector<std::vector<DpConstraintEntry>> rows;
  std::vector<UserId> row_users;
  for (size_t r = 0; r < original.num_rows(); ++r) {
    rows.emplace_back(original.Row(r).begin(), original.Row(r).end());
    row_users.push_back(original.RowUser(r));
  }
  const DpConstraintSystem rebuilt = DpConstraintSystem::FromRows(
      std::move(rows), std::move(row_users), original.num_pairs());
  ASSERT_EQ(rebuilt.num_rows(), original.num_rows());
  EXPECT_EQ(rebuilt.num_pairs(), original.num_pairs());
  for (size_t r = 0; r < original.num_rows(); ++r) {
    EXPECT_EQ(rebuilt.RowUser(r), original.RowUser(r));
    ASSERT_EQ(rebuilt.Row(r).size(), original.Row(r).size());
    for (size_t i = 0; i < original.Row(r).size(); ++i) {
      EXPECT_EQ(rebuilt.Row(r)[i], original.Row(r)[i]);
    }
  }
}

TEST(ConstraintsTest, PatchRowsRejectsMismatchedOldState) {
  const SearchLog log = Figure1Preprocessed();
  const DpConstraintSystem system =
      DpConstraintSystem::BuildRows(log).value();
  const SearchLog empty;
  // old_system claims rows over `log` but old_log is empty.
  const auto result = DpConstraintSystem::PatchRows(log, empty, system);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace privsan
