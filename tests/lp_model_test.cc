#include "lp/model.h"

#include <gtest/gtest.h>

namespace privsan {
namespace lp {
namespace {

TEST(LpModelTest, BuildBasicModel) {
  LpModel model(ObjectiveSense::kMaximize);
  int x = model.AddVariable(0.0, kInfinity, 3.0, "x");
  int y = model.AddVariable(0.0, 10.0, 2.0, "y");
  int r = model.AddConstraint(ConstraintSense::kLessEqual, 4.0, "cap");
  model.AddCoefficient(r, x, 1.0);
  model.AddCoefficient(r, y, 1.0);
  ASSERT_TRUE(model.Validate().ok());
  EXPECT_EQ(model.num_variables(), 2);
  EXPECT_EQ(model.num_constraints(), 1);
  EXPECT_EQ(model.variable(x).name, "x");
  EXPECT_EQ(model.constraint(r).entries.size(), 2u);
}

TEST(LpModelTest, ValidateMergesDuplicateCoefficients) {
  LpModel model;
  int x = model.AddVariable(0.0, kInfinity, 1.0);
  int r = model.AddConstraint(ConstraintSense::kLessEqual, 1.0);
  model.AddCoefficient(r, x, 2.0);
  model.AddCoefficient(r, x, 3.0);
  ASSERT_TRUE(model.Validate().ok());
  ASSERT_EQ(model.constraint(r).entries.size(), 1u);
  EXPECT_DOUBLE_EQ(model.constraint(r).entries[0].value, 5.0);
}

TEST(LpModelTest, ValidateDropsNothingButSorts) {
  LpModel model;
  int a = model.AddVariable(0.0, 1.0, 0.0);
  int b = model.AddVariable(0.0, 1.0, 0.0);
  int r = model.AddConstraint(ConstraintSense::kEqual, 0.0);
  model.AddCoefficient(r, b, 1.0);
  model.AddCoefficient(r, a, 1.0);
  ASSERT_TRUE(model.Validate().ok());
  EXPECT_EQ(model.constraint(r).entries[0].variable, a);
  EXPECT_EQ(model.constraint(r).entries[1].variable, b);
}

TEST(LpModelTest, ValidateRejectsCrossedBounds) {
  LpModel model;
  model.AddVariable(2.0, 1.0, 0.0);
  EXPECT_FALSE(model.Validate().ok());
}

TEST(LpModelTest, ValidateRejectsNonFiniteData) {
  {
    LpModel model;
    model.AddVariable(0.0, 1.0, std::numeric_limits<double>::infinity());
    EXPECT_FALSE(model.Validate().ok());
  }
  {
    LpModel model;
    int x = model.AddVariable(0.0, 1.0, 0.0);
    int r = model.AddConstraint(ConstraintSense::kLessEqual,
                                std::numeric_limits<double>::quiet_NaN());
    model.AddCoefficient(r, x, 1.0);
    EXPECT_FALSE(model.Validate().ok());
  }
  {
    LpModel model;
    int x = model.AddVariable(0.0, 1.0, 0.0);
    int r = model.AddConstraint(ConstraintSense::kLessEqual, 1.0);
    model.AddCoefficient(r, x, std::numeric_limits<double>::infinity());
    EXPECT_FALSE(model.Validate().ok());
  }
}

TEST(LpModelTest, ObjectiveValue) {
  LpModel model(ObjectiveSense::kMaximize);
  model.AddVariable(0.0, kInfinity, 3.0);
  model.AddVariable(0.0, kInfinity, -1.0);
  EXPECT_DOUBLE_EQ(model.ObjectiveValue({2.0, 4.0}), 2.0);
}

TEST(LpModelTest, IsFeasibleChecksBounds) {
  LpModel model;
  model.AddVariable(0.0, 5.0, 0.0);
  ASSERT_TRUE(model.Validate().ok());
  EXPECT_TRUE(model.IsFeasible({3.0}, 1e-9));
  EXPECT_FALSE(model.IsFeasible({-0.1}, 1e-9));
  EXPECT_FALSE(model.IsFeasible({5.1}, 1e-9));
  EXPECT_TRUE(model.IsFeasible({5.0 + 1e-12}, 1e-9));
}

TEST(LpModelTest, IsFeasibleChecksAllSenses) {
  LpModel model;
  int x = model.AddVariable(-kInfinity, kInfinity, 0.0);
  int le = model.AddConstraint(ConstraintSense::kLessEqual, 2.0);
  int ge = model.AddConstraint(ConstraintSense::kGreaterEqual, -1.0);
  int eq = model.AddConstraint(ConstraintSense::kEqual, 1.0);
  model.AddCoefficient(le, x, 1.0);
  model.AddCoefficient(ge, x, 1.0);
  model.AddCoefficient(eq, x, 1.0);
  ASSERT_TRUE(model.Validate().ok());
  EXPECT_TRUE(model.IsFeasible({1.0}, 1e-9));
  EXPECT_FALSE(model.IsFeasible({2.0}, 1e-9));   // violates equality
  EXPECT_FALSE(model.IsFeasible({-2.0}, 1e-9));  // violates >=
}

TEST(LpModelTest, IntegerFlag) {
  LpModel model;
  int x = model.AddVariable(0.0, 1.0, 1.0, "b", /*is_integer=*/true);
  EXPECT_TRUE(model.variable(x).is_integer);
}

}  // namespace
}  // namespace lp
}  // namespace privsan
