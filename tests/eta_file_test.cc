// The eta file must agree with the dense explicit inverse: both are
// BasisRep implementations of the same linear algebra, so FTRAN, BTRAN,
// and post-pivot updates must produce the same vectors (up to roundoff),
// and factorization must reproduce B x = v exactly.
#include "lp/eta_file.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/sparse_matrix.h"
#include "rng/random.h"

namespace privsan {
namespace lp {
namespace {

// A random m x n matrix (n >= m) whose first m columns form a
// diagonally-dominated (hence nonsingular) basis.
SparseMatrix MakeMatrix(Rng& rng, int m, int n, double density) {
  std::vector<Triplet> triplets;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      if (j < m && i == j) {
        triplets.push_back(Triplet{i, j, 3.0 + rng.NextDouble()});
      } else if (rng.NextBool(density)) {
        triplets.push_back(Triplet{i, j, rng.NextDouble(-1.0, 1.0)});
      }
    }
  }
  return SparseMatrix(m, n, std::move(triplets));
}

std::vector<double> RandomVector(Rng& rng, int m) {
  std::vector<double> v(m);
  for (double& x : v) x = rng.NextDouble(-2.0, 2.0);
  return v;
}

void ExpectNear(const std::vector<double>& a, const std::vector<double>& b,
                double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << "component " << i;
  }
}

// B * x for the basis columns selected by `basis` (slot i -> column).
std::vector<double> BasisTimes(const SparseMatrix& A,
                               const std::vector<int>& basis,
                               const std::vector<double>& x) {
  std::vector<double> out(A.rows(), 0.0);
  for (size_t i = 0; i < basis.size(); ++i) {
    A.AddColumnTo(basis[i], x[i], out);
  }
  return out;
}

TEST(EtaFileTest, FtranSolvesBasisSystem) {
  Rng rng(11);
  for (int m : {1, 4, 17, 50}) {
    SparseMatrix A = MakeMatrix(rng, m, m + 10, 0.3);
    std::vector<int> basis(m);
    for (int i = 0; i < m; ++i) basis[i] = i;

    EtaFile eta(/*max_updates=*/50, /*growth_limit=*/8.0);
    ASSERT_TRUE(eta.Refactorize(A, basis));

    // The eta file may permute slot ownership; solving B x = v must still
    // reproduce v through the (possibly reordered) basis columns.
    std::vector<double> v = RandomVector(rng, m);
    std::vector<double> x = v;
    eta.Ftran(x);
    ExpectNear(BasisTimes(A, basis, x), v, 1e-9);
  }
}

TEST(EtaFileTest, BtranIsTransposeOfFtran) {
  // <Btran(u), v> == <u, Ftran(v)> for all u, v.
  Rng rng(12);
  const int m = 23;
  SparseMatrix A = MakeMatrix(rng, m, m + 5, 0.4);
  std::vector<int> basis(m);
  for (int i = 0; i < m; ++i) basis[i] = i;
  EtaFile eta(50, 8.0);
  ASSERT_TRUE(eta.Refactorize(A, basis));

  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> u = RandomVector(rng, m);
    std::vector<double> v = RandomVector(rng, m);
    std::vector<double> bu = u;
    eta.Btran(bu);
    std::vector<double> fv = v;
    eta.Ftran(fv);
    double lhs = 0.0, rhs = 0.0;
    for (int i = 0; i < m; ++i) {
      lhs += bu[i] * v[i];
      rhs += u[i] * fv[i];
    }
    EXPECT_NEAR(lhs, rhs, 1e-8);
  }
}

TEST(EtaFileTest, AgreesWithDenseBasisAcrossUpdates) {
  Rng rng(13);
  const int m = 30;
  const int n = 80;
  SparseMatrix A = MakeMatrix(rng, m, n, 0.3);

  std::vector<int> eta_basis(m), dense_basis(m);
  for (int i = 0; i < m; ++i) eta_basis[i] = dense_basis[i] = i;

  EtaFile eta(100, 8.0);
  DenseBasis dense(100);
  ASSERT_TRUE(eta.Refactorize(A, eta_basis));
  ASSERT_TRUE(dense.Refactorize(A, dense_basis));

  // Interleave pivots: bring in nonbasic columns one at a time, choosing
  // the leaving slot by the largest FTRAN component (guaranteed stable).
  // Both representations must stay in lockstep on FTRAN and BTRAN — but
  // note the eta file permutes slots at refactorization, so comparisons go
  // through the basis mapping: solve against B, not against slot order.
  for (int pivot_round = 0; pivot_round < 15; ++pivot_round) {
    const int entering = m + pivot_round;

    // FTRAN equivalence through the slot mapping.
    std::vector<double> rhs_probe = RandomVector(rng, m);
    std::vector<double> xe = rhs_probe, xd = rhs_probe;
    eta.Ftran(xe);
    dense.Ftran(xd);
    ExpectNear(BasisTimes(A, eta_basis, xe), BasisTimes(A, dense_basis, xd),
               1e-7);

    // Pivot the same entering column into both, matched by basic variable.
    std::vector<double> we(m, 0.0);
    for (const SparseEntry& e : A.Column(entering)) we[e.index] = e.value;
    std::vector<double> wd = we;
    eta.Ftran(we);
    dense.Ftran(wd);

    int slot_e = 0;
    for (int i = 1; i < m; ++i) {
      if (std::abs(we[i]) > std::abs(we[slot_e])) slot_e = i;
    }
    // The same *variable* must leave in the dense rep.
    const int leaving_var = eta_basis[slot_e];
    int slot_d = -1;
    for (int i = 0; i < m; ++i) {
      if (dense_basis[i] == leaving_var) slot_d = i;
    }
    ASSERT_GE(slot_d, 0);
    EXPECT_NEAR(std::abs(we[slot_e]), std::abs(wd[slot_d]), 1e-6);

    ASSERT_TRUE(eta.Update(we, slot_e, 1e-9));
    ASSERT_TRUE(dense.Update(wd, slot_d, 1e-9));
    eta_basis[slot_e] = entering;
    dense_basis[slot_d] = entering;
  }
  EXPECT_EQ(eta.updates_since_refactor(), 15);
}

TEST(EtaFileTest, SingularBasisDetected) {
  // Two identical columns cannot form a basis.
  std::vector<Triplet> triplets = {
      {0, 0, 1.0}, {1, 0, 2.0}, {0, 1, 1.0}, {1, 1, 2.0}};
  SparseMatrix A(2, 2, std::move(triplets));
  std::vector<int> basis = {0, 1};
  EtaFile eta(10, 8.0);
  EXPECT_FALSE(eta.Refactorize(A, basis));
  DenseBasis dense(10);
  EXPECT_FALSE(dense.Refactorize(A, basis));
}

TEST(EtaFileTest, FailedRefactorizeLeavesFactorizationUntouched) {
  // Regression: a singular Refactorize() used to clobber the eta file (and
  // its nonzero counters) before bailing out, so a repair-and-retry saw a
  // half-built factorization. Failure must leave everything — the etas,
  // the counters, and the basis argument — exactly as before the call.
  Rng rng(15);
  const int m = 8;
  SparseMatrix A = MakeMatrix(rng, m, m + 6, 0.4);
  std::vector<int> good(m);
  for (int i = 0; i < m; ++i) good[i] = i;

  EtaFile eta(10, 8.0);
  ASSERT_TRUE(eta.Refactorize(A, good));
  const size_t nnz_before = eta.eta_nonzeros();
  const bool should_refactor_before = eta.ShouldRefactor();
  std::vector<double> probe = RandomVector(rng, m);
  std::vector<double> reference = probe;
  eta.Ftran(reference);

  // Same column twice -> singular.
  std::vector<int> singular = good;
  singular[1] = singular[0];
  const std::vector<int> singular_copy = singular;
  ASSERT_FALSE(eta.Refactorize(A, singular));

  EXPECT_EQ(singular, singular_copy) << "failed refactorize permuted basis";
  EXPECT_EQ(eta.eta_nonzeros(), nnz_before);
  EXPECT_EQ(eta.ShouldRefactor(), should_refactor_before);
  EXPECT_EQ(eta.updates_since_refactor(), 0);
  std::vector<double> again = probe;
  eta.Ftran(again);
  ExpectNear(again, reference, 0.0);  // bit-identical: old factors intact

  // The failure is attributed so the solver can repair: one dependent
  // column per uncovered row.
  const BasisRep::SingularInfo& info = eta.singular_info();
  ASSERT_FALSE(info.empty());
  EXPECT_EQ(info.dependent_columns.size(), info.unpivoted_rows.size());

  // And the retry is deterministic: the original basis factorizes again.
  std::vector<int> retry = good;
  EXPECT_TRUE(eta.Refactorize(A, retry));
}

TEST(EtaFileTest, GrowthTriggersRefactor) {
  Rng rng(14);
  const int m = 10;
  SparseMatrix A = MakeMatrix(rng, m, m + 20, 0.5);
  std::vector<int> basis(m);
  for (int i = 0; i < m; ++i) basis[i] = i;
  EtaFile eta(/*max_updates=*/5, /*growth_limit=*/64.0);
  ASSERT_TRUE(eta.Refactorize(A, basis));
  EXPECT_FALSE(eta.ShouldRefactor());

  std::vector<double> w(m);
  for (int k = 0; k < 5; ++k) {
    for (const SparseEntry& e : A.Column(m + k)) w[e.index] = e.value;
    eta.Ftran(w);
    int slot = 0;
    for (int i = 1; i < m; ++i) {
      if (std::abs(w[i]) > std::abs(w[slot])) slot = i;
    }
    ASSERT_TRUE(eta.Update(w, slot, 1e-9));
    basis[slot] = m + k;
    std::fill(w.begin(), w.end(), 0.0);
  }
  EXPECT_TRUE(eta.ShouldRefactor());  // max_updates hit
  ASSERT_TRUE(eta.Refactorize(A, basis));
  EXPECT_FALSE(eta.ShouldRefactor());
}

}  // namespace
}  // namespace lp
}  // namespace privsan
