#include "core/oump.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/audit.h"
#include "test_fixtures.h"

namespace privsan {
namespace {

using testing_fixtures::Figure1Preprocessed;
using testing_fixtures::SmallSyntheticLog;
using testing_fixtures::TwoUserSharedLog;

TEST(OumpTest, RejectsUnpreprocessedLog) {
  auto result =
      SolveOump(testing_fixtures::Figure1Log(), PrivacyParams{1.0, 0.5});
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(OumpTest, TwoUserAnalyticOptimum) {
  // TwoUserSharedLog rows (see constraints_test):
  //   alice: 0.5108 x1 + 0.6931 x2 <= B
  //   bob:   0.9163 x1 + 0.6931 x2 <= B
  // bob's row dominates alice's, and 1/0.6931 > 1/0.9163, so the relaxed
  // optimum puts everything on x2: lambda_relaxed = B / log 2.
  SearchLog log = TwoUserSharedLog();
  PairId q2 = *log.FindPair("q2", "u2");

  PrivacyParams params = PrivacyParams::FromEEpsilon(4.0, 0.75);
  // B = min(log 4, log 4) = 2 log 2 -> x2 = 2.
  OumpResult result = SolveOump(log, params).value();
  EXPECT_NEAR(result.lp_objective, 2.0, 1e-7);
  EXPECT_EQ(result.lambda, 2u);
  EXPECT_EQ(result.x[q2], 2u);
}

TEST(OumpTest, LambdaScalesWithBudget) {
  SearchLog log = TwoUserSharedLog();
  // B = log 2 -> relaxed optimum exactly 1.0.
  OumpResult one =
      SolveOump(log, PrivacyParams::FromEEpsilon(2.0, 0.5)).value();
  EXPECT_NEAR(one.lp_objective, 1.0, 1e-7);
  // B = 3 log 2 -> 3.0.
  OumpResult three =
      SolveOump(log, PrivacyParams::FromEEpsilon(8.0, 0.875)).value();
  EXPECT_NEAR(three.lp_objective, 3.0, 1e-7);
}

TEST(OumpTest, SolutionSatisfiesConstraints) {
  SearchLog log = Figure1Preprocessed();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  OumpResult result = SolveOump(log, params).value();
  DpConstraintSystem system = DpConstraintSystem::Build(log, params).value();
  EXPECT_TRUE(system.IsSatisfied(result.x));
  EXPECT_GT(result.lambda, 0u);
}

TEST(OumpTest, RoundedTotalBelowLpBound) {
  // The rounding (floor + remainder repair + greedy fill) may push an
  // individual pair past its relaxed value, but the total is an integral
  // feasible point and can never exceed the LP optimum.
  SearchLog log = SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  OumpResult result = SolveOump(log, params).value();
  EXPECT_LE(static_cast<double>(result.lambda), result.lp_objective + 1e-6);
  DpConstraintSystem system = DpConstraintSystem::Build(log, params).value();
  EXPECT_TRUE(system.IsSatisfied(result.x));
}

TEST(OumpTest, ScaledRoundingMatchesDirectSolve) {
  // RoundScaledOump must agree with SolveOump: the LP scales linearly in
  // the budget, so the relaxed vertex (and hence the rounding) coincide.
  SearchLog log = SmallSyntheticLog();
  OumpScalingBase base = SolveOumpUnitBudget(log).value();
  for (double e_eps : {1.1, 1.7, 2.3}) {
    for (double delta : {0.01, 0.2, 0.8}) {
      PrivacyParams params = PrivacyParams::FromEEpsilon(e_eps, delta);
      OumpResult direct = SolveOump(log, params).value();
      OumpResult scaled = RoundScaledOump(log, params, base).value();
      EXPECT_EQ(direct.lambda, scaled.lambda)
          << "e_eps=" << e_eps << " delta=" << delta;
      EXPECT_NEAR(direct.lp_objective, scaled.lp_objective,
                  1e-6 * (1.0 + direct.lp_objective));
    }
  }
}

TEST(OumpTest, LambdaMonotoneInEpsilon) {
  SearchLog log = SmallSyntheticLog();
  uint64_t prev = 0;
  for (double e_eps : {1.001, 1.01, 1.1, 1.4, 1.7, 2.0, 2.3}) {
    OumpResult result =
        SolveOump(log, PrivacyParams::FromEEpsilon(e_eps, 0.1)).value();
    EXPECT_GE(result.lambda, prev) << "e_eps=" << e_eps;
    prev = result.lambda;
  }
}

TEST(OumpTest, LambdaMonotoneInDelta) {
  SearchLog log = SmallSyntheticLog();
  uint64_t prev = 0;
  for (double delta : {1e-4, 1e-3, 1e-2, 1e-1, 0.2, 0.5, 0.8}) {
    OumpResult result =
        SolveOump(log, PrivacyParams::FromEEpsilon(1.7, delta)).value();
    EXPECT_GE(result.lambda, prev) << "delta=" << delta;
    prev = result.lambda;
  }
}

TEST(OumpTest, LambdaPlateausWhenDeltaBinds) {
  // With delta = 1e-3, log(1/(1-delta)) ~ 1e-3 < log(1.1): every epsilon
  // above that produces the identical budget, hence identical lambda.
  // This is the column structure of Table 4.
  SearchLog log = SmallSyntheticLog();
  OumpResult a = SolveOump(log, PrivacyParams::FromEEpsilon(1.1, 1e-3)).value();
  OumpResult b = SolveOump(log, PrivacyParams::FromEEpsilon(2.3, 1e-3)).value();
  EXPECT_EQ(a.lambda, b.lambda);
}

TEST(OumpTest, LambdaPlateausWhenEpsilonBinds) {
  // Row structure of Table 4: with e^eps = 1.01, every delta whose
  // log(1/(1-delta)) exceeds log(1.01) gives the same budget.
  SearchLog log = SmallSyntheticLog();
  OumpResult a = SolveOump(log, PrivacyParams::FromEEpsilon(1.01, 0.1)).value();
  OumpResult b = SolveOump(log, PrivacyParams::FromEEpsilon(1.01, 0.8)).value();
  EXPECT_EQ(a.lambda, b.lambda);
}

TEST(OumpTest, CapCountsAtInputReducesLambda) {
  SearchLog log = SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.3, 0.8);
  OumpOptions uncapped;
  OumpOptions capped;
  capped.cap_counts_at_input = true;
  OumpResult u = SolveOump(log, params, uncapped).value();
  OumpResult c = SolveOump(log, params, capped).value();
  EXPECT_LE(c.lambda, u.lambda);
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    EXPECT_LE(c.x[p], log.pair_total(p));
  }
}

TEST(OumpTest, SolutionPassesAudit) {
  SearchLog log = SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(1.7, 0.2);
  OumpResult result = SolveOump(log, params).value();
  AuditReport audit = AuditSolution(log, params, result.x).value();
  EXPECT_TRUE(audit.satisfies_privacy) << audit.ToString();
}

TEST(OumpTest, OutputFractionIsSubstantial) {
  // Paper: 7%-26% of |D| is retained across the grid. Assert a sane band
  // on the synthetic log at the loosest setting.
  SearchLog log = SmallSyntheticLog();
  OumpResult result =
      SolveOump(log, PrivacyParams::FromEEpsilon(2.3, 0.8)).value();
  const double fraction = static_cast<double>(result.lambda) /
                          static_cast<double>(log.total_clicks());
  EXPECT_GT(fraction, 0.01);
  EXPECT_LT(fraction, 1.0);
}

}  // namespace
}  // namespace privsan
