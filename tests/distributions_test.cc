#include "rng/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

namespace privsan {
namespace {

TEST(LaplaceTest, MeanAndScale) {
  Rng rng(101);
  const double scale = 2.0;
  constexpr int kDraws = 200000;
  double sum = 0.0, abs_sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double v = SampleLaplace(rng, scale);
    sum += v;
    abs_sum += std::abs(v);
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.05);
  // E|X| = scale for Laplace.
  EXPECT_NEAR(abs_sum / kDraws, scale, 0.05);
}

TEST(LaplaceTest, VarianceIsTwoScaleSquared) {
  Rng rng(102);
  const double scale = 1.5;
  constexpr int kDraws = 200000;
  double sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double v = SampleLaplace(rng, scale);
    sq += v * v;
  }
  EXPECT_NEAR(sq / kDraws, 2.0 * scale * scale, 0.15);
}

TEST(LaplaceTest, SymmetricTails) {
  Rng rng(103);
  int positive = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (SampleLaplace(rng, 1.0) > 0) ++positive;
  }
  EXPECT_NEAR(positive / static_cast<double>(kDraws), 0.5, 0.01);
}

TEST(ZipfTest, RejectsEmptySupport) {
  EXPECT_FALSE(ZipfSampler::Build(0, 1.0).ok());
}

TEST(ZipfTest, RejectsNegativeExponent) {
  EXPECT_FALSE(ZipfSampler::Build(10, -1.0).ok());
}

TEST(ZipfTest, ExponentZeroIsUniform) {
  ZipfSampler sampler = ZipfSampler::Build(5, 0.0).value();
  for (uint32_t r = 0; r < 5; ++r) {
    EXPECT_NEAR(sampler.ProbabilityOf(r), 0.2, 1e-12);
  }
}

TEST(ZipfTest, ProbabilitiesFollowPowerLaw) {
  const double s = 1.3;
  ZipfSampler sampler = ZipfSampler::Build(100, s).value();
  // P(r) / P(r') == ((r'+1)/(r+1))^s.
  for (uint32_t r : {0u, 4u, 9u, 49u}) {
    const double ratio =
        sampler.ProbabilityOf(0) / sampler.ProbabilityOf(r);
    EXPECT_NEAR(ratio, std::pow(r + 1.0, s), 1e-9 * ratio);
  }
}

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfSampler sampler = ZipfSampler::Build(1000, 0.9).value();
  double sum = 0.0;
  for (uint32_t r = 0; r < 1000; ++r) sum += sampler.ProbabilityOf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, EmpiricalTopRankFrequency) {
  ZipfSampler sampler = ZipfSampler::Build(50, 1.0).value();
  Rng rng(202);
  constexpr int kDraws = 100000;
  int top = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (sampler.Sample(rng) == 0) ++top;
  }
  EXPECT_NEAR(top / static_cast<double>(kDraws), sampler.ProbabilityOf(0),
              0.01);
}

TEST(ZipfTest, SamplesWithinSupport) {
  ZipfSampler sampler = ZipfSampler::Build(7, 2.0).value();
  Rng rng(203);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(sampler.Sample(rng), 7u);
  }
}

TEST(MultinomialTest, CountsSumToTrials) {
  Rng rng(301);
  auto counts = SampleMultinomial(rng, 1000, {1.0, 2.0, 3.0}).value();
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(),
                            static_cast<uint64_t>(0)),
            1000u);
}

TEST(MultinomialTest, ZeroTrials) {
  Rng rng(302);
  auto counts = SampleMultinomial(rng, 0, {1.0, 1.0}).value();
  EXPECT_EQ(counts, (std::vector<uint64_t>{0, 0}));
}

TEST(MultinomialTest, MarginalMeansMatch) {
  Rng rng(303);
  const std::vector<double> weights = {2.0, 5.0, 3.0};
  constexpr uint64_t kTrials = 2000;
  constexpr int kRepeats = 200;
  std::vector<double> means(3, 0.0);
  for (int rep = 0; rep < kRepeats; ++rep) {
    auto counts = SampleMultinomial(rng, kTrials, weights).value();
    for (size_t i = 0; i < 3; ++i) means[i] += static_cast<double>(counts[i]);
  }
  for (size_t i = 0; i < 3; ++i) {
    means[i] /= kRepeats;
    EXPECT_NEAR(means[i], kTrials * weights[i] / 10.0,
                kTrials * 0.02);
  }
}

TEST(MultinomialTest, ZeroWeightCategoryGetsNothing) {
  Rng rng(304);
  auto counts = SampleMultinomial(rng, 5000, {1.0, 0.0, 1.0}).value();
  EXPECT_EQ(counts[1], 0u);
}

TEST(MultinomialTest, InvalidWeightsRejected) {
  Rng rng(305);
  EXPECT_FALSE(SampleMultinomial(rng, 10, {}).ok());
  EXPECT_FALSE(SampleMultinomial(rng, 10, {0.0}).ok());
  EXPECT_FALSE(SampleMultinomial(rng, 10, {-1.0, 2.0}).ok());
}

}  // namespace
}  // namespace privsan
