// serve subsystem foundations: ThreadPool semantics, and the shard-aware
// entry points (RemoveUniquePairs, DpConstraintSystem::BuildRows/PatchRows)
// being bit-identical to their serial counterparts.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/constraints.h"
#include "log/preprocess.h"
#include "log/search_log.h"
#include "serve/thread_pool.h"
#include "synth/generator.h"
#include "test_fixtures.h"

namespace privsan {
namespace {


SearchLog Synthetic(uint64_t seed = 11, size_t users = 80,
                    size_t events = 4000) {
  SyntheticLogConfig config = TinyConfig();
  config.seed = seed;
  config.num_users = users;
  config.num_events = events;
  return GenerateSearchLog(config).value();
}

std::vector<std::tuple<std::string, std::string, std::string, uint64_t>>
Tuples(const SearchLog& log) {
  std::vector<std::tuple<std::string, std::string, std::string, uint64_t>>
      out;
  for (UserId u = 0; u < log.num_users(); ++u) {
    for (const PairCount& cell : log.UserLogOf(u)) {
      out.emplace_back(log.user_name(u),
                       log.query_name(log.pair_query(cell.pair)),
                       log.url_name(log.pair_url(cell.pair)), cell.count);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Bitwise row-by-row comparison of two DP systems.
void ExpectSystemsIdentical(const DpConstraintSystem& a,
                            const DpConstraintSystem& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_pairs(), b.num_pairs());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    EXPECT_EQ(a.RowUser(r), b.RowUser(r)) << "row " << r;
    const auto row_a = a.Row(r);
    const auto row_b = b.Row(r);
    ASSERT_EQ(row_a.size(), row_b.size()) << "row " << r;
    for (size_t i = 0; i < row_a.size(); ++i) {
      EXPECT_EQ(row_a[i], row_b[i]) << "row " << r << " entry " << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  serve::ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> visits(kN);
  pool.ParallelFor(kN, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesTinyAndEmptyRanges) {
  serve::ThreadPool pool(3);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) sum.fetch_add(i + 1);
  });
  EXPECT_EQ(sum.load(), 1u);
}

TEST(ThreadPoolTest, ConcurrentParallelForsFromManyThreads) {
  serve::ThreadPool pool(2);  // fewer workers than client threads
  constexpr int kClients = 6;
  constexpr size_t kN = 2000;
  std::vector<uint64_t> sums(kClients, 0);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&pool, &sums, c] {
      std::atomic<uint64_t> sum{0};
      pool.ParallelFor(kN, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          sum.fetch_add(i, std::memory_order_relaxed);
        }
      });
      sums[c] = sum.load();
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(sums[c], kN * (kN - 1) / 2) << "client " << c;
  }
}

TEST(ThreadPoolTest, SubmitRunsTasks) {
  serve::ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&] {
      if (ran.fetch_add(1) + 1 == 32) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return ran.load() == 32; });
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, FreeParallelForFallsBackSerial) {
  uint64_t sum = 0;  // no atomics needed: must run on this thread
  serve::ParallelFor(nullptr, 100, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 100u);
    for (size_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 4950u);
}

TEST(ShardedPreprocessTest, MatchesSerialBitForBit) {
  const SearchLog raw = Synthetic();
  serve::ThreadPool pool(4);
  const PreprocessResult serial = RemoveUniquePairs(raw);
  const PreprocessResult sharded = RemoveUniquePairs(raw, &pool);

  EXPECT_EQ(serial.stats.pairs_removed, sharded.stats.pairs_removed);
  EXPECT_EQ(serial.stats.pairs_retained, sharded.stats.pairs_retained);
  EXPECT_EQ(serial.stats.users_dropped, sharded.stats.users_dropped);
  EXPECT_EQ(serial.stats.clicks_removed, sharded.stats.clicks_removed);
  EXPECT_EQ(serial.stats.clicks_retained, sharded.stats.clicks_retained);
  // Same tuples AND same id assignment: pair p must name the same pair.
  EXPECT_EQ(Tuples(serial.log), Tuples(sharded.log));
  ASSERT_EQ(serial.log.num_pairs(), sharded.log.num_pairs());
  for (PairId p = 0; p < serial.log.num_pairs(); ++p) {
    EXPECT_EQ(serial.log.query_name(serial.log.pair_query(p)),
              sharded.log.query_name(sharded.log.pair_query(p)));
    EXPECT_EQ(serial.log.url_name(serial.log.pair_url(p)),
              sharded.log.url_name(sharded.log.pair_url(p)));
  }
}

TEST(ShardedBuildRowsTest, MatchesSerialBitForBit) {
  const SearchLog log = RemoveUniquePairs(Synthetic()).log;
  serve::ThreadPool pool(4);
  const DpConstraintSystem serial =
      DpConstraintSystem::BuildRows(log).value();
  const DpConstraintSystem sharded =
      DpConstraintSystem::BuildRows(log, &pool).value();
  ExpectSystemsIdentical(serial, sharded);
}

TEST(ShardedBuildRowsTest, UniquePairStillFails) {
  serve::ThreadPool pool(4);
  SearchLogBuilder builder;
  builder.Add("alice", "q", "u", 3);  // unique: only alice holds (q, u)
  builder.Add("alice", "q2", "u2", 1);
  builder.Add("bob", "q2", "u2", 2);
  const SearchLog log = builder.Build();
  const auto result = DpConstraintSystem::BuildRows(log, &pool);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

// Replays `base` then `extra` through one builder — the same merge
// AppendUsers performs — and preprocesses the result.
SearchLog MergedPreprocessed(const SearchLog& base, const SearchLog& extra) {
  SearchLogBuilder builder;
  builder.AddAll(base);
  builder.AddAll(extra);
  return RemoveUniquePairs(builder.Build()).log;
}

TEST(PatchRowsTest, MatchesFullRebuildBitForBitAndCopiesRows) {
  const SearchLog full = Synthetic(/*seed=*/23, /*users=*/120,
                                   /*events=*/6000);
  const UserId cut = full.num_users() * 3 / 4;
  const SearchLog base = UserSlice(full, 0, cut);
  const SearchLog extra = UserSlice(full, cut, full.num_users());

  const SearchLog old_log = RemoveUniquePairs(base).log;
  const DpConstraintSystem old_system =
      DpConstraintSystem::BuildRows(old_log).value();
  const SearchLog new_log = MergedPreprocessed(base, extra);

  serve::ThreadPool pool(4);
  const DpRowPatch patch =
      DpConstraintSystem::PatchRows(new_log, old_log, old_system, &pool)
          .value();
  const DpConstraintSystem rebuilt =
      DpConstraintSystem::BuildRows(new_log).value();
  ExpectSystemsIdentical(rebuilt, patch.system);
  EXPECT_EQ(patch.rows_copied + patch.rows_rebuilt, rebuilt.num_rows());
  EXPECT_GT(patch.rows_rebuilt, 0u);  // appended users at minimum
}

TEST(PatchRowsTest, SmallAppendCopiesUntouchedRows) {
  // One new user clicking one existing pair: only that pair's holders (and
  // the new user) are rebuilt; in a Zipf log most rows are untouched.
  const SearchLog base = Synthetic(/*seed=*/29, /*users=*/100,
                                   /*events=*/5000);
  const SearchLog old_log = RemoveUniquePairs(base).log;
  const DpConstraintSystem old_system =
      DpConstraintSystem::BuildRows(old_log).value();
  // The least-shared pair keeps the blast radius small.
  PairId target = 0;
  for (PairId p = 1; p < old_log.num_pairs(); ++p) {
    if (old_log.PairUserCount(p) < old_log.PairUserCount(target)) target = p;
  }
  SearchLogBuilder extra;
  extra.Add("fresh_user", old_log.query_name(old_log.pair_query(target)),
            old_log.url_name(old_log.pair_url(target)), 1);
  const SearchLog new_log = MergedPreprocessed(base, extra.Build());

  const DpRowPatch patch =
      DpConstraintSystem::PatchRows(new_log, old_log, old_system).value();
  const DpConstraintSystem rebuilt =
      DpConstraintSystem::BuildRows(new_log).value();
  ExpectSystemsIdentical(rebuilt, patch.system);
  // holders(target) + the new user change; everyone else is copied.
  EXPECT_EQ(patch.rows_rebuilt, old_log.PairUserCount(target) + 1);
  EXPECT_GT(patch.rows_copied, patch.rows_rebuilt);
}

TEST(PatchRowsTest, AppendingToExistingUserRebuildsOnlyTouchedRows) {
  // bob gains clicks on (q1, u1): exactly bob's and alice's rows depend on
  // that pair's total; carol's row must be copied.
  SearchLogBuilder base_builder;
  base_builder.Add("alice", "q1", "u1", 2);
  base_builder.Add("bob", "q1", "u1", 3);
  base_builder.Add("carol", "q2", "u2", 1);
  base_builder.Add("dave", "q2", "u2", 4);
  const SearchLog base = base_builder.Build();
  const SearchLog old_log = RemoveUniquePairs(base).log;
  const DpConstraintSystem old_system =
      DpConstraintSystem::BuildRows(old_log).value();

  SearchLogBuilder extra_builder;
  extra_builder.Add("bob", "q1", "u1", 5);
  const SearchLog new_log = MergedPreprocessed(base, extra_builder.Build());

  const DpRowPatch patch =
      DpConstraintSystem::PatchRows(new_log, old_log, old_system).value();
  const DpConstraintSystem rebuilt =
      DpConstraintSystem::BuildRows(new_log).value();
  ExpectSystemsIdentical(rebuilt, patch.system);
  EXPECT_EQ(patch.rows_rebuilt, 2u);  // alice and bob
  EXPECT_EQ(patch.rows_copied, 2u);   // carol and dave
}

TEST(PatchRowsTest, NewlySharedPairRebuildsItsHolders) {
  // (q3, u3) is unique to alice in the base log (dropped by preprocessing);
  // erin's append makes it shared, so alice's row changes shape.
  SearchLogBuilder base_builder;
  base_builder.Add("alice", "q1", "u1", 2);
  base_builder.Add("bob", "q1", "u1", 3);
  base_builder.Add("alice", "q3", "u3", 7);
  const SearchLog base = base_builder.Build();
  const SearchLog old_log = RemoveUniquePairs(base).log;
  const DpConstraintSystem old_system =
      DpConstraintSystem::BuildRows(old_log).value();
  ASSERT_EQ(old_log.num_pairs(), 1u);

  SearchLogBuilder extra_builder;
  extra_builder.Add("erin", "q3", "u3", 1);
  const SearchLog new_log = MergedPreprocessed(base, extra_builder.Build());
  ASSERT_EQ(new_log.num_pairs(), 2u);

  const DpRowPatch patch =
      DpConstraintSystem::PatchRows(new_log, old_log, old_system).value();
  const DpConstraintSystem rebuilt =
      DpConstraintSystem::BuildRows(new_log).value();
  ExpectSystemsIdentical(rebuilt, patch.system);
  // alice (new pair in her log), erin (new user); bob untouched.
  EXPECT_EQ(patch.rows_rebuilt, 2u);
  EXPECT_EQ(patch.rows_copied, 1u);
}

TEST(PatchRowsTest, EmptyOldStateDegeneratesToFullBuild) {
  const SearchLog new_log = RemoveUniquePairs(Synthetic()).log;
  const SearchLog empty;
  const DpConstraintSystem empty_system =
      DpConstraintSystem::BuildRows(empty).value();
  const DpRowPatch patch =
      DpConstraintSystem::PatchRows(new_log, empty, empty_system).value();
  const DpConstraintSystem rebuilt =
      DpConstraintSystem::BuildRows(new_log).value();
  ExpectSystemsIdentical(rebuilt, patch.system);
  EXPECT_EQ(patch.rows_copied, 0u);
  EXPECT_EQ(patch.rows_rebuilt, rebuilt.num_rows());
}

}  // namespace
}  // namespace privsan
