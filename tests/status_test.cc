#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace privsan {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Infeasible("x").code(), StatusCode::kInfeasible);
  EXPECT_EQ(Status::Unbounded("x").code(), StatusCode::kUnbounded);
}

TEST(StatusTest, CopySemantics) {
  Status a = Status::Internal("boom");
  Status b = a;                      // copy construct
  EXPECT_EQ(b.ToString(), a.ToString());
  Status c;
  c = a;                             // copy assign
  EXPECT_EQ(c.code(), StatusCode::kInternal);
  a = Status::OK();                  // does not affect copies
  EXPECT_FALSE(b.ok());
  EXPECT_FALSE(c.ok());
}

TEST(StatusTest, MoveSemantics) {
  Status a = Status::NotFound("gone");
  Status b = std::move(a);
  EXPECT_EQ(b.code(), StatusCode::kNotFound);
  EXPECT_EQ(b.message(), "gone");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StatusCodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInfeasible), "Infeasible");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnbounded), "Unbounded");
}

Status FailIfNegative(int value) {
  if (value < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int value) {
  PRIVSAN_RETURN_IF_ERROR(FailIfNegative(value));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Chain(3).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrPassesThroughValue) {
  Result<int> r = 5;
  EXPECT_EQ(r.value_or(-1), 5);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Result<int> HalveEven(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> QuarterEven(int v) {
  PRIVSAN_ASSIGN_OR_RETURN(int half, HalveEven(v));
  PRIVSAN_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> first_fails = QuarterEven(3);
  EXPECT_FALSE(first_fails.ok());
  Result<int> second_fails = QuarterEven(6);  // 6 -> 3 -> odd
  EXPECT_FALSE(second_fails.ok());
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace privsan
