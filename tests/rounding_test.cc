#include "core/rounding.h"

#include <gtest/gtest.h>

#include <numeric>

#include "test_fixtures.h"

namespace privsan {
namespace {

using testing_fixtures::Figure1Preprocessed;
using testing_fixtures::SmallSyntheticLog;

DpConstraintSystem MakeSystem(const SearchLog& log, double e_eps = 2.0,
                              double delta = 0.5) {
  return DpConstraintSystem::Build(log,
                                   PrivacyParams::FromEEpsilon(e_eps, delta))
      .value();
}

uint64_t Total(const std::vector<uint64_t>& x) {
  return std::accumulate(x.begin(), x.end(), static_cast<uint64_t>(0));
}

TEST(RoundingTest, PlainFloorWhenStagesDisabled) {
  SearchLog log = Figure1Preprocessed();
  DpConstraintSystem system = MakeSystem(log);
  std::vector<double> relaxed = {1.7, 0.2, 2.9};
  RoundingOptions options;
  options.repair = false;
  options.greedy_fill = false;
  std::vector<uint64_t> x = RoundCounts(system, relaxed, options);
  EXPECT_EQ(x, (std::vector<uint64_t>{1, 0, 2}));
}

TEST(RoundingTest, SnapToleranceCountsNearIntegers) {
  SearchLog log = Figure1Preprocessed();
  DpConstraintSystem system = MakeSystem(log);
  std::vector<double> relaxed = {1.99999995, 0.0, 0.0};
  RoundingOptions options;
  options.repair = false;
  options.greedy_fill = false;
  std::vector<uint64_t> x = RoundCounts(system, relaxed, options);
  EXPECT_EQ(x[0], 2u);
}

TEST(RoundingTest, ResultAlwaysFeasible) {
  SearchLog log = SmallSyntheticLog();
  DpConstraintSystem system = MakeSystem(log);
  std::vector<double> relaxed(log.num_pairs(), 0.4);
  std::vector<uint64_t> x = RoundCounts(system, relaxed, RoundingOptions{});
  EXPECT_TRUE(system.IsSatisfied(x));
}

TEST(RoundingTest, RepairAndFillBeatPlainFloor) {
  SearchLog log = SmallSyntheticLog();
  DpConstraintSystem system = MakeSystem(log);
  // All-fractional relaxed point: plain flooring gives zero.
  std::vector<double> relaxed(log.num_pairs(), 0.3);
  RoundingOptions plain;
  plain.repair = false;
  plain.greedy_fill = false;
  RoundingOptions full;
  EXPECT_EQ(Total(RoundCounts(system, relaxed, plain)), 0u);
  EXPECT_GT(Total(RoundCounts(system, relaxed, full)), 0u);
}

TEST(RoundingTest, GreedyFillIsMaximal) {
  // After rounding, no pair can take one more unit.
  SearchLog log = SmallSyntheticLog();
  DpConstraintSystem system = MakeSystem(log);
  std::vector<double> relaxed(log.num_pairs(), 0.9);
  std::vector<uint64_t> x = RoundCounts(system, relaxed, RoundingOptions{});
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    std::vector<uint64_t> bumped = x;
    ++bumped[p];
    EXPECT_FALSE(system.IsSatisfied(bumped)) << "pair " << p;
  }
}

TEST(RoundingTest, TargetTotalIsRespected) {
  SearchLog log = SmallSyntheticLog();
  DpConstraintSystem system = MakeSystem(log, 2.3, 0.8);
  std::vector<double> relaxed(log.num_pairs(), 0.6);
  RoundingOptions options;
  options.target_total = 3;
  std::vector<uint64_t> x = RoundCounts(system, relaxed, options);
  EXPECT_LE(Total(x), 3u);
}

TEST(RoundingTest, CapsAreHonored) {
  SearchLog log = SmallSyntheticLog();
  DpConstraintSystem system = MakeSystem(log, 2.3, 0.8);
  std::vector<double> relaxed(log.num_pairs(), 2.5);
  std::vector<uint64_t> caps(log.num_pairs(), 1);
  RoundingOptions options;
  options.caps = caps;
  std::vector<uint64_t> x = RoundCounts(system, relaxed, options);
  for (uint64_t v : x) EXPECT_LE(v, 1u);
}

TEST(RoundingTest, NegativeRelaxedValuesClampToZero) {
  SearchLog log = Figure1Preprocessed();
  DpConstraintSystem system = MakeSystem(log);
  std::vector<double> relaxed = {-0.5, -2.0, -0.1};
  RoundingOptions plain;
  plain.repair = false;
  plain.greedy_fill = false;
  std::vector<uint64_t> x = RoundCounts(system, relaxed, plain);
  EXPECT_EQ(Total(x), 0u);
}

TEST(RoundingTest, DeterministicAcrossCalls) {
  SearchLog log = SmallSyntheticLog();
  DpConstraintSystem system = MakeSystem(log);
  std::vector<double> relaxed(log.num_pairs());
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    relaxed[p] = 0.1 + 0.77 * (p % 5);
  }
  EXPECT_EQ(RoundCounts(system, relaxed, RoundingOptions{}),
            RoundCounts(system, relaxed, RoundingOptions{}));
}

}  // namespace
}  // namespace privsan
