// The binary wire protocol: frame encode/decode under arbitrary stream
// chunking, typed round trips of every ServeRequest/ServeResponse
// alternative, router tenant peeking, and rejection of malformed frames —
// bad magic/version/verb, hostile lengths, truncated and trailing-junk
// payloads — with typed errors, never crashes or over-allocation.
#include "net/codec.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/frame.h"
#include "serve/api.h"
#include "synth/generator.h"
#include "test_fixtures.h"

namespace privsan {
namespace {

using net::Frame;
using net::FrameDecoder;
using net::FrameVerb;

SearchLog Synthetic(uint64_t seed = 7) {
  SyntheticLogConfig config = TinyConfig();
  config.seed = seed;
  config.num_users = 40;
  config.num_events = 1500;
  return GenerateSearchLog(config).value();
}

UmpQuery Query(double e_eps, double delta, uint64_t output_size = 0) {
  UmpQuery query;
  query.privacy = PrivacyParams::FromEEpsilon(e_eps, delta);
  query.output_size = output_size;
  return query;
}

// Id-sensitive log equality (the snapshot codec preserves ids exactly).
void ExpectLogsIdentical(const SearchLog& a, const SearchLog& b) {
  ASSERT_EQ(a.num_users(), b.num_users());
  ASSERT_EQ(a.num_pairs(), b.num_pairs());
  ASSERT_EQ(a.total_clicks(), b.total_clicks());
  for (UserId u = 0; u < a.num_users(); ++u) {
    EXPECT_EQ(a.user_name(u), b.user_name(u)) << "user " << u;
  }
  for (PairId p = 0; p < a.num_pairs(); ++p) {
    EXPECT_EQ(a.pair_total(p), b.pair_total(p)) << "pair " << p;
  }
}

// Encode -> decode of a request, through the frame layer byte stream.
serve::ServeRequest RoundTripRequest(const serve::ServeRequest& request,
                                     uint64_t request_id = 17) {
  Frame frame = net::EncodeRequest(request, request_id).value();
  FrameDecoder decoder;
  decoder.Feed(net::EncodeFrame(frame));
  Frame wire;
  EXPECT_TRUE(decoder.Next(&wire).value());
  EXPECT_EQ(wire.request_id, request_id);
  EXPECT_EQ(static_cast<int>(wire.verb), static_cast<int>(frame.verb));
  return net::DecodeRequest(wire).value();
}

serve::ServeResponse RoundTripResponse(const serve::ServeResponse& response,
                                       uint64_t request_id = 23) {
  Frame frame = net::EncodeResponse(response, request_id);
  FrameDecoder decoder;
  decoder.Feed(net::EncodeFrame(frame));
  Frame wire;
  EXPECT_TRUE(decoder.Next(&wire).value());
  EXPECT_EQ(wire.request_id, request_id);
  return net::DecodeResponse(wire).value();
}

// --- Frame layer -----------------------------------------------------------

TEST(FrameTest, RoundTripsThroughArbitraryChunking) {
  Frame frame;
  frame.verb = FrameVerb::kSolve;
  frame.status = 0;
  frame.request_id = 0xDEADBEEFCAFEBABEull;
  frame.payload = "solve payload bytes";
  const std::string wire = net::EncodeFrame(frame);

  // Feed one byte at a time: Next stays "need more" until the last byte.
  FrameDecoder decoder;
  Frame out;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.Feed(wire.data() + i, 1);
    EXPECT_FALSE(decoder.Next(&out).value()) << "byte " << i;
  }
  decoder.Feed(wire.data() + wire.size() - 1, 1);
  ASSERT_TRUE(decoder.Next(&out).value());
  EXPECT_EQ(static_cast<int>(out.verb), static_cast<int>(FrameVerb::kSolve));
  EXPECT_EQ(out.request_id, frame.request_id);
  EXPECT_EQ(out.payload, frame.payload);
  EXPECT_FALSE(decoder.Next(&out).value());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameTest, PopsPipelinedFramesFromOneChunk) {
  std::string wire;
  for (uint64_t id = 1; id <= 5; ++id) {
    Frame frame;
    frame.verb = FrameVerb::kStats;
    frame.request_id = id;
    frame.payload = std::string(id, 'x');
    net::EncodeFrame(frame, &wire);
  }
  FrameDecoder decoder;
  decoder.Feed(wire);
  for (uint64_t id = 1; id <= 5; ++id) {
    Frame out;
    ASSERT_TRUE(decoder.Next(&out).value()) << "frame " << id;
    EXPECT_EQ(out.request_id, id);
    EXPECT_EQ(out.payload.size(), id);
  }
  Frame out;
  EXPECT_FALSE(decoder.Next(&out).value());
}

TEST(FrameTest, EmptyPayloadFrame) {
  Frame frame;
  frame.verb = FrameVerb::kFlush;
  frame.request_id = 3;
  FrameDecoder decoder;
  decoder.Feed(net::EncodeFrame(frame));
  Frame out;
  ASSERT_TRUE(decoder.Next(&out).value());
  EXPECT_TRUE(out.payload.empty());
}

TEST(FrameTest, RejectsBadMagic) {
  std::string wire = net::EncodeFrame(Frame{});
  wire[4] ^= 0x5A;  // corrupt the magic
  FrameDecoder decoder;
  decoder.Feed(wire);
  Frame out;
  Result<bool> next = decoder.Next(&out);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, RejectsUnknownVersionAndVerb) {
  {
    std::string wire = net::EncodeFrame(Frame{});
    wire[8] = 99;  // version byte
    FrameDecoder decoder;
    decoder.Feed(wire);
    Frame out;
    EXPECT_FALSE(decoder.Next(&out).ok());
  }
  {
    std::string wire = net::EncodeFrame(Frame{});
    wire[9] = net::kMaxFrameVerb + 1;  // verb byte
    FrameDecoder decoder;
    decoder.Feed(wire);
    Frame out;
    EXPECT_FALSE(decoder.Next(&out).ok());
  }
}

// A hostile length field fails from the prefix alone — before the decoder
// waits for (or allocates) the advertised bytes.
TEST(FrameTest, RejectsHostileLengthsWithoutBuffering) {
  {
    // Length too small to hold the header.
    std::string wire(4, '\0');
    const uint32_t length = 8;
    std::memcpy(wire.data(), &length, sizeof(length));
    FrameDecoder decoder;
    decoder.Feed(wire);
    Frame out;
    EXPECT_FALSE(decoder.Next(&out).ok());
  }
  {
    // Length advertising a payload beyond the cap: only 4 bytes fed, the
    // decoder must reject instead of waiting for 4 GiB.
    std::string wire(4, '\0');
    const uint32_t length = 0xF0000000u;
    std::memcpy(wire.data(), &length, sizeof(length));
    FrameDecoder decoder;
    decoder.Feed(wire);
    Frame out;
    EXPECT_FALSE(decoder.Next(&out).ok());
  }
}

// Defense in depth at the frame layer: an oversized payload (which the
// peer would reject as malformed, and which could wrap the u32 length) is
// replaced by a well-formed header-only error frame, never a
// stream-desyncing monster.
TEST(FrameTest, OversizedPayloadEncodesHeaderOnlyErrorFrame) {
  Frame frame;
  frame.verb = FrameVerb::kAppend;
  frame.request_id = 9;
  frame.payload.assign(net::kMaxFramePayload + 1, 'x');
  FrameDecoder decoder;
  decoder.Feed(net::EncodeFrame(frame));
  Frame out;
  ASSERT_TRUE(decoder.Next(&out).value());
  EXPECT_TRUE(out.payload.empty());
  EXPECT_EQ(out.request_id, 9u);
  EXPECT_EQ(out.status,
            static_cast<uint16_t>(StatusCode::kResourceExhausted));
  EXPECT_EQ(static_cast<int>(out.verb),
            static_cast<int>(FrameVerb::kAppend));
}

TEST(FrameTest, HonorsCustomPayloadCap) {
  Frame frame;
  frame.verb = FrameVerb::kAppend;
  frame.payload = std::string(1024, 'p');
  FrameDecoder decoder(/*max_payload=*/512);
  decoder.Feed(net::EncodeFrame(frame));
  Frame out;
  EXPECT_FALSE(decoder.Next(&out).ok());
}

// --- Request round trips ----------------------------------------------------

TEST(CodecTest, RoundTripsCreateTenant) {
  const SearchLog log = Synthetic(11);
  serve::ServeRequest decoded = RoundTripRequest(
      serve::CreateTenantRequest{"tenant-a", log, std::nullopt});
  auto* create = std::get_if<serve::CreateTenantRequest>(&decoded);
  ASSERT_NE(create, nullptr);
  EXPECT_EQ(create->tenant, "tenant-a");
  EXPECT_FALSE(create->options.has_value());
  ExpectLogsIdentical(create->initial, log);
}

TEST(CodecTest, RoundTripsAppend) {
  const SearchLog log = Synthetic(12);
  serve::ServeRequest decoded =
      RoundTripRequest(serve::AppendRequest{"t", log});
  auto* append = std::get_if<serve::AppendRequest>(&decoded);
  ASSERT_NE(append, nullptr);
  ExpectLogsIdentical(append->logs, log);
}

TEST(CodecTest, RoundTripsTenantOnlyVerbs) {
  {
    serve::ServeRequest decoded =
        RoundTripRequest(serve::FlushRequest{"flushed"});
    auto* flush = std::get_if<serve::FlushRequest>(&decoded);
    ASSERT_NE(flush, nullptr);
    EXPECT_EQ(flush->tenant, "flushed");
  }
  {
    serve::ServeRequest decoded =
        RoundTripRequest(serve::StatsRequest{"stated"});
    ASSERT_NE(std::get_if<serve::StatsRequest>(&decoded), nullptr);
  }
  {
    serve::ServeRequest decoded =
        RoundTripRequest(serve::DropTenantRequest{"dropped"});
    auto* drop = std::get_if<serve::DropTenantRequest>(&decoded);
    ASSERT_NE(drop, nullptr);
    EXPECT_EQ(drop->tenant, "dropped");
  }
}

TEST(CodecTest, RoundTripsSolveWithAndWithoutSolver) {
  UmpQuery query = Query(0.12, 1e-5, 40);
  query.solver = DumpSolverKind::kBranchAndBound;
  serve::ServeRequest decoded = RoundTripRequest(
      serve::SolveRequest{"t", UtilityObjective::kDiversity, query});
  auto* solve = std::get_if<serve::SolveRequest>(&decoded);
  ASSERT_NE(solve, nullptr);
  EXPECT_EQ(solve->objective, UtilityObjective::kDiversity);
  EXPECT_EQ(solve->query.privacy.epsilon, query.privacy.epsilon);
  EXPECT_EQ(solve->query.privacy.delta, query.privacy.delta);
  EXPECT_EQ(solve->query.output_size, 40u);
  ASSERT_TRUE(solve->query.solver.has_value());
  EXPECT_EQ(*solve->query.solver, DumpSolverKind::kBranchAndBound);

  query.solver.reset();
  decoded = RoundTripRequest(
      serve::SolveRequest{"t", UtilityObjective::kOutputSize, query});
  solve = std::get_if<serve::SolveRequest>(&decoded);
  ASSERT_NE(solve, nullptr);
  EXPECT_FALSE(solve->query.solver.has_value());
}

TEST(CodecTest, RoundTripsSweep) {
  serve::SweepRequest request;
  request.tenant = "sweeper";
  request.objective = UtilityObjective::kFrequentPairs;
  request.grid = {Query(0.05, 1e-4), Query(0.2, 1e-5, 10)};
  request.sweep.warm_start = false;
  request.sweep.min_support = 3.5;
  serve::ServeRequest decoded = RoundTripRequest(request);
  auto* sweep = std::get_if<serve::SweepRequest>(&decoded);
  ASSERT_NE(sweep, nullptr);
  EXPECT_EQ(sweep->objective, UtilityObjective::kFrequentPairs);
  ASSERT_EQ(sweep->grid.size(), 2u);
  EXPECT_EQ(sweep->grid[0].privacy.epsilon, request.grid[0].privacy.epsilon);
  EXPECT_EQ(sweep->grid[1].output_size, 10u);
  EXPECT_FALSE(sweep->sweep.warm_start);
  ASSERT_TRUE(sweep->sweep.min_support.has_value());
  EXPECT_EQ(*sweep->sweep.min_support, 3.5);
}

TEST(CodecTest, RoundTripsSanitizeAndSnapshotVerbs) {
  {
    const PrivacyParams privacy = PrivacyParams::FromEEpsilon(0.3, 1e-6);
    serve::ServeRequest decoded =
        RoundTripRequest(serve::SanitizeRequest{"t", privacy});
    auto* sanitize = std::get_if<serve::SanitizeRequest>(&decoded);
    ASSERT_NE(sanitize, nullptr);
    EXPECT_EQ(sanitize->privacy.epsilon, privacy.epsilon);
    EXPECT_EQ(sanitize->privacy.delta, privacy.delta);
  }
  {
    serve::ServeRequest decoded = RoundTripRequest(
        serve::SaveSnapshotRequest{"t", "/tmp/t.snap"});
    auto* save = std::get_if<serve::SaveSnapshotRequest>(&decoded);
    ASSERT_NE(save, nullptr);
    EXPECT_EQ(save->path, "/tmp/t.snap");
  }
  {
    serve::ServeRequest decoded = RoundTripRequest(
        serve::RestoreTenantRequest{"t", "/tmp/t.snap", std::nullopt});
    auto* restore = std::get_if<serve::RestoreTenantRequest>(&decoded);
    ASSERT_NE(restore, nullptr);
    EXPECT_EQ(restore->path, "/tmp/t.snap");
    EXPECT_FALSE(restore->options.has_value());
  }
}

TEST(CodecTest, RejectsSessionOptionsOverrides) {
  SessionOptions options;
  Result<Frame> frame = net::EncodeRequest(
      serve::CreateTenantRequest{"t", SearchLog(), options}, 1);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
  frame = net::EncodeRequest(
      serve::RestoreTenantRequest{"t", "p", options}, 1);
  EXPECT_FALSE(frame.ok());
}

TEST(CodecTest, PeeksTenantWithoutFullDecode) {
  const Frame frame =
      net::EncodeRequest(serve::AppendRequest{"shard-key", Synthetic(13)}, 5)
          .value();
  EXPECT_EQ(net::PeekTenant(frame).value(), "shard-key");
  // Response frames address no tenant.
  EXPECT_FALSE(
      net::PeekTenant(net::EncodeResponse({Status::OK(), {}}, 5)).ok());
}

// --- Response round trips ---------------------------------------------------

TEST(CodecTest, RoundTripsErrorStatusResponse) {
  serve::ServeResponse response;
  response.status = Status::ResourceExhausted("tenant queue full: t");
  // The status code rides the frame header, readable pre-decode.
  const Frame frame = net::EncodeResponse(response, 9);
  EXPECT_EQ(frame.status,
            static_cast<uint16_t>(StatusCode::kResourceExhausted));
  serve::ServeResponse decoded = RoundTripResponse(response);
  EXPECT_EQ(decoded.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded.status.message(), "tenant queue full: t");
  EXPECT_EQ(decoded.solution(), nullptr);
}

TEST(CodecTest, RoundTripsSolutionPayload) {
  UmpSolution solution;
  solution.objective = UtilityObjective::kFrequentPairs;
  solution.x = {3, 0, 7, 2};
  solution.x_relaxed = {3.25, 0.0, 6.5, 2.0};
  solution.objective_value = 12.75;
  solution.output_size = 12;
  solution.basis.state = {lp::VarStatus::kAtLower, lp::VarStatus::kBasic,
                          lp::VarStatus::kAtUpper, lp::VarStatus::kBasic};
  solution.basis.basic = {1, 3};
  solution.stats.simplex_iterations = 41;
  solution.stats.dual_iterations = 17;
  solution.stats.refactorizations = 2;
  solution.stats.warm_started = true;
  solution.stats.factor_nnz = 999;
  solution.stats.max_update_run = 12;
  solution.stats.sparse_solves = 120;
  solution.stats.sparse_ftran_hits = 96;
  solution.stats.mean_reach_fraction = 0.0625;
  solution.stats.wall_seconds = 0.125;
  solution.frequent_pairs = {0, 2};
  solution.used_precision_caps = true;
  solution.proven_optimal = true;

  serve::ServeResponse decoded =
      RoundTripResponse({Status::OK(), solution});
  ASSERT_TRUE(decoded.ok());
  const UmpSolution* out = decoded.solution();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->objective, solution.objective);
  EXPECT_EQ(out->x, solution.x);
  EXPECT_EQ(out->x_relaxed, solution.x_relaxed);
  EXPECT_EQ(out->objective_value, solution.objective_value);
  EXPECT_EQ(out->output_size, solution.output_size);
  EXPECT_EQ(out->basis.basic, solution.basis.basic);
  ASSERT_EQ(out->basis.state.size(), solution.basis.state.size());
  EXPECT_EQ(out->stats.simplex_iterations, 41);
  EXPECT_EQ(out->stats.dual_iterations, 17);
  EXPECT_EQ(out->stats.refactorizations, 2);
  EXPECT_TRUE(out->stats.warm_started);
  EXPECT_EQ(out->stats.factor_nnz, 999u);
  EXPECT_EQ(out->stats.max_update_run, 12);
  EXPECT_EQ(out->stats.sparse_solves, 120u);
  EXPECT_EQ(out->stats.sparse_ftran_hits, 96u);
  EXPECT_EQ(out->stats.mean_reach_fraction, 0.0625);
  EXPECT_EQ(out->stats.wall_seconds, 0.125);
  EXPECT_EQ(out->frequent_pairs, solution.frequent_pairs);
  EXPECT_TRUE(out->used_precision_caps);
  EXPECT_TRUE(out->proven_optimal);
}

TEST(CodecTest, RoundTripsSweepPayload) {
  SweepResult sweep;
  sweep.cells.resize(2);
  sweep.cells[0].objective_value = 5.0;
  sweep.cells[0].x = {1, 2};
  sweep.cells[1].objective_value = 9.0;
  sweep.cells[1].stats.warm_started = true;
  sweep.total_simplex_iterations = 100;
  sweep.total_dual_iterations = 40;
  sweep.total_root_iterations = 60;
  sweep.warm_solves = 1;
  sweep.repair_aborted = 0;
  sweep.factor_nnz = 512;
  sweep.max_update_run = 8;
  sweep.sparse_solves = 220;
  sweep.sparse_ftran_hits = 200;
  sweep.mean_reach_fraction = 0.125;
  sweep.wall_seconds = 1.5;

  serve::ServeResponse decoded = RoundTripResponse({Status::OK(), sweep});
  const SweepResult* out = decoded.sweep();
  ASSERT_NE(out, nullptr);
  ASSERT_EQ(out->cells.size(), 2u);
  EXPECT_EQ(out->cells[0].objective_value, 5.0);
  EXPECT_EQ(out->cells[0].x, (std::vector<uint64_t>{1, 2}));
  EXPECT_TRUE(out->cells[1].stats.warm_started);
  EXPECT_EQ(out->total_simplex_iterations, 100);
  EXPECT_EQ(out->factor_nnz, 512u);
  EXPECT_EQ(out->sparse_solves, 220u);
  EXPECT_EQ(out->sparse_ftran_hits, 200u);
  EXPECT_EQ(out->mean_reach_fraction, 0.125);
  EXPECT_EQ(out->wall_seconds, 1.5);
}

TEST(CodecTest, RoundTripsReportPayload) {
  SanitizeReport report;
  report.output = Synthetic(21);
  report.preprocessed_input = Synthetic(22);
  report.preprocess_stats.pairs_removed = 5;
  report.preprocess_stats.pairs_retained = 30;
  report.preprocess_stats.users_dropped = 2;
  report.preprocess_stats.clicks_removed = 17;
  report.preprocess_stats.clicks_retained = 400;
  report.optimal_counts = {4, 0, 9};
  report.output_size = 13;
  report.audit.satisfies_privacy = true;
  report.audit.condition1_ok = true;
  report.audit.condition2_ok = false;
  report.audit.condition3_ok = true;
  report.audit.max_ratio = 1.75;
  report.audit.max_leak_probability = 1e-6;
  report.audit.worst_user = 19;
  report.audit.max_row_lhs = 0.25;
  report.audit.budget = 0.5;
  report.solve_seconds = 2.5;

  serve::ServeResponse decoded = RoundTripResponse({Status::OK(), report});
  const SanitizeReport* out = decoded.report();
  ASSERT_NE(out, nullptr);
  ExpectLogsIdentical(out->output, report.output);
  ExpectLogsIdentical(out->preprocessed_input, report.preprocessed_input);
  EXPECT_EQ(out->preprocess_stats.pairs_removed, 5u);
  EXPECT_EQ(out->preprocess_stats.users_dropped, 2u);
  EXPECT_EQ(out->preprocess_stats.clicks_retained, 400u);
  EXPECT_EQ(out->optimal_counts, report.optimal_counts);
  EXPECT_EQ(out->output_size, 13u);
  EXPECT_TRUE(out->audit.satisfies_privacy);
  EXPECT_FALSE(out->audit.condition2_ok);
  EXPECT_EQ(out->audit.max_ratio, 1.75);
  EXPECT_EQ(out->audit.worst_user, 19u);
  EXPECT_EQ(out->solve_seconds, 2.5);
}

TEST(CodecTest, RoundTripsStatsPayload) {
  serve::TenantStats stats;
  stats.appends_enqueued = 1;
  stats.flushes = 2;
  stats.appends_coalesced = 3;
  stats.maintenance_flushes = 4;
  stats.solves = 5;
  stats.cache_hits = 6;
  stats.cache_misses = 7;
  stats.repair_aborted = 8;
  stats.refactorizations = 9;
  stats.factor_nnz = 10;
  stats.max_update_run = 11;
  stats.sparse_solves = 40;
  stats.sparse_ftran_hits = 30;
  stats.mean_reach_permille = 83;
  stats.rows_copied = 12;
  stats.rows_rebuilt = 13;
  stats.refresh_solves = 14;
  stats.evictions = 15;
  stats.reloads = 16;
  stats.fast_lane_hits = 17;
  stats.admission_rejected = 18;
  stats.resident_bytes = 1 << 20;
  stats.users_removed = 19;
  stats.rows_patched_on_remove = 20;
  stats.epsilon_spent_micro = 693147;
  stats.budget_refusals = 21;

  serve::ServeResponse decoded = RoundTripResponse({Status::OK(), stats});
  const serve::TenantStats* out = decoded.stats();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->appends_enqueued, 1u);
  EXPECT_EQ(out->maintenance_flushes, 4u);
  EXPECT_EQ(out->cache_misses, 7u);
  EXPECT_EQ(out->sparse_solves, 40u);
  EXPECT_EQ(out->sparse_ftran_hits, 30u);
  EXPECT_EQ(out->mean_reach_permille, 83u);
  EXPECT_EQ(out->rows_rebuilt, 13u);
  EXPECT_EQ(out->reloads, 16u);
  EXPECT_EQ(out->fast_lane_hits, 17u);
  EXPECT_EQ(out->admission_rejected, 18u);
  EXPECT_EQ(out->resident_bytes, uint64_t{1} << 20);
  EXPECT_EQ(out->users_removed, 19u);
  EXPECT_EQ(out->rows_patched_on_remove, 20u);
  EXPECT_EQ(out->epsilon_spent_micro, 693147u);
  EXPECT_EQ(out->budget_refusals, 21u);
}

// --- Malformed payloads -----------------------------------------------------

TEST(CodecTest, RejectsTruncatedPayloads) {
  Frame frame =
      net::EncodeRequest(serve::AppendRequest{"t", Synthetic(31)}, 1)
          .value();
  // Chop the payload at several depths: every prefix must fail cleanly.
  for (size_t keep : {size_t{0}, size_t{1}, frame.payload.size() / 2,
                      frame.payload.size() - 1}) {
    Frame cut = frame;
    cut.payload.resize(keep);
    Result<serve::ServeRequest> decoded = net::DecodeRequest(cut);
    EXPECT_FALSE(decoded.ok()) << "kept " << keep << " bytes";
  }
}

TEST(CodecTest, RejectsTrailingBytes) {
  Frame frame = net::EncodeRequest(serve::FlushRequest{"t"}, 1).value();
  frame.payload += "junk";
  Result<serve::ServeRequest> decoded = net::DecodeRequest(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(CodecTest, RejectsOutOfRangeEnums) {
  {
    // Solve with an unknown objective byte.
    Frame frame =
        net::EncodeRequest(
            serve::SolveRequest{"t", UtilityObjective::kOutputSize,
                                Query(0.1, 1e-5)},
            1)
            .value();
    // Payload: tenant string (u64 length + bytes), then the objective.
    const size_t objective_at = sizeof(uint64_t) + 1;
    frame.payload[objective_at] = 55;
    EXPECT_FALSE(net::DecodeRequest(frame).ok());
  }
  {
    // Response with an unknown payload kind.
    Frame frame = net::EncodeResponse({Status::OK(), {}}, 1);
    frame.payload.back() = 55;
    EXPECT_FALSE(net::DecodeResponse(frame).ok());
  }
  {
    // Response with an unknown status code in the header.
    Frame frame = net::EncodeResponse({Status::OK(), {}}, 1);
    frame.status = 200;
    EXPECT_FALSE(net::DecodeResponse(frame).ok());
  }
}

TEST(CodecTest, RejectsWrongFrameDirection) {
  const Frame response = net::EncodeResponse({Status::OK(), {}}, 1);
  EXPECT_FALSE(net::DecodeRequest(response).ok());
  const Frame request =
      net::EncodeRequest(serve::StatsRequest{"t"}, 1).value();
  EXPECT_FALSE(net::DecodeResponse(request).ok());
}

// A response too large to frame (e.g. a report embedding a huge log) must
// cross the wire as a typed error the client can decode — not as an
// unparseable frame that tears down the connection and fails every
// pipelined request with it.
TEST(CodecTest, OversizedResponseBecomesTypedError) {
  UmpSolution solution;
  solution.x.assign(net::kMaxFramePayload / sizeof(uint64_t) + 1024, 7);
  const Frame frame = net::EncodeResponse({Status::OK(), solution}, 33);
  EXPECT_EQ(frame.status,
            static_cast<uint16_t>(StatusCode::kResourceExhausted));
  EXPECT_LE(frame.payload.size(), net::kMaxFramePayload);
  FrameDecoder decoder;
  decoder.Feed(net::EncodeFrame(frame));
  Frame wire;
  ASSERT_TRUE(decoder.Next(&wire).value());
  EXPECT_EQ(wire.request_id, 33u);
  const serve::ServeResponse decoded = net::DecodeResponse(wire).value();
  EXPECT_EQ(decoded.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded.solution(), nullptr);
}

// A count field that passes the absolute element cap but not the frame's
// actual size must fail before resizing: 2^26-1 8-byte elements would be
// a ~512MB up-front allocation conjured from a ~100-byte frame.
TEST(CodecTest, RejectsCountsExceedingRemainingPayload) {
  UmpSolution solution;
  solution.x = {1, 2, 3};
  Frame frame = net::EncodeResponse({Status::OK(), solution}, 1);
  // Payload: status message (u64 length, empty), payload kind u8,
  // objective u8, then the x element count.
  const size_t count_at = sizeof(uint64_t) + 1 + 1;
  const uint64_t huge = (1ull << 26) - 1;
  std::memcpy(frame.payload.data() + count_at, &huge, sizeof(huge));
  Result<serve::ServeResponse> decoded = net::DecodeResponse(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

// A hostile element count inside a well-framed payload must fail before
// allocating: craft an Append whose log header claims 2^26 users.
TEST(CodecTest, RejectsImplausibleElementCounts) {
  Frame frame =
      net::EncodeRequest(serve::AppendRequest{"t", SearchLog()}, 1).value();
  // Payload: tenant "t" (u64 len + 1 byte), then num_users u64.
  const size_t users_at = sizeof(uint64_t) + 1;
  const uint64_t huge = 1ull << 40;
  std::memcpy(frame.payload.data() + users_at, &huge, sizeof(huge));
  // The ReadCount guard fires (typed error, no allocation).
  EXPECT_FALSE(net::DecodeRequest(frame).ok());
}

// --- Observability verbs (PR 8) ---------------------------------------------

TEST(CodecTest, RoundTripsMetricsAndSlowLogRequests) {
  {
    serve::ServeRequest decoded = RoundTripRequest(serve::MetricsRequest{});
    ASSERT_TRUE(std::holds_alternative<serve::MetricsRequest>(decoded));
  }
  {
    serve::ServeRequest decoded =
        RoundTripRequest(serve::SlowLogRequest{"", 25});
    ASSERT_TRUE(std::holds_alternative<serve::SlowLogRequest>(decoded));
    EXPECT_EQ(std::get<serve::SlowLogRequest>(decoded).limit, 25u);
  }
}

TEST(CodecTest, RoundTripsMetricsTextPayload) {
  serve::MetricsText metrics;
  metrics.text = "# HELP a_total A.\n# TYPE a_total counter\na_total 3\n";
  serve::ServeResponse decoded =
      RoundTripResponse({Status::OK(), metrics});
  ASSERT_TRUE(decoded.ok());
  ASSERT_NE(decoded.metrics(), nullptr);
  EXPECT_EQ(decoded.metrics()->text, metrics.text);
}

TEST(CodecTest, RoundTripsSlowLogDumpPayload) {
  serve::SlowLogDump dump;
  dump.dropped = 5;
  dump.threshold_ms = 12.5;
  obs::SlowRequestRecord record;
  record.sequence = 42;
  record.tenant = "acme";
  record.verb = "Sweep";
  record.status_code = 8;
  record.total_ms = 1234.5;
  record.trace.queue_ms = 1.5;
  record.trace.flush_ms = 2.5;
  record.trace.solve_ms = 1200.0;
  record.trace.cache_ms = 0.25;
  record.trace.repair_pivots = 7;
  record.trace.iterations = 910;
  dump.records.push_back(record);
  dump.records.push_back(obs::SlowRequestRecord{});

  serve::ServeResponse decoded = RoundTripResponse({Status::OK(), dump});
  ASSERT_TRUE(decoded.ok());
  const serve::SlowLogDump* out = decoded.slow_log();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->dropped, 5u);
  EXPECT_EQ(out->threshold_ms, 12.5);
  ASSERT_EQ(out->records.size(), 2u);
  const obs::SlowRequestRecord& first = out->records[0];
  EXPECT_EQ(first.sequence, 42u);
  EXPECT_EQ(first.tenant, "acme");
  EXPECT_EQ(first.verb, "Sweep");
  EXPECT_EQ(first.status_code, 8);
  EXPECT_EQ(first.total_ms, 1234.5);
  EXPECT_EQ(first.trace.queue_ms, 1.5);
  EXPECT_EQ(first.trace.flush_ms, 2.5);
  EXPECT_EQ(first.trace.solve_ms, 1200.0);
  EXPECT_EQ(first.trace.cache_ms, 0.25);
  EXPECT_EQ(first.trace.repair_pivots, 7u);
  EXPECT_EQ(first.trace.iterations, 910u);
}

// A hostile record count in a SlowLog dump must fail before allocating
// (each wire record needs at least its fixed-size fields).
TEST(CodecTest, RejectsImplausibleSlowLogRecordCount) {
  Frame frame = net::EncodeResponse({Status::OK(), serve::SlowLogDump{}}, 1);
  // Payload: status message (u64 length, empty), payload kind u8, then
  // the record count u64.
  const size_t count_at = sizeof(uint64_t) + 1;
  // Under ReadCount's global element cap (so that earlier kIoError guard
  // passes), but far more records than the tiny frame can possibly back:
  // this must trip ReadBoundedCount's bytes-remaining check.
  const uint64_t huge = 1ull << 20;
  std::memcpy(frame.payload.data() + count_at, &huge, sizeof(huge));
  Result<serve::ServeResponse> decoded = net::DecodeResponse(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

// --- Streaming-lifecycle verbs (PR 10) --------------------------------------

TEST(CodecTest, RoundTripsRemoveUsersRequest) {
  serve::ServeRequest decoded = RoundTripRequest(serve::RemoveUsersRequest{
      "t", {"alice", "bob", "user with spaces"}});
  auto* remove = std::get_if<serve::RemoveUsersRequest>(&decoded);
  ASSERT_NE(remove, nullptr);
  EXPECT_EQ(remove->tenant, "t");
  EXPECT_EQ(remove->users,
            (std::vector<std::string>{"alice", "bob", "user with spaces"}));

  // An empty user list is legal (a no-op removal), not malformed.
  decoded = RoundTripRequest(serve::RemoveUsersRequest{"t", {}});
  remove = std::get_if<serve::RemoveUsersRequest>(&decoded);
  ASSERT_NE(remove, nullptr);
  EXPECT_TRUE(remove->users.empty());
}

TEST(CodecTest, RoundTripsExpireWindowAndBudgetStatusRequests) {
  {
    serve::ServeRequest decoded = RoundTripRequest(
        serve::ExpireWindowRequest{"t", 0xFEEDFACE12345678ull});
    auto* expire = std::get_if<serve::ExpireWindowRequest>(&decoded);
    ASSERT_NE(expire, nullptr);
    EXPECT_EQ(expire->tenant, "t");
    EXPECT_EQ(expire->cutoff, 0xFEEDFACE12345678ull);
  }
  {
    serve::ServeRequest decoded =
        RoundTripRequest(serve::BudgetStatusRequest{"budgeted"});
    auto* budget = std::get_if<serve::BudgetStatusRequest>(&decoded);
    ASSERT_NE(budget, nullptr);
    EXPECT_EQ(budget->tenant, "budgeted");
  }
}

TEST(CodecTest, RoundTripsCreateTenantWithBudgetAndWindow) {
  serve::CreateTenantRequest request{"t", Synthetic(14), std::nullopt};
  request.budget.max_epsilon = 2.5;
  request.budget.max_delta = 0.125;
  request.budget.min_remaining_epsilon = 0.25;
  request.budget.composition = stream::Composition::kAdvanced;
  request.budget.advanced_delta_slack = 1e-7;
  request.window.kind = stream::WindowKind::kTumbling;
  request.window.span = 86400;

  serve::ServeRequest decoded = RoundTripRequest(request);
  auto* create = std::get_if<serve::CreateTenantRequest>(&decoded);
  ASSERT_NE(create, nullptr);
  EXPECT_EQ(create->budget, request.budget);
  EXPECT_EQ(create->window, request.window);
  ExpectLogsIdentical(create->initial, request.initial);

  // Defaults (no budget, no window) round trip as the inactive configs.
  decoded = RoundTripRequest(
      serve::CreateTenantRequest{"t", SearchLog(), std::nullopt});
  create = std::get_if<serve::CreateTenantRequest>(&decoded);
  ASSERT_NE(create, nullptr);
  EXPECT_EQ(create->budget, stream::BudgetConfig{});
  EXPECT_EQ(create->window, stream::WindowPolicy{});
}

TEST(CodecTest, RoundTripsBudgetStatusPayload) {
  serve::BudgetStatus budget;
  budget.max_epsilon = 4.0;
  budget.max_delta = 0.5;
  budget.min_remaining_epsilon = 0.125;
  budget.composition = "advanced";
  budget.spent_epsilon = 1.75;
  budget.spent_delta = 0.0625;
  budget.remaining_epsilon = 2.25;
  budget.enforced = true;
  budget.allocations = 12;
  budget.refusals = 3;

  serve::ServeResponse decoded = RoundTripResponse({Status::OK(), budget});
  ASSERT_TRUE(decoded.ok());
  const serve::BudgetStatus* out = decoded.budget();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->max_epsilon, 4.0);
  EXPECT_EQ(out->max_delta, 0.5);
  EXPECT_EQ(out->min_remaining_epsilon, 0.125);
  EXPECT_EQ(out->composition, "advanced");
  EXPECT_EQ(out->spent_epsilon, 1.75);
  EXPECT_EQ(out->spent_delta, 0.0625);
  EXPECT_EQ(out->remaining_epsilon, 2.25);
  EXPECT_TRUE(out->enforced);
  EXPECT_EQ(out->allocations, 12u);
  EXPECT_EQ(out->refusals, 3u);
}

// The typed refusal must survive the wire: kBudgetExhausted rides the
// frame status header and decodes back as itself, not as a generic error.
TEST(CodecTest, RoundTripsBudgetExhaustedStatus) {
  serve::ServeResponse response;
  response.status = Status::BudgetExhausted("spent 1.0 of 1.0");
  const Frame frame = net::EncodeResponse(response, 7);
  EXPECT_EQ(frame.status,
            static_cast<uint16_t>(StatusCode::kBudgetExhausted));
  serve::ServeResponse decoded = RoundTripResponse(response);
  EXPECT_EQ(decoded.status.code(), StatusCode::kBudgetExhausted);
  EXPECT_EQ(decoded.status.message(), "spent 1.0 of 1.0");
}

// A hostile user-name count in a RemoveUsers frame must fail before
// allocating or looping: each name needs at least its wire footprint.
TEST(CodecTest, RejectsImplausibleRemoveUsersCount) {
  Frame frame =
      net::EncodeRequest(serve::RemoveUsersRequest{"t", {"alice"}}, 1)
          .value();
  // Payload: tenant "t" (u64 length + 1 byte), then the user count u64.
  const size_t count_at = sizeof(uint64_t) + 1;
  // Under ReadCount's global cap, so only the bytes-remaining guard can
  // catch it.
  const uint64_t huge = 1ull << 20;
  std::memcpy(frame.payload.data() + count_at, &huge, sizeof(huge));
  Result<serve::ServeRequest> decoded = net::DecodeRequest(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

// Unknown composition / window-kind bytes in a CreateTenant stream config
// are typed decode errors, not silently-misconfigured tenants.
TEST(CodecTest, RejectsBadCompositionAndWindowKindBytes) {
  const Frame frame =
      net::EncodeRequest(
          serve::CreateTenantRequest{"t", SearchLog(), std::nullopt}, 1)
          .value();
  // The stream config is the payload's 42-byte tail:
  //   max_eps(8) max_delta(8) floor(8) composition(1) slack(8)
  //   kind(1) span(8)
  ASSERT_GE(frame.payload.size(), 42u);
  {
    Frame bad = frame;
    bad.payload[bad.payload.size() - 18] = 9;  // composition byte
    Result<serve::ServeRequest> decoded = net::DecodeRequest(bad);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
  {
    Frame bad = frame;
    bad.payload[bad.payload.size() - 9] = 9;  // window kind byte
    Result<serve::ServeRequest> decoded = net::DecodeRequest(bad);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace privsan
