#include "lp/simplex.h"

#include <gtest/gtest.h>

#include <cmath>

#include "lp/model.h"

namespace privsan {
namespace lp {
namespace {

LpSolution Solve(LpModel& model) {
  EXPECT_TRUE(model.Validate().ok());
  SimplexSolver solver;
  return solver.Solve(model);
}

TEST(SimplexTest, TwoVariableMaximization) {
  // max 3x + 2y  s.t. x + y <= 4, x + 3y <= 6, x,y >= 0.
  // Vertices: (0,0), (4,0), (3,1), (0,2); optimum (4,0) with value 12.
  LpModel model(ObjectiveSense::kMaximize);
  int x = model.AddVariable(0, kInfinity, 3.0);
  int y = model.AddVariable(0, kInfinity, 2.0);
  int r1 = model.AddConstraint(ConstraintSense::kLessEqual, 4.0);
  model.AddCoefficient(r1, x, 1.0);
  model.AddCoefficient(r1, y, 1.0);
  int r2 = model.AddConstraint(ConstraintSense::kLessEqual, 6.0);
  model.AddCoefficient(r2, x, 1.0);
  model.AddCoefficient(r2, y, 3.0);

  LpSolution solution = Solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 12.0, 1e-8);
  EXPECT_NEAR(solution.x[x], 4.0, 1e-8);
  EXPECT_NEAR(solution.x[y], 0.0, 1e-8);
}

TEST(SimplexTest, InteriorOptimumVertex) {
  // max 2x + 3y  s.t. x + y <= 4, x + 3y <= 6 -> optimum (3,1), value 9.
  LpModel model(ObjectiveSense::kMaximize);
  int x = model.AddVariable(0, kInfinity, 2.0);
  int y = model.AddVariable(0, kInfinity, 3.0);
  int r1 = model.AddConstraint(ConstraintSense::kLessEqual, 4.0);
  model.AddCoefficient(r1, x, 1.0);
  model.AddCoefficient(r1, y, 1.0);
  int r2 = model.AddConstraint(ConstraintSense::kLessEqual, 6.0);
  model.AddCoefficient(r2, x, 1.0);
  model.AddCoefficient(r2, y, 3.0);

  LpSolution solution = Solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 9.0, 1e-8);
  EXPECT_NEAR(solution.x[x], 3.0, 1e-8);
  EXPECT_NEAR(solution.x[y], 1.0, 1e-8);
}

TEST(SimplexTest, MinimizationWithGreaterEqual) {
  // min 2x + 3y  s.t. x + y >= 4, x >= 1 -> optimum (4, 0), value 8.
  LpModel model(ObjectiveSense::kMinimize);
  int x = model.AddVariable(0, kInfinity, 2.0);
  int y = model.AddVariable(0, kInfinity, 3.0);
  int r1 = model.AddConstraint(ConstraintSense::kGreaterEqual, 4.0);
  model.AddCoefficient(r1, x, 1.0);
  model.AddCoefficient(r1, y, 1.0);
  int r2 = model.AddConstraint(ConstraintSense::kGreaterEqual, 1.0);
  model.AddCoefficient(r2, x, 1.0);

  LpSolution solution = Solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 8.0, 1e-8);
  EXPECT_NEAR(solution.x[x], 4.0, 1e-8);
}

TEST(SimplexTest, EqualityConstraintNeedsPhase1) {
  // min x + y  s.t. x + y = 5, x <= 3 -> value 5 (any split with x <= 3).
  LpModel model(ObjectiveSense::kMinimize);
  int x = model.AddVariable(0, 3.0, 1.0);
  int y = model.AddVariable(0, kInfinity, 1.0);
  int r = model.AddConstraint(ConstraintSense::kEqual, 5.0);
  model.AddCoefficient(r, x, 1.0);
  model.AddCoefficient(r, y, 1.0);

  LpSolution solution = Solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 5.0, 1e-8);
  EXPECT_NEAR(solution.x[x] + solution.x[y], 5.0, 1e-8);
  EXPECT_LE(solution.x[x], 3.0 + 1e-8);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x <= 1 and x >= 2 cannot both hold.
  LpModel model(ObjectiveSense::kMaximize);
  int x = model.AddVariable(0, kInfinity, 1.0);
  int r1 = model.AddConstraint(ConstraintSense::kLessEqual, 1.0);
  model.AddCoefficient(r1, x, 1.0);
  int r2 = model.AddConstraint(ConstraintSense::kGreaterEqual, 2.0);
  model.AddCoefficient(r2, x, 1.0);

  EXPECT_EQ(Solve(model).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, InfeasibleEqualitySystem) {
  // x + y = 1 and x + y = 2.
  LpModel model(ObjectiveSense::kMinimize);
  int x = model.AddVariable(0, kInfinity, 1.0);
  int y = model.AddVariable(0, kInfinity, 1.0);
  int r1 = model.AddConstraint(ConstraintSense::kEqual, 1.0);
  model.AddCoefficient(r1, x, 1.0);
  model.AddCoefficient(r1, y, 1.0);
  int r2 = model.AddConstraint(ConstraintSense::kEqual, 2.0);
  model.AddCoefficient(r2, x, 1.0);
  model.AddCoefficient(r2, y, 1.0);

  EXPECT_EQ(Solve(model).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  // max x with no constraints limiting it.
  LpModel model(ObjectiveSense::kMaximize);
  int x = model.AddVariable(0, kInfinity, 1.0);
  int y = model.AddVariable(0, kInfinity, 0.0);
  int r = model.AddConstraint(ConstraintSense::kLessEqual, 5.0);
  model.AddCoefficient(r, y, 1.0);  // constrains only y
  (void)x;

  EXPECT_EQ(Solve(model).status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, UnboundedBelowMinimization) {
  LpModel model(ObjectiveSense::kMinimize);
  model.AddVariable(-kInfinity, kInfinity, 1.0);  // min x, x free
  EXPECT_EQ(Solve(model).status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, NoConstraintsBoundedByBounds) {
  // max 2x - y with x in [0,3], y in [1,5] -> x=3, y=1, value 5.
  LpModel model(ObjectiveSense::kMaximize);
  int x = model.AddVariable(0.0, 3.0, 2.0);
  int y = model.AddVariable(1.0, 5.0, -1.0);
  LpSolution solution = Solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 5.0, 1e-9);
  EXPECT_NEAR(solution.x[x], 3.0, 1e-9);
  EXPECT_NEAR(solution.x[y], 1.0, 1e-9);
}

TEST(SimplexTest, UpperBoundedVariablesBoundFlip) {
  // max x + y  s.t. x + y <= 10, x in [0,2], y in [0,3] -> value 5.
  LpModel model(ObjectiveSense::kMaximize);
  int x = model.AddVariable(0.0, 2.0, 1.0);
  int y = model.AddVariable(0.0, 3.0, 1.0);
  int r = model.AddConstraint(ConstraintSense::kLessEqual, 10.0);
  model.AddCoefficient(r, x, 1.0);
  model.AddCoefficient(r, y, 1.0);

  LpSolution solution = Solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 5.0, 1e-9);
}

TEST(SimplexTest, NegativeLowerBounds) {
  // min x + y  s.t. x + y >= -3, x,y in [-5, 5] -> value -3? No: both can go
  // to -5 only if the constraint allows; x+y >= -3 binds -> value -3.
  LpModel model(ObjectiveSense::kMinimize);
  int x = model.AddVariable(-5.0, 5.0, 1.0);
  int y = model.AddVariable(-5.0, 5.0, 1.0);
  int r = model.AddConstraint(ConstraintSense::kGreaterEqual, -3.0);
  model.AddCoefficient(r, x, 1.0);
  model.AddCoefficient(r, y, 1.0);

  LpSolution solution = Solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, -3.0, 1e-8);
}

TEST(SimplexTest, FreeVariable) {
  // min y  s.t. y >= x - 2, y >= -x, x free, y free.
  // In constraint form: -x + y >= -2; x + y >= 0. Optimum y = -1 at x = 1.
  LpModel model(ObjectiveSense::kMinimize);
  int x = model.AddVariable(-kInfinity, kInfinity, 0.0);
  int y = model.AddVariable(-kInfinity, kInfinity, 1.0);
  int r1 = model.AddConstraint(ConstraintSense::kGreaterEqual, -2.0);
  model.AddCoefficient(r1, x, -1.0);
  model.AddCoefficient(r1, y, 1.0);
  int r2 = model.AddConstraint(ConstraintSense::kGreaterEqual, 0.0);
  model.AddCoefficient(r2, x, 1.0);
  model.AddCoefficient(r2, y, 1.0);

  LpSolution solution = Solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, -1.0, 1e-8);
  EXPECT_NEAR(solution.x[x], 1.0, 1e-8);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex.
  LpModel model(ObjectiveSense::kMaximize);
  int x = model.AddVariable(0, kInfinity, 1.0);
  int y = model.AddVariable(0, kInfinity, 1.0);
  for (int i = 0; i < 6; ++i) {
    int r = model.AddConstraint(ConstraintSense::kLessEqual, 2.0);
    model.AddCoefficient(r, x, 1.0 + 0.0 * i);
    model.AddCoefficient(r, y, 1.0);
  }
  LpSolution solution = Solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 2.0, 1e-8);
}

TEST(SimplexTest, FixedVariableRespected) {
  // x fixed at 2 by bounds; max x + y s.t. x + y <= 5 -> 5 with y = 3.
  LpModel model(ObjectiveSense::kMaximize);
  int x = model.AddVariable(2.0, 2.0, 1.0);
  int y = model.AddVariable(0.0, kInfinity, 1.0);
  int r = model.AddConstraint(ConstraintSense::kLessEqual, 5.0);
  model.AddCoefficient(r, x, 1.0);
  model.AddCoefficient(r, y, 1.0);

  LpSolution solution = Solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.x[x], 2.0, 1e-9);
  EXPECT_NEAR(solution.x[y], 3.0, 1e-8);
}

TEST(SimplexTest, EqualityWithNegativeRhs) {
  // x - y = -3, min x + y, x,y >= 0 -> x=0, y=3, value 3.
  LpModel model(ObjectiveSense::kMinimize);
  int x = model.AddVariable(0, kInfinity, 1.0);
  int y = model.AddVariable(0, kInfinity, 1.0);
  int r = model.AddConstraint(ConstraintSense::kEqual, -3.0);
  model.AddCoefficient(r, x, 1.0);
  model.AddCoefficient(r, y, -1.0);

  LpSolution solution = Solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 3.0, 1e-8);
  EXPECT_NEAR(solution.x[y], 3.0, 1e-8);
}

TEST(SimplexTest, TransportationProblem) {
  // Classic 2x3 transportation: supplies {20, 30}, demands {10, 25, 15},
  // costs {{2,3,1},{5,4,8}}. Optimal cost known: ship (s0->d2)=15, (s0->d0)=5
  // ... verify via objective only (LP optimum = 180).
  // Solved by hand: minimize. s0: cheap to d2 (1) and d0 (2); s1: to d1 (4).
  // x02=15, x00=5, x01=0, x10=5, x11=25 -> cost 15+10+25+100 = 150.
  LpModel model(ObjectiveSense::kMinimize);
  const double costs[2][3] = {{2, 3, 1}, {5, 4, 8}};
  int var[2][3];
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      var[i][j] = model.AddVariable(0, kInfinity, costs[i][j]);
    }
  }
  const double supply[2] = {20, 30};
  for (int i = 0; i < 2; ++i) {
    int r = model.AddConstraint(ConstraintSense::kLessEqual, supply[i]);
    for (int j = 0; j < 3; ++j) model.AddCoefficient(r, var[i][j], 1.0);
  }
  const double demand[3] = {10, 25, 15};
  for (int j = 0; j < 3; ++j) {
    int r = model.AddConstraint(ConstraintSense::kEqual, demand[j]);
    for (int i = 0; i < 2; ++i) model.AddCoefficient(r, var[i][j], 1.0);
  }
  LpSolution solution = Solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 150.0, 1e-7);
}

TEST(SimplexTest, DualsPriceBindingConstraints) {
  // max 3x + 2y s.t. x + y <= 4 (binding), x + 3y <= 6 (slack at optimum
  // (4,0)? LHS=4 <= 6 slack). Dual of binding row should be 3 (objective
  // gradient along x), dual of slack row 0.
  LpModel model(ObjectiveSense::kMaximize);
  int x = model.AddVariable(0, kInfinity, 3.0);
  int y = model.AddVariable(0, kInfinity, 2.0);
  int r1 = model.AddConstraint(ConstraintSense::kLessEqual, 4.0);
  model.AddCoefficient(r1, x, 1.0);
  model.AddCoefficient(r1, y, 1.0);
  int r2 = model.AddConstraint(ConstraintSense::kLessEqual, 6.0);
  model.AddCoefficient(r2, x, 1.0);
  model.AddCoefficient(r2, y, 3.0);

  LpSolution solution = Solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  ASSERT_EQ(solution.duals.size(), 2u);
  EXPECT_NEAR(solution.duals[0], 3.0, 1e-7);
  EXPECT_NEAR(solution.duals[1], 0.0, 1e-7);
}

TEST(SimplexTest, LargerDenseProblemSolves) {
  // A 40x60 random-ish but deterministic packing LP; checks termination and
  // feasibility of the reported point.
  LpModel model(ObjectiveSense::kMaximize);
  const int n = 60, m = 40;
  uint64_t state = 12345;
  auto next = [&]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>((state >> 33) % 1000) / 1000.0;
  };
  for (int j = 0; j < n; ++j) model.AddVariable(0, kInfinity, 1.0 + next());
  for (int r = 0; r < m; ++r) {
    int row = model.AddConstraint(ConstraintSense::kLessEqual, 5.0 + next());
    for (int j = 0; j < n; ++j) {
      double v = next();
      if (v > 0.7) model.AddCoefficient(row, j, 0.2 + v);
    }
  }
  ASSERT_TRUE(model.Validate().ok());
  SimplexSolver solver;
  LpSolution solution = solver.Solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_TRUE(model.IsFeasible(solution.x, 1e-6));
  EXPECT_GT(solution.objective, 0.0);
}

TEST(SimplexTest, IterationLimitReported) {
  LpModel model(ObjectiveSense::kMaximize);
  const int n = 30;
  for (int j = 0; j < n; ++j) model.AddVariable(0, kInfinity, 1.0);
  for (int r = 0; r < 20; ++r) {
    int row = model.AddConstraint(ConstraintSense::kLessEqual, 1.0);
    for (int j = 0; j < n; ++j) {
      model.AddCoefficient(row, j, 1.0 + ((r * 7 + j) % 5) * 0.1);
    }
  }
  ASSERT_TRUE(model.Validate().ok());
  SimplexOptions options;
  options.max_iterations = 1;
  SimplexSolver solver(options);
  EXPECT_EQ(solver.Solve(model).status, SolveStatus::kIterationLimit);
}

}  // namespace
}  // namespace lp
}  // namespace privsan
