#include "log/preprocess.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace privsan {
namespace {

using testing_fixtures::Figure1Log;

TEST(PreprocessTest, IsUniquePairDetectsSingleHolder) {
  SearchLog log = Figure1Log();
  EXPECT_TRUE(IsUniquePair(
      log, *log.FindPair("pregnancy test nyc", "medicinenet.com")));
  EXPECT_TRUE(
      IsUniquePair(log, *log.FindPair("diabetes medecine", "walmart.com")));
  EXPECT_FALSE(IsUniquePair(log, *log.FindPair("google", "google.com")));
  EXPECT_FALSE(IsUniquePair(log, *log.FindPair("book", "amazon.com")));
}

TEST(PreprocessTest, Figure1RemovesTwoUniquePairs) {
  PreprocessResult result = RemoveUniquePairs(Figure1Log());
  EXPECT_EQ(result.stats.pairs_removed, 2u);
  EXPECT_EQ(result.stats.pairs_retained, 3u);
  EXPECT_EQ(result.stats.clicks_removed, 3u);   // 2 + 1
  EXPECT_EQ(result.stats.clicks_retained, 50u);
  EXPECT_EQ(result.log.num_pairs(), 3u);
  EXPECT_EQ(result.log.total_clicks(), 50u);
}

TEST(PreprocessTest, Figure1KeepsAllUsers) {
  PreprocessResult result = RemoveUniquePairs(Figure1Log());
  // All three users hold at least one shared pair.
  EXPECT_EQ(result.log.num_users(), 3u);
  EXPECT_EQ(result.stats.users_dropped, 0u);
}

TEST(PreprocessTest, DropsUserWhoseLogBecomesEmpty) {
  SearchLogBuilder builder;
  builder.Add("lonely", "secret query", "secret.com", 5);  // unique
  builder.Add("a", "shared", "s.com", 1);
  builder.Add("b", "shared", "s.com", 2);
  PreprocessResult result = RemoveUniquePairs(builder.Build());
  EXPECT_EQ(result.stats.users_dropped, 1u);
  EXPECT_EQ(result.log.num_users(), 2u);
  EXPECT_FALSE(result.log.FindUser("lonely").ok());
}

TEST(PreprocessTest, OutputHasNoUniquePairs) {
  PreprocessResult result =
      RemoveUniquePairs(GenerateSearchLog(TinyConfig()).value());
  for (PairId p = 0; p < result.log.num_pairs(); ++p) {
    EXPECT_FALSE(IsUniquePair(result.log, p));
    EXPECT_GE(result.log.PairUserCount(p), 2u);
  }
}

TEST(PreprocessTest, IdempotentOnCleanLog) {
  PreprocessResult first = RemoveUniquePairs(Figure1Log());
  PreprocessResult second = RemoveUniquePairs(first.log);
  EXPECT_EQ(second.stats.pairs_removed, 0u);
  EXPECT_EQ(second.log.num_pairs(), first.log.num_pairs());
  EXPECT_EQ(second.log.total_clicks(), first.log.total_clicks());
}

TEST(PreprocessTest, EmptyLog) {
  SearchLogBuilder builder;
  PreprocessResult result = RemoveUniquePairs(builder.Build());
  EXPECT_EQ(result.log.num_pairs(), 0u);
  EXPECT_EQ(result.stats.pairs_removed, 0u);
}

TEST(PreprocessTest, AllPairsUnique) {
  SearchLogBuilder builder;
  builder.Add("a", "q1", "u1", 3);
  builder.Add("b", "q2", "u2", 4);
  PreprocessResult result = RemoveUniquePairs(builder.Build());
  EXPECT_EQ(result.log.num_pairs(), 0u);
  EXPECT_EQ(result.stats.pairs_removed, 2u);
  EXPECT_EQ(result.stats.users_dropped, 2u);
}

TEST(PreprocessTest, SharedPairCountsPreserved) {
  PreprocessResult result = RemoveUniquePairs(Figure1Log());
  const SearchLog& log = result.log;
  PairId google = *log.FindPair("google", "google.com");
  EXPECT_EQ(log.pair_total(google), 39u);
  EXPECT_EQ(log.TripletCount(google, *log.FindUser("081")), 15u);
  EXPECT_EQ(log.TripletCount(google, *log.FindUser("082")), 7u);
  EXPECT_EQ(log.TripletCount(google, *log.FindUser("083")), 17u);
}

TEST(PreprocessTest, SyntheticCollapseIsSubstantial) {
  // The synthetic AOL profile must reproduce the paper's heavy collapse
  // (Table 3: 163,681 -> 6,043 pairs).
  SearchLog raw = GenerateSearchLog(TinyConfig()).value();
  PreprocessResult result = RemoveUniquePairs(raw);
  // The tiny config collapses ~45%; the paper-scale profile collapses ~96%
  // (exercised by bench_table3_dataset).
  EXPECT_LT(result.log.num_pairs(), raw.num_pairs() * 3 / 4);
  EXPECT_GT(result.log.num_pairs(), 0u);
}

}  // namespace
}  // namespace privsan
