// Property tests for the simplex: on randomly generated LPs, a claimed
// optimum must (a) be primal feasible and (b) carry a full KKT certificate —
// dual feasibility plus complementary slackness — which together prove
// optimality without needing a reference solver.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"
#include "rng/random.h"

namespace privsan {
namespace lp {
namespace {

struct RandomLpSpec {
  uint64_t seed;
  int num_vars;
  int num_rows;
  bool with_upper_bounds;
  bool with_equalities;
};

// Feasibility by construction: sample an interior point x0 within the
// variable bounds, then derive every row's rhs from A x0 — equality rows get
// exactly A x0, inequality rows get A x0 plus nonnegative slack. x0 is then
// a feasible witness regardless of the random coefficients.
LpModel MakeRandomPackingLp(const RandomLpSpec& spec) {
  Rng rng(spec.seed);
  LpModel model(ObjectiveSense::kMaximize);
  std::vector<double> x0(spec.num_vars);
  for (int j = 0; j < spec.num_vars; ++j) {
    const double ub = spec.with_upper_bounds && rng.NextBool(0.5)
                          ? rng.NextDouble(0.5, 4.0)
                          : kInfinity;
    model.AddVariable(0.0, ub, rng.NextDouble(0.1, 2.0));
    x0[j] = rng.NextDouble(0.0, std::isfinite(ub) ? ub : 3.0);
  }
  for (int r = 0; r < spec.num_rows; ++r) {
    const bool equality = spec.with_equalities && r == 0;
    std::vector<Coefficient> entries;
    for (int j = 0; j < spec.num_vars; ++j) {
      if (rng.NextBool(0.6)) {
        entries.push_back(Coefficient{j, rng.NextDouble(0.1, 2.0)});
      }
    }
    if (entries.empty()) {
      entries.push_back(Coefficient{0, rng.NextDouble(0.1, 2.0)});
    }
    double witness_lhs = 0.0;
    for (const Coefficient& e : entries) {
      witness_lhs += e.value * x0[e.variable];
    }
    const double rhs =
        equality ? witness_lhs : witness_lhs + rng.NextDouble(0.0, 2.0);
    int row = model.AddConstraint(
        equality ? ConstraintSense::kEqual : ConstraintSense::kLessEqual,
        rhs);
    for (const Coefficient& e : entries) {
      model.AddCoefficient(row, e.variable, e.value);
    }
  }
  return model;
}

// Verifies the KKT conditions of a maximization LP at (x, y):
//   * primal feasibility,
//   * dual sign feasibility: y_r >= 0 for <= rows (free for =),
//   * stationarity/dual feasibility of reduced costs d_j = c_j - y^T A_j:
//       x_j at lower bound  => d_j <= tol
//       x_j at upper bound  => d_j >= -tol
//       x_j strictly inside => |d_j| <= tol
//   * complementary slackness: y_r > 0 => row r is tight.
void ExpectKktCertificate(const LpModel& model, const LpSolution& solution,
                          double tol = 1e-6) {
  ASSERT_EQ(model.sense(), ObjectiveSense::kMaximize);
  ASSERT_TRUE(model.IsFeasible(solution.x, tol));

  const int m = model.num_constraints();
  const int n = model.num_variables();
  ASSERT_EQ(static_cast<int>(solution.duals.size()), m);

  std::vector<double> row_lhs(m, 0.0);
  std::vector<double> reduced(n);
  for (int j = 0; j < n; ++j) reduced[j] = model.variable(j).objective;
  for (int r = 0; r < m; ++r) {
    for (const Coefficient& e : model.constraint(r).entries) {
      row_lhs[r] += e.value * solution.x[e.variable];
      reduced[e.variable] -= solution.duals[r] * e.value;
    }
  }

  for (int r = 0; r < m; ++r) {
    const Constraint& c = model.constraint(r);
    if (c.sense == ConstraintSense::kLessEqual) {
      EXPECT_GE(solution.duals[r], -tol) << "dual sign row " << r;
      if (solution.duals[r] > tol) {
        EXPECT_NEAR(row_lhs[r], c.rhs, tol) << "complementarity row " << r;
      }
    }
  }
  for (int j = 0; j < n; ++j) {
    const Variable& v = model.variable(j);
    const bool at_lower = solution.x[j] <= v.lower + tol;
    const bool at_upper =
        std::isfinite(v.upper) && solution.x[j] >= v.upper - tol;
    if (at_lower && at_upper) continue;  // fixed or degenerate: no sign info
    if (at_lower) {
      EXPECT_LE(reduced[j], tol) << "reduced cost at lower, var " << j;
    } else if (at_upper) {
      EXPECT_GE(reduced[j], -tol) << "reduced cost at upper, var " << j;
    } else {
      EXPECT_NEAR(reduced[j], 0.0, tol) << "interior var " << j;
    }
  }
}

class SimplexPropertyTest : public ::testing::TestWithParam<RandomLpSpec> {};

TEST_P(SimplexPropertyTest, OptimumCarriesKktCertificate) {
  LpModel model = MakeRandomPackingLp(GetParam());
  ASSERT_TRUE(model.Validate().ok());
  SimplexSolver solver;
  LpSolution solution = solver.Solve(model);
  // Packing LPs with all-positive rows and x >= 0 are feasible (x = 0) and
  // bounded in every constrained direction; unbounded can only occur when a
  // variable appears in no row — the generator prevents empty rows but not
  // uncovered columns, so allow kUnbounded as a valid exit.
  if (solution.status == SolveStatus::kUnbounded) {
    GTEST_SKIP() << "generated LP was unbounded (uncovered column)";
  }
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  ExpectKktCertificate(model, solution);
}

// Representation-equivalence harness: the Markowitz LU, the eta file, and
// the dense explicit inverse are three representations of the same basis
// algebra, so the solver must reach the same status and optimal objective
// under each (and every optimum must itself carry a KKT certificate).
// Covers LU-vs-dense and LU-vs-eta in one sweep over the random LP grid.
TEST_P(SimplexPropertyTest, LuEtaAndDenseRepresentationsAgree) {
  LpModel model = MakeRandomPackingLp(GetParam());
  ASSERT_TRUE(model.Validate().ok());

  SimplexOptions lu_options;
  lu_options.basis_kind = SimplexOptions::BasisKind::kLu;
  SimplexOptions eta_options;
  eta_options.basis_kind = SimplexOptions::BasisKind::kEtaFile;
  SimplexOptions dense_options;
  dense_options.basis_kind = SimplexOptions::BasisKind::kDense;

  LpSolution lu = SimplexSolver(lu_options).Solve(model);
  LpSolution eta = SimplexSolver(eta_options).Solve(model);
  LpSolution dense = SimplexSolver(dense_options).Solve(model);
  ASSERT_EQ(lu.status, eta.status);
  ASSERT_EQ(lu.status, dense.status);
  if (lu.status == SolveStatus::kUnbounded) {
    GTEST_SKIP() << "generated LP was unbounded (uncovered column)";
  }
  ASSERT_EQ(lu.status, SolveStatus::kOptimal);
  EXPECT_NEAR(lu.objective, eta.objective, 1e-6);
  EXPECT_NEAR(lu.objective, dense.objective, 1e-6);
  ExpectKktCertificate(model, lu);
  ExpectKktCertificate(model, eta);
  ExpectKktCertificate(model, dense);
}

// The identical pivot policy runs on both sides, so LU and eta do not just
// agree on the objective: on these well-conditioned instances the primal
// solution vectors agree to tight tolerance too.
TEST_P(SimplexPropertyTest, LuMatchesEtaSolutionVector) {
  LpModel model = MakeRandomPackingLp(GetParam());
  ASSERT_TRUE(model.Validate().ok());

  SimplexOptions lu_options;
  lu_options.basis_kind = SimplexOptions::BasisKind::kLu;
  SimplexOptions eta_options;
  eta_options.basis_kind = SimplexOptions::BasisKind::kEtaFile;

  LpSolution lu = SimplexSolver(lu_options).Solve(model);
  LpSolution eta = SimplexSolver(eta_options).Solve(model);
  ASSERT_EQ(lu.status, eta.status);
  if (lu.status != SolveStatus::kOptimal) {
    GTEST_SKIP() << "instance not optimal under both representations";
  }
  // The perturbed costs make the optimal vertex unique in all but
  // pathological ties, so the representations land on the same point.
  ASSERT_EQ(lu.x.size(), eta.x.size());
  for (size_t j = 0; j < lu.x.size(); ++j) {
    EXPECT_NEAR(lu.x[j], eta.x[j], 1e-5) << "x component " << j;
  }
}

// Update-scheme equivalence: Forrest–Tomlin and product-form updates are
// two ways of absorbing the same basis changes into the same Markowitz
// factors, and the eta file is the update-only oracle. All three must march
// the solver through the same pivots to the same vertex: equal status,
// objective, and solution vector, with the FT optimum carrying its own KKT
// certificate. This is the lockstep harness that pins the FT row-spike
// elimination to the representations it replaced.
TEST_P(SimplexPropertyTest, ForrestTomlinProductFormAndEtaLockstep) {
  LpModel model = MakeRandomPackingLp(GetParam());
  ASSERT_TRUE(model.Validate().ok());

  SimplexOptions ft_options;
  ft_options.basis_kind = SimplexOptions::BasisKind::kLu;
  ft_options.update_kind = SimplexOptions::UpdateKind::kForrestTomlin;
  SimplexOptions pfi_options;
  pfi_options.basis_kind = SimplexOptions::BasisKind::kLu;
  pfi_options.update_kind = SimplexOptions::UpdateKind::kProductForm;
  SimplexOptions eta_options;
  eta_options.basis_kind = SimplexOptions::BasisKind::kEtaFile;

  LpSolution ft = SimplexSolver(ft_options).Solve(model);
  LpSolution pfi = SimplexSolver(pfi_options).Solve(model);
  LpSolution eta = SimplexSolver(eta_options).Solve(model);
  ASSERT_EQ(ft.status, pfi.status);
  ASSERT_EQ(ft.status, eta.status);
  if (ft.status == SolveStatus::kUnbounded) {
    GTEST_SKIP() << "generated LP was unbounded (uncovered column)";
  }
  ASSERT_EQ(ft.status, SolveStatus::kOptimal);
  EXPECT_NEAR(ft.objective, pfi.objective, 1e-6);
  EXPECT_NEAR(ft.objective, eta.objective, 1e-6);
  ASSERT_EQ(ft.x.size(), pfi.x.size());
  ASSERT_EQ(ft.x.size(), eta.x.size());
  for (size_t j = 0; j < ft.x.size(); ++j) {
    EXPECT_NEAR(ft.x[j], pfi.x[j], 1e-5) << "x component " << j;
    EXPECT_NEAR(ft.x[j], eta.x[j], 1e-5) << "x component " << j;
  }
  ExpectKktCertificate(model, ft);
}

std::vector<RandomLpSpec> MakeSpecs() {
  std::vector<RandomLpSpec> specs;
  uint64_t seed = 1000;
  for (int vars : {3, 8, 20}) {
    for (int rows : {2, 6, 15}) {
      for (bool ub : {false, true}) {
        for (bool eq : {false, true}) {
          specs.push_back(RandomLpSpec{seed++, vars, rows, ub, eq});
        }
      }
    }
  }
  return specs;
}

INSTANTIATE_TEST_SUITE_P(RandomPackingLps, SimplexPropertyTest,
                         ::testing::ValuesIn(MakeSpecs()));

// Scaling invariance: multiplying the objective by a constant scales the
// optimum by the same constant.
TEST(SimplexInvarianceTest, ObjectiveScaling) {
  RandomLpSpec spec{77, 10, 6, true, false};
  LpModel model = MakeRandomPackingLp(spec);
  ASSERT_TRUE(model.Validate().ok());
  SimplexSolver solver;
  LpSolution base = solver.Solve(model);
  ASSERT_EQ(base.status, SolveStatus::kOptimal);

  LpModel scaled = MakeRandomPackingLp(spec);
  for (int j = 0; j < scaled.num_variables(); ++j) {
    scaled.mutable_variable(j).objective *= 3.0;
  }
  ASSERT_TRUE(scaled.Validate().ok());
  LpSolution scaled_solution = solver.Solve(scaled);
  ASSERT_EQ(scaled_solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(scaled_solution.objective, 3.0 * base.objective, 1e-6);
}

// Adding a redundant constraint must not change the optimum.
TEST(SimplexInvarianceTest, RedundantConstraint) {
  RandomLpSpec spec{88, 8, 5, false, false};
  LpModel model = MakeRandomPackingLp(spec);
  ASSERT_TRUE(model.Validate().ok());
  SimplexSolver solver;
  LpSolution base = solver.Solve(model);
  ASSERT_EQ(base.status, SolveStatus::kOptimal);

  LpModel extended = MakeRandomPackingLp(spec);
  int row = extended.AddConstraint(ConstraintSense::kLessEqual, 1e9);
  for (int j = 0; j < extended.num_variables(); ++j) {
    extended.AddCoefficient(row, j, 1.0);
  }
  ASSERT_TRUE(extended.Validate().ok());
  LpSolution ext = solver.Solve(extended);
  ASSERT_EQ(ext.status, SolveStatus::kOptimal);
  EXPECT_NEAR(ext.objective, base.objective, 1e-6);
}

// Tightening the budget can only decrease a packing optimum (monotonicity —
// the same property Table 4 exhibits in (ε, δ)).
TEST(SimplexInvarianceTest, RhsMonotonicity) {
  for (uint64_t seed : {5ull, 6ull, 7ull}) {
    RandomLpSpec spec{seed, 12, 8, false, false};
    SimplexSolver solver;

    LpModel loose = MakeRandomPackingLp(spec);
    ASSERT_TRUE(loose.Validate().ok());
    LpSolution loose_solution = solver.Solve(loose);
    ASSERT_EQ(loose_solution.status, SolveStatus::kOptimal);

    // Rebuild with halved right-hand sides.
    LpModel tight(ObjectiveSense::kMaximize);
    for (int j = 0; j < loose.num_variables(); ++j) {
      const Variable& v = loose.variable(j);
      tight.AddVariable(v.lower, v.upper, v.objective);
    }
    for (int r = 0; r < loose.num_constraints(); ++r) {
      const Constraint& c = loose.constraint(r);
      int row = tight.AddConstraint(c.sense, c.rhs * 0.5);
      for (const Coefficient& e : c.entries) {
        tight.AddCoefficient(row, e.variable, e.value);
      }
    }
    ASSERT_TRUE(tight.Validate().ok());
    LpSolution tight_solution = solver.Solve(tight);
    ASSERT_EQ(tight_solution.status, SolveStatus::kOptimal);
    EXPECT_LE(tight_solution.objective, loose_solution.objective + 1e-7);
  }
}

}  // namespace
}  // namespace lp
}  // namespace privsan
