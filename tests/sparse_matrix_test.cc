#include "lp/sparse_matrix.h"

#include <gtest/gtest.h>

namespace privsan {
namespace lp {
namespace {

TEST(SparseMatrixTest, EmptyMatrix) {
  SparseMatrix m(3, 2, {});
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_EQ(m.nonzeros(), 0u);
  EXPECT_TRUE(m.Column(0).empty());
  EXPECT_TRUE(m.Column(1).empty());
}

TEST(SparseMatrixTest, ColumnsSortedByRow) {
  SparseMatrix m(3, 1, {{2, 0, 5.0}, {0, 0, 1.0}, {1, 0, 3.0}});
  auto col = m.Column(0);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col[0].index, 0);
  EXPECT_EQ(col[1].index, 1);
  EXPECT_EQ(col[2].index, 2);
  EXPECT_DOUBLE_EQ(col[1].value, 3.0);
}

TEST(SparseMatrixTest, DuplicatesSummed) {
  SparseMatrix m(2, 1, {{0, 0, 1.0}, {0, 0, 2.5}});
  auto col = m.Column(0);
  ASSERT_EQ(col.size(), 1u);
  EXPECT_DOUBLE_EQ(col[0].value, 3.5);
}

TEST(SparseMatrixTest, ExplicitZerosDropped) {
  SparseMatrix m(2, 1, {{0, 0, 1.0}, {0, 0, -1.0}, {1, 0, 2.0}});
  auto col = m.Column(0);
  ASSERT_EQ(col.size(), 1u);
  EXPECT_EQ(col[0].index, 1);
}

TEST(SparseMatrixTest, AddColumnTo) {
  SparseMatrix m(3, 2, {{0, 0, 1.0}, {2, 0, 4.0}, {1, 1, 2.0}});
  std::vector<double> y = {10.0, 10.0, 10.0};
  m.AddColumnTo(0, 2.0, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 10.0);
  EXPECT_DOUBLE_EQ(y[2], 18.0);
}

TEST(SparseMatrixTest, ColumnDot) {
  SparseMatrix m(3, 1, {{0, 0, 1.0}, {1, 0, 2.0}, {2, 0, 3.0}});
  EXPECT_DOUBLE_EQ(m.ColumnDot(0, {1.0, 10.0, 100.0}), 321.0);
}

TEST(SparseMatrixTest, MultipleColumns) {
  SparseMatrix m(2, 3, {{0, 2, 7.0}, {1, 0, 1.0}, {0, 1, 2.0}, {1, 1, 3.0}});
  EXPECT_EQ(m.Column(0).size(), 1u);
  EXPECT_EQ(m.Column(1).size(), 2u);
  EXPECT_EQ(m.Column(2).size(), 1u);
  EXPECT_EQ(m.nonzeros(), 4u);
}

}  // namespace
}  // namespace lp
}  // namespace privsan
