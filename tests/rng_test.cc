#include "rng/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace privsan {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ZeroSeedIsWellMixed) {
  // splitmix64 seeding means seed 0 must not produce degenerate output.
  Rng rng(0);
  std::set<uint64_t> values;
  for (int i = 0; i < 32; ++i) values.insert(rng.NextUint64());
  EXPECT_EQ(values.size(), 32u);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(99);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(2024);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextBounded(kBuckets)];
  }
  // Chi-square with 7 dof; 99.9th percentile ~ 24.3.
  double chi2 = 0.0;
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 24.3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  double min = 1.0, max = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    min = std::min(min, v);
    max = std::max(max, v);
  }
  EXPECT_LT(min, 0.01);
  EXPECT_GT(max, 0.99);
}

TEST(RngTest, NextDoubleRange) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(RngTest, NextBoolEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
    EXPECT_FALSE(rng.NextBool(-1.0));
    EXPECT_TRUE(rng.NextBool(2.0));
  }
}

TEST(RngTest, NextBoolFrequency) {
  Rng rng(4);
  int heads = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.NextBool(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / kDraws, 0.3, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(11);
  Rng child = parent.Fork();
  // Child continues deterministically but differs from the parent stream.
  Rng parent2(11);
  Rng child2 = parent2.Fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(child.NextUint64(), child2.NextUint64());
  }
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  }
  EXPECT_EQ(s1, s2);
}

TEST(SplitMix64Test, AdvancesState) {
  uint64_t s = 0;
  uint64_t first = SplitMix64(s);
  uint64_t second = SplitMix64(s);
  EXPECT_NE(first, second);
  EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace privsan
