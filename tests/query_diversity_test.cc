#include "core/query_diversity.h"

#include <gtest/gtest.h>

#include "core/audit.h"
#include "core/dump.h"
#include "test_fixtures.h"

namespace privsan {
namespace {

using testing_fixtures::SmallSyntheticLog;
using testing_fixtures::TwoUserSharedLog;

TEST(QueryDiversityTest, RejectsUnpreprocessedLog) {
  EXPECT_FALSE(SolveQueryDiversity(testing_fixtures::Figure1Log(),
                                   PrivacyParams{1.0, 0.5})
                   .ok());
}

TEST(QueryDiversityTest, CountCoveredQueries) {
  SearchLog log = SmallSyntheticLog();
  std::vector<uint64_t> none(log.num_pairs(), 0);
  EXPECT_EQ(CountCoveredQueries(log, none), 0);
  std::vector<uint64_t> all(log.num_pairs(), 1);
  EXPECT_EQ(CountCoveredQueries(log, all),
            static_cast<int64_t>(log.num_queries()));
}

TEST(QueryDiversityTest, TwoUserAnalyticCase) {
  // Budget log 2 admits exactly one pair (see spe_test); both pairs belong
  // to distinct queries, so exactly one query is covered.
  SearchLog log = TwoUserSharedLog();
  QueryDiversityResult result =
      SolveQueryDiversity(log, PrivacyParams::FromEEpsilon(2.0, 0.5)).value();
  EXPECT_EQ(result.queries_retained, 1);
  EXPECT_EQ(result.pairs_retained, 1);
}

TEST(QueryDiversityTest, SolutionIsPrivate) {
  SearchLog log = SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(1.7, 0.2);
  QueryDiversityResult result = SolveQueryDiversity(log, params).value();
  AuditReport audit = AuditSolution(log, params, result.x).value();
  EXPECT_TRUE(audit.satisfies_privacy) << audit.ToString();
}

TEST(QueryDiversityTest, CountsAreBinary) {
  SearchLog log = SmallSyntheticLog();
  QueryDiversityResult result =
      SolveQueryDiversity(log, PrivacyParams::FromEEpsilon(2.0, 0.5)).value();
  for (uint64_t v : result.x) EXPECT_LE(v, 1u);
  EXPECT_EQ(result.queries_retained, CountCoveredQueries(log, result.x));
}

TEST(QueryDiversityTest, CoversAtLeastAsManyQueriesAsPairDump) {
  // Maximizing query coverage directly should never cover fewer queries
  // than the pair-diversity heuristic does incidentally.
  SearchLog log = SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  QueryDiversityResult qd = SolveQueryDiversity(log, params).value();
  DumpResult dump = SolveDump(log, params).value();
  EXPECT_GE(qd.queries_retained,
            CountCoveredQueries(log, dump.x));
}

TEST(QueryDiversityTest, MonotoneInBudget) {
  SearchLog log = SmallSyntheticLog();
  int64_t prev = 0;
  for (double delta : {1e-2, 1e-1, 0.5, 0.8}) {
    QueryDiversityResult result =
        SolveQueryDiversity(log, PrivacyParams::FromEEpsilon(2.0, delta))
            .value();
    EXPECT_GE(result.queries_retained, prev) << "delta=" << delta;
    prev = result.queries_retained;
  }
}

TEST(QueryDiversityTest, RatioConsistent) {
  SearchLog log = SmallSyntheticLog();
  QueryDiversityResult result =
      SolveQueryDiversity(log, PrivacyParams::FromEEpsilon(2.0, 0.5)).value();
  EXPECT_NEAR(result.query_diversity_ratio,
              static_cast<double>(result.queries_retained) /
                  static_cast<double>(log.num_queries()),
              1e-12);
}

}  // namespace
}  // namespace privsan
