// serve::SanitizerService semantics: tenant lifecycle, append-queue
// batching, the budget-keyed result cache and its invalidation, and
// deterministic multi-tenant isolation under concurrency (the ThreadSanitizer
// CI job runs this file).
#include "serve/service.h"

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/session.h"
#include "synth/generator.h"
#include "test_fixtures.h"

namespace privsan {
namespace {


SearchLog Synthetic(uint64_t seed, size_t users = 60, size_t events = 3000) {
  SyntheticLogConfig config = TinyConfig();
  config.seed = seed;
  config.num_users = users;
  config.num_events = events;
  return GenerateSearchLog(config).value();
}

UmpQuery Query(double e_eps, double delta) {
  UmpQuery query;
  query.privacy = PrivacyParams::FromEEpsilon(e_eps, delta);
  return query;
}

TEST(ServiceTest, TenantLifecycle) {
  serve::SanitizerService service;
  EXPECT_TRUE(service.CreateTenant("a", Synthetic(1)).ok());
  EXPECT_TRUE(service.CreateTenant("b", Synthetic(2)).ok());
  // Duplicate names and unknown tenants fail cleanly.
  EXPECT_EQ(service.CreateTenant("a", Synthetic(3)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Solve("ghost", UtilityObjective::kOutputSize,
                          Query(2.0, 0.5))
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.Tenants(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(service.DropTenant("a").ok());
  EXPECT_EQ(service.DropTenant("a").code(), StatusCode::kNotFound);
  EXPECT_EQ(service.Tenants(), (std::vector<std::string>{"b"}));
}

TEST(ServiceTest, SolveMatchesDirectSession) {
  const SearchLog raw = Synthetic(7);
  serve::SanitizerService service;
  ASSERT_TRUE(service.CreateTenant("t", raw).ok());
  const UmpSolution via_service =
      service.Solve("t", UtilityObjective::kOutputSize, Query(2.0, 0.5))
          .value();

  SanitizerSession direct = SanitizerSession::Create(raw).value();
  const UmpSolution via_session =
      direct.Solve(UtilityObjective::kOutputSize, Query(2.0, 0.5)).value();
  // Same log, same cold solve path: identical, not just equal-objective.
  EXPECT_EQ(via_service.x, via_session.x);
  EXPECT_EQ(via_service.output_size, via_session.output_size);
}

TEST(ServiceTest, AppendQueueCoalescesIntoOneFlush) {
  const SearchLog full = Synthetic(9, /*users=*/80, /*events=*/4000);
  const UserId cut = full.num_users() / 2;
  constexpr int kBatches = 5;

  serve::SanitizerService service;
  ASSERT_TRUE(service.CreateTenant("t", UserSlice(full, 0, cut)).ok());
  const UserId per_batch =
      (full.num_users() - cut + kBatches - 1) / kBatches;
  for (int b = 0; b < kBatches; ++b) {
    const UserId begin = cut + b * per_batch;
    const UserId end = std::min<UserId>(full.num_users(),
                                        begin + per_batch);
    ASSERT_TRUE(service.Append("t", UserSlice(full, begin, end)).ok());
  }
  serve::TenantStats stats = service.Stats("t").value();
  EXPECT_EQ(stats.appends_enqueued, static_cast<uint64_t>(kBatches));
  EXPECT_EQ(stats.flushes, 0u);  // nothing landed yet

  // The solve auto-flushes: one AppendUsers for all batches.
  const UmpSolution solution =
      service.Solve("t", UtilityObjective::kOutputSize, Query(2.0, 0.5))
          .value();
  stats = service.Stats("t").value();
  EXPECT_EQ(stats.flushes, 1u);
  EXPECT_EQ(stats.appends_coalesced, static_cast<uint64_t>(kBatches));
  // Half the user base arrived: every row was touched or new, but the
  // patch accounting must still cover the whole system.
  EXPECT_GT(stats.rows_rebuilt, 0u);

  // Result equals a from-scratch solve on the whole log.
  SanitizerSession scratch =
      SanitizerSession::Create(UserSlice(full, 0, full.num_users())).value();
  const UmpSolution cold =
      scratch.Solve(UtilityObjective::kOutputSize, Query(2.0, 0.5)).value();
  EXPECT_EQ(solution.output_size, cold.output_size);
  EXPECT_NEAR(solution.objective_value, cold.objective_value,
              1e-6 * (1.0 + cold.objective_value));
}

TEST(ServiceTest, ResultCacheHitsAndInvalidatesOnAppend) {
  const SearchLog full = Synthetic(13, /*users=*/80, /*events=*/4000);
  const UserId cut = full.num_users() * 3 / 4;
  serve::SanitizerService service;
  ASSERT_TRUE(service.CreateTenant("t", UserSlice(full, 0, cut)).ok());
  const UmpQuery query = Query(2.0, 0.5);

  const UmpSolution first =
      service.Solve("t", UtilityObjective::kOutputSize, query).value();
  const UmpSolution second =
      service.Solve("t", UtilityObjective::kOutputSize, query).value();
  serve::TenantStats stats = service.Stats("t").value();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.solves, 1u);  // the hit did not re-solve
  EXPECT_EQ(first.x, second.x);

  // A different budget is a different key.
  (void)service.Solve("t", UtilityObjective::kOutputSize, Query(1.4, 0.5))
      .value();
  stats = service.Stats("t").value();
  EXPECT_EQ(stats.cache_misses, 2u);

  // Appending invalidates: the same key re-solves on the grown log.
  ASSERT_TRUE(
      service.Append("t", UserSlice(full, cut, full.num_users())).ok());
  const UmpSolution after =
      service.Solve("t", UtilityObjective::kOutputSize, query).value();
  stats = service.Stats("t").value();
  EXPECT_EQ(stats.cache_hits, 1u);  // unchanged
  EXPECT_EQ(stats.cache_misses, 3u);
  // The post-invalidation solve ran on the grown log.
  SanitizerSession scratch =
      SanitizerSession::Create(UserSlice(full, 0, full.num_users())).value();
  EXPECT_EQ(after.output_size,
            scratch.Solve(UtilityObjective::kOutputSize, query)
                .value()
                .output_size);
}

TEST(ServiceTest, CacheDisabledNeverHits) {
  serve::ServiceOptions options;
  options.result_cache_capacity = 0;
  serve::SanitizerService service(options);
  ASSERT_TRUE(service.CreateTenant("t", Synthetic(5)).ok());
  const UmpQuery query = Query(2.0, 0.5);
  (void)service.Solve("t", UtilityObjective::kOutputSize, query).value();
  (void)service.Solve("t", UtilityObjective::kOutputSize, query).value();
  const serve::TenantStats stats = service.Stats("t").value();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.solves, 2u);
}

TEST(ServiceTest, SweepThroughServiceMatchesSession) {
  const SearchLog raw = Synthetic(17);
  serve::SanitizerService service;
  ASSERT_TRUE(service.CreateTenant("t", raw).ok());
  std::vector<UmpQuery> grid;
  for (double e_eps : {1.4, 1.7, 2.0}) grid.push_back(Query(e_eps, 0.5));

  const SweepResult via_service =
      service.Sweep("t", UtilityObjective::kOutputSize, grid).value();
  SanitizerSession session = SanitizerSession::Create(raw).value();
  const SweepResult via_session =
      session.SweepBudgets(UtilityObjective::kOutputSize, grid).value();
  ASSERT_EQ(via_service.cells.size(), via_session.cells.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(via_service.cells[i].output_size,
              via_session.cells[i].output_size);
  }
}

// N client threads, each hammering its own tenant. Per-tenant results must
// be bit-identical to a serial run of the same sequence: tenants share only
// the thread pool, never solver state.
TEST(ServiceTest, ConcurrentTenantsAreIsolatedAndDeterministic) {
  constexpr int kTenants = 4;
  std::vector<SearchLog> raws;
  std::vector<SearchLog> appends;
  for (int t = 0; t < kTenants; ++t) {
    const SearchLog full = Synthetic(100 + t, /*users=*/50,
                                     /*events=*/2500);
    const UserId cut = full.num_users() * 3 / 4;
    raws.push_back(UserSlice(full, 0, cut));
    appends.push_back(UserSlice(full, cut, full.num_users()));
  }

  // Serial reference, one isolated session per tenant.
  std::vector<uint64_t> expected_before(kTenants), expected_after(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    SanitizerSession session = SanitizerSession::Create(raws[t]).value();
    expected_before[t] =
        session.Solve(UtilityObjective::kOutputSize, Query(2.0, 0.5))
            .value()
            .output_size;
    ASSERT_TRUE(session.AppendUsers(appends[t]).ok());
    expected_after[t] =
        session.Solve(UtilityObjective::kOutputSize, Query(2.0, 0.5))
            .value()
            .output_size;
  }

  serve::ServiceOptions options;
  options.num_threads = 3;
  serve::SanitizerService service(options);
  for (int t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(
        service.CreateTenant("tenant" + std::to_string(t), raws[t]).ok());
  }
  std::vector<uint64_t> got_before(kTenants, 0), got_after(kTenants, 0);
  std::vector<int> failures(kTenants, 0);
  std::vector<std::thread> clients;
  for (int t = 0; t < kTenants; ++t) {
    clients.emplace_back([&, t] {
      const std::string name = "tenant" + std::to_string(t);
      auto before =
          service.Solve(name, UtilityObjective::kOutputSize, Query(2.0, 0.5));
      if (!before.ok() || !service.Append(name, appends[t]).ok()) {
        failures[t] = 1;
        return;
      }
      auto after =
          service.Solve(name, UtilityObjective::kOutputSize, Query(2.0, 0.5));
      if (!after.ok()) {
        failures[t] = 1;
        return;
      }
      got_before[t] = before->output_size;
      got_after[t] = after->output_size;
    });
  }
  for (std::thread& client : clients) client.join();
  for (int t = 0; t < kTenants; ++t) {
    ASSERT_EQ(failures[t], 0) << "tenant " << t;
    EXPECT_EQ(got_before[t], expected_before[t]) << "tenant " << t;
    EXPECT_EQ(got_after[t], expected_after[t]) << "tenant " << t;
  }
}

// Many threads aimed at ONE tenant: the per-tenant lock serializes them;
// results must all be the cached/identical solution. Primarily a TSan
// target.
TEST(ServiceTest, ConcurrentCallsOnOneTenantSerialize) {
  serve::SanitizerService service;
  ASSERT_TRUE(service.CreateTenant("t", Synthetic(31)).ok());
  constexpr int kThreads = 6;
  std::vector<uint64_t> sizes(kThreads, 0);
  std::vector<std::thread> clients;
  for (int i = 0; i < kThreads; ++i) {
    clients.emplace_back([&, i] {
      auto solution =
          service.Solve("t", UtilityObjective::kOutputSize, Query(2.0, 0.5));
      sizes[i] = solution.ok() ? solution->output_size : 0;
    });
  }
  for (std::thread& client : clients) client.join();
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(sizes[i], sizes[0]);
  EXPECT_GT(sizes[0], 0u);
  const serve::TenantStats stats = service.Stats("t").value();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses,
            static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.solves, stats.cache_misses);
}

TEST(ServiceTest, EmptyTenantGrowsThroughAppends) {
  serve::SanitizerService service;
  ASSERT_TRUE(service.CreateTenant("t", SearchLog()).ok());
  EXPECT_FALSE(
      service.Solve("t", UtilityObjective::kOutputSize, Query(2.0, 0.5))
          .ok());
  SearchLogBuilder a, b;
  a.Add("alice", "q", "u", 3);
  b.Add("bob", "q", "u", 2);
  ASSERT_TRUE(service.Append("t", a.Build()).ok());
  ASSERT_TRUE(service.Append("t", b.Build()).ok());
  EXPECT_TRUE(
      service.Solve("t", UtilityObjective::kOutputSize, Query(2.0, 0.5))
          .ok());
}

}  // namespace
}  // namespace privsan
