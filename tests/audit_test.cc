#include "core/audit.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/constraints.h"
#include "test_fixtures.h"

namespace privsan {
namespace {

using testing_fixtures::Figure1Preprocessed;
using testing_fixtures::SmallSyntheticLog;
using testing_fixtures::TwoUserSharedLog;

TEST(AuditTest, ZeroCountsAlwaysPrivate) {
  SearchLog log = Figure1Preprocessed();
  std::vector<uint64_t> x(log.num_pairs(), 0);
  AuditReport report =
      AuditSolution(log, PrivacyParams::FromEEpsilon(1.001, 1e-4), x).value();
  EXPECT_TRUE(report.satisfies_privacy);
  EXPECT_DOUBLE_EQ(report.max_ratio, 1.0);
  EXPECT_DOUBLE_EQ(report.max_leak_probability, 0.0);
}

TEST(AuditTest, DetectsCondition1Violation) {
  SearchLog log = testing_fixtures::Figure1Log();
  std::vector<uint64_t> x(log.num_pairs(), 0);
  x[*log.FindPair("pregnancy test nyc", "medicinenet.com")] = 1;
  AuditReport report =
      AuditSolution(log, PrivacyParams::FromEEpsilon(2.0, 0.5), x).value();
  EXPECT_FALSE(report.condition1_ok);
  EXPECT_FALSE(report.satisfies_privacy);
  // A unique pair with positive count leaks its user with certainty.
  EXPECT_DOUBLE_EQ(report.max_leak_probability, 1.0);
}

TEST(AuditTest, ExactRatioOnTwoUserLog) {
  // x = (1, 0): bob's ratio = (10/4)^1 = 2.5; alice's = (10/6)^1 = 1.667.
  SearchLog log = TwoUserSharedLog();
  std::vector<uint64_t> x(log.num_pairs(), 0);
  x[*log.FindPair("q1", "u1")] = 1;
  AuditReport report =
      AuditSolution(log, PrivacyParams::FromEEpsilon(3.0, 0.99), x).value();
  EXPECT_NEAR(report.max_ratio, 2.5, 1e-9);
  // Leak probability for bob: 1 - (4/10)^1 = 0.6.
  EXPECT_NEAR(report.max_leak_probability, 0.6, 1e-9);
  EXPECT_TRUE(report.satisfies_privacy);  // e^eps = 3 > 2.5, delta .99 > .6
}

TEST(AuditTest, ViolationWhenEpsilonTooSmall) {
  SearchLog log = TwoUserSharedLog();
  std::vector<uint64_t> x(log.num_pairs(), 0);
  x[*log.FindPair("q1", "u1")] = 1;  // ratio 2.5
  AuditReport report =
      AuditSolution(log, PrivacyParams::FromEEpsilon(2.0, 0.99), x).value();
  EXPECT_FALSE(report.condition2_ok);
  EXPECT_FALSE(report.satisfies_privacy);
}

TEST(AuditTest, ViolationWhenDeltaTooSmall) {
  SearchLog log = TwoUserSharedLog();
  std::vector<uint64_t> x(log.num_pairs(), 0);
  x[*log.FindPair("q1", "u1")] = 1;  // leak 0.6
  AuditReport report =
      AuditSolution(log, PrivacyParams::FromEEpsilon(3.0, 0.5), x).value();
  EXPECT_TRUE(report.condition2_ok);
  EXPECT_FALSE(report.condition3_ok);
  EXPECT_FALSE(report.satisfies_privacy);
}

TEST(AuditTest, RatioEqualsExpOfRowLhs) {
  // Cross-check: the audit's direct product must equal exp(linear LHS) of
  // the constraint system — the equivalence Theorem 1 is built on.
  SearchLog log = SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  DpConstraintSystem system = DpConstraintSystem::Build(log, params).value();

  std::vector<uint64_t> x(log.num_pairs(), 0);
  for (PairId p = 0; p < log.num_pairs(); p += 3) x[p] = 1 + p % 2;

  AuditReport report = AuditSolution(log, params, x).value();
  EXPECT_NEAR(report.max_ratio, std::exp(system.MaxRowLhs(x)), 1e-6);
  EXPECT_NEAR(report.max_leak_probability,
              -std::expm1(-system.MaxRowLhs(x)), 1e-6);
  EXPECT_NEAR(report.max_row_lhs, system.MaxRowLhs(x), 1e-9);
}

TEST(AuditTest, BudgetSatisfactionImpliesBothConditions) {
  // If max row LHS <= budget then both the ratio and the leak bound follow
  // (the merged-budget argument of Equation 4).
  SearchLog log = SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(1.4, 0.1);
  DpConstraintSystem system = DpConstraintSystem::Build(log, params).value();

  // Scale a uniform vector until it just fits the budget.
  std::vector<uint64_t> x(log.num_pairs(), 0);
  for (uint64_t level = 1; level < 50; ++level) {
    std::vector<uint64_t> candidate(log.num_pairs(), level);
    if (!system.IsSatisfied(candidate)) break;
    x = candidate;
  }
  AuditReport report = AuditSolution(log, params, x).value();
  EXPECT_TRUE(report.condition2_ok);
  EXPECT_TRUE(report.condition3_ok);
}

TEST(AuditTest, WrongSizeRejected) {
  SearchLog log = Figure1Preprocessed();
  std::vector<uint64_t> x(log.num_pairs() + 2, 0);
  EXPECT_EQ(AuditSolution(log, PrivacyParams{1.0, 0.5}, x).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AuditTest, InvalidParamsRejected) {
  SearchLog log = Figure1Preprocessed();
  std::vector<uint64_t> x(log.num_pairs(), 0);
  EXPECT_FALSE(AuditSolution(log, PrivacyParams{0.0, 0.5}, x).ok());
}

TEST(AuditTest, ToStringReflectsOutcome) {
  SearchLog log = TwoUserSharedLog();
  std::vector<uint64_t> x(log.num_pairs(), 0);
  AuditReport ok_report =
      AuditSolution(log, PrivacyParams::FromEEpsilon(2.0, 0.5), x).value();
  EXPECT_NE(ok_report.ToString().find("SATISFIED"), std::string::npos);

  x[0] = 100;
  AuditReport bad_report =
      AuditSolution(log, PrivacyParams::FromEEpsilon(1.01, 0.001), x).value();
  EXPECT_NE(bad_report.ToString().find("VIOLATED"), std::string::npos);
}

}  // namespace
}  // namespace privsan
