// The observability layer in isolation: lock-free histogram recording
// (exact counts under concurrency — the ThreadSanitizer CI job runs this
// file), bucket-quantile edge cases, the slow-request ring buffer, and
// the Prometheus text renderer. Service-level integration (stage traces,
// METRICS/SLOWLOG verbs) lives in async_service_test and net tests.
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/histogram.h"
#include "obs/registry.h"
#include "obs/slow_log.h"

namespace privsan {
namespace obs {
namespace {

TEST(LatencyHistogramTest, CountsAndSumAreExact) {
  LatencyHistogram histogram;
  histogram.RecordMicros(1);
  histogram.RecordMicros(100);
  histogram.RecordMicros(100);
  histogram.RecordMicros(5000);
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum_us, 1u + 100 + 100 + 5000);
  // 100 us lands in the (64, 128] bucket; both samples share it.
  EXPECT_EQ(snap.buckets[7], 2u);
}

TEST(LatencyHistogramTest, EmptyQuantileIsZero) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.Snapshot().QuantileUs(0.5), 0.0);
  EXPECT_EQ(histogram.Snapshot().QuantileMs(0.99), 0.0);
}

TEST(LatencyHistogramTest, SingleSampleQuantileStaysInItsBucket) {
  LatencyHistogram histogram;
  histogram.RecordMicros(100);
  const HistogramSnapshot snap = histogram.Snapshot();
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    // q=0 interpolates to the bucket's lower bound exactly; the rest land
    // strictly inside (64, 128].
    const double estimate = snap.QuantileUs(q);
    EXPECT_GE(estimate, 64.0) << "q=" << q;
    EXPECT_LE(estimate, 128.0) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, OverflowReportsLargestFiniteBoundAsFloor) {
  LatencyHistogram histogram;
  histogram.RecordMicros(uint64_t{1} << 40);  // past every finite bucket
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.buckets[kNumBuckets], 1u);
  EXPECT_EQ(snap.QuantileUs(0.5),
            HistogramSnapshot::BucketUpperUs(kNumBuckets - 1));
}

TEST(LatencyHistogramTest, NegativeAndZeroSecondsClampToZero) {
  LatencyHistogram histogram;
  histogram.RecordSeconds(-1.0);  // clock hiccup
  histogram.RecordSeconds(0.0);
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.sum_us, 0u);
}

TEST(LatencyHistogramTest, ConcurrentRecordingLosesNothing) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  LatencyHistogram histogram;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.RecordMicros(static_cast<uint64_t>((t + 1) * 10));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucketed = 0;
  for (uint64_t b : snap.buckets) bucketed += b;
  EXPECT_EQ(bucketed, snap.count);
  uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += static_cast<uint64_t>((t + 1) * 10) * kPerThread;
  }
  EXPECT_EQ(snap.sum_us, expected_sum);
}

TEST(LatencyHistogramTest, MergeAddsEveryField) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.RecordMicros(10);
  a.RecordMicros(1000);
  b.RecordMicros(10);
  b.RecordMicros(uint64_t{1} << 40);
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.count, 4u);
  EXPECT_EQ(merged.sum_us, 10u + 1000 + 10 + (uint64_t{1} << 40));
  EXPECT_EQ(merged.buckets[4], 2u);  // both 10 us samples: (8, 16]
  EXPECT_EQ(merged.buckets[kNumBuckets], 1u);
}

TEST(ExactPercentileTest, MatchesHandComputedInterpolation) {
  // Seconds in, milliseconds out; rank q*(n-1) interpolated.
  const std::vector<double> seconds = {0.004, 0.001, 0.003, 0.002};
  EXPECT_DOUBLE_EQ(ExactPercentileMs(seconds, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(ExactPercentileMs(seconds, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(ExactPercentileMs(seconds, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(ExactPercentileMs(seconds, 0.25), 1.75);
}

TEST(ExactPercentileTest, EmptyAndSingleton) {
  EXPECT_EQ(ExactPercentileMs({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(ExactPercentileMs({0.007}, 0.99), 7.0);
}

TEST(SlowRequestLogTest, RingEvictsOldestFirst) {
  SlowRequestLog log(/*threshold_ms=*/0.0, /*capacity=*/3);
  RequestTrace trace;
  for (int i = 0; i < 5; ++i) {
    log.MaybeRecord("t", "Solve", 0, /*total_ms=*/static_cast<double>(i),
                    trace);
  }
  const std::vector<SlowRequestRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].sequence, 2u);  // oldest survivor first
  EXPECT_EQ(records[1].sequence, 3u);
  EXPECT_EQ(records[2].sequence, 4u);
  EXPECT_EQ(log.dropped(), 2u);
}

TEST(SlowRequestLogTest, SnapshotLimitReturnsNewestOldestFirst) {
  SlowRequestLog log(0.0, 10);
  RequestTrace trace;
  for (int i = 0; i < 4; ++i) log.MaybeRecord("t", "Solve", 0, 1.0, trace);
  const std::vector<SlowRequestRecord> records = log.Snapshot(/*limit=*/2);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].sequence, 2u);
  EXPECT_EQ(records[1].sequence, 3u);
}

TEST(SlowRequestLogTest, ThresholdFiltersAndZeroCapacityDisables) {
  SlowRequestLog filtered(/*threshold_ms=*/10.0, /*capacity=*/4);
  RequestTrace trace;
  filtered.MaybeRecord("t", "Solve", 0, 9.99, trace);
  filtered.MaybeRecord("t", "Sweep", 0, 10.0, trace);
  ASSERT_EQ(filtered.Snapshot().size(), 1u);
  EXPECT_EQ(filtered.Snapshot()[0].verb, "Sweep");

  SlowRequestLog disabled(0.0, /*capacity=*/0);
  disabled.MaybeRecord("t", "Solve", 0, 1000.0, trace);
  EXPECT_TRUE(disabled.Snapshot().empty());
  EXPECT_EQ(disabled.dropped(), 0u);
}

TEST(SlowRequestLogTest, FormatIsFixedWidthParseable) {
  SlowRequestRecord record;
  record.sequence = 7;
  record.tenant = "acme";
  record.verb = "Sweep";
  record.status_code = 0;
  record.total_ms = 123.4567;
  record.trace.queue_ms = 1.5;
  record.trace.solve_ms = 120.0;
  record.trace.repair_pivots = 3;
  record.trace.iterations = 42;
  EXPECT_EQ(FormatSlowRecord(record),
            "SLOW seq=7 verb=Sweep tenant=acme status=0 total_ms=123.457 "
            "queue_ms=1.500 flush_ms=0.000 solve_ms=120.000 cache_ms=0.000 "
            "repair_pivots=3 iterations=42");
}

TEST(MetricRegistryTest, RegistrationIsIdempotentAndPointerStable) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("x_total", "help");
  Counter* b = registry.GetCounter("x_total", "other help ignored");
  EXPECT_EQ(a, b);
  Counter* labeled =
      registry.GetCounter("x_total", "help", {{"verb", "Solve"}});
  EXPECT_NE(a, labeled);
  EXPECT_EQ(labeled, registry.GetCounter("x_total", "help",
                                         {{"verb", "Solve"}}));
}

TEST(MetricRegistryTest, RenderGolden) {
  MetricRegistry registry;
  registry.GetCounter("privsan_a_total", "Things counted.")->Increment(3);
  registry.GetGauge("privsan_b", "A level.", {{"tenant", "acme"}})
      ->Set(2.5);
  EXPECT_EQ(registry.RenderPrometheusText(),
            "# HELP privsan_a_total Things counted.\n"
            "# TYPE privsan_a_total counter\n"
            "privsan_a_total 3\n"
            "# HELP privsan_b A level.\n"
            "# TYPE privsan_b gauge\n"
            "privsan_b{tenant=\"acme\"} 2.5\n"
            "# EOF\n");
}

TEST(MetricRegistryTest, LabelValuesAreEscaped) {
  MetricRegistry registry;
  registry
      .GetCounter("privsan_esc_total", "Escapes.",
                  {{"tenant", "a\"b\\c\nd"}})
      ->Increment();
  const std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("privsan_esc_total{tenant=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos)
      << text;
}

TEST(MetricRegistryTest, HistogramRenderIsCumulativeWithInfEqualToCount) {
  MetricRegistry registry;
  LatencyHistogram* histogram =
      registry.GetHistogram("privsan_lat_seconds", "Latency.");
  histogram->RecordMicros(1);     // bucket 0, le="1e-06"
  histogram->RecordMicros(100);   // bucket 7, le="0.000128"
  histogram->RecordMicros(100);
  const std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("# TYPE privsan_lat_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("privsan_lat_seconds_bucket{le=\"1e-06\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("privsan_lat_seconds_bucket{le=\"0.000128\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("privsan_lat_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("privsan_lat_seconds_count 3\n"), std::string::npos);
  // _sum renders in seconds: 201 us.
  EXPECT_NE(text.find("privsan_lat_seconds_sum 0.000201\n"),
            std::string::npos)
      << text;
}

TEST(MetricRegistryTest, CollectorsRunAfterStaticFamilies) {
  MetricRegistry registry;
  registry.GetCounter("privsan_static_total", "Static.")->Increment();
  registry.AddCollector([](PrometheusWriter* writer) {
    writer->Header("privsan_dynamic", "Computed at scrape time.", "gauge");
    writer->Value("privsan_dynamic", {{"k", "v"}}, 7.0);
  });
  const std::string text = registry.RenderPrometheusText();
  const size_t static_at = text.find("privsan_static_total 1\n");
  const size_t dynamic_at = text.find("privsan_dynamic{k=\"v\"} 7\n");
  ASSERT_NE(static_at, std::string::npos) << text;
  ASSERT_NE(dynamic_at, std::string::npos) << text;
  EXPECT_LT(static_at, dynamic_at);
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
}

TEST(MetricRegistryTest, ConcurrentCountsSurviveRenders) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("privsan_race_total", "Raced.");
  std::atomic<bool> stop{false};
  std::thread scraper([&registry, &stop] {
    while (!stop.load()) registry.RenderPrometheusText();
  });
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  stop.store(true);
  scraper.join();
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace obs
}  // namespace privsan
