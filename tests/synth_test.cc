#include "synth/generator.h"

#include <gtest/gtest.h>

#include "log/preprocess.h"
#include "serve/thread_pool.h"
#include "synth/characteristics.h"

namespace privsan {
namespace {

TEST(SyntheticConfigTest, DefaultValidates) {
  EXPECT_TRUE(SyntheticLogConfig{}.Validate().ok());
  EXPECT_TRUE(PaperScaleConfig().Validate().ok());
  EXPECT_TRUE(BenchScaleConfig().Validate().ok());
  EXPECT_TRUE(TinyConfig().Validate().ok());
}

TEST(SyntheticConfigTest, RejectsZeroPopulations) {
  SyntheticLogConfig config = TinyConfig();
  config.num_users = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = TinyConfig();
  config.num_queries = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = TinyConfig();
  config.num_events = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = TinyConfig();
  config.url_pool = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = TinyConfig();
  config.max_urls_per_query = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(SyntheticConfigTest, RejectsNegativeExponents) {
  SyntheticLogConfig config = TinyConfig();
  config.query_zipf = -0.5;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(GeneratorTest, DeterministicInSeed) {
  SearchLog a = GenerateSearchLog(TinyConfig()).value();
  SearchLog b = GenerateSearchLog(TinyConfig()).value();
  EXPECT_EQ(a.total_clicks(), b.total_clicks());
  EXPECT_EQ(a.num_pairs(), b.num_pairs());
  EXPECT_EQ(a.num_tuples(), b.num_tuples());
  for (PairId p = 0; p < a.num_pairs(); ++p) {
    EXPECT_EQ(a.pair_total(p), b.pair_total(p));
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  SyntheticLogConfig config = TinyConfig();
  SearchLog a = GenerateSearchLog(config).value();
  config.seed = config.seed + 1;
  SearchLog b = GenerateSearchLog(config).value();
  // Same event count but (almost surely) different aggregation.
  EXPECT_EQ(a.total_clicks(), b.total_clicks());
  EXPECT_NE(a.num_pairs(), b.num_pairs());
}

TEST(GeneratorTest, TotalClicksEqualsNumEvents) {
  SyntheticLogConfig config = TinyConfig();
  SearchLog log = GenerateSearchLog(config).value();
  EXPECT_EQ(log.total_clicks(), config.num_events);
}

TEST(GeneratorTest, PopulationsWithinConfiguredBounds) {
  SyntheticLogConfig config = TinyConfig();
  SearchLog log = GenerateSearchLog(config).value();
  EXPECT_LE(log.num_users(), config.num_users);
  EXPECT_LE(log.num_queries(), config.num_queries);
  EXPECT_LE(log.num_urls(), config.url_pool);
}

TEST(GeneratorTest, HeavyTailedQueryPopularity) {
  // The most popular pair should dwarf the median pair.
  SearchLog log = GenerateSearchLog(TinyConfig()).value();
  uint64_t max_total = 0;
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    max_total = std::max(max_total, log.pair_total(p));
  }
  EXPECT_GE(max_total, 10u);
}

TEST(GeneratorTest, MostPairsAreUniqueBeforePreprocessing) {
  // The AOL profile: the overwhelming majority of distinct query-url pairs
  // are held by a single user.
  SearchLog log = GenerateSearchLog(TinyConfig()).value();
  size_t unique = 0;
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    if (log.PairUserCount(p) <= 1) ++unique;
  }
  EXPECT_GT(static_cast<double>(unique) / log.num_pairs(), 0.3);
}

TEST(GeneratorTest, PreprocessedLogIsUsable) {
  PreprocessResult result =
      RemoveUniquePairs(GenerateSearchLog(TinyConfig()).value());
  EXPECT_GT(result.log.num_pairs(), 5u);
  EXPECT_GT(result.log.num_users(), 2u);
}

// The sharded generator must reproduce the serial stream exactly: same
// dictionaries in the same id order, same user logs, same counts — for any
// pool size, since shard boundaries only pick where a worker re-enters the
// (position-derived) Rng stream.
TEST(GeneratorTest, ShardedGenerationBitIdenticalToSerial) {
  SyntheticLogConfig config = TinyConfig();
  config.num_users = 80;
  config.num_events = 5000;
  const SearchLog serial = GenerateSearchLog(config).value();

  for (int threads : {1, 3, 7}) {
    serve::ThreadPool pool(threads);
    const SearchLog sharded = GenerateSearchLog(config, &pool).value();
    ASSERT_EQ(sharded.num_users(), serial.num_users()) << threads;
    ASSERT_EQ(sharded.num_pairs(), serial.num_pairs()) << threads;
    ASSERT_EQ(sharded.num_tuples(), serial.num_tuples()) << threads;
    EXPECT_EQ(sharded.total_clicks(), serial.total_clicks()) << threads;
    for (UserId u = 0; u < serial.num_users(); ++u) {
      ASSERT_EQ(sharded.user_name(u), serial.user_name(u)) << threads;
      const auto a = serial.UserLogOf(u);
      const auto b = sharded.UserLogOf(u);
      ASSERT_EQ(a.size(), b.size()) << "user " << u;
      for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(a[i] == b[i]) << "user " << u << " cell " << i;
      }
    }
    for (PairId p = 0; p < serial.num_pairs(); ++p) {
      ASSERT_EQ(sharded.PairNameKey(p), serial.PairNameKey(p)) << threads;
      ASSERT_EQ(sharded.pair_total(p), serial.pair_total(p)) << threads;
    }
  }
}

TEST(GeneratorTest, NullPoolMatchesSerialOverload) {
  const SearchLog a = GenerateSearchLog(TinyConfig()).value();
  const SearchLog b = GenerateSearchLog(TinyConfig(), nullptr).value();
  EXPECT_EQ(a.num_pairs(), b.num_pairs());
  EXPECT_EQ(a.total_clicks(), b.total_clicks());
  EXPECT_EQ(a.num_tuples(), b.num_tuples());
}

TEST(CharacteristicsTest, MatchesLog) {
  SearchLog log = GenerateSearchLog(TinyConfig()).value();
  DatasetCharacteristics c = ComputeCharacteristics(log);
  EXPECT_EQ(c.total_clicks, log.total_clicks());
  EXPECT_EQ(c.num_user_logs, log.num_users());
  EXPECT_EQ(c.num_distinct_queries, log.num_queries());
  EXPECT_EQ(c.num_distinct_urls, log.num_urls());
  EXPECT_EQ(c.num_query_url_pairs, log.num_pairs());
}

TEST(CharacteristicsTest, ToStringMentionsEveryField) {
  DatasetCharacteristics c;
  c.total_clicks = 53067;
  c.num_user_logs = 1980;
  c.num_distinct_queries = 4971;
  c.num_distinct_urls = 4289;
  c.num_query_url_pairs = 6043;
  const std::string s = c.ToString();
  EXPECT_NE(s.find("53,067"), std::string::npos);
  EXPECT_NE(s.find("1980"), std::string::npos);
  EXPECT_NE(s.find("6043"), std::string::npos);
}

}  // namespace
}  // namespace privsan
