#include "synth/generator.h"

#include <gtest/gtest.h>

#include "log/preprocess.h"
#include "synth/characteristics.h"

namespace privsan {
namespace {

TEST(SyntheticConfigTest, DefaultValidates) {
  EXPECT_TRUE(SyntheticLogConfig{}.Validate().ok());
  EXPECT_TRUE(PaperScaleConfig().Validate().ok());
  EXPECT_TRUE(BenchScaleConfig().Validate().ok());
  EXPECT_TRUE(TinyConfig().Validate().ok());
}

TEST(SyntheticConfigTest, RejectsZeroPopulations) {
  SyntheticLogConfig config = TinyConfig();
  config.num_users = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = TinyConfig();
  config.num_queries = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = TinyConfig();
  config.num_events = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = TinyConfig();
  config.url_pool = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = TinyConfig();
  config.max_urls_per_query = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(SyntheticConfigTest, RejectsNegativeExponents) {
  SyntheticLogConfig config = TinyConfig();
  config.query_zipf = -0.5;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(GeneratorTest, DeterministicInSeed) {
  SearchLog a = GenerateSearchLog(TinyConfig()).value();
  SearchLog b = GenerateSearchLog(TinyConfig()).value();
  EXPECT_EQ(a.total_clicks(), b.total_clicks());
  EXPECT_EQ(a.num_pairs(), b.num_pairs());
  EXPECT_EQ(a.num_tuples(), b.num_tuples());
  for (PairId p = 0; p < a.num_pairs(); ++p) {
    EXPECT_EQ(a.pair_total(p), b.pair_total(p));
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  SyntheticLogConfig config = TinyConfig();
  SearchLog a = GenerateSearchLog(config).value();
  config.seed = config.seed + 1;
  SearchLog b = GenerateSearchLog(config).value();
  // Same event count but (almost surely) different aggregation.
  EXPECT_EQ(a.total_clicks(), b.total_clicks());
  EXPECT_NE(a.num_pairs(), b.num_pairs());
}

TEST(GeneratorTest, TotalClicksEqualsNumEvents) {
  SyntheticLogConfig config = TinyConfig();
  SearchLog log = GenerateSearchLog(config).value();
  EXPECT_EQ(log.total_clicks(), config.num_events);
}

TEST(GeneratorTest, PopulationsWithinConfiguredBounds) {
  SyntheticLogConfig config = TinyConfig();
  SearchLog log = GenerateSearchLog(config).value();
  EXPECT_LE(log.num_users(), config.num_users);
  EXPECT_LE(log.num_queries(), config.num_queries);
  EXPECT_LE(log.num_urls(), config.url_pool);
}

TEST(GeneratorTest, HeavyTailedQueryPopularity) {
  // The most popular pair should dwarf the median pair.
  SearchLog log = GenerateSearchLog(TinyConfig()).value();
  uint64_t max_total = 0;
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    max_total = std::max(max_total, log.pair_total(p));
  }
  EXPECT_GE(max_total, 10u);
}

TEST(GeneratorTest, MostPairsAreUniqueBeforePreprocessing) {
  // The AOL profile: the overwhelming majority of distinct query-url pairs
  // are held by a single user.
  SearchLog log = GenerateSearchLog(TinyConfig()).value();
  size_t unique = 0;
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    if (log.PairUserCount(p) <= 1) ++unique;
  }
  EXPECT_GT(static_cast<double>(unique) / log.num_pairs(), 0.3);
}

TEST(GeneratorTest, PreprocessedLogIsUsable) {
  PreprocessResult result =
      RemoveUniquePairs(GenerateSearchLog(TinyConfig()).value());
  EXPECT_GT(result.log.num_pairs(), 5u);
  EXPECT_GT(result.log.num_users(), 2u);
}

TEST(CharacteristicsTest, MatchesLog) {
  SearchLog log = GenerateSearchLog(TinyConfig()).value();
  DatasetCharacteristics c = ComputeCharacteristics(log);
  EXPECT_EQ(c.total_clicks, log.total_clicks());
  EXPECT_EQ(c.num_user_logs, log.num_users());
  EXPECT_EQ(c.num_distinct_queries, log.num_queries());
  EXPECT_EQ(c.num_distinct_urls, log.num_urls());
  EXPECT_EQ(c.num_query_url_pairs, log.num_pairs());
}

TEST(CharacteristicsTest, ToStringMentionsEveryField) {
  DatasetCharacteristics c;
  c.total_clicks = 53067;
  c.num_user_logs = 1980;
  c.num_distinct_queries = 4971;
  c.num_distinct_urls = 4289;
  c.num_query_url_pairs = 6043;
  const std::string s = c.ToString();
  EXPECT_NE(s.find("53,067"), std::string::npos);
  EXPECT_NE(s.find("1980"), std::string::npos);
  EXPECT_NE(s.find("6043"), std::string::npos);
}

}  // namespace
}  // namespace privsan
