#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

namespace privsan {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("privsan_csv_test_" + std::to_string(::getpid()) + ".tsv"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

TEST_F(CsvTest, WriteThenReadRoundTrip) {
  {
    DelimitedWriter writer(path_, '\t');
    ASSERT_TRUE(writer.status().ok());
    ASSERT_TRUE(writer.WriteRow({"u1", "q1", "url1", "3"}).ok());
    ASSERT_TRUE(writer.WriteRow({"u2", "q2", "url2", "5"}).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  std::vector<std::vector<std::string>> rows;
  Status status = ReadDelimitedFile(
      path_, '\t',
      [&](size_t, const std::vector<std::string>& fields) -> Status {
        rows.push_back(fields);
        return Status::OK();
      });
  ASSERT_TRUE(status.ok()) << status;
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"u1", "q1", "url1", "3"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"u2", "q2", "url2", "5"}));
}

TEST_F(CsvTest, RejectsFieldContainingDelimiter) {
  DelimitedWriter writer(path_, '\t');
  ASSERT_TRUE(writer.status().ok());
  Status status = writer.WriteRow({"a\tb"});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, RejectsFieldContainingNewline) {
  DelimitedWriter writer(path_, '\t');
  ASSERT_TRUE(writer.status().ok());
  EXPECT_FALSE(writer.WriteRow({"a\nb"}).ok());
}

TEST_F(CsvTest, SkipsCommentsAndBlankLines) {
  {
    DelimitedWriter writer(path_, '\t');
    ASSERT_TRUE(writer.WriteRow({"# header", "comment"}).ok());
    ASSERT_TRUE(writer.WriteRow({"data", "1"}).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  size_t count = 0;
  ASSERT_TRUE(ReadDelimitedFile(path_, '\t',
                                [&](size_t, const auto&) -> Status {
                                  ++count;
                                  return Status::OK();
                                })
                  .ok());
  EXPECT_EQ(count, 1u);
}

TEST_F(CsvTest, PropagatesCallbackError) {
  {
    DelimitedWriter writer(path_, '\t');
    ASSERT_TRUE(writer.WriteRow({"a"}).ok());
    ASSERT_TRUE(writer.WriteRow({"b"}).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  size_t seen = 0;
  Status status = ReadDelimitedFile(
      path_, '\t', [&](size_t, const auto&) -> Status {
        ++seen;
        return Status::InvalidArgument("stop");
      });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(seen, 1u);  // stopped at first error
}

TEST_F(CsvTest, MissingFileIsIoError) {
  Status status = ReadDelimitedFile(
      "/nonexistent/privsan.tsv", '\t',
      [](size_t, const auto&) -> Status { return Status::OK(); });
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST_F(CsvTest, UnwritablePathReportsError) {
  DelimitedWriter writer("/nonexistent_dir/file.tsv", '\t');
  EXPECT_EQ(writer.status().code(), StatusCode::kIoError);
  EXPECT_FALSE(writer.WriteRow({"a"}).ok());
}

TEST_F(CsvTest, LineNumbersAreOneBased) {
  {
    DelimitedWriter writer(path_, '\t');
    ASSERT_TRUE(writer.WriteRow({"first"}).ok());
    ASSERT_TRUE(writer.WriteRow({"second"}).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  std::vector<size_t> lines;
  ASSERT_TRUE(ReadDelimitedFile(path_, '\t',
                                [&](size_t line, const auto&) -> Status {
                                  lines.push_back(line);
                                  return Status::OK();
                                })
                  .ok());
  EXPECT_EQ(lines, (std::vector<size_t>{1, 2}));
}

}  // namespace
}  // namespace privsan
