#include "lp/branch_and_bound.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/model.h"
#include "rng/random.h"

namespace privsan {
namespace lp {
namespace {

TEST(BnbTest, PureLpPassesThrough) {
  // No integer variables: B&B should return the LP optimum at the root.
  LpModel model(ObjectiveSense::kMaximize);
  int x = model.AddVariable(0, kInfinity, 3.0);
  int r = model.AddConstraint(ConstraintSense::kLessEqual, 2.5);
  model.AddCoefficient(r, x, 1.0);
  ASSERT_TRUE(model.Validate().ok());
  BnbResult result = SolveBranchAndBound(model);
  ASSERT_TRUE(result.has_incumbent);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_NEAR(result.objective, 7.5, 1e-7);
  EXPECT_EQ(result.nodes_explored, 1);
}

TEST(BnbTest, SimpleIntegerKnapsack) {
  // max 5a + 4b + 3c, 2a + 3b + c <= 5, binary -> a=1,c=1 (val 8)? Check:
  // a+c: weight 3 value 8; a+b: weight 5 value 9. Optimal {a,b} = 9.
  LpModel model(ObjectiveSense::kMaximize);
  int a = model.AddVariable(0, 1, 5.0, "a", true);
  int b = model.AddVariable(0, 1, 4.0, "b", true);
  int c = model.AddVariable(0, 1, 3.0, "c", true);
  int r = model.AddConstraint(ConstraintSense::kLessEqual, 5.0);
  model.AddCoefficient(r, a, 2.0);
  model.AddCoefficient(r, b, 3.0);
  model.AddCoefficient(r, c, 1.0);
  ASSERT_TRUE(model.Validate().ok());
  BnbResult result = SolveBranchAndBound(model);
  ASSERT_TRUE(result.has_incumbent);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_NEAR(result.objective, 9.0, 1e-7);
  EXPECT_NEAR(result.x[a], 1.0, 1e-7);
  EXPECT_NEAR(result.x[b], 1.0, 1e-7);
  EXPECT_NEAR(result.x[c], 0.0, 1e-7);
}

TEST(BnbTest, GeneralIntegerVariables) {
  // max x + y, 3x + 5y <= 15, x,y >= 0 integer. LP opt (5,0) -> already
  // integral: 5.
  LpModel model(ObjectiveSense::kMaximize);
  int x = model.AddVariable(0, kInfinity, 1.0, "x", true);
  int y = model.AddVariable(0, kInfinity, 1.0, "y", true);
  int r = model.AddConstraint(ConstraintSense::kLessEqual, 15.0);
  model.AddCoefficient(r, x, 3.0);
  model.AddCoefficient(r, y, 5.0);
  ASSERT_TRUE(model.Validate().ok());
  BnbResult result = SolveBranchAndBound(model);
  ASSERT_TRUE(result.has_incumbent);
  EXPECT_NEAR(result.objective, 5.0, 1e-7);
}

TEST(BnbTest, FractionalLpForcesBranching) {
  // max 8x + 11y + 6z + 4w s.t. 5x + 7y + 4z + 3w <= 14, binary.
  // Known optimum: x=0,y=1,z=1,w=1 -> value 21, weight 14.
  LpModel model(ObjectiveSense::kMaximize);
  const double values[] = {8, 11, 6, 4};
  const double weights[] = {5, 7, 4, 3};
  std::vector<int> vars;
  for (int j = 0; j < 4; ++j) {
    vars.push_back(model.AddVariable(0, 1, values[j], "", true));
  }
  int r = model.AddConstraint(ConstraintSense::kLessEqual, 14.0);
  for (int j = 0; j < 4; ++j) model.AddCoefficient(r, vars[j], weights[j]);
  ASSERT_TRUE(model.Validate().ok());
  BnbResult result = SolveBranchAndBound(model);
  ASSERT_TRUE(result.has_incumbent);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_NEAR(result.objective, 21.0, 1e-7);
  EXPECT_GT(result.nodes_explored, 1);
}

TEST(BnbTest, InfeasibleIntegerProblem) {
  // 2x = 3 with x integer in [0, 5]: LP feasible (x = 1.5), IP infeasible.
  LpModel model(ObjectiveSense::kMaximize);
  int x = model.AddVariable(0, 5, 1.0, "x", true);
  int r = model.AddConstraint(ConstraintSense::kEqual, 3.0);
  model.AddCoefficient(r, x, 2.0);
  ASSERT_TRUE(model.Validate().ok());
  BnbResult result = SolveBranchAndBound(model);
  EXPECT_FALSE(result.has_incumbent);
  EXPECT_EQ(result.status, SolveStatus::kInfeasible);
}

TEST(BnbTest, LpInfeasibleProblem) {
  LpModel model(ObjectiveSense::kMaximize);
  int x = model.AddVariable(0, 1, 1.0, "x", true);
  int r1 = model.AddConstraint(ConstraintSense::kGreaterEqual, 2.0);
  model.AddCoefficient(r1, x, 1.0);
  ASSERT_TRUE(model.Validate().ok());
  BnbResult result = SolveBranchAndBound(model);
  EXPECT_FALSE(result.has_incumbent);
  EXPECT_EQ(result.status, SolveStatus::kInfeasible);
}

TEST(BnbTest, MinimizationSense) {
  // min 3x + 2y s.t. x + y >= 3.5, x,y >= 0 integer -> (0,4) value 8 or
  // (1,3) value 9, (2,2) 10, (3,1) 11, (0,4) 8. Optimal 8.
  LpModel model(ObjectiveSense::kMinimize);
  int x = model.AddVariable(0, kInfinity, 3.0, "x", true);
  int y = model.AddVariable(0, kInfinity, 2.0, "y", true);
  int r = model.AddConstraint(ConstraintSense::kGreaterEqual, 3.5);
  model.AddCoefficient(r, x, 1.0);
  model.AddCoefficient(r, y, 1.0);
  ASSERT_TRUE(model.Validate().ok());
  BnbResult result = SolveBranchAndBound(model);
  ASSERT_TRUE(result.has_incumbent);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_NEAR(result.objective, 8.0, 1e-7);
}

TEST(BnbTest, NodeBudgetReturnsIncumbent) {
  // A knapsack large enough to need several nodes, with max_nodes = 1:
  // should report the budget exit and still carry a rounded incumbent.
  LpModel model(ObjectiveSense::kMaximize);
  Rng rng(9);
  int r = model.AddConstraint(ConstraintSense::kLessEqual, 10.0);
  for (int j = 0; j < 20; ++j) {
    int v = model.AddVariable(0, 1, rng.NextDouble(1.0, 5.0), "", true);
    model.AddCoefficient(r, v, rng.NextDouble(0.5, 4.0));
  }
  ASSERT_TRUE(model.Validate().ok());
  BnbOptions options;
  options.max_nodes = 1;
  BnbResult result = SolveBranchAndBound(model, options);
  EXPECT_EQ(result.status, SolveStatus::kIterationLimit);
  EXPECT_FALSE(result.proven_optimal);
  EXPECT_TRUE(result.has_incumbent);  // rounding heuristic at the root
  // Dual bound must dominate the incumbent.
  EXPECT_GE(result.best_bound, result.objective - 1e-7);
}

// Exhaustive cross-check against brute force on random binary knapsacks.
class BnbBruteForceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BnbBruteForceTest, MatchesBruteForce) {
  Rng rng(GetParam());
  const int n = 10;
  std::vector<double> values(n), weights(n);
  for (int j = 0; j < n; ++j) {
    values[j] = rng.NextDouble(0.5, 5.0);
    weights[j] = rng.NextDouble(0.2, 3.0);
  }
  const double capacity = rng.NextDouble(2.0, 8.0);
  const double capacity2 = rng.NextDouble(2.0, 8.0);

  LpModel model(ObjectiveSense::kMaximize);
  for (int j = 0; j < n; ++j) model.AddVariable(0, 1, values[j], "", true);
  int r1 = model.AddConstraint(ConstraintSense::kLessEqual, capacity);
  int r2 = model.AddConstraint(ConstraintSense::kLessEqual, capacity2);
  for (int j = 0; j < n; ++j) {
    model.AddCoefficient(r1, j, weights[j]);
    model.AddCoefficient(r2, j, weights[(j + 3) % n]);
  }
  ASSERT_TRUE(model.Validate().ok());
  BnbResult result = SolveBranchAndBound(model);
  ASSERT_TRUE(result.has_incumbent);
  ASSERT_TRUE(result.proven_optimal);

  double best = 0.0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    double value = 0.0, w1 = 0.0, w2 = 0.0;
    for (int j = 0; j < n; ++j) {
      if (mask & (1 << j)) {
        value += values[j];
        w1 += weights[j];
        w2 += weights[(j + 3) % n];
      }
    }
    if (w1 <= capacity + 1e-9 && w2 <= capacity2 + 1e-9) {
      best = std::max(best, value);
    }
  }
  EXPECT_NEAR(result.objective, best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomKnapsacks, BnbBruteForceTest,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

}  // namespace
}  // namespace lp
}  // namespace privsan
