// Warm starts: a re-solve from a near-optimal basis must (a) agree exactly
// with the cold solve on status and objective and (b) do strictly less
// work. Covers the SimplexSolver::Solve(model, hint) API directly and the
// branch & bound rewiring that rides on it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "lp/branch_and_bound.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "rng/random.h"

namespace privsan {
namespace lp {
namespace {

// A packing LP with bounded variables, dense enough that a cold solve
// takes a meaningful number of iterations.
LpModel MakePackingLp(uint64_t seed, int n, int m) {
  Rng rng(seed);
  LpModel model(ObjectiveSense::kMaximize);
  for (int j = 0; j < n; ++j) {
    model.AddVariable(0.0, rng.NextDouble(0.5, 3.0), rng.NextDouble(0.5, 2.0));
  }
  for (int r = 0; r < m; ++r) {
    int row = model.AddConstraint(ConstraintSense::kLessEqual,
                                  rng.NextDouble(3.0, 8.0));
    for (int j = 0; j < n; ++j) {
      if (rng.NextBool(0.5)) {
        model.AddCoefficient(row, j, rng.NextDouble(0.2, 1.5));
      }
    }
  }
  return model;
}

TEST(WarmStartTest, ReSolveFromOwnBasisIsCheap) {
  LpModel model = MakePackingLp(3, 60, 30);
  ASSERT_TRUE(model.Validate().ok());
  SimplexSolver solver;
  LpSolution cold = solver.Solve(model);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  ASSERT_FALSE(cold.basis.empty());

  LpSolution warm = solver.Solve(model, &cold.basis);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-7);
  // Re-solving an unchanged model from its optimal basis needs no pivots
  // at all — only the optimality proof scan.
  EXPECT_LT(warm.iterations, std::max<int64_t>(cold.iterations / 4, 4));
}

TEST(WarmStartTest, BoundTighteningUsesFewerIterations) {
  LpModel model = MakePackingLp(7, 80, 40);
  ASSERT_TRUE(model.Validate().ok());
  SimplexSolver solver;
  LpSolution root = solver.Solve(model);
  ASSERT_EQ(root.status, SolveStatus::kOptimal);

  // Tighten the bound of a variable that is strictly between its bounds at
  // the optimum (a branching step in all but name).
  int branch = -1;
  for (int j = 0; j < model.num_variables(); ++j) {
    const Variable& v = model.variable(j);
    if (root.x[j] > v.lower + 0.1 && root.x[j] < v.upper - 0.1) {
      branch = j;
      break;
    }
  }
  ASSERT_GE(branch, 0) << "test model has no interior variable";
  model.mutable_variable(branch).upper = root.x[branch] * 0.5;

  LpSolution cold = solver.Solve(model);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  LpSolution warm = solver.Solve(model, &root.basis);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-6);
  EXPECT_LT(warm.iterations, cold.iterations)
      << "warm start must beat the cold re-solve";
}

TEST(WarmStartTest, StaleHintFallsBackToColdSolve) {
  LpModel model = MakePackingLp(9, 20, 10);
  ASSERT_TRUE(model.Validate().ok());
  SimplexSolver solver;

  Basis nonsense;
  nonsense.basic.assign(10, 0);  // duplicate basics: structurally invalid
  nonsense.state.assign(20 + 10, VarStatus::kAtLower);
  LpSolution solution = solver.Solve(model, &nonsense);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_FALSE(solution.warm_started);

  LpSolution reference = solver.Solve(model);
  EXPECT_NEAR(solution.objective, reference.objective, 1e-8);
}

TEST(WarmStartTest, InfeasibleChildDetected) {
  // Parent: x + y <= 4 with x,y in [0,3]; child forces x >= 3, y >= 3 —
  // infeasible. The warm path must agree with the cold path.
  LpModel model(ObjectiveSense::kMaximize);
  int x = model.AddVariable(0.0, 3.0, 1.0);
  int y = model.AddVariable(0.0, 3.0, 1.0);
  int r = model.AddConstraint(ConstraintSense::kLessEqual, 4.0);
  model.AddCoefficient(r, x, 1.0);
  model.AddCoefficient(r, y, 1.0);
  ASSERT_TRUE(model.Validate().ok());
  SimplexSolver solver;
  LpSolution parent = solver.Solve(model);
  ASSERT_EQ(parent.status, SolveStatus::kOptimal);

  model.mutable_variable(x).lower = 3.0;
  model.mutable_variable(y).lower = 3.0;
  EXPECT_EQ(solver.Solve(model, &parent.basis).status,
            SolveStatus::kInfeasible);
  EXPECT_EQ(solver.Solve(model).status, SolveStatus::kInfeasible);
}

// Dual Devex is a pricing change, not a math change: warm re-solves under
// dual Devex and under the legacy largest-violation rule must agree with
// the cold objective on every re-solve of a bound-tightening chain.
TEST(WarmStartTest, DualDevexMatchesLargestViolationObjectives) {
  LpModel model = MakePackingLp(11, 70, 35);
  ASSERT_TRUE(model.Validate().ok());

  SimplexOptions devex_options;
  devex_options.dual_pricing = SimplexOptions::DualPricing::kDevex;
  SimplexOptions legacy_options;
  legacy_options.dual_pricing = SimplexOptions::DualPricing::kLargestViolation;
  SimplexSolver devex_solver(devex_options);
  SimplexSolver legacy_solver(legacy_options);

  LpSolution root = devex_solver.Solve(model);
  ASSERT_EQ(root.status, SolveStatus::kOptimal);
  Basis devex_basis = root.basis;
  Basis legacy_basis = root.basis;

  int64_t devex_dual = 0, legacy_dual = 0;
  int resolves = 0;
  std::vector<double> current_x = root.x;
  for (int round = 0; round < 6; ++round) {
    // Tighten the bound of a variable sitting strictly above its lower
    // bound at the current optimum — a branching step in all but name that
    // forces real dual repair work from both pricers.
    int j = -1;
    for (int k = 0; k < model.num_variables(); ++k) {
      const Variable& v = model.variable(k);
      if (current_x[k] > v.lower + 0.1 && v.upper > v.lower + 1e-6) {
        j = k;
        break;
      }
    }
    if (j < 0) break;
    Variable& v = model.mutable_variable(j);
    v.upper = v.lower + (current_x[j] - v.lower) * 0.5;

    LpSolution cold = legacy_solver.Solve(model);
    LpSolution devex = devex_solver.Solve(model, &devex_basis);
    LpSolution legacy = legacy_solver.Solve(model, &legacy_basis);
    ASSERT_EQ(devex.status, cold.status);
    ASSERT_EQ(legacy.status, cold.status);
    if (cold.status != SolveStatus::kOptimal) break;
    EXPECT_NEAR(devex.objective, cold.objective, 1e-6)
        << "dual Devex changed the optimum on round " << round;
    EXPECT_NEAR(legacy.objective, cold.objective, 1e-6)
        << "largest-violation changed the optimum on round " << round;
    EXPECT_TRUE(devex.warm_started);
    EXPECT_TRUE(legacy.warm_started);
    devex_dual += devex.dual_iterations;
    legacy_dual += legacy.dual_iterations;
    devex_basis = devex.basis;
    legacy_basis = legacy.basis;
    current_x = cold.x;
    ++resolves;
  }
  ASSERT_GT(resolves, 0);
  // Both repaired something across the chain, and Devex did not blow the
  // pivot count up (on most instances it strictly shrinks it; asserting a
  // generous factor keeps the test robust without losing the signal).
  EXPECT_GT(legacy_dual, 0);
  EXPECT_LE(devex_dual, 2 * legacy_dual + 16);
}

// The warm-repair budget is a knob now: a cap of one pivot cannot finish
// any real repair, so the solve must report the abort and fall back to a
// cold solve with the right answer.
TEST(WarmStartTest, WarmRepairPivotCapAbortsToCold) {
  LpModel model = MakePackingLp(13, 60, 30);
  ASSERT_TRUE(model.Validate().ok());
  SimplexSolver solver;
  LpSolution root = solver.Solve(model);
  ASSERT_EQ(root.status, SolveStatus::kOptimal);

  // Tighten several bounds so the repair genuinely needs pivots.
  int tightened = 0;
  for (int j = 0; j < model.num_variables() && tightened < 8; ++j) {
    const Variable& v = model.variable(j);
    if (root.x[j] > v.lower + 0.05) {
      model.mutable_variable(j).upper = v.lower + (root.x[j] - v.lower) * 0.3;
      ++tightened;
    }
  }
  ASSERT_GT(tightened, 0);

  SimplexOptions capped_options;
  capped_options.warm_repair_pivot_cap = 1;
  SimplexSolver capped(capped_options);
  LpSolution aborted = capped.Solve(model, &root.basis);
  LpSolution cold = solver.Solve(model);
  ASSERT_EQ(aborted.status, SolveStatus::kOptimal);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  EXPECT_TRUE(aborted.repair_aborted) << "cap of 1 pivot must abort";
  EXPECT_FALSE(aborted.warm_started);
  EXPECT_NEAR(aborted.objective, cold.objective, 1e-7);

  // The default cap finishes the same repair warm — and reports no abort.
  LpSolution warm = solver.Solve(model, &root.basis);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_FALSE(warm.repair_aborted);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-7);
}

// Basis repair on singular refactorization: a warm-start hint whose basis
// is singular (here: two variables with identical columns, both marked
// basic) used to force a cold solve. Under the default repair policy the
// dependent column is swapped for a row slack and the solve stays warm.
TEST(WarmStartTest, SingularHintRepairedWithoutColdFallback) {
  LpModel model(ObjectiveSense::kMaximize);
  const int x0 = model.AddVariable(0.0, 5.0, 1.0);
  const int x1 = model.AddVariable(0.0, 5.0, 1.0);  // column == x0's column
  const int x2 = model.AddVariable(0.0, 5.0, 2.0);
  const int r0 = model.AddConstraint(ConstraintSense::kLessEqual, 4.0);
  const int r1 = model.AddConstraint(ConstraintSense::kLessEqual, 6.0);
  model.AddCoefficient(r0, x0, 1.0);
  model.AddCoefficient(r0, x1, 1.0);
  model.AddCoefficient(r0, x2, 1.0);
  model.AddCoefficient(r1, x0, 2.0);
  model.AddCoefficient(r1, x1, 2.0);
  ASSERT_TRUE(model.Validate().ok());

  // Structurally valid hint (m basics, no duplicates) whose basis matrix
  // is singular: x0 and x1 carry identical columns.
  Basis singular;
  singular.basic = {x0, x1};
  singular.state.assign(3 + 2, VarStatus::kAtLower);
  singular.state[x0] = VarStatus::kBasic;
  singular.state[x1] = VarStatus::kBasic;

  SimplexSolver repairing;  // default policy: kRowSlacks
  LpSolution cold = repairing.Solve(model);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);

  LpSolution repaired = repairing.Solve(model, &singular);
  ASSERT_EQ(repaired.status, SolveStatus::kOptimal);
  EXPECT_TRUE(repaired.warm_started)
      << "singular hint must be repaired in place, not cold-solved";
  EXPECT_GE(repaired.basis_repairs, 1);
  EXPECT_NEAR(repaired.objective, cold.objective, 1e-8);

  // With the repair disabled the old behavior returns: cold fallback,
  // same answer.
  SimplexOptions no_repair;
  no_repair.repair_policy = SimplexOptions::RepairPolicy::kNone;
  LpSolution fallback = SimplexSolver(no_repair).Solve(model, &singular);
  ASSERT_EQ(fallback.status, SolveStatus::kOptimal);
  EXPECT_FALSE(fallback.warm_started);
  EXPECT_NEAR(fallback.objective, cold.objective, 1e-8);
}

// The branch & bound regression the warm start exists for: same tree, same
// incumbent, strictly fewer simplex iterations than cold re-solves.
TEST(WarmStartTest, BranchAndBoundWarmBeatsCold) {
  Rng rng(41);
  LpModel model(ObjectiveSense::kMaximize);
  const int n = 24;
  int r1 = model.AddConstraint(ConstraintSense::kLessEqual, 9.0);
  int r2 = model.AddConstraint(ConstraintSense::kLessEqual, 7.5);
  for (int j = 0; j < n; ++j) {
    int v = model.AddVariable(0, 1, rng.NextDouble(1.0, 6.0), "", true);
    model.AddCoefficient(r1, v, rng.NextDouble(0.3, 3.0));
    model.AddCoefficient(r2, v, rng.NextDouble(0.3, 3.0));
  }
  ASSERT_TRUE(model.Validate().ok());

  BnbOptions warm_options;
  warm_options.warm_start = true;
  BnbOptions cold_options;
  cold_options.warm_start = false;

  BnbResult warm = SolveBranchAndBound(model, warm_options);
  BnbResult cold = SolveBranchAndBound(model, cold_options);
  ASSERT_TRUE(warm.has_incumbent);
  ASSERT_TRUE(cold.has_incumbent);
  ASSERT_TRUE(warm.proven_optimal);
  ASSERT_TRUE(cold.proven_optimal);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-6);

  EXPECT_GT(warm.warm_solves, 0);
  EXPECT_GT(warm.lp_dual_iterations, 0);
  EXPECT_LT(warm.lp_iterations, cold.lp_iterations)
      << "warm-started tree must spend fewer total simplex iterations "
         "(warm: "
      << warm.lp_iterations << ", cold: " << cold.lp_iterations << ")";
}

}  // namespace
}  // namespace lp
}  // namespace privsan
