// Warm starts: a re-solve from a near-optimal basis must (a) agree exactly
// with the cold solve on status and objective and (b) do strictly less
// work. Covers the SimplexSolver::Solve(model, hint) API directly and the
// branch & bound rewiring that rides on it.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/branch_and_bound.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "rng/random.h"

namespace privsan {
namespace lp {
namespace {

// A packing LP with bounded variables, dense enough that a cold solve
// takes a meaningful number of iterations.
LpModel MakePackingLp(uint64_t seed, int n, int m) {
  Rng rng(seed);
  LpModel model(ObjectiveSense::kMaximize);
  for (int j = 0; j < n; ++j) {
    model.AddVariable(0.0, rng.NextDouble(0.5, 3.0), rng.NextDouble(0.5, 2.0));
  }
  for (int r = 0; r < m; ++r) {
    int row = model.AddConstraint(ConstraintSense::kLessEqual,
                                  rng.NextDouble(3.0, 8.0));
    for (int j = 0; j < n; ++j) {
      if (rng.NextBool(0.5)) {
        model.AddCoefficient(row, j, rng.NextDouble(0.2, 1.5));
      }
    }
  }
  return model;
}

TEST(WarmStartTest, ReSolveFromOwnBasisIsCheap) {
  LpModel model = MakePackingLp(3, 60, 30);
  ASSERT_TRUE(model.Validate().ok());
  SimplexSolver solver;
  LpSolution cold = solver.Solve(model);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  ASSERT_FALSE(cold.basis.empty());

  LpSolution warm = solver.Solve(model, &cold.basis);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-7);
  // Re-solving an unchanged model from its optimal basis needs no pivots
  // at all — only the optimality proof scan.
  EXPECT_LT(warm.iterations, std::max<int64_t>(cold.iterations / 4, 4));
}

TEST(WarmStartTest, BoundTighteningUsesFewerIterations) {
  LpModel model = MakePackingLp(7, 80, 40);
  ASSERT_TRUE(model.Validate().ok());
  SimplexSolver solver;
  LpSolution root = solver.Solve(model);
  ASSERT_EQ(root.status, SolveStatus::kOptimal);

  // Tighten the bound of a variable that is strictly between its bounds at
  // the optimum (a branching step in all but name).
  int branch = -1;
  for (int j = 0; j < model.num_variables(); ++j) {
    const Variable& v = model.variable(j);
    if (root.x[j] > v.lower + 0.1 && root.x[j] < v.upper - 0.1) {
      branch = j;
      break;
    }
  }
  ASSERT_GE(branch, 0) << "test model has no interior variable";
  model.mutable_variable(branch).upper = root.x[branch] * 0.5;

  LpSolution cold = solver.Solve(model);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  LpSolution warm = solver.Solve(model, &root.basis);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-6);
  EXPECT_LT(warm.iterations, cold.iterations)
      << "warm start must beat the cold re-solve";
}

TEST(WarmStartTest, StaleHintFallsBackToColdSolve) {
  LpModel model = MakePackingLp(9, 20, 10);
  ASSERT_TRUE(model.Validate().ok());
  SimplexSolver solver;

  Basis nonsense;
  nonsense.basic.assign(10, 0);  // duplicate basics: structurally invalid
  nonsense.state.assign(20 + 10, VarStatus::kAtLower);
  LpSolution solution = solver.Solve(model, &nonsense);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_FALSE(solution.warm_started);

  LpSolution reference = solver.Solve(model);
  EXPECT_NEAR(solution.objective, reference.objective, 1e-8);
}

TEST(WarmStartTest, InfeasibleChildDetected) {
  // Parent: x + y <= 4 with x,y in [0,3]; child forces x >= 3, y >= 3 —
  // infeasible. The warm path must agree with the cold path.
  LpModel model(ObjectiveSense::kMaximize);
  int x = model.AddVariable(0.0, 3.0, 1.0);
  int y = model.AddVariable(0.0, 3.0, 1.0);
  int r = model.AddConstraint(ConstraintSense::kLessEqual, 4.0);
  model.AddCoefficient(r, x, 1.0);
  model.AddCoefficient(r, y, 1.0);
  ASSERT_TRUE(model.Validate().ok());
  SimplexSolver solver;
  LpSolution parent = solver.Solve(model);
  ASSERT_EQ(parent.status, SolveStatus::kOptimal);

  model.mutable_variable(x).lower = 3.0;
  model.mutable_variable(y).lower = 3.0;
  EXPECT_EQ(solver.Solve(model, &parent.basis).status,
            SolveStatus::kInfeasible);
  EXPECT_EQ(solver.Solve(model).status, SolveStatus::kInfeasible);
}

// The branch & bound regression the warm start exists for: same tree, same
// incumbent, strictly fewer simplex iterations than cold re-solves.
TEST(WarmStartTest, BranchAndBoundWarmBeatsCold) {
  Rng rng(41);
  LpModel model(ObjectiveSense::kMaximize);
  const int n = 24;
  int r1 = model.AddConstraint(ConstraintSense::kLessEqual, 9.0);
  int r2 = model.AddConstraint(ConstraintSense::kLessEqual, 7.5);
  for (int j = 0; j < n; ++j) {
    int v = model.AddVariable(0, 1, rng.NextDouble(1.0, 6.0), "", true);
    model.AddCoefficient(r1, v, rng.NextDouble(0.3, 3.0));
    model.AddCoefficient(r2, v, rng.NextDouble(0.3, 3.0));
  }
  ASSERT_TRUE(model.Validate().ok());

  BnbOptions warm_options;
  warm_options.warm_start = true;
  BnbOptions cold_options;
  cold_options.warm_start = false;

  BnbResult warm = SolveBranchAndBound(model, warm_options);
  BnbResult cold = SolveBranchAndBound(model, cold_options);
  ASSERT_TRUE(warm.has_incumbent);
  ASSERT_TRUE(cold.has_incumbent);
  ASSERT_TRUE(warm.proven_optimal);
  ASSERT_TRUE(cold.proven_optimal);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-6);

  EXPECT_GT(warm.warm_solves, 0);
  EXPECT_GT(warm.lp_dual_iterations, 0);
  EXPECT_LT(warm.lp_iterations, cold.lp_iterations)
      << "warm-started tree must spend fewer total simplex iterations "
         "(warm: "
      << warm.lp_iterations << ", cold: " << cold.lp_iterations << ")";
}

}  // namespace
}  // namespace lp
}  // namespace privsan
