#include "core/fump.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/audit.h"
#include "core/oump.h"
#include "metrics/utility_metrics.h"
#include "test_fixtures.h"

namespace privsan {
namespace {

using testing_fixtures::SmallSyntheticLog;
using testing_fixtures::TwoUserSharedLog;

TEST(FumpTest, RequiresOutputSize) {
  FumpOptions options;
  options.output_size = 0;
  EXPECT_EQ(SolveFump(TwoUserSharedLog(), PrivacyParams{1.0, 0.5}, options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(FumpTest, RejectsBadSupport) {
  FumpOptions options;
  options.output_size = 1;
  options.min_support = 0.0;
  EXPECT_FALSE(
      SolveFump(TwoUserSharedLog(), PrivacyParams{1.0, 0.5}, options).ok());
  options.min_support = 1.5;
  EXPECT_FALSE(
      SolveFump(TwoUserSharedLog(), PrivacyParams{1.0, 0.5}, options).ok());
}

TEST(FumpTest, FrequentPairsDetection) {
  SearchLog log = TwoUserSharedLog();
  // Supports: q1 = 10/16 = 0.625, q2 = 6/16 = 0.375.
  EXPECT_EQ(FrequentPairs(log, 0.5).size(), 1u);
  EXPECT_EQ(FrequentPairs(log, 0.3).size(), 2u);
  EXPECT_EQ(FrequentPairs(log, 0.7).size(), 0u);
}

TEST(FumpTest, TwoUserAnalyticOptimum) {
  // With B = 2 log 2 and |O| = 2, the only feasible point is x = (0, 2)
  // (see the derivation in the repo's test notes): bob's row forbids any
  // mass on q1 once |O| = 2 is required. Objective = 0.625 + 0.625 = 1.25.
  SearchLog log = TwoUserSharedLog();
  PairId q1 = *log.FindPair("q1", "u1");
  PairId q2 = *log.FindPair("q2", "u2");

  FumpOptions options;
  options.min_support = 0.1;  // both pairs frequent
  options.output_size = 2;
  PrivacyParams params = PrivacyParams::FromEEpsilon(4.0, 0.75);
  FumpResult result = SolveFump(log, params, options).value();
  EXPECT_NEAR(result.support_distance_sum, 1.25, 1e-6);
  EXPECT_NEAR(result.x_relaxed[q1], 0.0, 1e-7);
  EXPECT_NEAR(result.x_relaxed[q2], 2.0, 1e-7);
  EXPECT_EQ(result.x[q2], 2u);
}

TEST(FumpTest, InfeasibleWhenOutputSizeExceedsLambda) {
  SearchLog log = TwoUserSharedLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(4.0, 0.75);  // lambda = 2
  FumpOptions options;
  options.min_support = 0.1;
  options.output_size = 3;
  EXPECT_EQ(SolveFump(log, params, options).status().code(),
            StatusCode::kInfeasible);
}

TEST(FumpTest, SolutionSatisfiesConstraintsAndAudit) {
  SearchLog log = SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  OumpResult oump = SolveOump(log, params).value();

  FumpOptions options;
  options.min_support = 1.0 / 100;
  options.output_size = oump.lambda / 2;
  ASSERT_GT(options.output_size, 0u);
  FumpResult result = SolveFump(log, params, options).value();

  DpConstraintSystem system = DpConstraintSystem::Build(log, params).value();
  EXPECT_TRUE(system.IsSatisfied(result.x));
  AuditReport audit = AuditSolution(log, params, result.x).value();
  EXPECT_TRUE(audit.satisfies_privacy) << audit.ToString();
}

TEST(FumpTest, RealizedSizeNearRequested) {
  SearchLog log = SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  OumpResult oump = SolveOump(log, params).value();
  FumpOptions options;
  options.min_support = 1.0 / 100;
  options.output_size = oump.lambda / 2;
  FumpResult result = SolveFump(log, params, options).value();
  // Flooring loses at most one click per pair.
  EXPECT_LE(result.realized_output_size, options.output_size);
  EXPECT_GE(result.realized_output_size + log.num_pairs(),
            options.output_size);
}

TEST(FumpTest, PrecisionIsOne) {
  // Section 6.3: every pair frequent in the output was already frequent in
  // the input — reducing an infrequent pair's count toward its input
  // support can only improve the objective.
  SearchLog log = SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  OumpResult oump = SolveOump(log, params).value();
  for (double support : {1.0 / 50, 1.0 / 100, 1.0 / 250}) {
    FumpOptions options;
    options.min_support = support;
    options.output_size = oump.lambda / 2;
    FumpResult result = SolveFump(log, params, options).value();
    PrecisionRecall pr = FrequentPairMetrics(log, result.x, support);
    EXPECT_DOUBLE_EQ(pr.precision, 1.0) << "s=" << support;
  }
}

TEST(FumpTest, RecallImprovesWithBudget) {
  SearchLog log = SmallSyntheticLog();
  const double support = 1.0 / 100;
  double prev_recall = -1.0;
  for (double e_eps : {1.01, 1.4, 2.3}) {
    PrivacyParams params = PrivacyParams::FromEEpsilon(e_eps, 0.5);
    OumpResult oump = SolveOump(log, params).value();
    if (oump.lambda == 0) continue;  // budget too tight for any output
    FumpOptions options;
    options.min_support = support;
    options.output_size = std::max<uint64_t>(1, oump.lambda / 2);
    FumpResult result = SolveFump(log, params, options).value();
    PrecisionRecall pr = FrequentPairMetrics(log, result.x, support);
    EXPECT_GE(pr.recall, prev_recall - 0.1)  // allow small non-monotone noise
        << "e_eps=" << e_eps;
    prev_recall = pr.recall;
  }
}

TEST(FumpTest, ObjectiveIsSupportDistanceSum) {
  // The LP objective must equal the metric recomputed from the relaxed
  // solution.
  SearchLog log = SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  OumpResult oump = SolveOump(log, params).value();
  FumpOptions options;
  options.min_support = 1.0 / 100;
  options.output_size = oump.lambda / 2;
  FumpResult result = SolveFump(log, params, options).value();

  const double total = static_cast<double>(log.total_clicks());
  double recomputed = 0.0;
  for (PairId f : result.frequent_pairs) {
    const double input_support = static_cast<double>(log.pair_total(f)) / total;
    const double output_support =
        result.x_relaxed[f] / static_cast<double>(options.output_size);
    recomputed += std::abs(output_support - input_support);
  }
  EXPECT_NEAR(recomputed, result.support_distance_sum, 1e-6);
}

}  // namespace
}  // namespace privsan
