// Tests for geometric-mean equilibration (lp/scaling.h) and its wiring
// into SimplexSolver.
//
// The load-bearing property is exactness: every scaling factor is a power
// of two, so applying and unapplying it is bit-exact in binary floating
// point and a scaled solve must return the *same* answer as an unscaled
// one — same status, objective, primal point, and duals — just reached
// through a better-conditioned basis. The property tests drive that on
// deliberately ill-scaled random LPs (coefficients spanning ~12 orders of
// magnitude) where equilibration actually has work to do.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/model.h"
#include "lp/scaling.h"
#include "lp/simplex.h"
#include "rng/random.h"

namespace privsan {
namespace lp {
namespace {

bool IsPowerOfTwo(double v) {
  int exponent = 0;
  return v > 0.0 && std::frexp(v, &exponent) == 0.5;
}

// An ill-scaled packing LP: the well-conditioned generator pattern from
// simplex_property_test, then each row and column blown up or shrunk by a
// random power of ten so raw coefficient magnitudes span ~1e-6 .. 1e6.
// Feasibility by construction: rhs is derived from a witness point after
// scaling, so the instance stays feasible no matter how wild the factors.
LpModel MakeIllScaledLp(uint64_t seed, int num_vars, int num_rows) {
  Rng rng(seed);
  std::vector<double> col_blowup(num_vars);
  for (double& b : col_blowup) {
    b = std::pow(10.0, rng.NextDouble(-6.0, 6.0));
  }

  LpModel model(ObjectiveSense::kMaximize);
  std::vector<double> x0(num_vars);
  for (int j = 0; j < num_vars; ++j) {
    // Keep the witness and bounds in the *scaled* variable's units so the
    // instance is the exact image of a well-behaved LP under diagonal
    // scaling — ill-conditioned to the solver, benign in exact arithmetic.
    const double ub = rng.NextBool(0.5) ? 3.0 / col_blowup[j] : kInfinity;
    model.AddVariable(0.0, ub, rng.NextDouble(0.1, 2.0) * col_blowup[j]);
    x0[j] = rng.NextDouble(0.0, std::isfinite(ub) ? ub : 2.0 / col_blowup[j]);
  }
  for (int r = 0; r < num_rows; ++r) {
    const double row_blowup = std::pow(10.0, rng.NextDouble(-6.0, 6.0));
    std::vector<Coefficient> entries;
    for (int j = 0; j < num_vars; ++j) {
      if (rng.NextBool(0.6)) {
        entries.push_back(Coefficient{
            j, rng.NextDouble(0.1, 2.0) * row_blowup * col_blowup[j]});
      }
    }
    if (entries.empty()) {
      entries.push_back(Coefficient{0, row_blowup * col_blowup[0]});
    }
    double witness_lhs = 0.0;
    for (const Coefficient& e : entries) {
      witness_lhs += e.value * x0[e.variable];
    }
    const double rhs = witness_lhs + rng.NextDouble(0.0, 2.0) * row_blowup;
    const int row = model.AddConstraint(ConstraintSense::kLessEqual, rhs);
    for (const Coefficient& e : entries) {
      model.AddCoefficient(row, e.variable, e.value);
    }
  }
  return model;
}

std::vector<Triplet> ModelTriplets(const LpModel& model) {
  std::vector<Triplet> triplets;
  for (int r = 0; r < model.num_constraints(); ++r) {
    for (const Coefficient& e : model.constraint(r).entries) {
      triplets.push_back(Triplet{r, e.variable, e.value});
    }
  }
  return triplets;
}

TEST(ComputeEquilibrationTest, FactorsArePowersOfTwoWithinClamp) {
  LpModel model = MakeIllScaledLp(/*seed=*/11, /*num_vars=*/20,
                                  /*num_rows=*/12);
  const ScalingFactors s = ComputeEquilibration(
      model.num_constraints(), model.num_variables(), ModelTriplets(model));
  ASSERT_TRUE(s.any);
  for (double r : s.row) {
    EXPECT_TRUE(IsPowerOfTwo(r)) << r;
    EXPECT_GE(r, 1.0 / 16.0);
    EXPECT_LE(r, 16.0);
  }
  for (double c : s.col) {
    EXPECT_TRUE(IsPowerOfTwo(c)) << c;
    EXPECT_GE(c, 1.0 / 16.0);
    EXPECT_LE(c, 16.0);
  }
}

TEST(ComputeEquilibrationTest, CompressesCoefficientRange) {
  LpModel model = MakeIllScaledLp(/*seed=*/23, /*num_vars=*/25,
                                  /*num_rows=*/15);
  const std::vector<Triplet> triplets = ModelTriplets(model);
  const ScalingFactors s = ComputeEquilibration(
      model.num_constraints(), model.num_variables(), triplets);
  ASSERT_TRUE(s.any);

  auto range = [&](bool scaled) {
    double lo = kInfinity, hi = 0.0;
    for (const Triplet& t : triplets) {
      const double v = std::abs(
          scaled ? t.value * s.row[t.row] * s.col[t.col] : t.value);
      if (v == 0.0) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    return hi / lo;
  };
  // The clamp caps per-factor correction at 16x each side, so the range
  // cannot always collapse to ~1 — but on these instances it must shrink
  // by a wide margin, not merely stay put.
  EXPECT_LT(range(/*scaled=*/true), range(/*scaled=*/false) / 100.0);
}

TEST(ComputeEquilibrationTest, WellScaledModelIsLeftAlone) {
  // All coefficients already in [0.1, 2]: geometric means round to 2^0.
  Rng rng(7);
  std::vector<Triplet> triplets;
  for (int r = 0; r < 6; ++r) {
    for (int j = 0; j < 8; ++j) {
      triplets.push_back(Triplet{r, j, rng.NextDouble(0.5, 2.0)});
    }
  }
  const ScalingFactors s = ComputeEquilibration(6, 8, triplets);
  for (double r : s.row) EXPECT_EQ(r, 1.0);
  for (double c : s.col) EXPECT_EQ(c, 1.0);
  EXPECT_FALSE(s.any);
}

struct ScalingSpec {
  uint64_t seed;
  int num_vars;
  int num_rows;
};

class ScalingPropertyTest : public ::testing::TestWithParam<ScalingSpec> {};

// Equilibrated and raw solves of the same ill-scaled LP must agree on
// status, objective, primal point, and duals: the factors are powers of
// two (exact), and the solution is mapped back to original units before
// it leaves the solver.
TEST_P(ScalingPropertyTest, EquilibratedSolveMatchesUnscaled) {
  const ScalingSpec& spec = GetParam();
  LpModel model = MakeIllScaledLp(spec.seed, spec.num_vars, spec.num_rows);
  ASSERT_TRUE(model.Validate().ok());

  SimplexOptions scaled_options;
  scaled_options.scaling = SimplexOptions::Scaling::kEquilibrate;
  SimplexOptions raw_options;
  raw_options.scaling = SimplexOptions::Scaling::kNone;

  LpSolution scaled = SimplexSolver(scaled_options).Solve(model);
  LpSolution raw = SimplexSolver(raw_options).Solve(model);
  ASSERT_EQ(scaled.status, raw.status);
  if (scaled.status != SolveStatus::kOptimal) {
    GTEST_SKIP() << "instance not optimal under both settings";
  }

  const double obj_tol = 1e-6 * std::max(1.0, std::abs(raw.objective));
  EXPECT_NEAR(scaled.objective, raw.objective, obj_tol);
  ASSERT_EQ(scaled.x.size(), raw.x.size());
  for (size_t j = 0; j < raw.x.size(); ++j) {
    const double tol = 1e-6 * std::max(1.0, std::abs(raw.x[j]));
    EXPECT_NEAR(scaled.x[j], raw.x[j], tol) << "x component " << j;
  }
  ASSERT_EQ(scaled.duals.size(), raw.duals.size());
  for (size_t r = 0; r < raw.duals.size(); ++r) {
    const double tol = 1e-6 * std::max(1.0, std::abs(raw.duals[r]));
    EXPECT_NEAR(scaled.duals[r], raw.duals[r], tol) << "dual row " << r;
  }
}

std::vector<ScalingSpec> MakeScalingSpecs() {
  std::vector<ScalingSpec> specs;
  uint64_t seed = 4000;
  for (int vars : {4, 10, 24}) {
    for (int rows : {3, 8, 14}) {
      specs.push_back(ScalingSpec{seed++, vars, rows});
    }
  }
  return specs;
}

INSTANTIATE_TEST_SUITE_P(IllScaledLps, ScalingPropertyTest,
                         ::testing::ValuesIn(MakeScalingSpecs()));

}  // namespace
}  // namespace lp
}  // namespace privsan
