#include "core/laplace_step.h"

#include <gtest/gtest.h>

#include "core/audit.h"
#include "core/oump.h"
#include "log/preprocess.h"
#include "test_fixtures.h"

namespace privsan {
namespace {

using testing_fixtures::SmallSyntheticLog;

TEST(LaplaceStepTest, RejectsBadOptions) {
  SearchLog log = SmallSyntheticLog();
  std::vector<double> x(log.num_pairs(), 1.0);
  LaplaceStepOptions options;
  options.d = 0.0;
  EXPECT_FALSE(AddLaplaceNoise(log, PrivacyParams{1.0, 0.5}, x, options).ok());
  options.d = 1.0;
  options.epsilon_prime = 0.0;
  EXPECT_FALSE(AddLaplaceNoise(log, PrivacyParams{1.0, 0.5}, x, options).ok());
}

TEST(LaplaceStepTest, RejectsWrongSize) {
  SearchLog log = SmallSyntheticLog();
  std::vector<double> x(log.num_pairs() + 1, 1.0);
  EXPECT_FALSE(
      AddLaplaceNoise(log, PrivacyParams{1.0, 0.5}, x, LaplaceStepOptions{})
          .ok());
}

TEST(LaplaceStepTest, RepairedCountsSatisfyConstraints) {
  SearchLog log = SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(1.4, 0.1);
  OumpResult oump = SolveOump(log, params).value();

  LaplaceStepOptions options;
  options.d = 2.0;
  options.epsilon_prime = 0.5;  // heavy noise
  options.repair_feasibility = true;
  LaplaceStepResult noisy =
      AddLaplaceNoise(log, params, oump.x_relaxed, options).value();

  DpConstraintSystem system = DpConstraintSystem::Build(log, params).value();
  EXPECT_TRUE(system.IsSatisfied(noisy.x));
  AuditReport audit = AuditSolution(log, params, noisy.x).value();
  EXPECT_TRUE(audit.satisfies_privacy) << audit.ToString();
}

TEST(LaplaceStepTest, RepairScaleAtMostOne) {
  SearchLog log = SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(1.4, 0.1);
  OumpResult oump = SolveOump(log, params).value();
  LaplaceStepOptions options;
  options.d = 1.0;
  options.epsilon_prime = 1.0;
  LaplaceStepResult noisy =
      AddLaplaceNoise(log, params, oump.x_relaxed, options).value();
  EXPECT_LE(noisy.scale_applied, 1.0);
  EXPECT_GT(noisy.scale_applied, 0.0);
}

TEST(LaplaceStepTest, SmallNoiseKeepsCountsClose) {
  SearchLog log = SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  OumpResult oump = SolveOump(log, params).value();
  LaplaceStepOptions options;
  options.d = 0.01;        // tiny sensitivity bound
  options.epsilon_prime = 10.0;  // scale d/eps' = 0.001
  LaplaceStepResult noisy =
      AddLaplaceNoise(log, params, oump.x_relaxed, options).value();
  // With noise scale 0.001, floored counts differ from floored optimum by
  // at most 1 in all but pathological cases.
  size_t big_moves = 0;
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    const uint64_t base = oump.x[p];
    const uint64_t moved = noisy.x[p];
    if (moved > base + 1 || base > moved + 1) ++big_moves;
  }
  EXPECT_EQ(big_moves, 0u);
}

TEST(LaplaceStepTest, DeterministicInSeed) {
  SearchLog log = SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  OumpResult oump = SolveOump(log, params).value();
  LaplaceStepOptions options;
  options.seed = 77;
  LaplaceStepResult a =
      AddLaplaceNoise(log, params, oump.x_relaxed, options).value();
  LaplaceStepResult b =
      AddLaplaceNoise(log, params, oump.x_relaxed, options).value();
  EXPECT_EQ(a.x, b.x);
}

TEST(SensitivityBoundTest, RejectsBadD) {
  SearchLog log = SmallSyntheticLog();
  EXPECT_FALSE(BoundOumpSensitivity(log, PrivacyParams{1.0, 0.5}, 0.0).ok());
}

TEST(SensitivityBoundTest, LargeDKeepsEveryone) {
  SearchLog log = testing_fixtures::Figure1Preprocessed();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  SensitivityBoundResult result =
      BoundOumpSensitivity(log, params, /*d=*/1e6).value();
  EXPECT_EQ(result.users_removed, 0u);
  EXPECT_EQ(result.log.num_users(), log.num_users());
}

TEST(SensitivityBoundTest, TinyDRemovesInfluentialUsers) {
  SearchLog log = testing_fixtures::Figure1Preprocessed();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  SensitivityBoundResult result =
      BoundOumpSensitivity(log, params, /*d=*/1e-6).value();
  // Removing any of the three users materially changes the optimum on this
  // tiny log, so a near-zero d must drop at least one.
  EXPECT_GT(result.users_removed, 0u);
}

TEST(SensitivityBoundTest, RetainedShiftBoundedByD) {
  SearchLog log = testing_fixtures::Figure1Preprocessed();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  const double d = 5.0;
  SensitivityBoundResult result = BoundOumpSensitivity(log, params, d).value();
  EXPECT_LE(result.max_shift_retained, d);
}

TEST(SensitivityBoundTest, ResultLogHasNoUniquePairs) {
  SearchLog log = SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  SensitivityBoundResult result = BoundOumpSensitivity(log, params, 3.0).value();
  for (PairId p = 0; p < result.log.num_pairs(); ++p) {
    EXPECT_GE(result.log.PairUserCount(p), 2u);
  }
}

}  // namespace
}  // namespace privsan
