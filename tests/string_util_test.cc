#include "util/string_util.h"

#include <gtest/gtest.h>

namespace privsan {
namespace {

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, NoDelimiter) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(SplitJoinTest, RoundTrip) {
  std::string input = "x\ty\tz\t";
  EXPECT_EQ(Join(Split(input, '\t'), "\t"), input);
}

TEST(TrimTest, Basic) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nhi"), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("query-url", "query"));
  EXPECT_FALSE(StartsWith("query", "query-url"));
  EXPECT_TRUE(EndsWith("log.tsv", ".tsv"));
  EXPECT_FALSE(EndsWith("log.tsv", ".csv"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ParseInt64Test, Valid) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64("  13  ").value(), 13);
  EXPECT_EQ(ParseInt64("0").value(), 0);
}

TEST(ParseInt64Test, Invalid) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("x12").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("999999999999999999999999").ok());
}

TEST(ParseDoubleTest, Valid) {
  EXPECT_DOUBLE_EQ(ParseDouble("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e-3").value(), -1e-3);
  EXPECT_DOUBLE_EQ(ParseDouble(" 0.0 ").value(), 0.0);
}

TEST(ParseDoubleTest, Invalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("2.5z").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
  EXPECT_EQ(FormatDouble(0.125, 4), "0.1250");
}

TEST(FormatWithCommasTest, Basic) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1864860), "1,864,860");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace privsan
