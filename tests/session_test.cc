// SanitizerSession semantics: warm-started sweeps match per-cell cold
// solves, AppendUsers matches a from-scratch solve on the concatenated log,
// and the one-shot wrappers stay equivalent to the session paths.
#include "core/session.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/dump.h"
#include "core/oump.h"
#include "core/sanitizer.h"
#include "log/preprocess.h"
#include "synth/generator.h"
#include "test_fixtures.h"

namespace privsan {
namespace {

using testing_fixtures::Figure1Log;
using testing_fixtures::SmallSyntheticLog;

SearchLog SmallSyntheticRaw(uint64_t seed = 7) {
  SyntheticLogConfig config = TinyConfig();
  config.seed = seed;
  return GenerateSearchLog(config).value();
}

// Flattens to sorted (user, query, url, count) tuples so two logs can be
// compared independently of internal id assignment.
std::vector<std::tuple<std::string, std::string, std::string, uint64_t>>
Tuples(const SearchLog& log) {
  std::vector<std::tuple<std::string, std::string, std::string, uint64_t>>
      out;
  for (UserId u = 0; u < log.num_users(); ++u) {
    for (const PairCount& cell : log.UserLogOf(u)) {
      out.emplace_back(log.user_name(u),
                       log.query_name(log.pair_query(cell.pair)),
                       log.url_name(log.pair_url(cell.pair)), cell.count);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

UmpQuery Query(double e_eps, double delta, uint64_t output_size = 0) {
  UmpQuery query;
  query.privacy = PrivacyParams::FromEEpsilon(e_eps, delta);
  query.output_size = output_size;
  return query;
}

TEST(SessionSweepTest, OumpWarmSweepMatchesColdAndSavesIterations) {
  SanitizerSession session =
      SanitizerSession::Create(SmallSyntheticRaw()).value();
  std::vector<UmpQuery> grid;
  for (double e_eps : {1.1, 1.4, 1.7, 2.0, 2.3}) {
    grid.push_back(Query(e_eps, 0.5));
  }

  SweepOptions cold_options;
  cold_options.warm_start = false;
  SweepResult cold =
      session.SweepBudgets(UtilityObjective::kOutputSize, grid, cold_options)
          .value();
  SweepResult warm =
      session.SweepBudgets(UtilityObjective::kOutputSize, grid).value();

  ASSERT_EQ(warm.cells.size(), grid.size());
  ASSERT_EQ(cold.cells.size(), grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    // Warm starts change the path, never the optimum.
    EXPECT_NEAR(warm.cells[i].objective_value, cold.cells[i].objective_value,
                1e-6 * (1.0 + std::abs(cold.cells[i].objective_value)))
        << "cell " << i;
    EXPECT_EQ(warm.cells[i].output_size, cold.cells[i].output_size)
        << "cell " << i;
  }
  // Every cell but the first chains the previous cell's basis...
  EXPECT_GT(warm.warm_solves, 0);
  EXPECT_FALSE(warm.cells.front().stats.warm_started);
  // ...and the chained dual re-solves beat per-cell cold phase-1 solves.
  EXPECT_LT(warm.total_simplex_iterations, cold.total_simplex_iterations);
}

TEST(SessionSweepTest, FumpWarmSweepMatchesCold) {
  SanitizerSession session =
      SanitizerSession::Create(SmallSyntheticRaw()).value();
  const uint64_t lambda =
      session.Solve(UtilityObjective::kOutputSize, Query(2.0, 0.5))
          .value()
          .output_size;
  ASSERT_GT(lambda, 0u);

  std::vector<UmpQuery> grid;
  for (int percent : {30, 45, 60, 75, 90}) {
    grid.push_back(
        Query(2.0, 0.5, std::max<uint64_t>(1, lambda * percent / 100)));
  }
  SweepOptions cold_options;
  cold_options.warm_start = false;
  SweepResult cold = session
                         .SweepBudgets(UtilityObjective::kFrequentPairs, grid,
                                       cold_options)
                         .value();
  SweepResult warm =
      session.SweepBudgets(UtilityObjective::kFrequentPairs, grid).value();

  for (size_t i = 0; i < grid.size(); ++i) {
    EXPECT_NEAR(warm.cells[i].objective_value, cold.cells[i].objective_value,
                1e-6 * (1.0 + std::abs(cold.cells[i].objective_value)))
        << "cell " << i;
  }
  EXPECT_GT(warm.warm_solves, 0);
  EXPECT_LT(warm.total_simplex_iterations, cold.total_simplex_iterations);
}

TEST(SessionSweepTest, MinSupportOverrideRebuildsFrequentSet) {
  SanitizerSession session =
      SanitizerSession::Create(SmallSyntheticRaw()).value();
  const uint64_t lambda =
      session.Solve(UtilityObjective::kOutputSize, Query(2.0, 0.5))
          .value()
          .output_size;
  ASSERT_GT(lambda, 0u);
  const std::vector<UmpQuery> grid = {Query(2.0, 0.5, lambda / 2)};

  SweepOptions tight;
  tight.min_support = 1.0 / 50;
  SweepOptions loose;
  loose.min_support = 1.0 / 1000;
  const auto tight_result =
      session.SweepBudgets(UtilityObjective::kFrequentPairs, grid, tight)
          .value();
  const auto loose_result =
      session.SweepBudgets(UtilityObjective::kFrequentPairs, grid, loose)
          .value();
  // A lower support threshold can only grow the frequent set.
  EXPECT_GE(loose_result.cells[0].frequent_pairs.size(),
            tight_result.cells[0].frequent_pairs.size());
}

TEST(SessionSweepTest, MinSupportOverrideDoesNotLeak) {
  SanitizerSession session =
      SanitizerSession::Create(SmallSyntheticRaw()).value();
  const uint64_t lambda =
      session.Solve(UtilityObjective::kOutputSize, Query(2.0, 0.5))
          .value()
          .output_size;
  ASSERT_GT(lambda, 0u);
  const UmpQuery query = Query(2.0, 0.5, std::max<uint64_t>(1, lambda / 2));

  const auto before =
      session.Solve(UtilityObjective::kFrequentPairs, query).value();
  SweepOptions overridden;
  overridden.min_support = 1.0 / 25;  // far from the session's default
  (void)session
      .SweepBudgets(UtilityObjective::kFrequentPairs, {query}, overridden)
      .value();
  // The override is scoped to the sweep: a later Solve is back on the
  // session's own frequent set.
  const auto after =
      session.Solve(UtilityObjective::kFrequentPairs, query).value();
  EXPECT_EQ(after.frequent_pairs, before.frequent_pairs);
}

// The deterministic D-UMP solvers (SPE, greedy) use no warm state, so the
// post-append result must be bit-identical to a from-scratch session on the
// concatenated log, all the way through sampling (same seed). This pins the
// AppendUsers log reconstruction (merge + re-preprocess + new DP rows)
// exactly. The LP objectives (O-UMP/F-UMP) are checked by objective value
// below: their optima are massively degenerate, so alternate optimal
// vertices — not a bug — make count-level comparisons meaningless.
TEST(SessionAppendTest, AppendUsersBitIdenticalForDeterministicSolver) {
  const SearchLog full = SmallSyntheticRaw();
  const UserId cut = full.num_users() / 2;

  SessionOptions options;
  options.objective = UtilityObjective::kDiversity;
  options.dump.solver = DumpSolverKind::kSpe;
  options.seed = 1234;

  SanitizerSession incremental =
      SanitizerSession::Create(UserSlice(full, 0, cut), options).value();
  ASSERT_TRUE(
      incremental.AppendUsers(UserSlice(full, cut, full.num_users())).ok());
  // The concatenation of the two batches, built from scratch. (Using `full`
  // directly would hold the same tuples under a different PairId order —
  // the generator's insertion order — and SPE tie-breaks by id.)
  SanitizerSession scratch =
      SanitizerSession::Create(UserSlice(full, 0, full.num_users()), options)
          .value();

  const UmpQuery query = Query(2.0, 0.5);
  UmpSolution inc_solution =
      incremental.Solve(UtilityObjective::kDiversity, query).value();
  UmpSolution scr_solution =
      scratch.Solve(UtilityObjective::kDiversity, query).value();
  EXPECT_EQ(inc_solution.x, scr_solution.x);

  SanitizeReport inc_report = incremental.Sanitize(query.privacy).value();
  SanitizeReport scr_report = scratch.Sanitize(query.privacy).value();
  EXPECT_EQ(inc_report.optimal_counts, scr_report.optimal_counts);
  EXPECT_EQ(Tuples(inc_report.output), Tuples(scr_report.output));
  EXPECT_TRUE(inc_report.audit.satisfies_privacy);
}

TEST(SessionAppendTest, AppendUsersMatchesFromScratchObjective) {
  const SearchLog full = SmallSyntheticRaw();
  const UserId cut = full.num_users() * 3 / 4;
  const UmpQuery query = Query(2.0, 0.5);

  SanitizerSession incremental =
      SanitizerSession::Create(UserSlice(full, 0, cut)).value();
  (void)incremental.Solve(UtilityObjective::kOutputSize, query).value();
  ASSERT_TRUE(
      incremental.AppendUsers(UserSlice(full, cut, full.num_users())).ok());
  UmpSolution warm =
      incremental.Solve(UtilityObjective::kOutputSize, query).value();
  // The appended log and rows must equal the from-scratch preprocessing...
  SanitizerSession scratch = SanitizerSession::Create(full).value();
  UmpSolution cold =
      scratch.Solve(UtilityObjective::kOutputSize, query).value();
  EXPECT_EQ(Tuples(incremental.log()), Tuples(scratch.log()));
  // ...and the warm-started re-solve reaches the same optimum.
  EXPECT_NEAR(warm.objective_value, cold.objective_value,
              1e-6 * (1.0 + cold.objective_value));
  EXPECT_EQ(warm.output_size, cold.output_size);
  // The remapped basis was actually usable as a warm start.
  EXPECT_TRUE(warm.stats.warm_started);
}

TEST(SessionAppendTest, SessionCanStartEmpty) {
  // A single user shares no pair with anyone: preprocessing removes
  // everything, and solves fail until more users arrive.
  SearchLogBuilder builder;
  builder.Add("alice", "q1", "u1", 4);
  SanitizerSession session =
      SanitizerSession::Create(builder.Build()).value();
  EXPECT_EQ(session.log().num_pairs(), 0u);
  EXPECT_FALSE(
      session.Solve(UtilityObjective::kOutputSize, Query(2.0, 0.5)).ok());

  SearchLogBuilder more;
  more.Add("bob", "q1", "u1", 6);
  ASSERT_TRUE(session.AppendUsers(more.Build()).ok());
  EXPECT_GT(session.log().num_pairs(), 0u);
  EXPECT_TRUE(
      session.Solve(UtilityObjective::kOutputSize, Query(2.0, 0.5)).ok());
}

TEST(SessionAppendTest, AppendMergesSameUser) {
  // Appending more clicks for an existing user must merge into one user log
  // (one DP row), not create a duplicate user.
  SanitizerSession session =
      SanitizerSession::Create(Figure1Log()).value();
  const size_t users_before = session.raw_log().num_users();
  SearchLogBuilder more;
  more.Add("081", "google", "google.com", 5);
  ASSERT_TRUE(session.AppendUsers(more.Build()).ok());
  EXPECT_EQ(session.raw_log().num_users(), users_before);
  EXPECT_EQ(session.raw_log().total_clicks(),
            Figure1Log().total_clicks() + 5);
}

TEST(SessionWrapperTest, OneShotWrappersMatchSession) {
  const SearchLog raw = SmallSyntheticRaw();
  const SearchLog log = RemoveUniquePairs(raw).log;
  const PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);

  OumpResult wrapper = SolveOump(log, params).value();
  SanitizerSession session = SanitizerSession::Create(raw).value();
  UmpSolution solution =
      session.Solve(UtilityObjective::kOutputSize, Query(2.0, 0.5)).value();
  EXPECT_NEAR(wrapper.lp_objective, solution.objective_value,
              1e-6 * (1.0 + solution.objective_value));
  EXPECT_EQ(wrapper.lambda, solution.output_size);
}

TEST(SessionWrapperTest, SanitizerDelegatesToSession) {
  const SearchLog input = SmallSyntheticRaw();
  SanitizerConfig config;
  config.privacy = PrivacyParams::FromEEpsilon(2.0, 0.5);
  config.objective = UtilityObjective::kDiversity;
  config.dump_solver = DumpSolverKind::kSpe;
  config.seed = 99;

  SanitizeReport wrapper = Sanitizer(config).Sanitize(input).value();
  SanitizerSession session =
      SanitizerSession::Create(input, config.ToSessionOptions()).value();
  SanitizeReport direct = session.Sanitize(config.privacy).value();
  EXPECT_EQ(wrapper.optimal_counts, direct.optimal_counts);
  EXPECT_EQ(Tuples(wrapper.output), Tuples(direct.output));
}

TEST(SessionFumpTest, ZeroOutputSizeResolvesToLambda) {
  SanitizerSession session =
      SanitizerSession::Create(SmallSyntheticRaw()).value();
  const uint64_t lambda =
      session.Solve(UtilityObjective::kOutputSize, Query(2.0, 0.5))
          .value()
          .output_size;
  ASSERT_GT(lambda, 0u);
  UmpSolution implicit =
      session.Solve(UtilityObjective::kFrequentPairs, Query(2.0, 0.5))
          .value();
  UmpSolution explicit_size =
      session
          .Solve(UtilityObjective::kFrequentPairs, Query(2.0, 0.5, lambda))
          .value();
  EXPECT_NEAR(implicit.objective_value, explicit_size.objective_value,
              1e-6 * (1.0 + explicit_size.objective_value));
}

// Integer presolve: with a budget below a pair's largest log t coefficient,
// y_j = 1 is integrally infeasible, so the variable is fixed before branch
// & bound — without changing the optimum.
TEST(SessionDumpTest, IntegerPresolveFixesAndPreservesOptimum) {
  const SearchLog log = testing_fixtures::Figure1Preprocessed();
  DumpOptions with;
  with.solver = DumpSolverKind::kBranchAndBound;
  with.integer_presolve = true;
  DumpOptions without = with;
  without.integer_presolve = false;

  // Figure 1's largest coefficient is log(39/22) ~ 0.57 (user 083's google
  // clicks); eps = 0.3 < 0.57 forces at least one integer fix.
  PrivacyParams params{0.3, 0.5};
  DumpResult fixed = SolveDump(log, params, with).value();
  DumpResult plain = SolveDump(log, params, without).value();
  EXPECT_GT(fixed.integer_fixed, 0);
  EXPECT_EQ(plain.integer_fixed, 0);
  EXPECT_EQ(fixed.retained, plain.retained);
  EXPECT_TRUE(fixed.proven_optimal);
}

}  // namespace
}  // namespace privsan
