#include "core/pbmp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/oump.h"
#include "core/privacy_params.h"
#include "test_fixtures.h"

namespace privsan {
namespace {

using testing_fixtures::SmallSyntheticLog;
using testing_fixtures::TwoUserSharedLog;

TEST(PbmpTest, RejectsZeroTarget) {
  PbmpOptions options;
  options.required_output_size = 0;
  EXPECT_FALSE(SolvePbmp(TwoUserSharedLog(), options).ok());
}

TEST(PbmpTest, TwoUserAnalyticBudget) {
  // To emit U clicks at minimal exposure, put everything on q2 (cheapest
  // worst-row coefficient log 2): z* = U * log 2.
  SearchLog log = TwoUserSharedLog();
  for (uint64_t target : {1ull, 2ull, 5ull}) {
    PbmpOptions options;
    options.required_output_size = target;
    PbmpResult result = SolvePbmp(log, options).value();
    EXPECT_NEAR(result.min_budget,
                static_cast<double>(target) * std::log(2.0), 1e-6)
        << "U=" << target;
  }
}

TEST(PbmpTest, BudgetMonotoneInTarget) {
  SearchLog log = SmallSyntheticLog();
  double prev = 0.0;
  for (uint64_t target : {10ull, 50ull, 200ull}) {
    PbmpOptions options;
    options.required_output_size = target;
    PbmpResult result = SolvePbmp(log, options).value();
    EXPECT_GE(result.min_budget, prev - 1e-9);
    prev = result.min_budget;
  }
}

TEST(PbmpTest, DualityWithOump) {
  // If PBMP says budget z* suffices for output size U, then O-UMP with
  // budget z* must achieve at least U (relaxed), and with a slightly
  // smaller budget must achieve less.
  SearchLog log = SmallSyntheticLog();
  const uint64_t target = 100;
  PbmpOptions options;
  options.required_output_size = target;
  PbmpResult pbmp = SolvePbmp(log, options).value();
  ASSERT_GT(pbmp.min_budget, 0.0);

  // epsilon = z*, delta chosen so the delta term does not bind.
  PrivacyParams params{pbmp.min_budget, 0.999999};
  OumpResult oump = SolveOump(log, params).value();
  EXPECT_GE(oump.lp_objective, static_cast<double>(target) - 1e-4);

  PrivacyParams tighter{pbmp.min_budget * 0.9, 0.999999};
  OumpResult less = SolveOump(log, tighter).value();
  EXPECT_LT(less.lp_objective, static_cast<double>(target));
}

TEST(PbmpTest, FrontierParametersConsistent) {
  SearchLog log = SmallSyntheticLog();
  PbmpOptions options;
  options.required_output_size = 50;
  PbmpResult result = SolvePbmp(log, options).value();
  EXPECT_DOUBLE_EQ(result.min_epsilon, result.min_budget);
  EXPECT_NEAR(result.min_delta, 1.0 - std::exp(-result.min_budget), 1e-12);
  EXPECT_GT(result.min_delta, 0.0);
  EXPECT_LT(result.min_delta, 1.0);
}

TEST(PbmpTest, SolutionMeetsTarget) {
  SearchLog log = SmallSyntheticLog();
  PbmpOptions options;
  options.required_output_size = 75;
  PbmpResult result = SolvePbmp(log, options).value();
  double total = 0.0;
  for (double v : result.x) total += v;
  EXPECT_GE(total, 75.0 - 1e-6);
}

}  // namespace
}  // namespace privsan
