#include "core/sanitizer.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace privsan {
namespace {

using testing_fixtures::Figure1Log;
using testing_fixtures::SmallSyntheticLog;

SearchLog RawSyntheticLog() {
  SyntheticLogConfig config = TinyConfig();
  return GenerateSearchLog(config).value();
}

TEST(SanitizerTest, RejectsInvalidPrivacy) {
  SanitizerConfig config;
  config.privacy = PrivacyParams{0.0, 0.5};
  Sanitizer sanitizer(config);
  EXPECT_FALSE(sanitizer.Sanitize(Figure1Log()).ok());
}

TEST(SanitizerTest, FailsWhenEverythingUnique) {
  SearchLogBuilder builder;
  builder.Add("a", "q1", "u1", 3);
  builder.Add("b", "q2", "u2", 4);
  SanitizerConfig config;
  config.privacy = PrivacyParams::FromEEpsilon(2.0, 0.5);
  Sanitizer sanitizer(config);
  EXPECT_EQ(sanitizer.Sanitize(builder.Build()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SanitizerTest, OumpEndToEnd) {
  SanitizerConfig config;
  config.privacy = PrivacyParams::FromEEpsilon(2.0, 0.5);
  config.objective = UtilityObjective::kOutputSize;
  Sanitizer sanitizer(config);
  SanitizeReport report = sanitizer.Sanitize(RawSyntheticLog()).value();

  EXPECT_TRUE(report.audit.satisfies_privacy);
  EXPECT_GT(report.output_size, 0u);
  EXPECT_EQ(report.output.total_clicks(), report.output_size);
  EXPECT_GT(report.preprocess_stats.pairs_removed, 0u);
}

TEST(SanitizerTest, FumpEndToEndAutoOutputSize) {
  SanitizerConfig config;
  config.privacy = PrivacyParams::FromEEpsilon(2.0, 0.5);
  config.objective = UtilityObjective::kFrequentPairs;
  config.min_support = 1.0 / 100;
  config.output_size = 0;  // auto: lambda
  Sanitizer sanitizer(config);
  SanitizeReport report = sanitizer.Sanitize(RawSyntheticLog()).value();
  EXPECT_TRUE(report.audit.satisfies_privacy);
  EXPECT_GT(report.output_size, 0u);
}

TEST(SanitizerTest, FumpEndToEndExplicitOutputSize) {
  SanitizerConfig config;
  config.privacy = PrivacyParams::FromEEpsilon(2.0, 0.5);
  config.objective = UtilityObjective::kFrequentPairs;
  config.min_support = 1.0 / 100;
  config.output_size = 20;
  Sanitizer sanitizer(config);
  SanitizeReport report = sanitizer.Sanitize(RawSyntheticLog()).value();
  EXPECT_LE(report.output_size, 20u);
  EXPECT_TRUE(report.audit.satisfies_privacy);
}

TEST(SanitizerTest, DumpEndToEnd) {
  SanitizerConfig config;
  config.privacy = PrivacyParams::FromEEpsilon(2.0, 0.5);
  config.objective = UtilityObjective::kDiversity;
  config.dump_solver = DumpSolverKind::kSpe;
  Sanitizer sanitizer(config);
  SanitizeReport report = sanitizer.Sanitize(RawSyntheticLog()).value();
  EXPECT_TRUE(report.audit.satisfies_privacy);
  // D-UMP counts are 0/1.
  for (uint64_t c : report.optimal_counts) EXPECT_LE(c, 1u);
  EXPECT_EQ(report.output.total_clicks(), report.output_size);
}

TEST(SanitizerTest, OutputSchemaSubsetOfInput) {
  SanitizerConfig config;
  config.privacy = PrivacyParams::FromEEpsilon(2.0, 0.5);
  Sanitizer sanitizer(config);
  SearchLog input = RawSyntheticLog();
  SanitizeReport report = sanitizer.Sanitize(input).value();
  for (UserId u = 0; u < report.output.num_users(); ++u) {
    EXPECT_TRUE(input.FindUser(report.output.user_name(u)).ok());
  }
  for (PairId p = 0; p < report.output.num_pairs(); ++p) {
    EXPECT_TRUE(
        input
            .FindPair(report.output.query_name(report.output.pair_query(p)),
                      report.output.url_name(report.output.pair_url(p)))
            .ok());
  }
}

TEST(SanitizerTest, DeterministicInSeed) {
  SanitizerConfig config;
  config.privacy = PrivacyParams::FromEEpsilon(2.0, 0.5);
  config.seed = 123;
  Sanitizer sanitizer(config);
  SearchLog input = RawSyntheticLog();
  SanitizeReport a = sanitizer.Sanitize(input).value();
  SanitizeReport b = sanitizer.Sanitize(input).value();
  EXPECT_EQ(a.output_size, b.output_size);
  EXPECT_EQ(a.output.num_tuples(), b.output.num_tuples());
  EXPECT_EQ(a.optimal_counts, b.optimal_counts);
}

TEST(SanitizerTest, LaplaceModeStillSamplable) {
  SanitizerConfig config;
  config.privacy = PrivacyParams::FromEEpsilon(2.0, 0.5);
  LaplaceStepOptions laplace;
  laplace.d = 1.0;
  laplace.epsilon_prime = 1.0;
  laplace.repair_feasibility = true;
  config.laplace = laplace;
  Sanitizer sanitizer(config);
  SanitizeReport report = sanitizer.Sanitize(RawSyntheticLog()).value();
  // With repair enabled the audit must still pass.
  EXPECT_TRUE(report.audit.satisfies_privacy) << report.audit.ToString();
  EXPECT_EQ(report.output.total_clicks(), report.output_size);
}

TEST(SanitizerTest, ObjectiveNames) {
  EXPECT_STREQ(UtilityObjectiveToString(UtilityObjective::kOutputSize),
               "O-UMP");
  EXPECT_STREQ(UtilityObjectiveToString(UtilityObjective::kFrequentPairs),
               "F-UMP");
  EXPECT_STREQ(UtilityObjectiveToString(UtilityObjective::kDiversity),
               "D-UMP");
}

TEST(SanitizerTest, ReportTimesPopulated) {
  SanitizerConfig config;
  config.privacy = PrivacyParams::FromEEpsilon(2.0, 0.5);
  Sanitizer sanitizer(config);
  SanitizeReport report = sanitizer.Sanitize(RawSyntheticLog()).value();
  EXPECT_GE(report.solve_seconds, 0.0);
}

}  // namespace
}  // namespace privsan
