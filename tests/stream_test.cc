// Streaming lifecycle semantics (src/stream/ + the serve wiring):
// RemoveUsers produces DP rows bit-identical to a full rebuild and leaves
// the session warm, the (ε, δ) accountant matches the closed-form
// composition bounds and refuses at the floor with a typed status, and
// both accountant and window survive snapshot/restore byte-exactly.
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/session.h"
#include "log/search_log.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "stream/accountant.h"
#include "stream/window.h"
#include "synth/generator.h"

namespace privsan {
namespace {

SearchLog Synthetic(uint64_t seed, size_t users = 40, size_t events = 2000) {
  SyntheticLogConfig config = TinyConfig();
  config.seed = seed;
  config.num_users = users;
  config.num_events = events;
  return GenerateSearchLog(config).value();
}

UmpQuery Query(double e_eps, double delta) {
  UmpQuery query;
  query.privacy = PrivacyParams::FromEEpsilon(e_eps, delta);
  return query;
}

// Exact (bitwise) equality of two DP constraint systems: same rows in the
// same order, same owning users, same (pair, log_t) entries.
void ExpectRowsBitIdentical(const DpConstraintSystem& a,
                            const DpConstraintSystem& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_pairs(), b.num_pairs());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    EXPECT_EQ(a.RowUser(r), b.RowUser(r)) << "row " << r;
    const auto row_a = a.Row(r);
    const auto row_b = b.Row(r);
    ASSERT_EQ(row_a.size(), row_b.size()) << "row " << r;
    for (size_t k = 0; k < row_a.size(); ++k) {
      EXPECT_EQ(row_a[k], row_b[k]) << "row " << r << " entry " << k;
    }
  }
}

// --- SanitizerSession::RemoveUsers -----------------------------------------

TEST(StreamRemoveTest, RemoveMatchesFullRebuildBitExactly) {
  // Randomized append → remove → append interleavings: after every
  // operation, the incremental DP system must equal BuildRows from scratch
  // on the session's own raw log (same user/pair insertion order).
  for (const uint64_t seed : {3u, 11u, 42u}) {
    std::mt19937_64 rng(seed);
    const SearchLog full = Synthetic(seed, /*users=*/36, /*events=*/1800);
    const UserId third = full.num_users() / 3;

    SanitizerSession session =
        SanitizerSession::Create(UserSlice(full, 0, 2 * third)).value();
    for (int step = 0; step < 3; ++step) {
      // Remove a random subset of the currently present users.
      std::vector<std::string> doomed;
      for (UserId u = 0; u < session.raw_log().num_users(); ++u) {
        if (rng() % 3 == 0) {
          doomed.push_back(session.raw_log().user_name(u));
        }
      }
      ASSERT_TRUE(session.RemoveUsers(doomed).ok()) << "seed " << seed;
      if (step == 1) {
        // Interleave an append (including users that were just removed
        // re-appearing with fresh clicks).
        ASSERT_TRUE(
            session.AppendUsers(UserSlice(full, third, full.num_users()))
                .ok());
      }
      SanitizerSession scratch =
          SanitizerSession::Create(session.raw_log()).value();
      ExpectRowsBitIdentical(session.Snapshot().system,
                             scratch.Snapshot().system);
      ASSERT_EQ(session.log().num_users(), scratch.log().num_users());
    }
  }
}

TEST(StreamRemoveTest, RemoveReportsStatsAndPatchesRows) {
  // Two disjoint user clusters: removing cluster-A users cannot move any
  // pair total cluster B holds, so B's rows must take the copy path.
  SearchLogBuilder builder;
  builder.Add("a1", "qa", "ua", 3);
  builder.Add("a2", "qa", "ua", 2);
  builder.Add("a3", "qa", "ua", 4);
  builder.Add("b1", "qb", "ub", 5);
  builder.Add("b2", "qb", "ub", 1);
  builder.Add("b3", "qb", "ub", 2);
  SanitizerSession session =
      SanitizerSession::Create(builder.Build()).value();
  ASSERT_TRUE(session.RemoveUsers({"a3", "no-such-user"}).ok());
  const RemoveStats& stats = session.last_remove_stats();
  EXPECT_EQ(stats.removed_users, 1u);  // absent names are ignored
  EXPECT_EQ(session.raw_log().num_users(), 5u);
  // b1..b3 are untouched (copied); a1, a2 hold the shrunk pair (rebuilt).
  EXPECT_EQ(stats.rows_copied, 3u);
  EXPECT_EQ(stats.rows_rebuilt, 2u);
}

TEST(StreamRemoveTest, RemoveThenSolveResumesWarmWithColdObjective) {
  const UmpQuery query = Query(2.0, 0.5);
  SanitizerSession session = SanitizerSession::Create(Synthetic(9)).value();
  (void)session.Solve(UtilityObjective::kOutputSize, query).value();

  std::vector<std::string> doomed;
  for (UserId u = 0; u < session.raw_log().num_users(); u += 4) {
    doomed.push_back(session.raw_log().user_name(u));
  }
  ASSERT_TRUE(session.RemoveUsers(doomed).ok());

  const UmpSolution warm =
      session.Solve(UtilityObjective::kOutputSize, query).value();
  SanitizerSession scratch =
      SanitizerSession::Create(session.raw_log()).value();
  const UmpSolution cold =
      scratch.Solve(UtilityObjective::kOutputSize, query).value();
  // The basis remapped *down* onto the shrunk model is a usable warm
  // start and reaches the identical optimum.
  EXPECT_TRUE(warm.stats.warm_started);
  EXPECT_NEAR(warm.objective_value, cold.objective_value,
              1e-6 * (1.0 + std::abs(cold.objective_value)));
  EXPECT_EQ(warm.output_size, cold.output_size);
}

TEST(StreamRemoveTest, RemovingEveryUserLeavesAValidEmptySession) {
  SanitizerSession session =
      SanitizerSession::Create(Synthetic(13, /*users=*/10, /*events=*/400))
          .value();
  std::vector<std::string> all;
  for (UserId u = 0; u < session.raw_log().num_users(); ++u) {
    all.push_back(session.raw_log().user_name(u));
  }
  ASSERT_TRUE(session.RemoveUsers(all).ok());
  EXPECT_EQ(session.raw_log().num_users(), 0u);
  EXPECT_EQ(session.log().num_users(), 0u);
  // Idempotent: removing again (or removing nothing) stays OK.
  EXPECT_TRUE(session.RemoveUsers(all).ok());
  EXPECT_TRUE(session.RemoveUsers({}).ok());
  // And the empty session can grow again.
  ASSERT_TRUE(session.AppendUsers(Synthetic(14)).ok());
  EXPECT_GT(session.log().num_users(), 0u);
}

// --- PrivacyAccountant -----------------------------------------------------

TEST(AccountantTest, BasicCompositionMatchesClosedForm) {
  stream::BudgetConfig config;
  config.max_epsilon = 10.0;
  stream::PrivacyAccountant accountant(config);
  double expected_eps = 0.0, expected_delta = 0.0;
  for (int i = 1; i <= 5; ++i) {
    const double eps = 0.1 * i, delta = 0.01 * i;
    ASSERT_TRUE(accountant.Charge(eps, delta, "Solve", 1000 + i).ok());
    expected_eps += eps;
    expected_delta += delta;
  }
  EXPECT_DOUBLE_EQ(accountant.SpentEpsilon(), expected_eps);
  EXPECT_DOUBLE_EQ(accountant.SpentDelta(), expected_delta);
  EXPECT_DOUBLE_EQ(accountant.RemainingEpsilon(), 10.0 - expected_eps);
  EXPECT_EQ(accountant.history().size(), 5u);
}

TEST(AccountantTest, AdvancedCompositionMatchesClosedForm) {
  stream::BudgetConfig config;
  config.max_epsilon = 10.0;
  config.composition = stream::Composition::kAdvanced;
  config.advanced_delta_slack = 1e-6;
  stream::PrivacyAccountant accountant(config);
  const std::vector<double> epsilons = {0.1, 0.2, 0.15, 0.05};
  double sum = 0.0, sum_sq = 0.0, sum_growth = 0.0;
  for (size_t i = 0; i < epsilons.size(); ++i) {
    ASSERT_TRUE(accountant.Charge(epsilons[i], 1e-9, "Solve", i).ok());
    sum += epsilons[i];
    sum_sq += epsilons[i] * epsilons[i];
    sum_growth += epsilons[i] * std::expm1(epsilons[i]);
  }
  const double expected =
      std::sqrt(2.0 * std::log(1.0 / 1e-6) * sum_sq) + sum_growth;
  EXPECT_DOUBLE_EQ(accountant.SpentEpsilon(), expected);
  // Advanced composition is sub-linear: it beats the basic sum once the
  // per-query epsilons are small... for enough queries. And δ pays the
  // slack on top of the per-query deltas.
  EXPECT_DOUBLE_EQ(accountant.SpentDelta(), 1e-6 + 4 * 1e-9);
}

TEST(AccountantTest, RefusesAtTheFloorWithTypedStatus) {
  stream::BudgetConfig config;
  config.max_epsilon = 1.0;
  config.min_remaining_epsilon = 0.25;
  stream::PrivacyAccountant accountant(config);
  ASSERT_TRUE(accountant.Charge(0.5, 0.0, "Solve", 1).ok());
  EXPECT_FALSE(accountant.WouldRefuse(0.25, 0.0));
  ASSERT_TRUE(accountant.Charge(0.25, 0.0, "Solve", 2).ok());
  // Spending 0.75 of 1.0 leaves exactly the floor; any further charge
  // must be refused with the typed code, and the refusal is counted but
  // not recorded as an allocation.
  EXPECT_TRUE(accountant.WouldRefuse(0.1, 0.0));
  const Status refused = accountant.Charge(0.1, 0.0, "Solve", 3);
  EXPECT_EQ(refused.code(), StatusCode::kBudgetExhausted);
  EXPECT_EQ(accountant.refusals(), 1u);
  EXPECT_EQ(accountant.history().size(), 2u);
  EXPECT_DOUBLE_EQ(accountant.SpentEpsilon(), 0.75);
  // Invalid charges are invalid-argument, not refusals.
  EXPECT_EQ(accountant.Charge(-1.0, 0.0, "Solve", 4).code(),
            StatusCode::kInvalidArgument);
}

TEST(AccountantTest, UnlimitedBudgetRecordsButNeverRefuses) {
  stream::PrivacyAccountant accountant;  // max_epsilon == 0
  EXPECT_FALSE(accountant.enforced());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(accountant.Charge(10.0, 0.1, "Sweep", i).ok());
  }
  EXPECT_EQ(accountant.history().size(), 100u);
  EXPECT_TRUE(std::isinf(accountant.RemainingEpsilon()));
}

TEST(AccountantTest, SerializeRoundTripIsBitIdentical) {
  stream::BudgetConfig config;
  // Advanced composition of ε = {0.3, 0.7} at the default 1e-9 slack
  // composes to ~5.7 — the cap must sit above that for both to land.
  config.max_epsilon = 6.0;
  config.max_delta = 0.5;
  config.min_remaining_epsilon = 0.125;
  config.composition = stream::Composition::kAdvanced;
  stream::PrivacyAccountant accountant(config);
  ASSERT_TRUE(accountant.Charge(0.3, 0.01, "Solve", 111).ok());
  ASSERT_TRUE(accountant.Charge(0.7, 0.02, "Sanitize", 222).ok());
  (void)accountant.Charge(100.0, 0.0, "Sweep", 333);  // refusal

  std::stringstream stream;
  accountant.Serialize(stream);
  stream::PrivacyAccountant restored =
      stream::PrivacyAccountant::Deserialize(stream).value();
  EXPECT_EQ(restored, accountant);
  // The running sums are re-accumulated in history order: spend is
  // bit-identical, not merely close.
  EXPECT_EQ(restored.SpentEpsilon(), accountant.SpentEpsilon());
  EXPECT_EQ(restored.SpentDelta(), accountant.SpentDelta());
  EXPECT_EQ(restored.refusals(), 1u);
}

// --- WindowState -----------------------------------------------------------

TEST(WindowTest, SlidingWindowExpiresStrictlyOlderUsers) {
  stream::WindowState window(
      {stream::WindowKind::kSliding, /*span=*/10});
  window.Observe("alice", 100);
  window.Observe("bob", 95);
  window.Observe("carol", 89);
  // At t=100 the window is [90, 100]: carol (89) is out, bob (95) is in.
  EXPECT_EQ(window.ExpiredAt(100),
            (std::vector<std::string>{"carol"}));
  // Observations are monotonic: an older re-observation cannot rescue.
  window.Observe("carol", 50);
  EXPECT_EQ(window.ExpiredAt(100), (std::vector<std::string>{"carol"}));
  window.Observe("carol", 99);
  EXPECT_TRUE(window.ExpiredAt(100).empty());
}

TEST(WindowTest, TumblingWindowRetiresWholePanes) {
  stream::WindowState window(
      {stream::WindowKind::kTumbling, /*span=*/10});
  window.Observe("alice", 12);
  window.Observe("bob", 19);
  // Pane [10, 20): nobody expires inside it...
  EXPECT_TRUE(window.ExpiredAt(19).empty());
  // ...but when the pane turns over, the whole previous pane retires.
  EXPECT_EQ(window.ExpiredAt(20),
            (std::vector<std::string>{"alice", "bob"}));
}

TEST(WindowTest, ExpireBeforeIgnoresPolicyAndForgetDropsState) {
  stream::WindowState window;  // kNone: policy-driven expiry is off
  window.Observe("alice", 5);
  window.Observe("bob", 15);
  EXPECT_TRUE(window.ExpiredAt(1000).empty());  // no policy, no expiry
  // The explicit EXPIRE verb still works: strictly-older, sorted.
  EXPECT_EQ(window.ExpiredBefore(15), (std::vector<std::string>{"alice"}));
  window.Forget({"alice"});
  EXPECT_EQ(window.tracked_users(), 1u);
  EXPECT_TRUE(window.ExpiredBefore(15).empty());
}

TEST(WindowTest, SerializeRoundTripsDeterministically) {
  stream::WindowState window(
      {stream::WindowKind::kSliding, /*span=*/3600});
  window.Observe("zed", 7);
  window.Observe("amy", 3);
  std::stringstream first, second;
  window.Serialize(first);
  stream::WindowState restored =
      stream::WindowState::Deserialize(first).value();
  EXPECT_EQ(restored, window);
  // Deterministic bytes (sorted serialization order) — what the CI
  // text-vs-binary byte-equivalence smoke relies on.
  restored.Serialize(second);
  std::stringstream third;
  window.Serialize(third);
  EXPECT_EQ(second.str(), third.str());
}

// --- Snapshot v2 (stream sections) -----------------------------------------

TEST(StreamSnapshotTest, StreamStateSurvivesSnapshotRoundTrip) {
  SanitizerSession session =
      SanitizerSession::Create(Synthetic(21, 12, 500)).value();
  serve::TenantStreamState state;
  stream::BudgetConfig config;
  config.max_epsilon = 2.0;
  state.accountant = stream::PrivacyAccountant(config);
  ASSERT_TRUE(state.accountant.Charge(0.5, 0.01, "Solve", 777).ok());
  state.window =
      stream::WindowState({stream::WindowKind::kTumbling, 86400});
  state.window.Observe("alice", 1234);

  std::stringstream stream;
  ASSERT_TRUE(
      serve::WriteSnapshot(stream, session.Snapshot(), &state).ok());
  serve::TenantStreamState restored;
  ASSERT_TRUE(serve::ReadSnapshot(stream, &restored).ok());
  EXPECT_EQ(restored.accountant, state.accountant);
  EXPECT_EQ(restored.window, state.window);
  EXPECT_EQ(restored.accountant.SpentEpsilon(),
            state.accountant.SpentEpsilon());
}

TEST(StreamSnapshotTest, NullStreamStateWritesEmptySections) {
  SanitizerSession session =
      SanitizerSession::Create(Synthetic(22, 12, 500)).value();
  std::stringstream stream;
  ASSERT_TRUE(serve::WriteSnapshot(stream, session.Snapshot()).ok());
  serve::TenantStreamState restored;
  restored.accountant = stream::PrivacyAccountant({/*max_epsilon=*/9.0});
  ASSERT_TRUE(serve::ReadSnapshot(stream, &restored).ok());
  // The out-param is overwritten with the (empty) stored state, never
  // left holding stale data.
  EXPECT_FALSE(restored.accountant.enforced());
  EXPECT_EQ(restored.accountant.history().size(), 0u);
  EXPECT_EQ(restored.window.tracked_users(), 0u);
}

// --- Serve-layer wiring ----------------------------------------------------

serve::ServiceOptions QuietOptions() {
  serve::ServiceOptions options;
  options.num_threads = 2;
  return options;
}

TEST(StreamServiceTest, BudgetExhaustionReturnsTypedStatus) {
  serve::SanitizerService service(QuietOptions());
  serve::CreateTenantRequest create{"t", Synthetic(31), std::nullopt};
  create.budget.max_epsilon = 1.0;
  ASSERT_TRUE(service.Submit(create).get().status.ok());

  // e_eps 2.0 → ε = ln 2 ≈ 0.693: the first solve fits, a second distinct
  // (non-cached) solve would push past 1.0 and must be refused.
  ASSERT_TRUE(
      service.Solve("t", UtilityObjective::kOutputSize, Query(2.0, 0.5))
          .ok());
  // A repeat of the same query is a cache hit: free, still OK.
  ASSERT_TRUE(
      service.Solve("t", UtilityObjective::kOutputSize, Query(2.0, 0.5))
          .ok());
  const Status refused =
      service.Solve("t", UtilityObjective::kOutputSize, Query(2.1, 0.5))
          .status();
  EXPECT_EQ(refused.code(), StatusCode::kBudgetExhausted);

  const serve::BudgetStatus budget = service.Budget("t").value();
  EXPECT_TRUE(budget.enforced);
  EXPECT_EQ(budget.allocations, 1u);
  EXPECT_EQ(budget.refusals, 1u);
  EXPECT_NEAR(budget.spent_epsilon, std::log(2.0), 1e-12);

  const serve::TenantStats stats = service.Stats("t").value();
  EXPECT_EQ(stats.budget_refusals, 1u);
  EXPECT_EQ(stats.epsilon_spent_micro,
            static_cast<uint64_t>(std::log(2.0) * 1e6 + 0.5));
}

TEST(StreamServiceTest, RemoveUsersFlowsThroughServiceAndStaysWarm) {
  const SearchLog raw = Synthetic(33);
  serve::SanitizerService service(QuietOptions());
  ASSERT_TRUE(service.CreateTenant("t", raw).ok());
  ASSERT_TRUE(
      service.Solve("t", UtilityObjective::kOutputSize, Query(2.0, 0.5))
          .ok());

  // Two fresh users on a brand-new shared pair: disjoint from everything
  // the removal touches, so their DP rows must take the copy path.
  SearchLogBuilder fresh;
  fresh.Add("fresh_a", "zz_query", "zz_url", 2);
  fresh.Add("fresh_b", "zz_query", "zz_url", 3);
  const SearchLog fresh_log = fresh.Build();
  ASSERT_TRUE(service.Append("t", fresh_log).ok());

  std::vector<std::string> doomed;
  for (UserId u = 0; u < raw.num_users(); u += 5) {
    doomed.push_back(raw.user_name(u));
  }
  ASSERT_TRUE(service.RemoveUsers("t", doomed).ok());
  const serve::TenantStats stats = service.Stats("t").value();
  EXPECT_EQ(stats.users_removed, doomed.size());
  EXPECT_GT(stats.rows_patched_on_remove, 0u);

  // The removal invalidated the cache; the re-solve is a miss that warm
  // starts from the down-remapped basis and matches a cold solve.
  const UmpSolution warm =
      service.Solve("t", UtilityObjective::kOutputSize, Query(2.0, 0.5))
          .value();
  EXPECT_TRUE(warm.stats.warm_started);

  std::unordered_set<std::string> gone(doomed.begin(), doomed.end());
  SearchLogBuilder survivors;
  for (UserId u = 0; u < raw.num_users(); ++u) {
    if (gone.count(raw.user_name(u)) > 0) continue;
    survivors.DeclareUser(raw.user_name(u));
    for (const PairCount& cell : raw.UserLogOf(u)) {
      survivors.Add(raw.user_name(u),
                    raw.query_name(raw.pair_query(cell.pair)),
                    raw.url_name(raw.pair_url(cell.pair)), cell.count);
    }
  }
  survivors.AddAll(fresh_log);
  SanitizerSession cold =
      SanitizerSession::Create(survivors.Build()).value();
  const UmpSolution cold_solution =
      cold.Solve(UtilityObjective::kOutputSize, Query(2.0, 0.5)).value();
  EXPECT_NEAR(warm.objective_value, cold_solution.objective_value,
              1e-6 * (1.0 + std::abs(cold_solution.objective_value)));
}

TEST(StreamServiceTest, ExpireWindowRemovesAgedUsersOnly) {
  serve::SanitizerService service(QuietOptions());
  serve::CreateTenantRequest create{"t", Synthetic(35), std::nullopt};
  create.window.kind = stream::WindowKind::kSliding;
  create.window.span = 3600;
  ASSERT_TRUE(service.Submit(create).get().status.ok());
  const size_t before = service.Stats("t").value().users_removed;
  // Everybody was observed "now"; a cutoff in the past expires nobody.
  ASSERT_TRUE(service.ExpireWindow("t", 1).ok());
  EXPECT_EQ(service.Stats("t").value().users_removed, before);
  // A cutoff far in the future expires everyone.
  ASSERT_TRUE(
      service.ExpireWindow("t", std::numeric_limits<uint64_t>::max()).ok());
  EXPECT_GT(service.Stats("t").value().users_removed, before);
}

TEST(StreamServiceTest, AccountantSurvivesSnapshotRestore) {
  const std::string path = ::testing::TempDir() + "/stream_acct.snap";
  serve::SanitizerService service(QuietOptions());
  serve::CreateTenantRequest create{"a", Synthetic(37), std::nullopt};
  create.budget.max_epsilon = 5.0;
  create.budget.min_remaining_epsilon = 0.5;
  ASSERT_TRUE(service.Submit(create).get().status.ok());
  ASSERT_TRUE(
      service.Solve("a", UtilityObjective::kOutputSize, Query(2.0, 0.5))
          .ok());
  const serve::BudgetStatus before = service.Budget("a").value();
  ASSERT_TRUE(service.SaveSnapshot("a", path).ok());

  // Restore as a different tenant (the migration path: SNAPSHOT on one
  // backend, RESTORE on another).
  ASSERT_TRUE(service.RestoreTenant("b", path).ok());
  const serve::BudgetStatus after = service.Budget("b").value();
  EXPECT_EQ(after.spent_epsilon, before.spent_epsilon);
  EXPECT_EQ(after.remaining_epsilon, before.remaining_epsilon);
  EXPECT_EQ(after.allocations, before.allocations);
  EXPECT_TRUE(after.enforced);
  EXPECT_EQ(after.max_epsilon, 5.0);

  // The restored tenant resumes warm: the first solve after restore
  // warm-starts from the stored basis (and is charged, like any miss).
  const UmpSolution solution =
      service.Solve("b", UtilityObjective::kOutputSize, Query(2.0, 0.5))
          .value();
  EXPECT_TRUE(solution.stats.warm_started);
}

}  // namespace
}  // namespace privsan
