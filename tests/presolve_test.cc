// Presolve reductions and their postsolve inverses: the reduced model must
// be smaller but equivalent, and the mapped-back solution must carry a
// valid primal point, duals, and basis for the *original* model.
#include "lp/presolve.h"

#include <gtest/gtest.h>

#include <cmath>

#include "lp/model.h"
#include "lp/simplex.h"

namespace privsan {
namespace lp {
namespace {

TEST(PresolveTest, FixedVariableSubstituted) {
  // max x + y, x fixed at 2, x + y <= 5. Substituting x makes the row a
  // singleton (y <= 3), which becomes a bound; y is then an empty column
  // pinned to it — presolve solves the whole model.
  LpModel model(ObjectiveSense::kMaximize);
  int x = model.AddVariable(2.0, 2.0, 1.0);
  int y = model.AddVariable(0.0, kInfinity, 1.0);
  int r = model.AddConstraint(ConstraintSense::kLessEqual, 5.0);
  model.AddCoefficient(r, x, 1.0);
  model.AddCoefficient(r, y, 1.0);
  ASSERT_TRUE(model.Validate().ok());

  LpModel reduced;
  PresolveInfo info = BuildPresolve(model, &reduced);
  EXPECT_FALSE(info.infeasible);
  EXPECT_EQ(info.reduced_vars, 0);
  EXPECT_EQ(info.reduced_rows, 0);
  EXPECT_EQ(info.var_map[x], -1);
  EXPECT_DOUBLE_EQ(info.removed_value[x], 2.0);
  EXPECT_DOUBLE_EQ(info.removed_value[y], 3.0);

  SimplexSolver solver;
  LpSolution solution = solver.Solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 5.0, 1e-9);
  EXPECT_NEAR(solution.x[x], 2.0, 1e-9);
  EXPECT_NEAR(solution.x[y], 3.0, 1e-9);
}

TEST(PresolveTest, SingletonRowBecomesBound) {
  // max x + y with rows: 2x <= 6 (singleton -> x <= 3), x + y <= 10.
  LpModel model(ObjectiveSense::kMaximize);
  int x = model.AddVariable(0.0, kInfinity, 1.0);
  int y = model.AddVariable(0.0, 4.0, 1.0);
  int r1 = model.AddConstraint(ConstraintSense::kLessEqual, 6.0);
  model.AddCoefficient(r1, x, 2.0);
  int r2 = model.AddConstraint(ConstraintSense::kLessEqual, 10.0);
  model.AddCoefficient(r2, x, 1.0);
  model.AddCoefficient(r2, y, 1.0);
  ASSERT_TRUE(model.Validate().ok());

  LpModel reduced;
  PresolveInfo info = BuildPresolve(model, &reduced);
  EXPECT_FALSE(info.infeasible);
  EXPECT_EQ(info.reduced_rows, 1);  // the singleton row is gone
  ASSERT_EQ(info.singleton_rows.size(), 1u);
  EXPECT_EQ(info.singleton_rows[0].row, r1);
  const int rx = info.var_map[x];
  ASSERT_GE(rx, 0);
  EXPECT_DOUBLE_EQ(reduced.variable(rx).upper, 3.0);
}

TEST(PresolveTest, SingletonInfeasibilityDetected) {
  // x >= 5 (via row) conflicts with x <= 2 (bound).
  LpModel model(ObjectiveSense::kMinimize);
  int x = model.AddVariable(0.0, 2.0, 1.0);
  int r = model.AddConstraint(ConstraintSense::kGreaterEqual, 5.0);
  model.AddCoefficient(r, x, 1.0);
  ASSERT_TRUE(model.Validate().ok());

  LpModel reduced;
  PresolveInfo info = BuildPresolve(model, &reduced);
  EXPECT_TRUE(info.infeasible);
  // And the full solver path reports it.
  SimplexSolver solver;
  EXPECT_EQ(solver.Solve(model).status, SolveStatus::kInfeasible);
}

TEST(PresolveTest, EmptyRowChecked) {
  LpModel feasible(ObjectiveSense::kMinimize);
  feasible.AddVariable(0.0, 1.0, 1.0);
  feasible.AddConstraint(ConstraintSense::kLessEqual, 2.0);  // 0 <= 2
  ASSERT_TRUE(feasible.Validate().ok());
  LpModel reduced;
  EXPECT_FALSE(BuildPresolve(feasible, &reduced).infeasible);
  EXPECT_EQ(reduced.num_constraints(), 0);

  LpModel infeasible(ObjectiveSense::kMinimize);
  infeasible.AddVariable(0.0, 1.0, 1.0);
  infeasible.AddConstraint(ConstraintSense::kGreaterEqual, 2.0);  // 0 >= 2
  ASSERT_TRUE(infeasible.Validate().ok());
  EXPECT_TRUE(BuildPresolve(infeasible, &reduced).infeasible);
}

TEST(PresolveTest, EmptyColumnPinnedToFavorableBound) {
  // max 3z with z in [0, 7] and no rows: presolve pins z = 7.
  LpModel model(ObjectiveSense::kMaximize);
  int z = model.AddVariable(0.0, 7.0, 3.0);
  ASSERT_TRUE(model.Validate().ok());
  LpModel reduced;
  PresolveInfo info = BuildPresolve(model, &reduced);
  EXPECT_EQ(info.reduced_vars, 0);
  EXPECT_DOUBLE_EQ(info.removed_value[z], 7.0);
}

TEST(PresolveTest, UnboundedColumnKept) {
  // max z with z unbounded above: the column must survive so the solver
  // itself reports kUnbounded.
  LpModel model(ObjectiveSense::kMaximize);
  model.AddVariable(0.0, kInfinity, 1.0);
  ASSERT_TRUE(model.Validate().ok());
  LpModel reduced;
  PresolveInfo info = BuildPresolve(model, &reduced);
  EXPECT_EQ(info.reduced_vars, 1);
  SimplexSolver solver;
  EXPECT_EQ(solver.Solve(model).status, SolveStatus::kUnbounded);
}

// End-to-end: a model exercising every reduction at once still produces the
// right optimum, a full-length primal/dual pair, and complementarity on the
// dropped singleton row.
TEST(PresolveTest, PostsolveRestoresPrimalAndDuals) {
  LpModel model(ObjectiveSense::kMaximize);
  int fixed = model.AddVariable(1.5, 1.5, 2.0);           // removed: fixed
  int x = model.AddVariable(0.0, kInfinity, 3.0);         // kept
  int y = model.AddVariable(0.0, kInfinity, 2.0);         // kept
  int lonely = model.AddVariable(0.0, 4.0, 1.0);          // removed: no rows
  int r_single = model.AddConstraint(ConstraintSense::kLessEqual, 8.0);
  model.AddCoefficient(r_single, x, 2.0);                 // x <= 4
  int r_main = model.AddConstraint(ConstraintSense::kLessEqual, 10.0);
  model.AddCoefficient(r_main, fixed, 1.0);
  model.AddCoefficient(r_main, x, 1.0);
  model.AddCoefficient(r_main, y, 1.0);
  int r_empty = model.AddConstraint(ConstraintSense::kLessEqual, 1.0);
  (void)r_empty;
  ASSERT_TRUE(model.Validate().ok());

  SimplexSolver solver;
  LpSolution solution = solver.Solve(model);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  // Optimum: x = 4 (singleton cap), y = 10 - 1.5 - 4 = 4.5, lonely = 4.
  // Objective = 2*1.5 + 3*4 + 2*4.5 + 4 = 28.
  EXPECT_NEAR(solution.objective, 28.0, 1e-7);
  ASSERT_EQ(solution.x.size(), 4u);
  EXPECT_NEAR(solution.x[fixed], 1.5, 1e-9);
  EXPECT_NEAR(solution.x[x], 4.0, 1e-7);
  EXPECT_NEAR(solution.x[y], 4.5, 1e-7);
  EXPECT_NEAR(solution.x[lonely], 4.0, 1e-9);

  ASSERT_EQ(solution.duals.size(), 3u);
  // r_main binds with dual = c_y = 2; the singleton row's recovered dual
  // zeroes x's reduced cost: 3 - y_main - 2*y_single = 0 -> y_single = 0.5.
  EXPECT_NEAR(solution.duals[r_main], 2.0, 1e-6);
  EXPECT_NEAR(solution.duals[r_single], 0.5, 1e-6);
  EXPECT_NEAR(solution.duals[2], 0.0, 1e-9);

  // The exported basis must be a valid warm-start hint for the original
  // model: structurally sized and re-solvable.
  ASSERT_EQ(solution.basis.basic.size(), 3u);
  ASSERT_EQ(solution.basis.state.size(), 4u + 3u);
  LpSolution warm = solver.Solve(model, &solution.basis);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_NEAR(warm.objective, 28.0, 1e-7);
}

// Presolve must be transparent: on random-ish models, presolve on and off
// agree on status and objective.
TEST(PresolveTest, TransparentOnMixedModels) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    LpModel model(ObjectiveSense::kMaximize);
    uint64_t state = seed * 977;
    auto next = [&]() {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      return static_cast<double>((state >> 33) % 1000) / 1000.0;
    };
    const int n = 12;
    for (int j = 0; j < n; ++j) {
      const double lb = next() < 0.2 ? 1.0 : 0.0;
      const double ub = next() < 0.2 ? lb : (next() < 0.5 ? 5.0 : kInfinity);
      model.AddVariable(lb, ub, 0.5 + next());
    }
    for (int r = 0; r < 8; ++r) {
      const double roll = next();
      const int row =
          model.AddConstraint(ConstraintSense::kLessEqual, 4.0 + 4.0 * next());
      if (roll < 0.3) {
        // Singleton row.
        model.AddCoefficient(row, static_cast<int>(next() * n), 1.0 + next());
        continue;
      }
      for (int j = 0; j < n; ++j) {
        if (next() < 0.4) model.AddCoefficient(row, j, 0.2 + next());
      }
    }
    ASSERT_TRUE(model.Validate().ok());

    LpModel reduced;
    PresolveInfo info = BuildPresolve(model, &reduced);
    if (!info.infeasible) {
      EXPECT_LE(reduced.num_nonzeros(), model.num_nonzeros())
          << "presolve must never add coefficients, seed " << seed;
    }

    SimplexOptions with, without;
    without.presolve = false;
    LpSolution a = SimplexSolver(with).Solve(model);
    LpSolution b = SimplexSolver(without).Solve(model);
    ASSERT_EQ(a.status, b.status) << "seed " << seed;
    if (a.status == SolveStatus::kOptimal) {
      EXPECT_NEAR(a.objective, b.objective, 1e-6) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace lp
}  // namespace privsan
