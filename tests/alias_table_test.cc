#include "rng/alias_table.h"

#include <gtest/gtest.h>

#include <vector>

namespace privsan {
namespace {

TEST(AliasTableTest, RejectsEmptyWeights) {
  EXPECT_FALSE(AliasTable::Build({}).ok());
}

TEST(AliasTableTest, RejectsNegativeWeight) {
  EXPECT_FALSE(AliasTable::Build({1.0, -0.5}).ok());
}

TEST(AliasTableTest, RejectsAllZeroWeights) {
  EXPECT_FALSE(AliasTable::Build({0.0, 0.0}).ok());
}

TEST(AliasTableTest, RejectsNonFiniteWeight) {
  EXPECT_FALSE(
      AliasTable::Build({1.0, std::numeric_limits<double>::infinity()}).ok());
  EXPECT_FALSE(
      AliasTable::Build({std::numeric_limits<double>::quiet_NaN()}).ok());
}

TEST(AliasTableTest, SingleCategoryAlwaysSampled) {
  AliasTable table = AliasTable::Build({5.0}).value();
  Rng rng(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(table.Sample(rng), 0u);
}

TEST(AliasTableTest, ZeroWeightCategoryNeverSampled) {
  AliasTable table = AliasTable::Build({1.0, 0.0, 3.0}).value();
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) EXPECT_NE(table.Sample(rng), 1u);
}

TEST(AliasTableTest, RepresentedProbabilitiesMatchWeights) {
  std::vector<double> weights = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  double total = 0.0;
  for (double w : weights) total += w;
  AliasTable table = AliasTable::Build(weights).value();
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(table.ProbabilityOf(static_cast<uint32_t>(i)),
                weights[i] / total, 1e-12);
  }
}

TEST(AliasTableTest, EmpiricalFrequenciesMatch) {
  std::vector<double> weights = {1.0, 2.0, 7.0};
  AliasTable table = AliasTable::Build(weights).value();
  Rng rng(33);
  std::vector<int> counts(3, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[table.Sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.2, 0.012);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.7, 0.015);
}

TEST(AliasTableTest, UniformWeights) {
  AliasTable table = AliasTable::Build({2.0, 2.0, 2.0, 2.0}).value();
  Rng rng(44);
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) ++counts[table.Sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(kDraws), 0.25, 0.015);
  }
}

TEST(AliasTableTest, HighlySkewedWeights) {
  AliasTable table = AliasTable::Build({1e-6, 1.0}).value();
  Rng rng(55);
  int rare = 0;
  for (int i = 0; i < 200000; ++i) {
    if (table.Sample(rng) == 0) ++rare;
  }
  // Expectation 0.2; allow generous slack for a tail event.
  EXPECT_LE(rare, 10);
}

TEST(AliasTableTest, DeterministicGivenSeed) {
  AliasTable table = AliasTable::Build({1.0, 2.0, 3.0}).value();
  Rng a(9), b(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(table.Sample(a), table.Sample(b));
  }
}

TEST(AliasTableTest, ProbabilitiesSumToOne) {
  std::vector<double> weights(257);
  Rng rng(6);
  for (double& w : weights) w = rng.NextDouble() + 0.01;
  AliasTable table = AliasTable::Build(weights).value();
  double sum = 0.0;
  for (uint32_t i = 0; i < weights.size(); ++i) {
    sum += table.ProbabilityOf(i);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace privsan
