#include "core/dump.h"

#include <gtest/gtest.h>

#include "core/audit.h"
#include "metrics/utility_metrics.h"
#include "test_fixtures.h"

namespace privsan {
namespace {

using testing_fixtures::SmallSyntheticLog;
using testing_fixtures::TwoUserSharedLog;

TEST(DumpTest, BuildBipShape) {
  SearchLog log = testing_fixtures::Figure1Preprocessed();
  lp::BipProblem problem =
      BuildDumpBip(log, PrivacyParams::FromEEpsilon(2.0, 0.5)).value();
  EXPECT_EQ(problem.num_vars(), 3);
  EXPECT_EQ(problem.num_rows, 3);
  EXPECT_TRUE(problem.Validate().ok());
}

TEST(DumpTest, RejectsUnpreprocessedLog) {
  EXPECT_FALSE(
      BuildDumpBip(testing_fixtures::Figure1Log(), PrivacyParams{1.0, 0.5})
          .ok());
}

TEST(DumpTest, AllSolversProduceFeasibleSolutions) {
  SearchLog log = SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(1.7, 0.2);
  lp::BipProblem problem = BuildDumpBip(log, params).value();

  for (DumpSolverKind kind :
       {DumpSolverKind::kSpe, DumpSolverKind::kGreedy,
        DumpSolverKind::kLpRounding, DumpSolverKind::kBranchAndBound}) {
    DumpOptions options;
    options.solver = kind;
    options.bnb.max_nodes = 30;  // budgeted exact solver
    options.bnb.time_limit_seconds = 10;
    DumpResult result = SolveDump(log, params, options).value();
    std::vector<uint8_t> y(result.x.begin(), result.x.end());
    EXPECT_TRUE(problem.IsFeasible(y))
        << DumpSolverKindToString(kind);
    EXPECT_GT(result.retained, 0) << DumpSolverKindToString(kind);
    for (uint64_t v : result.x) EXPECT_LE(v, 1u);
  }
}

TEST(DumpTest, SolutionsPassAudit) {
  SearchLog log = SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(1.4, 0.1);
  for (DumpSolverKind kind : {DumpSolverKind::kSpe, DumpSolverKind::kGreedy,
                              DumpSolverKind::kLpRounding}) {
    DumpOptions options;
    options.solver = kind;
    DumpResult result = SolveDump(log, params, options).value();
    AuditReport audit = AuditSolution(log, params, result.x).value();
    EXPECT_TRUE(audit.satisfies_privacy)
        << DumpSolverKindToString(kind) << ": " << audit.ToString();
  }
}

TEST(DumpTest, DiversityRatioConsistent) {
  SearchLog log = SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  DumpResult result = SolveDump(log, params).value();
  EXPECT_NEAR(result.diversity_ratio, DiversityRatio(result.x), 1e-12);
  EXPECT_NEAR(result.diversity_ratio,
              static_cast<double>(result.retained) / log.num_pairs(), 1e-12);
}

TEST(DumpTest, ExactSolverOptimalOnTinyInstance) {
  SearchLog log = TwoUserSharedLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  DumpOptions options;
  options.solver = DumpSolverKind::kBranchAndBound;
  DumpResult result = SolveDump(log, params, options).value();
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.retained, 1);
}

TEST(DumpTest, SpeMatchesExactOnTinyInstance) {
  SearchLog log = TwoUserSharedLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  DumpOptions spe;
  spe.solver = DumpSolverKind::kSpe;
  DumpOptions exact;
  exact.solver = DumpSolverKind::kBranchAndBound;
  EXPECT_EQ(SolveDump(log, params, spe).value().retained,
            SolveDump(log, params, exact).value().retained);
}

TEST(DumpTest, DiversityMonotoneInBudget) {
  SearchLog log = SmallSyntheticLog();
  double prev = 0.0;
  for (double delta : {1e-3, 1e-2, 1e-1, 0.5}) {
    DumpResult result =
        SolveDump(log, PrivacyParams::FromEEpsilon(2.0, delta)).value();
    EXPECT_GE(result.diversity_ratio, prev - 1e-12) << "delta=" << delta;
    prev = result.diversity_ratio;
  }
}

TEST(DumpTest, WallSecondsPopulated) {
  SearchLog log = SmallSyntheticLog();
  DumpResult result =
      SolveDump(log, PrivacyParams::FromEEpsilon(2.0, 0.5)).value();
  EXPECT_GE(result.wall_seconds, 0.0);
}

TEST(DumpTest, SolverKindNames) {
  EXPECT_STREQ(DumpSolverKindToString(DumpSolverKind::kSpe), "SPE");
  EXPECT_STREQ(DumpSolverKindToString(DumpSolverKind::kGreedy), "Greedy");
  EXPECT_STREQ(DumpSolverKindToString(DumpSolverKind::kLpRounding),
               "LP-round");
  EXPECT_STREQ(DumpSolverKindToString(DumpSolverKind::kBranchAndBound),
               "B&B");
}

}  // namespace
}  // namespace privsan
