#include "core/spe.h"

#include <gtest/gtest.h>

#include "core/dump.h"
#include "lp/branch_and_bound.h"
#include "rng/random.h"
#include "test_fixtures.h"

namespace privsan {
namespace {

lp::BipProblem MakeProblem(int rows,
                           std::vector<std::vector<lp::SparseEntry>> cols,
                           std::vector<double> rhs) {
  lp::BipProblem problem;
  problem.num_rows = rows;
  problem.columns = std::move(cols);
  problem.rhs = std::move(rhs);
  return problem;
}

TEST(SpeTest, KeepsEverythingWhenFeasible) {
  lp::BipProblem p =
      MakeProblem(1, {{{0, 0.2}}, {{0, 0.3}}, {{0, 0.4}}}, {1.0});
  lp::BipSolution s = SolveSpe(p).value();
  EXPECT_EQ(s.selected, 3);
}

TEST(SpeTest, EliminatesLargestCoefficientFirst) {
  // Row load 1.5 > 1.0; the 0.9 entry must go first, which already fixes
  // the row: 0.6 <= 1.0.
  lp::BipProblem p =
      MakeProblem(1, {{{0, 0.9}}, {{0, 0.3}}, {{0, 0.3}}}, {1.0});
  lp::BipSolution s = SolveSpe(p).value();
  EXPECT_EQ(s.selected, 2);
  EXPECT_EQ(s.y[0], 0);
  EXPECT_EQ(s.y[1], 1);
  EXPECT_EQ(s.y[2], 1);
}

TEST(SpeTest, SkipsEntriesOfSatisfiedRows) {
  // Row 0 satisfied from the start; its big coefficient must not trigger
  // an elimination. Row 1 violated by small entries.
  lp::BipProblem p = MakeProblem(
      2, {{{0, 0.9}}, {{1, 0.4}}, {{1, 0.4}}, {{1, 0.4}}}, {1.0, 1.0});
  lp::BipSolution s = SolveSpe(p).value();
  EXPECT_EQ(s.y[0], 1);  // untouched: row 0 was never violated
  EXPECT_EQ(s.selected, 3);
  EXPECT_TRUE(p.IsFeasible(s.y));
}

TEST(SpeTest, TwoUserAnalyticCase) {
  // From the D-UMP derivation on TwoUserSharedLog with B = log 2:
  // eliminating q1 (bob's t = 2.5 is the max coefficient) makes both rows
  // feasible; retained = 1, which is also the exact optimum.
  SearchLog log = testing_fixtures::TwoUserSharedLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  lp::BipProblem problem = BuildDumpBip(log, params).value();
  lp::BipSolution s = SolveSpe(problem).value();
  EXPECT_EQ(s.selected, 1);
  PairId q2 = *log.FindPair("q2", "u2");
  EXPECT_EQ(s.y[q2], 1);
}

TEST(SpeTest, ResultAlwaysFeasible) {
  for (uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    SearchLog log = testing_fixtures::SmallSyntheticLog(seed);
    lp::BipProblem problem =
        BuildDumpBip(log, PrivacyParams::FromEEpsilon(1.4, 0.1)).value();
    lp::BipSolution s = SolveSpe(problem).value();
    EXPECT_TRUE(problem.IsFeasible(s.y)) << "seed " << seed;
  }
}

TEST(SpeTest, NeverBeatsExactOptimum) {
  Rng rng(99);
  for (int trial = 0; trial < 4; ++trial) {
    lp::BipProblem problem;
    problem.num_rows = 3;
    problem.rhs = {1.0, 1.2, 0.8};
    problem.columns.resize(10);
    for (auto& column : problem.columns) {
      for (int r = 0; r < 3; ++r) {
        if (rng.NextBool(0.6)) {
          column.push_back(lp::SparseEntry{r, rng.NextDouble(0.1, 0.9)});
        }
      }
    }
    lp::BipSolution spe = SolveSpe(problem).value();
    lp::LpModel model = problem.ToLpModel();
    ASSERT_TRUE(model.Validate().ok());
    lp::BnbResult exact = SolveBranchAndBound(model);
    ASSERT_TRUE(exact.proven_optimal);
    EXPECT_LE(static_cast<double>(spe.selected), exact.objective + 1e-6);
    EXPECT_TRUE(problem.IsFeasible(spe.y));
  }
}

TEST(SpeTest, MoreBudgetRetainsMorePairs) {
  SearchLog log = testing_fixtures::SmallSyntheticLog();
  int64_t prev = 0;
  for (double e_eps : {1.01, 1.1, 1.4, 2.0}) {
    lp::BipProblem problem =
        BuildDumpBip(log, PrivacyParams::FromEEpsilon(e_eps, 0.1)).value();
    lp::BipSolution s = SolveSpe(problem).value();
    EXPECT_GE(s.selected, prev);
    prev = s.selected;
  }
}

TEST(SpeTest, DeterministicTieBreak) {
  // Equal weights: elimination order must be deterministic (smaller index
  // eliminated first on ties), so repeated runs agree.
  lp::BipProblem p =
      MakeProblem(1, {{{0, 0.5}}, {{0, 0.5}}, {{0, 0.5}}}, {1.0});
  lp::BipSolution a = SolveSpe(p).value();
  lp::BipSolution b = SolveSpe(p).value();
  EXPECT_EQ(a.y, b.y);
  EXPECT_EQ(a.selected, 2);
}

}  // namespace
}  // namespace privsan
