#include "core/sampler.h"

#include <gtest/gtest.h>

#include <numeric>

#include "test_fixtures.h"

namespace privsan {
namespace {

using testing_fixtures::Figure1Preprocessed;
using testing_fixtures::SmallSyntheticLog;

TEST(SamplerTest, RejectsWrongSizeVector) {
  SearchLog log = Figure1Preprocessed();
  std::vector<uint64_t> wrong(log.num_pairs() + 1, 0);
  EXPECT_EQ(SampleOutput(log, wrong, 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SamplerTest, RejectsPositiveCountOnUniquePair) {
  SearchLog log = testing_fixtures::Figure1Log();  // has unique pairs
  std::vector<uint64_t> x(log.num_pairs(), 1);
  EXPECT_EQ(SampleOutput(log, x, 1).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SamplerTest, OutputSizeMatchesCounts) {
  SearchLog log = Figure1Preprocessed();
  std::vector<uint64_t> x = {3, 20, 4};  // aligned with log pair ids
  SearchLog output = SampleOutput(log, x, 42).value();
  EXPECT_EQ(output.total_clicks(),
            std::accumulate(x.begin(), x.end(), static_cast<uint64_t>(0)));
}

TEST(SamplerTest, PerPairTotalsExact) {
  SearchLog log = Figure1Preprocessed();
  std::vector<uint64_t> x(log.num_pairs(), 0);
  PairId google = *log.FindPair("google", "google.com");
  x[google] = 20;
  SearchLog output = SampleOutput(log, x, 7).value();
  PairId out_google = *output.FindPair("google", "google.com");
  EXPECT_EQ(output.pair_total(out_google), 20u);
  EXPECT_EQ(output.num_pairs(), 1u);
}

TEST(SamplerTest, OnlyInputUsersAppear) {
  SearchLog log = SmallSyntheticLog();
  std::vector<uint64_t> x(log.num_pairs(), 1);
  SearchLog output = SampleOutput(log, x, 11).value();
  for (UserId u = 0; u < output.num_users(); ++u) {
    EXPECT_TRUE(log.FindUser(output.user_name(u)).ok())
        << output.user_name(u);
  }
}

TEST(SamplerTest, OnlyHoldersAreSampled) {
  // A user with zero input count on a pair has trial probability zero and
  // must never be emitted for that pair.
  SearchLog log = Figure1Preprocessed();
  std::vector<uint64_t> x(log.num_pairs(), 0);
  PairId car = *log.FindPair("car price", "kbb.com");
  x[car] = 50;
  SearchLog output = SampleOutput(log, x, 3).value();
  PairId out_car = *output.FindPair("car price", "kbb.com");
  // Only 082 and 083 hold the pair; 081 must not appear.
  for (const UserCount& cell : output.TripletsOf(out_car)) {
    EXPECT_NE(output.user_name(cell.user), "081");
  }
}

TEST(SamplerTest, SchemaIsIdentical) {
  // Every output tuple must be (user, query, url, count) with names drawn
  // from the input's dictionaries — the paper's headline schema property.
  SearchLog log = SmallSyntheticLog();
  std::vector<uint64_t> x(log.num_pairs(), 2);
  SearchLog output = SampleOutput(log, x, 13).value();
  for (PairId p = 0; p < output.num_pairs(); ++p) {
    EXPECT_TRUE(log.FindPair(output.query_name(output.pair_query(p)),
                             output.url_name(output.pair_url(p)))
                    .ok());
  }
}

TEST(SamplerTest, DeterministicInSeed) {
  SearchLog log = SmallSyntheticLog();
  std::vector<uint64_t> x(log.num_pairs(), 1);
  SearchLog a = SampleOutput(log, x, 99).value();
  SearchLog b = SampleOutput(log, x, 99).value();
  EXPECT_EQ(a.num_tuples(), b.num_tuples());
  EXPECT_EQ(a.total_clicks(), b.total_clicks());
  for (UserId u = 0; u < a.num_users(); ++u) {
    UserId bu = *b.FindUser(a.user_name(u));
    for (const PairCount& cell : a.UserLogOf(u)) {
      PairId bp = *b.FindPair(a.query_name(a.pair_query(cell.pair)),
                              a.url_name(a.pair_url(cell.pair)));
      EXPECT_EQ(b.TripletCount(bp, bu), cell.count);
    }
  }
}

TEST(SamplerTest, DifferentSeedsDiffer) {
  SearchLog log = SmallSyntheticLog();
  std::vector<uint64_t> x(log.num_pairs(), 3);
  SearchLog a = SampleOutput(log, x, 1).value();
  SearchLog b = SampleOutput(log, x, 2).value();
  // Totals agree by construction; the per-user split should differ.
  EXPECT_EQ(a.total_clicks(), b.total_clicks());
  bool any_difference = a.num_tuples() != b.num_tuples();
  if (!any_difference) {
    for (UserId u = 0; u < a.num_users() && !any_difference; ++u) {
      auto found = b.FindUser(a.user_name(u));
      if (!found.ok()) {
        any_difference = true;
        break;
      }
      for (const PairCount& cell : a.UserLogOf(u)) {
        PairId bp = *b.FindPair(a.query_name(a.pair_query(cell.pair)),
                                a.url_name(a.pair_url(cell.pair)));
        if (b.TripletCount(bp, *found) != cell.count) {
          any_difference = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(SamplerTest, ExpectedCountsMatchMultinomialMeans) {
  // E[x_ijk] = x_ij * c_ijk / c_ij (Section 3.2). Average over many seeds.
  SearchLog log = Figure1Preprocessed();
  PairId google = *log.FindPair("google", "google.com");
  std::vector<uint64_t> x(log.num_pairs(), 0);
  x[google] = 20;

  constexpr int kRuns = 400;
  double sum_081 = 0.0;
  for (int run = 0; run < kRuns; ++run) {
    auto sampled = SampleTripletCounts(log, x, 1000 + run).value();
    auto triplets = log.TripletsOf(google);
    for (size_t i = 0; i < triplets.size(); ++i) {
      if (log.user_name(triplets[i].user) == "081") {
        sum_081 += static_cast<double>(sampled[google][i]);
      }
    }
  }
  // E = 20 * 15/39 = 7.69; SE over 400 runs ~ 0.11.
  EXPECT_NEAR(sum_081 / kRuns, 20.0 * 15.0 / 39.0, 0.5);
}

TEST(SamplerTest, ZeroCountsProduceEmptyOutput) {
  SearchLog log = Figure1Preprocessed();
  std::vector<uint64_t> x(log.num_pairs(), 0);
  SearchLog output = SampleOutput(log, x, 5).value();
  EXPECT_EQ(output.total_clicks(), 0u);
  EXPECT_EQ(output.num_pairs(), 0u);
}

TEST(SamplerTest, TripletCountsAlignWithInputRows) {
  SearchLog log = SmallSyntheticLog();
  std::vector<uint64_t> x(log.num_pairs(), 2);
  auto sampled = SampleTripletCounts(log, x, 21).value();
  ASSERT_EQ(sampled.size(), log.num_pairs());
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    EXPECT_EQ(sampled[p].size(), log.TripletsOf(p).size());
    EXPECT_EQ(std::accumulate(sampled[p].begin(), sampled[p].end(),
                              static_cast<uint64_t>(0)),
              x[p]);
  }
}

}  // namespace
}  // namespace privsan
