#include "log/search_log.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace privsan {
namespace {

using testing_fixtures::Figure1Log;

TEST(SearchLogBuilderTest, EmptyLog) {
  SearchLogBuilder builder;
  SearchLog log = builder.Build();
  EXPECT_EQ(log.num_users(), 0u);
  EXPECT_EQ(log.num_pairs(), 0u);
  EXPECT_EQ(log.num_tuples(), 0u);
  EXPECT_EQ(log.total_clicks(), 0u);
}

TEST(SearchLogBuilderTest, ZeroCountIgnored) {
  SearchLogBuilder builder;
  builder.Add("u", "q", "r", 0);
  SearchLog log = builder.Build();
  EXPECT_EQ(log.num_tuples(), 0u);
  EXPECT_EQ(log.num_users(), 0u);
}

TEST(SearchLogBuilderTest, DuplicateTuplesAreSummed) {
  SearchLogBuilder builder;
  builder.Add("u", "q", "r", 2);
  builder.Add("u", "q", "r", 3);
  SearchLog log = builder.Build();
  EXPECT_EQ(log.num_tuples(), 1u);
  EXPECT_EQ(log.total_clicks(), 5u);
  EXPECT_EQ(log.pair_total(0), 5u);
}

TEST(SearchLogBuilderTest, BuilderResetsAfterBuild) {
  SearchLogBuilder builder;
  builder.Add("u", "q", "r", 1);
  SearchLog first = builder.Build();
  SearchLog second = builder.Build();
  EXPECT_EQ(first.num_tuples(), 1u);
  EXPECT_EQ(second.num_tuples(), 0u);
}

TEST(SearchLogTest, Figure1Shape) {
  SearchLog log = Figure1Log();
  EXPECT_EQ(log.num_users(), 3u);
  EXPECT_EQ(log.num_queries(), 5u);
  EXPECT_EQ(log.num_urls(), 5u);
  EXPECT_EQ(log.num_pairs(), 5u);
  EXPECT_EQ(log.num_tuples(), 9u);
  EXPECT_EQ(log.total_clicks(), 53u);  // the paper's |D| before preprocessing
}

TEST(SearchLogTest, PairTotalsMatchFigure1) {
  SearchLog log = Figure1Log();
  EXPECT_EQ(log.pair_total(*log.FindPair("google", "google.com")), 39u);
  EXPECT_EQ(log.pair_total(*log.FindPair("book", "amazon.com")), 4u);
  EXPECT_EQ(log.pair_total(*log.FindPair("car price", "kbb.com")), 7u);
  EXPECT_EQ(
      log.pair_total(*log.FindPair("pregnancy test nyc", "medicinenet.com")),
      2u);
  EXPECT_EQ(
      log.pair_total(*log.FindPair("diabetes medecine", "walmart.com")), 1u);
}

TEST(SearchLogTest, TripletCountLookup) {
  SearchLog log = Figure1Log();
  PairId google = *log.FindPair("google", "google.com");
  UserId u081 = *log.FindUser("081");
  UserId u082 = *log.FindUser("082");
  UserId u083 = *log.FindUser("083");
  EXPECT_EQ(log.TripletCount(google, u081), 15u);
  EXPECT_EQ(log.TripletCount(google, u082), 7u);
  EXPECT_EQ(log.TripletCount(google, u083), 17u);
}

TEST(SearchLogTest, TripletCountZeroForNonHolder) {
  SearchLog log = Figure1Log();
  PairId preg = *log.FindPair("pregnancy test nyc", "medicinenet.com");
  UserId u082 = *log.FindUser("082");
  EXPECT_EQ(log.TripletCount(preg, u082), 0u);
}

TEST(SearchLogTest, TripletsOfSortedByUser) {
  SearchLog log = Figure1Log();
  PairId google = *log.FindPair("google", "google.com");
  auto triplets = log.TripletsOf(google);
  ASSERT_EQ(triplets.size(), 3u);
  EXPECT_LT(triplets[0].user, triplets[1].user);
  EXPECT_LT(triplets[1].user, triplets[2].user);
}

TEST(SearchLogTest, UserLogContents) {
  SearchLog log = Figure1Log();
  UserId u082 = *log.FindUser("082");
  auto user_log = log.UserLogOf(u082);
  EXPECT_EQ(user_log.size(), 3u);
  uint64_t total = 0;
  for (const PairCount& cell : user_log) total += cell.count;
  EXPECT_EQ(total, 10u);  // 7 + 2 + 1
}

TEST(SearchLogTest, PairUserCount) {
  SearchLog log = Figure1Log();
  EXPECT_EQ(log.PairUserCount(*log.FindPair("google", "google.com")), 3u);
  EXPECT_EQ(log.PairUserCount(*log.FindPair("book", "amazon.com")), 2u);
  EXPECT_EQ(log.PairUserCount(
                *log.FindPair("diabetes medecine", "walmart.com")),
            1u);
}

TEST(SearchLogTest, FindUserNotFound) {
  SearchLog log = Figure1Log();
  EXPECT_EQ(log.FindUser("unknown").status().code(), StatusCode::kNotFound);
}

TEST(SearchLogTest, FindPairNotFound) {
  SearchLog log = Figure1Log();
  EXPECT_FALSE(log.FindPair("google", "bing.com").ok());
  EXPECT_FALSE(log.FindPair("nope", "google.com").ok());
}

TEST(SearchLogTest, PairSupport) {
  SearchLog log = Figure1Log();
  PairId google = *log.FindPair("google", "google.com");
  EXPECT_DOUBLE_EQ(log.PairSupport(google), 39.0 / 53.0);
}

TEST(SearchLogTest, PairQueryUrlRoundTrip) {
  SearchLog log = Figure1Log();
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    const std::string& q = log.query_name(log.pair_query(p));
    const std::string& u = log.url_name(log.pair_url(p));
    EXPECT_EQ(*log.FindPair(q, u), p);
  }
}

TEST(SearchLogTest, SameQueryDifferentUrlsAreDistinctPairs) {
  SearchLogBuilder builder;
  builder.Add("a", "q", "url1", 1);
  builder.Add("b", "q", "url2", 1);
  SearchLog log = builder.Build();
  EXPECT_EQ(log.num_queries(), 1u);
  EXPECT_EQ(log.num_urls(), 2u);
  EXPECT_EQ(log.num_pairs(), 2u);
}

TEST(SearchLogTest, SameUrlDifferentQueriesAreDistinctPairs) {
  SearchLogBuilder builder;
  builder.Add("a", "q1", "url", 1);
  builder.Add("b", "q2", "url", 1);
  SearchLog log = builder.Build();
  EXPECT_EQ(log.num_pairs(), 2u);
}

TEST(SearchLogTest, CopyAndMove) {
  SearchLog log = Figure1Log();
  SearchLog copy = log;
  EXPECT_EQ(copy.total_clicks(), log.total_clicks());
  SearchLog moved = std::move(copy);
  EXPECT_EQ(moved.total_clicks(), log.total_clicks());
  EXPECT_EQ(moved.num_pairs(), 5u);
}

TEST(SearchLogTest, UserLogTotalsSumToTotalClicks) {
  SearchLog log = testing_fixtures::SmallSyntheticLog();
  uint64_t sum = 0;
  for (UserId u = 0; u < log.num_users(); ++u) {
    for (const PairCount& cell : log.UserLogOf(u)) sum += cell.count;
  }
  EXPECT_EQ(sum, log.total_clicks());
}

TEST(SearchLogTest, PairTotalsSumToTotalClicks) {
  SearchLog log = testing_fixtures::SmallSyntheticLog();
  uint64_t sum = 0;
  for (PairId p = 0; p < log.num_pairs(); ++p) sum += log.pair_total(p);
  EXPECT_EQ(sum, log.total_clicks());
}

TEST(SearchLogTest, TripletViewsAgreeWithUserViews) {
  SearchLog log = testing_fixtures::SmallSyntheticLog();
  for (PairId p = 0; p < log.num_pairs(); ++p) {
    for (const UserCount& cell : log.TripletsOf(p)) {
      bool found = false;
      for (const PairCount& uc : log.UserLogOf(cell.user)) {
        if (uc.pair == p) {
          EXPECT_EQ(uc.count, cell.count);
          found = true;
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

}  // namespace
}  // namespace privsan
