// The Markowitz LU must agree with the dense explicit inverse (both are
// BasisRep implementations of the same linear algebra), and its failure
// path must honor the repair contract: a singular Refactorize() leaves the
// previous factorization untouched, names every dependent column and every
// uncovered row, and swapping the dependent columns for unit columns of
// the uncovered rows must make the very next Refactorize() succeed — that
// swap is exactly the solver-side basis repair (lp/simplex.cc).
#include "lp/lu_factorization.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/sparse_matrix.h"
#include "rng/random.h"

namespace privsan {
namespace lp {
namespace {

// A random m x n matrix (n >= m) whose first m columns form a
// diagonally-dominated (hence nonsingular) basis. Columns m..m+m-1 are the
// unit columns e_0..e_{m-1} (stand-ins for row slacks), the rest random.
SparseMatrix MakeMatrixWithSlacks(Rng& rng, int m, int extra,
                                  double density) {
  std::vector<Triplet> triplets;
  for (int j = 0; j < m; ++j) {
    for (int i = 0; i < m; ++i) {
      if (i == j) {
        triplets.push_back(Triplet{i, j, 3.0 + rng.NextDouble()});
      } else if (rng.NextBool(density)) {
        triplets.push_back(Triplet{i, j, rng.NextDouble(-1.0, 1.0)});
      }
    }
  }
  for (int r = 0; r < m; ++r) {
    triplets.push_back(Triplet{r, m + r, 1.0});
  }
  for (int j = 2 * m; j < 2 * m + extra; ++j) {
    for (int i = 0; i < m; ++i) {
      if (rng.NextBool(density)) {
        triplets.push_back(Triplet{i, j, rng.NextDouble(-1.0, 1.0)});
      }
    }
  }
  return SparseMatrix(m, 2 * m + extra, std::move(triplets));
}

std::vector<double> RandomVector(Rng& rng, int m) {
  std::vector<double> v(m);
  for (double& x : v) x = rng.NextDouble(-2.0, 2.0);
  return v;
}

void ExpectNear(const std::vector<double>& a, const std::vector<double>& b,
                double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << "component " << i;
  }
}

// B * x for the basis columns selected by `basis` (slot i -> column).
std::vector<double> BasisTimes(const SparseMatrix& A,
                               const std::vector<int>& basis,
                               const std::vector<double>& x) {
  std::vector<double> out(A.rows(), 0.0);
  for (size_t i = 0; i < basis.size(); ++i) {
    A.AddColumnTo(basis[i], x[i], out);
  }
  return out;
}

TEST(LuFactorizationTest, FtranSolvesBasisSystem) {
  Rng rng(21);
  for (int m : {1, 4, 17, 50}) {
    SparseMatrix A = MakeMatrixWithSlacks(rng, m, 10, 0.3);
    std::vector<int> basis(m);
    for (int i = 0; i < m; ++i) basis[i] = i;

    LuFactorization lu(/*max_updates=*/50, /*growth_limit=*/8.0);
    ASSERT_TRUE(lu.Refactorize(A, basis));

    // The factorization may permute slot ownership; solving B x = v must
    // still reproduce v through the (possibly reordered) basis columns.
    std::vector<double> v = RandomVector(rng, m);
    std::vector<double> x = v;
    lu.Ftran(x);
    ExpectNear(BasisTimes(A, basis, x), v, 1e-9);
  }
}

TEST(LuFactorizationTest, BtranIsTransposeOfFtran) {
  // <Btran(u), v> == <u, Ftran(v)> for all u, v.
  Rng rng(22);
  const int m = 23;
  SparseMatrix A = MakeMatrixWithSlacks(rng, m, 5, 0.4);
  std::vector<int> basis(m);
  for (int i = 0; i < m; ++i) basis[i] = i;
  LuFactorization lu(50, 8.0);
  ASSERT_TRUE(lu.Refactorize(A, basis));

  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> u = RandomVector(rng, m);
    std::vector<double> v = RandomVector(rng, m);
    std::vector<double> bu = u;
    lu.Btran(bu);
    std::vector<double> fv = v;
    lu.Ftran(fv);
    double lhs = 0.0, rhs = 0.0;
    for (int i = 0; i < m; ++i) {
      lhs += bu[i] * v[i];
      rhs += u[i] * fv[i];
    }
    EXPECT_NEAR(lhs, rhs, 1e-8);
  }
}

TEST(LuFactorizationTest, AgreesWithDenseBasisAcrossUpdates) {
  Rng rng(23);
  const int m = 30;
  SparseMatrix A = MakeMatrixWithSlacks(rng, m, 20, 0.3);

  std::vector<int> lu_basis(m), dense_basis(m);
  for (int i = 0; i < m; ++i) lu_basis[i] = dense_basis[i] = i;

  LuFactorization lu(100, 8.0);
  DenseBasis dense(100);
  ASSERT_TRUE(lu.Refactorize(A, lu_basis));
  ASSERT_TRUE(dense.Refactorize(A, dense_basis));

  // Interleave pivots: bring in nonbasic columns one at a time, choosing
  // the leaving slot by the largest FTRAN component (guaranteed stable).
  // Both representations must stay in lockstep on FTRAN — but the LU
  // permutes slots at refactorization, so comparisons go through the basis
  // mapping: solve against B, not against slot order.
  for (int pivot_round = 0; pivot_round < 15; ++pivot_round) {
    const int entering = 2 * m + pivot_round;

    std::vector<double> rhs_probe = RandomVector(rng, m);
    std::vector<double> xl = rhs_probe, xd = rhs_probe;
    lu.Ftran(xl);
    dense.Ftran(xd);
    ExpectNear(BasisTimes(A, lu_basis, xl), BasisTimes(A, dense_basis, xd),
               1e-7);

    std::vector<double> wl(m, 0.0);
    for (const SparseEntry& e : A.Column(entering)) wl[e.index] = e.value;
    std::vector<double> wd = wl;
    lu.Ftran(wl);
    dense.Ftran(wd);

    int slot_l = 0;
    for (int i = 1; i < m; ++i) {
      if (std::abs(wl[i]) > std::abs(wl[slot_l])) slot_l = i;
    }
    // The same *variable* must leave in the dense rep.
    const int leaving_var = lu_basis[slot_l];
    int slot_d = -1;
    for (int i = 0; i < m; ++i) {
      if (dense_basis[i] == leaving_var) slot_d = i;
    }
    ASSERT_GE(slot_d, 0);
    EXPECT_NEAR(std::abs(wl[slot_l]), std::abs(wd[slot_d]), 1e-6);

    ASSERT_TRUE(lu.Update(wl, slot_l, 1e-9));
    ASSERT_TRUE(dense.Update(wd, slot_d, 1e-9));
    lu_basis[slot_l] = entering;
    dense_basis[slot_d] = entering;
  }
  EXPECT_EQ(lu.updates_since_refactor(), 15);
}

TEST(LuFactorizationTest, AgreesWithEtaFileOnRandomBases) {
  // LU and eta file factor the *same* B: FTRAN/BTRAN must agree through
  // the respective slot mappings on many random sparse bases.
  Rng rng(24);
  for (int trial = 0; trial < 20; ++trial) {
    const int m = 5 + static_cast<int>(rng.NextDouble(0.0, 35.0));
    SparseMatrix A = MakeMatrixWithSlacks(rng, m, 4, 0.25);
    std::vector<int> lu_basis(m), eta_basis(m);
    for (int i = 0; i < m; ++i) lu_basis[i] = eta_basis[i] = i;

    LuFactorization lu(50, 8.0);
    EtaFile eta(50, 8.0);
    ASSERT_TRUE(lu.Refactorize(A, lu_basis));
    ASSERT_TRUE(eta.Refactorize(A, eta_basis));

    std::vector<double> v = RandomVector(rng, m);
    std::vector<double> xl = v, xe = v;
    lu.Ftran(xl);
    eta.Ftran(xe);
    ExpectNear(BasisTimes(A, lu_basis, xl), BasisTimes(A, eta_basis, xe),
               1e-8);
  }
}

TEST(LuFactorizationTest, SingularBasisReportsDependencyAndKeepsState) {
  Rng rng(25);
  const int m = 12;
  SparseMatrix A = MakeMatrixWithSlacks(rng, m, 0, 0.3);
  std::vector<int> good(m);
  for (int i = 0; i < m; ++i) good[i] = i;

  LuFactorization lu(50, 8.0);
  ASSERT_TRUE(lu.Refactorize(A, good));
  const size_t nnz_before = lu.factor_nonzeros();
  std::vector<double> probe = RandomVector(rng, m);
  std::vector<double> reference = probe;
  lu.Ftran(reference);

  // A basis holding the same slack column twice is singular.
  std::vector<int> singular = good;
  int slack_slot = -1;
  for (int i = 0; i < m; ++i) {
    if (good[i] == m + 0) slack_slot = i;  // slot owning e_0, if any
  }
  // `good` was permuted by the factorization; overwrite two slots with the
  // same unit column to force the dependency regardless.
  singular[0] = m + 1;
  singular[1] = m + 1;
  (void)slack_slot;
  std::vector<int> singular_copy = singular;
  EXPECT_FALSE(lu.Refactorize(A, singular));

  // Failure leaves everything untouched: the basis argument, the previous
  // factors, and the solves against them.
  EXPECT_EQ(singular, singular_copy);
  EXPECT_EQ(lu.factor_nonzeros(), nnz_before);
  std::vector<double> again = probe;
  lu.Ftran(again);
  ExpectNear(again, reference, 0.0);

  // And the failure is attributed: equally many dependent columns and
  // uncovered rows, all of them real basis members / row indices.
  const BasisRep::SingularInfo& info = lu.singular_info();
  ASSERT_FALSE(info.empty());
  EXPECT_EQ(info.dependent_columns.size(), info.unpivoted_rows.size());
  for (int r : info.unpivoted_rows) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, m);
  }
}

TEST(LuFactorizationTest, RandomizedSingularBasesRepairWithRowSlacks) {
  // The repair contract end to end, randomized: duplicate a few basis
  // columns (making the basis singular), then apply exactly the solver's
  // repair — each dependent column is replaced by the unit column of an
  // uncovered row — and the next Refactorize must succeed.
  Rng rng(26);
  for (int trial = 0; trial < 25; ++trial) {
    const int m = 6 + static_cast<int>(rng.NextDouble(0.0, 24.0));
    SparseMatrix A = MakeMatrixWithSlacks(rng, m, 0, 0.3);
    std::vector<int> basis(m);
    for (int i = 0; i < m; ++i) basis[i] = i;
    const int duplicates = 1 + static_cast<int>(rng.NextDouble(0.0, 2.9));
    for (int d = 0; d < duplicates; ++d) {
      // Overwrite slot 2d+1 with a copy of slot 2d's column.
      if (2 * d + 1 < m) basis[2 * d + 1] = basis[2 * d];
    }

    LuFactorization lu(50, 8.0);
    if (lu.Refactorize(A, basis)) continue;  // no duplicate landed

    const BasisRep::SingularInfo info = lu.singular_info();
    ASSERT_FALSE(info.empty());
    ASSERT_EQ(info.dependent_columns.size(), info.unpivoted_rows.size());

    // Solver-side repair: dependent columns out, uncovered rows' unit
    // columns (m + r in this matrix) in.
    std::vector<int> repaired = basis;
    for (size_t k = 0; k < info.dependent_columns.size(); ++k) {
      bool swapped = false;
      for (int& v : repaired) {
        if (v == info.dependent_columns[k]) {
          v = m + info.unpivoted_rows[k];
          swapped = true;
          break;
        }
      }
      ASSERT_TRUE(swapped);
    }
    EXPECT_TRUE(lu.Refactorize(A, repaired))
        << "repair with row slacks must make the basis factorizable "
           "(m=" << m << ", trial " << trial << ")";
  }
}

TEST(LuFactorizationTest, ForrestTomlinMatchesProductFormAcrossUpdates) {
  // The two update schemes absorb the same pivots into the same fresh
  // factors; FTRAN and BTRAN must stay in lockstep across a long run.
  Rng rng(28);
  const int m = 30;
  SparseMatrix A = MakeMatrixWithSlacks(rng, m, 20, 0.3);

  std::vector<int> ft_basis(m), pfi_basis(m);
  for (int i = 0; i < m; ++i) ft_basis[i] = pfi_basis[i] = i;

  LuFactorization ft(100, 8.0, 0.1, LuUpdateKind::kForrestTomlin);
  LuFactorization pfi(100, 8.0, 0.1, LuUpdateKind::kProductForm);
  ASSERT_TRUE(ft.Refactorize(A, ft_basis));
  ASSERT_TRUE(pfi.Refactorize(A, pfi_basis));

  for (int pivot_round = 0; pivot_round < 15; ++pivot_round) {
    const int entering = 2 * m + pivot_round;

    std::vector<double> probe = RandomVector(rng, m);
    std::vector<double> xf = probe, xp = probe;
    ft.Ftran(xf);
    pfi.Ftran(xp);
    ExpectNear(BasisTimes(A, ft_basis, xf), BasisTimes(A, pfi_basis, xp),
               1e-7);
    std::vector<double> yf = probe, yp = probe;
    ft.Btran(yf);
    pfi.Btran(yp);
    // BTRAN targets row space: same basis order here, so compare directly.
    ExpectNear(yf, yp, 1e-7);

    std::vector<double> wf(m, 0.0);
    for (const SparseEntry& e : A.Column(entering)) wf[e.index] = e.value;
    std::vector<double> wp = wf;
    ft.Ftran(wf);
    pfi.Ftran(wp);

    int slot_f = 0;
    for (int i = 1; i < m; ++i) {
      if (std::abs(wf[i]) > std::abs(wf[slot_f])) slot_f = i;
    }
    const int leaving_var = ft_basis[slot_f];
    int slot_p = -1;
    for (int i = 0; i < m; ++i) {
      if (pfi_basis[i] == leaving_var) slot_p = i;
    }
    ASSERT_GE(slot_p, 0);

    ASSERT_TRUE(ft.Update(wf, slot_f, 1e-9));
    ASSERT_TRUE(pfi.Update(wp, slot_p, 1e-9));
    ft_basis[slot_f] = entering;
    pfi_basis[slot_p] = entering;
  }
  EXPECT_EQ(ft.updates_since_refactor(), 15);
  EXPECT_EQ(pfi.updates_since_refactor(), 15);
}

TEST(LuFactorizationTest, ForrestTomlinRejectsSmallSpikePivotUntouched) {
  // det(B') = det(B) * w[slot] means the FT replacement diagonal is
  // d = w[slot] * U_tt: with a small accepted pivot U_tt in the factors, a
  // healthy-looking FTRAN pivot (|w[slot]| >> pivot_tol) can still produce
  // |d| <= pivot_tol. The update must refuse in compute-then-commit
  // fashion: report failure, mutate nothing, and keep accepting good
  // updates afterwards.
  const int m = 2;
  std::vector<Triplet> triplets = {
      Triplet{0, 0, 1.0},      // basis col 0 = e_0
      Triplet{1, 1, 1e-4},     // basis col 1 = 1e-4 * e_1  (small U pivot)
      Triplet{1, 2, 1e-6},     // entering col: d = 1e-2 * 1e-4 = 1e-6
      Triplet{1, 3, 1.0},      // good entering col: d = 1e4 * 1e-4 = 1
  };
  SparseMatrix A(m, 4, std::move(triplets));
  std::vector<int> basis = {0, 1};

  LuFactorization lu(50, 8.0, 0.1, LuUpdateKind::kForrestTomlin);
  ASSERT_TRUE(lu.Refactorize(A, basis));

  std::vector<double> probe = {0.7, -1.3};
  std::vector<double> reference = probe;
  lu.Ftran(reference);

  // FTRAN of column 2: w = B^-1 a = (0, 1e-2) — passes the |w[slot]| quick
  // reject at pivot_tol = 1e-4, fails on the eliminated diagonal.
  std::vector<double> w = {0.0, 0.0};
  for (const SparseEntry& e : A.Column(2)) w[e.index] = e.value;
  lu.Ftran(w);
  ASSERT_GT(std::abs(w[1]), 1e-4);
  EXPECT_FALSE(lu.Update(w, /*slot=*/1, /*pivot_tol=*/1e-4));

  // Rejection left the factorization fully intact.
  EXPECT_EQ(lu.updates_since_refactor(), 0);
  std::vector<double> again = probe;
  lu.Ftran(again);
  ExpectNear(again, reference, 0.0);

  // And a well-pivoted update still goes through and solves correctly.
  std::fill(w.begin(), w.end(), 0.0);
  for (const SparseEntry& e : A.Column(3)) w[e.index] = e.value;
  lu.Ftran(w);
  ASSERT_TRUE(lu.Update(w, /*slot=*/1, /*pivot_tol=*/1e-4));
  basis[1] = 3;
  std::vector<double> x = probe;
  lu.Ftran(x);
  ExpectNear(BasisTimes(A, basis, x), probe, 1e-9);
}

TEST(LuFactorizationTest, ForrestTomlinFillStaysBelowProductForm) {
  // The point of FT: over a long update run the data an FTRAN traverses
  // grows by (roughly) the spike fill, while product-form appends a whole
  // eta column per pivot. Fill is deterministic for the fixed seed.
  Rng rng(29);
  const int m = 40;
  SparseMatrix A = MakeMatrixWithSlacks(rng, m, 30, 0.3);
  std::vector<int> ft_basis(m), pfi_basis(m);
  for (int i = 0; i < m; ++i) ft_basis[i] = pfi_basis[i] = i;

  LuFactorization ft(100, 1e9, 0.1, LuUpdateKind::kForrestTomlin);
  LuFactorization pfi(100, 1e9, 0.1, LuUpdateKind::kProductForm);
  ASSERT_TRUE(ft.Refactorize(A, ft_basis));
  ASSERT_TRUE(pfi.Refactorize(A, pfi_basis));
  const size_t fresh = ft.nonzeros();
  ASSERT_EQ(pfi.nonzeros(), fresh);

  std::vector<double> w(m);
  for (int k = 0; k < 30; ++k) {
    const int entering = 2 * m + k;
    std::fill(w.begin(), w.end(), 0.0);
    for (const SparseEntry& e : A.Column(entering)) w[e.index] = e.value;
    std::vector<double> wp = w;
    ft.Ftran(w);
    pfi.Ftran(wp);
    int slot = 0;
    for (int i = 1; i < m; ++i) {
      if (std::abs(w[i]) > std::abs(w[slot])) slot = i;
    }
    const int leaving_var = ft_basis[slot];
    int slot_p = -1;
    for (int i = 0; i < m; ++i) {
      if (pfi_basis[i] == leaving_var) slot_p = i;
    }
    ASSERT_GE(slot_p, 0);
    ASSERT_TRUE(ft.Update(w, slot, 1e-9));
    ASSERT_TRUE(pfi.Update(wp, slot_p, 1e-9));
    ft_basis[slot] = entering;
    pfi_basis[slot_p] = entering;
  }
  const int64_t ft_growth = static_cast<int64_t>(ft.nonzeros()) -
                            static_cast<int64_t>(fresh);
  const int64_t pfi_growth = static_cast<int64_t>(pfi.nonzeros()) -
                             static_cast<int64_t>(fresh);
  EXPECT_LT(ft_growth, pfi_growth / 2)
      << "FT fill " << ft_growth << " vs PFI eta growth " << pfi_growth;
}

TEST(LuFactorizationTest, GrowthTriggersRefactor) {
  Rng rng(27);
  const int m = 10;
  SparseMatrix A = MakeMatrixWithSlacks(rng, m, 20, 0.5);
  std::vector<int> basis(m);
  for (int i = 0; i < m; ++i) basis[i] = i;
  LuFactorization lu(/*max_updates=*/5, /*growth_limit=*/64.0);
  ASSERT_TRUE(lu.Refactorize(A, basis));
  EXPECT_FALSE(lu.ShouldRefactor());

  std::vector<double> w(m);
  for (int k = 0; k < 5; ++k) {
    for (const SparseEntry& e : A.Column(2 * m + k)) w[e.index] = e.value;
    lu.Ftran(w);
    int slot = 0;
    for (int i = 1; i < m; ++i) {
      if (std::abs(w[i]) > std::abs(w[slot])) slot = i;
    }
    ASSERT_TRUE(lu.Update(w, slot, 1e-9));
    basis[slot] = 2 * m + k;
    std::fill(w.begin(), w.end(), 0.0);
  }
  EXPECT_TRUE(lu.ShouldRefactor());  // max_updates hit
  ASSERT_TRUE(lu.Refactorize(A, basis));
  EXPECT_FALSE(lu.ShouldRefactor());
}

}  // namespace
}  // namespace lp
}  // namespace privsan
