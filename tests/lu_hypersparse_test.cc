// The hyper-sparse Gilbert–Peierls solves (FtranSparse/BtranSparse) and the
// pattern-driven Forrest–Tomlin update (UpdateSparse) promise *bit* equality
// with the dense kernel — the simplex driver mixes sparse and dense solves
// freely, and the result caches compare objectives with operator==, so any
// tolerance here would be a lie. Every comparison in this file is exact
// (operator==, which treats -0.0 == +0.0 — the one divergence the contract
// permits).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/lu_factorization.h"
#include "lp/sparse_matrix.h"
#include "rng/random.h"

namespace privsan {
namespace lp {
namespace {

// A random basis whose hyper-sparsity varies with `slack_fraction`: columns
// are unit slacks with that probability, sparse diagonally-dominated
// structural columns otherwise. slack_fraction 0 is the percolating dense
// regime (every solve falls back), 0.9 the hyper-sparse one.
SparseMatrix MakeBasis(Rng& rng, int m, int extra, double slack_fraction,
                       double density) {
  std::vector<Triplet> triplets;
  for (int j = 0; j < m; ++j) {
    triplets.push_back(Triplet{j, j, 3.0 + rng.NextDouble()});
    if (rng.NextBool(slack_fraction)) continue;
    for (int i = 0; i < m; ++i) {
      if (i != j && rng.NextBool(density)) {
        triplets.push_back(Triplet{i, j, rng.NextDouble(-1.0, 1.0)});
      }
    }
  }
  for (int j = m; j < m + extra; ++j) {
    triplets.push_back(Triplet{j % m, j, 1.0 + rng.NextDouble()});
    for (int i = 0; i < m; ++i) {
      if (rng.NextBool(density)) {
        triplets.push_back(Triplet{i, j, rng.NextDouble(-1.0, 1.0)});
      }
    }
  }
  return SparseMatrix(m, m + extra, std::move(triplets));
}

// Seeds `v` with ~density * m random nonzeros (at least one).
void SeedSparse(Rng& rng, int m, double density, SparseVector& v) {
  v.Clear();
  const int count =
      std::max(1, static_cast<int>(density * static_cast<double>(m)));
  for (int k = 0; k < count; ++k) {
    const int i = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(m)));
    v.values[i] = rng.NextDouble(-2.0, 2.0);
    // Intentionally may push duplicates: the kernel contract says input
    // patterns can hold them, and the dedup must not change the numerics.
    v.pattern.push_back(i);
  }
}

// Exact equality plus the SparseVector invariant: when the pattern is
// valid, every index outside it holds exactly +0.0 and the pattern is
// sorted and duplicate-free.
void ExpectBitEqual(const SparseVector& sparse,
                    const std::vector<double>& dense) {
  ASSERT_EQ(sparse.values.size(), dense.size());
  for (size_t i = 0; i < dense.size(); ++i) {
    EXPECT_EQ(sparse.values[i], dense[i]) << "component " << i;
  }
  if (!sparse.pattern_valid) return;
  std::vector<bool> listed(dense.size(), false);
  int prev = -1;
  for (int i : sparse.pattern) {
    EXPECT_GT(i, prev) << "pattern not sorted/deduped at " << i;
    prev = i;
    listed[i] = true;
  }
  for (size_t i = 0; i < dense.size(); ++i) {
    if (!listed[i]) {
      EXPECT_TRUE(sparse.values[i] == 0.0 && !std::signbit(sparse.values[i]))
          << "unlisted component " << i << " not +0.0";
    }
  }
}

// The core property test: 200 random bases spanning dense-to-hyper-sparse
// regimes, RHS densities from 1/m to full, FTRAN and BTRAN both, updates
// applied in lockstep — the sparse rep must match the threshold-0 (dense
// kernel) rep bit for bit on every solve. Threshold 1.0 keeps the reach
// from ever falling back, so the sparse numeric pass itself is what's
// exercised; a second rep at the production default 0.1 checks the
// mid-solve fallback splice too.
TEST(LuHypersparseTest, SparseMatchesDenseBitForBitAcrossRandomBases) {
  Rng rng(991);
  const double kRhsDensities[] = {0.0, 0.05, 0.2, 1.0};  // 0.0 -> 1 nonzero
  for (int trial = 0; trial < 200; ++trial) {
    const int m = 5 + static_cast<int>(rng.NextBounded(46));
    const double slack_fraction = rng.NextDouble();
    const double density = rng.NextDouble(0.02, 0.3);
    const int updates = static_cast<int>(rng.NextBounded(6));
    SparseMatrix A = MakeBasis(rng, m, updates + 1, slack_fraction, density);
    std::vector<int> basis(m);
    for (int i = 0; i < m; ++i) basis[i] = i;

    const LuUpdateKind kind = trial % 2 == 0 ? LuUpdateKind::kForrestTomlin
                                             : LuUpdateKind::kProductForm;
    LuFactorization dense(updates + 1, 1e9, 0.1, kind,
                          /*hypersparse_threshold=*/0.0);
    LuFactorization sparse(updates + 1, 1e9, 0.1, kind,
                           /*hypersparse_threshold=*/1.0);
    LuFactorization clipped(updates + 1, 1e9, 0.1, kind,
                            /*hypersparse_threshold=*/0.1);
    std::vector<int> b1 = basis, b2 = basis, b3 = basis;
    ASSERT_TRUE(dense.Refactorize(A, b1));
    ASSERT_TRUE(sparse.Refactorize(A, b2));
    ASSERT_TRUE(clipped.Refactorize(A, b3));
    ASSERT_EQ(b1, b2);
    ASSERT_EQ(b1, b3);

    SparseVector sv, cv;
    sv.Reset(m);
    cv.Reset(m);
    for (int k = 0; k <= updates; ++k) {
      const double rhs_density = kRhsDensities[(trial + k) % 4];
      // One seed, three identical copies — the RHS must be bit-identical.
      Rng seed_rng(rng.NextUint64());
      Rng seed_rng2 = seed_rng, seed_rng3 = seed_rng;
      SeedSparse(seed_rng, m, rhs_density, sv);
      std::vector<double> dv = sv.values;
      SeedSparse(seed_rng2, m, rhs_density, cv);

      if (k % 2 == 0) {
        dense.Ftran(dv);
        sparse.FtranSparse(sv);
        clipped.FtranSparse(cv);
      } else {
        dense.Btran(dv);
        sparse.BtranSparse(sv);
        clipped.BtranSparse(cv);
      }
      ExpectBitEqual(sv, dv);
      ExpectBitEqual(cv, dv);

      if (k == updates) break;
      // Lockstep update: FTRAN the entering column through all three reps,
      // pivot at the largest magnitude (identical in all three by the
      // equality just proven), register.
      SeedSparse(seed_rng3, m, rhs_density, cv);  // reuse cv as scratch
      cv.Clear();
      for (const SparseEntry& e : A.Column(m + k)) {
        cv.values[e.index] = e.value;
        cv.pattern.push_back(e.index);
      }
      std::vector<double> w = cv.values;
      SparseVector w2 = cv;
      dense.Ftran(w);
      sparse.FtranSparse(cv);
      clipped.FtranSparse(w2);
      int slot = 0;
      for (int i = 1; i < m; ++i) {
        if (std::abs(w[i]) > std::abs(w[slot])) slot = i;
      }
      const bool ok_dense = dense.Update(w, slot, 1e-9);
      const bool ok_sparse = sparse.UpdateSparse(cv, slot, 1e-9);
      const bool ok_clipped = clipped.UpdateSparse(w2, slot, 1e-9);
      ASSERT_EQ(ok_dense, ok_sparse);
      ASSERT_EQ(ok_dense, ok_clipped);
      if (!ok_dense) break;
    }
  }
}

// Crafted reach topology: a diamond with a long chain hanging off one arm,
//
//   col 0 hits rows {1, 2}; col 1 hits row 3; col 2 hits row 3 (diamond
//   joins at 3); col 3 hits row 4; col 4 hits row 5 (the chain).
//   Columns 6..9 are slacks, untouched by any of it.
//
// An FTRAN seeded at row 0 must reach exactly rows {0,1,2,3,4,5} — the DFS
// has to follow both diamond arms, visit the join once, and walk the chain
// to its end — and must leave the slack rows 6..9 exactly +0.0 with no
// pattern entries. A seed at row 4 reaches only {4, 5}.
TEST(LuHypersparseTest, DiamondAndChainReach) {
  const int m = 10;
  std::vector<Triplet> triplets;
  for (int j = 0; j < m; ++j) triplets.push_back(Triplet{j, j, 4.0});
  triplets.push_back(Triplet{1, 0, 0.5});
  triplets.push_back(Triplet{2, 0, -0.5});
  triplets.push_back(Triplet{3, 1, 0.25});
  triplets.push_back(Triplet{3, 2, 0.25});
  triplets.push_back(Triplet{4, 3, 0.5});
  triplets.push_back(Triplet{5, 4, 0.5});
  // One entering column for the staleness check below.
  triplets.push_back(Triplet{0, m, 1.0});
  triplets.push_back(Triplet{4, m, 0.5});
  SparseMatrix A(m, m + 1, std::move(triplets));
  std::vector<int> basis(m);
  for (int i = 0; i < m; ++i) basis[i] = i;

  LuFactorization dense(4, 1e9, 0.1, LuUpdateKind::kForrestTomlin, 0.0);
  LuFactorization sparse(4, 1e9, 0.1, LuUpdateKind::kForrestTomlin, 1.0);
  std::vector<int> b1 = basis, b2 = basis;
  ASSERT_TRUE(dense.Refactorize(A, b1));
  ASSERT_TRUE(sparse.Refactorize(A, b2));

  SparseVector v;
  v.Reset(m);
  v.values[0] = 1.0;
  v.pattern.push_back(0);
  std::vector<double> dv = v.values;
  sparse.FtranSparse(v);
  dense.Ftran(dv);
  ExpectBitEqual(v, dv);
  ASSERT_TRUE(v.pattern_valid);
  EXPECT_EQ(v.pattern, (std::vector<int>{0, 1, 2, 3, 4, 5}));

  v.Clear();
  v.values[4] = 1.0;
  v.pattern.push_back(4);
  dv.assign(m, 0.0);
  dv[4] = 1.0;
  sparse.FtranSparse(v);
  dense.Ftran(dv);
  ExpectBitEqual(v, dv);
  ASSERT_TRUE(v.pattern_valid);
  EXPECT_EQ(v.pattern, (std::vector<int>{4, 5}));

  // A Forrest–Tomlin update rewrites U rows; the sparse kernel's static
  // occupancy lists go stale (they may list vacated entries but never miss
  // live ones). Solves after the update must still match dense exactly.
  SparseVector w;
  w.Reset(m);
  for (const SparseEntry& e : A.Column(m)) {
    w.values[e.index] = e.value;
    w.pattern.push_back(e.index);
  }
  std::vector<double> wd = w.values;
  dense.Ftran(wd);
  sparse.FtranSparse(w);
  int slot = 0;
  for (int i = 1; i < m; ++i) {
    if (std::abs(wd[i]) > std::abs(wd[slot])) slot = i;
  }
  ASSERT_TRUE(dense.Update(wd, slot, 1e-9));
  ASSERT_TRUE(sparse.UpdateSparse(w, slot, 1e-9));
  for (int seed = 0; seed < m; ++seed) {
    v.Clear();
    v.values[seed] = 1.0;
    v.pattern.push_back(seed);
    dv.assign(m, 0.0);
    dv[seed] = 1.0;
    sparse.FtranSparse(v);
    dense.Ftran(dv);
    ExpectBitEqual(v, dv);
    v.Clear();
    v.values[seed] = 1.0;
    v.pattern.push_back(seed);
    dv.assign(m, 0.0);
    dv[seed] = 1.0;
    sparse.BtranSparse(v);
    dense.Btran(dv);
    ExpectBitEqual(v, dv);
  }
}

// Forrest–Tomlin eta skip: after an update, a solve whose reach never
// touches the eta's pivot row must skip it (the eta term is zero) and still
// match the dense kernel, which always applies every eta. The slack block
// rows 6..9 are disconnected from the updated component, so unit solves
// seeded there exercise exactly the skip path — and their reach must stay
// confined to the seed row.
TEST(LuHypersparseTest, UpdateEtaSkipKeepsUntouchedRowsExact) {
  const int m = 10;
  std::vector<Triplet> triplets;
  for (int j = 0; j < m; ++j) triplets.push_back(Triplet{j, j, 4.0});
  triplets.push_back(Triplet{1, 0, 0.5});
  triplets.push_back(Triplet{2, 1, 0.5});
  triplets.push_back(Triplet{0, m, 1.0});
  triplets.push_back(Triplet{2, m, 0.5});
  SparseMatrix A(m, m + 1, std::move(triplets));
  std::vector<int> basis(m);
  for (int i = 0; i < m; ++i) basis[i] = i;

  LuFactorization dense(4, 1e9, 0.1, LuUpdateKind::kForrestTomlin, 0.0);
  LuFactorization sparse(4, 1e9, 0.1, LuUpdateKind::kForrestTomlin, 1.0);
  std::vector<int> b1 = basis, b2 = basis;
  ASSERT_TRUE(dense.Refactorize(A, b1));
  ASSERT_TRUE(sparse.Refactorize(A, b2));

  SparseVector w;
  w.Reset(m);
  for (const SparseEntry& e : A.Column(m)) {
    w.values[e.index] = e.value;
    w.pattern.push_back(e.index);
  }
  std::vector<double> wd = w.values;
  dense.Ftran(wd);
  sparse.FtranSparse(w);
  int slot = 0;
  for (int i = 1; i < m; ++i) {
    if (std::abs(wd[i]) > std::abs(wd[slot])) slot = i;
  }
  ASSERT_TRUE(dense.Update(wd, slot, 1e-9));
  ASSERT_TRUE(sparse.UpdateSparse(w, slot, 1e-9));

  SparseVector v;
  v.Reset(m);
  std::vector<double> dv;
  for (int seed = 6; seed < m; ++seed) {
    v.Clear();
    v.values[seed] = 1.0;
    v.pattern.push_back(seed);
    dv.assign(m, 0.0);
    dv[seed] = 1.0;
    sparse.FtranSparse(v);
    dense.Ftran(dv);
    ExpectBitEqual(v, dv);
    ASSERT_TRUE(v.pattern_valid);
    EXPECT_EQ(v.pattern, std::vector<int>{seed});
  }
}

// kernel_stats accounting: solves with a valid pattern count; with
// threshold 1.0 none may fall back (hits == solves, reach fractions in
// (0, 1]); with threshold 0 the sparse entry points run dense and count
// misses with reach 1.0.
TEST(LuHypersparseTest, KernelStatsAccounting) {
  Rng rng(77);
  const int m = 30;
  SparseMatrix A = MakeBasis(rng, m, 0, 0.7, 0.1);
  std::vector<int> basis(m);
  for (int i = 0; i < m; ++i) basis[i] = i;

  LuFactorization sparse(4, 1e9, 0.1, LuUpdateKind::kForrestTomlin, 1.0);
  LuFactorization off(4, 1e9, 0.1, LuUpdateKind::kForrestTomlin, 0.0);
  std::vector<int> b1 = basis, b2 = basis;
  ASSERT_TRUE(sparse.Refactorize(A, b1));
  ASSERT_TRUE(off.Refactorize(A, b2));
  EXPECT_EQ(sparse.kernel_stats().sparse_solves, 0u);

  SparseVector v;
  v.Reset(m);
  for (int k = 0; k < 10; ++k) {
    v.Clear();
    v.values[k] = 1.0;
    v.pattern.push_back(k);
    if (k % 2 == 0) {
      sparse.FtranSparse(v);
    } else {
      sparse.BtranSparse(v);
    }
  }
  BasisRep::KernelStats ks = sparse.kernel_stats();
  EXPECT_EQ(ks.sparse_solves, 10u);
  EXPECT_EQ(ks.sparse_hits, 10u);  // threshold 1.0: fallback impossible
  EXPECT_GT(ks.reach_fraction_sum, 0.0);
  EXPECT_LE(ks.reach_fraction_sum, 10.0);

  // A dense call (no pattern) is not a sparse solve.
  std::vector<double> dv(m, 1.0);
  sparse.Ftran(dv);
  EXPECT_EQ(sparse.kernel_stats().sparse_solves, 10u);

  // Threshold 0: the same patterned calls all miss at reach 1.0 each.
  for (int k = 0; k < 4; ++k) {
    v.Clear();
    v.values[k] = 1.0;
    v.pattern.push_back(k);
    off.FtranSparse(v);
    EXPECT_FALSE(v.pattern_valid);
  }
  ks = off.kernel_stats();
  EXPECT_EQ(ks.sparse_solves, 4u);
  EXPECT_EQ(ks.sparse_hits, 0u);
  EXPECT_EQ(ks.reach_fraction_sum, 4.0);
}

}  // namespace
}  // namespace lp
}  // namespace privsan
