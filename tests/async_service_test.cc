// The asynchronous serve pipeline: Submit futures, per-tenant FIFO
// ordering under concurrent clients, background maintenance (flush +
// hot-query refresh) and global-memory-budget eviction with transparent
// warm reload. The ThreadSanitizer CI job runs this file with maintenance
// and eviction enabled.
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/session.h"
#include "serve/api.h"
#include "serve/service.h"
#include "synth/generator.h"
#include "test_fixtures.h"

namespace privsan {
namespace {

SearchLog Synthetic(uint64_t seed, size_t users = 50, size_t events = 2500) {
  SyntheticLogConfig config = TinyConfig();
  config.seed = seed;
  config.num_users = users;
  config.num_events = events;
  return GenerateSearchLog(config).value();
}

UmpQuery Query(double e_eps, double delta) {
  UmpQuery query;
  query.privacy = PrivacyParams::FromEEpsilon(e_eps, delta);
  return query;
}

serve::TenantStats StatsOf(serve::SanitizerService& service,
                           const std::string& tenant) {
  return service.Stats(tenant).value();
}

// Polls `predicate` until true or ~10s elapse (generous for TSan builds).
template <typename Predicate>
bool WaitFor(Predicate predicate) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return predicate();
}

// A pipelined burst — create, appends, solve, stats — submitted without
// awaiting any future in between must equal the blocking reference.
TEST(AsyncServiceTest, PipelinedSubmitMatchesBlocking) {
  const SearchLog full = Synthetic(3, /*users=*/60, /*events=*/3000);
  const UserId cut = full.num_users() / 2;

  serve::SanitizerService service;
  std::vector<std::future<serve::ServeResponse>> futures;
  futures.push_back(service.Submit(serve::CreateTenantRequest{
      "t", UserSlice(full, 0, cut), std::nullopt}));
  futures.push_back(service.Submit(
      serve::AppendRequest{"t", UserSlice(full, cut, full.num_users())}));
  futures.push_back(service.Submit(
      serve::SolveRequest{"t", UtilityObjective::kOutputSize,
                          Query(2.0, 0.5)}));
  futures.push_back(service.Submit(serve::StatsRequest{"t"}));

  for (auto& future : futures) {
    ASSERT_TRUE(future.valid());
  }
  const serve::ServeResponse created = futures[0].get();
  const serve::ServeResponse appended = futures[1].get();
  const serve::ServeResponse solved = futures[2].get();
  const serve::ServeResponse stats = futures[3].get();
  EXPECT_TRUE(created.ok()) << created.status;
  EXPECT_TRUE(appended.ok()) << appended.status;
  ASSERT_TRUE(solved.ok()) << solved.status;
  ASSERT_NE(solved.solution(), nullptr);
  ASSERT_TRUE(stats.ok()) << stats.status;
  ASSERT_NE(stats.stats(), nullptr);
  // The solve (queued after the append) saw the whole log.
  EXPECT_EQ(stats.stats()->flushes, 1u);
  EXPECT_EQ(stats.stats()->appends_enqueued, 1u);
  SanitizerSession reference = SanitizerSession::Create(full).value();
  EXPECT_EQ(solved.solution()->output_size,
            reference.Solve(UtilityObjective::kOutputSize, Query(2.0, 0.5))
                .value()
                .output_size);
}

TEST(AsyncServiceTest, UnknownTenantFailsTheFutureImmediately) {
  serve::SanitizerService service;
  serve::ServeResponse response =
      service
          .Submit(serve::SolveRequest{"ghost", UtilityObjective::kOutputSize,
                                      Query(2.0, 0.5)})
          .get();
  EXPECT_EQ(response.status.code(), StatusCode::kNotFound);
  // Duplicate create fails at registration time, before any queue work.
  ASSERT_TRUE(service.CreateTenant("t", Synthetic(5)).ok());
  serve::ServeResponse duplicate =
      service
          .Submit(serve::CreateTenantRequest{"t", SearchLog(), std::nullopt})
          .get();
  EXPECT_EQ(duplicate.status.code(), StatusCode::kFailedPrecondition);
}

TEST(AsyncServiceTest, AppendFutureResolvesWithoutFlushing) {
  serve::SanitizerService service;
  ASSERT_TRUE(service.CreateTenant("t", Synthetic(7)).ok());
  ASSERT_TRUE(
      service.Submit(serve::AppendRequest{"t", Synthetic(8, 10, 400)})
          .get()
          .ok());
  const serve::TenantStats stats = StatsOf(service, "t");
  EXPECT_EQ(stats.appends_enqueued, 1u);
  EXPECT_EQ(stats.flushes, 0u);  // accepted, not yet coalesced
}

// N client threads drive concurrent Submit streams at M tenants with
// background flush and eviction enabled. Per-tenant FIFO ordering: each
// client's stats probe — queued after its appends — must observe them all;
// the final solve — queued after everything — must match a from-scratch
// session on the union log (warm == cold objectives).
TEST(AsyncServiceTest, ConcurrentSubmitStreamsKeepPerTenantOrder) {
  constexpr int kTenants = 3;
  constexpr int kClientsPerTenant = 2;
  constexpr int kAppendsPerClient = 4;

  // Per-tenant: a base log and per-client disjoint append slices.
  std::vector<SearchLog> bases;
  std::vector<std::vector<SearchLog>> client_batches(kTenants *
                                                     kClientsPerTenant);
  for (int t = 0; t < kTenants; ++t) {
    const SearchLog full = Synthetic(200 + t, /*users=*/48, /*events=*/2400);
    const UserId cut = full.num_users() / 2;
    bases.push_back(UserSlice(full, 0, cut));
    const UserId per_client = (full.num_users() - cut) / kClientsPerTenant;
    for (int c = 0; c < kClientsPerTenant; ++c) {
      const UserId begin = cut + c * per_client;
      const UserId end = c + 1 == kClientsPerTenant
                             ? full.num_users()
                             : begin + per_client;
      const int client = t * kClientsPerTenant + c;
      const UserId span =
          std::max<UserId>(1, (end - begin) / kAppendsPerClient);
      for (int a = 0; a < kAppendsPerClient; ++a) {
        const UserId lo = std::min<UserId>(end, begin + a * span);
        const UserId hi =
            a + 1 == kAppendsPerClient ? end : std::min(end, lo + span);
        client_batches[client].push_back(
            UserSlice(full, lo, std::max<UserId>(hi, lo)));
      }
    }
  }

  serve::ServiceOptions options;
  options.num_threads = 4;
  options.maintenance_interval_ms = 1;
  options.flush_max_age_ms = 1;
  options.flush_queue_depth = 2;
  options.memory_budget_bytes = 1;  // evict every idle tenant
  options.spill_directory = ::testing::TempDir();
  serve::SanitizerService service(options);
  for (int t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(
        service.CreateTenant("tenant" + std::to_string(t), bases[t]).ok());
  }

  std::vector<int> order_violations(kTenants * kClientsPerTenant, 0);
  std::vector<std::thread> clients;
  for (int client = 0; client < kTenants * kClientsPerTenant; ++client) {
    clients.emplace_back([&, client] {
      const std::string tenant =
          "tenant" + std::to_string(client / kClientsPerTenant);
      std::vector<std::future<serve::ServeResponse>> futures;
      for (const SearchLog& batch : client_batches[client]) {
        futures.push_back(
            service.Submit(serve::AppendRequest{tenant, batch}));
      }
      // Queued after this client's appends: FIFO means the probe counts
      // them all (other clients may add more).
      std::future<serve::ServeResponse> probe =
          service.Submit(serve::StatsRequest{tenant});
      for (auto& future : futures) {
        if (!future.get().ok()) order_violations[client] = 1;
      }
      const serve::ServeResponse response = probe.get();
      // appends_enqueued is monotonic: queued after this client's appends,
      // the probe must count all of them (peers may add more).
      if (!response.ok() || response.stats() == nullptr ||
          response.stats()->appends_enqueued <
              static_cast<uint64_t>(kAppendsPerClient)) {
        order_violations[client] = 1;
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (int c = 0; c < kTenants * kClientsPerTenant; ++c) {
    EXPECT_EQ(order_violations[c], 0) << "client " << c;
  }

  // Final solves — queued after all appends — equal from-scratch cold
  // solves on the union logs, eviction/reload notwithstanding.
  for (int t = 0; t < kTenants; ++t) {
    SearchLogBuilder union_log;
    union_log.AddAll(bases[t]);
    for (int c = 0; c < kClientsPerTenant; ++c) {
      for (const SearchLog& batch :
           client_batches[t * kClientsPerTenant + c]) {
        union_log.AddAll(batch);
      }
    }
    SanitizerSession cold =
        SanitizerSession::Create(union_log.Build()).value();
    const uint64_t expected =
        cold.Solve(UtilityObjective::kOutputSize, Query(2.0, 0.5))
            .value()
            .output_size;
    const Result<UmpSolution> got = service.Solve(
        "tenant" + std::to_string(t), UtilityObjective::kOutputSize,
        Query(2.0, 0.5));
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->output_size, expected) << "tenant " << t;
  }
}

TEST(AsyncServiceTest, BackgroundFlushDrainsQueueOffTheQueryPath) {
  serve::ServiceOptions options;
  options.maintenance_interval_ms = 1;
  options.flush_max_age_ms = 1;
  serve::SanitizerService service(options);
  const SearchLog full = Synthetic(11, /*users=*/40, /*events=*/2000);
  const UserId cut = full.num_users() / 2;
  ASSERT_TRUE(service.CreateTenant("t", UserSlice(full, 0, cut)).ok());
  ASSERT_TRUE(
      service.Append("t", UserSlice(full, cut, full.num_users())).ok());

  // The maintenance thread lands the batch with no solve in sight.
  ASSERT_TRUE(WaitFor([&] { return StatsOf(service, "t").flushes >= 1; }));
  const serve::TenantStats stats = StatsOf(service, "t");
  EXPECT_GE(stats.maintenance_flushes, 1u);
  EXPECT_EQ(stats.appends_coalesced, 1u);

  // The subsequent solve needs no further flush and matches from-scratch.
  const UmpSolution solution =
      service.Solve("t", UtilityObjective::kOutputSize, Query(2.0, 0.5))
          .value();
  EXPECT_EQ(StatsOf(service, "t").flushes, stats.flushes);
  SanitizerSession cold = SanitizerSession::Create(full).value();
  EXPECT_EQ(solution.output_size,
            cold.Solve(UtilityObjective::kOutputSize, Query(2.0, 0.5))
                .value()
                .output_size);
}

TEST(AsyncServiceTest, HotQueryRefreshKeepsRepeatedBudgetCached) {
  serve::ServiceOptions options;
  options.maintenance_interval_ms = 1;
  options.flush_max_age_ms = 1;
  serve::SanitizerService service(options);
  ASSERT_TRUE(service.CreateTenant("t", Synthetic(13)).ok());
  const UmpQuery query = Query(2.0, 0.5);
  (void)service.Solve("t", UtilityObjective::kOutputSize, query).value();

  ASSERT_TRUE(service.Append("t", Synthetic(14, 8, 300)).ok());
  ASSERT_TRUE(WaitFor([&] {
    return StatsOf(service, "t").refresh_solves >= 1;
  }));

  // The repeated-budget query hits the refreshed cache even though the
  // flush invalidated the original entry.
  const uint64_t hits_before = StatsOf(service, "t").cache_hits;
  const UmpSolution solution =
      service.Solve("t", UtilityObjective::kOutputSize, query).value();
  EXPECT_GT(StatsOf(service, "t").cache_hits, hits_before);
  EXPECT_GT(solution.output_size, 0u);
}

// A tenant evicted under the global budget restores transparently on its
// next solve: same objective, warm (dual warm-start from the snapshot
// basis), with the reload visible in the stats.
TEST(AsyncServiceTest, EvictedTenantRestoresTransparentlyAndWarm) {
  serve::ServiceOptions options;
  options.maintenance_interval_ms = 1;
  options.memory_budget_bytes = 1;  // every idle tenant is over budget
  options.spill_directory = ::testing::TempDir();
  serve::SanitizerService service(options);
  ASSERT_TRUE(service.CreateTenant("a", Synthetic(21)).ok());
  ASSERT_TRUE(service.CreateTenant("b", Synthetic(22)).ok());

  const UmpQuery query = Query(2.0, 0.5);
  const uint64_t before =
      service.Solve("a", UtilityObjective::kOutputSize, query)
          .value()
          .output_size;
  (void)service.Solve("b", UtilityObjective::kOutputSize, query).value();

  // Stats never reloads, so polling observes the eviction without undoing
  // it. Poll for the evicted state (not just the counter): an eviction
  // that landed before the solve was already undone by the solve's
  // transparent reload, and the idle tenant re-evicts on a later tick.
  ASSERT_TRUE(WaitFor([&] {
    const serve::TenantStats stats = StatsOf(service, "a");
    return stats.evictions >= 1 && stats.resident_bytes == 0;
  }));

  const Result<UmpSolution> after =
      service.Solve("a", UtilityObjective::kOutputSize, query);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->output_size, before);
  // The reload resumed warm from the spilled basis, not with a cold solve.
  EXPECT_TRUE(after->stats.warm_started);
  const serve::TenantStats stats = StatsOf(service, "a");
  EXPECT_GE(stats.reloads, 1u);
  // Resident again after the reload — unless the 1-byte budget already
  // re-evicted the now-idle tenant on a subsequent maintenance tick.
  EXPECT_TRUE(stats.resident_bytes > 0 || stats.evictions >= 2);
}

// Spill snapshots hold raw un-sanitized logs; shutting the service down
// must not leave them on disk.
TEST(AsyncServiceTest, ShutdownRemovesSpillFiles) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "privsan_spill_cleanup";
  std::filesystem::create_directories(dir);
  {
    serve::ServiceOptions options;
    options.maintenance_interval_ms = 1;
    options.memory_budget_bytes = 1;
    options.spill_directory = dir.string();
    serve::SanitizerService service(options);
    ASSERT_TRUE(service.CreateTenant("t", Synthetic(41)).ok());
    (void)service.Solve("t", UtilityObjective::kOutputSize, Query(2.0, 0.5))
        .value();
    ASSERT_TRUE(
        WaitFor([&] { return StatsOf(service, "t").evictions >= 1; }));
    // The counter can be ahead of the disk: an eviction that landed before
    // the solve was already undone by the solve's transparent reload. The
    // tenant is idle now, so the next tick re-evicts; poll for the file.
    ASSERT_TRUE(
        WaitFor([&] { return !std::filesystem::is_empty(dir); }));
  }
  EXPECT_TRUE(std::filesystem::is_empty(dir));
  std::filesystem::remove_all(dir);
}

TEST(AsyncServiceTest, DropThroughTheQueueReleasesTheName) {
  serve::SanitizerService service;
  ASSERT_TRUE(service.CreateTenant("t", Synthetic(31)).ok());
  std::future<serve::ServeResponse> drop =
      service.Submit(serve::DropTenantRequest{"t"});
  EXPECT_TRUE(drop.get().ok());
  EXPECT_TRUE(service.Tenants().empty());
  // The name is reusable, and requests to the dropped tenant fail NotFound.
  EXPECT_EQ(service.Flush("t").code(), StatusCode::kNotFound);
  EXPECT_TRUE(service.CreateTenant("t", Synthetic(32)).ok());
}

// The callback Submit overload (the network front-end's path): delivered
// from a worker on success, inline for pre-queue failures.
TEST(AsyncServiceTest, CallbackSubmitDeliversExactlyOnce) {
  serve::SanitizerService service;
  ASSERT_TRUE(service.CreateTenant("t", Synthetic(51)).ok());

  std::promise<serve::ServeResponse> solved;
  service.Submit(
      serve::SolveRequest{"t", UtilityObjective::kOutputSize,
                          Query(2.0, 0.5)},
      [&](serve::ServeResponse response) {
        solved.set_value(std::move(response));
      });
  serve::ServeResponse response = solved.get_future().get();
  ASSERT_TRUE(response.ok()) << response.status;
  EXPECT_NE(response.solution(), nullptr);

  // Unknown tenant: the callback still runs (inline), with NotFound.
  std::promise<Status> missing;
  service.Submit(serve::StatsRequest{"nope"},
                 [&](serve::ServeResponse r) {
                   missing.set_value(std::move(r.status));
                 });
  EXPECT_EQ(missing.get_future().get().code(), StatusCode::kNotFound);
}

// max_queue_depth: flooding one tenant's queue rejects the overflow with
// kResourceExhausted; DropTenant stays admissible on a full queue.
TEST(AsyncServiceTest, AdmissionControlRejectsFloodedTenant) {
  serve::ServiceOptions options;
  options.num_threads = 1;  // one worker: a slow job blocks the lane
  options.max_queue_depth = 2;
  serve::SanitizerService service(options);
  ASSERT_TRUE(service.CreateTenant("t", Synthetic(52)).ok());

  // Park the single worker in a sweep, then flood.
  std::vector<UmpQuery> grid;
  for (int i = 0; i < 6; ++i) grid.push_back(Query(1.5 + 0.2 * i, 0.5));
  std::future<serve::ServeResponse> sweep = service.Submit(
      serve::SweepRequest{"t", UtilityObjective::kOutputSize, grid, {}});

  const SearchLog batch = Synthetic(53, /*users=*/10, /*events=*/200);
  std::vector<std::future<serve::ServeResponse>> appends;
  for (int i = 0; i < 10; ++i) {
    appends.push_back(service.Submit(serve::AppendRequest{"t", batch}));
  }
  // Drop is exempt: it must queue even though the tenant is flooded.
  std::future<serve::ServeResponse> drop =
      service.Submit(serve::DropTenantRequest{"t"});

  size_t rejected = 0;
  for (std::future<serve::ServeResponse>& append : appends) {
    const Status status = append.get().status;
    if (status.code() == StatusCode::kResourceExhausted) {
      ++rejected;
    } else {
      EXPECT_TRUE(status.ok()) << status;
    }
  }
  // Depth 2 against a burst of 10 on a blocked lane: most must bounce.
  EXPECT_GE(rejected, 7u);
  EXPECT_TRUE(sweep.get().ok());
  EXPECT_TRUE(drop.get().ok());
}

// The read-only fast lane: with fast_lane on, a Stats probe submitted
// behind a multi-cell Sweep overtakes it instead of waiting out the queue.
TEST(AsyncServiceTest, FastLaneStatsOvertakesHeavyQueue) {
  serve::ServiceOptions options;
  options.num_threads = 2;  // heavy lane + fast lane
  options.fast_lane = true;
  serve::SanitizerService service(options);
  ASSERT_TRUE(
      service.CreateTenant("t", Synthetic(54, /*users=*/120, /*events=*/6000))
          .ok());

  std::vector<UmpQuery> grid;
  for (int i = 0; i < 12; ++i) grid.push_back(Query(1.3 + 0.1 * i, 0.5));
  std::future<serve::ServeResponse> sweep = service.Submit(
      serve::SweepRequest{"t", UtilityObjective::kOutputSize, grid, {}});

  std::future<serve::ServeResponse> stats =
      service.Submit(serve::StatsRequest{"t"});
  serve::ServeResponse response = stats.get();
  ASSERT_TRUE(response.ok()) << response.status;
  ASSERT_NE(response.stats(), nullptr);
  // The probe rode the fast lane (answered under cmu, not queued behind
  // the sweep) — the counter is the deterministic witness.
  EXPECT_GE(response.stats()->fast_lane_hits, 1u);
  EXPECT_TRUE(sweep.get().ok());
}

// A cached Solve is fast-lane eligible; a pending append (stale-in-flight
// cache) or a cache miss routes it back to the heavy lane, so results
// always reflect every earlier append.
TEST(AsyncServiceTest, FastLaneServesCachedSolvesAndYieldsOnAppends) {
  serve::ServiceOptions options;
  options.fast_lane = true;
  serve::SanitizerService service(options);
  ASSERT_TRUE(service.CreateTenant("t", Synthetic(55)).ok());
  const UmpQuery query = Query(2.0, 0.5);

  // Prime the cache on the heavy lane. Note every StatsOf below is itself
  // one fast-lane hit (Stats rides the fast lane too), so the expected
  // counts are exact arithmetic, not inequalities.
  const uint64_t first =
      service.Solve("t", UtilityObjective::kOutputSize, query)
          .value()
          .output_size;
  const uint64_t fast_before = StatsOf(service, "t").fast_lane_hits;

  // Same query again: eligible, served from the cache on the fast lane.
  const Result<UmpSolution> again =
      service.Solve("t", UtilityObjective::kOutputSize, query);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->output_size, first);
  // + the cached solve + this StatsOf.
  EXPECT_EQ(StatsOf(service, "t").fast_lane_hits, fast_before + 2);

  // Queue an append: the cached result is stale-in-flight, so the same
  // query must take the heavy lane (flush first, then re-solve).
  ASSERT_TRUE(
      service.Append("t", Synthetic(56, /*users=*/10, /*events=*/400)).ok());
  const uint64_t fast_mid = StatsOf(service, "t").fast_lane_hits;
  const Result<UmpSolution> after =
      service.Solve("t", UtilityObjective::kOutputSize, query);
  ASSERT_TRUE(after.ok()) << after.status();
  serve::TenantStats stats = StatsOf(service, "t");
  // Only this StatsOf hit the fast lane — the solve took the heavy lane.
  EXPECT_EQ(stats.fast_lane_hits, fast_mid + 1);
  EXPECT_GE(stats.flushes, 1u);  // the append landed first
}

// A Solve queued behind a multi-cell Sweep on a single worker must show up
// in the slow log with the wait charged to the queue stage and the work to
// the solve stage — the trace decomposition the SLOWLOG verb exists for.
TEST(AsyncServiceTest, QueuedSolveTracesNonzeroQueueWait) {
  serve::ServiceOptions options;
  options.num_threads = 1;  // one worker: the sweep blocks the lane
  options.slow_request_threshold_ms = 0;  // record every request
  serve::SanitizerService service(options);
  ASSERT_TRUE(
      service.CreateTenant("t", Synthetic(91, /*users=*/80, /*events=*/4000))
          .ok());

  std::vector<UmpQuery> grid;
  for (int i = 0; i < 8; ++i) grid.push_back(Query(1.4 + 0.15 * i, 0.5));
  std::future<serve::ServeResponse> sweep = service.Submit(
      serve::SweepRequest{"t", UtilityObjective::kOutputSize, grid, {}});
  // Uncached solve, queued while the worker is inside the sweep.
  std::future<serve::ServeResponse> solve = service.Submit(
      serve::SolveRequest{"t", UtilityObjective::kDiversity, Query(3.0, 0.5)});

  // A metrics scrape answers inline even with the only worker parked.
  const serve::ServeResponse scrape =
      service.Submit(serve::MetricsRequest{}).get();
  ASSERT_TRUE(scrape.ok()) << scrape.status;
  ASSERT_NE(scrape.metrics(), nullptr);
  EXPECT_NE(scrape.metrics()->text.find("privsan_requests_total"),
            std::string::npos);

  ASSERT_TRUE(sweep.get().ok());
  ASSERT_TRUE(solve.get().ok());

  bool found = false;
  for (const obs::SlowRequestRecord& record : service.SlowLog()) {
    if (record.verb != "Solve") continue;
    found = true;
    EXPECT_GT(record.trace.queue_ms, 0.0);
    EXPECT_GT(record.trace.solve_ms, 0.0);
    EXPECT_GE(record.total_ms,
              record.trace.queue_ms + record.trace.solve_ms);
  }
  EXPECT_TRUE(found) << "no Solve record in the slow log";

  // The SlowLog verb round-trips the same records through Submit.
  const serve::ServeResponse dump =
      service.Submit(serve::SlowLogRequest{}).get();
  ASSERT_TRUE(dump.ok()) << dump.status;
  ASSERT_NE(dump.slow_log(), nullptr);
  EXPECT_EQ(dump.slow_log()->records.size(), service.SlowLog().size());
}

}  // namespace
}  // namespace privsan
