#include "core/privacy_params.h"

#include <gtest/gtest.h>

#include <cmath>

namespace privsan {
namespace {

TEST(PrivacyParamsTest, ValidateAcceptsReasonable) {
  EXPECT_TRUE((PrivacyParams{0.7, 0.1}).Validate().ok());
  EXPECT_TRUE((PrivacyParams{1e-4, 1e-4}).Validate().ok());
}

TEST(PrivacyParamsTest, ValidateRejectsBadEpsilon) {
  EXPECT_FALSE((PrivacyParams{0.0, 0.1}).Validate().ok());
  EXPECT_FALSE((PrivacyParams{-1.0, 0.1}).Validate().ok());
  EXPECT_FALSE(
      (PrivacyParams{std::numeric_limits<double>::infinity(), 0.1})
          .Validate()
          .ok());
}

TEST(PrivacyParamsTest, ValidateRejectsBadDelta) {
  EXPECT_FALSE((PrivacyParams{1.0, 0.0}).Validate().ok());
  EXPECT_FALSE((PrivacyParams{1.0, 1.0}).Validate().ok());
  EXPECT_FALSE((PrivacyParams{1.0, -0.2}).Validate().ok());
  EXPECT_FALSE((PrivacyParams{1.0, 1.5}).Validate().ok());
}

TEST(PrivacyParamsTest, FromEEpsilon) {
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  EXPECT_NEAR(params.epsilon, std::log(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(params.delta, 0.5);
}

TEST(PrivacyParamsTest, BudgetIsMinOfEpsilonAndDeltaTerm) {
  // epsilon small: epsilon binds.
  PrivacyParams eps_bound = PrivacyParams::FromEEpsilon(1.001, 0.5);
  EXPECT_NEAR(eps_bound.Budget(), std::log(1.001), 1e-12);
  EXPECT_FALSE(eps_bound.DeltaBound());

  // delta small: log(1/(1-delta)) binds.
  PrivacyParams delta_bound = PrivacyParams::FromEEpsilon(2.3, 1e-4);
  EXPECT_NEAR(delta_bound.Budget(), std::log(1.0 / (1.0 - 1e-4)), 1e-12);
  EXPECT_TRUE(delta_bound.DeltaBound());
}

TEST(PrivacyParamsTest, BudgetCrossoverPoint) {
  // At epsilon == log(1/(1-delta)) both terms coincide.
  const double delta = 0.3;
  const double eps = std::log(1.0 / (1.0 - delta));
  PrivacyParams params{eps, delta};
  EXPECT_NEAR(params.Budget(), eps, 1e-12);
}

TEST(PrivacyParamsTest, BudgetMonotoneInBothParameters) {
  double prev = 0.0;
  for (double e_eps : {1.001, 1.01, 1.1, 1.4, 1.7, 2.0, 2.3}) {
    PrivacyParams params = PrivacyParams::FromEEpsilon(e_eps, 0.1);
    EXPECT_GE(params.Budget(), prev);
    prev = params.Budget();
  }
  prev = 0.0;
  for (double delta : {1e-4, 1e-3, 1e-2, 1e-1, 0.2, 0.5, 0.8}) {
    PrivacyParams params = PrivacyParams::FromEEpsilon(1.7, delta);
    EXPECT_GE(params.Budget(), prev);
    prev = params.Budget();
  }
}

TEST(PrivacyParamsTest, ToStringMentionsBudget) {
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  std::string s = params.ToString();
  EXPECT_NE(s.find("budget"), std::string::npos);
  EXPECT_NE(s.find("delta"), std::string::npos);
}

}  // namespace
}  // namespace privsan
