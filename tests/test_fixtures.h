// Shared fixtures for the privsan test suite.
#ifndef PRIVSAN_TESTS_TEST_FIXTURES_H_
#define PRIVSAN_TESTS_TEST_FIXTURES_H_

#include <cstdint>

#include "log/preprocess.h"
#include "log/search_log.h"
#include "synth/generator.h"

namespace privsan {
namespace testing_fixtures {

// The running example of Figure 1 in the paper. Three users, five pairs:
//
//   081: (pregnancy test nyc, medicinenet.com) 2   <- unique to 081
//        (book, amazon.com)                    3
//        (google, google.com)                 15
//   082: (google, google.com)                  7
//        (car price, kbb.com)                  2
//        (diabetes medecine, walmart.com)      1   <- unique to 082
//   083: (google, google.com)                 17
//        (car price, kbb.com)                  5
//        (book, amazon.com)                    1
//
// Totals: pregnancy 2 (unique), book 4, google 39, car 7, diabetes 1
// (unique); |D| = 53 raw, 50 after Condition-1 preprocessing.
inline SearchLog Figure1Log() {
  SearchLogBuilder builder;
  builder.Add("081", "pregnancy test nyc", "medicinenet.com", 2);
  builder.Add("081", "book", "amazon.com", 3);
  builder.Add("081", "google", "google.com", 15);
  builder.Add("082", "google", "google.com", 7);
  builder.Add("082", "car price", "kbb.com", 2);
  builder.Add("082", "diabetes medecine", "walmart.com", 1);
  builder.Add("083", "google", "google.com", 17);
  builder.Add("083", "car price", "kbb.com", 5);
  builder.Add("083", "book", "amazon.com", 1);
  return builder.Build();
}

// Figure1Log after Condition-1 preprocessing (3 pairs, |D| = 50).
inline SearchLog Figure1Preprocessed() {
  return RemoveUniquePairs(Figure1Log()).log;
}

// A tiny two-user log with no unique pairs: both users share both pairs.
inline SearchLog TwoUserSharedLog() {
  SearchLogBuilder builder;
  builder.Add("alice", "q1", "u1", 4);
  builder.Add("bob", "q1", "u1", 6);
  builder.Add("alice", "q2", "u2", 3);
  builder.Add("bob", "q2", "u2", 3);
  return builder.Build();
}

// A deterministic synthetic log, preprocessed, suitable for solver tests
// (a few hundred pairs, ~30 users).
inline SearchLog SmallSyntheticLog(uint64_t seed = 7) {
  SyntheticLogConfig config = TinyConfig();
  config.seed = seed;
  SearchLog raw = GenerateSearchLog(config).value();
  return RemoveUniquePairs(raw).log;
}

}  // namespace testing_fixtures
}  // namespace privsan

#endif  // PRIVSAN_TESTS_TEST_FIXTURES_H_
