// Cross-module integration and parameterized property sweeps: the full
// Algorithm-1 pipeline on synthetic AOL-profile data, across the paper's
// (ε, δ) grid.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/audit.h"
#include "core/dump.h"
#include "core/fump.h"
#include "core/oump.h"
#include "core/sampler.h"
#include "core/sanitizer.h"
#include "log/log_io.h"
#include "log/preprocess.h"
#include "metrics/utility_metrics.h"
#include "synth/generator.h"
#include "test_fixtures.h"

namespace privsan {
namespace {

struct GridPoint {
  double e_epsilon;
  double delta;
};

std::vector<GridPoint> PaperGridSample() {
  // A representative sub-grid of the paper's 7x7 (ε, δ) grid.
  return {
      {1.001, 1e-4}, {1.01, 1e-2}, {1.1, 1e-1}, {1.4, 0.2},
      {1.7, 0.5},    {2.0, 0.5},   {2.3, 0.8},
  };
}

class PipelineGridTest : public ::testing::TestWithParam<GridPoint> {};

TEST_P(PipelineGridTest, OumpPipelinePrivateAcrossGrid) {
  const GridPoint point = GetParam();
  PrivacyParams params =
      PrivacyParams::FromEEpsilon(point.e_epsilon, point.delta);
  SearchLog log = testing_fixtures::SmallSyntheticLog();

  OumpResult oump = SolveOump(log, params).value();
  AuditReport audit = AuditSolution(log, params, oump.x).value();
  EXPECT_TRUE(audit.satisfies_privacy) << audit.ToString();

  SearchLog output = SampleOutput(log, oump.x, 5).value();
  EXPECT_EQ(output.total_clicks(), oump.lambda);
}

TEST_P(PipelineGridTest, DumpSpePrivateAcrossGrid) {
  const GridPoint point = GetParam();
  PrivacyParams params =
      PrivacyParams::FromEEpsilon(point.e_epsilon, point.delta);
  SearchLog log = testing_fixtures::SmallSyntheticLog();

  DumpResult dump = SolveDump(log, params).value();
  AuditReport audit = AuditSolution(log, params, dump.x).value();
  EXPECT_TRUE(audit.satisfies_privacy) << audit.ToString();
}

INSTANTIATE_TEST_SUITE_P(PaperGrid, PipelineGridTest,
                         ::testing::ValuesIn(PaperGridSample()));

class SeedSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweepTest, FullPipelineOnFreshWorkload) {
  SyntheticLogConfig config = TinyConfig();
  config.seed = GetParam();
  SearchLog raw = GenerateSearchLog(config).value();

  SanitizerConfig sanitizer_config;
  sanitizer_config.privacy = PrivacyParams::FromEEpsilon(1.7, 0.2);
  sanitizer_config.seed = GetParam() * 31 + 1;
  Sanitizer sanitizer(sanitizer_config);
  auto report = sanitizer.Sanitize(raw);
  if (!report.ok()) {
    // Only acceptable failure: a degenerate workload with nothing shared.
    EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
    return;
  }
  EXPECT_TRUE(report->audit.satisfies_privacy) << report->audit.ToString();
  EXPECT_EQ(report->output.total_clicks(), report->output_size);

  // No unique pair of the preprocessed input may appear in the output.
  const SearchLog& pre = report->preprocessed_input;
  for (PairId p = 0; p < pre.num_pairs(); ++p) {
    if (report->optimal_counts[p] > 0) {
      EXPECT_GE(pre.PairUserCount(p), 2u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, SeedSweepTest,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(IntegrationTest, OumpDominatesFumpAndDumpInSize) {
  // O-UMP maximizes |O|; F-UMP at |O| = lambda matches it; D-UMP's output
  // size (= retained pairs) can never exceed lambda.
  SearchLog log = testing_fixtures::SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);

  OumpResult oump = SolveOump(log, params).value();
  DumpResult dump = SolveDump(log, params).value();
  EXPECT_LE(static_cast<uint64_t>(dump.retained), oump.lambda);

  FumpOptions fump_options;
  fump_options.min_support = 1.0 / 100;
  fump_options.output_size = oump.lambda;
  FumpResult fump = SolveFump(log, params, fump_options).value();
  EXPECT_LE(fump.realized_output_size, oump.lambda);
}

TEST(IntegrationTest, FumpPreservesSupportsBetterThanOump) {
  // At the same output size, F-UMP's frequent-pair support distance is by
  // construction no worse than the O-UMP solution's.
  SearchLog log = testing_fixtures::SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  const double support = 1.0 / 100;

  OumpResult oump = SolveOump(log, params).value();
  FumpOptions options;
  options.min_support = support;
  options.output_size = oump.lambda;
  FumpResult fump = SolveFump(log, params, options).value();

  const double fump_distance = SupportDistanceSum(log, fump.x, support);
  const double oump_distance = SupportDistanceSum(log, oump.x, support);
  EXPECT_LE(fump_distance, oump_distance + 0.05);
}

TEST(IntegrationTest, SampledOutputRoundTripsThroughTsv) {
  SearchLog log = testing_fixtures::SmallSyntheticLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  OumpResult oump = SolveOump(log, params).value();
  SearchLog output = SampleOutput(log, oump.x, 17).value();

  const std::string path = "/tmp/privsan_integration_roundtrip.tsv";
  ASSERT_TRUE(WriteSearchLogTsv(output, path).ok());
  SearchLog loaded = ReadSearchLogTsv(path).value();
  EXPECT_EQ(loaded.total_clicks(), output.total_clicks());
  EXPECT_EQ(loaded.num_pairs(), output.num_pairs());
  std::remove(path.c_str());
}

TEST(IntegrationTest, OutputHistogramShapePreserved) {
  // Section 3.2 property 3: with counts proportional to the input, the
  // output query-url-user histogram's shape tracks the input. Check that
  // the per-user share of a heavy pair is preserved within noise.
  SearchLog log = testing_fixtures::Figure1Preprocessed();
  PairId google = *log.FindPair("google", "google.com");
  std::vector<uint64_t> x(log.num_pairs(), 0);
  x[google] = 390;  // 10x the input count for low relative noise

  auto sampled = SampleTripletCounts(log, x, 23).value();
  auto triplets = log.TripletsOf(google);
  for (size_t i = 0; i < triplets.size(); ++i) {
    const double input_share =
        static_cast<double>(triplets[i].count) / 39.0;
    const double output_share =
        static_cast<double>(sampled[google][i]) / 390.0;
    EXPECT_NEAR(output_share, input_share, 0.08);
  }
}

TEST(IntegrationTest, LambdaFractionsInPaperBand) {
  // Table 4 reports 7.08%-26.2% of |D| across the grid; assert the synthetic
  // reproduction lands in a compatible order of magnitude at the extremes.
  SearchLog log = testing_fixtures::SmallSyntheticLog();
  OumpResult loose =
      SolveOump(log, PrivacyParams::FromEEpsilon(2.3, 0.8)).value();
  OumpResult tight =
      SolveOump(log, PrivacyParams::FromEEpsilon(1.001, 1e-4)).value();
  EXPECT_LT(tight.lambda, loose.lambda);
  EXPECT_GT(loose.lambda, 0u);
}

}  // namespace
}  // namespace privsan
