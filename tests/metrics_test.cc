#include "metrics/utility_metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "test_fixtures.h"

namespace privsan {
namespace {

using testing_fixtures::Figure1Preprocessed;
using testing_fixtures::TwoUserSharedLog;

TEST(PrecisionRecallTest, PerfectCopyScoresOne) {
  SearchLog log = TwoUserSharedLog();
  // Output identical to input counts: q1 = 10, q2 = 6.
  std::vector<uint64_t> x = {0, 0};
  x[*log.FindPair("q1", "u1")] = 10;
  x[*log.FindPair("q2", "u2")] = 6;
  PrecisionRecall pr = FrequentPairMetrics(log, x, 0.3);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_EQ(pr.input_frequent, 2u);
  EXPECT_EQ(pr.output_frequent, 2u);
}

TEST(PrecisionRecallTest, MissingFrequentPairLowersRecall) {
  SearchLog log = TwoUserSharedLog();
  std::vector<uint64_t> x = {0, 0};
  x[*log.FindPair("q1", "u1")] = 10;  // q2 dropped
  PrecisionRecall pr = FrequentPairMetrics(log, x, 0.3);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 0.5);
}

TEST(PrecisionRecallTest, SpuriousFrequentPairLowersPrecision) {
  SearchLog log = TwoUserSharedLog();
  // q2 has input support 0.375 < 0.5, but output support 1.0 >= 0.5.
  std::vector<uint64_t> x = {0, 0};
  x[*log.FindPair("q2", "u2")] = 10;
  PrecisionRecall pr = FrequentPairMetrics(log, x, 0.5);
  EXPECT_EQ(pr.output_frequent, 1u);
  EXPECT_EQ(pr.input_frequent, 1u);  // q1
  EXPECT_EQ(pr.common, 0u);
  EXPECT_DOUBLE_EQ(pr.precision, 0.0);
  EXPECT_DOUBLE_EQ(pr.recall, 0.0);
}

TEST(PrecisionRecallTest, EmptySetsScoreOne) {
  SearchLog log = TwoUserSharedLog();
  std::vector<uint64_t> x = {0, 0};
  PrecisionRecall pr = FrequentPairMetrics(log, x, 0.99);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);  // S empty
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);     // S0 empty
}

TEST(SupportDistanceTest, ZeroWhenSupportsMatch) {
  SearchLog log = TwoUserSharedLog();
  // Output 8:x1, ... proportional halves input exactly: q1 5, q2 3.
  std::vector<uint64_t> x = {0, 0};
  x[*log.FindPair("q1", "u1")] = 5;
  x[*log.FindPair("q2", "u2")] = 3;
  EXPECT_NEAR(SupportDistanceSum(log, x, 0.1), 0.0, 1e-12);
}

TEST(SupportDistanceTest, HandComputedValue) {
  SearchLog log = TwoUserSharedLog();
  // Output only q2 with 2 clicks: dist(q1) = 0.625, dist(q2) = 1 - 0.375.
  std::vector<uint64_t> x = {0, 0};
  x[*log.FindPair("q2", "u2")] = 2;
  EXPECT_NEAR(SupportDistanceSum(log, x, 0.1), 0.625 + 0.625, 1e-12);
  EXPECT_NEAR(SupportDistanceAverage(log, x, 0.1), 0.625, 1e-12);
}

TEST(SupportDistanceTest, OnlyFrequentPairsCounted) {
  SearchLog log = TwoUserSharedLog();
  std::vector<uint64_t> x = {0, 0};
  x[*log.FindPair("q1", "u1")] = 1;
  // s = 0.5: only q1 (0.625) is frequent.
  const double sum = SupportDistanceSum(log, x, 0.5);
  EXPECT_NEAR(sum, std::abs(1.0 - 0.625), 1e-12);
  EXPECT_NEAR(SupportDistanceAverage(log, x, 0.5), sum, 1e-12);
}

TEST(SupportDistanceTest, NoFrequentPairsIsZero) {
  SearchLog log = TwoUserSharedLog();
  std::vector<uint64_t> x = {1, 1};
  EXPECT_DOUBLE_EQ(SupportDistanceSum(log, x, 0.99), 0.0);
  EXPECT_DOUBLE_EQ(SupportDistanceAverage(log, x, 0.99), 0.0);
}

TEST(DiversityRatioTest, Basic) {
  EXPECT_DOUBLE_EQ(DiversityRatio(std::vector<uint64_t>{1, 0, 2, 0}), 0.5);
  EXPECT_DOUBLE_EQ(DiversityRatio(std::vector<uint64_t>{}), 0.0);
  EXPECT_DOUBLE_EQ(DiversityRatio(std::vector<uint64_t>{0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(DiversityRatio(std::vector<uint64_t>{5, 1}), 1.0);
}

TEST(DiffRatioTest, RejectsBadArguments) {
  SearchLog log = Figure1Preprocessed();
  std::vector<uint64_t> x(log.num_pairs(), 1);
  EXPECT_FALSE(ComputeDiffRatioHistogram(log, x, 0, 1).ok());
  EXPECT_FALSE(ComputeDiffRatioHistogram(log, x, 5, 1, 0).ok());
  std::vector<uint64_t> wrong(log.num_pairs() + 1, 1);
  EXPECT_FALSE(ComputeDiffRatioHistogram(log, wrong, 5, 1).ok());
  std::vector<uint64_t> zero(log.num_pairs(), 0);
  EXPECT_FALSE(ComputeDiffRatioHistogram(log, zero, 5, 1).ok());
}

TEST(DiffRatioTest, BinCountsSumToTriplets) {
  SearchLog log = Figure1Preprocessed();
  std::vector<uint64_t> x(log.num_pairs(), 5);
  DiffRatioHistogram histogram =
      ComputeDiffRatioHistogram(log, x, 10, 42).value();
  double total = std::accumulate(histogram.bin_counts.begin(),
                                 histogram.bin_counts.end(), 0.0);
  EXPECT_NEAR(total, static_cast<double>(log.num_tuples()), 1e-9);
}

TEST(DiffRatioTest, ProportionalOutputConcentratesLow) {
  // Output exactly proportional to the input: x_p = c_p. Sampled supports
  // then fluctuate around the input supports, so most triplets should land
  // in low-ratio bins.
  SearchLog log = Figure1Preprocessed();
  std::vector<uint64_t> x(log.num_pairs());
  for (PairId p = 0; p < log.num_pairs(); ++p) x[p] = log.pair_total(p);
  DiffRatioHistogram histogram =
      ComputeDiffRatioHistogram(log, x, 20, 7).value();
  EXPECT_GT(histogram.fraction_below(0.5), 0.5);
}

TEST(DiffRatioTest, DroppedPairsLandInLastBin) {
  SearchLog log = Figure1Preprocessed();
  // Keep only google; the other two pairs' triplets have ratio 1 (dropped).
  std::vector<uint64_t> x(log.num_pairs(), 0);
  PairId google = *log.FindPair("google", "google.com");
  x[google] = 20;
  DiffRatioHistogram histogram =
      ComputeDiffRatioHistogram(log, x, 5, 3).value();
  // book has 2 triplets, car has 2 triplets -> at least 4 in the top bin.
  EXPECT_GE(histogram.bin_counts.back(), 4.0);
}

TEST(DiffRatioTest, FractionBelowIsMonotone) {
  SearchLog log = Figure1Preprocessed();
  std::vector<uint64_t> x(log.num_pairs(), 4);
  DiffRatioHistogram histogram =
      ComputeDiffRatioHistogram(log, x, 10, 5).value();
  double prev = 0.0;
  for (double cap : {0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    double fraction = histogram.fraction_below(cap);
    EXPECT_GE(fraction, prev - 1e-12);
    EXPECT_LE(fraction, 1.0 + 1e-12);
    prev = fraction;
  }
  EXPECT_NEAR(histogram.fraction_below(1.0), 1.0, 1e-12);
}

TEST(DiffRatioTest, DeterministicInSeed) {
  SearchLog log = Figure1Preprocessed();
  std::vector<uint64_t> x(log.num_pairs(), 3);
  DiffRatioHistogram a = ComputeDiffRatioHistogram(log, x, 4, 9).value();
  DiffRatioHistogram b = ComputeDiffRatioHistogram(log, x, 4, 9).value();
  EXPECT_EQ(a.bin_counts, b.bin_counts);
}

}  // namespace
}  // namespace privsan
