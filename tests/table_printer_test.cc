#include "util/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace privsan {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter table("Title");
  table.SetHeader({"a", "bb"});
  table.AddRow({"1", "2"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("| a | bb |"), std::string::npos);
  EXPECT_NE(out.find("| 1 | 2  |"), std::string::npos);
}

TEST(TablePrinterTest, PadsToWidestCell) {
  TablePrinter table("");
  table.SetHeader({"col"});
  table.AddRow({"wide-value"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("| col        |"), std::string::npos);
}

TEST(TablePrinterTest, EmptyTablePrintsNothing) {
  TablePrinter table("ignored");
  std::ostringstream os;
  table.Print(os);
  EXPECT_TRUE(os.str().empty());
}

TEST(TablePrinterTest, RaggedRowsArePadded) {
  TablePrinter table("");
  table.SetHeader({"a", "b", "c"});
  table.AddRow({"1"});
  std::ostringstream os;
  table.Print(os);
  // No crash, and the short row is padded out to three columns.
  EXPECT_NE(os.str().find("| 1 |   |   |"), std::string::npos);
}

TEST(TablePrinterTest, NoTitleOmitsTitleLine) {
  TablePrinter table("");
  table.SetHeader({"x"});
  table.AddRow({"1"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_EQ(os.str().front(), '+');  // starts directly with the rule
}

}  // namespace
}  // namespace privsan
