// Table 7 — Retained Diversity Utility of Different BIP Solvers.
//
// Paper setup: (a) e^ε = 2 fixed, δ swept; (b) δ = 0.1 fixed, e^ε swept.
// Solvers: SPE (Algorithm 2) vs Matlab bintprog / NEOS qsopt_ex / scip
// (exact solvers under practical limits — privsan's budgeted branch &
// bound) and NEOS feaspump (privsan's LP rounding), plus the constructive
// greedy as an extra baseline.
//
// Expected shape: all solvers track the same rising trend; SPE is
// competitive with the LP-based heuristic at a fraction of its cost, and
// the budgeted exact solver trails on large instances.
#include <iostream>

#include "bench_common.h"
#include "core/dump.h"
#include "util/table_printer.h"

using namespace privsan;

namespace {

std::string Cell(const SearchLog& log, const PrivacyParams& params,
                 DumpSolverKind kind, double e_eps, double delta,
                 bench::JsonReport& report) {
  DumpOptions options;
  options.solver = kind;
  options.bnb.max_nodes = 50;
  options.bnb.time_limit_seconds = 8.0;
  auto result = SolveDump(log, params, options);
  if (!result.ok()) return "err";
  bench::JsonRecord record;
  record.Add("solver", DumpSolverKindToString(kind))
      .Add("e_eps", e_eps)
      .Add("delta", delta)
      .Add("pairs", static_cast<int64_t>(log.num_pairs()))
      .Add("diversity_ratio", result->diversity_ratio)
      .Add("retained", result->retained)
      .Add("seconds", result->wall_seconds)
      .Add("lp_iterations", result->lp_iterations)
      .Add("lp_refactorizations", result->lp_refactorizations)
      .Add("bnb_nodes", result->nodes_explored)
      .Add("bnb_warm_solves", result->warm_solves);
  report.Add(std::move(record));
  return privsan::bench::Percent(result->diversity_ratio, 1);
}

}  // namespace

int main() {
  bench::BenchDataset dataset = bench::LoadDataset();
  bench::JsonReport report("table7_solver_comparison");
  const std::vector<DumpSolverKind> solvers = {
      DumpSolverKind::kSpe, DumpSolverKind::kGreedy,
      DumpSolverKind::kLpRounding, DumpSolverKind::kBranchAndBound};

  {
    TablePrinter table("Table 7(a) — retained diversity, e^eps = 2");
    std::vector<std::string> header = {"solver \\ delta"};
    const std::vector<double> deltas = {1e-3, 1e-2, 1e-1, 0.2, 0.5, 0.8};
    for (double delta : deltas) {
      header.push_back(bench::Shorten(delta, delta < 0.01 ? 3 : 2));
    }
    table.SetHeader(header);
    for (DumpSolverKind kind : solvers) {
      std::vector<std::string> row = {DumpSolverKindToString(kind)};
      for (double delta : deltas) {
        row.push_back(Cell(dataset.log, PrivacyParams::FromEEpsilon(2.0, delta),
                           kind, 2.0, delta, report));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
  }
  std::cout << "\n";
  {
    TablePrinter table("Table 7(b) — retained diversity, delta = 0.1");
    std::vector<std::string> header = {"solver \\ e^eps"};
    const std::vector<double> e_epsilons = {1.01, 1.1, 1.4, 1.7, 2.0, 2.3};
    for (double e_eps : e_epsilons) {
      header.push_back(bench::Shorten(e_eps, 2));
    }
    table.SetHeader(header);
    for (DumpSolverKind kind : solvers) {
      std::vector<std::string> row = {DumpSolverKindToString(kind)};
      for (double e_eps : e_epsilons) {
        row.push_back(Cell(dataset.log, PrivacyParams::FromEEpsilon(e_eps, 0.1),
                           kind, e_eps, 0.1, report));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
  }
  std::cout << "\npaper Table 7: SPE 9.5%-30.6%, within ~1 percentage point "
               "of the best solver in every cell and above the exact "
               "solvers under limits in most.\n";
  return 0;
}
