// Table 7 — Retained Diversity Utility of Different BIP Solvers.
//
// Paper setup: (a) e^ε = 2 fixed, δ swept; (b) δ = 0.1 fixed, e^ε swept.
// Solvers: SPE (Algorithm 2) vs Matlab bintprog / NEOS qsopt_ex / scip
// (exact solvers under practical limits — privsan's budgeted branch &
// bound) and NEOS feaspump (privsan's LP rounding), plus the constructive
// greedy as an extra baseline.
//
// Each solver row runs through SanitizerSession::SweepBudgets twice: a cold
// per-cell baseline, then the warm sweep in which every LP-based cell
// (LP rounding, and the branch & bound root) dual-warm-starts from the
// previous cell's optimal basis — the cells share the BIP constraint
// matrix, only the budget rhs moves. SPE and the greedy solve no LPs, so
// their two runs coincide.
//
// Expected shape: all solvers track the same rising trend; SPE is
// competitive with the LP-based heuristic at a fraction of its cost, and
// the budgeted exact solver trails on large instances.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/session.h"
#include "util/table_printer.h"

using namespace privsan;

namespace {

struct PartSpec {
  std::string name;
  std::string title;
  std::string axis;                 // row-header label
  std::vector<double> e_epsilons;   // one entry = fixed
  std::vector<double> deltas;       // one entry = fixed
};

void RunPart(SanitizerSession& session, const PartSpec& part,
             const std::vector<DumpSolverKind>& solvers,
             bench::JsonReport& report) {
  const std::vector<UmpQuery> base_grid =
      bench::BudgetGrid(part.e_epsilons, part.deltas);
  const std::vector<double>& swept =
      part.deltas.size() > 1 ? part.deltas : part.e_epsilons;

  TablePrinter table(part.title);
  std::vector<std::string> header = {part.axis};
  for (double value : swept) {
    header.push_back(bench::Shorten(value, value < 0.01 ? 3 : 2));
  }
  table.SetHeader(header);

  // Part-level totals across all solvers: the B&B tree totals alone are
  // not warm-vs-cold comparable (a different root vertex reorders the
  // budgeted search), but the whole part and the root LPs are.
  int64_t warm_total = 0, cold_total = 0, warm_root = 0, cold_root = 0;
  int64_t warm_solves = 0;
  int mismatches = 0;
  for (DumpSolverKind kind : solvers) {
    std::vector<UmpQuery> grid = base_grid;
    for (UmpQuery& query : grid) query.solver = kind;

    Result<bench::WarmColdSweeps> sweeps = bench::RunWarmColdSweeps(
        session, UtilityObjective::kDiversity, grid);
    if (!sweeps.ok()) {
      table.AddRow({DumpSolverKindToString(kind), "err"});
      continue;
    }
    const SweepResult& cold = sweeps->cold;
    const SweepResult& warm = sweeps->warm;

    const double pairs = static_cast<double>(session.log().num_pairs());
    std::vector<std::string> row = {DumpSolverKindToString(kind)};
    const int row_mismatches = bench::DumpObjectiveMismatches(warm, cold);
    for (size_t i = 0; i < warm.cells.size(); ++i) {
      const UmpSolution& solution = warm.cells[i];
      const double ratio =
          pairs == 0.0 ? 0.0
                       : static_cast<double>(solution.output_size) / pairs;
      row.push_back(bench::Percent(ratio, 1));
      bench::JsonRecord record;
      record.Add("part", part.name)
          .Add("solver", DumpSolverKindToString(kind))
          .Add("e_eps", std::exp(grid[i].privacy.epsilon))
          .Add("delta", grid[i].privacy.delta)
          .Add("pairs", static_cast<int64_t>(session.log().num_pairs()))
          .Add("diversity_ratio", ratio)
          .Add("retained", solution.output_size)
          .Add("cold_retained", cold.cells[i].output_size)
          .Add("seconds", solution.stats.wall_seconds)
          .Add("warm_started",
               static_cast<int64_t>(solution.stats.warm_started))
          .Add("lp_iterations", solution.stats.simplex_iterations)
          .Add("cold_lp_iterations", cold.cells[i].stats.simplex_iterations)
          .Add("lp_refactorizations", solution.stats.refactorizations)
          .Add("bnb_nodes", solution.stats.nodes_explored)
          .Add("bnb_warm_solves", solution.stats.warm_solves)
          .Add("integer_fixed", solution.stats.integer_fixed)
          .Add("proven_optimal",
               static_cast<int64_t>(solution.proven_optimal));
      report.Add(std::move(record));
    }
    table.AddRow(std::move(row));
    report.Add(bench::SweepComparisonRecord(
        part.name + "_" + DumpSolverKindToString(kind), warm, cold,
        row_mismatches));
    warm_total += warm.total_simplex_iterations;
    cold_total += cold.total_simplex_iterations;
    warm_root += warm.total_root_iterations;
    cold_root += cold.total_root_iterations;
    warm_solves += warm.warm_solves;
    mismatches += row_mismatches;
  }
  table.Print(std::cout);

  bench::JsonRecord total;
  total.Add("record", "sweep_aggregate")
      .Add("label", part.name + "_total")
      .Add("warm_solves", warm_solves)
      .Add("warm_total_simplex_iterations", warm_total)
      .Add("cold_total_simplex_iterations", cold_total)
      .Add("warm_root_iterations", warm_root)
      .Add("cold_root_iterations", cold_root)
      .Add("objective_mismatches", mismatches);
  report.Add(std::move(total));
  std::cout << part.name << ": " << warm_solves
            << " warm-started cells; simplex iterations " << warm_total
            << " warm vs " << cold_total << " cold (root LPs only: "
            << warm_root << " vs " << cold_root << "); " << mismatches
            << " objective mismatches\n";
}

}  // namespace

int main() {
  bench::BenchDataset dataset = bench::LoadDataset();
  bench::JsonReport report("table7_solver_comparison");

  SessionOptions options;
  options.objective = UtilityObjective::kDiversity;
  options.dump.bnb.max_nodes = 50;
  options.dump.bnb.time_limit_seconds = 8.0;
  SanitizerSession session =
      SanitizerSession::Create(dataset.raw, options).value();

  const std::vector<DumpSolverKind> solvers = {
      DumpSolverKind::kSpe, DumpSolverKind::kGreedy,
      DumpSolverKind::kLpRounding, DumpSolverKind::kBranchAndBound};

  RunPart(session,
          {"table7a", "Table 7(a) — retained diversity, e^eps = 2",
           "solver \\ delta", {2.0}, {1e-3, 1e-2, 1e-1, 0.2, 0.5, 0.8}},
          solvers, report);
  std::cout << "\n";
  RunPart(session,
          {"table7b", "Table 7(b) — retained diversity, delta = 0.1",
           "solver \\ e^eps", {1.01, 1.1, 1.4, 1.7, 2.0, 2.3}, {0.1}},
          solvers, report);

  std::cout << "\npaper Table 7: SPE 9.5%-30.6%, within ~1 percentage point "
               "of the best solver in every cell and above the exact "
               "solvers under limits in most.\n";
  return 0;
}
