// Distributed serving throughput: a real multi-process cluster.
//
// This bench fork/execs the actual daemons — M sanitizer_serverd
// --listen backends plus one sanitizer_routerd front-end — and drives
// them over the binary wire protocol with K client threads, exactly the
// deployment shape README's "Distributed serving" section describes. It
// measures three things:
//
//   1. Aggregate solve throughput through the router at M=1 and M=2
//      backends, plus solve/append latency percentiles. The scaling
//      ratio is reported always and gated (>= 1.5x) only when the
//      machine has enough cores to actually run two backends in
//      parallel; on small CI boxes it is informational.
//   2. Tenant migration: tenants are created while one backend is up,
//      a second backend is ADDed through the router's admin channel,
//      and every tenant the ring re-homed must answer its next solve
//      warm-started with the identical objective — the snapshot
//      migration carried the solve basis across processes.
//   3. Correctness throughout: every RPC must succeed, and the bench
//      exits nonzero on any failed request, missing migration, cold
//      post-migration solve, or objective mismatch.
//
// The daemons are located next to this binary (same build directory)
// via /proc/self/exe, so the bench runs from any working directory; the
// JSON artifact lands in the cwd as usual.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "net/client.h"
#include "net/router.h"
#include "obs/histogram.h"
#include "util/timer.h"

using namespace privsan;

namespace {

UmpQuery Query(double e_eps, double delta) {
  UmpQuery query;
  query.privacy = PrivacyParams::FromEEpsilon(e_eps, delta);
  return query;
}

// Exact interpolated percentile over raw samples, shared with the serving
// histograms (obs/histogram.h) so bench numbers and scrape quantiles agree
// on semantics.
double PercentileMs(std::vector<double> seconds, double q) {
  return obs::ExactPercentileMs(std::move(seconds), q);
}

// ---- process plumbing -----------------------------------------------------

// One forked daemon: its pid, a pipe into its stdin (the admin channel),
// and a FILE* over its stdout for line-oriented READY/OK parsing.
struct Child {
  pid_t pid = -1;
  int stdin_fd = -1;
  FILE* stdout_file = nullptr;

  bool ReadLine(std::string* line) {
    char* buf = nullptr;
    size_t cap = 0;
    const ssize_t n = ::getline(&buf, &cap, stdout_file);
    if (n < 0) {
      ::free(buf);
      return false;
    }
    line->assign(buf, static_cast<size_t>(n));
    ::free(buf);
    while (!line->empty() &&
           (line->back() == '\n' || line->back() == '\r')) {
      line->pop_back();
    }
    return true;
  }

  bool WriteLine(const std::string& line) {
    const std::string bytes = line + "\n";
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::write(stdin_fd, bytes.data() + off, bytes.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  void Terminate() {
    if (pid < 0) return;
    if (stdin_fd >= 0) ::close(stdin_fd);
    stdin_fd = -1;
    ::kill(pid, SIGTERM);
    int status = 0;
    for (int i = 0; i < 200; ++i) {  // ~2 s of grace, then SIGKILL
      const pid_t done = ::waitpid(pid, &status, WNOHANG);
      if (done == pid) {
        pid = -1;
        break;
      }
      ::usleep(10 * 1000);
    }
    if (pid >= 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      pid = -1;
    }
    if (stdout_file != nullptr) ::fclose(stdout_file);
    stdout_file = nullptr;
  }
};

std::string ExeDir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return ".";
  buf[n] = '\0';
  std::string path(buf);
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

// fork/exec `argv` with stdin and stdout piped to the parent. Inherited
// descriptors above stderr are closed in the child so one daemon never
// holds another's pipe ends open (which would swallow EOFs).
bool Spawn(const std::vector<std::string>& argv, Child* child) {
  int in_pipe[2] = {-1, -1};
  int out_pipe[2] = {-1, -1};
  if (::pipe(in_pipe) != 0) return false;
  if (::pipe(out_pipe) != 0) {
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    return false;
  }
  const pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    for (int fd = 3; fd < 1024; ++fd) ::close(fd);
    std::vector<char*> args;
    for (const std::string& arg : argv) {
      args.push_back(const_cast<char*>(arg.c_str()));
    }
    args.push_back(nullptr);
    ::execv(args[0], args.data());
    ::_exit(127);
  }
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  child->pid = pid;
  child->stdin_fd = in_pipe[1];
  child->stdout_file = ::fdopen(out_pipe[0], "r");
  if (child->stdout_file == nullptr) {
    child->Terminate();
    return false;
  }
  return true;
}

// Reads the daemon's stdout until the "READY port=N" banner.
bool WaitReady(Child* child, uint16_t* port) {
  std::string line;
  while (child->ReadLine(&line)) {
    if (line.rfind("READY port=", 0) == 0) {
      *port = static_cast<uint16_t>(std::stoul(line.substr(11)));
      return true;
    }
  }
  return false;
}

// The whole deployment: M backends plus the router fronting them.
struct Cluster {
  std::vector<Child> backends;
  std::vector<uint16_t> backend_ports;
  Child router;
  uint16_t router_port = 0;

  ~Cluster() { Stop(); }

  void Stop() {
    if (router.pid >= 0) {
      router.WriteLine("QUIT");  // clean path; Terminate is the backstop
    }
    router.Terminate();
    for (Child& backend : backends) backend.Terminate();
    backends.clear();
  }
};

// Spawns one sanitizer_serverd --listen backend and waits for its port.
bool SpawnBackend(Cluster* cluster) {
  Child backend;
  if (!Spawn({ExeDir() + "/sanitizer_serverd", "--listen=0", "--threads=2"},
             &backend)) {
    return false;
  }
  uint16_t port = 0;
  if (!WaitReady(&backend, &port)) {
    backend.Terminate();
    return false;
  }
  cluster->backends.push_back(std::move(backend));
  cluster->backend_ports.push_back(port);
  return true;
}

// Spawns the router fronting the first `routed` backends of the cluster
// (later backends stay spawned-but-unrouted until an ADD).
bool SpawnRouter(Cluster* cluster, size_t routed) {
  std::string list;
  for (size_t i = 0; i < routed; ++i) {
    if (!list.empty()) list += ',';
    list += std::to_string(cluster->backend_ports[i]);
  }
  if (!Spawn({ExeDir() + "/sanitizer_routerd", "--backends=" + list},
             &cluster->router)) {
    return false;
  }
  return WaitReady(&cluster->router, &cluster->router_port);
}

bool StartCluster(int num_backends, Cluster* cluster) {
  for (int i = 0; i < num_backends; ++i) {
    if (!SpawnBackend(cluster)) return false;
  }
  return SpawnRouter(cluster, cluster->backends.size());
}

// ADDs an already-spawned backend through the router's admin channel;
// returns the migrated tenant names.
bool AdminAdd(Cluster* cluster, uint16_t port,
              std::vector<std::string>* migrated) {
  if (!cluster->router.WriteLine("ADD " + std::to_string(port))) {
    return false;
  }
  std::string line;
  while (cluster->router.ReadLine(&line)) {
    if (line.rfind("MIGRATED ", 0) == 0) {
      const size_t space = line.find(' ', 9);
      migrated->push_back(line.substr(9, space - 9));
    } else if (line.rfind("OK", 0) == 0) {
      return true;
    } else if (line.rfind("ERR", 0) == 0) {
      std::cerr << "router admin: " << line << "\n";
      return false;
    }
  }
  return false;
}

// ---- the workload ---------------------------------------------------------

struct TenantPlan {
  std::string name;
  SearchLog initial;
  std::vector<SearchLog> round_batches;  // one small append per round
};

// Per-tenant slices of the dataset plus one single-user append batch per
// round (a new user clicking the tenant's least-shared pair — the
// steady-state event shape bench_serve_throughput uses).
std::vector<TenantPlan> PlanTenants(const SearchLog& raw,
                                    const std::vector<std::string>& names,
                                    int rounds) {
  const int tenants = static_cast<int>(names.size());
  std::vector<TenantPlan> plans;
  for (int t = 0; t < tenants; ++t) {
    TenantPlan plan;
    plan.name = names[t];
    const UserId lo = raw.num_users() * t / tenants;
    const UserId hi = raw.num_users() * (t + 1) / tenants;
    plan.initial = UserSlice(raw, lo, hi);
    const SearchLog base = RemoveUniquePairs(plan.initial).log;
    PairId target = 0;
    for (PairId p = 1; p < base.num_pairs(); ++p) {
      if (base.PairUserCount(p) < base.PairUserCount(target)) target = p;
    }
    for (int r = 0; r < rounds; ++r) {
      SearchLogBuilder one_user;
      one_user.Add(plan.name + "_round" + std::to_string(r),
                   base.query_name(base.pair_query(target)),
                   base.url_name(base.pair_url(target)), 1);
      plan.round_batches.push_back(one_user.Build());
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

struct WorkloadResult {
  bool ok = false;
  double seconds = 0.0;
  int64_t solves = 0;
  int64_t appends = 0;
  std::vector<double> solve_seconds;
  std::vector<double> append_seconds;
  double solves_per_sec() const {
    return seconds > 0 ? static_cast<double>(solves) / seconds : 0.0;
  }
};

// Creates the tenants, primes one cold solve each (untimed), then runs
// `rounds` of append+re-solve per tenant from `clients` concurrent
// connections. Tenants partition across clients, so per-tenant request
// order is preserved.
WorkloadResult RunWorkload(uint16_t router_port,
                           const std::vector<TenantPlan>& plans,
                           int clients, int rounds) {
  WorkloadResult result;
  const UmpQuery query = Query(2.0, 0.5);
  {
    Result<net::NetClient> setup = net::NetClient::Connect(router_port);
    if (!setup.ok()) return result;
    for (const TenantPlan& plan : plans) {
      Result<serve::ServeResponse> created = setup->Call(
          serve::CreateTenantRequest{plan.name, plan.initial, std::nullopt});
      if (!created.ok() || !created->ok()) return result;
      Result<serve::ServeResponse> primed = setup->Call(serve::SolveRequest{
          plan.name, UtilityObjective::kOutputSize, query});
      if (!primed.ok() || !primed->ok()) return result;
    }
  }

  std::atomic<bool> failed{false};
  std::vector<std::vector<double>> solve_lat(clients), append_lat(clients);
  WallTimer timer;
  std::vector<std::thread> workers;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      Result<net::NetClient> client = net::NetClient::Connect(router_port);
      if (!client.ok()) {
        failed.store(true);
        return;
      }
      for (int r = 0; r < rounds && !failed.load(); ++r) {
        for (size_t t = static_cast<size_t>(c); t < plans.size();
             t += static_cast<size_t>(clients)) {
          const TenantPlan& plan = plans[t];
          WallTimer append_timer;
          Result<serve::ServeResponse> appended = client->Call(
              serve::AppendRequest{plan.name, plan.round_batches[r]});
          if (!appended.ok() || !appended->ok()) {
            failed.store(true);
            return;
          }
          append_lat[c].push_back(append_timer.ElapsedSeconds());
          // The append invalidated the cache; this is a warm re-solve
          // through two processes (router + backend).
          WallTimer solve_timer;
          Result<serve::ServeResponse> solved =
              client->Call(serve::SolveRequest{
                  plan.name, UtilityObjective::kOutputSize, query});
          if (!solved.ok() || !solved->ok() ||
              solved->solution() == nullptr) {
            failed.store(true);
            return;
          }
          solve_lat[c].push_back(solve_timer.ElapsedSeconds());
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  result.seconds = timer.ElapsedSeconds();
  if (failed.load()) return result;
  for (int c = 0; c < clients; ++c) {
    result.solve_seconds.insert(result.solve_seconds.end(),
                                solve_lat[c].begin(), solve_lat[c].end());
    result.append_seconds.insert(result.append_seconds.end(),
                                 append_lat[c].begin(), append_lat[c].end());
  }
  result.solves = static_cast<int64_t>(result.solve_seconds.size());
  result.appends = static_cast<int64_t>(result.append_seconds.size());
  result.ok = true;
  return result;
}

}  // namespace

int main() {
  bench::JsonReport report("distributed_throughput");
  const bench::BenchDataset dataset = bench::LoadDataset();
  const SearchLog& raw = dataset.raw;

  const std::string scale = bench::BenchScaleName();
  const int kTenants = scale == "full" ? 8 : scale == "medium" ? 6 : 4;
  const int kRounds = scale == "full" ? 12 : scale == "medium" ? 8 : 4;
  const int kClients = scale == "small" ? 2 : 3;

  // ---- Part 1: throughput scaling, M=1 vs M=2 backends ------------------
  std::vector<std::string> tenant_names;
  for (int t = 0; t < kTenants; ++t) {
    tenant_names.push_back("tenant" + std::to_string(t));
  }
  const std::vector<TenantPlan> plans =
      PlanTenants(raw, tenant_names, kRounds);
  double rates[2] = {0.0, 0.0};
  for (const int num_backends : {1, 2}) {
    Cluster cluster;
    if (!StartCluster(num_backends, &cluster)) {
      std::cerr << "failed to start " << num_backends
                << "-backend cluster\n";
      return 1;
    }
    const WorkloadResult run =
        RunWorkload(cluster.router_port, plans, kClients, kRounds);
    if (!run.ok) {
      std::cerr << "workload failed at " << num_backends << " backends\n";
      return 1;
    }
    rates[num_backends - 1] = run.solves_per_sec();
    std::cout << "backends=" << num_backends << ": " << run.solves
              << " solves + " << run.appends << " appends in "
              << run.seconds << " s = " << run.solves_per_sec()
              << " solves/sec (solve p50/p95/p99 "
              << PercentileMs(run.solve_seconds, 0.50) << "/"
              << PercentileMs(run.solve_seconds, 0.95) << "/"
              << PercentileMs(run.solve_seconds, 0.99) << " ms)\n";
    bench::JsonRecord record;
    record.Add("record", "distributed_throughput")
        .Add("label", "backends=" + std::to_string(num_backends))
        .Add("tenants", static_cast<int64_t>(kTenants))
        .Add("batches", static_cast<int64_t>(kRounds))
        .Add("clients", static_cast<int64_t>(kClients))
        .Add("agg_solves_per_sec", run.solves_per_sec())
        .Add("solve_ms_p50", PercentileMs(run.solve_seconds, 0.50))
        .Add("solve_ms_p95", PercentileMs(run.solve_seconds, 0.95))
        .Add("solve_ms_p99", PercentileMs(run.solve_seconds, 0.99))
        .Add("append_ms_p50", PercentileMs(run.append_seconds, 0.50))
        .Add("append_ms_p95", PercentileMs(run.append_seconds, 0.95))
        .Add("append_ms_p99", PercentileMs(run.append_seconds, 0.99));
    report.Add(std::move(record));
  }
  const double scaling_ratio = rates[0] > 0 ? rates[1] / rates[0] : 0.0;
  const unsigned hw = std::thread::hardware_concurrency();
  // Two backends with two solver threads each, the router's workers, and
  // the client threads only overlap on a machine with real parallelism;
  // below that the ratio measures the scheduler, so it is report-only.
  const bool gate_scaling = hw >= 8;
  std::cout << "scaling 1->2 backends: " << scaling_ratio << "x ("
            << hw << " hardware threads, "
            << (gate_scaling ? "gated" : "report-only") << ")\n\n";
  {
    bench::JsonRecord record;
    record.Add("record", "distributed_scaling")
        .Add("tenants", static_cast<int64_t>(kTenants))
        .Add("scaling_ratio", scaling_ratio)
        .Add("hardware_concurrency", static_cast<int64_t>(hw));
    report.Add(std::move(record));
  }
  if (gate_scaling && scaling_ratio < 1.5) {
    std::cerr << "scaling regression: " << scaling_ratio
              << "x < 1.5x with " << hw << " hardware threads\n";
    return 1;
  }

  // ---- Part 2: warm tenant migration on ADD ------------------------------
  // Both backends are spawned up front (their ports are needed to pick
  // tenant names) but the router starts with only the first; tenant names
  // are chosen with a local HashRing so the grown ring re-homes exactly
  // half of them — the migration set is deterministic, not luck.
  Cluster cluster;
  if (!SpawnBackend(&cluster) || !SpawnBackend(&cluster) ||
      !SpawnRouter(&cluster, 1)) {
    std::cerr << "failed to start migration cluster\n";
    return 1;
  }
  const UmpQuery query = Query(2.0, 0.5);
  Result<net::NetClient> client = net::NetClient::Connect(cluster.router_port);
  if (!client.ok()) {
    std::cerr << "connect failed: " << client.status().ToString() << "\n";
    return 1;
  }

  const int kMigTenants = 4;
  std::vector<std::string> movers, stayers;
  {
    const std::string key_a = std::to_string(cluster.backend_ports[0]);
    const std::string key_b = std::to_string(cluster.backend_ports[1]);
    net::HashRing grown;
    grown.Add(key_a);
    grown.Add(key_b);
    for (int i = 0; i < 10000 && (movers.size() < 2 || stayers.size() < 2);
         ++i) {
      const std::string name = "mig" + std::to_string(i);
      std::vector<std::string>& bucket =
          grown.Locate(name) == key_b ? movers : stayers;
      if (bucket.size() < 2) bucket.push_back(name);
    }
  }
  if (movers.size() < 2 || stayers.size() < 2) {
    std::cerr << "could not pick migration tenant names\n";
    return 1;
  }
  std::vector<std::string> mig_names = movers;
  mig_names.insert(mig_names.end(), stayers.begin(), stayers.end());
  std::vector<TenantPlan> mig_plans =
      PlanTenants(raw, mig_names, /*rounds=*/1);
  std::vector<double> cold_objectives(mig_plans.size());
  for (size_t t = 0; t < mig_plans.size(); ++t) {
    Result<serve::ServeResponse> created = client->Call(
        serve::CreateTenantRequest{mig_plans[t].name, mig_plans[t].initial,
                                   std::nullopt});
    if (!created.ok() || !created->ok()) {
      std::cerr << "create failed for " << mig_plans[t].name << "\n";
      return 1;
    }
    Result<serve::ServeResponse> cold = client->Call(serve::SolveRequest{
        mig_plans[t].name, UtilityObjective::kOutputSize, query});
    if (!cold.ok() || !cold->ok() || cold->solution() == nullptr) {
      std::cerr << "cold solve failed for " << mig_plans[t].name << "\n";
      return 1;
    }
    cold_objectives[t] = cold->solution()->objective_value;
  }

  std::vector<std::string> migrated;
  if (!AdminAdd(&cluster, cluster.backend_ports[1], &migrated)) {
    std::cerr << "ADD backend failed\n";
    return 1;
  }
  std::cout << "== migration: ADD backend moved " << migrated.size() << "/"
            << kMigTenants << " tenants ==\n";
  if (migrated.size() != movers.size()) {
    std::cerr << "expected " << movers.size() << " migrations, got "
              << migrated.size() << " — ring rebalance is broken\n";
    return 1;
  }

  int warm_after_migration = 0;
  int objective_mismatches = 0;
  for (const std::string& tenant : migrated) {
    size_t index = mig_plans.size();
    for (size_t t = 0; t < mig_plans.size(); ++t) {
      if (mig_plans[t].name == tenant) index = t;
    }
    if (index == mig_plans.size()) continue;  // not one of ours
    Result<serve::ServeResponse> warm = client->Call(serve::SolveRequest{
        tenant, UtilityObjective::kOutputSize, query});
    if (!warm.ok() || !warm->ok() || warm->solution() == nullptr) {
      std::cerr << "post-migration solve failed for " << tenant << "\n";
      return 1;
    }
    const UmpSolution& solution = *warm->solution();
    if (solution.stats.warm_started) ++warm_after_migration;
    const double cold_objective = cold_objectives[index];
    const double tol =
        1e-6 * std::max(1.0, std::abs(cold_objective));
    if (std::abs(solution.objective_value - cold_objective) > tol) {
      ++objective_mismatches;
    }
    std::cout << "  " << tenant << ": warm="
              << (solution.stats.warm_started ? 1 : 0)
              << " objective=" << solution.objective_value
              << " (cold " << cold_objective << ")\n";
  }
  const bool all_warm =
      warm_after_migration == static_cast<int>(migrated.size());
  {
    bench::JsonRecord record;
    record.Add("record", "distributed_migration")
        .Add("tenants", static_cast<int64_t>(kMigTenants))
        .Add("migrated", static_cast<int64_t>(migrated.size()))
        .Add("migrated_warm_started", all_warm ? 1.0 : 0.0)
        .Add("objective_mismatches",
             static_cast<int64_t>(objective_mismatches));
    report.Add(std::move(record));
  }
  cluster.Stop();

  if (!all_warm) {
    std::cerr << "migrated tenants resumed cold ("
              << warm_after_migration << "/" << migrated.size()
              << " warm)\n";
    return 1;
  }
  if (objective_mismatches > 0) {
    std::cerr << objective_mismatches
              << " migrated tenants changed objective\n";
    return 1;
  }
  return 0;
}
