// Ablation — the end-to-end Laplace step (Section 4.2).
//
// Utility cost of making the count computation differentially private:
// output size and support fidelity as functions of the sensitivity bound d
// and the count-computation budget ε′. The paper discusses but does not
// evaluate this step ("the price of guaranteeing complete differential
// privacy"); this ablation fills that in.
#include <iostream>

#include "bench_common.h"
#include "core/laplace_step.h"
#include "core/oump.h"
#include "log/preprocess.h"
#include "metrics/utility_metrics.h"
#include "util/table_printer.h"

using namespace privsan;

int main() {
  // Small slice: the sensitivity-bounding pass is O(#users) LP solves.
  SyntheticLogConfig config = BenchScaleConfig();
  config.num_users = 60;
  config.num_events = 6000;
  config.num_queries = 400;
  config.url_pool = 500;
  SearchLog log = RemoveUniquePairs(GenerateSearchLog(config).value()).log;
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  OumpResult base = SolveOump(log, params).value();
  std::cout << "# slice: " << log.num_pairs() << " pairs, " << log.num_users()
            << " users, noise-free lambda = " << base.lambda << "\n\n";

  {
    TablePrinter table("Sensitivity bounding: users dropped vs d");
    table.SetHeader({"d", "users removed", "max retained shift",
                     "lambda afterwards"});
    for (double d : {16.0, 8.0, 4.0, 2.0, 1.0}) {
      auto bounded = BoundOumpSensitivity(log, params, d);
      if (!bounded.ok()) continue;
      std::string lambda = "-";
      if (bounded->log.num_pairs() > 0) {
        auto after = SolveOump(bounded->log, params);
        if (after.ok()) lambda = std::to_string(after->lambda);
      }
      table.AddRow({bench::Shorten(d, 1),
                    std::to_string(bounded->users_removed),
                    bench::Shorten(bounded->max_shift_retained, 3), lambda});
    }
    table.Print(std::cout);
  }
  std::cout << "\n";
  {
    TablePrinter table("Laplace noise: utility vs eps' (d = 2, repaired)");
    table.SetHeader({"eps'", "noise scale d/eps'", "output size",
                     "repair scale", "L1 distortion"});
    for (double eps_prime : {8.0, 4.0, 2.0, 1.0, 0.5}) {
      LaplaceStepOptions options;
      options.d = 2.0;
      options.epsilon_prime = eps_prime;
      options.seed = 99;
      auto noisy = AddLaplaceNoise(log, params, base.x_relaxed, options);
      if (!noisy.ok()) continue;
      uint64_t l1 = 0;
      for (PairId p = 0; p < log.num_pairs(); ++p) {
        l1 += noisy->x[p] > base.x[p] ? noisy->x[p] - base.x[p]
                                      : base.x[p] - noisy->x[p];
      }
      table.AddRow({bench::Shorten(eps_prime, 1),
                    bench::Shorten(options.d / eps_prime, 2),
                    std::to_string(noisy->total),
                    bench::Shorten(noisy->scale_applied, 3),
                    std::to_string(l1)});
    }
    table.Print(std::cout);
  }
  std::cout << "\nreading: smaller d costs users up front but allows less "
               "noise for the same eps'; the repair scale shows how far "
               "noise pushed the counts outside the DP polytope.\n";
  return 0;
}
