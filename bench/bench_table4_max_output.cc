// Table 4 — Maximum Output Size λ on e^ε and δ.
//
// Reproduces the paper's 7x7 grid of O-UMP optima. Expected shape (the
// paper's own): every column with a tiny δ is constant down the rows (the
// δ-term binds regardless of ε); every row plateaus once ε exceeds
// log(1/(1−δ)); λ is monotone in both parameters.
//
// Implementation note: the O-UMP polytope {Wx <= B·1} scales linearly in
// the budget B = min{ε, log 1/(1−δ)}, so the 49 cells share one simplex
// solve at unit budget; each cell re-rounds the scaled relaxed optimum.
//
// Fidelity note (also in EXPERIMENTS.md): the paper's absolute λ values
// (7–26% of |D|) are not attainable under its own Equation 4 — for every
// pair, sum_k log t_ijk >= sum_k c_ijk/c_ij = 1, which caps λ at
// (#users · B); privsan reports the equation-faithful values and reproduces
// the shape.
#include <iostream>

#include "bench_common.h"
#include "core/oump.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace privsan;

int main() {
  bench::BenchDataset dataset = bench::LoadDataset();

  WallTimer timer;
  OumpScalingBase base = SolveOumpUnitBudget(dataset.log).value();
  std::cout << "unit-budget LP: relaxed lambda = " << base.lp_objective_unit
            << ", " << base.simplex_iterations << " simplex iterations, "
            << bench::Shorten(timer.ElapsedSeconds(), 2) << "s\n\n";

  TablePrinter table("Table 4 — maximum output size lambda on e^eps and delta"
                     " (|D| = " +
                     std::to_string(dataset.log.total_clicks()) + ")");
  std::vector<std::string> header = {"e^eps \\ delta"};
  for (double delta : bench::DeltaGrid()) {
    header.push_back(bench::Shorten(delta, delta < 0.01 ? 4 : 2));
  }
  table.SetHeader(header);

  uint64_t min_lambda = ~0ull, max_lambda = 0;
  for (double e_eps : bench::EEpsilonGrid()) {
    std::vector<std::string> row = {bench::Shorten(e_eps, 3)};
    for (double delta : bench::DeltaGrid()) {
      PrivacyParams params = PrivacyParams::FromEEpsilon(e_eps, delta);
      OumpResult cell = RoundScaledOump(dataset.log, params, base).value();
      row.push_back(std::to_string(cell.lambda));
      min_lambda = std::min(min_lambda, cell.lambda);
      max_lambda = std::max(max_lambda, cell.lambda);
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  const double total = static_cast<double>(dataset.log.total_clicks());
  std::cout << "\nlambda range: " << min_lambda << " .. " << max_lambda
            << "  (" << bench::Percent(min_lambda / total, 2) << " .. "
            << bench::Percent(max_lambda / total, 2)
            << " of |D|; paper reports 7.08% .. 26.2% — see fidelity note)\n";
  std::cout << "total wall time: " << bench::Shorten(timer.ElapsedSeconds(), 2)
            << "s\n";
  return 0;
}
