// Table 4 — Maximum Output Size λ on e^ε and δ.
//
// Reproduces the paper's 7x7 grid of O-UMP optima. Expected shape (the
// paper's own): every column with a tiny δ is constant down the rows (the
// δ-term binds regardless of ε); every row plateaus once ε exceeds
// log(1/(1−δ)); λ is monotone in both parameters.
//
// Implementation note: the grid runs twice through one SanitizerSession —
// once with per-cell cold solves (the one-shot baseline) and once with
// SweepBudgets chaining each cell's dual-simplex warm start from the
// previous cell's optimal basis. Only the budget right-hand side changes
// between cells, so warm cells restore optimality in a handful of pivots;
// the objectives are identical by construction and cross-checked below.
//
// Fidelity note (also in EXPERIMENTS.md): the paper's absolute λ values
// (7–26% of |D|) are not attainable under its own Equation 4 — for every
// pair, sum_k log t_ijk >= sum_k c_ijk/c_ij = 1, which caps λ at
// (#users · B); privsan reports the equation-faithful values and reproduces
// the shape.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/session.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace privsan;

int main() {
  bench::BenchDataset dataset = bench::LoadDataset();
  bench::JsonReport report("table4_max_output");

  WallTimer timer;
  SanitizerSession session =
      SanitizerSession::Create(dataset.raw).value();
  const std::vector<UmpQuery> grid =
      bench::BudgetGrid(bench::EEpsilonGrid(), bench::DeltaGrid());

  bench::WarmColdSweeps sweeps =
      bench::RunWarmColdSweeps(session, UtilityObjective::kOutputSize, grid)
          .value();
  const SweepResult& cold = sweeps.cold;
  const SweepResult& warm = sweeps.warm;

  TablePrinter table("Table 4 — maximum output size lambda on e^eps and delta"
                     " (|D| = " +
                     std::to_string(session.log().total_clicks()) + ")");
  std::vector<std::string> header = {"e^eps \\ delta"};
  for (double delta : bench::DeltaGrid()) {
    header.push_back(bench::Shorten(delta, delta < 0.01 ? 4 : 2));
  }
  table.SetHeader(header);

  uint64_t min_lambda = ~0ull, max_lambda = 0;
  size_t cell = 0;
  for (double e_eps : bench::EEpsilonGrid()) {
    std::vector<std::string> row = {bench::Shorten(e_eps, 3)};
    for (double delta : bench::DeltaGrid()) {
      const UmpSolution& solution = warm.cells[cell];
      row.push_back(std::to_string(solution.output_size));
      min_lambda = std::min(min_lambda, solution.output_size);
      max_lambda = std::max(max_lambda, solution.output_size);
      bench::JsonRecord record;
      record.Add("e_eps", e_eps)
          .Add("delta", delta)
          .Add("lambda", solution.output_size)
          .Add("lp_objective", solution.objective_value)
          .Add("warm_started", static_cast<int64_t>(solution.stats.warm_started))
          .Add("warm_iterations", solution.stats.simplex_iterations)
          .Add("cold_iterations", cold.cells[cell].stats.simplex_iterations);
      report.Add(std::move(record));
      ++cell;
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  const int mismatches = bench::ObjectiveMismatches(warm, cold);
  report.Add(bench::SweepComparisonRecord("table4_oump_grid", warm, cold));

  const double total = static_cast<double>(session.log().total_clicks());
  std::cout << "\nlambda range: " << min_lambda << " .. " << max_lambda
            << "  (" << bench::Percent(min_lambda / total, 2) << " .. "
            << bench::Percent(max_lambda / total, 2)
            << " of |D|; paper reports 7.08% .. 26.2% — see fidelity note)\n";
  std::cout << "sweep: " << warm.warm_solves << "/" << grid.size()
            << " warm-started cells; simplex iterations "
            << warm.total_simplex_iterations << " warm vs "
            << cold.total_simplex_iterations << " cold; "
            << bench::Shorten(warm.wall_seconds, 2) << "s warm vs "
            << bench::Shorten(cold.wall_seconds, 2) << "s cold; "
            << mismatches << " objective mismatches\n";
  std::cout << "total wall time: " << bench::Shorten(timer.ElapsedSeconds(), 2)
            << "s\n";
  return mismatches == 0 ? 0 : 1;
}
