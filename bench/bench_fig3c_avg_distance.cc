// Figure 3(c) — Average Support Distance on (s, |O|).
//
// Paper setup: e^ε = 2, δ = 0.5 fixed; sweep the minimum support s
// (log-scale x-axis) for six output sizes. Expected shape: the average
// support distance decreases as s increases (fewer, heavier pairs are easier
// to preserve), and larger |O| sits higher at fixed s.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/fump.h"
#include "core/oump.h"
#include "metrics/utility_metrics.h"
#include "util/table_printer.h"

using namespace privsan;

int main() {
  bench::BenchDataset dataset = bench::LoadDataset();
  bench::JsonReport report("fig3c_avg_distance");
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);

  OumpResult oump = SolveOump(dataset.log, params).value();
  std::cout << "lambda(e^eps=2, delta=0.5) = " << oump.lambda << "\n";
  if (oump.lambda == 0) {
    std::cout << "budget too tight on this dataset scale; nothing to sweep\n";
    return 0;
  }
  // Six output sizes spanning (0, lambda], mirroring the paper's
  // |O| in {3000..8000} against lambda = 13088.
  std::vector<uint64_t> sizes;
  for (int i = 1; i <= 6; ++i) {
    uint64_t size = oump.lambda * (22 + 10 * i) / 100;  // 32% .. 82%
    if (size == 0) size = 1;
    sizes.push_back(size);
  }

  TablePrinter table(
      "Figure 3(c) — average frequent-pair support distance "
      "(e^eps = 2, delta = 0.5)");
  std::vector<std::string> header = {"s \\ |O|"};
  for (uint64_t size : sizes) header.push_back(std::to_string(size));
  table.SetHeader(header);

  for (double support : bench::SupportGrid()) {
    std::vector<std::string> row = {"1/" + std::to_string(static_cast<int>(
                                               1.0 / support + 0.5))};
    for (uint64_t size : sizes) {
      FumpOptions options;
      options.min_support = support;
      options.output_size = size;
      auto result = SolveFump(dataset.log, params, options);
      if (!result.ok()) {
        row.push_back("err");
        continue;
      }
      const double avg =
          SupportDistanceAverage(dataset.log, result->x, support);
      row.push_back(bench::Shorten(avg, 5));
      bench::JsonRecord record;
      record.Add("support", support)
          .Add("output_size", size)
          .Add("avg_distance", avg);
      report.Add(std::move(record));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nexpected shape: each column decreases as s grows "
               "(paper Fig. 3c; their x-axis is log-scale s).\n";
  return 0;
}
