// Figure 3(a) — F-UMP Recall on (ε, δ).
//
// Paper setup: |O| = 3000, s = 1/500, δ ∈ {0.01, 0.1, 0.5, 0.8} against the
// e^ε grid. Expected shape: fixing δ, recall rises with ε until
// ε = log(1/(1−δ)), then stays flat; larger δ lifts the plateau.
//
// privsan picks the fixed |O| as 75% of the smallest positive λ over the
// swept cells (the paper's 3000 plays the same role against its Table 4),
// clamping per-cell when a tight budget makes λ smaller.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/fump.h"
#include "core/oump.h"
#include "metrics/utility_metrics.h"
#include "util/table_printer.h"

using namespace privsan;

int main() {
  bench::BenchDataset dataset = bench::LoadDataset();
  bench::JsonReport report("fig3a_recall");
  const double min_support = 1.0 / 500;
  const std::vector<double> deltas = {0.01, 0.1, 0.5, 0.8};

  OumpScalingBase base = SolveOumpUnitBudget(dataset.log).value();

  // Fixed target |O|: 75% of the largest grid λ, the role the paper's
  // |O| = 3000 plays against its Table 4 values.
  uint64_t max_lambda = 0;
  for (double e_eps : bench::EEpsilonGrid()) {
    for (double delta : deltas) {
      PrivacyParams params = PrivacyParams::FromEEpsilon(e_eps, delta);
      OumpResult cell = RoundScaledOump(dataset.log, params, base).value();
      max_lambda = std::max(max_lambda, cell.lambda);
    }
  }
  const uint64_t target = std::max<uint64_t>(1, max_lambda * 3 / 4);
  std::cout << "fixed output size |O| = " << target
            << " (clamped per cell to that cell's lambda), s = 1/500\n\n";

  TablePrinter table("Figure 3(a) — Recall of frequent query-url pairs");
  std::vector<std::string> header = {"delta \\ e^eps"};
  for (double e_eps : bench::EEpsilonGrid()) {
    header.push_back(bench::Shorten(e_eps, 3));
  }
  table.SetHeader(header);

  for (double delta : deltas) {
    std::vector<std::string> row = {bench::Shorten(delta, 2)};
    for (double e_eps : bench::EEpsilonGrid()) {
      PrivacyParams params = PrivacyParams::FromEEpsilon(e_eps, delta);
      OumpResult lambda_cell =
          RoundScaledOump(dataset.log, params, base).value();
      if (lambda_cell.lambda == 0) {
        row.push_back("0 (lambda=0)");
        continue;
      }
      FumpOptions options;
      options.min_support = min_support;
      options.output_size = std::min(target, lambda_cell.lambda);
      auto result = SolveFump(dataset.log, params, options);
      if (!result.ok()) {
        row.push_back("err");
        continue;
      }
      PrecisionRecall pr =
          FrequentPairMetrics(dataset.log, result->x, min_support);
      row.push_back(bench::Shorten(pr.recall, 4));
      bench::JsonRecord record;
      record.Add("e_eps", e_eps)
          .Add("delta", delta)
          .Add("lambda", lambda_cell.lambda)
          .Add("output_size", options.output_size)
          .Add("recall", pr.recall)
          .Add("precision", pr.precision);
      report.Add(std::move(record));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nexpected shape: recall non-decreasing along each row, "
               "plateau once eps >= log(1/(1-delta)); higher delta rows "
               "plateau higher (paper Fig. 3a).\n";
  return 0;
}
