// Table 6 — Sum of Frequent-Pair Support Distances on |O| and s
// (e^ε = 2, δ = 0.5).
//
// Expected shape (the paper's): at fixed s, the sum grows with |O| — a
// small fixed output can match the input supports almost exactly, a large
// one is squeezed by the DP rows. Across s the sums are not comparable
// (different frequent sets), which is why Figure 3(c) switches to averages.
//
// Like Table 5, each support row is one SweepBudgets call chaining warm
// starts across the |O| cells, with a cold per-cell baseline for
// comparison.
#include <iostream>

#include "bench_common.h"
#include "core/session.h"
#include "metrics/utility_metrics.h"
#include "util/table_printer.h"

using namespace privsan;

int main() {
  bench::BenchDataset dataset = bench::LoadDataset();
  bench::JsonReport report("table6_distance_grid");
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);

  SanitizerSession session =
      SanitizerSession::Create(dataset.raw).value();
  UmpQuery oump_query;
  oump_query.privacy = params;
  const uint64_t lambda =
      session.Solve(UtilityObjective::kOutputSize, oump_query)
          .value()
          .output_size;
  std::cout << "lambda = " << lambda << "\n";
  if (lambda == 0) {
    std::cout << "budget too tight on this dataset scale\n";
    return 0;
  }
  std::vector<uint64_t> sizes;
  for (int i = 1; i <= 6; ++i) {
    sizes.push_back(std::max<uint64_t>(1, lambda * (22 + 10 * i) / 100));
  }
  std::vector<UmpQuery> grid;
  for (uint64_t size : sizes) {
    UmpQuery query;
    query.privacy = params;
    query.output_size = size;
    grid.push_back(query);
  }

  TablePrinter table(
      "Table 6 — sum of support distances on |O| and s "
      "(e^eps = 2, delta = 0.5)");
  std::vector<std::string> header = {"s \\ |O|"};
  for (uint64_t size : sizes) header.push_back(std::to_string(size));
  table.SetHeader(header);

  int64_t warm_total = 0, cold_total = 0, warm_solves = 0;
  int mismatches = 0;
  for (double support : bench::SupportGrid()) {
    SweepOptions sweep_options;
    sweep_options.min_support = support;
    bench::WarmColdSweeps sweeps =
        bench::RunWarmColdSweeps(session, UtilityObjective::kFrequentPairs,
                                 grid, sweep_options)
            .value();
    const SweepResult& cold = sweeps.cold;
    const SweepResult& warm = sweeps.warm;
    warm_total += warm.total_simplex_iterations;
    cold_total += cold.total_simplex_iterations;
    warm_solves += warm.warm_solves;
    mismatches += bench::ObjectiveMismatches(warm, cold);

    const std::string label =
        "1/" + std::to_string(static_cast<int>(1.0 / support + 0.5));
    std::vector<std::string> row = {label};
    for (size_t i = 0; i < warm.cells.size(); ++i) {
      const UmpSolution& solution = warm.cells[i];
      const double distance =
          SupportDistanceSum(session.log(), solution.x, support);
      row.push_back(bench::Shorten(distance, 4));
      bench::JsonRecord record;
      record.Add("support", support)
          .Add("output_size", sizes[i])
          .Add("distance_sum_rounded", distance)
          .Add("distance_sum_lp", solution.objective_value)
          .Add("warm_started",
               static_cast<int64_t>(solution.stats.warm_started))
          .Add("warm_iterations", solution.stats.simplex_iterations)
          .Add("cold_iterations", cold.cells[i].stats.simplex_iterations);
      report.Add(std::move(record));
    }
    table.AddRow(std::move(row));
    report.Add(bench::SweepComparisonRecord("table6_s_" + label, warm, cold));
  }
  table.Print(std::cout);
  std::cout << "\nsweeps: " << warm_solves << " warm-started cells; simplex "
            << "iterations " << warm_total << " warm vs " << cold_total
            << " cold; " << mismatches << " objective mismatches\n";
  std::cout << "paper Table 6: sums grow left to right in every row "
               "(0.055 -> 0.18 at their scale).\n";
  return mismatches == 0 ? 0 : 1;
}
