// Table 6 — Sum of Frequent-Pair Support Distances on |O| and s
// (e^ε = 2, δ = 0.5).
//
// Expected shape (the paper's): at fixed s, the sum grows with |O| — a
// small fixed output can match the input supports almost exactly, a large
// one is squeezed by the DP rows. Across s the sums are not comparable
// (different frequent sets), which is why Figure 3(c) switches to averages.
#include <iostream>

#include "bench_common.h"
#include "core/fump.h"
#include "core/oump.h"
#include "metrics/utility_metrics.h"
#include "util/table_printer.h"

using namespace privsan;

int main() {
  bench::BenchDataset dataset = bench::LoadDataset();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  OumpResult oump = SolveOump(dataset.log, params).value();
  std::cout << "lambda = " << oump.lambda << "\n";
  if (oump.lambda == 0) {
    std::cout << "budget too tight on this dataset scale\n";
    return 0;
  }
  std::vector<uint64_t> sizes;
  for (int i = 1; i <= 6; ++i) {
    sizes.push_back(std::max<uint64_t>(1, oump.lambda * (22 + 10 * i) / 100));
  }

  TablePrinter table(
      "Table 6 — sum of support distances on |O| and s "
      "(e^eps = 2, delta = 0.5)");
  std::vector<std::string> header = {"s \\ |O|"};
  for (uint64_t size : sizes) header.push_back(std::to_string(size));
  table.SetHeader(header);

  for (double support : bench::SupportGrid()) {
    std::vector<std::string> row = {"1/" + std::to_string(static_cast<int>(
                                               1.0 / support + 0.5))};
    for (uint64_t size : sizes) {
      FumpOptions options;
      options.min_support = support;
      options.output_size = size;
      auto result = SolveFump(dataset.log, params, options);
      if (!result.ok()) {
        row.push_back("err");
        continue;
      }
      row.push_back(bench::Shorten(
          SupportDistanceSum(dataset.log, result->x, support), 4));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\npaper Table 6: sums grow left to right in every row "
               "(0.055 -> 0.18 at their scale).\n";
  return 0;
}
