// Ablation — which Theorem-1 condition binds where.
//
// Equation 4 merges Condition 2 (ratio, budget ε) and Condition 3 (leak,
// budget log(1/(1−δ))) into min{·,·}. This ablation maps the (ε, δ) grid to
// the binding condition and shows the resulting λ plateau structure — the
// mechanism behind Table 4's constant columns/rows.
#include <iostream>

#include "bench_common.h"
#include "core/oump.h"
#include "util/table_printer.h"

using namespace privsan;

int main() {
  bench::BenchDataset dataset = bench::LoadDataset();
  OumpScalingBase base = SolveOumpUnitBudget(dataset.log).value();

  TablePrinter table(
      "Ablation — binding condition (E = epsilon/Condition 2, "
      "D = delta/Condition 3) and lambda");
  std::vector<std::string> header = {"e^eps \\ delta"};
  for (double delta : bench::DeltaGrid()) {
    header.push_back(bench::Shorten(delta, delta < 0.01 ? 4 : 2));
  }
  table.SetHeader(header);

  for (double e_eps : bench::EEpsilonGrid()) {
    std::vector<std::string> row = {bench::Shorten(e_eps, 3)};
    for (double delta : bench::DeltaGrid()) {
      PrivacyParams params = PrivacyParams::FromEEpsilon(e_eps, delta);
      OumpResult cell = RoundScaledOump(dataset.log, params, base).value();
      row.push_back(std::string(params.DeltaBound() ? "D " : "E ") +
                    std::to_string(cell.lambda));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nreading: within a row, cells marked E share one lambda "
               "(epsilon binds); within a column, cells marked D share one "
               "lambda (delta binds). The E/D boundary is "
               "epsilon = log(1/(1-delta)).\n";
  return 0;
}
