// Micro benchmarks (google-benchmark): the hot kernels under the paper's
// pipeline — alias-table sampling, multinomial draws, DP-row evaluation,
// SPE, rounding, and a small simplex solve.
#include <benchmark/benchmark.h>

#include "core/constraints.h"
#include "core/dump.h"
#include "core/oump.h"
#include "core/rounding.h"
#include "core/sampler.h"
#include "core/spe.h"
#include "bench_factorization_common.h"
#include "log/preprocess.h"
#include "lp/eta_file.h"
#include "lp/lu_factorization.h"
#include "lp/sparse_matrix.h"
#include "rng/alias_table.h"
#include "rng/distributions.h"
#include "synth/generator.h"

namespace privsan {
namespace {

const SearchLog& MicroLog() {
  static const SearchLog* log = [] {
    SyntheticLogConfig config = TinyConfig();
    config.num_events = 4000;
    config.num_users = 80;
    config.num_queries = 500;
    return new SearchLog(
        RemoveUniquePairs(GenerateSearchLog(config).value()).log);
  }();
  return *log;
}

void BM_AliasTableSample(benchmark::State& state) {
  std::vector<double> weights(static_cast<size_t>(state.range(0)));
  Rng seed_rng(7);
  for (double& w : weights) w = seed_rng.NextDouble() + 0.01;
  AliasTable table = AliasTable::Build(weights).value();
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(rng));
  }
}
BENCHMARK(BM_AliasTableSample)->Arg(4)->Arg(64)->Arg(1024);

void BM_AliasTableBuild(benchmark::State& state) {
  std::vector<double> weights(static_cast<size_t>(state.range(0)));
  Rng seed_rng(7);
  for (double& w : weights) w = seed_rng.NextDouble() + 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(AliasTable::Build(weights).value());
  }
}
BENCHMARK(BM_AliasTableBuild)->Arg(64)->Arg(1024);

void BM_Multinomial(benchmark::State& state) {
  std::vector<double> weights = {1.0, 2.0, 3.0, 4.0, 5.0};
  Rng rng(13);
  const uint64_t trials = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleMultinomial(rng, trials, weights).value());
  }
}
BENCHMARK(BM_Multinomial)->Arg(100)->Arg(10000);

void BM_ConstraintBuild(benchmark::State& state) {
  const SearchLog& log = MicroLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DpConstraintSystem::Build(log, params).value());
  }
}
BENCHMARK(BM_ConstraintBuild);

void BM_ConstraintCheck(benchmark::State& state) {
  const SearchLog& log = MicroLog();
  DpConstraintSystem system =
      DpConstraintSystem::Build(log, PrivacyParams::FromEEpsilon(2.0, 0.5))
          .value();
  std::vector<uint64_t> x(log.num_pairs(), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.IsSatisfied(x));
  }
}
BENCHMARK(BM_ConstraintCheck);

void BM_Spe(benchmark::State& state) {
  const SearchLog& log = MicroLog();
  lp::BipProblem problem =
      BuildDumpBip(log, PrivacyParams::FromEEpsilon(2.0, 0.5)).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveSpe(problem).value());
  }
}
BENCHMARK(BM_Spe);

void BM_OumpSolve(benchmark::State& state) {
  const SearchLog& log = MicroLog();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveOump(log, params).value());
  }
}
BENCHMARK(BM_OumpSolve);

// ---- Basis factorization kernels (see bench_micro_factorization for the
// ---- JSON-reported eta-vs-LU fill sweep gated in CI). ----------------------

template <typename Rep>
void RunRefactorize(benchmark::State& state, Rep rep) {
  const int m = static_cast<int>(state.range(0));
  Rng rng(1234);
  const lp::SparseMatrix A = bench::MakeBasisBenchMatrix(rng, m, 0, 0.03);
  for (auto _ : state) {
    std::vector<int> basis(m);
    for (int i = 0; i < m; ++i) basis[i] = i;
    benchmark::DoNotOptimize(rep.Refactorize(A, basis));
  }
}

template <typename Rep>
void RunFtran(benchmark::State& state, Rep rep) {
  const int m = static_cast<int>(state.range(0));
  Rng rng(1234);
  const lp::SparseMatrix A = bench::MakeBasisBenchMatrix(rng, m, 0, 0.03);
  std::vector<int> basis(m);
  for (int i = 0; i < m; ++i) basis[i] = i;
  rep.Refactorize(A, basis);
  Rng vec_rng(7);
  std::vector<double> v(m);
  for (double& x : v) x = vec_rng.NextDouble(-2.0, 2.0);
  for (auto _ : state) {
    std::vector<double> x = v;
    rep.Ftran(x);
    benchmark::DoNotOptimize(x);
  }
}

void BM_EtaRefactorize(benchmark::State& state) {
  RunRefactorize(state, lp::EtaFile(100, 8.0));
}
BENCHMARK(BM_EtaRefactorize)->Arg(100)->Arg(400);

void BM_LuRefactorize(benchmark::State& state) {
  RunRefactorize(state, lp::LuFactorization(100, 8.0));
}
BENCHMARK(BM_LuRefactorize)->Arg(100)->Arg(400);

void BM_EtaFtran(benchmark::State& state) {
  RunFtran(state, lp::EtaFile(100, 8.0));
}
BENCHMARK(BM_EtaFtran)->Arg(100)->Arg(400);

void BM_LuFtran(benchmark::State& state) {
  RunFtran(state, lp::LuFactorization(100, 8.0));
}
BENCHMARK(BM_LuFtran)->Arg(100)->Arg(400);

void BM_SampleOutput(benchmark::State& state) {
  const SearchLog& log = MicroLog();
  OumpResult oump =
      SolveOump(log, PrivacyParams::FromEEpsilon(2.0, 0.5)).value();
  uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleOutput(log, oump.x, seed++).value());
  }
}
BENCHMARK(BM_SampleOutput);

}  // namespace
}  // namespace privsan

BENCHMARK_MAIN();
