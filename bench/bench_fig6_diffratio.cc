// Figure 6 — DiffRatio of input/output query-url-user (triplet) histograms.
//
// Paper setup: F-UMP based sanitization at e^ε = 2, δ = 0.5, s = 1/500;
// 10 randomized outputs sampled per output size; the histogram buckets the
// per-triplet relative support error DiffRatio (Equation 10) into 10% bins.
// Expected shape: mass concentrated in the low bins, more concentrated for
// the larger |O| (paper: |O|=4000 puts ~75% of triplets below 40%;
// |O|=6000 ~90%).
#include <iostream>

#include "bench_common.h"
#include <cmath>

#include "core/fump.h"
#include "core/oump.h"
#include "core/sampler.h"
#include "metrics/utility_metrics.h"
#include "util/table_printer.h"

using namespace privsan;

int main() {
  bench::BenchDataset dataset = bench::LoadDataset();
  bench::JsonReport report("fig6_diffratio");
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  const double min_support = 1.0 / 500;
  constexpr int kSamples = 10;
  constexpr int kBins = 10;

  OumpResult oump = SolveOump(dataset.log, params).value();
  if (oump.lambda == 0) {
    std::cout << "budget too tight on this dataset scale\n";
    return 0;
  }
  // Two output sizes in the same ratio as the paper's 4000 / 6000 vs their
  // lambda = 13088: ~31% and ~46%.
  const std::vector<uint64_t> sizes = {
      std::max<uint64_t>(1, oump.lambda * 31 / 100),
      std::max<uint64_t>(1, oump.lambda * 46 / 100)};

  for (uint64_t size : sizes) {
    FumpOptions options;
    options.min_support = min_support;
    options.output_size = size;
    auto fump = SolveFump(dataset.log, params, options);
    if (!fump.ok()) {
      std::cout << "F-UMP failed at |O|=" << size << ": " << fump.status()
                << "\n";
      continue;
    }
    auto histogram = ComputeDiffRatioHistogram(dataset.log, fump->x, kSamples,
                                               /*seed=*/20120330, kBins);
    if (!histogram.ok()) {
      std::cout << "histogram failed: " << histogram.status() << "\n";
      continue;
    }
    TablePrinter table("Figure 6 — Eq.10 DiffRatio histogram, |O| = " +
                       std::to_string(size) + " (avg over " +
                       std::to_string(kSamples) + " sampled outputs)");
    table.SetHeader({"DiffRatio bin", "# distinct triplets (avg)"});
    for (int b = 0; b < kBins; ++b) {
      std::string label = std::to_string(b * 10) + "-" +
                          std::to_string((b + 1) * 10) + "%";
      if (b == kBins - 1) label += " (incl. >100%)";
      table.AddRow({label, bench::Shorten(histogram->bin_counts[b], 1)});
    }
    table.Print(std::cout);
    std::cout << "fraction of triplets below 40%: "
              << bench::Percent(histogram->fraction_below(0.4), 1)
              << "  (paper: ~75% at the smaller size, ~90% at the larger)\n\n";
    bench::JsonRecord record;
    record.Add("output_size", size)
        .Add("fraction_below_40", histogram->fraction_below(0.4));
    report.Add(std::move(record));

    // Equation 10 compares *global supports*, which differ by the factor
    // |D|/|O| between input and output; under equation-faithful budgets
    // (EXPERIMENTS.md note 2) |O|/|D| is so small that every triplet lands
    // in the top bin. The histogram property Figure 6 illustrates —
    // multinomial sampling preserves each pair's per-user *shape*
    // (Section 3.2, property 2) — is scale-free in the conditional shares
    // x_ijk/x_ij vs c_ijk/c_ij, reported here for retained pairs.
    std::vector<double> share_bins(kBins, 0.0);
    double share_triplets = 0.0;
    for (int sample = 0; sample < kSamples; ++sample) {
      auto sampled = SampleTripletCounts(dataset.log, fump->x,
                                         20120330 + sample);
      if (!sampled.ok()) break;
      for (PairId p = 0; p < dataset.log.num_pairs(); ++p) {
        if (fump->x[p] == 0) continue;
        auto triplets = dataset.log.TripletsOf(p);
        const double c_total =
            static_cast<double>(dataset.log.pair_total(p));
        const double x_total = static_cast<double>(fump->x[p]);
        for (size_t i = 0; i < triplets.size(); ++i) {
          const double input_share = triplets[i].count / c_total;
          const double output_share = (*sampled)[p][i] / x_total;
          const double ratio =
              std::abs((output_share - input_share) / input_share);
          int bin = std::min(kBins - 1, static_cast<int>(ratio * kBins));
          share_bins[bin] += 1.0;
          share_triplets += 1.0;
        }
      }
    }
    if (share_triplets > 0) {
      for (double& b : share_bins) b /= kSamples;
      TablePrinter share_table(
          "Figure 6 (shape variant) — conditional-share DiffRatio, |O| = " +
          std::to_string(size) + ", retained pairs only");
      share_table.SetHeader({"DiffRatio bin", "# triplets (avg)"});
      double below = 0.0, total_binned = 0.0;
      for (int b = 0; b < kBins; ++b) {
        std::string label = std::to_string(b * 10) + "-" +
                            std::to_string((b + 1) * 10) + "%";
        if (b == kBins - 1) label += " (incl. >100%)";
        share_table.AddRow({label, bench::Shorten(share_bins[b], 1)});
        total_binned += share_bins[b];
        if (b < 4) below += share_bins[b];
      }
      share_table.Print(std::cout);
      std::cout << "fraction of retained-pair triplets below 40% (shape): "
                << bench::Percent(total_binned > 0 ? below / total_binned
                                                   : 0.0,
                                  1)
                << "\n\n";
    }
  }
  return 0;
}
