// Factorization microbench: the basis-kernel primitives under the simplex
// — Refactorize, FTRAN, BTRAN — for the Markowitz LU against the
// product-form eta file (and, at small sizes, the dense inverse oracle),
// on random sparse bases of growing density ("growing fill" is exactly the
// regime the LU was built for: the eta file's product-form fill compounds
// with density, the LU's Markowitz ordering contains it).
//
// Per (m, density, kind) record:
//   refactor_seconds      one Refactorize of the basis
//   ftran_seconds         one FTRAN, averaged over many random vectors
//   btran_seconds         one BTRAN, ditto
//   ftran_updated_seconds one FTRAN after `updates` simplex pivots
//   nnz                   factor nonzeros right after Refactorize
//   updated_nnz           factor + update-eta nonzeros after the pivots
//
// Emits BENCH_micro_factorization.json; CI diffs it against the committed
// small-scale baseline (tools/check_bench_regression.py), so a fill
// regression in the LU (nnz) or a kernel slowdown fails the build.
//
// The update-run section measures the update schemes head to head: K
// consecutive simplex-shaped Update() calls (K growing to 50), then FTRAN,
// for Forrest–Tomlin (ft) vs product-form LU updates (pfi) vs the eta file
// (eta). Per record it emits
//   u_nnz           update-file growth: nonzeros added on top of the fresh
//                   factorization by the K updates (FT: U fill + row-eta
//                   terms, minus deleted columns; PFI/eta: eta entries)
//   update_run_len  updates the default refactorization policy (growth
//                   limit 8x) would have sustained before refactorizing
// CI gates u_nnz (lower is better) and update_run_len (higher is better):
// FT's whole point is u_nnz growing slower than the PFI eta count and the
// runs stretching further. `--update=ft|pfi|eta` restricts the section to
// one scheme (the CI smoke job runs --update=ft for a quick signal before
// the full sweep).
#include <cmath>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_factorization_common.h"
#include "lp/eta_file.h"
#include "lp/lu_factorization.h"
#include "lp/sparse_matrix.h"
#include "rng/random.h"
#include "util/timer.h"

using namespace privsan;
using lp::BasisRep;
using lp::DenseBasis;
using lp::EtaFile;
using lp::LuFactorization;
using lp::LuUpdateKind;
using lp::SparseEntry;
using lp::SparseMatrix;

namespace {

struct KernelTimes {
  double refactor_seconds = 0.0;
  double ftran_seconds = 0.0;
  double btran_seconds = 0.0;
  double ftran_updated_seconds = 0.0;
  size_t nnz = 0;
  size_t updated_nnz = 0;
  int updates_applied = 0;
};

size_t Nonzeros(const BasisRep& rep, const EtaFile* eta,
                const LuFactorization* lu) {
  if (eta != nullptr) return eta->eta_nonzeros();
  if (lu != nullptr) return lu->total_nonzeros();
  (void)rep;
  return 0;
}

KernelTimes Measure(BasisRep& rep, const EtaFile* eta,
                    const LuFactorization* lu, const SparseMatrix& A, int m,
                    int updates, Rng& rng) {
  KernelTimes times;
  std::vector<int> basis(m);
  for (int i = 0; i < m; ++i) basis[i] = i;

  {
    WallTimer timer;
    if (!rep.Refactorize(A, basis)) {
      std::cerr << "# unexpected singular bench basis\n";
      return times;
    }
    times.refactor_seconds = timer.ElapsedSeconds();
  }
  times.nnz = Nonzeros(rep, eta, lu);

  // Solve timings, averaged over distinct random vectors so no
  // factorization path gets to cache one solve.
  const int reps = 50;
  std::vector<std::vector<double>> vectors(reps, std::vector<double>(m));
  for (auto& v : vectors) {
    for (double& x : v) x = rng.NextDouble(-2.0, 2.0);
  }
  {
    WallTimer timer;
    double sink = 0.0;
    for (const auto& v : vectors) {
      std::vector<double> x = v;
      rep.Ftran(x);
      sink += x[0];
    }
    times.ftran_seconds = timer.ElapsedSeconds() / reps;
    if (std::isnan(sink)) std::cerr << "# nan\n";
  }
  {
    WallTimer timer;
    double sink = 0.0;
    for (const auto& v : vectors) {
      std::vector<double> x = v;
      rep.Btran(x);
      sink += x[0];
    }
    times.btran_seconds = timer.ElapsedSeconds() / reps;
    if (std::isnan(sink)) std::cerr << "# nan\n";
  }

  // Simplex-shaped updates: FTRAN an entering column, pivot at its largest
  // component (guaranteed stable), register the update.
  std::vector<double> w(m, 0.0);
  for (int k = 0; k < updates; ++k) {
    const int entering = m + k;
    std::fill(w.begin(), w.end(), 0.0);
    for (const SparseEntry& e : A.Column(entering)) w[e.index] = e.value;
    rep.Ftran(w);
    int slot = 0;
    for (int i = 1; i < m; ++i) {
      if (std::abs(w[i]) > std::abs(w[slot])) slot = i;
    }
    if (!rep.Update(w, slot, 1e-9)) break;
    basis[slot] = entering;
    ++times.updates_applied;
  }
  times.updated_nnz = Nonzeros(rep, eta, lu);
  {
    WallTimer timer;
    double sink = 0.0;
    for (const auto& v : vectors) {
      std::vector<double> x = v;
      rep.Ftran(x);
      sink += x[0];
    }
    times.ftran_updated_seconds = timer.ElapsedSeconds() / reps;
    if (std::isnan(sink)) std::cerr << "# nan\n";
  }
  return times;
}

void Report(bench::JsonReport& report, const std::string& label,
            const std::string& kind, int m, double density,
            const KernelTimes& times) {
  bench::JsonRecord record;
  record.Add("record", "factorization")
      .Add("label", label)
      .Add("mode", kind)
      .Add("rows", static_cast<int64_t>(m))
      .Add("refactor_seconds", times.refactor_seconds)
      .Add("ftran_seconds", times.ftran_seconds)
      .Add("btran_seconds", times.btran_seconds)
      .Add("ftran_updated_seconds", times.ftran_updated_seconds)
      .Add("nnz", static_cast<int64_t>(times.nnz))
      .Add("updated_nnz", static_cast<int64_t>(times.updated_nnz));
  report.Add(std::move(record));
  std::cout << "  " << label << " " << kind << ": refactor "
            << bench::Shorten(times.refactor_seconds * 1e3) << " ms, ftran "
            << bench::Shorten(times.ftran_seconds * 1e6) << " us, btran "
            << bench::Shorten(times.btran_seconds * 1e6) << " us, nnz "
            << times.nnz << " -> " << times.updated_nnz << " after "
            << times.updates_applied << " updates\n";
}

// One update run: Refactorize, apply up to `k_updates` simplex-shaped
// pivots (pattern-seeded, through the hyper-sparse entry points so the run
// measures the production kernel), FTRAN. `run_len` is where the default
// growth policy (8x the fresh nonzeros) would have refactorized; the run
// itself continues to k_updates so every scheme's fill is compared over
// the same pivots.
struct UpdateRunTimes {
  double update_seconds = 0.0;  // total across the run
  double ftran_updated_seconds = 0.0;
  int64_t u_nnz = 0;  // nonzeros the run added on top of the fresh factors
  int updates_applied = 0;
  int run_len = 0;
  // Hyper-sparse kernel health over the run's solves: mean nonzeros of a
  // unit-vector BTRAN image (the simplex's pivot-row rho solve), the mean
  // reach fraction, and the share of pattern-driven solves that stayed
  // sparse end to end. Zero for representations without a sparse kernel.
  double rho_nnz = 0.0;
  double reach_fraction = 0.0;
  double sparse_hit_rate = 0.0;
};

UpdateRunTimes MeasureUpdateRun(BasisRep& rep, size_t fresh_nnz,
                                const SparseMatrix& A, int m, int k_updates,
                                Rng& rng) {
  UpdateRunTimes times;
  const double growth_limit = 8.0 * static_cast<double>(fresh_nnz);
  lp::SparseVector w;
  w.Reset(m);
  WallTimer update_timer;
  for (int k = 0; k < k_updates; ++k) {
    const int entering = m + k;
    w.Clear();
    for (const SparseEntry& e : A.Column(entering)) {
      w.values[e.index] = e.value;
      w.pattern.push_back(e.index);
    }
    rep.FtranSparse(w);
    int slot = 0;
    for (int i = 1; i < m; ++i) {
      if (std::abs(w.values[i]) > std::abs(w.values[slot])) slot = i;
    }
    if (!rep.UpdateSparse(w, slot, 1e-9)) break;
    ++times.updates_applied;
    if (static_cast<double>(rep.nonzeros()) <= growth_limit) {
      times.run_len = times.updates_applied;
    }
  }
  times.update_seconds = update_timer.ElapsedSeconds();
  times.u_nnz = static_cast<int64_t>(rep.nonzeros()) -
                static_cast<int64_t>(fresh_nnz);

  const int reps = 50;
  {
    // rho solves: BTRAN of unit vectors, the shape the dual simplex's
    // pivot-row computation feeds the kernel.
    lp::SparseVector rho;
    rho.Reset(m);
    int64_t nnz_sum = 0;
    for (int r = 0; r < reps; ++r) {
      rho.Clear();
      const int slot = static_cast<int>(rng.NextBounded(
          static_cast<uint64_t>(m)));
      rho.values[slot] = 1.0;
      rho.pattern.push_back(slot);
      rep.BtranSparse(rho);
      if (rho.pattern_valid) {
        for (int i : rho.pattern) nnz_sum += rho.values[i] != 0.0 ? 1 : 0;
      } else {
        for (double v : rho.values) nnz_sum += v != 0.0 ? 1 : 0;
      }
    }
    times.rho_nnz = static_cast<double>(nnz_sum) / reps;
  }
  const BasisRep::KernelStats ks = rep.kernel_stats();
  if (ks.sparse_solves > 0) {
    times.reach_fraction =
        ks.reach_fraction_sum / static_cast<double>(ks.sparse_solves);
    times.sparse_hit_rate = static_cast<double>(ks.sparse_hits) /
                            static_cast<double>(ks.sparse_solves);
  }

  WallTimer timer;
  double sink = 0.0;
  for (int r = 0; r < reps; ++r) {
    std::vector<double> x(m);
    for (double& v : x) v = rng.NextDouble(-2.0, 2.0);
    rep.Ftran(x);
    sink += x[0];
  }
  times.ftran_updated_seconds = timer.ElapsedSeconds() / reps;
  if (std::isnan(sink)) std::cerr << "# nan\n";
  return times;
}

void ReportUpdateRun(bench::JsonReport& report, const std::string& label,
                     const std::string& kind, int m,
                     const UpdateRunTimes& times) {
  bench::JsonRecord record;
  record.Add("record", "update_run")
      .Add("label", label)
      .Add("mode", kind)
      .Add("rows", static_cast<int64_t>(m))
      .Add("update_seconds", times.update_seconds)
      .Add("ftran_updated_seconds", times.ftran_updated_seconds)
      .Add("u_nnz", times.u_nnz)
      .Add("update_run_len", static_cast<int64_t>(times.run_len))
      .Add("rho_nnz", times.rho_nnz)
      .Add("reach_fraction", times.reach_fraction)
      .Add("sparse_hit_rate", times.sparse_hit_rate);
  report.Add(std::move(record));
  std::cout << "  " << label << " " << kind << ": " << times.updates_applied
            << " updates in " << bench::Shorten(times.update_seconds * 1e3)
            << " ms, ftran " << bench::Shorten(times.ftran_updated_seconds * 1e6)
            << " us, +" << times.u_nnz << " nnz, run_len " << times.run_len
            << ", rho_nnz " << bench::Shorten(times.rho_nnz)
            << ", reach " << bench::Shorten(times.reach_fraction, 3)
            << ", sparse_hit " << bench::Shorten(times.sparse_hit_rate, 2)
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // --update=ft|pfi|eta restricts the update-run section to one scheme.
  // --hypersparse=0 disables the Gilbert–Peierls reach in the LU modes
  // (the record structure stays identical — CI diffs the two outputs).
  std::string update_filter;
  bool hypersparse = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--update=", 9) == 0) {
      update_filter = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--hypersparse=0") == 0) {
      hypersparse = false;
    } else if (std::strcmp(argv[i], "--hypersparse=1") == 0) {
      hypersparse = true;
    }
  }
  const double hs_threshold = hypersparse ? 0.1 : 0.0;

  bench::JsonReport report("micro_factorization");
  const std::string scale = bench::BenchScaleName();
  const int m = scale == "full" ? 1000 : scale == "medium" ? 400 : 120;
  const int updates = 40;

  std::cout << "== factorization kernels (m = " << m
            << ", growing fill) ==\n";
  for (double density : {0.01, 0.03, 0.08}) {
    Rng rng(1234);
    const SparseMatrix A =
        bench::MakeBasisBenchMatrix(rng, m, updates, density);
    const std::string label =
        "m" + std::to_string(m) + "_d" + bench::Shorten(density, 2);

    {
      Rng solve_rng(7);
      EtaFile eta(/*max_updates=*/updates + 1, /*growth_limit=*/1e9);
      Report(report, label, "eta", m, density,
             Measure(eta, &eta, nullptr, A, m, updates, solve_rng));
    }
    {
      Rng solve_rng(7);
      LuFactorization lu(updates + 1, 1e9);
      Report(report, label, "lu", m, density,
             Measure(lu, nullptr, &lu, A, m, updates, solve_rng));
    }
    if (m <= 200) {
      // The dense oracle is O(m^3) to refactorize; only worth timing small.
      Rng solve_rng(7);
      DenseBasis dense(updates + 1);
      Report(report, label, "dense", m, density,
             Measure(dense, nullptr, nullptr, A, m, updates, solve_rng));
    }
  }

  // --- Update runs: FT vs PFI vs eta over growing K. -----------------------
  const int max_k = 50;
  std::cout << "== update runs (m = " << m << ", K up to " << max_k
            << ") ==\n";
  {
    Rng rng(4321);
    // Simplex-shaped basis (see MakeHypersparseBenchMatrix): the update
    // run drives the hyper-sparse FtranSparse/UpdateSparse path, and a
    // uniformly random basis would force it dense on every solve.
    const SparseMatrix A =
        bench::MakeHypersparseBenchMatrix(rng, m, max_k,
                                          /*structural_fraction=*/0.25,
                                          /*nnz_per_column=*/3.0);
    for (int k_updates : {10, 25, max_k}) {
      const std::string label = "m" + std::to_string(m) + "_k" +
                                std::to_string(k_updates);
      std::vector<int> basis(m);
      auto run = [&](const std::string& kind, BasisRep& rep) {
        if (!update_filter.empty() && update_filter != kind) return;
        for (int i = 0; i < m; ++i) basis[i] = i;
        if (!rep.Refactorize(A, basis)) {
          std::cerr << "# unexpected singular bench basis\n";
          return;
        }
        Rng solve_rng(7);
        ReportUpdateRun(
            report, label, kind, m,
            MeasureUpdateRun(rep, rep.nonzeros(), A, m, k_updates,
                             solve_rng));
      };
      {
        LuFactorization ft(max_k + 1, 1e9, 0.1, LuUpdateKind::kForrestTomlin,
                           hs_threshold);
        run("ft", ft);
      }
      {
        LuFactorization pfi(max_k + 1, 1e9, 0.1, LuUpdateKind::kProductForm,
                            hs_threshold);
        run("pfi", pfi);
      }
      {
        EtaFile eta(max_k + 1, 1e9);
        run("eta", eta);
      }
    }
  }
  return 0;
}
