// Figure 4 — Maximum query-url pair diversity on (ε, δ), SPE heuristic.
//
// D-UMP retained-pair percentage over the same (ε, δ) sweep as Figure 3(a).
// Expected shape: identical trend to F-UMP recall — rising in ε until the
// δ cap binds, higher δ curves higher; the paper tops out around 30%.
#include <iostream>

#include "bench_common.h"
#include "core/dump.h"
#include "util/table_printer.h"

using namespace privsan;

int main() {
  bench::BenchDataset dataset = bench::LoadDataset();
  bench::JsonReport report("fig4_diversity");
  const std::vector<double> deltas = {0.01, 0.1, 0.5, 0.8};

  TablePrinter table(
      "Figure 4 — max retained query-url pairs (%) via SPE (Algorithm 2)");
  std::vector<std::string> header = {"delta \\ e^eps"};
  for (double e_eps : bench::EEpsilonGrid()) {
    header.push_back(bench::Shorten(e_eps, 3));
  }
  table.SetHeader(header);

  for (double delta : deltas) {
    std::vector<std::string> row = {bench::Shorten(delta, 2)};
    for (double e_eps : bench::EEpsilonGrid()) {
      PrivacyParams params = PrivacyParams::FromEEpsilon(e_eps, delta);
      DumpOptions options;
      options.solver = DumpSolverKind::kSpe;
      auto result = SolveDump(dataset.log, params, options);
      row.push_back(result.ok()
                        ? bench::Percent(result->diversity_ratio, 2)
                        : "err");
      if (result.ok()) {
        bench::JsonRecord record;
        record.Add("e_eps", e_eps)
            .Add("delta", delta)
            .Add("retained", result->retained)
            .Add("diversity_ratio", result->diversity_ratio)
            .Add("seconds", result->wall_seconds);
        report.Add(std::move(record));
      }
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nexpected shape: same rising-then-plateau trend as "
               "Figure 3(a); the paper reaches ~30% at (e^eps=2.3, "
               "delta=0.8).\n";
  return 0;
}
