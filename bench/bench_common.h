// Shared setup for the bench harness: dataset selection, the paper's
// parameter grids (Section 6.1), and small formatting helpers.
//
// Every bench binary reproduces one table or figure of the paper on a
// synthetic AOL-profile dataset. PRIVSAN_BENCH_SCALE selects the size:
//   small  — seconds per bench (CI-sized)
//   medium — the default; the full suite runs in minutes
//   full   — Table-3-scale (2500 users); O-UMP/LP-heavy benches take long
#ifndef PRIVSAN_BENCH_BENCH_COMMON_H_
#define PRIVSAN_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/privacy_params.h"
#include "log/preprocess.h"
#include "log/search_log.h"
#include "synth/generator.h"
#include "util/string_util.h"

namespace privsan {
namespace bench {

inline const std::vector<double>& EEpsilonGrid() {
  static const std::vector<double>* grid =
      new std::vector<double>{1.001, 1.01, 1.1, 1.4, 1.7, 2.0, 2.3};
  return *grid;
}

inline const std::vector<double>& DeltaGrid() {
  static const std::vector<double>* grid =
      new std::vector<double>{1e-4, 1e-3, 1e-2, 1e-1, 0.2, 0.5, 0.8};
  return *grid;
}

inline const std::vector<double>& SupportGrid() {
  static const std::vector<double>* grid = new std::vector<double>{
      1.0 / 100, 1.0 / 250, 1.0 / 500, 1.0 / 750, 1.0 / 1000};
  return *grid;
}

// The *effective* scale: unknown PRIVSAN_BENCH_SCALE values fall back to
// medium loudly, so the table banner and the BENCH_*.json artifacts always
// label the dataset that actually ran.
inline std::string BenchScaleName() {
  const char* env = std::getenv("PRIVSAN_BENCH_SCALE");
  if (env == nullptr) return "medium";
  const std::string scale = env;
  if (scale == "small" || scale == "medium" || scale == "full") return scale;
  std::cerr << "# warning: unknown PRIVSAN_BENCH_SCALE '" << scale
            << "', using medium\n";
  return "medium";
}

inline SyntheticLogConfig BenchConfig() {
  const std::string scale = BenchScaleName();
  if (scale == "full") return PaperScaleConfig();
  if (scale == "small") {
    SyntheticLogConfig config = BenchScaleConfig();
    config.num_users = 120;
    config.num_queries = 800;
    config.url_pool = 1000;
    config.num_events = 10000;
    return config;
  }
  return BenchScaleConfig();
}

struct BenchDataset {
  SearchLog raw;
  SearchLog log;  // preprocessed (Condition 1 applied)
  PreprocessStats stats;
};

inline BenchDataset LoadDataset() {
  BenchDataset dataset;
  dataset.raw = GenerateSearchLog(BenchConfig()).value();
  PreprocessResult preprocessed = RemoveUniquePairs(dataset.raw);
  dataset.log = std::move(preprocessed.log);
  dataset.stats = preprocessed.stats;
  std::cout << "# dataset scale: " << BenchScaleName() << " — "
            << dataset.log.num_pairs() << " pairs, "
            << dataset.log.num_users() << " user logs, |D| = "
            << dataset.log.total_clicks() << " (after preprocessing)\n\n";
  return dataset;
}

inline std::string Percent(double fraction, int precision = 1) {
  return FormatDouble(100.0 * fraction, precision) + "%";
}

inline std::string Shorten(double value, int precision = 4) {
  return FormatDouble(value, precision);
}

// Machine-readable companion to the human tables: collects flat records of
// (key, value) fields and writes `BENCH_<name>.json` into the working
// directory on destruction, so the perf trajectory (wall time, iterations,
// refactorizations, nodes, instance size) is trackable across PRs.
//
//   bench::JsonReport report("fig5_solver_runtime");
//   bench::JsonRecord rec;
//   rec.Add("solver", "SPE").Add("seconds", 0.004).Add("retained", 110);
//   report.Add(std::move(rec));
class JsonRecord {
 public:
  JsonRecord& Add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, Quote(value));
    return *this;
  }
  JsonRecord& Add(const std::string& key, const char* value) {
    return Add(key, std::string(value));
  }
  JsonRecord& Add(const std::string& key, double value) {
    std::ostringstream out;
    out.precision(12);
    out << value;
    fields_.emplace_back(key, out.str());
    return *this;
  }
  JsonRecord& Add(const std::string& key, int64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonRecord& Add(const std::string& key, int value) {
    return Add(key, static_cast<int64_t>(value));
  }
  JsonRecord& Add(const std::string& key, uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }

  std::string ToJson() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += Quote(fields_[i].first) + ": " + fields_[i].second;
    }
    return out + "}";
  }

 private:
  static std::string Quote(const std::string& raw) {
    std::string out = "\"";
    for (char c : raw) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    return out + "\"";
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

class JsonReport {
 public:
  explicit JsonReport(std::string benchmark)
      : benchmark_(std::move(benchmark)) {}

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  ~JsonReport() { Write(); }

  void Add(JsonRecord record) { records_.push_back(std::move(record)); }

  // Writes BENCH_<benchmark>.json; called by the destructor, public so
  // benches can flush eagerly if they want partial results on abort.
  void Write() {
    const std::string path = "BENCH_" + benchmark_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "# warning: cannot write " << path << "\n";
      return;
    }
    out << "{\n  \"benchmark\": \"" << benchmark_ << "\",\n"
        << "  \"scale\": \"" << BenchScaleName() << "\",\n"
        << "  \"records\": [\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      out << "    " << records_[i].ToJson()
          << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "# wrote " << path << " (" << records_.size()
              << " records)\n";
  }

 private:
  std::string benchmark_;
  std::vector<JsonRecord> records_;
};

}  // namespace bench
}  // namespace privsan

#endif  // PRIVSAN_BENCH_BENCH_COMMON_H_
