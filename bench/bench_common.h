// Shared setup for the bench harness: dataset selection, the paper's
// parameter grids (Section 6.1), and small formatting helpers.
//
// Every bench binary reproduces one table or figure of the paper on a
// synthetic AOL-profile dataset. PRIVSAN_BENCH_SCALE selects the size:
//   small  — seconds per bench (CI-sized)
//   medium — the default; the full suite runs in minutes
//   full   — Table-3-scale (2500 users); O-UMP/LP-heavy benches take long
#ifndef PRIVSAN_BENCH_BENCH_COMMON_H_
#define PRIVSAN_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/privacy_params.h"
#include "log/preprocess.h"
#include "log/search_log.h"
#include "synth/generator.h"
#include "util/string_util.h"

namespace privsan {
namespace bench {

inline const std::vector<double>& EEpsilonGrid() {
  static const std::vector<double>* grid =
      new std::vector<double>{1.001, 1.01, 1.1, 1.4, 1.7, 2.0, 2.3};
  return *grid;
}

inline const std::vector<double>& DeltaGrid() {
  static const std::vector<double>* grid =
      new std::vector<double>{1e-4, 1e-3, 1e-2, 1e-1, 0.2, 0.5, 0.8};
  return *grid;
}

inline const std::vector<double>& SupportGrid() {
  static const std::vector<double>* grid = new std::vector<double>{
      1.0 / 100, 1.0 / 250, 1.0 / 500, 1.0 / 750, 1.0 / 1000};
  return *grid;
}

inline std::string BenchScaleName() {
  const char* env = std::getenv("PRIVSAN_BENCH_SCALE");
  return env == nullptr ? "medium" : env;
}

inline SyntheticLogConfig BenchConfig() {
  const std::string scale = BenchScaleName();
  if (scale == "full") return PaperScaleConfig();
  if (scale == "small") {
    SyntheticLogConfig config = BenchScaleConfig();
    config.num_users = 120;
    config.num_queries = 800;
    config.url_pool = 1000;
    config.num_events = 10000;
    return config;
  }
  return BenchScaleConfig();
}

struct BenchDataset {
  SearchLog raw;
  SearchLog log;  // preprocessed (Condition 1 applied)
  PreprocessStats stats;
};

inline BenchDataset LoadDataset() {
  BenchDataset dataset;
  dataset.raw = GenerateSearchLog(BenchConfig()).value();
  PreprocessResult preprocessed = RemoveUniquePairs(dataset.raw);
  dataset.log = std::move(preprocessed.log);
  dataset.stats = preprocessed.stats;
  std::cout << "# dataset scale: " << BenchScaleName() << " — "
            << dataset.log.num_pairs() << " pairs, "
            << dataset.log.num_users() << " user logs, |D| = "
            << dataset.log.total_clicks() << " (after preprocessing)\n\n";
  return dataset;
}

inline std::string Percent(double fraction, int precision = 1) {
  return FormatDouble(100.0 * fraction, precision) + "%";
}

inline std::string Shorten(double value, int precision = 4) {
  return FormatDouble(value, precision);
}

}  // namespace bench
}  // namespace privsan

#endif  // PRIVSAN_BENCH_BENCH_COMMON_H_
