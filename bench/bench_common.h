// Shared setup for the bench harness: dataset selection, the paper's
// parameter grids (Section 6.1), and small formatting helpers.
//
// Every bench binary reproduces one table or figure of the paper on a
// synthetic AOL-profile dataset. PRIVSAN_BENCH_SCALE selects the size:
//   small  — seconds per bench (CI-sized)
//   medium — the default; the full suite runs in minutes
//   full   — Table-3-scale (2500 users); O-UMP/LP-heavy benches take long
#ifndef PRIVSAN_BENCH_BENCH_COMMON_H_
#define PRIVSAN_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/privacy_params.h"
#include "core/session.h"
#include "core/ump.h"
#include "log/preprocess.h"
#include "log/search_log.h"
#include "synth/generator.h"
#include "util/string_util.h"

namespace privsan {
namespace bench {

inline const std::vector<double>& EEpsilonGrid() {
  static const std::vector<double>* grid =
      new std::vector<double>{1.001, 1.01, 1.1, 1.4, 1.7, 2.0, 2.3};
  return *grid;
}

inline const std::vector<double>& DeltaGrid() {
  static const std::vector<double>* grid =
      new std::vector<double>{1e-4, 1e-3, 1e-2, 1e-1, 0.2, 0.5, 0.8};
  return *grid;
}

inline const std::vector<double>& SupportGrid() {
  static const std::vector<double>* grid = new std::vector<double>{
      1.0 / 100, 1.0 / 250, 1.0 / 500, 1.0 / 750, 1.0 / 1000};
  return *grid;
}

// The *effective* scale: unknown PRIVSAN_BENCH_SCALE values fall back to
// medium loudly, so the table banner and the BENCH_*.json artifacts always
// label the dataset that actually ran.
inline std::string BenchScaleName() {
  const char* env = std::getenv("PRIVSAN_BENCH_SCALE");
  if (env == nullptr) return "medium";
  const std::string scale = env;
  if (scale == "small" || scale == "medium" || scale == "full") return scale;
  std::cerr << "# warning: unknown PRIVSAN_BENCH_SCALE '" << scale
            << "', using medium\n";
  return "medium";
}

inline SyntheticLogConfig BenchConfig() {
  const std::string scale = BenchScaleName();
  if (scale == "full") return PaperScaleConfig();
  if (scale == "small") {
    SyntheticLogConfig config = BenchScaleConfig();
    config.num_users = 120;
    config.num_queries = 800;
    config.url_pool = 1000;
    config.num_events = 10000;
    return config;
  }
  return BenchScaleConfig();
}

struct BenchDataset {
  SearchLog raw;
  SearchLog log;  // preprocessed (Condition 1 applied)
  PreprocessStats stats;
};

inline BenchDataset LoadDataset() {
  BenchDataset dataset;
  dataset.raw = GenerateSearchLog(BenchConfig()).value();
  PreprocessResult preprocessed = RemoveUniquePairs(dataset.raw);
  dataset.log = std::move(preprocessed.log);
  dataset.stats = preprocessed.stats;
  std::cout << "# dataset scale: " << BenchScaleName() << " — "
            << dataset.log.num_pairs() << " pairs, "
            << dataset.log.num_users() << " user logs, |D| = "
            << dataset.log.total_clicks() << " (after preprocessing)\n\n";
  return dataset;
}

inline std::string Percent(double fraction, int precision = 1) {
  return FormatDouble(100.0 * fraction, precision) + "%";
}

inline std::string Shorten(double value, int precision = 4) {
  return FormatDouble(value, precision);
}

// One UmpQuery per (e^ε, δ) cell, row-major over `e_epsilons` x `deltas` —
// the shape of the paper's Table 4/7 sweeps, ready for
// SanitizerSession::SweepBudgets.
inline std::vector<UmpQuery> BudgetGrid(const std::vector<double>& e_epsilons,
                                        const std::vector<double>& deltas) {
  std::vector<UmpQuery> grid;
  grid.reserve(e_epsilons.size() * deltas.size());
  for (double e_eps : e_epsilons) {
    for (double delta : deltas) {
      UmpQuery query;
      query.privacy = PrivacyParams::FromEEpsilon(e_eps, delta);
      grid.push_back(query);
    }
  }
  return grid;
}

// Number of cells whose objective differs between two sweeps of the same
// grid (warm starts must only change the path, never the optimum).
inline int ObjectiveMismatches(const SweepResult& a, const SweepResult& b,
                               double rel_tol = 1e-6) {
  int mismatches = 0;
  const size_t n = std::min(a.cells.size(), b.cells.size());
  for (size_t i = 0; i < n; ++i) {
    const double va = a.cells[i].objective_value;
    const double vb = b.cells[i].objective_value;
    const double scale = std::max({1.0, std::abs(va), std::abs(vb)});
    if (std::abs(va - vb) > rel_tol * scale) ++mismatches;
  }
  return mismatches;
}

// ObjectiveMismatches for D-UMP sweeps. Only path-independent cells compare
// strictly: the LP-free heuristics (SPE, greedy — no simplex iterations)
// and branch & bound runs that proved optimality. LP-rounding outputs and
// budget-truncated B&B incumbents legitimately depend on which optimal
// vertex / search path the (massively degenerate) solve happened to take,
// so a warm-vs-cold difference there is not a regression.
inline int DumpObjectiveMismatches(const SweepResult& warm,
                                   const SweepResult& cold) {
  int mismatches = 0;
  const size_t n = std::min(warm.cells.size(), cold.cells.size());
  for (size_t i = 0; i < n; ++i) {
    const UmpSolution& w = warm.cells[i];
    const UmpSolution& c = cold.cells[i];
    const bool comparable = (w.stats.simplex_iterations == 0 &&
                             c.stats.simplex_iterations == 0) ||
                            (w.proven_optimal && c.proven_optimal);
    if (comparable && w.output_size != c.output_size) ++mismatches;
  }
  return mismatches;
}

// Paired per-cell-cold baseline + warm-started run of one grid through one
// session. Cold runs first — cold solves never touch the session's stored
// bases, so the warm sweep still chains from a clean slate.
struct WarmColdSweeps {
  SweepResult cold;
  SweepResult warm;
};

inline Result<WarmColdSweeps> RunWarmColdSweeps(
    SanitizerSession& session, UtilityObjective objective,
    const std::vector<UmpQuery>& grid, SweepOptions sweep = {}) {
  WarmColdSweeps out;
  SweepOptions cold_options = sweep;
  cold_options.warm_start = false;
  PRIVSAN_ASSIGN_OR_RETURN(
      out.cold, session.SweepBudgets(objective, grid, cold_options));
  sweep.warm_start = true;
  PRIVSAN_ASSIGN_OR_RETURN(out.warm,
                           session.SweepBudgets(objective, grid, sweep));
  return out;
}

// Machine-readable companion to the human tables: collects flat records of
// (key, value) fields and writes `BENCH_<name>.json` into the working
// directory on destruction, so the perf trajectory (wall time, iterations,
// refactorizations, nodes, instance size) is trackable across PRs.
//
//   bench::JsonReport report("fig5_solver_runtime");
//   bench::JsonRecord rec;
//   rec.Add("solver", "SPE").Add("seconds", 0.004).Add("retained", 110);
//   report.Add(std::move(rec));
class JsonRecord {
 public:
  JsonRecord& Add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, Quote(value));
    return *this;
  }
  JsonRecord& Add(const std::string& key, const char* value) {
    return Add(key, std::string(value));
  }
  JsonRecord& Add(const std::string& key, double value) {
    std::ostringstream out;
    out.precision(12);
    out << value;
    fields_.emplace_back(key, out.str());
    return *this;
  }
  JsonRecord& Add(const std::string& key, int64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonRecord& Add(const std::string& key, int value) {
    return Add(key, static_cast<int64_t>(value));
  }
  JsonRecord& Add(const std::string& key, uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }

  std::string ToJson() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += Quote(fields_[i].first) + ": " + fields_[i].second;
    }
    return out + "}";
  }

 private:
  static std::string Quote(const std::string& raw) {
    std::string out = "\"";
    for (char c : raw) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    return out + "\"";
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

// Aggregate record comparing a warm-started SweepBudgets run against its
// per-cell cold baseline over the same grid: cross-cell warm starts are
// working when warm_solves > 0, total simplex iterations are strictly below
// the cold sum, and objective_mismatches is 0.
// `mismatches` overrides the strict per-cell objective comparison when the
// caller has a more meaningful count (e.g. table 7 skips budget-truncated
// branch & bound cells, whose incumbents are path-dependent by design).
inline JsonRecord SweepComparisonRecord(const std::string& label,
                                        const SweepResult& warm,
                                        const SweepResult& cold,
                                        int mismatches = -1) {
  JsonRecord record;
  record.Add("record", "sweep_aggregate")
      .Add("label", label)
      .Add("cells", static_cast<int64_t>(warm.cells.size()))
      .Add("warm_solves", warm.warm_solves)
      .Add("warm_total_simplex_iterations", warm.total_simplex_iterations)
      .Add("cold_total_simplex_iterations", cold.total_simplex_iterations)
      .Add("warm_total_dual_iterations", warm.total_dual_iterations)
      .Add("cold_total_dual_iterations", cold.total_dual_iterations)
      .Add("warm_root_iterations", warm.total_root_iterations)
      .Add("cold_root_iterations", cold.total_root_iterations)
      .Add("warm_seconds", warm.wall_seconds)
      .Add("cold_seconds", cold.wall_seconds)
      .Add("objective_mismatches",
           mismatches >= 0 ? mismatches : ObjectiveMismatches(warm, cold));
  return record;
}

class JsonReport {
 public:
  explicit JsonReport(std::string benchmark)
      : benchmark_(std::move(benchmark)) {}

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  ~JsonReport() { Write(); }

  void Add(JsonRecord record) { records_.push_back(std::move(record)); }

  // Writes BENCH_<benchmark>.json; called by the destructor, public so
  // benches can flush eagerly if they want partial results on abort.
  void Write() {
    const std::string path = "BENCH_" + benchmark_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "# warning: cannot write " << path << "\n";
      return;
    }
    out << "{\n  \"benchmark\": \"" << benchmark_ << "\",\n"
        << "  \"scale\": \"" << BenchScaleName() << "\",\n"
        << "  \"records\": [\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      out << "    " << records_[i].ToJson()
          << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "# wrote " << path << " (" << records_.size()
              << " records)\n";
  }

 private:
  std::string benchmark_;
  std::vector<JsonRecord> records_;
};

}  // namespace bench
}  // namespace privsan

#endif  // PRIVSAN_BENCH_BENCH_COMMON_H_
