// Serve-path throughput: what the SanitizerService layer buys over naive
// re-solving.
//
// Part 1 — append-flush latency. A publisher receiving K append batches
// can (a) cold re-solve after every batch — rebuild preprocessing, DP rows
// and the LP from scratch each time (what the one-shot wrappers do) — or
// (b) enqueue all K batches in the service and let one flush coalesce them
// into a single incremental re-preprocess + DP-row patch + basis remap,
// then solve warm. Same final state, one warm solve instead of K cold ones.
//
// Part 2 — multi-tenant solves/sec. T client threads, each owning a tenant,
// sweep a budget grid through the shared service twice: the first pass
// solves (warm-started within each tenant), the second is pure result-cache
// hits.
//
// Part 3 — snapshot/restore. Solve, snapshot to disk, restore into a fresh
// service ("restart"), re-solve: the restored session must warm-start from
// the remapped basis (reported warm iterations << cold) with an identical
// objective.
//
// Part 4 — mixed append/solve workload. R rounds of "append a small batch,
// then solve" through two service configurations: inline flush (the solve
// pays the coalescing merge + re-preprocess + row patch + basis remap) and
// background flush (the maintenance thread lands the batch between
// requests, so the solve finds the log already flushed). Reports
// p50/p95/p99 of the first-solve-after-append and append-ack latencies per
// mode; final objectives must match each other and a from-scratch cold
// solve.
//
// Part 5 — windowed-stream workload. A sliding user population: each tick
// appends a fresh batch, removes the oldest live batch (RemoveUsers — DP
// rows patched, basis remapped down) and re-solves. The tenant carries a
// privacy budget, so every tick's solve is also an accountant charge. The
// post-removal solve must warm-start and match a cold solve on the
// surviving window; a final ExpireWindow retires the whole population
// through the retention path.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "obs/histogram.h"
#include "util/timer.h"

using namespace privsan;

namespace {

UmpQuery Query(double e_eps, double delta) {
  UmpQuery query;
  query.privacy = PrivacyParams::FromEEpsilon(e_eps, delta);
  return query;
}

// Exact interpolated percentile over raw samples, shared with the serving
// histograms (obs/histogram.h) so bench numbers and scrape quantiles agree
// on semantics.
double PercentileMs(std::vector<double> seconds, double q) {
  return obs::ExactPercentileMs(std::move(seconds), q);
}

double MeanMs(const std::vector<double>& seconds) {
  if (seconds.empty()) return 0.0;
  double total = 0.0;
  for (double s : seconds) total += s;
  return 1e3 * total / static_cast<double>(seconds.size());
}

}  // namespace

int main() {
  bench::JsonReport report("serve_throughput");
  const bench::BenchDataset dataset = bench::LoadDataset();
  const SearchLog& raw = dataset.raw;
  const UmpQuery query = Query(2.0, 0.5);

  // ---- Part 1: per-append cold re-solves vs one batched warm flush ------
  // The serve shape: an established base (90% of users) receiving a stream
  // of small batches. The naive baseline pays a full rebuild + cold solve
  // per batch on an almost-full log; the service pays one coalesced
  // incremental append + one warm solve for the same final state.
  const int kBatches = 12;
  const UserId cut = raw.num_users() * 9 / 10;
  const UserId per_batch =
      (raw.num_users() - cut + kBatches - 1) / kBatches;

  std::cout << "== append-flush latency (" << kBatches << " batches of ~"
            << per_batch << " users onto a " << cut << "-user base) ==\n";

  // (a) The naive loop: every batch triggers a full rebuild + cold solve.
  WallTimer cold_timer;
  int64_t cold_root_iterations = 0;
  uint64_t cold_final_lambda = 0;
  for (int b = 1; b <= kBatches; ++b) {
    const UserId end =
        std::min<UserId>(raw.num_users(), cut + b * per_batch);
    SanitizerSession session =
        SanitizerSession::Create(UserSlice(raw, 0, end)).value();
    const UmpSolution solution =
        session.Solve(UtilityObjective::kOutputSize, query).value();
    cold_root_iterations += solution.stats.root_iterations;
    cold_final_lambda = solution.output_size;
  }
  const double cold_seconds = cold_timer.ElapsedSeconds();

  // (b) The serve path: prime a tenant on the base, enqueue all batches,
  // flush once (coalesced incremental append), solve warm.
  serve::SanitizerService service;
  service.CreateTenant("publisher", UserSlice(raw, 0, cut));
  const UmpSolution primed =
      service.Solve("publisher", UtilityObjective::kOutputSize, query)
          .value();
  (void)primed;  // prime the basis; not part of the append loop below

  WallTimer warm_timer;
  for (int b = 0; b < kBatches; ++b) {
    const UserId begin = cut + b * per_batch;
    const UserId end = std::min<UserId>(raw.num_users(), begin + per_batch);
    service.Append("publisher", UserSlice(raw, begin, end));
  }
  const UmpSolution warm_solution =
      service.Solve("publisher", UtilityObjective::kOutputSize, query)
          .value();
  const double warm_seconds = warm_timer.ElapsedSeconds();
  const serve::TenantStats publisher_stats =
      service.Stats("publisher").value();

  const int mismatches =
      warm_solution.output_size == cold_final_lambda ? 0 : 1;
  const double speedup = warm_seconds > 0 ? cold_seconds / warm_seconds : 0;
  std::cout << "per-append cold: " << cold_seconds << " s ("
            << cold_root_iterations << " root iterations)\n"
            << "batched warm:    " << warm_seconds << " s ("
            << warm_solution.stats.root_iterations << " root iterations, "
            << publisher_stats.flushes << " flush, rows copied/rebuilt "
            << publisher_stats.rows_copied << "/"
            << publisher_stats.rows_rebuilt << ", repair_aborted "
            << publisher_stats.repair_aborted << ")\n"
            << "speedup: " << speedup << "x, objective mismatches: "
            << mismatches << "\n\n";

  {
    bench::JsonRecord record;
    record.Add("record", "append_flush")
        .Add("mode", "per_append_cold")
        .Add("batches", static_cast<int64_t>(kBatches))
        .Add("seconds", cold_seconds)
        .Add("root_iterations", cold_root_iterations);
    report.Add(std::move(record));
  }
  {
    bench::JsonRecord record;
    record.Add("record", "append_flush")
        .Add("mode", "batched_warm")
        .Add("batches", static_cast<int64_t>(kBatches))
        .Add("seconds", warm_seconds)
        .Add("root_iterations", warm_solution.stats.root_iterations)
        .Add("repair_aborted", publisher_stats.repair_aborted)
        .Add("basis_repairs",
             static_cast<int64_t>(warm_solution.stats.basis_repairs))
        .Add("rows_copied", static_cast<int64_t>(publisher_stats.rows_copied))
        .Add("rows_rebuilt",
             static_cast<int64_t>(publisher_stats.rows_rebuilt));
    report.Add(std::move(record));
  }
  {
    bench::JsonRecord record;
    record.Add("record", "append_speedup")
        .Add("batches", static_cast<int64_t>(kBatches))
        .Add("speedup", speedup)
        .Add("objective_mismatches", static_cast<int64_t>(mismatches));
    report.Add(std::move(record));
  }

  // ---- Part 1b: steady-state small append (the row-patch fast path) -----
  // One new user clicking one existing tail pair — the common steady-state
  // event. Most pair totals are untouched, so most DP rows are copied, not
  // recomputed; this record is what gates PatchRows in CI (the bulk append
  // above legitimately rebuilds every row).
  {
    SanitizerSession session = SanitizerSession::Create(raw).value();
    const SearchLog& log = session.log();
    PairId target = 0;
    for (PairId p = 1; p < log.num_pairs(); ++p) {
      if (log.PairUserCount(p) < log.PairUserCount(target)) target = p;
    }
    SearchLogBuilder one_user;
    one_user.Add("steady_state_user", log.query_name(log.pair_query(target)),
                 log.url_name(log.pair_url(target)), 1);
    WallTimer append_timer;
    if (!session.AppendUsers(one_user.Build()).ok()) return 1;
    const AppendStats& append_stats = session.last_append_stats();
    std::cout << "single-user append: " << append_timer.ElapsedSeconds()
              << " s, rows copied/rebuilt " << append_stats.rows_copied
              << "/" << append_stats.rows_rebuilt << "\n\n";
    bench::JsonRecord record;
    record.Add("record", "small_append")
        .Add("seconds", append_stats.seconds)
        .Add("rows_copied", static_cast<int64_t>(append_stats.rows_copied))
        .Add("rows_rebuilt",
             static_cast<int64_t>(append_stats.rows_rebuilt));
    report.Add(std::move(record));
  }

  // ---- Part 2: multi-tenant solves/sec ----------------------------------
  const int kTenants = 4;
  std::vector<UmpQuery> grid =
      bench::BudgetGrid(bench::EEpsilonGrid(), {1e-3, 1e-1, 0.5});
  std::cout << "== multi-tenant throughput (" << kTenants
            << " tenants x " << grid.size() << "-cell grid) ==\n";
  for (int t = 0; t < kTenants; ++t) {
    // Distinct per-tenant logs: disjoint user slices of the dataset.
    const UserId lo = raw.num_users() * t / kTenants;
    const UserId hi = raw.num_users() * (t + 1) / kTenants;
    service.CreateTenant("tenant" + std::to_string(t),
                         UserSlice(raw, lo, hi));
  }
  for (const char* mode : {"warm", "cached"}) {
    WallTimer timer;
    std::atomic<int64_t> solved{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < kTenants; ++t) {
      clients.emplace_back([&service, &grid, &solved, t] {
        const std::string name = "tenant" + std::to_string(t);
        for (const UmpQuery& cell : grid) {
          if (service.Solve(name, UtilityObjective::kOutputSize, cell)
                  .ok()) {
            solved.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& client : clients) client.join();
    const double seconds = timer.ElapsedSeconds();
    const double rate = seconds > 0 ? solved.load() / seconds : 0;
    std::cout << mode << " pass: " << solved.load() << " solves in "
              << seconds << " s = " << rate << " solves/sec\n";
    bench::JsonRecord record;
    record.Add("record", "throughput")
        .Add("mode", mode)
        .Add("tenants", static_cast<int64_t>(kTenants))
        .Add("solves", solved.load())
        .Add("seconds", seconds)
        .Add("solves_per_sec", rate);
    report.Add(std::move(record));
  }
  std::cout << "\n";

  // ---- Part 3: snapshot / restore ---------------------------------------
  std::cout << "== snapshot / restore ==\n";
  const std::string path = "bench_serve_snapshot.bin";
  WallTimer save_timer;
  service.SaveSnapshot("publisher", path);
  const double save_seconds = save_timer.ElapsedSeconds();

  // Cold reference: a fresh session on the same final log.
  SanitizerSession cold_session = SanitizerSession::Create(raw).value();
  const UmpSolution cold_solution =
      cold_session.Solve(UtilityObjective::kOutputSize, query).value();

  serve::SanitizerService restarted;
  WallTimer restore_timer;
  restarted.RestoreTenant("publisher", path);
  const double restore_seconds = restore_timer.ElapsedSeconds();
  const UmpSolution restored_solution =
      restarted.Solve("publisher", UtilityObjective::kOutputSize, query)
          .value();
  std::remove(path.c_str());

  const int snapshot_mismatches =
      restored_solution.output_size == warm_solution.output_size ? 0 : 1;
  std::cout << "cold solve:           " << cold_solution.stats.root_iterations
            << " root iterations\n"
            << "restored warm solve:  "
            << restored_solution.stats.root_iterations
            << " root iterations (warm_started="
            << (restored_solution.stats.warm_started ? 1 : 0) << ")\n"
            << "save " << save_seconds << " s, restore " << restore_seconds
            << " s, objective mismatches: " << snapshot_mismatches << "\n";
  bench::JsonRecord record;
  record.Add("record", "snapshot")
      .Add("cold_root_iterations", cold_solution.stats.root_iterations)
      .Add("restored_root_iterations",
           restored_solution.stats.root_iterations)
      .Add("restored_warm_started",
           static_cast<int64_t>(restored_solution.stats.warm_started ? 1 : 0))
      .Add("save_seconds", save_seconds)
      .Add("restore_seconds", restore_seconds)
      .Add("objective_mismatches", static_cast<int64_t>(snapshot_mismatches));
  report.Add(std::move(record));

  // ---- Part 4: mixed append/solve workload (inline vs background flush) --
  // The steady-state serve shape: one new user trickles in, then the
  // client re-queries its budget. Inline, that first solve pays the whole
  // append-coalescing pipeline — merge + re-preprocess + row patch + basis
  // remap + model rebuild + the append's repair pivots. With maintenance
  // on, the background flush lands the batch, prewarms the models and
  // refreshes the hot query between requests, so the client's solve finds
  // a current cache entry (and, at any other budget, an already
  // re-optimized basis).
  std::cout << "\n== mixed append/solve workload ==\n";
  const int kRounds = 6;
  std::vector<SearchLog> round_batches;
  {
    // Each round's batch is one new user clicking the least-shared pair of
    // the base log (as in Part 1b: most DP rows stay copyable).
    const PreprocessResult base_pre =
        RemoveUniquePairs(UserSlice(raw, 0, raw.num_users() * 9 / 10));
    const SearchLog& base_log = base_pre.log;
    PairId target = 0;
    for (PairId p = 1; p < base_log.num_pairs(); ++p) {
      if (base_log.PairUserCount(p) < base_log.PairUserCount(target)) {
        target = p;
      }
    }
    for (int r = 0; r < kRounds; ++r) {
      SearchLogBuilder one_user;
      one_user.Add("mixed_user_" + std::to_string(r),
                   base_log.query_name(base_log.pair_query(target)),
                   base_log.url_name(base_log.pair_url(target)), 1);
      round_batches.push_back(one_user.Build());
    }
  }

  double mean_solve_ms[2] = {0.0, 0.0};
  uint64_t final_objective[2] = {0, 0};
  int mixed_mismatches = 0;
  for (const char* mode : {"inline_flush", "background_flush"}) {
    const bool background = std::string(mode) == "background_flush";
    serve::ServiceOptions mixed_options;
    if (background) {
      mixed_options.maintenance_interval_ms = 1;
      mixed_options.flush_max_age_ms = 2;
      mixed_options.flush_queue_depth = 64;  // age-triggered in this bench
    }
    serve::SanitizerService mixed(mixed_options);
    mixed.CreateTenant("mix", UserSlice(raw, 0, raw.num_users() * 9 / 10));
    (void)mixed.Solve("mix", UtilityObjective::kOutputSize, query)
        .value();  // prime the basis

    std::vector<double> solve_seconds, append_seconds;
    uint64_t last_solution = 0;
    for (int r = 0; r < kRounds; ++r) {
      WallTimer append_timer;
      if (!mixed.Append("mix", round_batches[r]).ok()) return 1;
      append_seconds.push_back(append_timer.ElapsedSeconds());
      if (background) {
        // Let the maintenance thread land the batch off the query path —
        // the idle gap between traffic bursts in a live service.
        const uint64_t want_flushes = static_cast<uint64_t>(r + 1);
        WallTimer wait_timer;
        while (mixed.Stats("mix").value().flushes < want_flushes) {
          if (wait_timer.ElapsedSeconds() > 10.0) break;
          std::this_thread::yield();
        }
      }
      WallTimer solve_timer;
      const Result<UmpSolution> solution =
          mixed.Solve("mix", UtilityObjective::kOutputSize, query);
      if (!solution.ok()) return 1;
      solve_seconds.push_back(solve_timer.ElapsedSeconds());
      last_solution = solution->output_size;
    }
    const serve::TenantStats mixed_stats = mixed.Stats("mix").value();
    const int index = background ? 1 : 0;
    mean_solve_ms[index] = MeanMs(solve_seconds);
    final_objective[index] = last_solution;

    std::cout << mode << ": first-solve-after-append mean "
              << mean_solve_ms[index] << " ms, p50/p95/p99 "
              << PercentileMs(solve_seconds, 0.50) << "/"
              << PercentileMs(solve_seconds, 0.95) << "/"
              << PercentileMs(solve_seconds, 0.99)
              << " ms; append ack p50 " << PercentileMs(append_seconds, 0.50)
              << " ms; maintenance flushes "
              << mixed_stats.maintenance_flushes << ", refresh solves "
              << mixed_stats.refresh_solves << "\n";

    bench::JsonRecord record;
    record.Add("record", "mixed_workload")
        .Add("mode", mode)
        .Add("batches", static_cast<int64_t>(kRounds))
        .Add("mean_first_solve_ms", mean_solve_ms[index])
        .Add("solve_ms_p50", PercentileMs(solve_seconds, 0.50))
        .Add("solve_ms_p95", PercentileMs(solve_seconds, 0.95))
        .Add("solve_ms_p99", PercentileMs(solve_seconds, 0.99))
        .Add("append_ms_p50", PercentileMs(append_seconds, 0.50))
        .Add("append_ms_p95", PercentileMs(append_seconds, 0.95))
        .Add("append_ms_p99", PercentileMs(append_seconds, 0.99))
        .Add("maintenance_flushes", mixed_stats.maintenance_flushes)
        .Add("refresh_solves", mixed_stats.refresh_solves);
    report.Add(std::move(record));
  }

  // Correctness: both modes ran the same append/solve sequence, so their
  // final optima must agree with each other and with a cold solve on the
  // concatenated log.
  {
    SearchLogBuilder full;
    full.AddAll(UserSlice(raw, 0, raw.num_users() * 9 / 10));
    for (const SearchLog& batch : round_batches) full.AddAll(batch);
    SanitizerSession cold_mixed =
        SanitizerSession::Create(full.Build()).value();
    const uint64_t cold_final =
        cold_mixed.Solve(UtilityObjective::kOutputSize, query)
            .value()
            .output_size;
    mixed_mismatches =
        (final_objective[0] == cold_final ? 0 : 1) +
        (final_objective[1] == cold_final ? 0 : 1);
  }
  const double flush_speedup =
      mean_solve_ms[1] > 0 ? mean_solve_ms[0] / mean_solve_ms[1] : 0.0;
  std::cout << "background flush speedup on first-solve-after-append: "
            << flush_speedup << "x, objective mismatches: "
            << mixed_mismatches << "\n";
  {
    bench::JsonRecord record;
    record.Add("record", "mixed_workload_speedup")
        .Add("batches", static_cast<int64_t>(kRounds))
        .Add("background_flush_speedup", flush_speedup)
        .Add("objective_mismatches", static_cast<int64_t>(mixed_mismatches));
    report.Add(std::move(record));
  }

  // ---- Part 5: windowed-stream workload (append + remove + solve) --------
  // A sliding population: the live window holds 60% of the dataset's
  // users; each tick appends the next 10% and retires the oldest 10%.
  std::cout << "\n== windowed-stream workload ==\n";
  const int kTicks = 4;
  const UserId window_base = raw.num_users() * 6 / 10;
  const UserId tick_step = (raw.num_users() - window_base) / kTicks;

  serve::SanitizerService stream_service;
  {
    serve::CreateTenantRequest create{
        "stream", UserSlice(raw, 0, window_base), std::nullopt};
    // Generous budget: every tick's solve is charged and recorded, none
    // refused — the accountant's steady-state bookkeeping cost is in the
    // measured path.
    create.budget.max_epsilon = 1000.0;
    if (!stream_service.Submit(create).get().status.ok()) return 1;
  }
  (void)stream_service.Solve("stream", UtilityObjective::kOutputSize, query)
      .value();  // prime the basis

  std::vector<double> tick_seconds;
  bool remove_warm_started = true;
  uint64_t window_final_objective = 0;
  WallTimer window_timer;
  for (int t = 0; t < kTicks; ++t) {
    const UserId append_lo = window_base + t * tick_step;
    const UserId retire_lo = t * tick_step;
    std::vector<std::string> retired;
    for (UserId u = retire_lo; u < retire_lo + tick_step; ++u) {
      retired.push_back(raw.user_name(u));
    }
    WallTimer tick_timer;
    if (!stream_service
             .Append("stream",
                     UserSlice(raw, append_lo, append_lo + tick_step))
             .ok()) {
      return 1;
    }
    // RemoveUsers flushes the queued append first: one coalesced flush and
    // one row patch per tick, exactly the maintenance-driven expiry shape.
    if (!stream_service.RemoveUsers("stream", retired).ok()) return 1;
    const Result<UmpSolution> ticked = stream_service.Solve(
        "stream", UtilityObjective::kOutputSize, query);
    if (!ticked.ok()) return 1;
    tick_seconds.push_back(tick_timer.ElapsedSeconds());
    remove_warm_started =
        remove_warm_started && ticked->stats.warm_started;
    window_final_objective = ticked->output_size;
  }
  const double window_seconds = window_timer.ElapsedSeconds();
  const serve::TenantStats window_stats =
      stream_service.Stats("stream").value();
  const serve::BudgetStatus window_budget =
      stream_service.Budget("stream").value();

  // Cold reference: the final live window is exactly the surviving slice.
  int window_mismatches = 0;
  {
    SanitizerSession cold_window =
        SanitizerSession::Create(
            UserSlice(raw, kTicks * tick_step, raw.num_users()))
            .value();
    const uint64_t cold_final =
        cold_window.Solve(UtilityObjective::kOutputSize, query)
            .value()
            .output_size;
    window_mismatches = window_final_objective == cold_final ? 0 : 1;
  }

  std::cout << kTicks << " ticks in " << window_seconds << " s (tick p50 "
            << PercentileMs(tick_seconds, 0.50) << " ms); users removed "
            << window_stats.users_removed << ", rows patched on remove "
            << window_stats.rows_patched_on_remove
            << ", remove_warm_started=" << (remove_warm_started ? 1 : 0)
            << ", spent epsilon " << window_budget.spent_epsilon << " over "
            << window_budget.allocations << " charges ("
            << window_budget.refusals << " refusals), objective mismatches: "
            << window_mismatches << "\n";
  {
    bench::JsonRecord record;
    record.Add("record", "windowed_stream")
        .Add("batches", static_cast<int64_t>(kTicks))
        .Add("seconds", window_seconds)
        .Add("tick_ms_p50", PercentileMs(tick_seconds, 0.50))
        .Add("tick_ms_p95", PercentileMs(tick_seconds, 0.95))
        .Add("users_removed",
             static_cast<int64_t>(window_stats.users_removed))
        .Add("rows_patched_on_remove",
             static_cast<int64_t>(window_stats.rows_patched_on_remove))
        .Add("remove_warm_started",
             static_cast<int64_t>(remove_warm_started ? 1 : 0))
        .Add("epsilon_spent_micro",
             static_cast<int64_t>(window_stats.epsilon_spent_micro))
        .Add("budget_refusals",
             static_cast<int64_t>(window_stats.budget_refusals))
        .Add("objective_mismatches",
             static_cast<int64_t>(window_mismatches));
    report.Add(std::move(record));
  }

  // Teardown through the retention path: expire every remaining user.
  {
    WallTimer expire_timer;
    if (!stream_service
             .ExpireWindow("stream",
                           std::numeric_limits<uint64_t>::max())
             .ok()) {
      return 1;
    }
    const double expire_seconds = expire_timer.ElapsedSeconds();
    const uint64_t expired = stream_service.Stats("stream")
                                 .value()
                                 .users_removed -
                             window_stats.users_removed;
    std::cout << "expire-all: " << expired << " users in " << expire_seconds
              << " s\n";
    bench::JsonRecord record;
    record.Add("record", "windowed_expire")
        .Add("seconds", expire_seconds)
        .Add("users_removed", static_cast<int64_t>(expired));
    report.Add(std::move(record));
  }

  // Warm-vs-cold equivalence is a correctness gate, not a perf number.
  return mismatches == 0 && snapshot_mismatches == 0 &&
                 mixed_mismatches == 0 && window_mismatches == 0 &&
                 remove_warm_started
             ? 0
             : 1;
}
