// Figure 5 — Computational performance for solving D-UMP
// (e^ε = 1.7, δ = 1e-3; the paper plots log-scale runtime).
//
// Expected shape: SPE runs orders of magnitude faster than every LP-based
// solver (the paper: SPE ~ seconds vs 10^2-10^4 seconds for the rest).
// Absolute times are hardware-bound; the ordering is the reproduced result.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/dump.h"
#include "util/table_printer.h"

using namespace privsan;

namespace {

void RunCell(const SearchLog& log, double e_eps, double delta,
             const std::string& note, bench::JsonReport& report) {
  PrivacyParams params = PrivacyParams::FromEEpsilon(e_eps, delta);
  TablePrinter table("Figure 5 — D-UMP solver runtime (e^eps = " +
                     privsan::bench::Shorten(e_eps, 2) +
                     ", delta = " + privsan::bench::Shorten(delta, 3) + ")" +
                     note);
  table.SetHeader(
      {"solver", "retained", "seconds", "log10(s)", "slowdown vs SPE"});

  double spe_seconds = 0.0;
  for (DumpSolverKind kind :
       {DumpSolverKind::kSpe, DumpSolverKind::kGreedy,
        DumpSolverKind::kLpRounding, DumpSolverKind::kBranchAndBound}) {
    DumpOptions options;
    options.solver = kind;
    options.bnb.max_nodes = 50;
    options.bnb.time_limit_seconds = 20.0;
    auto result = SolveDump(log, params, options);
    if (!result.ok()) {
      table.AddRow({DumpSolverKindToString(kind), "err", "", "", ""});
      continue;
    }
    if (kind == DumpSolverKind::kSpe) spe_seconds = result->wall_seconds;
    const double seconds = std::max(result->wall_seconds, 1e-9);
    table.AddRow({DumpSolverKindToString(kind),
                  std::to_string(result->retained),
                  privsan::bench::Shorten(seconds, 6),
                  privsan::bench::Shorten(std::log10(seconds), 2),
                  spe_seconds > 0
                      ? privsan::bench::Shorten(seconds / spe_seconds, 1) +
                            "x"
                      : "1.0x"});
    bench::JsonRecord record;
    record.Add("solver", DumpSolverKindToString(kind))
        .Add("e_eps", e_eps)
        .Add("delta", delta)
        .Add("pairs", static_cast<int64_t>(log.num_pairs()))
        .Add("users", static_cast<int64_t>(log.num_users()))
        .Add("retained", result->retained)
        .Add("seconds", seconds)
        .Add("lp_iterations", result->lp_iterations)
        .Add("lp_refactorizations", result->lp_refactorizations)
        .Add("bnb_nodes", result->nodes_explored)
        .Add("bnb_warm_solves", result->warm_solves);
    report.Add(std::move(record));
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  bench::BenchDataset dataset = bench::LoadDataset();
  bench::JsonReport report("fig5_solver_runtime");
  // The paper's cell. Under the equation-faithful budget (see
  // EXPERIMENTS.md note 2) delta = 1e-3 admits no retained pairs, so the
  // runtimes measure pure solver overhead on a degenerate instance.
  RunCell(dataset.log, 1.7, 1e-3, "  [paper's cell]", report);
  // A non-degenerate cell for the meaningful runtime comparison.
  RunCell(dataset.log, 1.7, 0.5, "  [non-degenerate cell]", report);
  std::cout << "paper Fig. 5 (log-scale runtime): SPE < bintprog < "
               "qsopt_ex < scip < feaspump, spanning ~4 orders of "
               "magnitude.\n";
  return 0;
}
