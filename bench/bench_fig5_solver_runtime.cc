// Figure 5 — Computational performance for solving D-UMP
// (e^ε = 1.7, δ = 1e-3; the paper plots log-scale runtime).
//
// Expected shape: SPE runs orders of magnitude faster than every LP-based
// solver (the paper: SPE ~ seconds vs 10^2-10^4 seconds for the rest).
// Absolute times are hardware-bound; the ordering is the reproduced result.
//
// Both cells run per solver through one SanitizerSession: the cold sweep
// is the figure (per-cell runtimes comparable to the paper's one-shot
// setup); a second, warm-started sweep over the same two cells reports in
// the JSON what basis chaining saves the LP-based solvers.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/session.h"
#include "util/table_printer.h"

using namespace privsan;

namespace {

struct CellSpec {
  double e_eps;
  double delta;
  std::string note;
};

}  // namespace

int main() {
  bench::BenchDataset dataset = bench::LoadDataset();
  bench::JsonReport report("fig5_solver_runtime");

  SessionOptions options;
  options.objective = UtilityObjective::kDiversity;
  options.dump.bnb.max_nodes = 50;
  options.dump.bnb.time_limit_seconds = 20.0;
  SanitizerSession session =
      SanitizerSession::Create(dataset.raw, options).value();

  // The paper's cell first. Under the equation-faithful budget (see
  // EXPERIMENTS.md note 2) delta = 1e-3 admits no retained pairs, so its
  // runtimes measure pure solver overhead on a degenerate instance; the
  // second cell is non-degenerate and carries the meaningful comparison.
  const std::vector<CellSpec> cells = {{1.7, 1e-3, "  [paper's cell]"},
                                       {1.7, 0.5, "  [non-degenerate cell]"}};
  const std::vector<DumpSolverKind> solvers = {
      DumpSolverKind::kSpe, DumpSolverKind::kGreedy,
      DumpSolverKind::kLpRounding, DumpSolverKind::kBranchAndBound};

  std::vector<UmpQuery> grid;
  for (const CellSpec& cell : cells) {
    UmpQuery query;
    query.privacy = PrivacyParams::FromEEpsilon(cell.e_eps, cell.delta);
    grid.push_back(query);
  }

  // cold[s] / warm[s]: the sweep of both cells for solver s.
  std::vector<SweepResult> cold, warm;
  for (DumpSolverKind kind : solvers) {
    std::vector<UmpQuery> solver_grid = grid;
    for (UmpQuery& query : solver_grid) query.solver = kind;
    bench::WarmColdSweeps sweeps =
        bench::RunWarmColdSweeps(session, UtilityObjective::kDiversity,
                                 solver_grid)
            .value();
    cold.push_back(std::move(sweeps.cold));
    warm.push_back(std::move(sweeps.warm));
  }

  for (size_t c = 0; c < cells.size(); ++c) {
    TablePrinter table("Figure 5 — D-UMP solver runtime (e^eps = " +
                       bench::Shorten(cells[c].e_eps, 2) + ", delta = " +
                       bench::Shorten(cells[c].delta, 3) + ")" +
                       cells[c].note);
    table.SetHeader(
        {"solver", "retained", "seconds", "log10(s)", "slowdown vs SPE"});
    double spe_seconds = 0.0;
    for (size_t s = 0; s < solvers.size(); ++s) {
      const UmpSolution& solution = cold[s].cells[c];
      if (solvers[s] == DumpSolverKind::kSpe) {
        spe_seconds = solution.stats.wall_seconds;
      }
      const double seconds = std::max(solution.stats.wall_seconds, 1e-9);
      table.AddRow({DumpSolverKindToString(solvers[s]),
                    std::to_string(solution.output_size),
                    bench::Shorten(seconds, 6),
                    bench::Shorten(std::log10(seconds), 2),
                    spe_seconds > 0
                        ? bench::Shorten(seconds / spe_seconds, 1) + "x"
                        : "1.0x"});
      bench::JsonRecord record;
      record.Add("solver", DumpSolverKindToString(solvers[s]))
          .Add("e_eps", cells[c].e_eps)
          .Add("delta", cells[c].delta)
          .Add("pairs", static_cast<int64_t>(session.log().num_pairs()))
          .Add("users", static_cast<int64_t>(session.log().num_users()))
          .Add("retained", solution.output_size)
          .Add("seconds", seconds)
          .Add("lp_iterations", solution.stats.simplex_iterations)
          .Add("lp_refactorizations", solution.stats.refactorizations)
          .Add("bnb_nodes", solution.stats.nodes_explored)
          .Add("bnb_warm_solves", solution.stats.warm_solves)
          .Add("warm_retained", warm[s].cells[c].output_size)
          .Add("warm_seconds", warm[s].cells[c].stats.wall_seconds)
          .Add("warm_lp_iterations",
               warm[s].cells[c].stats.simplex_iterations);
      report.Add(std::move(record));
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  for (size_t s = 0; s < solvers.size(); ++s) {
    report.Add(bench::SweepComparisonRecord(
        std::string("fig5_") + DumpSolverKindToString(solvers[s]), warm[s],
        cold[s], bench::DumpObjectiveMismatches(warm[s], cold[s])));
  }
  std::cout << "paper Fig. 5 (log-scale runtime): SPE < bintprog < "
               "qsopt_ex < scip < feaspump, spanning ~4 orders of "
               "magnitude.\n";
  return 0;
}
