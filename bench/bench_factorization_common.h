// Shared random-basis generator for the factorization benches
// (bench_micro_factorization and the BM_* kernels in bench_micro): one
// definition so eta and LU are always measured on the *same* matrices.
#ifndef PRIVSAN_BENCH_BENCH_FACTORIZATION_COMMON_H_
#define PRIVSAN_BENCH_BENCH_FACTORIZATION_COMMON_H_

#include <utility>
#include <vector>

#include "lp/sparse_matrix.h"
#include "rng/random.h"

namespace privsan {
namespace bench {

// A random m x (2m + extra) matrix whose first m columns form a
// diagonally-dominated (hence nonsingular) basis; columns m.. provide
// entering columns for update benchmarks. `extra` = 0 gives just the basis
// block plus one ring of entering columns.
inline lp::SparseMatrix MakeBasisBenchMatrix(Rng& rng, int m, int extra,
                                             double density) {
  std::vector<lp::Triplet> triplets;
  for (int j = 0; j < m; ++j) {
    for (int i = 0; i < m; ++i) {
      if (i == j) {
        triplets.push_back(lp::Triplet{i, j, 3.0 + rng.NextDouble()});
      } else if (rng.NextBool(density)) {
        triplets.push_back(lp::Triplet{i, j, rng.NextDouble(-1.0, 1.0)});
      }
    }
  }
  for (int j = m; j < 2 * m + extra; ++j) {
    triplets.push_back(lp::Triplet{j % m, j, 1.0 + rng.NextDouble()});
    for (int i = 0; i < m; ++i) {
      if (rng.NextBool(density)) {
        triplets.push_back(lp::Triplet{i, j, rng.NextDouble(-1.0, 1.0)});
      }
    }
  }
  return lp::SparseMatrix(m, 2 * m + extra, std::move(triplets));
}

// A simplex-shaped basis for the hyper-sparse kernel: mostly slack (unit)
// columns with a sparse structural minority, which is what warm simplex
// bases actually look like — and the regime where a Gilbert–Peierls reach
// touches a handful of rows instead of all m. A uniformly random basis is
// the wrong fixture for that path: its L/U dependency graph percolates, so
// every solve's reach is ~m and the sparse kernel (correctly) falls back
// dense. Off-diagonal counts are per *column* (`nnz_per_column` expected
// entries), not a density of m, so the dependency graph stays below the
// percolation threshold at every bench scale; entering columns (m..) get
// the same shape as the structural basis columns.
inline lp::SparseMatrix MakeHypersparseBenchMatrix(Rng& rng, int m, int extra,
                                                   double structural_fraction,
                                                   double nnz_per_column) {
  const double p = nnz_per_column / static_cast<double>(m);
  std::vector<lp::Triplet> triplets;
  for (int j = 0; j < m; ++j) {
    triplets.push_back(lp::Triplet{j, j, 3.0 + rng.NextDouble()});
    if (!rng.NextBool(structural_fraction)) continue;  // slack column
    for (int i = 0; i < m; ++i) {
      if (i != j && rng.NextBool(p)) {
        triplets.push_back(lp::Triplet{i, j, rng.NextDouble(-1.0, 1.0)});
      }
    }
  }
  for (int j = m; j < 2 * m + extra; ++j) {
    triplets.push_back(lp::Triplet{j % m, j, 1.0 + rng.NextDouble()});
    for (int i = 0; i < m; ++i) {
      if (rng.NextBool(p)) {
        triplets.push_back(lp::Triplet{i, j, rng.NextDouble(-1.0, 1.0)});
      }
    }
  }
  return lp::SparseMatrix(m, 2 * m + extra, std::move(triplets));
}

}  // namespace bench
}  // namespace privsan

#endif  // PRIVSAN_BENCH_BENCH_FACTORIZATION_COMMON_H_
