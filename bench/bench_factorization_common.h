// Shared random-basis generator for the factorization benches
// (bench_micro_factorization and the BM_* kernels in bench_micro): one
// definition so eta and LU are always measured on the *same* matrices.
#ifndef PRIVSAN_BENCH_BENCH_FACTORIZATION_COMMON_H_
#define PRIVSAN_BENCH_BENCH_FACTORIZATION_COMMON_H_

#include <utility>
#include <vector>

#include "lp/sparse_matrix.h"
#include "rng/random.h"

namespace privsan {
namespace bench {

// A random m x (2m + extra) matrix whose first m columns form a
// diagonally-dominated (hence nonsingular) basis; columns m.. provide
// entering columns for update benchmarks. `extra` = 0 gives just the basis
// block plus one ring of entering columns.
inline lp::SparseMatrix MakeBasisBenchMatrix(Rng& rng, int m, int extra,
                                             double density) {
  std::vector<lp::Triplet> triplets;
  for (int j = 0; j < m; ++j) {
    for (int i = 0; i < m; ++i) {
      if (i == j) {
        triplets.push_back(lp::Triplet{i, j, 3.0 + rng.NextDouble()});
      } else if (rng.NextBool(density)) {
        triplets.push_back(lp::Triplet{i, j, rng.NextDouble(-1.0, 1.0)});
      }
    }
  }
  for (int j = m; j < 2 * m + extra; ++j) {
    triplets.push_back(lp::Triplet{j % m, j, 1.0 + rng.NextDouble()});
    for (int i = 0; i < m; ++i) {
      if (rng.NextBool(density)) {
        triplets.push_back(lp::Triplet{i, j, rng.NextDouble(-1.0, 1.0)});
      }
    }
  }
  return lp::SparseMatrix(m, 2 * m + extra, std::move(triplets));
}

}  // namespace bench
}  // namespace privsan

#endif  // PRIVSAN_BENCH_BENCH_FACTORIZATION_COMMON_H_
