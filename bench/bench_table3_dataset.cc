// Table 3 — Characteristics of the Data Sets.
//
// Paper: AOL full set / 2500-user experimental sample / preprocessed set
// (unique pairs removed): 1,864,860 / 237,786 / 53,067 tuples and
// 1,190,491 / 163,681 / 6,043 query-url pairs. The synthetic AOL profile
// reproduces the same *structure*: a raw log whose pair dictionary collapses
// massively under Condition-1 preprocessing while most users survive.
#include <iostream>

#include "bench_common.h"
#include "synth/characteristics.h"
#include "util/table_printer.h"

using namespace privsan;

int main() {
  bench::BenchDataset dataset = bench::LoadDataset();
  DatasetCharacteristics raw = ComputeCharacteristics(dataset.raw);
  DatasetCharacteristics pre = ComputeCharacteristics(dataset.log);

  TablePrinter table(
      "Table 3 — dataset characteristics (synthetic AOL profile)");
  table.SetHeader({"", "raw dataset", "preprocessed (no unique pairs)"});
  table.AddRow({"# of total tuples (|D|)",
                FormatWithCommas(static_cast<int64_t>(raw.total_clicks)),
                FormatWithCommas(static_cast<int64_t>(pre.total_clicks))});
  table.AddRow({"# of user logs", std::to_string(raw.num_user_logs),
                std::to_string(pre.num_user_logs)});
  table.AddRow({"# of distinct queries",
                std::to_string(raw.num_distinct_queries),
                std::to_string(pre.num_distinct_queries)});
  table.AddRow({"# of distinct urls", std::to_string(raw.num_distinct_urls),
                std::to_string(pre.num_distinct_urls)});
  table.AddRow({"# of query-url pairs",
                std::to_string(raw.num_query_url_pairs),
                std::to_string(pre.num_query_url_pairs)});
  table.Print(std::cout);

  std::cout << "\npair collapse under Condition 1: "
            << raw.num_query_url_pairs << " -> " << pre.num_query_url_pairs
            << " ("
            << bench::Percent(1.0 - static_cast<double>(
                                        pre.num_query_url_pairs) /
                                        static_cast<double>(
                                            raw.num_query_url_pairs))
            << " removed; paper: 163,681 -> 6,043, 96.3% removed)\n";
  std::cout << "variables in the UMPs:   " << pre.num_query_url_pairs << "\n";
  std::cout << "DP constraints (users):  " << pre.num_user_logs << "\n";
  return 0;
}
