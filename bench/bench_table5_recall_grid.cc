// Table 5 — Recall on Output Size |O| and Minimum Support s
// (e^ε = 2, δ = 0.5).
//
// Expected shape: recall high (the paper reports > 0.73 everywhere, mostly
// > 0.85) and mildly decreasing as |O| grows at fixed s (a larger fixed
// output is harder to keep aligned with the input supports under the same
// budget).
#include <iostream>

#include "bench_common.h"
#include "core/fump.h"
#include "core/oump.h"
#include "metrics/utility_metrics.h"
#include "util/table_printer.h"

using namespace privsan;

int main() {
  bench::BenchDataset dataset = bench::LoadDataset();
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);
  OumpResult oump = SolveOump(dataset.log, params).value();
  std::cout << "lambda = " << oump.lambda << "\n";
  if (oump.lambda == 0) {
    std::cout << "budget too tight on this dataset scale\n";
    return 0;
  }
  std::vector<uint64_t> sizes;
  for (int i = 1; i <= 6; ++i) {
    sizes.push_back(std::max<uint64_t>(1, oump.lambda * (22 + 10 * i) / 100));
  }

  TablePrinter table("Table 5 — Recall on |O| and s (e^eps = 2, delta = 0.5)");
  std::vector<std::string> header = {"s \\ |O|"};
  for (uint64_t size : sizes) header.push_back(std::to_string(size));
  table.SetHeader(header);

  for (double support : bench::SupportGrid()) {
    std::vector<std::string> row = {"1/" + std::to_string(static_cast<int>(
                                               1.0 / support + 0.5))};
    for (uint64_t size : sizes) {
      FumpOptions options;
      options.min_support = support;
      options.output_size = size;
      auto result = SolveFump(dataset.log, params, options);
      if (!result.ok()) {
        row.push_back("err");
        continue;
      }
      PrecisionRecall pr =
          FrequentPairMetrics(dataset.log, result->x, support);
      row.push_back(bench::Shorten(pr.recall, 4));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\npaper Table 5: recall 0.73 .. 0.93 across the grid; "
               "Precision is 1 in every cell (checked by the F-UMP tests).\n";
  return 0;
}
