// Table 5 — Recall on Output Size |O| and Minimum Support s
// (e^ε = 2, δ = 0.5).
//
// Expected shape: recall high (the paper reports > 0.73 everywhere, mostly
// > 0.85) and mildly decreasing as |O| grows at fixed s (a larger fixed
// output is harder to keep aligned with the input supports under the same
// budget).
//
// Each support row is one SweepBudgets call: the six |O| cells share the
// F-UMP model (s shapes the frequent set, |O| only moves right-hand sides
// and bounds), so every cell after the first dual-warm-starts from its
// neighbour's basis. A cold per-cell sweep runs first as the baseline.
#include <iostream>

#include "bench_common.h"
#include "core/session.h"
#include "metrics/utility_metrics.h"
#include "util/table_printer.h"

using namespace privsan;

int main() {
  bench::BenchDataset dataset = bench::LoadDataset();
  bench::JsonReport report("table5_recall_grid");
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);

  SanitizerSession session =
      SanitizerSession::Create(dataset.raw).value();
  UmpQuery oump_query;
  oump_query.privacy = params;
  const uint64_t lambda =
      session.Solve(UtilityObjective::kOutputSize, oump_query)
          .value()
          .output_size;
  std::cout << "lambda = " << lambda << "\n";
  if (lambda == 0) {
    std::cout << "budget too tight on this dataset scale\n";
    return 0;
  }
  std::vector<uint64_t> sizes;
  for (int i = 1; i <= 6; ++i) {
    sizes.push_back(std::max<uint64_t>(1, lambda * (22 + 10 * i) / 100));
  }
  std::vector<UmpQuery> grid;
  for (uint64_t size : sizes) {
    UmpQuery query;
    query.privacy = params;
    query.output_size = size;
    grid.push_back(query);
  }

  TablePrinter table("Table 5 — Recall on |O| and s (e^eps = 2, delta = 0.5)");
  std::vector<std::string> header = {"s \\ |O|"};
  for (uint64_t size : sizes) header.push_back(std::to_string(size));
  table.SetHeader(header);

  int64_t warm_total = 0, cold_total = 0, warm_solves = 0;
  int mismatches = 0;
  for (double support : bench::SupportGrid()) {
    SweepOptions sweep_options;
    sweep_options.min_support = support;
    bench::WarmColdSweeps sweeps =
        bench::RunWarmColdSweeps(session, UtilityObjective::kFrequentPairs,
                                 grid, sweep_options)
            .value();
    const SweepResult& cold = sweeps.cold;
    const SweepResult& warm = sweeps.warm;
    warm_total += warm.total_simplex_iterations;
    cold_total += cold.total_simplex_iterations;
    warm_solves += warm.warm_solves;
    mismatches += bench::ObjectiveMismatches(warm, cold);

    const std::string label =
        "1/" + std::to_string(static_cast<int>(1.0 / support + 0.5));
    std::vector<std::string> row = {label};
    for (size_t i = 0; i < warm.cells.size(); ++i) {
      const UmpSolution& solution = warm.cells[i];
      PrecisionRecall pr =
          FrequentPairMetrics(session.log(), solution.x, support);
      row.push_back(bench::Shorten(pr.recall, 4));
      bench::JsonRecord record;
      record.Add("support", support)
          .Add("output_size", sizes[i])
          .Add("recall", pr.recall)
          .Add("precision", pr.precision)
          .Add("distance_sum", solution.objective_value)
          .Add("warm_started",
               static_cast<int64_t>(solution.stats.warm_started))
          .Add("warm_iterations", solution.stats.simplex_iterations)
          .Add("cold_iterations", cold.cells[i].stats.simplex_iterations);
      report.Add(std::move(record));
    }
    table.AddRow(std::move(row));
    report.Add(bench::SweepComparisonRecord("table5_s_" + label, warm, cold));
  }
  table.Print(std::cout);
  std::cout << "\nsweeps: " << warm_solves << " warm-started cells; simplex "
            << "iterations " << warm_total << " warm vs " << cold_total
            << " cold; " << mismatches << " objective mismatches\n";
  std::cout << "paper Table 5: recall 0.73 .. 0.93 across the grid; "
               "Precision is 1 in every cell (checked by the F-UMP tests).\n";
  return mismatches == 0 ? 0 : 1;
}
