// Figure 3(b) — F-UMP Sum of Support Distances on (ε, δ).
//
// Same sweep as Figure 3(a); the metric is Equation 5 evaluated on the
// rounded counts. Expected shape: the inverse of 3(a) — distances shrink as
// ε grows, flatten at the δ cap, and larger δ gives lower curves.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/fump.h"
#include "core/oump.h"
#include "metrics/utility_metrics.h"
#include "util/table_printer.h"

using namespace privsan;

int main() {
  bench::BenchDataset dataset = bench::LoadDataset();
  bench::JsonReport report("fig3b_support_distance");
  const double min_support = 1.0 / 500;
  const std::vector<double> deltas = {0.01, 0.1, 0.5, 0.8};

  OumpScalingBase base = SolveOumpUnitBudget(dataset.log).value();
  uint64_t max_lambda = 0;
  for (double e_eps : bench::EEpsilonGrid()) {
    for (double delta : deltas) {
      PrivacyParams params = PrivacyParams::FromEEpsilon(e_eps, delta);
      max_lambda = std::max(
          max_lambda,
          RoundScaledOump(dataset.log, params, base).value().lambda);
    }
  }
  const uint64_t target = std::max<uint64_t>(1, max_lambda * 3 / 4);
  std::cout << "fixed output size |O| = " << target << ", s = 1/500\n\n";

  TablePrinter table(
      "Figure 3(b) — sum of frequent-pair support distances (Eq. 5)");
  std::vector<std::string> header = {"delta \\ e^eps"};
  for (double e_eps : bench::EEpsilonGrid()) {
    header.push_back(bench::Shorten(e_eps, 3));
  }
  table.SetHeader(header);

  for (double delta : deltas) {
    std::vector<std::string> row = {bench::Shorten(delta, 2)};
    for (double e_eps : bench::EEpsilonGrid()) {
      PrivacyParams params = PrivacyParams::FromEEpsilon(e_eps, delta);
      OumpResult lambda_cell =
          RoundScaledOump(dataset.log, params, base).value();
      if (lambda_cell.lambda == 0) {
        // No output at all: every frequent pair is at full distance.
        row.push_back(bench::Shorten(
            SupportDistanceSum(dataset.log,
                               std::vector<uint64_t>(
                                   dataset.log.num_pairs(), 0),
                               min_support),
            4));
        continue;
      }
      FumpOptions options;
      options.min_support = min_support;
      options.output_size = std::min(target, lambda_cell.lambda);
      auto result = SolveFump(dataset.log, params, options);
      if (!result.ok()) {
        row.push_back("err");
        continue;
      }
      const double distance =
          SupportDistanceSum(dataset.log, result->x, min_support);
      row.push_back(bench::Shorten(distance, 4));
      bench::JsonRecord record;
      record.Add("e_eps", e_eps)
          .Add("delta", delta)
          .Add("output_size", options.output_size)
          .Add("distance_sum", distance);
      report.Add(std::move(record));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nexpected shape: inverse of Figure 3(a) — distances fall "
               "with eps, flatten at the delta cap, larger delta lower "
               "(paper Fig. 3b).\n";
  return 0;
}
