// Ablation — capping output counts at the input counts (x_ij <= c_ij).
//
// The paper's O-UMP leaves output counts uncapped: a pair can be emitted
// more often than the input saw it (the budget, not the data, limits it).
// DESIGN.md flags the cap as a natural variant; this ablation quantifies
// its cost/benefit on λ and on F-UMP-style support fidelity.
#include <iostream>

#include "bench_common.h"
#include "core/oump.h"
#include "metrics/utility_metrics.h"
#include "util/table_printer.h"

using namespace privsan;

int main() {
  bench::BenchDataset dataset = bench::LoadDataset();
  const double min_support = 1.0 / 500;

  TablePrinter table(
      "Ablation — O-UMP with and without the x_ij <= c_ij cap");
  table.SetHeader({"e^eps", "delta", "lambda (uncapped)", "lambda (capped)",
                   "supp.dist (uncapped)", "supp.dist (capped)"});
  for (double e_eps : {1.4, 2.0, 2.3}) {
    for (double delta : {0.1, 0.5, 0.8}) {
      PrivacyParams params = PrivacyParams::FromEEpsilon(e_eps, delta);
      OumpOptions uncapped;
      OumpOptions capped;
      capped.cap_counts_at_input = true;
      auto u = SolveOump(dataset.log, params, uncapped);
      auto c = SolveOump(dataset.log, params, capped);
      if (!u.ok() || !c.ok()) continue;
      table.AddRow({bench::Shorten(e_eps, 2), bench::Shorten(delta, 2),
                    std::to_string(u->lambda), std::to_string(c->lambda),
                    bench::Shorten(
                        SupportDistanceSum(dataset.log, u->x, min_support), 4),
                    bench::Shorten(
                        SupportDistanceSum(dataset.log, c->x, min_support),
                        4)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nreading: the cap can only reduce lambda; it tends to "
               "improve support fidelity by stopping the optimizer from "
               "piling budget onto a few cheap pairs.\n";
  return 0;
}
