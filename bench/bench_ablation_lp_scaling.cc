// Ablation — simplex scaling with problem size.
//
// O-UMP LP cost versus the number of users (constraints) and pairs
// (variables), on growing slices of the synthetic workload. Documents where
// the dense-basis-inverse design is comfortable and where paper-scale
// (PRIVSAN_BENCH_SCALE=full) lands.
#include <iostream>

#include "bench_common.h"
#include "core/oump.h"
#include "log/preprocess.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace privsan;

int main() {
  TablePrinter table("Ablation — O-UMP simplex cost vs dataset size");
  table.SetHeader({"users", "pairs", "|D|", "iterations", "seconds",
                   "lambda"});
  PrivacyParams params = PrivacyParams::FromEEpsilon(2.0, 0.5);

  for (size_t users : {50, 100, 200, 400}) {
    SyntheticLogConfig config = BenchScaleConfig();
    config.num_users = users;
    config.num_events = users * 90;
    config.num_queries = users * 6;
    config.url_pool = users * 8;
    SearchLog log = RemoveUniquePairs(
        GenerateSearchLog(config).value()).log;
    if (log.num_pairs() == 0) continue;
    WallTimer timer;
    auto result = SolveOump(log, params);
    if (!result.ok()) {
      std::cout << "users=" << users << ": " << result.status() << "\n";
      continue;
    }
    table.AddRow({std::to_string(log.num_users()),
                  std::to_string(log.num_pairs()),
                  std::to_string(log.total_clicks()),
                  std::to_string(result->simplex_iterations),
                  bench::Shorten(timer.ElapsedSeconds(), 3),
                  std::to_string(result->lambda)});
  }
  table.Print(std::cout);
  std::cout << "\nreading: per-iteration cost is O(m^2) for the dense basis "
               "inverse (m = users); iteration counts grow roughly linearly "
               "in m for this LP family.\n";
  return 0;
}
