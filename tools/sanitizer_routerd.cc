// sanitizer_routerd — binary-frame front-end that consistent-hashes
// tenants across sanitizer_serverd --listen backends (see net/router.h).
//
// Clients speak the exact same frame protocol as a single serverd, so
// sanitizer_netclient (and the distributed bench) point at the router
// unchanged; each tenant's requests land on one pinned backend and keep
// their FIFO semantics.
//
// stdin is the admin channel, one command per line:
//
//   ADD <port>      connect a backend, rebalance the ring, migrate the
//                   tenants whose ring position moved (snapshot restore —
//                   they resume warm)
//   REMOVE <port>   drain a backend's tenants onto the ring and drop it
//   METRICS         print the router's Prometheus scrape (multi-line,
//                   ends with "# EOF"); a frame-protocol Metrics request
//                   answers with the same text
//   QUIT            shut down
//
// Every admin command answers "OK ..." or "ERR ...", preceded by one
// "MIGRATED <tenant> <from_port> <to_port>" line per moved tenant. On
// startup the daemon prints "READY port=N" once the listening socket is
// bound — process supervisors parse it for the ephemeral port.
//
// Flags:
//   --backends=p1,p2,...   initial backend ports (required)
//   --port=N               listen port (default 0 = ephemeral)
//   --migrate-dir=PATH     where migration snapshots are staged (default
//                          "."); must be a filesystem the backends share
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/router.h"
#include "net/server.h"

namespace {

using namespace privsan;

void PrintMigrations(const std::vector<net::Migration>& migrations) {
  for (const net::Migration& migration : migrations) {
    std::cout << "MIGRATED " << migration.tenant << " " << migration.from
              << " " << migration.to << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  net::Router::Options router_options;
  uint16_t listen_port = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
    const std::string name = arg.substr(0, eq);
    try {
      if (name == "--backends") {
        std::istringstream in(arg.substr(eq + 1));
        std::string token;
        while (std::getline(in, token, ',')) {
          if (!token.empty()) {
            router_options.backends.push_back(
                static_cast<uint16_t>(std::stoul(token)));
          }
        }
      } else if (name == "--port") {
        listen_port = static_cast<uint16_t>(std::stoul(arg.substr(eq + 1)));
      } else if (name == "--migrate-dir") {
        router_options.migrate_dir = arg.substr(eq + 1);
      } else {
        std::cerr << "unknown flag: " << name << "\n";
        return 2;
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << name << "\n";
      return 2;
    }
  }
  if (router_options.backends.empty()) {
    std::cerr << "usage: sanitizer_routerd --backends=p1,p2,...\n";
    return 2;
  }

  net::Router router(std::move(router_options));
  const Status started = router.Start();
  if (!started.ok()) {
    std::cerr << "backend connect failed: " << started.ToString() << "\n";
    return 1;
  }

  net::ServerOptions server_options;
  server_options.port = listen_port;
  // The front-end's writev flush-batching counters land in the registry
  // the router's METRICS verb renders.
  server_options.registry = router.registry();
  net::NetServer server(
      net::NetServer::FrameHandler(
          [&router](serve::ServeRequest request,
                    std::function<void(serve::ServeResponse)> respond) {
            router.Submit(std::move(request), std::move(respond));
          }),
      server_options);
  const Status bound = server.Start();
  if (!bound.ok()) {
    std::cerr << "listen failed: " << bound.ToString() << "\n";
    return 1;
  }
  std::thread serve_thread([&server] {
    const Status served = server.Serve();
    if (!served.ok()) {
      std::cerr << "serve failed: " << served.ToString() << "\n";
    }
  });
  std::cout << "READY port=" << server.port() << std::endl;

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    if (!(in >> command) || command[0] == '#') continue;
    if (command == "QUIT") {
      std::cout << "OK bye" << std::endl;
      break;
    }
    if (command == "METRICS") {
      // Metrics() already ends with its "# EOF\n" terminator.
      std::cout << router.Metrics() << std::flush;
      continue;
    }
    uint16_t port = 0;
    if ((command == "ADD" || command == "REMOVE")) {
      unsigned value = 0;
      if (!(in >> value) || value == 0 || value > 65535) {
        std::cout << "ERR usage: " << command << " <port>" << std::endl;
        continue;
      }
      port = static_cast<uint16_t>(value);
    }
    if (command == "ADD") {
      Result<std::vector<net::Migration>> migrated = router.AddBackend(port);
      if (!migrated.ok()) {
        std::cout << "ERR " << migrated.status().ToString() << std::endl;
      } else {
        PrintMigrations(*migrated);
        std::cout << "OK backends=" << router.backend_count()
                  << " migrated=" << migrated->size() << std::endl;
      }
    } else if (command == "REMOVE") {
      Result<std::vector<net::Migration>> migrated =
          router.RemoveBackend(port);
      if (!migrated.ok()) {
        std::cout << "ERR " << migrated.status().ToString() << std::endl;
      } else {
        PrintMigrations(*migrated);
        std::cout << "OK backends=" << router.backend_count()
                  << " migrated=" << migrated->size() << std::endl;
      }
    } else {
      std::cout << "ERR unknown admin command: " << command << std::endl;
    }
  }

  server.Shutdown();
  serve_thread.join();
  return 0;
}
