#!/usr/bin/env python3
"""Diff BENCH_*.json artifacts against committed baselines.

Usage:
    check_bench_regression.py --baseline-dir bench/baselines BENCH_*.json

Each bench JSON holds flat records; records are matched between the new run
and the baseline by their identity fields (solver, grid coordinates, label,
...). For every shared numeric metric the check fails when the new value
regresses by more than the metric's tolerance relative to the baseline:

  * lower-is-better metrics (iterations, nodes, refactorizations) fail when
    new > baseline * (1 + tol);
  * higher-is-better metrics (retained, recall, lambda, diversity) fail
    when new < baseline * (1 - tol);
  * wall-clock metrics use a much looser tolerance — CI machines vary — and
    objective_mismatches must stay 0.

Baselines are recorded at small scale (PRIVSAN_BENCH_SCALE=small); a run at
a different scale is skipped, not compared. Records present in only one
side are reported but do not fail the check (grids grow across PRs).
"""

import argparse
import json
import os
import sys

# Fields that identify a record rather than measure it.
IDENTITY_FIELDS = {
    "record", "label", "solver", "part", "mode", "e_eps", "delta", "support",
    "output_size", "pairs", "users", "cells", "tenants", "batches", "rows",
    "clients",
}

DEFAULT_TOL = 0.25
# metric -> (direction, tolerance); direction "low" = lower is better.
METRIC_RULES = {
    "seconds": ("low", 3.0),
    "warm_seconds": ("low", 3.0),
    "cold_seconds": ("low", 3.0),
    "lambda": ("high", DEFAULT_TOL),
    "retained": ("high", DEFAULT_TOL),
    "cold_retained": ("high", DEFAULT_TOL),
    "warm_retained": ("high", DEFAULT_TOL),
    "recall": ("high", DEFAULT_TOL),
    "precision": ("high", DEFAULT_TOL),
    "diversity_ratio": ("high", DEFAULT_TOL),
    "warm_solves": ("high", DEFAULT_TOL),
    # Serve-path metrics (bench_serve_throughput). The speedup is a ratio
    # of two times measured back-to-back on the same machine, so it is far
    # more stable than an absolute rate; the warm-start flag must simply
    # never regress to 0.
    "speedup": ("high", 0.6),
    "rows_copied": ("high", DEFAULT_TOL),
    "restored_warm_started": ("high", 0.0),
    # Distributed cluster bench (bench_distributed_throughput). The
    # aggregate rate crosses two real processes, so it is noisier than the
    # in-process rates — same loose tolerance as speedup. A migrated
    # tenant resuming cold is a correctness regression, zero tolerance.
    "agg_solves_per_sec": ("high", 0.6),
    "migrated_warm_started": ("high", 0.0),
    # A warm repair aborting to a cold solve at small scale means the
    # warm-start path regressed outright (the cap is 4m + 1000 there);
    # zero tolerance. (basis_repairs intentionally has no rule: a repair
    # firing is the feature working, not a regression.)
    "repair_aborted": ("low", 0.0),
    # Windowed-stream workload (same bench, PR 10). The tick counts are
    # deterministic for the fixed dataset: fewer users removed means the
    # removal path silently skipped work, and a post-removal solve falling
    # back cold means the basis down-remap regressed — zero tolerance on
    # both. rows_patched_on_remove counts DP rows the removal reused
    # instead of recomputing (higher is better, like rows_copied). A
    # budget refusal with the bench's generous budget is an accountant
    # regression outright.
    "users_removed": ("high", 0.0),
    "rows_patched_on_remove": ("high", DEFAULT_TOL),
    "remove_warm_started": ("high", 0.0),
    "budget_refusals": ("low", 0.0),
    # Factorization microbench (bench_micro_factorization): fill is
    # deterministic for the fixed rng seed, so a growing LU nnz is a real
    # ordering regression, not noise.
    "nnz": ("low", DEFAULT_TOL),
    "updated_nnz": ("low", DEFAULT_TOL),
    # Update-run records (same bench): u_nnz is the nonzeros an update run
    # adds on top of the fresh factors — the Forrest–Tomlin scheme exists
    # to keep it below the product-form eta count, so growth is a real
    # update-kernel regression. update_run_len is how many updates the
    # default growth policy sustains before refactorizing; shrinking runs
    # mean the retuned refactorization trigger lost its headroom.
    "u_nnz": ("low", DEFAULT_TOL),
    "update_run_len": ("high", DEFAULT_TOL),
    # Hyper-sparse kernel health (same bench, update_run records). The rng
    # seeds are fixed so these are deterministic: a growing reach_fraction
    # or rho_nnz means the Gilbert-Peierls reach started touching rows it
    # used not to (a symbolic-pass regression); a falling sparse_hit_rate
    # means solves that used to stay on the pattern-driven kernel now fall
    # back dense.
    "reach_fraction": ("low", DEFAULT_TOL),
    "rho_nnz": ("low", DEFAULT_TOL),
    "sparse_hit_rate": ("high", DEFAULT_TOL),
    # Distances: smaller is better utility-wise.
    "distance_sum": ("low", DEFAULT_TOL),
    "distance_sum_lp": ("low", DEFAULT_TOL),
    "distance_sum_rounded": ("low", DEFAULT_TOL),
    "avg_distance": ("low", DEFAULT_TOL),
    "objective_mismatches": ("low", 0.0),
}
# Everything else numeric (iterations, nodes, refactorizations, ...) is
# treated as lower-is-better effort at the default tolerance.
DEFAULT_RULE = ("low", DEFAULT_TOL)

# Reported but never gated: proven_optimal flips with the B&B wall-clock
# budget, so on a slower runner a drop is machine variance, not regression.
# solves_per_sec: sub-millisecond cached passes make absolute rates pure
# scheduler noise on shared runners; the paired seconds/iteration metrics
# carry the gated signal. mean_first_solve_ms / background_flush_speedup:
# the mixed-workload latency comparison is meaningful at medium scale but
# dominated by scheduler jitter at the small CI scale.
IGNORED_METRICS = {
    "proven_optimal", "solves_per_sec", "mean_first_solve_ms",
    "background_flush_speedup",
    # scaling_ratio only means something with enough cores to run two
    # backends in parallel; the bench itself gates it when the hardware
    # suffices, so the checker treats both as machine facts, not metrics.
    "scaling_ratio", "hardware_concurrency",
}

# Latency percentiles are reported-only: tail percentiles over a handful of
# samples on a shared runner measure the machine, not the code. The paired
# iteration/row-count metrics carry the gated signal.
REPORTED_ONLY_SUFFIXES = ("_p50", "_p95", "_p99")


def reported_only(name):
    return name in IGNORED_METRICS or name.endswith(REPORTED_ONLY_SUFFIXES)

# Effort metrics can legitimately be tiny; skip noise-dominated comparisons.
ABSOLUTE_FLOOR = 64


def record_key(record):
    return tuple(sorted(
        (k, v) for k, v in record.items() if k in IDENTITY_FIELDS))


def compare_metric(name, baseline, new):
    """Returns an error string, or None if the metric is within tolerance."""
    direction, tol = METRIC_RULES.get(name, DEFAULT_RULE)
    if name == "objective_mismatches":
        if new > baseline:
            return f"{name}: {new:g} vs baseline {baseline:g} (must not grow)"
        return None
    # Additive slack around the baseline: the relative tolerance, plus an
    # absolute floor so near-zero baselines (FP noise, tiny effort counts)
    # don't produce spurious or impossible limits.
    slack = tol * abs(baseline)
    if name.endswith("seconds"):
        slack += 0.25  # sub-second cells are timer noise on shared runners
    else:
        slack += ABSOLUTE_FLOOR if name not in METRIC_RULES else 1e-6
    if direction == "low":
        limit = baseline + slack
        if new > limit:
            return (f"{name}: {new:g} vs baseline {baseline:g} "
                    f"(limit {limit:g})")
    else:
        limit = baseline - slack
        if new < limit:
            return (f"{name}: {new:g} vs baseline {baseline:g} "
                    f"(limit {limit:g})")
    return None


def check_file(new_path, baseline_path):
    with open(new_path) as f:
        new_doc = json.load(f)
    with open(baseline_path) as f:
        base_doc = json.load(f)

    if new_doc.get("scale") != base_doc.get("scale"):
        print(f"  SKIP {new_path}: scale {new_doc.get('scale')!r} vs "
              f"baseline {base_doc.get('scale')!r}")
        return []

    base_records = {record_key(r): r for r in base_doc.get("records", [])}
    errors = []
    matched = 0
    for record in new_doc.get("records", []):
        base = base_records.get(record_key(record))
        if base is None:
            continue
        matched += 1
        for name, value in record.items():
            if name in IDENTITY_FIELDS or reported_only(name) \
                    or name not in base:
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            error = compare_metric(name, float(base[name]), float(value))
            if error:
                errors.append(f"{os.path.basename(new_path)} "
                              f"{dict(record_key(record))}: {error}")
    print(f"  {os.path.basename(new_path)}: {matched} records matched, "
          f"{len(errors)} regressions")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", required=True)
    parser.add_argument("bench_json", nargs="+")
    args = parser.parse_args()

    all_errors = []
    compared = 0
    for new_path in args.bench_json:
        baseline_path = os.path.join(args.baseline_dir,
                                     os.path.basename(new_path))
        if not os.path.exists(baseline_path):
            print(f"  NEW {new_path}: no baseline, skipping")
            continue
        compared += 1
        all_errors.extend(check_file(new_path, baseline_path))

    if all_errors:
        print(f"\n{len(all_errors)} bench regression(s) beyond tolerance:")
        for error in all_errors:
            print(f"  REGRESSION {error}")
        return 1
    print(f"\nbench check OK ({compared} file(s) compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
