// sanitizer_serverd — pipelined line-protocol codec over the typed serve
// API (serve/api.h).
//
// Reads commands from stdin, one per line, and answers on stdout with a
// single "OK ..." or "ERR ..." line per command (blank lines and #-comments
// are ignored), so a whole serving session can be scripted through a pipe:
//
//   CREATE <tenant>                         new empty tenant
//   GEN <tenant> <users> <events> <seed>    enqueue a synthetic append batch
//   APPEND <tenant> <user> <query> <url> <count>   enqueue one click tuple
//   FLUSH <tenant>                          coalesce + apply queued appends
//   SOLVE <tenant> <OUMP|FUMP|DUMP> <e_eps> <delta> [output_size]
//   SWEEP <tenant> <OUMP|FUMP|DUMP> <delta> <e_eps...>   warm-started sweep
//   SNAPSHOT <tenant> <path>                persist session state
//   RESTORE <tenant> <path>                 create tenant from a snapshot
//   STATS <tenant>                          serve-path counters
//   TENANTS                                 list tenants
//   QUIT
//
// The daemon is now a thin codec: each line parses into one or more
// ServeRequests handed to SanitizerService::Submit, and the reply line is
// formatted from the resolved futures. Because Submit returns immediately
// and per-tenant queues preserve submission order, the protocol is
// *pipelined*: issue N commands without waiting, then read N replies in
// order — commands for distinct tenants execute in parallel, commands for
// one tenant in their submitted order. (SOLVE's `cached=` flag rides the
// same ordering: it is computed from Stats requests submitted immediately
// before and after the solve on the same tenant queue.)
//
// Flags (all optional):
//   --maintenance-ms=N    maintenance thread tick (default 0 = off)
//   --flush-depth=N       background flush at queue depth N
//   --flush-age-ms=N      background flush at queue age N ms
//   --memory-budget=N     global resident budget in bytes (0 = unlimited)
//   --spill-dir=PATH      eviction snapshot directory (default ".")
#include <deque>
#include <functional>
#include <future>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/privacy_params.h"
#include "serve/api.h"
#include "serve/service.h"
#include "synth/generator.h"

namespace {

using namespace privsan;

std::optional<UtilityObjective> ParseObjective(const std::string& token) {
  if (token == "OUMP" || token == "O-UMP" || token == "oump") {
    return UtilityObjective::kOutputSize;
  }
  if (token == "FUMP" || token == "F-UMP" || token == "fump") {
    return UtilityObjective::kFrequentPairs;
  }
  if (token == "DUMP" || token == "D-UMP" || token == "dump") {
    return UtilityObjective::kDiversity;
  }
  return std::nullopt;
}

// One in-flight reply: the futures it formats from (in submit order) and
// the formatter producing its single output line.
struct PendingReply {
  std::vector<std::future<serve::ServeResponse>> futures;
  std::function<std::string(std::vector<serve::ServeResponse>&)> format;

  bool Ready() const {
    for (const auto& future : futures) {
      if (future.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        return false;
      }
    }
    return true;
  }

  std::string Resolve() {
    std::vector<serve::ServeResponse> responses;
    responses.reserve(futures.size());
    for (auto& future : futures) responses.push_back(future.get());
    return format(responses);
  }
};

std::string ErrLine(const Status& status) {
  return "ERR " + status.ToString();
}

// The default formatter for ack-only commands.
PendingReply AckReply(std::future<serve::ServeResponse> future,
                      std::string ok_line) {
  PendingReply reply;
  reply.futures.push_back(std::move(future));
  reply.format = [ok_line =
                      std::move(ok_line)](auto& responses) -> std::string {
    return responses[0].ok() ? ok_line : ErrLine(responses[0].status);
  };
  return reply;
}

PendingReply ImmediateReply(std::string line) {
  PendingReply reply;
  reply.format = [line = std::move(line)](auto&) { return line; };
  return reply;
}

std::string FormatStats(const serve::TenantStats& stats) {
  std::ostringstream out;
  out << "OK appends_enqueued=" << stats.appends_enqueued
      << " flushes=" << stats.flushes
      << " appends_coalesced=" << stats.appends_coalesced
      << " maintenance_flushes=" << stats.maintenance_flushes
      << " solves=" << stats.solves << " cache_hits=" << stats.cache_hits
      << " cache_misses=" << stats.cache_misses
      << " repair_aborted=" << stats.repair_aborted
      << " refactorizations=" << stats.refactorizations
      << " factor_nnz=" << stats.factor_nnz
      << " max_update_run=" << stats.max_update_run
      << " rows_copied=" << stats.rows_copied
      << " rows_rebuilt=" << stats.rows_rebuilt
      << " evictions=" << stats.evictions << " reloads=" << stats.reloads
      << " resident_bytes=" << stats.resident_bytes;
  return out.str();
}

uint64_t ParseFlagValue(const std::string& arg, size_t eq) {
  return std::stoull(arg.substr(eq + 1));
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServiceOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
    const std::string name = arg.substr(0, eq);
    try {
      if (name == "--maintenance-ms") {
        options.maintenance_interval_ms =
            static_cast<int>(ParseFlagValue(arg, eq));
      } else if (name == "--flush-depth") {
        options.flush_queue_depth = ParseFlagValue(arg, eq);
      } else if (name == "--flush-age-ms") {
        options.flush_max_age_ms = static_cast<int>(ParseFlagValue(arg, eq));
      } else if (name == "--memory-budget") {
        options.memory_budget_bytes = ParseFlagValue(arg, eq);
      } else if (name == "--spill-dir") {
        options.spill_directory = arg.substr(eq + 1);
      } else {
        std::cerr << "unknown flag: " << name << "\n";
        return 2;
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << name << "\n";
      return 2;
    }
  }

  serve::SanitizerService service(options);

  // Replies print strictly in command order; a bounded window keeps memory
  // flat if a script floods commands faster than solves complete.
  constexpr size_t kMaxPipelineDepth = 256;
  std::deque<PendingReply> pipeline;

  auto flush_ready = [&pipeline](bool drain_all) {
    while (!pipeline.empty() &&
           (drain_all || pipeline.size() >= kMaxPipelineDepth ||
            pipeline.front().Ready())) {
      std::cout << pipeline.front().Resolve() << "\n";
      if (drain_all) std::cout.flush();
      pipeline.pop_front();
    }
    std::cout.flush();
  };

  std::string line;
  bool quit = false;
  while (!quit && std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    if (!(in >> command) || command[0] == '#') continue;

    if (command == "QUIT") {
      pipeline.push_back(ImmediateReply("OK bye"));
      quit = true;
    } else if (command == "TENANTS") {
      // Registry listing is synchronous (tenant names register inside
      // Submit), so this reply needs no future.
      std::string reply = "OK";
      for (const std::string& name : service.Tenants()) reply += ' ' + name;
      pipeline.push_back(ImmediateReply(std::move(reply)));
    } else {
      std::string tenant;
      if (!(in >> tenant)) {
        pipeline.push_back(
            ImmediateReply("ERR usage: " + command + " <tenant> ..."));
        flush_ready(false);
        continue;
      }

      if (command == "CREATE") {
        pipeline.push_back(AckReply(
            service.Submit(serve::CreateTenantRequest{tenant, SearchLog(),
                                                      std::nullopt}),
            "OK created " + tenant));
      } else if (command == "GEN") {
        uint64_t users = 0, events = 0, seed = 0;
        if (!(in >> users >> events >> seed)) {
          pipeline.push_back(
              ImmediateReply("ERR usage: GEN <tenant> <users> <events> "
                             "<seed>"));
        } else {
          SyntheticLogConfig config = TinyConfig();
          config.num_users = users;
          config.num_events = events;
          config.seed = seed;
          // The generator shards over the service's own worker pool —
          // bit-identical to the serial path for the given seed.
          Result<SearchLog> log = GenerateSearchLog(config, service.pool());
          if (!log.ok()) {
            pipeline.push_back(ImmediateReply(ErrLine(log.status())));
          } else {
            std::string ok_line =
                "OK queued users=" + std::to_string(log->num_users()) +
                " clicks=" + std::to_string(log->total_clicks());
            pipeline.push_back(AckReply(
                service.Submit(serve::AppendRequest{tenant, std::move(*log)}),
                std::move(ok_line)));
          }
        }
      } else if (command == "APPEND") {
        std::string user, query, url;
        uint64_t count = 0;
        if (!(in >> user >> query >> url >> count) || count == 0) {
          pipeline.push_back(
              ImmediateReply("ERR usage: APPEND <tenant> <user> <query> "
                             "<url> <count>"));
        } else {
          SearchLogBuilder builder;
          builder.Add(user, query, url, count);
          pipeline.push_back(AckReply(
              service.Submit(serve::AppendRequest{tenant, builder.Build()}),
              "OK queued 1 tuple"));
        }
      } else if (command == "FLUSH") {
        // Flush + Stats on the same tenant queue: the stats snapshot is
        // guaranteed to reflect the finished flush.
        PendingReply reply;
        reply.futures.push_back(
            service.Submit(serve::FlushRequest{tenant}));
        reply.futures.push_back(
            service.Submit(serve::StatsRequest{tenant}));
        reply.format = [](auto& responses) -> std::string {
          if (!responses[0].ok()) return ErrLine(responses[0].status);
          if (!responses[1].ok()) return ErrLine(responses[1].status);
          const serve::TenantStats& stats = *responses[1].stats();
          std::ostringstream out;
          out << "OK flushes=" << stats.flushes
              << " coalesced=" << stats.appends_coalesced
              << " rows_copied=" << stats.rows_copied
              << " rows_rebuilt=" << stats.rows_rebuilt;
          return out.str();
        };
        pipeline.push_back(std::move(reply));
      } else if (command == "SOLVE") {
        std::string objective_token;
        double e_eps = 0.0, delta = 0.0;
        if (!(in >> objective_token >> e_eps >> delta)) {
          pipeline.push_back(
              ImmediateReply("ERR usage: SOLVE <tenant> <OUMP|FUMP|DUMP> "
                             "<e_eps> <delta> [output_size]"));
        } else if (auto objective = ParseObjective(objective_token);
                   !objective.has_value()) {
          pipeline.push_back(
              ImmediateReply("ERR unknown objective: " + objective_token));
        } else {
          UmpQuery query;
          query.privacy = PrivacyParams::FromEEpsilon(e_eps, delta);
          in >> query.output_size;  // optional; stays 0 when absent
          // Stats before + solve + stats after, all FIFO on the tenant
          // queue: `cached=` is exact even mid-pipeline.
          PendingReply reply;
          reply.futures.push_back(
              service.Submit(serve::StatsRequest{tenant}));
          reply.futures.push_back(service.Submit(
              serve::SolveRequest{tenant, *objective, query}));
          reply.futures.push_back(
              service.Submit(serve::StatsRequest{tenant}));
          reply.format = [](auto& responses) -> std::string {
            if (!responses[1].ok()) return ErrLine(responses[1].status);
            const UmpSolution& solution = *responses[1].solution();
            const uint64_t hits_before =
                responses[0].ok() ? responses[0].stats()->cache_hits : 0;
            const uint64_t hits_after =
                responses[2].ok() ? responses[2].stats()->cache_hits : 0;
            std::ostringstream out;
            out << "OK objective=" << solution.objective_value
                << " output_size=" << solution.output_size
                << " warm=" << (solution.stats.warm_started ? 1 : 0)
                << " cached=" << (hits_after > hits_before ? 1 : 0)
                << " root_iterations=" << solution.stats.root_iterations;
            return out.str();
          };
          pipeline.push_back(std::move(reply));
        }
      } else if (command == "SWEEP") {
        std::string objective_token;
        double delta = 0.0;
        if (!(in >> objective_token >> delta)) {
          pipeline.push_back(
              ImmediateReply("ERR usage: SWEEP <tenant> <OUMP|FUMP|DUMP> "
                             "<delta> <e_eps...>"));
        } else if (auto objective = ParseObjective(objective_token);
                   !objective.has_value()) {
          pipeline.push_back(
              ImmediateReply("ERR unknown objective: " + objective_token));
        } else {
          std::vector<UmpQuery> grid;
          double e_eps = 0.0;
          while (in >> e_eps) {
            UmpQuery query;
            query.privacy = PrivacyParams::FromEEpsilon(e_eps, delta);
            grid.push_back(query);
          }
          if (grid.empty()) {
            pipeline.push_back(
                ImmediateReply("ERR SWEEP needs at least one e_eps value"));
          } else {
            PendingReply reply;
            reply.futures.push_back(service.Submit(serve::SweepRequest{
                tenant, *objective, std::move(grid), SweepOptions{}}));
            reply.format = [](auto& responses) -> std::string {
              if (!responses[0].ok()) return ErrLine(responses[0].status);
              const SweepResult& sweep = *responses[0].sweep();
              std::ostringstream out;
              out << "OK cells=" << sweep.cells.size()
                  << " warm_solves=" << sweep.warm_solves
                  << " simplex_iterations="
                  << sweep.total_simplex_iterations << " objectives=";
              for (size_t i = 0; i < sweep.cells.size(); ++i) {
                out << (i > 0 ? "," : "")
                    << sweep.cells[i].objective_value;
              }
              return out.str();
            };
            pipeline.push_back(std::move(reply));
          }
        }
      } else if (command == "SNAPSHOT") {
        std::string path;
        if (!(in >> path)) {
          pipeline.push_back(
              ImmediateReply("ERR usage: SNAPSHOT <tenant> <path>"));
        } else {
          pipeline.push_back(AckReply(
              service.Submit(serve::SaveSnapshotRequest{tenant, path}),
              "OK wrote " + path));
        }
      } else if (command == "RESTORE") {
        std::string path;
        if (!(in >> path)) {
          pipeline.push_back(
              ImmediateReply("ERR usage: RESTORE <tenant> <path>"));
        } else {
          pipeline.push_back(AckReply(
              service.Submit(serve::RestoreTenantRequest{tenant, path,
                                                         std::nullopt}),
              "OK restored " + tenant));
        }
      } else if (command == "STATS") {
        PendingReply reply;
        reply.futures.push_back(
            service.Submit(serve::StatsRequest{tenant}));
        reply.format = [](auto& responses) -> std::string {
          if (!responses[0].ok()) return ErrLine(responses[0].status);
          return FormatStats(*responses[0].stats());
        };
        pipeline.push_back(std::move(reply));
      } else {
        pipeline.push_back(
            ImmediateReply("ERR unknown command: " + command));
      }
    }
    flush_ready(false);
  }
  flush_ready(true);
  return 0;
}
