// sanitizer_serverd — line-protocol driver for serve::SanitizerService.
//
// Reads commands from stdin, one per line, and answers on stdout with a
// single "OK ..." or "ERR ..." line per command (blank lines and #-comments
// are ignored), so a whole serving session can be scripted through a pipe:
//
//   CREATE <tenant>                         new empty tenant
//   GEN <tenant> <users> <events> <seed>    enqueue a synthetic append batch
//   APPEND <tenant> <user> <query> <url> <count>   enqueue one click tuple
//   FLUSH <tenant>                          coalesce + apply queued appends
//   SOLVE <tenant> <OUMP|FUMP|DUMP> <e_eps> <delta> [output_size]
//   SWEEP <tenant> <OUMP|FUMP|DUMP> <delta> <e_eps...>   warm-started sweep
//   SNAPSHOT <tenant> <path>                persist session state
//   RESTORE <tenant> <path>                 create tenant from a snapshot
//   STATS <tenant>                          serve-path counters
//   TENANTS                                 list tenants
//   QUIT
//
// Appends are only *queued* by APPEND/GEN — a later FLUSH (or the implicit
// flush before a solve) lands the whole queue as one incremental
// re-preprocess + DP-row patch + basis remap. That batching, plus the
// per-tenant result cache and warm-started re-solves, is what
// bench_serve_throughput measures.
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/privacy_params.h"
#include "serve/service.h"
#include "synth/generator.h"

namespace {

using namespace privsan;

std::optional<UtilityObjective> ParseObjective(const std::string& token) {
  if (token == "OUMP" || token == "O-UMP" || token == "oump") {
    return UtilityObjective::kOutputSize;
  }
  if (token == "FUMP" || token == "F-UMP" || token == "fump") {
    return UtilityObjective::kFrequentPairs;
  }
  if (token == "DUMP" || token == "D-UMP" || token == "dump") {
    return UtilityObjective::kDiversity;
  }
  return std::nullopt;
}

void Err(const std::string& message) { std::cout << "ERR " << message << "\n"; }

}  // namespace

int main() {
  serve::SanitizerService service;
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    if (!(in >> command) || command[0] == '#') continue;

    if (command == "QUIT") {
      std::cout << "OK bye\n";
      break;
    }
    if (command == "TENANTS") {
      std::cout << "OK";
      for (const std::string& name : service.Tenants()) {
        std::cout << ' ' << name;
      }
      std::cout << "\n";
      continue;
    }

    std::string tenant;
    if (!(in >> tenant)) {
      Err("usage: " + command + " <tenant> ...");
      continue;
    }

    if (command == "CREATE") {
      Status status = service.CreateTenant(tenant, SearchLog());
      if (!status.ok()) {
        Err(status.ToString());
        continue;
      }
      std::cout << "OK created " << tenant << "\n";
    } else if (command == "GEN") {
      uint64_t users = 0, events = 0, seed = 0;
      if (!(in >> users >> events >> seed)) {
        Err("usage: GEN <tenant> <users> <events> <seed>");
        continue;
      }
      SyntheticLogConfig config = TinyConfig();
      config.num_users = users;
      config.num_events = events;
      config.seed = seed;
      Result<SearchLog> log = GenerateSearchLog(config);
      if (!log.ok()) {
        Err(log.status().ToString());
        continue;
      }
      Status status = service.Append(tenant, *log);
      if (!status.ok()) {
        Err(status.ToString());
        continue;
      }
      std::cout << "OK queued users=" << log->num_users()
                << " clicks=" << log->total_clicks() << "\n";
    } else if (command == "APPEND") {
      std::string user, query, url;
      uint64_t count = 0;
      if (!(in >> user >> query >> url >> count) || count == 0) {
        Err("usage: APPEND <tenant> <user> <query> <url> <count>");
        continue;
      }
      SearchLogBuilder builder;
      builder.Add(user, query, url, count);
      Status status = service.Append(tenant, builder.Build());
      if (!status.ok()) {
        Err(status.ToString());
        continue;
      }
      std::cout << "OK queued 1 tuple\n";
    } else if (command == "FLUSH") {
      Status status = service.Flush(tenant);
      if (!status.ok()) {
        Err(status.ToString());
        continue;
      }
      Result<serve::TenantStats> stats = service.Stats(tenant);
      std::cout << "OK flushes=" << stats->flushes
                << " coalesced=" << stats->appends_coalesced
                << " rows_copied=" << stats->rows_copied
                << " rows_rebuilt=" << stats->rows_rebuilt << "\n";
    } else if (command == "SOLVE") {
      std::string objective_token;
      double e_eps = 0.0, delta = 0.0;
      if (!(in >> objective_token >> e_eps >> delta)) {
        Err("usage: SOLVE <tenant> <OUMP|FUMP|DUMP> <e_eps> <delta> "
            "[output_size]");
        continue;
      }
      const auto objective = ParseObjective(objective_token);
      if (!objective.has_value()) {
        Err("unknown objective: " + objective_token);
        continue;
      }
      UmpQuery query;
      query.privacy = PrivacyParams::FromEEpsilon(e_eps, delta);
      in >> query.output_size;  // optional; stays 0 when absent
      const uint64_t hits_before =
          service.Stats(tenant).ok() ? service.Stats(tenant)->cache_hits : 0;
      Result<UmpSolution> solution =
          service.Solve(tenant, *objective, query);
      if (!solution.ok()) {
        Err(solution.status().ToString());
        continue;
      }
      Result<serve::TenantStats> stats = service.Stats(tenant);
      std::cout << "OK objective=" << solution->objective_value
                << " output_size=" << solution->output_size
                << " warm=" << (solution->stats.warm_started ? 1 : 0)
                << " cached="
                << (stats.ok() && stats->cache_hits > hits_before ? 1 : 0)
                << " root_iterations=" << solution->stats.root_iterations
                << "\n";
    } else if (command == "SWEEP") {
      std::string objective_token;
      double delta = 0.0;
      if (!(in >> objective_token >> delta)) {
        Err("usage: SWEEP <tenant> <OUMP|FUMP|DUMP> <delta> <e_eps...>");
        continue;
      }
      const auto objective = ParseObjective(objective_token);
      if (!objective.has_value()) {
        Err("unknown objective: " + objective_token);
        continue;
      }
      std::vector<UmpQuery> grid;
      double e_eps = 0.0;
      while (in >> e_eps) {
        UmpQuery query;
        query.privacy = PrivacyParams::FromEEpsilon(e_eps, delta);
        grid.push_back(query);
      }
      if (grid.empty()) {
        Err("SWEEP needs at least one e_eps value");
        continue;
      }
      Result<SweepResult> sweep = service.Sweep(tenant, *objective, grid);
      if (!sweep.ok()) {
        Err(sweep.status().ToString());
        continue;
      }
      std::cout << "OK cells=" << sweep->cells.size()
                << " warm_solves=" << sweep->warm_solves
                << " simplex_iterations=" << sweep->total_simplex_iterations
                << " objectives=";
      for (size_t i = 0; i < sweep->cells.size(); ++i) {
        std::cout << (i > 0 ? "," : "") << sweep->cells[i].objective_value;
      }
      std::cout << "\n";
    } else if (command == "SNAPSHOT") {
      std::string path;
      if (!(in >> path)) {
        Err("usage: SNAPSHOT <tenant> <path>");
        continue;
      }
      Status status = service.SaveSnapshot(tenant, path);
      if (!status.ok()) {
        Err(status.ToString());
        continue;
      }
      std::cout << "OK wrote " << path << "\n";
    } else if (command == "RESTORE") {
      std::string path;
      if (!(in >> path)) {
        Err("usage: RESTORE <tenant> <path>");
        continue;
      }
      Status status = service.RestoreTenant(tenant, path);
      if (!status.ok()) {
        Err(status.ToString());
        continue;
      }
      std::cout << "OK restored " << tenant << "\n";
    } else if (command == "STATS") {
      Result<serve::TenantStats> stats = service.Stats(tenant);
      if (!stats.ok()) {
        Err(stats.status().ToString());
        continue;
      }
      std::cout << "OK appends_enqueued=" << stats->appends_enqueued
                << " flushes=" << stats->flushes
                << " appends_coalesced=" << stats->appends_coalesced
                << " solves=" << stats->solves
                << " cache_hits=" << stats->cache_hits
                << " cache_misses=" << stats->cache_misses
                << " repair_aborted=" << stats->repair_aborted
                << " rows_copied=" << stats->rows_copied
                << " rows_rebuilt=" << stats->rows_rebuilt << "\n";
    } else {
      Err("unknown command: " + command);
    }
  }
  return 0;
}
