// sanitizer_serverd — the serving daemon, over stdin or TCP.
//
// Default mode reads the line protocol from stdin and answers on stdout,
// one "OK ..." or "ERR ..." line per command (blank lines and #-comments
// are ignored), so a whole serving session can be scripted through a
// pipe. With --listen the daemon serves TCP on loopback instead: binary
// net/frame.h frames by default (what sanitizer_netclient and the router
// speak), or the same text line protocol with --protocol=text.
//
// The command set (see net/text_protocol.h, shared by every transport):
//
//   CREATE <tenant> [<max_eps> <max_delta> <floor> <basic|advanced>
//                    [<sliding|tumbling> <span_secs>]]
//                                           new empty tenant, optionally
//                                           with an (ε, δ) budget and a
//                                           retention window
//   GEN <tenant> <users> <events> <seed>    enqueue a synthetic append batch
//   APPEND <tenant> <user> <query> <url> <count>   enqueue one click tuple
//   FLUSH <tenant>                          coalesce + apply queued appends
//   SOLVE <tenant> <OUMP|FUMP|DUMP> <e_eps> <delta> [output_size]
//   SWEEP <tenant> <OUMP|FUMP|DUMP> <delta> <e_eps...>   warm-started sweep
//   REMOVE <tenant> <user...>               delete users (DP rows patched,
//                                           basis remapped down)
//   EXPIRE <tenant> <cutoff_secs>           remove users last active before
//                                           the cutoff (unix seconds)
//   BUDGET <tenant>                         privacy-budget accountant state
//   SNAPSHOT <tenant> <path>                persist session state (incl.
//                                           accountant + window)
//   RESTORE <tenant> <path>                 create tenant from a snapshot
//   DROP <tenant>                           drop a tenant
//   STATS <tenant>                          serve-path counters
//   TENANTS                                 list tenants
//   METRICS                                 Prometheus scrape (multi-line,
//                                           ends with "# EOF")
//   SLOWLOG [limit]                         newest slow requests (multi-line:
//                                           "OK slowlog ..." then one
//                                           "SLOW ..." line per record)
//   QUIT
//
// Every transport is *pipelined*: issue N commands without waiting, then
// read N replies in order — commands for distinct tenants execute in
// parallel, commands for one tenant in their submitted order. A malformed
// line (unknown command, counts out of range, bad numbers) answers ERR
// and the pipeline continues; it never kills the daemon.
//
// Flags (all optional):
//   --listen=PORT         serve TCP on 127.0.0.1:PORT (0 = ephemeral);
//                         prints "READY port=N" on stdout when bound
//   --protocol=binary|text   TCP framing (default binary)
//   --threads=N           service worker threads (default: hardware)
//   --max-queue-depth=N   per-tenant admission cap (0 = unlimited)
//   --maintenance-ms=N    maintenance thread tick (default 0 = off)
//   --flush-depth=N       background flush at queue depth N
//   --flush-age-ms=N      background flush at queue age N ms
//   --memory-budget=N     global resident budget in bytes (0 = unlimited)
//   --spill-dir=PATH      eviction snapshot directory (default ".")
//   --slow-threshold-ms=N requests slower than N ms enter the slow log
//                         (0 records every request; default 100)
//   --slow-log-capacity=N slow-log ring size (0 disables; default 128)
#include <condition_variable>
#include <deque>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "net/server.h"
#include "net/text_protocol.h"
#include "serve/api.h"
#include "serve/service.h"

namespace {

using namespace privsan;

uint64_t ParseFlagValue(const std::string& arg, size_t eq) {
  return std::stoull(arg.substr(eq + 1));
}

// One stdin command awaiting its reply line; resolved from a service
// worker thread, printed by the main loop in command order.
struct LineSlot {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::string reply;

  void Resolve(std::string text) {
    {
      std::lock_guard<std::mutex> lock(mu);
      reply = std::move(text);
      done = true;
    }
    cv.notify_one();
  }
  bool Ready() {
    std::lock_guard<std::mutex> lock(mu);
    return done;
  }
  std::string Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return done; });
    return reply;
  }
};

int RunStdin(net::TextProtocol& protocol) {
  // Replies print strictly in command order; a bounded window keeps
  // memory flat if a script floods commands faster than solves complete.
  constexpr size_t kMaxPipelineDepth = 256;
  std::deque<std::shared_ptr<LineSlot>> pipeline;

  auto flush_ready = [&pipeline](bool drain_all) {
    while (!pipeline.empty() &&
           (drain_all || pipeline.size() >= kMaxPipelineDepth ||
            pipeline.front()->Ready())) {
      const std::string reply = pipeline.front()->Wait();
      if (!reply.empty()) std::cout << reply << "\n";
      pipeline.pop_front();
    }
    std::cout.flush();
  };

  std::string line;
  bool quit = false;
  while (!quit && std::getline(std::cin, line)) {
    auto slot = std::make_shared<LineSlot>();
    pipeline.push_back(slot);
    quit = !protocol.Handle(
        line, [slot](std::string reply) { slot->Resolve(std::move(reply)); });
    flush_ready(false);
  }
  flush_ready(true);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServiceOptions options;
  bool listen = false;
  uint16_t listen_port = 0;
  bool text_protocol = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
    const std::string name = arg.substr(0, eq);
    try {
      if (name == "--maintenance-ms") {
        options.maintenance_interval_ms =
            static_cast<int>(ParseFlagValue(arg, eq));
      } else if (name == "--flush-depth") {
        options.flush_queue_depth = ParseFlagValue(arg, eq);
      } else if (name == "--flush-age-ms") {
        options.flush_max_age_ms = static_cast<int>(ParseFlagValue(arg, eq));
      } else if (name == "--memory-budget") {
        options.memory_budget_bytes = ParseFlagValue(arg, eq);
      } else if (name == "--spill-dir") {
        options.spill_directory = arg.substr(eq + 1);
      } else if (name == "--threads") {
        options.num_threads = static_cast<int>(ParseFlagValue(arg, eq));
      } else if (name == "--max-queue-depth") {
        options.max_queue_depth = ParseFlagValue(arg, eq);
      } else if (name == "--slow-threshold-ms") {
        options.slow_request_threshold_ms = std::stod(arg.substr(eq + 1));
      } else if (name == "--slow-log-capacity") {
        options.slow_log_capacity = ParseFlagValue(arg, eq);
      } else if (name == "--listen") {
        listen = true;
        listen_port = static_cast<uint16_t>(ParseFlagValue(arg, eq));
      } else if (name == "--protocol") {
        const std::string value = arg.substr(eq + 1);
        if (value == "binary") {
          text_protocol = false;
        } else if (value == "text") {
          text_protocol = true;
        } else {
          std::cerr << "bad value for --protocol (binary|text)\n";
          return 2;
        }
      } else {
        std::cerr << "unknown flag: " << name << "\n";
        return 2;
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << name << "\n";
      return 2;
    }
  }

  serve::SanitizerService service(options);
  // NOTE: the fast lane stays off — the text SOLVE reply derives its
  // `cached=` flag from a Stats/Solve/Stats sandwich, which needs strict
  // cross-verb FIFO; keeping both transports on the heavy lane also keeps
  // binary and text behaviorally identical for the same script.
  net::TextProtocol protocol(
      [&service](serve::ServeRequest request,
                 std::function<void(serve::ServeResponse)> respond) {
        service.Submit(std::move(request), std::move(respond));
      },
      [&service] { return service.Tenants(); }, service.pool());

  if (!listen) return RunStdin(protocol);

  net::ServerOptions server_options;
  server_options.port = listen_port;
  // The reply-flush batching counters land in the same registry the
  // METRICS verb scrapes.
  server_options.registry = service.registry();
  std::unique_ptr<net::NetServer> server;
  if (text_protocol) {
    server = std::make_unique<net::NetServer>(
        net::NetServer::TextHandler(
            [&protocol](std::string line, net::NetServer::TextDone done) {
              protocol.Handle(line, [done = std::move(done)](
                                        std::string reply) {
                done(reply.empty() ? std::string() : reply + "\n");
              });
            }),
        server_options);
  } else {
    server = std::make_unique<net::NetServer>(&service, server_options);
  }
  const Status started = server->Start();
  if (!started.ok()) {
    std::cerr << "listen failed: " << started.ToString() << "\n";
    return 1;
  }
  // Process supervisors (the distributed bench, CI cluster smokes) parse
  // this line to learn the ephemeral port.
  std::cout << "READY port=" << server->port() << std::endl;
  const Status served = server->Serve();
  if (!served.ok()) {
    std::cerr << "serve failed: " << served.ToString() << "\n";
    return 1;
  }
  return 0;
}
