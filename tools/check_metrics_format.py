#!/usr/bin/env python3
"""Validate a Prometheus text-exposition scrape from the METRICS verb.

Usage:
    check_metrics_format.py scrape1 [scrape2]

With one file the check validates exposition grammar:

  * every sample line parses as `name{labels} value` with a legal metric
    name ([a-zA-Z_:][a-zA-Z0-9_:]*) and legal label names;
  * label values use only the \\\\, \\", and \\n escapes;
  * every sample's family is announced by `# HELP` and `# TYPE` lines
    before its first sample, and the TYPE is counter/gauge/histogram;
  * counter family names end in `_total`;
  * histogram families expose `_bucket` samples with nondecreasing
    cumulative counts and nondecreasing `le` bounds, the last bucket is
    `le="+Inf"` and equals the `_count` sample, and `_sum` is present;
  * the scrape ends with the renderer's `# EOF` marker.

With two files (two scrapes of the same process, in order) the check also
asserts every counter is monotonic: a value in scrape2 below its scrape1
value means a counter reset or double-registered family.

Exit status 0 when clean; 1 with one diagnostic line per violation.
"""

import re
import sys

METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (\S+)$")
# Inside a quoted label value, only these escapes are legal.
LABEL_ESCAPE = re.compile(r'\\[\\"n]')

HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def family_of(name, types):
    """The family a sample belongs to (strips histogram suffixes)."""
    for suffix in HISTOGRAM_SUFFIXES:
        base = name[: -len(suffix)]
        if name.endswith(suffix) and types.get(base) == "histogram":
            return base
    return name


def parse_labels(text, errors, where):
    """'{a="v",b="w"}' -> dict; appends diagnostics to errors."""
    labels = {}
    body = text[1:-1]
    pos = 0
    while pos < len(body):
        eq = body.find("=", pos)
        if eq < 0 or eq + 1 >= len(body) or body[eq + 1] != '"':
            errors.append(f"{where}: malformed label pair in {text!r}")
            return labels
        name = body[pos:eq]
        if not LABEL_NAME.match(name):
            errors.append(f"{where}: bad label name {name!r}")
        end = eq + 2
        value = []
        while end < len(body):
            c = body[end]
            if c == "\\":
                if end + 1 >= len(body) or not LABEL_ESCAPE.match(
                    body[end : end + 2]
                ):
                    errors.append(
                        f"{where}: illegal escape in label value of {name!r}"
                    )
                    end += 1
                else:
                    value.append(body[end : end + 2])
                    end += 2
                continue
            if c == '"':
                break
            if c == "\n":
                errors.append(f"{where}: raw newline in label value")
            value.append(c)
            end += 1
        else:
            errors.append(f"{where}: unterminated label value for {name!r}")
            return labels
        labels[name] = "".join(value)
        pos = end + 1
        if pos < len(body):
            if body[pos] != ",":
                errors.append(f"{where}: expected ',' between labels")
                return labels
            pos += 1
    return labels


def check_scrape(path):
    """Returns (errors, counters) where counters maps sample key -> value."""
    errors = []
    types = {}   # family -> type
    helped = set()
    counters = {}
    # family -> label-key (minus `le`) -> list of (bound, cumulative)
    buckets = {}
    sums = set()
    counts = {}
    saw_eof = False

    with open(path) as handle:
        lines = handle.read().splitlines()
    for lineno, line in enumerate(lines, 1):
        where = f"{path}:{lineno}"
        if not line:
            errors.append(f"{where}: blank line inside a scrape")
            continue
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not METRIC_NAME.match(parts[2]):
                errors.append(f"{where}: malformed HELP line")
            else:
                helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not METRIC_NAME.match(parts[2]):
                errors.append(f"{where}: malformed TYPE line")
                continue
            name, kind = parts[2], parts[3]
            if kind not in ("counter", "gauge", "histogram"):
                errors.append(f"{where}: unknown TYPE {kind!r}")
            if name in types:
                errors.append(f"{where}: duplicate TYPE for {name}")
            types[name] = kind
            if kind == "counter" and not name.endswith("_total"):
                errors.append(
                    f"{where}: counter {name} does not end in _total"
                )
            continue
        if line.startswith("#"):
            continue  # other comments are legal
        match = SAMPLE.match(line)
        if not match:
            errors.append(f"{where}: unparseable sample line {line!r}")
            continue
        name, label_text, value_text = match.groups()
        labels = (
            parse_labels(label_text, errors, where) if label_text else {}
        )
        try:
            value = float(value_text)
        except ValueError:
            errors.append(f"{where}: bad sample value {value_text!r}")
            continue
        family = family_of(name, types)
        if family not in types:
            errors.append(f"{where}: sample {name} precedes its TYPE line")
            continue
        if family not in helped:
            errors.append(f"{where}: family {family} has no HELP line")
        kind = types[family]
        label_key = tuple(
            sorted((k, v) for k, v in labels.items() if k != "le")
        )
        if kind == "counter":
            counters[(name, label_key)] = value
            if value < 0:
                errors.append(f"{where}: negative counter {name}")
        elif kind == "histogram":
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(f"{where}: _bucket sample without le")
                    continue
                bound = (
                    float("inf")
                    if labels["le"] == "+Inf"
                    else float(labels["le"])
                )
                buckets.setdefault(family, {}).setdefault(
                    label_key, []
                ).append((bound, value, where))
                # Cumulative bucket counts are counters too.
                counters[(name, label_key + (("le", labels["le"]),))] = value
            elif name.endswith("_sum"):
                sums.add((family, label_key))
                counters[(name, label_key)] = value
            elif name.endswith("_count"):
                counts[(family, label_key)] = value
                counters[(name, label_key)] = value

    for family, series in buckets.items():
        for label_key, entries in series.items():
            bounds = [bound for bound, _, _ in entries]
            values = [value for _, value, _ in entries]
            where = entries[0][2]
            if bounds != sorted(bounds):
                errors.append(f"{where}: {family} le bounds not ascending")
            if values != sorted(values):
                errors.append(
                    f"{where}: {family} bucket counts not cumulative"
                )
            if bounds[-1] != float("inf"):
                errors.append(f"{where}: {family} missing +Inf bucket")
            elif counts.get((family, label_key)) != values[-1]:
                errors.append(
                    f"{where}: {family} +Inf bucket != _count sample"
                )
            if (family, label_key) not in sums:
                errors.append(f"{where}: {family} missing _sum sample")
    if not saw_eof:
        errors.append(f"{path}: missing '# EOF' terminator")
    return errors, counters


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors, first = check_scrape(argv[1])
    if len(argv) == 3:
        late_errors, second = check_scrape(argv[2])
        errors += late_errors
        for key, early in sorted(first.items()):
            late = second.get(key)
            if late is not None and late < early:
                name, label_key = key
                errors.append(
                    f"counter {name}{dict(label_key)} went backwards: "
                    f"{early} -> {late}"
                )
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        scrapes = "scrape" if len(argv) == 2 else "scrapes"
        print(f"OK: {len(argv) - 1} {scrapes} clean")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
