// sanitizer_netclient — drives a sanitizer_serverd --listen daemon (or a
// sanitizer_routerd front-end) over the binary frame protocol, scripted
// with the exact same text command language the daemon reads on stdin.
//
// Reads commands from stdin, translates each into its ServeRequest
// frames through net/text_protocol.h, pipelines them over one TCP
// connection, and prints the same one-reply-line-per-command output — so
//
//   sanitizer_serverd < script.txt
//   sanitizer_netclient --port=P < script.txt     # serverd --listen=P
//
// produce identical bytes, which is exactly how CI checks that the
// binary and text transports stay behaviorally equivalent. TENANTS is
// the one exception (the wire protocol is per-tenant; a remote client
// has no registry view) and answers ERR.
//
// Flags:
//   --port=N        server port on 127.0.0.1 (required)
//   --attempts=N    connect retries with backoff (default 30)
#include <deque>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <utility>

#include "net/client.h"
#include "net/text_protocol.h"
#include "serve/api.h"

namespace {

using namespace privsan;

// One command's pending reply line. Everything here is single-threaded:
// callbacks fire inside Drain's Receive dispatch, never concurrently.
struct LineSlot {
  bool done = false;
  std::string reply;
};

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 0;
  net::ClientOptions client_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    const std::string name =
        eq == std::string::npos ? arg : arg.substr(0, eq);
    try {
      if (name == "--port" && eq != std::string::npos) {
        port = static_cast<uint16_t>(std::stoul(arg.substr(eq + 1)));
      } else if (name == "--attempts" && eq != std::string::npos) {
        client_options.connect_attempts =
            static_cast<int>(std::stoul(arg.substr(eq + 1)));
      } else {
        std::cerr << "unknown flag: " << arg << "\n";
        return 2;
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << name << "\n";
      return 2;
    }
  }
  if (port == 0) {
    std::cerr << "usage: sanitizer_netclient --port=N < script\n";
    return 2;
  }

  Result<net::NetClient> connected = net::NetClient::Connect(port,
                                                             client_options);
  if (!connected.ok()) {
    std::cerr << "connect failed: " << connected.status().ToString() << "\n";
    return 1;
  }
  net::NetClient client = std::move(*connected);

  // Response callbacks in send order — the server replies FIFO.
  std::deque<std::function<void(serve::ServeResponse)>> awaiting;

  // Receives one response and hands it to the oldest callback. A dead
  // connection fails every remaining callback so each command still
  // prints exactly one line.
  auto drain_one = [&]() {
    Result<serve::ServeResponse> response = client.Receive();
    if (!response.ok()) {
      while (!awaiting.empty()) {
        auto respond = std::move(awaiting.front());
        awaiting.pop_front();
        respond(serve::ServeResponse{response.status(), {}});
      }
      return;
    }
    auto respond = std::move(awaiting.front());
    awaiting.pop_front();
    respond(std::move(*response));
  };

  net::TextProtocol protocol(
      [&](serve::ServeRequest request,
          std::function<void(serve::ServeResponse)> respond) {
        Result<uint64_t> sent = client.Send(request);
        if (!sent.ok()) {
          respond(serve::ServeResponse{sent.status(), {}});
          return;
        }
        awaiting.push_back(std::move(respond));
      });

  constexpr size_t kMaxPipelineDepth = 256;
  std::deque<std::shared_ptr<LineSlot>> pipeline;

  auto flush_ready = [&](bool drain_all) {
    while (!pipeline.empty()) {
      if (!pipeline.front()->done) {
        if (!drain_all && pipeline.size() < kMaxPipelineDepth) break;
        if (awaiting.empty()) break;  // nothing left that could resolve it
        drain_one();
        continue;
      }
      if (!pipeline.front()->reply.empty()) {
        std::cout << pipeline.front()->reply << "\n";
      }
      pipeline.pop_front();
    }
    std::cout.flush();
  };

  std::string line;
  bool quit = false;
  while (!quit && std::getline(std::cin, line)) {
    auto slot = std::make_shared<LineSlot>();
    pipeline.push_back(slot);
    quit = !protocol.Handle(line, [slot](std::string reply) {
      slot->reply = std::move(reply);
      slot->done = true;
    });
    flush_ready(false);
  }
  flush_ready(true);
  return 0;
}
