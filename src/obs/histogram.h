// Lock-free latency histograms for the serving tier.
//
// LatencyHistogram holds a fixed set of log-spaced (power-of-two) buckets
// over microseconds: bucket i counts samples with value <= 2^i us, the
// final bucket catches overflow. Record() is a handful of relaxed atomic
// increments — safe from any thread, cheap enough for the serve hot path
// (one record per request). Snapshot() copies the counters into a plain
// HistogramSnapshot, which supports merging (across threads, backends, or
// scrape intervals) and bucket-interpolated quantiles.
//
// Bucket quantiles are approximations bounded by the bucket width (a
// factor of two). Benches that hold every raw sample anyway should use
// ExactPercentileMs() instead, which is the linear-interpolation
// percentile the benches previously hand-rolled in two places.
#ifndef PRIVSAN_OBS_HISTOGRAM_H_
#define PRIVSAN_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace privsan {
namespace obs {

// Finite buckets: upper bounds 2^0 .. 2^(kNumBuckets-1) microseconds.
// 2^27 us ~= 134 s, comfortably past the slowest legitimate sweep; the
// extra slot past the finite buckets counts overflow.
constexpr int kNumBuckets = 28;

struct HistogramSnapshot {
  // buckets[i] counts samples in (2^(i-1), 2^i] us (bucket 0: <= 1 us);
  // buckets[kNumBuckets] counts overflow samples.
  std::array<uint64_t, kNumBuckets + 1> buckets{};
  uint64_t count = 0;
  uint64_t sum_us = 0;

  // Upper bound of finite bucket `i` in microseconds.
  static double BucketUpperUs(int i);

  void Merge(const HistogramSnapshot& other);

  // Bucket-interpolated quantile in microseconds, q in [0, 1]. Returns 0
  // for an empty histogram. Samples in the overflow bucket report the
  // largest finite bound (a floor, not an estimate).
  double QuantileUs(double q) const;
  double QuantileMs(double q) const { return QuantileUs(q) / 1e3; }
};

class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  // Lock-free; relaxed ordering — counters are statistics, not
  // synchronization. Negative durations (clock hiccups) clamp to zero.
  void RecordMicros(uint64_t us);
  void RecordSeconds(double seconds);
  void RecordMillis(double ms) { RecordSeconds(ms / 1e3); }

  HistogramSnapshot Snapshot() const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets + 1> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
};

// Exact linear-interpolated percentile over raw samples, returned in
// milliseconds for samples given in seconds. q in [0, 1]; rank q*(n-1)
// interpolated between neighbors — the same estimator the benches used.
// Returns 0 on an empty sample set. Takes the vector by value: it sorts.
double ExactPercentileMs(std::vector<double> seconds, double q);

}  // namespace obs
}  // namespace privsan

#endif  // PRIVSAN_OBS_HISTOGRAM_H_
