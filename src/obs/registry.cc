#include "obs/registry.h"

#include <cmath>
#include <cstdio>

namespace privsan {
namespace obs {

namespace {

// Integral values render without a fractional part (counters stay
// byte-stable across scrapes); everything else gets shortest-roundtrip-ish
// %.10g, which Prometheus parses fine.
std::string FormatValue(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

std::string LabelKey(const LabelSet& labels) {
  std::string key;
  for (const auto& [name, value] : labels) {
    key += name;
    key += '=';
    key += value;
    key += '\x1f';
  }
  return key;
}

void AppendLabels(std::string* out, const LabelSet& labels) {
  if (labels.empty()) return;
  out->push_back('{');
  bool first = true;
  for (const auto& [name, value] : labels) {
    if (!first) out->push_back(',');
    first = false;
    *out += name;
    *out += "=\"";
    *out += PrometheusWriter::EscapeLabelValue(value);
    *out += '"';
  }
  out->push_back('}');
}

}  // namespace

std::string PrometheusWriter::EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

void PrometheusWriter::Header(const std::string& name, const std::string& help,
                              const std::string& type) {
  if (headers_emitted_[name]) return;
  headers_emitted_[name] = true;
  *out_ += "# HELP " + name + " " + help + "\n";
  *out_ += "# TYPE " + name + " " + type + "\n";
}

void PrometheusWriter::Value(const std::string& name, const LabelSet& labels,
                             double value) {
  *out_ += name;
  AppendLabels(out_, labels);
  *out_ += ' ';
  *out_ += FormatValue(value);
  *out_ += '\n';
}

void PrometheusWriter::Histogram(const std::string& name,
                                 const LabelSet& labels,
                                 const HistogramSnapshot& snap) {
  uint64_t cumulative = 0;
  LabelSet bucket_labels = labels;
  bucket_labels.emplace_back("le", "");
  for (int i = 0; i <= kNumBuckets; ++i) {
    cumulative += snap.buckets[i];
    if (i < kNumBuckets) {
      // Skip interior empty buckets to keep scrapes compact, but always
      // emit the first bucket and +Inf so the shape stays parseable.
      if (snap.buckets[i] == 0 && i != 0) continue;
      // Bounds are exact powers of two in seconds' micro-units; render in
      // seconds (the Prometheus base unit for durations).
      char bound[32];
      std::snprintf(bound, sizeof(bound), "%.9g",
                    HistogramSnapshot::BucketUpperUs(i) / 1e6);
      bucket_labels.back().second = bound;
    } else {
      bucket_labels.back().second = "+Inf";
    }
    Value(name + "_bucket", bucket_labels, static_cast<double>(cumulative));
  }
  Value(name + "_sum", labels, static_cast<double>(snap.sum_us) / 1e6);
  Value(name + "_count", labels, static_cast<double>(snap.count));
}

MetricRegistry::Family* MetricRegistry::GetFamily(const std::string& name,
                                                 const std::string& help,
                                                 const std::string& type) {
  Family& family = families_[name];
  if (family.type.empty()) {
    family.help = help;
    family.type = type;
  }
  return &family;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const std::string& help,
                                    const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamily(name, help, "counter");
  auto& slot = family->metrics[LabelKey(labels)];
  if (!slot) {
    slot = std::make_unique<Metric>();
    slot->labels = labels;
    slot->counter = std::make_unique<Counter>();
  }
  return slot->counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const std::string& help,
                                const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamily(name, help, "gauge");
  auto& slot = family->metrics[LabelKey(labels)];
  if (!slot) {
    slot = std::make_unique<Metric>();
    slot->labels = labels;
    slot->gauge = std::make_unique<Gauge>();
  }
  return slot->gauge.get();
}

LatencyHistogram* MetricRegistry::GetHistogram(const std::string& name,
                                               const std::string& help,
                                               const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamily(name, help, "histogram");
  auto& slot = family->metrics[LabelKey(labels)];
  if (!slot) {
    slot = std::make_unique<Metric>();
    slot->labels = labels;
    slot->histogram = std::make_unique<LatencyHistogram>();
  }
  return slot->histogram.get();
}

void MetricRegistry::AddCollector(std::function<void(PrometheusWriter*)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(fn));
}

std::string MetricRegistry::RenderPrometheusText() const {
  std::string out;
  PrometheusWriter writer(&out);
  std::vector<std::function<void(PrometheusWriter*)>> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, family] : families_) {
      writer.Header(name, family.help, family.type);
      for (const auto& [key, metric] : family.metrics) {
        if (metric->counter) {
          writer.Value(name, metric->labels,
                       static_cast<double>(metric->counter->Value()));
        } else if (metric->gauge) {
          writer.Value(name, metric->labels, metric->gauge->Value());
        } else if (metric->histogram) {
          writer.Histogram(name, metric->labels,
                           metric->histogram->Snapshot());
        }
      }
    }
    collectors = collectors_;
  }
  // Collectors run outside the registry lock: they read service state
  // behind their own (leaf) locks and must not deadlock against anyone
  // registering metrics concurrently.
  for (const auto& fn : collectors) fn(&writer);
  out += "# EOF\n";
  return out;
}

}  // namespace obs
}  // namespace privsan
