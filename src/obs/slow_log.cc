#include "obs/slow_log.h"

#include <cstdio>

namespace privsan {
namespace obs {

void SlowRequestLog::MaybeRecord(const std::string& tenant,
                                 const std::string& verb,
                                 uint16_t status_code, double total_ms,
                                 const RequestTrace& trace) {
  if (capacity_ == 0) return;
  if (threshold_ms_ > 0 && total_ms < threshold_ms_) return;
  std::lock_guard<std::mutex> lock(mu_);
  SlowRequestRecord record;
  record.sequence = next_sequence_++;
  record.tenant = tenant;
  record.verb = verb;
  record.status_code = status_code;
  record.total_ms = total_ms;
  record.trace = trace;
  ring_.push_back(std::move(record));
  if (ring_.size() > capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
}

std::vector<SlowRequestRecord> SlowRequestLog::Snapshot(size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t begin = 0;
  if (limit > 0 && limit < ring_.size()) begin = ring_.size() - limit;
  return std::vector<SlowRequestRecord>(ring_.begin() + begin, ring_.end());
}

uint64_t SlowRequestLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string FormatSlowRecord(const SlowRequestRecord& record) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "SLOW seq=%llu verb=%s tenant=%s status=%u total_ms=%.3f "
      "queue_ms=%.3f flush_ms=%.3f solve_ms=%.3f cache_ms=%.3f "
      "repair_pivots=%llu iterations=%llu",
      static_cast<unsigned long long>(record.sequence), record.verb.c_str(),
      record.tenant.c_str(), static_cast<unsigned>(record.status_code),
      record.total_ms, record.trace.queue_ms, record.trace.flush_ms,
      record.trace.solve_ms, record.trace.cache_ms,
      static_cast<unsigned long long>(record.trace.repair_pivots),
      static_cast<unsigned long long>(record.trace.iterations));
  return buf;
}

}  // namespace obs
}  // namespace privsan
