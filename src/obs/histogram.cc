#include "obs/histogram.h"

#include <algorithm>
#include <cmath>

namespace privsan {
namespace obs {

namespace {

// Index of the smallest bucket whose upper bound covers `us`:
// bucket i covers (2^(i-1), 2^i] us, bucket 0 covers [0, 1] us.
int BucketIndex(uint64_t us) {
  if (us <= 1) return 0;
  int index = 0;
  uint64_t bound = 1;
  while (bound < us && index < kNumBuckets) {
    bound <<= 1;
    ++index;
  }
  return index;  // == kNumBuckets when `us` exceeds every finite bound
}

}  // namespace

double HistogramSnapshot::BucketUpperUs(int i) {
  return static_cast<double>(uint64_t{1} << i);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum_us += other.sum_us;
}

double HistogramSnapshot::QuantileUs(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (int i = 0; i <= kNumBuckets; ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= target && buckets[i] > 0) {
      if (i >= kNumBuckets) {
        // Overflow bucket has no upper bound; report the largest finite
        // bound so the estimate is a known floor rather than a guess.
        return BucketUpperUs(kNumBuckets - 1);
      }
      const double lower = (i == 0) ? 0.0 : BucketUpperUs(i - 1);
      const double upper = BucketUpperUs(i);
      const double before = static_cast<double>(cumulative - buckets[i]);
      const double within =
          (target - before) / static_cast<double>(buckets[i]);
      return lower + std::clamp(within, 0.0, 1.0) * (upper - lower);
    }
  }
  return BucketUpperUs(kNumBuckets - 1);
}

void LatencyHistogram::RecordMicros(uint64_t us) {
  buckets_[BucketIndex(us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(us, std::memory_order_relaxed);
}

void LatencyHistogram::RecordSeconds(double seconds) {
  if (!(seconds > 0)) {
    RecordMicros(0);
    return;
  }
  RecordMicros(static_cast<uint64_t>(std::llround(seconds * 1e6)));
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_us = sum_us_.load(std::memory_order_relaxed);
  return snap;
}

double ExactPercentileMs(std::vector<double> seconds, double q) {
  if (seconds.empty()) return 0.0;
  std::sort(seconds.begin(), seconds.end());
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(seconds.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, seconds.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return 1e3 * (seconds[lo] + frac * (seconds[hi] - seconds[lo]));
}

}  // namespace obs
}  // namespace privsan
