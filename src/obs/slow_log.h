// Per-request stage tracing and the bounded slow-request log.
//
// A RequestTrace rides alongside one request through the service: each
// stage the request passes (queue wait, pending-log flush, solve, result-
// cache lookup) adds its wall time, and the solver contributes pivot and
// iteration counts. After the response is finished the trace is folded
// into the metric registry's stage histograms, and — when the total
// latency crosses ServiceOptions::slow_request_threshold_ms — recorded in
// the SlowRequestLog, a mutex-guarded ring buffer dumped by the SLOWLOG
// verb. The ring keeps the newest `capacity` records; dropped() counts
// evictions so a scraper can tell the window slid.
#ifndef PRIVSAN_OBS_SLOW_LOG_H_
#define PRIVSAN_OBS_SLOW_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace privsan {
namespace obs {

// Stage timings for one request, in milliseconds. Stages that a request
// never enters stay 0 (e.g. cache_ms for an Append).
struct RequestTrace {
  double queue_ms = 0;  // enqueue -> start of execution
  double flush_ms = 0;  // pending-log flush into the histogram/LP
  double solve_ms = 0;  // LP solve (cell solves summed, for a Sweep)
  double cache_ms = 0;  // result-cache probe
  // Warm-start repair pivots and simplex iterations spent by the solver;
  // the kernel exposes counts, not a separate repair timer, so pivots are
  // reported as work units rather than a duration.
  uint64_t repair_pivots = 0;
  uint64_t iterations = 0;
};

struct SlowRequestRecord {
  uint64_t sequence = 0;  // monotonic per service; dump is oldest-first
  std::string tenant;
  std::string verb;
  uint16_t status_code = 0;  // StatusCode of the response
  double total_ms = 0;
  RequestTrace trace;
};

class SlowRequestLog {
 public:
  // threshold_ms <= 0 records every request (useful under test); a zero
  // capacity disables the log entirely.
  SlowRequestLog(double threshold_ms, size_t capacity)
      : threshold_ms_(threshold_ms), capacity_(capacity) {}

  // Appends when total_ms crosses the threshold, evicting the oldest
  // record once the ring is full. Thread-safe.
  void MaybeRecord(const std::string& tenant, const std::string& verb,
                   uint16_t status_code, double total_ms,
                   const RequestTrace& trace);

  // Oldest-first copy of the ring; `limit` 0 returns everything,
  // otherwise the newest `limit` records (still oldest-first).
  std::vector<SlowRequestRecord> Snapshot(size_t limit = 0) const;

  uint64_t dropped() const;
  double threshold_ms() const { return threshold_ms_; }
  size_t capacity() const { return capacity_; }

 private:
  const double threshold_ms_;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<SlowRequestRecord> ring_;
  uint64_t next_sequence_ = 0;
  uint64_t dropped_ = 0;
};

// One-line rendering used by the SLOWLOG verb and routerd admin output;
// fixed 3-decimal millisecond fields so smoke tests can parse them.
std::string FormatSlowRecord(const SlowRequestRecord& record);

}  // namespace obs
}  // namespace privsan

#endif  // PRIVSAN_OBS_SLOW_LOG_H_
