// Metric registry + Prometheus text exposition.
//
// A MetricRegistry owns named metric families (counter, gauge, histogram)
// keyed by family name plus an ordered label set. Registration takes a
// mutex; the returned pointers are stable for the registry's lifetime, so
// hot paths register once (service construction) and then touch only the
// atomics inside Counter/Gauge/LatencyHistogram.
//
// Values that are cheaper to compute at scrape time than to maintain
// continuously — per-tenant queue depths, TenantStats counters — register
// a collector callback instead: RenderPrometheusText() runs every
// collector with a PrometheusWriter positioned after the static families.
//
// The registry is instantiable, not a process-global: SanitizerService
// and Router each own one, so tests and multi-instance processes (a
// router and a backend in one binary) never share counters.
#ifndef PRIVSAN_OBS_REGISTRY_H_
#define PRIVSAN_OBS_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace privsan {
namespace obs {

// Ordered (name, value) pairs; order is preserved in the rendered output.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

// Monotonic counter. Prometheus convention: family names end in _total.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins gauge.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Serializes samples into the Prometheus text exposition format. Header()
// emits the # HELP / # TYPE pair once per family name per render.
class PrometheusWriter {
 public:
  explicit PrometheusWriter(std::string* out) : out_(out) {}

  void Header(const std::string& name, const std::string& help,
              const std::string& type);
  void Value(const std::string& name, const LabelSet& labels, double value);
  // Expands a histogram into cumulative _bucket{le=...} samples plus
  // _sum (in seconds) and _count, per Prometheus convention.
  void Histogram(const std::string& name, const LabelSet& labels,
                 const HistogramSnapshot& snap);

  // Escapes \, ", and newline for use inside a label value.
  static std::string EscapeLabelValue(const std::string& value);

 private:
  std::string* out_;
  std::map<std::string, bool> headers_emitted_;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Idempotent: the same (name, labels) pair always returns the same
  // metric. `help` is taken from the first registration.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const LabelSet& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const LabelSet& labels = {});
  LatencyHistogram* GetHistogram(const std::string& name,
                                 const std::string& help,
                                 const LabelSet& labels = {});

  // `fn` runs inside every RenderPrometheusText() call, after the static
  // families. It must emit its own Header() lines and must not call back
  // into the registry.
  void AddCollector(std::function<void(PrometheusWriter*)> fn);

  // Full scrape. Families render in name order; ends with a "# EOF"
  // comment line so multi-scrape streams can be split mechanically.
  std::string RenderPrometheusText() const;

 private:
  struct Family;
  Family* GetFamily(const std::string& name, const std::string& help,
                    const std::string& type);

  struct Metric {
    LabelSet labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };
  struct Family {
    std::string help;
    std::string type;
    // Keyed by the serialized label set; values are pointer-stable.
    std::map<std::string, std::unique_ptr<Metric>> metrics;
  };

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
  std::vector<std::function<void(PrometheusWriter*)>> collectors_;
};

}  // namespace obs
}  // namespace privsan

#endif  // PRIVSAN_OBS_REGISTRY_H_
