// Synthetic AOL-profile search log generation.
//
// The paper evaluates on a 2500-user sample of the 2006 AOL search log
// (Table 3). That dataset is not redistributable, so privsan substitutes a
// Zipf-calibrated generator that reproduces the statistical profile the
// mechanism actually consumes:
//
//   * heavy-tailed query popularity (Zipf over a large query vocabulary);
//   * per-query url candidate sets with skewed click-through (Zipf);
//   * heavy-tailed user activity (Zipf over users);
//   * extreme sparsity: the vast majority of distinct query-url pairs are
//     clicked by a single user and are removed by Condition-1 preprocessing
//     (AOL: 163,681 -> 6,043 pairs; the synthetic profile reproduces this
//     order-of-magnitude collapse).
//
// The mechanism never inspects query text — every quantity in Theorem 1 and
// the three UMPs is a function of the count histograms {c_ij}, {c_ijk} — so
// matching these marginals exercises identical code paths and produces the
// same qualitative utility curves as the real data.
#ifndef PRIVSAN_SYNTH_GENERATOR_H_
#define PRIVSAN_SYNTH_GENERATOR_H_

#include <cstdint>

#include "log/search_log.h"
#include "util/result.h"

namespace privsan {

namespace serve {
class ThreadPool;
}  // namespace serve

struct SyntheticLogConfig {
  uint64_t seed = 42;

  // Population sizes.
  size_t num_users = 2500;
  size_t num_queries = 60000;      // query vocabulary
  size_t url_pool = 50000;         // global url pool
  size_t max_urls_per_query = 6;   // per-query candidate result set

  // Number of click events (|D| before aggregation/preprocessing).
  size_t num_events = 240000;

  // Zipf exponents.
  double query_zipf = 1.0;  // query popularity
  double url_zipf = 1.3;    // click position within a query's candidates
  double user_zipf = 0.7;   // user activity

  Status Validate() const;
};

// Deterministic in `config.seed`.
Result<SearchLog> GenerateSearchLog(const SyntheticLogConfig& config);

// Shard-aware overload: samples and formats events across `pool` (nullptr
// = serial). Every event consumes exactly 3 Rng draws, so shard k replays
// the serial stream from draw 3*begin_k (Rng::Discard) and writes its
// events into fixed slots — the result is bit-identical to the serial
// generator for any pool size. Only the dictionary interning of the final
// SearchLogBuilder pass stays serial.
Result<SearchLog> GenerateSearchLog(const SyntheticLogConfig& config,
                                    serve::ThreadPool* pool);

// Preset configs.
// Paper-scale: ~2500 users / ~240k clicks, collapsing to a few thousand
// pairs after preprocessing — mirrors Table 3's experimental dataset.
SyntheticLogConfig PaperScaleConfig();
// Bench-scale: smaller profile so the full bench suite runs in minutes.
SyntheticLogConfig BenchScaleConfig();
// Tiny: hundreds of clicks, for unit tests.
SyntheticLogConfig TinyConfig();

}  // namespace privsan

#endif  // PRIVSAN_SYNTH_GENERATOR_H_
