// Dataset characteristics in the layout of Table 3 of the paper.
#ifndef PRIVSAN_SYNTH_CHARACTERISTICS_H_
#define PRIVSAN_SYNTH_CHARACTERISTICS_H_

#include <cstdint>
#include <string>

#include "log/search_log.h"

namespace privsan {

struct DatasetCharacteristics {
  uint64_t total_clicks = 0;      // "# of total tuples (size)" — |D|
  size_t num_user_logs = 0;       // "# of user logs"
  size_t num_distinct_queries = 0;
  size_t num_distinct_urls = 0;
  size_t num_query_url_pairs = 0;

  std::string ToString() const;
};

DatasetCharacteristics ComputeCharacteristics(const SearchLog& log);

}  // namespace privsan

#endif  // PRIVSAN_SYNTH_CHARACTERISTICS_H_
