#include "synth/generator.h"

#include <string>

#include "rng/distributions.h"
#include "rng/random.h"

namespace privsan {

Status SyntheticLogConfig::Validate() const {
  if (num_users == 0) return Status::InvalidArgument("num_users must be > 0");
  if (num_queries == 0) {
    return Status::InvalidArgument("num_queries must be > 0");
  }
  if (url_pool == 0) return Status::InvalidArgument("url_pool must be > 0");
  if (max_urls_per_query == 0) {
    return Status::InvalidArgument("max_urls_per_query must be > 0");
  }
  if (num_events == 0) {
    return Status::InvalidArgument("num_events must be > 0");
  }
  if (query_zipf < 0 || url_zipf < 0 || user_zipf < 0) {
    return Status::InvalidArgument("zipf exponents must be >= 0");
  }
  return Status::OK();
}

Result<SearchLog> GenerateSearchLog(const SyntheticLogConfig& config) {
  PRIVSAN_RETURN_IF_ERROR(config.Validate());

  Rng rng(config.seed);
  PRIVSAN_ASSIGN_OR_RETURN(ZipfSampler query_sampler,
                           ZipfSampler::Build(config.num_queries,
                                              config.query_zipf));
  PRIVSAN_ASSIGN_OR_RETURN(
      ZipfSampler url_rank_sampler,
      ZipfSampler::Build(config.max_urls_per_query, config.url_zipf));
  PRIVSAN_ASSIGN_OR_RETURN(ZipfSampler user_sampler,
                           ZipfSampler::Build(config.num_users,
                                              config.user_zipf));

  SearchLogBuilder builder;
  for (size_t event = 0; event < config.num_events; ++event) {
    const uint32_t query = query_sampler.Sample(rng);
    const uint32_t user = user_sampler.Sample(rng);

    // Each query has a deterministic candidate url set whose size shrinks
    // with rank (popular queries have richer result sets). The clicked url
    // is a Zipf draw over the candidates, mapped into the global url pool
    // via hash mixing so urls are shared across queries occasionally.
    uint64_t mix = 0x51ab5f1ed00dULL ^ (static_cast<uint64_t>(query) << 1);
    const size_t candidates =
        1 + SplitMix64(mix) % config.max_urls_per_query;
    uint32_t url_rank = url_rank_sampler.Sample(rng);
    if (url_rank >= candidates) url_rank %= candidates;
    uint64_t url_mix =
        (static_cast<uint64_t>(query) << 20) ^ (url_rank * 0x9e3779b9ULL);
    const uint64_t url = SplitMix64(url_mix) % config.url_pool;

    builder.Add("user" + std::to_string(user),
                "query" + std::to_string(query),
                "url" + std::to_string(url),
                /*count=*/1);
  }
  return builder.Build();
}

SyntheticLogConfig PaperScaleConfig() {
  SyntheticLogConfig config;
  config.seed = 20120330;  // EDBT 2012
  config.num_users = 2500;
  config.num_queries = 60000;
  config.url_pool = 50000;
  config.max_urls_per_query = 6;
  config.num_events = 240000;
  config.query_zipf = 1.0;
  config.url_zipf = 1.3;
  config.user_zipf = 0.7;
  return config;
}

SyntheticLogConfig BenchScaleConfig() {
  SyntheticLogConfig config;
  config.seed = 20120330;
  config.num_users = 400;
  config.num_queries = 2500;
  config.url_pool = 3000;
  config.max_urls_per_query = 4;
  config.num_events = 36000;
  config.query_zipf = 0.9;
  config.url_zipf = 1.3;
  config.user_zipf = 0.5;
  return config;
}

SyntheticLogConfig TinyConfig() {
  SyntheticLogConfig config;
  config.seed = 7;
  config.num_users = 30;
  config.num_queries = 120;
  config.url_pool = 100;
  config.max_urls_per_query = 4;
  config.num_events = 900;
  config.query_zipf = 1.0;
  config.url_zipf = 1.2;
  config.user_zipf = 0.6;
  return config;
}

}  // namespace privsan
