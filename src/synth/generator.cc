#include "synth/generator.h"

#include <string>
#include <vector>

#include "rng/distributions.h"
#include "rng/random.h"
#include "serve/thread_pool.h"

namespace privsan {

namespace {

// One sampled click event, fully formatted. Events are written into fixed
// slots of a preallocated vector, so which shard produced them never
// affects the replay order below.
struct SampledEvent {
  std::string user, query, url;
};

// Every event consumes exactly this many Rng draws (three CDF-inversion
// Zipf samples; the url candidate-set mixing uses SplitMix64 on local
// state, not the stream). The checkpoint table below relies on this
// schedule to hand any shard the exact stream position of the serial
// generator at its first event.
constexpr uint64_t kDrawsPerEvent = 3;

// Serial pre-pass: snapshot the Rng every `stride` events, so a shard
// starting at event e resumes from checkpoint e/stride plus at most
// stride-1 events' worth of Discard. Without it every shard would replay
// the stream from zero — Omega(total draws) on the last shard's critical
// path. The pre-pass itself is raw draw stepping (no sampling, no
// formatting), a small fraction of shard work.
std::vector<Rng> RngCheckpoints(uint64_t seed, size_t num_events,
                                size_t stride) {
  std::vector<Rng> checkpoints;
  Rng rng(seed);
  checkpoints.reserve(num_events / stride + 1);
  for (size_t done = 0;; done += stride) {
    checkpoints.push_back(rng);
    if (done + stride > num_events) break;
    rng.Discard(kDrawsPerEvent * stride);
  }
  return checkpoints;
}

}  // namespace

Status SyntheticLogConfig::Validate() const {
  if (num_users == 0) return Status::InvalidArgument("num_users must be > 0");
  if (num_queries == 0) {
    return Status::InvalidArgument("num_queries must be > 0");
  }
  if (url_pool == 0) return Status::InvalidArgument("url_pool must be > 0");
  if (max_urls_per_query == 0) {
    return Status::InvalidArgument("max_urls_per_query must be > 0");
  }
  if (num_events == 0) {
    return Status::InvalidArgument("num_events must be > 0");
  }
  if (query_zipf < 0 || url_zipf < 0 || user_zipf < 0) {
    return Status::InvalidArgument("zipf exponents must be >= 0");
  }
  return Status::OK();
}

Result<SearchLog> GenerateSearchLog(const SyntheticLogConfig& config) {
  return GenerateSearchLog(config, /*pool=*/nullptr);
}

Result<SearchLog> GenerateSearchLog(const SyntheticLogConfig& config,
                                    serve::ThreadPool* pool) {
  PRIVSAN_RETURN_IF_ERROR(config.Validate());

  PRIVSAN_ASSIGN_OR_RETURN(ZipfSampler query_sampler,
                           ZipfSampler::Build(config.num_queries,
                                              config.query_zipf));
  PRIVSAN_ASSIGN_OR_RETURN(
      ZipfSampler url_rank_sampler,
      ZipfSampler::Build(config.max_urls_per_query, config.url_zipf));
  PRIVSAN_ASSIGN_OR_RETURN(ZipfSampler user_sampler,
                           ZipfSampler::Build(config.num_users,
                                              config.user_zipf));

  // Sampling + formatting shard over events; each shard resumes the serial
  // Rng stream from the nearest checkpoint, so the filled slots are
  // bit-identical to a single sequential pass regardless of pool size.
  constexpr size_t kCheckpointStride = 4096;
  const std::vector<Rng> checkpoints =
      RngCheckpoints(config.seed, config.num_events, kCheckpointStride);
  std::vector<SampledEvent> events(config.num_events);
  serve::ParallelFor(
      pool, config.num_events, [&](size_t begin, size_t end) {
        Rng rng = checkpoints[begin / kCheckpointStride];
        rng.Discard(kDrawsPerEvent * (begin % kCheckpointStride));
        for (size_t event = begin; event < end; ++event) {
          const uint32_t query = query_sampler.Sample(rng);
          const uint32_t user = user_sampler.Sample(rng);

          // Each query has a deterministic candidate url set whose size
          // shrinks with rank (popular queries have richer result sets).
          // The clicked url is a Zipf draw over the candidates, mapped into
          // the global url pool via hash mixing so urls are shared across
          // queries occasionally.
          uint64_t mix =
              0x51ab5f1ed00dULL ^ (static_cast<uint64_t>(query) << 1);
          const size_t candidates =
              1 + SplitMix64(mix) % config.max_urls_per_query;
          uint32_t url_rank = url_rank_sampler.Sample(rng);
          if (url_rank >= candidates) url_rank %= candidates;
          uint64_t url_mix = (static_cast<uint64_t>(query) << 20) ^
                             (url_rank * 0x9e3779b9ULL);
          const uint64_t url = SplitMix64(url_mix) % config.url_pool;

          events[event] = {"user" + std::to_string(user),
                           "query" + std::to_string(query),
                           "url" + std::to_string(url)};
        }
      });

  // Dictionary interning assigns ids by first appearance, so the replay
  // must stay in event order (and serial — the builder is not shardable).
  SearchLogBuilder builder;
  for (const SampledEvent& event : events) {
    builder.Add(event.user, event.query, event.url, /*count=*/1);
  }
  return builder.Build();
}

SyntheticLogConfig PaperScaleConfig() {
  SyntheticLogConfig config;
  config.seed = 20120330;  // EDBT 2012
  config.num_users = 2500;
  config.num_queries = 60000;
  config.url_pool = 50000;
  config.max_urls_per_query = 6;
  config.num_events = 240000;
  config.query_zipf = 1.0;
  config.url_zipf = 1.3;
  config.user_zipf = 0.7;
  return config;
}

SyntheticLogConfig BenchScaleConfig() {
  SyntheticLogConfig config;
  config.seed = 20120330;
  config.num_users = 400;
  config.num_queries = 2500;
  config.url_pool = 3000;
  config.max_urls_per_query = 4;
  config.num_events = 36000;
  config.query_zipf = 0.9;
  config.url_zipf = 1.3;
  config.user_zipf = 0.5;
  return config;
}

SyntheticLogConfig TinyConfig() {
  SyntheticLogConfig config;
  config.seed = 7;
  config.num_users = 30;
  config.num_queries = 120;
  config.url_pool = 100;
  config.max_urls_per_query = 4;
  config.num_events = 900;
  config.query_zipf = 1.0;
  config.url_zipf = 1.2;
  config.user_zipf = 0.6;
  return config;
}

}  // namespace privsan
