#include "synth/characteristics.h"

#include <sstream>

#include "util/string_util.h"

namespace privsan {

DatasetCharacteristics ComputeCharacteristics(const SearchLog& log) {
  DatasetCharacteristics c;
  c.total_clicks = log.total_clicks();
  c.num_user_logs = log.num_users();
  c.num_distinct_queries = log.num_queries();
  c.num_distinct_urls = log.num_urls();
  c.num_query_url_pairs = log.num_pairs();
  return c;
}

std::string DatasetCharacteristics::ToString() const {
  std::ostringstream os;
  os << "total tuples (|D|): "
     << FormatWithCommas(static_cast<int64_t>(total_clicks))
     << ", user logs: " << num_user_logs
     << ", distinct queries: " << num_distinct_queries
     << ", distinct urls: " << num_distinct_urls
     << ", query-url pairs: " << num_query_url_pairs;
  return os.str();
}

}  // namespace privsan
