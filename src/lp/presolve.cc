#include "lp/presolve.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace privsan {
namespace lp {

namespace {

// Feasibility slack for presolve decisions, relative to the magnitudes in
// play. Presolve must never declare a feasible problem infeasible.
double Tol(double reference) { return 1e-9 * (1.0 + std::abs(reference)); }

}  // namespace

PresolveInfo BuildPresolve(const LpModel& model, LpModel* reduced) {
  const double kInf = std::numeric_limits<double>::infinity();
  const int n = model.num_variables();
  const int m = model.num_constraints();
  const bool maximize = model.sense() == ObjectiveSense::kMaximize;

  PresolveInfo info;
  info.original_vars = n;
  info.original_rows = m;

  std::vector<double> lb(n), ub(n);
  for (int j = 0; j < n; ++j) {
    lb[j] = model.variable(j).lower;
    ub[j] = model.variable(j).upper;
  }
  std::vector<bool> var_removed(n, false);
  std::vector<double> value(n, 0.0);
  std::vector<bool> row_removed(m, false);
  std::vector<double> rhs(m);
  for (int r = 0; r < m; ++r) rhs[r] = model.constraint(r).rhs;

  // Column structure: rows touching each variable.
  std::vector<std::vector<std::pair<int, double>>> columns(n);
  for (int r = 0; r < m; ++r) {
    for (const Coefficient& e : model.constraint(r).entries) {
      if (e.value != 0.0) columns[e.variable].emplace_back(r, e.value);
    }
  }

  auto fix_variable = [&](int j, double v) {
    var_removed[j] = true;
    value[j] = v;
    for (const auto& [r, a] : columns[j]) {
      if (!row_removed[r]) rhs[r] -= a * v;
    }
  };

  bool changed = true;
  while (changed && !info.infeasible) {
    changed = false;

    // Fixed variables.
    for (int j = 0; j < n; ++j) {
      if (var_removed[j] || lb[j] != ub[j]) continue;
      fix_variable(j, lb[j]);
      changed = true;
    }

    // Empty and singleton rows.
    for (int r = 0; r < m && !info.infeasible; ++r) {
      if (row_removed[r]) continue;
      int live = 0;
      int single_var = -1;
      double single_coeff = 0.0;
      for (const Coefficient& e : model.constraint(r).entries) {
        if (e.value == 0.0 || var_removed[e.variable]) continue;
        ++live;
        if (live > 1) break;
        single_var = e.variable;
        single_coeff = e.value;
      }
      if (live > 1) continue;

      const ConstraintSense sense = model.constraint(r).sense;
      if (live == 0) {
        // 0 (sense) rhs must hold trivially.
        const double tol = Tol(model.constraint(r).rhs);
        const bool ok = sense == ConstraintSense::kLessEqual ? rhs[r] >= -tol
                        : sense == ConstraintSense::kGreaterEqual
                            ? rhs[r] <= tol
                            : std::abs(rhs[r]) <= tol;
        if (!ok) {
          info.infeasible = true;
          break;
        }
        row_removed[r] = true;
        changed = true;
        continue;
      }

      // Singleton row: a * x (sense) rhs becomes a bound on x.
      const int j = single_var;
      const double bound = rhs[r] / single_coeff;
      double new_lb = lb[j];
      double new_ub = ub[j];
      const bool imposes_upper =
          sense == ConstraintSense::kEqual ||
          (sense == ConstraintSense::kLessEqual) == (single_coeff > 0.0);
      const bool imposes_lower =
          sense == ConstraintSense::kEqual || !imposes_upper;
      if (imposes_upper) new_ub = std::min(new_ub, bound);
      if (imposes_lower) new_lb = std::max(new_lb, bound);
      if (new_lb > new_ub) {
        if (new_lb - new_ub > Tol(bound)) {
          info.infeasible = true;
          break;
        }
        new_lb = new_ub = 0.5 * (new_lb + new_ub);
      }
      info.singleton_rows.push_back(
          PresolveInfo::SingletonRow{r, j, single_coeff, sense, rhs[r]});
      lb[j] = new_lb;
      ub[j] = new_ub;
      row_removed[r] = true;
      changed = true;
    }
  }

  if (info.infeasible) return info;

  // Empty columns: pin to the objective-favorable bound when finite. An
  // infinite favorable bound means a potentially unbounded ray; the column
  // is kept so the solver reports kUnbounded itself (after proving the rest
  // feasible).
  for (int j = 0; j < n; ++j) {
    if (var_removed[j]) continue;
    bool live = false;
    for (const auto& [r, a] : columns[j]) {
      if (!row_removed[r]) {
        live = true;
        break;
      }
    }
    if (live) continue;
    const double c = model.variable(j).objective;
    // Internal preference: which bound improves the objective.
    const bool wants_upper = maximize ? c > 0.0 : c < 0.0;
    double pick;
    if (c == 0.0) {
      pick = std::isfinite(lb[j]) ? lb[j] : std::isfinite(ub[j]) ? ub[j] : 0.0;
    } else if (wants_upper) {
      if (!std::isfinite(ub[j])) continue;  // keep: unbounded direction
      pick = ub[j];
    } else {
      if (!std::isfinite(lb[j])) continue;
      pick = lb[j];
    }
    fix_variable(j, pick);
  }

  // Build the reduced model.
  *reduced = LpModel(model.sense());
  info.var_map.assign(n, -1);
  info.row_map.assign(m, -1);
  info.removed_value = value;
  for (int j = 0; j < n; ++j) {
    if (var_removed[j]) continue;
    const Variable& v = model.variable(j);
    info.var_map[j] =
        reduced->AddVariable(lb[j], ub[j], v.objective, v.name, v.is_integer);
  }
  for (int r = 0; r < m; ++r) {
    if (row_removed[r]) continue;
    const Constraint& c = model.constraint(r);
    info.row_map[r] = reduced->AddConstraint(c.sense, rhs[r], c.name);
    for (const Coefficient& e : c.entries) {
      if (e.value == 0.0 || var_removed[e.variable]) continue;
      reduced->AddCoefficient(info.row_map[r], info.var_map[e.variable],
                              e.value);
    }
  }
  info.reduced_vars = reduced->num_variables();
  info.reduced_rows = reduced->num_constraints();
  return info;
}

void PostsolveSolution(const LpModel& model, const PresolveInfo& info,
                       LpSolution* solution) {
  const int n = info.original_vars;
  const int m = info.original_rows;

  if (solution->status != SolveStatus::kOptimal) {
    solution->x.clear();
    solution->duals.clear();
    solution->basis = Basis{};
    return;
  }

  // Primal.
  std::vector<double> x(n);
  for (int j = 0; j < n; ++j) {
    x[j] = info.var_map[j] >= 0 ? solution->x[info.var_map[j]]
                                : info.removed_value[j];
  }

  // Duals: kept rows carry their reduced duals, dropped rows start at zero.
  std::vector<double> duals(m, 0.0);
  for (int r = 0; r < m; ++r) {
    if (info.row_map[r] >= 0) duals[r] = solution->duals[info.row_map[r]];
  }

  // Recover duals of dropped singleton rows, newest first: when the row's
  // implied bound is active at x_j, the variable's remaining reduced cost
  // d_j = c_j - y^T A_j belongs to this row (y_r = d_j / a_rj zeroes it),
  // otherwise the row is slack and its dual stays zero. This restores the
  // KKT certificate on the original model.
  if (!info.singleton_rows.empty()) {
    std::vector<std::vector<std::pair<int, double>>> columns(n);
    for (int r = 0; r < m; ++r) {
      for (const Coefficient& e : model.constraint(r).entries) {
        if (e.value != 0.0) columns[e.variable].emplace_back(r, e.value);
      }
    }
    for (auto it = info.singleton_rows.rbegin();
         it != info.singleton_rows.rend(); ++it) {
      const double bound = it->rhs / it->coeff;
      if (std::abs(x[it->var] - bound) > 1e-7 * (1.0 + std::abs(bound))) {
        continue;
      }
      double d = model.variable(it->var).objective;
      for (const auto& [r, a] : columns[it->var]) d -= duals[r] * a;
      duals[it->row] = d / it->coeff;
    }
  }

  // Basis: kept variables map their status back; removed variables sit at
  // the bound (or value) they were pinned to; dropped rows contribute their
  // slack as basic, which keeps the full basis nonsingular (the dropped
  // block is triangular with unit slack diagonal).
  Basis basis;
  basis.state.assign(n + m, VarStatus::kAtLower);
  const int reduced_n = info.reduced_vars;
  for (int j = 0; j < n; ++j) {
    if (info.var_map[j] >= 0) {
      basis.state[j] = solution->basis.state[info.var_map[j]];
      continue;
    }
    // Pick the nearest finite bound as the hint state. kFree is reserved
    // for genuinely unbounded variables: a finite-bounded variable marked
    // kFree would mislead a warm start (the simplex treats kFree as
    // "no bound to flip against").
    const Variable& v = model.variable(j);
    const double val = info.removed_value[j];
    const bool lower_finite = std::isfinite(v.lower);
    const bool upper_finite = std::isfinite(v.upper);
    if (lower_finite &&
        (!upper_finite || val - v.lower <= v.upper - val)) {
      basis.state[j] = VarStatus::kAtLower;
    } else if (upper_finite) {
      basis.state[j] = VarStatus::kAtUpper;
    } else {
      basis.state[j] = VarStatus::kFree;
    }
  }
  for (int r = 0; r < m; ++r) {
    if (info.row_map[r] >= 0) {
      basis.state[n + r] = solution->basis.state[reduced_n + info.row_map[r]];
    } else {
      basis.state[n + r] = VarStatus::kBasic;
    }
  }
  std::vector<int> var_preimage(info.reduced_vars, -1);
  std::vector<int> row_preimage(info.reduced_rows, -1);
  for (int j = 0; j < n; ++j) {
    if (info.var_map[j] >= 0) var_preimage[info.var_map[j]] = j;
  }
  for (int r = 0; r < m; ++r) {
    if (info.row_map[r] >= 0) row_preimage[info.row_map[r]] = r;
  }
  for (int v : solution->basis.basic) {
    basis.basic.push_back(v < reduced_n ? var_preimage[v]
                                        : n + row_preimage[v - reduced_n]);
  }
  for (int r = 0; r < m; ++r) {
    if (info.row_map[r] < 0) basis.basic.push_back(n + r);
  }

  solution->x = std::move(x);
  solution->duals = std::move(duals);
  solution->basis = std::move(basis);
  solution->objective = model.ObjectiveValue(solution->x);
}

}  // namespace lp
}  // namespace privsan
