#include "lp/eta_file.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace privsan {
namespace lp {

namespace {
// Pivot magnitude below which a factorization declares the basis singular.
constexpr double kSingularTol = 1e-11;
}  // namespace

// ---- EtaSequence ------------------------------------------------------------

void EtaSequence::Append(const std::vector<double>& w, int slot) {
  Eta eta;
  eta.slot = slot;
  eta.pivot = w[slot];
  const int m = static_cast<int>(w.size());
  for (int i = 0; i < m; ++i) {
    if (i != slot && w[i] != 0.0) eta.off.push_back(SparseEntry{i, w[i]});
  }
  Push(std::move(eta));
}

void EtaSequence::Ftran(std::vector<double>& v) const {
  for (const Eta& eta : etas_) {
    const double t = v[eta.slot];
    if (t == 0.0) continue;
    const double scaled = t / eta.pivot;
    v[eta.slot] = scaled;
    for (const SparseEntry& e : eta.off) v[e.index] -= e.value * scaled;
  }
}

void EtaSequence::FtranTracked(std::vector<double>& v,
                               std::vector<int>& touched) const {
  for (const Eta& eta : etas_) {
    const double t = v[eta.slot];
    if (t == 0.0) continue;
    const double scaled = t / eta.pivot;
    v[eta.slot] = scaled;
    for (const SparseEntry& e : eta.off) {
      if (v[e.index] == 0.0) touched.push_back(e.index);
      v[e.index] -= e.value * scaled;
    }
  }
}

void EtaSequence::Btran(std::vector<double>& v) const {
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double s = v[it->slot];
    for (const SparseEntry& e : it->off) s -= e.value * v[e.index];
    v[it->slot] = s / it->pivot;
  }
}

// ---- EtaFile ----------------------------------------------------------------

bool EtaFile::Refactorize(const SparseMatrix& A, std::vector<int>& basis) {
  const int m = A.rows();
  PRIVSAN_CHECK(static_cast<int>(basis.size()) == m);
  singular_info_.Clear();

  // Build into locals and commit only on success: a failed refactorization
  // must leave the previous factorization (and `basis`) untouched so the
  // caller can repair the basis and retry deterministically.
  EtaSequence etas;

  // Process columns by ascending nonzero count: slack and singleton columns
  // pivot without fill, leaving only the structural "bump" to eliminate.
  std::vector<int> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return A.Column(basis[a]).size() < A.Column(basis[b]).size();
  });

  std::vector<int> new_basis(m, -1);
  std::vector<bool> used(m, false);
  std::vector<double> w(m, 0.0);
  std::vector<int> touched;
  touched.reserve(64);

  for (int k : order) {
    // w = (E_j ... E_1) A[:, basis[k]], applied sparsely.
    touched.clear();
    for (const SparseEntry& e : A.Column(basis[k])) {
      w[e.index] = e.value;
      touched.push_back(e.index);
    }
    etas.FtranTracked(w, touched);

    // Partial pivoting restricted to unassigned slots.
    int slot = -1;
    double best = kSingularTol;
    for (int idx : touched) {
      if (used[idx]) continue;
      const double mag = std::abs(w[idx]);
      if (mag > best) {
        best = mag;
        slot = idx;
      }
    }
    if (slot < 0) {
      // Numerically dependent on the columns processed so far. Record it,
      // reset w, and keep going so the failure report names *every*
      // dependent column of this basis.
      singular_info_.dependent_columns.push_back(basis[k]);
      for (int idx : touched) w[idx] = 0.0;
      continue;
    }

    const double pivot = w[slot];
    Eta eta;
    eta.slot = slot;
    eta.pivot = pivot;
    for (int idx : touched) {
      if (idx == slot || w[idx] == 0.0) continue;
      eta.off.push_back(SparseEntry{idx, w[idx]});
      w[idx] = 0.0;  // reset as we harvest; also dedupes repeated indices
    }
    w[slot] = 0.0;
    etas.Push(std::move(eta));

    used[slot] = true;
    new_basis[slot] = basis[k];
  }

  if (!singular_info_.empty()) {
    for (int r = 0; r < m; ++r) {
      if (!used[r]) singular_info_.unpivoted_rows.push_back(r);
    }
    return false;  // previous factorization and `basis` left untouched
  }

  m_ = m;
  etas_.swap(etas);
  updates_ = 0;
  base_nnz_ = etas_.nonzeros();
  basis = std::move(new_basis);
  return true;
}

void EtaFile::Ftran(std::vector<double>& v) const { etas_.Ftran(v); }

void EtaFile::Btran(std::vector<double>& v) const { etas_.Btran(v); }

bool EtaFile::Update(const std::vector<double>& w, int slot,
                     double pivot_tol) {
  if (std::abs(w[slot]) <= pivot_tol) return false;
  etas_.Append(w, slot);
  ++updates_;
  return true;
}

bool EtaFile::ShouldRefactor() const {
  if (updates_ >= max_updates_) return true;
  const size_t base = std::max(base_nnz_, static_cast<size_t>(m_));
  return etas_.nonzeros() >
         static_cast<size_t>(growth_limit_ * static_cast<double>(base));
}

// ---- DenseBasis -------------------------------------------------------------

bool DenseBasis::Refactorize(const SparseMatrix& A, std::vector<int>& basis) {
  const int m = A.rows();
  singular_info_.Clear();  // dense pivoting cannot attribute dependencies

  std::vector<double> dense(static_cast<size_t>(m) * m, 0.0);
  for (int i = 0; i < m; ++i) {
    for (const SparseEntry& e : A.Column(basis[i])) {
      dense[static_cast<size_t>(e.index) * m + i] = e.value;
    }
  }
  // Invert into a local and commit on success only (failure contract).
  std::vector<double> binv(static_cast<size_t>(m) * m, 0.0);
  for (int i = 0; i < m; ++i) binv[static_cast<size_t>(i) * m + i] = 1.0;

  for (int col = 0; col < m; ++col) {
    int pivot_row = col;
    double best = std::abs(dense[static_cast<size_t>(col) * m + col]);
    for (int r = col + 1; r < m; ++r) {
      double v = std::abs(dense[static_cast<size_t>(r) * m + col]);
      if (v > best) {
        best = v;
        pivot_row = r;
      }
    }
    if (best < kSingularTol) return false;
    if (pivot_row != col) {
      for (int k = 0; k < m; ++k) {
        std::swap(dense[static_cast<size_t>(pivot_row) * m + k],
                  dense[static_cast<size_t>(col) * m + k]);
        std::swap(binv[static_cast<size_t>(pivot_row) * m + k],
                  binv[static_cast<size_t>(col) * m + k]);
      }
    }
    const double inv_pivot = 1.0 / dense[static_cast<size_t>(col) * m + col];
    for (int k = 0; k < m; ++k) {
      dense[static_cast<size_t>(col) * m + k] *= inv_pivot;
      binv[static_cast<size_t>(col) * m + k] *= inv_pivot;
    }
    for (int r = 0; r < m; ++r) {
      if (r == col) continue;
      const double factor = dense[static_cast<size_t>(r) * m + col];
      if (factor == 0.0) continue;
      for (int k = 0; k < m; ++k) {
        dense[static_cast<size_t>(r) * m + k] -=
            factor * dense[static_cast<size_t>(col) * m + k];
        binv[static_cast<size_t>(r) * m + k] -=
            factor * binv[static_cast<size_t>(col) * m + k];
      }
    }
  }
  m_ = m;
  binv_ = std::move(binv);
  updates_ = 0;
  return true;
}

void DenseBasis::Ftran(std::vector<double>& v) const {
  const int m = m_;
  std::vector<double> out(m, 0.0);
  for (int i = 0; i < m; ++i) {
    const double* row = &binv_[static_cast<size_t>(i) * m];
    double sum = 0.0;
    for (int k = 0; k < m; ++k) sum += row[k] * v[k];
    out[i] = sum;
  }
  v = std::move(out);
}

void DenseBasis::Btran(std::vector<double>& v) const {
  const int m = m_;
  std::vector<double> out(m, 0.0);
  for (int i = 0; i < m; ++i) {
    const double vi = v[i];
    if (vi == 0.0) continue;
    const double* row = &binv_[static_cast<size_t>(i) * m];
    for (int k = 0; k < m; ++k) out[k] += vi * row[k];
  }
  v = std::move(out);
}

bool DenseBasis::Update(const std::vector<double>& w, int slot,
                        double pivot_tol) {
  const int m = m_;
  const double pivot = w[slot];
  if (std::abs(pivot) <= pivot_tol) return false;
  double* pivot_row = &binv_[static_cast<size_t>(slot) * m];
  const double inv_pivot = 1.0 / pivot;
  for (int k = 0; k < m; ++k) pivot_row[k] *= inv_pivot;
  for (int i = 0; i < m; ++i) {
    if (i == slot) continue;
    const double factor = w[i];
    if (factor == 0.0) continue;
    double* row = &binv_[static_cast<size_t>(i) * m];
    for (int k = 0; k < m; ++k) row[k] -= factor * pivot_row[k];
  }
  ++updates_;
  return true;
}

}  // namespace lp
}  // namespace privsan
