#include "lp/sparse_matrix.h"

#include <algorithm>

#include "util/logging.h"

namespace privsan {
namespace lp {

SparseMatrix::SparseMatrix(int rows, int cols, std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  PRIVSAN_CHECK(rows >= 0 && cols >= 0);
  for (const Triplet& t : triplets) {
    PRIVSAN_CHECK(t.row >= 0 && t.row < rows);
    PRIVSAN_CHECK(t.col >= 0 && t.col < cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.col != b.col ? a.col < b.col : a.row < b.row;
            });

  offsets_.assign(cols + 1, 0);
  entries_.reserve(triplets.size());
  size_t i = 0;
  for (int j = 0; j < cols; ++j) {
    while (i < triplets.size() && triplets[i].col == j) {
      double value = triplets[i].value;
      int row = triplets[i].row;
      ++i;
      while (i < triplets.size() && triplets[i].col == j &&
             triplets[i].row == row) {
        value += triplets[i].value;
        ++i;
      }
      if (value != 0.0) entries_.push_back(SparseEntry{row, value});
    }
    offsets_[j + 1] = entries_.size();
  }

  // CSR view: counting sort of the deduplicated CSC entries by row.
  row_offsets_.assign(rows + 1, 0);
  for (const SparseEntry& e : entries_) ++row_offsets_[e.index + 1];
  for (int r = 0; r < rows; ++r) row_offsets_[r + 1] += row_offsets_[r];
  row_entries_.resize(entries_.size());
  std::vector<size_t> cursor(row_offsets_.begin(), row_offsets_.end() - 1);
  for (int j = 0; j < cols; ++j) {
    for (const SparseEntry& e : Column(j)) {
      row_entries_[cursor[e.index]++] = SparseEntry{j, e.value};
    }
  }
}

void SparseMatrix::AddColumnTo(int j, double alpha,
                               std::vector<double>& y) const {
  for (const SparseEntry& e : Column(j)) {
    y[e.index] += alpha * e.value;
  }
}

double SparseMatrix::ColumnDot(int j, const std::vector<double>& x) const {
  double dot = 0.0;
  for (const SparseEntry& e : Column(j)) {
    dot += e.value * x[e.index];
  }
  return dot;
}

}  // namespace lp
}  // namespace privsan
