// Linear / integer program model builder.
//
// privsan implements its own optimization stack (the paper solves its UMPs
// with Matlab linprog/bintprog and NEOS solvers, none of which are
// available here). LpModel is the shared problem representation consumed by
// the simplex solver (lp/simplex.h) and branch & bound (lp/branch_and_bound.h).
//
//   LpModel model(ObjectiveSense::kMaximize);
//   int x = model.AddVariable(0, kInfinity, /*objective=*/1.0, "x");
//   int r = model.AddConstraint(ConstraintSense::kLessEqual, 4.0, "cap");
//   model.AddCoefficient(r, x, 2.0);
#ifndef PRIVSAN_LP_MODEL_H_
#define PRIVSAN_LP_MODEL_H_

#include <limits>
#include <string>
#include <vector>

#include "util/result.h"

namespace privsan {
namespace lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class ObjectiveSense { kMinimize, kMaximize };
enum class ConstraintSense { kLessEqual, kGreaterEqual, kEqual };

struct Variable {
  double lower = 0.0;
  double upper = kInfinity;
  double objective = 0.0;
  bool is_integer = false;
  std::string name;
};

struct Coefficient {
  int variable = 0;
  double value = 0.0;
};

struct Constraint {
  ConstraintSense sense = ConstraintSense::kLessEqual;
  double rhs = 0.0;
  std::vector<Coefficient> entries;  // column indices strictly increasing
  std::string name;
};

class LpModel {
 public:
  explicit LpModel(ObjectiveSense sense = ObjectiveSense::kMinimize)
      : sense_(sense) {}

  ObjectiveSense sense() const { return sense_; }
  void set_sense(ObjectiveSense sense) { sense_ = sense; }

  // Returns the new variable's index.
  int AddVariable(double lower, double upper, double objective,
                  std::string name = "", bool is_integer = false);

  // Returns the new constraint's index.
  int AddConstraint(ConstraintSense sense, double rhs, std::string name = "");

  // Accumulates `value` onto A[row][col]. Entries may be added in any order;
  // duplicates are summed at Validate()/solve time.
  void AddCoefficient(int row, int col, double value);

  // Rebinds row r's right-hand side in place. The sparsity pattern is
  // untouched, so a model stays Validate()d across rhs changes — the cached
  // UMP models rebind the privacy budget this way between solves.
  void set_constraint_rhs(int r, double rhs) { constraints_[r].rhs = rhs; }

  int num_variables() const { return static_cast<int>(variables_.size()); }
  int num_constraints() const { return static_cast<int>(constraints_.size()); }
  // Total coefficient entries across all rows (exact after Validate(),
  // which merges duplicates and drops explicit zeros).
  size_t num_nonzeros() const;
  const Variable& variable(int j) const { return variables_[j]; }
  Variable& mutable_variable(int j) { return variables_[j]; }
  const Constraint& constraint(int r) const { return constraints_[r]; }

  // Sorts and merges duplicate coefficients in every row (dropping entries
  // that cancel to zero), then checks: finite coefficients/rhs/objective,
  // lower <= upper, indices in range.
  Status Validate();

  // Objective value of a point in this model's sense.
  double ObjectiveValue(const std::vector<double>& x) const;

  // Whether `x` satisfies all constraints and bounds within `tol`.
  bool IsFeasible(const std::vector<double>& x, double tol) const;

 private:
  ObjectiveSense sense_;
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
};

}  // namespace lp
}  // namespace privsan

#endif  // PRIVSAN_LP_MODEL_H_
