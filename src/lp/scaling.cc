#include "lp/scaling.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace privsan {
namespace lp {

namespace {

constexpr double kMinScale = 1.0 / 16.0;
constexpr double kMaxScale = 16.0;

// Nearest power of two to 1/g, clamped so the cumulative factor stays in
// [kMinScale, kMaxScale]. Powers of two make the multiply exact, so the
// scaled solve and the unscaled report see the same numbers bit for bit.
double SnappedInverse(double g, double current) {
  if (!(g > 0.0) || !std::isfinite(g)) return 1.0;
  double factor = std::exp2(std::round(-std::log2(g)));
  const double lo = kMinScale / current, hi = kMaxScale / current;
  return std::min(std::max(factor, lo), hi);
}

}  // namespace

ScalingFactors ComputeEquilibration(int m, int n_struct,
                                    const std::vector<Triplet>& triplets,
                                    int passes) {
  ScalingFactors s;
  s.row.assign(m, 1.0);
  s.col.assign(n_struct, 1.0);

  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> lo(std::max(m, n_struct)), hi(std::max(m, n_struct));

  for (int pass = 0; pass < passes; ++pass) {
    // Rows: divide by sqrt(min * max) of the current scaled magnitudes.
    std::fill(lo.begin(), lo.begin() + m, kInf);
    std::fill(hi.begin(), hi.begin() + m, 0.0);
    for (const Triplet& t : triplets) {
      if (t.col >= n_struct) continue;
      const double mag = std::abs(t.value) * s.row[t.row] * s.col[t.col];
      if (mag == 0.0) continue;
      lo[t.row] = std::min(lo[t.row], mag);
      hi[t.row] = std::max(hi[t.row], mag);
    }
    for (int r = 0; r < m; ++r) {
      if (hi[r] == 0.0) continue;  // slack-only row
      s.row[r] *= SnappedInverse(std::sqrt(lo[r] * hi[r]), s.row[r]);
    }

    // Columns, against the freshly scaled rows.
    std::fill(lo.begin(), lo.begin() + n_struct, kInf);
    std::fill(hi.begin(), hi.begin() + n_struct, 0.0);
    for (const Triplet& t : triplets) {
      if (t.col >= n_struct) continue;
      const double mag = std::abs(t.value) * s.row[t.row] * s.col[t.col];
      if (mag == 0.0) continue;
      lo[t.col] = std::min(lo[t.col], mag);
      hi[t.col] = std::max(hi[t.col], mag);
    }
    for (int c = 0; c < n_struct; ++c) {
      if (hi[c] == 0.0) continue;  // empty column
      s.col[c] *= SnappedInverse(std::sqrt(lo[c] * hi[c]), s.col[c]);
    }
  }

  for (double f : s.row) {
    if (f != 1.0) s.any = true;
  }
  for (double f : s.col) {
    if (f != 1.0) s.any = true;
  }
  return s;
}

}  // namespace lp
}  // namespace privsan
