// Two-phase sparse revised primal simplex with bounded variables, a
// sparse LU (or eta-file) basis, Devex pricing in both phases, presolve,
// and a dual-simplex warm start.
//
// This is the LP engine behind all three utility-maximizing problems:
// O-UMP and F-UMP are solved directly as LPs (with linear relaxation, as in
// Section 5 of the paper), and branch & bound uses it per node for D-UMP —
// warm-starting every child node from its parent's optimal basis.
//
// The engine is split into four modules; this file's SimplexSolver is the
// iteration driver tying them together:
//
//  * Factorization (lp/lu_factorization.h, lp/eta_file.h): FTRAN/BTRAN/
//    UPDATE behind the BasisRep interface. The default is a sparse LU with
//    Markowitz ordering and threshold partial pivoting, updated in product
//    form; the pure product-form eta file remains selectable (fallback and
//    test oracle), and a dense explicit inverse is the retry of last
//    resort. Refactorization triggers on update-file growth or numerical
//    drift (residual breach), never on a fixed iteration schedule. A
//    *singular* refactorization no longer forces a cold solve: the
//    dependent columns are swapped for the uncovered rows' slacks and the
//    solve continues (SimplexOptions::repair_policy).
//  * Pricing (lp/pricing.h): primal Devex over candidate-list partial
//    pricing (full scans refill a small candidate list; optimality is only
//    declared after a full scan of exact reduced costs), and dual Devex
//    reference weights for the dual phase's leaving-row choice. A run of
//    degenerate pivots switches the primal to Bland's rule, which
//    guarantees termination.
//  * Ratio tests (lp/ratio_test.h): Harris-style two-pass tolerancing with
//    bound flips in the primal, and the bound-flip dual ratio test that
//    keeps degenerate dual repairs from thrashing.
//  * Presolve (lp/presolve.h) strips fixed variables, empty and singleton
//    rows, and bound-implied empty columns before phase 1 and maps the
//    reduced solution (primal, duals, and basis) back afterward.
//
// Warm start: Solve(model, hint) starts from a caller-supplied basis —
// typically the parent node's optimal basis in branch & bound. Bound
// changes are restored dual-simplex style (the parent basis stays dual
// feasible under bound changes), followed by a primal cleanup phase. Stale
// hints fall back to a cold solve; singular hints are repaired in place
// when the repair policy allows.
#ifndef PRIVSAN_LP_SIMPLEX_H_
#define PRIVSAN_LP_SIMPLEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lp/model.h"

namespace privsan {
namespace lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kNumericalFailure,
};

const char* SolveStatusToString(SolveStatus status);

// Status of one variable in a basis snapshot.
enum class VarStatus : int8_t {
  kBasic = 0,
  kAtLower = 1,
  kAtUpper = 2,
  kFree = 3,
};

// A simplex basis over the structural + slack variables of a model with
// n structural variables and m rows: `state` has n + m entries, exactly m
// of them kBasic, and `basic` lists the basic variables (slot order is
// irrelevant — warm starts refactorize and re-assign slots).
struct Basis {
  std::vector<int> basic;         // size m
  std::vector<VarStatus> state;   // size n + m
  bool empty() const { return basic.empty(); }
};

struct SimplexOptions {
  // Reduced-cost optimality tolerance.
  double optimality_tol = 1e-7;
  // Pivot magnitude below which a ratio-test row is skipped.
  double pivot_tol = 1e-9;
  // Ratio-test pivots below this are considered numerically unstable: when
  // the tie-break window offers nothing larger, the solver refactorizes and
  // re-prices instead of pivoting (a "pivot" that is pure factorization
  // noise silently makes the basis singular).
  double stable_pivot_tol = 1e-7;
  // Phase-1 objective above this value means infeasible.
  double feasibility_tol = 1e-6;
  // Combined iteration budget across phases (primal and dual).
  int64_t max_iterations = 500000;
  // Degenerate pivots in a row before switching to Bland's rule.
  int bland_trigger = 64;

  // Basis representation: sparse LU with Markowitz ordering (default),
  // product-form eta file (fallback / test oracle), or dense inverse
  // (numerical retry of last resort).
  enum class BasisKind { kEtaFile, kDense, kLu };
  BasisKind basis_kind = BasisKind::kLu;

  // Threshold partial pivoting parameter of the LU factorization, in
  // (0, 1]: a pivot must be at least this fraction of its column's largest
  // magnitude. Larger is more stable, smaller is sparser.
  double markowitz_threshold = 0.1;

  // Hyper-sparse FTRAN/BTRAN switchover: the Gilbert–Peierls symbolic
  // reach abandons the sparse kernel for the dense factor pass once the
  // reach set exceeds this fraction of the row count (results are
  // bit-identical either way — this is purely a cost crossover). 0
  // disables the sparse path; only the LU representation honors it.
  double hypersparse_threshold = 0.1;

  // How the LU basis folds simplex pivots into the factors: Forrest–Tomlin
  // (default — U updated in place plus one row eta per pivot, fill grows
  // with the data, refactorizations spread far apart) or product-form
  // (one whole-column eta per pivot; the update oracle). Ignored by the
  // eta-file and dense representations.
  enum class UpdateKind { kForrestTomlin, kProductForm };
  UpdateKind update_kind = UpdateKind::kForrestTomlin;

  // Row/column equilibration (lp/scaling.h): iterative geometric-mean
  // scaling of the constraint matrix into roughly [1/16, 16] with
  // power-of-two factors (exact in floating point), applied inside the
  // solver — costs, bounds, rhs, and the solution are mapped back exactly,
  // and basis hints are scale-invariant, so warm starts are unaffected.
  // Lets markowitz_threshold chase sparsity on badly scaled rows.
  enum class Scaling { kNone, kEquilibrate };
  Scaling scaling = Scaling::kEquilibrate;

  // Dual-phase leaving-row rule: dual Devex (default — violation^2 over a
  // steepest-edge-approximating row weight) or the legacy largest
  // violation. Devex cuts the pivot count of long dual repairs (deep B&B
  // children, post-append warm starts).
  enum class DualPricing { kLargestViolation, kDevex };
  DualPricing dual_pricing = DualPricing::kDevex;

  // What to do when a refactorization finds the basis singular. kRowSlacks
  // (default) swaps the dependent columns for the uncovered rows' slack
  // variables and continues the solve in place; kNone restores the old
  // behavior (numerical failure -> cold solve / dense retry).
  enum class RepairPolicy { kNone, kRowSlacks };
  RepairPolicy repair_policy = RepairPolicy::kRowSlacks;
  // Repair-and-refactorize attempts per factorization before giving up
  // (each attempt can expose further dependencies).
  int max_basis_repairs = 3;

  // Pivot budget of the warm-start dual repair phase: a warm basis is
  // near-optimal, so a long dual run signals a stale hint and the solver
  // bails out to a cold solve (reported as LpSolution::repair_aborted).
  // <= 0 picks the measured default of 4 * rows + 1000.
  int64_t warm_repair_pivot_cap = 0;

  // Refactorization triggers (there is no fixed iteration cadence):
  // pivots since the last refactorization (this also bounds the staleness
  // of the incrementally-maintained reduced costs — keep it <= a few
  // hundred). Under Forrest–Tomlin updates the count is a safety net only:
  // the cap is raised 4x and measured fill growth governs instead.
  int refactor_max_updates = 100;
  // ...update-file nonzeros versus the fresh factorization...
  double refactor_growth = 8.0;
  // ...and numerical drift: every `drift_check_interval` iterations the
  // residual |b - A x| is measured and a breach of `drift_tol`
  // (relative to 1 + |b|_inf) forces a refactorization.
  int drift_check_interval = 64;
  double drift_tol = 1e-6;

  // Candidate-list partial pricing; disable for pure Dantzig scans.
  bool partial_pricing = true;
  int candidate_list_size = 64;

  // Presolve before cold solves (never applied to warm starts).
  bool presolve = true;

  // When a warm-started dual simplex concludes "primal infeasible",
  // re-derive the verdict with a cold phase-1 solve. Costs extra work on
  // infeasible nodes but makes branch & bound pruning immune to a stale
  // warm basis.
  bool confirm_warm_infeasible = true;

  // Deterministic multiplicative cost perturbation (~1e-9 relative) that
  // breaks the massive dual degeneracy of uniform-cost objectives like
  // O-UMP. The reported objective and duals use the exact costs.
  bool perturb_costs = true;
};

struct LpSolution {
  SolveStatus status = SolveStatus::kNumericalFailure;
  // Objective in the model's own sense; meaningful when status == kOptimal.
  double objective = 0.0;
  // Structural variable values.
  std::vector<double> x;
  // Row duals of the internal minimization; negated for maximize models so
  // they price the *original* objective.
  std::vector<double> duals;
  // Optimal basis (structural + slack variables), usable as a warm-start
  // hint for a re-solve after bound changes. Populated when kOptimal.
  Basis basis;
  int64_t iterations = 0;
  // Dual-simplex pivots spent restoring a warm basis (subset of the work;
  // also counted in `iterations`).
  int64_t dual_iterations = 0;
  int refactorizations = 0;
  // Singular refactorizations repaired in place (dependent columns swapped
  // for row slacks) instead of aborting the solve.
  int basis_repairs = 0;
  // Whether this solve ran from a warm basis (no phase 1).
  bool warm_started = false;
  // The warm-start dual repair exceeded warm_repair_pivot_cap and the
  // solver fell back to a cold solve (whose effort is included above).
  bool repair_aborted = false;
  // Peak nonzeros one FTRAN/BTRAN traversed (factors + update file) across
  // the solve — the fill the kernel work is proportional to.
  size_t factor_nnz = 0;
  // Longest run of basis updates between consecutive refactorizations —
  // how far apart the update scheme pushes them.
  int max_update_run = 0;
  // Hyper-sparse kernel health: pattern-driven FTRAN/BTRAN calls, how many
  // of them stayed on the Gilbert–Peierls kernel end to end (no density
  // fallback), and the mean fraction of rows a solve actually reached
  // (1.0 counts a fallback). Zero / 0.0 when the representation has no
  // sparse kernel or the threshold disabled it.
  uint64_t sparse_solves = 0;
  uint64_t sparse_ftran_hits = 0;
  double mean_reach_fraction = 0.0;
};

class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {});

  // Solves the LP relaxation of `model` (integrality flags ignored).
  // The model must already be Validate()d.
  LpSolution Solve(const LpModel& model) const;

  // Same, warm-starting from `hint` — a basis of a structurally identical
  // model (same variables and rows; bounds and rhs may differ). Falls back
  // to a cold solve when the hint is empty, stale, or singular.
  LpSolution Solve(const LpModel& model, const Basis* hint) const;

 private:
  SimplexOptions options_;
};

}  // namespace lp
}  // namespace privsan

#endif  // PRIVSAN_LP_SIMPLEX_H_
