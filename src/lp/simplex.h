// Two-phase revised primal simplex with bounded variables.
//
// This is the LP engine behind all three utility-maximizing problems:
// O-UMP and F-UMP are solved directly as LPs (with linear relaxation, as in
// Section 5 of the paper), and branch & bound uses it per node for D-UMP.
//
// Implementation notes:
//  * every constraint row gets a slack variable with bounds chosen by sense
//    (<=: [0, inf), >=: (-inf, 0], =: [0, 0]), turning rows into equalities;
//  * rows whose initial slack value violates its bounds get an artificial
//    variable; phase 1 minimizes the sum of artificials (zero iff feasible);
//  * the basis inverse is kept as a dense m x m matrix updated by
//    Gauss-Jordan pivots, with periodic full refactorization;
//  * pricing is Dantzig (most-negative reduced cost) with an automatic
//    switch to Bland's rule after a run of degenerate pivots, which
//    guarantees termination;
//  * bounded nonbasic variables may "bound flip" without a basis change.
#ifndef PRIVSAN_LP_SIMPLEX_H_
#define PRIVSAN_LP_SIMPLEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lp/model.h"

namespace privsan {
namespace lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kNumericalFailure,
};

const char* SolveStatusToString(SolveStatus status);

struct SimplexOptions {
  // Reduced-cost optimality tolerance.
  double optimality_tol = 1e-7;
  // Pivot magnitude below which a ratio-test row is skipped.
  double pivot_tol = 1e-9;
  // Phase-1 objective above this value means infeasible.
  double feasibility_tol = 1e-6;
  // Combined iteration budget across both phases.
  int64_t max_iterations = 500000;
  // Degenerate pivots in a row before switching to Bland's rule.
  int bland_trigger = 64;
  // Full refactorization cadence (iterations).
  int refactor_interval = 2000;
  // Deterministic multiplicative cost perturbation (~1e-9 relative) that
  // breaks the massive dual degeneracy of uniform-cost objectives like
  // O-UMP. The reported objective and duals use the exact costs.
  bool perturb_costs = true;
};

struct LpSolution {
  SolveStatus status = SolveStatus::kNumericalFailure;
  // Objective in the model's own sense; meaningful when status == kOptimal.
  double objective = 0.0;
  // Structural variable values.
  std::vector<double> x;
  // Row duals of the internal minimization; negated for maximize models so
  // they price the *original* objective.
  std::vector<double> duals;
  int64_t iterations = 0;
  int refactorizations = 0;
};

class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {});

  // Solves the LP relaxation of `model` (integrality flags ignored).
  // The model must already be Validate()d.
  LpSolution Solve(const LpModel& model) const;

 private:
  SimplexOptions options_;
};

}  // namespace lp
}  // namespace privsan

#endif  // PRIVSAN_LP_SIMPLEX_H_
