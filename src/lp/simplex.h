// Two-phase sparse revised primal simplex with bounded variables, a
// product-form (eta-file) basis, partial pricing, presolve, and a
// dual-simplex warm start.
//
// This is the LP engine behind all three utility-maximizing problems:
// O-UMP and F-UMP are solved directly as LPs (with linear relaxation, as in
// Section 5 of the paper), and branch & bound uses it per node for D-UMP —
// warm-starting every child node from its parent's optimal basis.
//
// Architecture:
//
//  * Rows become equalities: every constraint row gets a slack variable with
//    bounds chosen by sense (<=: [0, inf), >=: (-inf, 0], =: [0, 0]); rows
//    whose initial slack value violates its bounds get an artificial
//    variable, and phase 1 minimizes the sum of artificials.
//  * Basis representation (lp/eta_file.h): the basis inverse is held as a
//    product form of the inverse — a sparse eta file built by sparse
//    Gaussian elimination at refactorization time and extended by one eta
//    vector per pivot. FTRAN/BTRAN cost O(nnz of the eta file) instead of
//    the dense O(m^2). A dense explicit-inverse representation is kept as
//    the numerical fallback (used on retry) and as the test oracle.
//  * Refactorization is triggered by eta-file growth or by numerical drift
//    (the residual |b - A x| is checked on a cadence and on breach the
//    basis is refactorized), not by a fixed iteration schedule.
//  * Pricing is candidate-list partial pricing (multiple pricing): a full
//    Dantzig scan refills a small candidate list, minor iterations price
//    only the candidates, and optimality is only declared after a full
//    scan finds no improving column. A run of degenerate pivots switches
//    to Bland's rule (full scan, lowest improving index), which guarantees
//    termination.
//  * Presolve (lp/presolve.h) strips fixed variables, empty and singleton
//    rows, and bound-implied empty columns before phase 1 and maps the
//    reduced solution (primal, duals, and basis) back afterward.
//  * Warm start: Solve(model, hint) starts from a caller-supplied basis —
//    typically the parent node's optimal basis in branch & bound. Bound
//    changes are restored dual-simplex style (the parent basis stays dual
//    feasible under bound changes), followed by a primal cleanup phase.
//    Stale or singular hints fall back to a cold solve.
//  * Bounded nonbasic variables may "bound flip" without a basis change,
//    in both the primal and the dual ratio test.
#ifndef PRIVSAN_LP_SIMPLEX_H_
#define PRIVSAN_LP_SIMPLEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lp/model.h"

namespace privsan {
namespace lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kNumericalFailure,
};

const char* SolveStatusToString(SolveStatus status);

// Status of one variable in a basis snapshot.
enum class VarStatus : int8_t {
  kBasic = 0,
  kAtLower = 1,
  kAtUpper = 2,
  kFree = 3,
};

// A simplex basis over the structural + slack variables of a model with
// n structural variables and m rows: `state` has n + m entries, exactly m
// of them kBasic, and `basic` lists the basic variables (slot order is
// irrelevant — warm starts refactorize and re-assign slots).
struct Basis {
  std::vector<int> basic;         // size m
  std::vector<VarStatus> state;   // size n + m
  bool empty() const { return basic.empty(); }
};

struct SimplexOptions {
  // Reduced-cost optimality tolerance.
  double optimality_tol = 1e-7;
  // Pivot magnitude below which a ratio-test row is skipped.
  double pivot_tol = 1e-9;
  // Ratio-test pivots below this are considered numerically unstable: when
  // the tie-break window offers nothing larger, the solver refactorizes and
  // re-prices instead of pivoting (a "pivot" that is pure factorization
  // noise silently makes the basis singular).
  double stable_pivot_tol = 1e-7;
  // Phase-1 objective above this value means infeasible.
  double feasibility_tol = 1e-6;
  // Combined iteration budget across phases (primal and dual).
  int64_t max_iterations = 500000;
  // Degenerate pivots in a row before switching to Bland's rule.
  int bland_trigger = 64;

  // Basis representation: eta file (sparse, default) or dense inverse
  // (numerical fallback / test oracle).
  enum class BasisKind { kEtaFile, kDense };
  BasisKind basis_kind = BasisKind::kEtaFile;

  // Refactorization triggers (there is no fixed iteration cadence):
  // pivots since the last refactorization (this also bounds the staleness
  // of the incrementally-maintained reduced costs — keep it <= a few
  // hundred)...
  int refactor_max_updates = 100;
  // ...eta-file nonzeros versus the fresh factorization...
  double refactor_growth = 8.0;
  // ...and numerical drift: every `drift_check_interval` iterations the
  // residual |b - A x| is measured and a breach of `drift_tol`
  // (relative to 1 + |b|_inf) forces a refactorization.
  int drift_check_interval = 64;
  double drift_tol = 1e-6;

  // Candidate-list partial pricing; disable for pure Dantzig scans.
  bool partial_pricing = true;
  int candidate_list_size = 64;

  // Presolve before cold solves (never applied to warm starts).
  bool presolve = true;

  // When a warm-started dual simplex concludes "primal infeasible",
  // re-derive the verdict with a cold phase-1 solve. Costs extra work on
  // infeasible nodes but makes branch & bound pruning immune to a stale
  // warm basis.
  bool confirm_warm_infeasible = true;

  // Deterministic multiplicative cost perturbation (~1e-9 relative) that
  // breaks the massive dual degeneracy of uniform-cost objectives like
  // O-UMP. The reported objective and duals use the exact costs.
  bool perturb_costs = true;
};

struct LpSolution {
  SolveStatus status = SolveStatus::kNumericalFailure;
  // Objective in the model's own sense; meaningful when status == kOptimal.
  double objective = 0.0;
  // Structural variable values.
  std::vector<double> x;
  // Row duals of the internal minimization; negated for maximize models so
  // they price the *original* objective.
  std::vector<double> duals;
  // Optimal basis (structural + slack variables), usable as a warm-start
  // hint for a re-solve after bound changes. Populated when kOptimal.
  Basis basis;
  int64_t iterations = 0;
  // Dual-simplex pivots spent restoring a warm basis (subset of the work;
  // also counted in `iterations`).
  int64_t dual_iterations = 0;
  int refactorizations = 0;
  // Whether this solve ran from a warm basis (no phase 1).
  bool warm_started = false;
};

class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {});

  // Solves the LP relaxation of `model` (integrality flags ignored).
  // The model must already be Validate()d.
  LpSolution Solve(const LpModel& model) const;

  // Same, warm-starting from `hint` — a basis of a structurally identical
  // model (same variables and rows; bounds and rhs may differ). Falls back
  // to a cold solve when the hint is empty, stale, or singular.
  LpSolution Solve(const LpModel& model, const Basis* hint) const;

 private:
  SimplexOptions options_;
};

}  // namespace lp
}  // namespace privsan

#endif  // PRIVSAN_LP_SIMPLEX_H_
