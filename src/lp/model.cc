#include "lp/model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace privsan {
namespace lp {

int LpModel::AddVariable(double lower, double upper, double objective,
                         std::string name, bool is_integer) {
  Variable v;
  v.lower = lower;
  v.upper = upper;
  v.objective = objective;
  v.is_integer = is_integer;
  v.name = std::move(name);
  variables_.push_back(std::move(v));
  return static_cast<int>(variables_.size()) - 1;
}

int LpModel::AddConstraint(ConstraintSense sense, double rhs,
                           std::string name) {
  Constraint c;
  c.sense = sense;
  c.rhs = rhs;
  c.name = std::move(name);
  constraints_.push_back(std::move(c));
  return static_cast<int>(constraints_.size()) - 1;
}

void LpModel::AddCoefficient(int row, int col, double value) {
  PRIVSAN_CHECK(row >= 0 && row < num_constraints());
  PRIVSAN_CHECK(col >= 0 && col < num_variables());
  constraints_[row].entries.push_back(Coefficient{col, value});
}

Status LpModel::Validate() {
  for (int j = 0; j < num_variables(); ++j) {
    const Variable& v = variables_[j];
    if (std::isnan(v.lower) || std::isnan(v.upper) ||
        !std::isfinite(v.objective)) {
      return Status::InvalidArgument("variable " + std::to_string(j) +
                                     " has NaN bound or non-finite objective");
    }
    if (v.lower > v.upper) {
      return Status::InvalidArgument("variable " + std::to_string(j) +
                                     " has lower > upper");
    }
  }
  for (int r = 0; r < num_constraints(); ++r) {
    Constraint& c = constraints_[r];
    if (!std::isfinite(c.rhs)) {
      return Status::InvalidArgument("constraint " + std::to_string(r) +
                                     " has non-finite rhs");
    }
    for (const Coefficient& entry : c.entries) {
      if (entry.variable < 0 || entry.variable >= num_variables()) {
        return Status::InvalidArgument("constraint " + std::to_string(r) +
                                       " references unknown variable");
      }
      if (!std::isfinite(entry.value)) {
        return Status::InvalidArgument("constraint " + std::to_string(r) +
                                       " has non-finite coefficient");
      }
    }
    std::sort(c.entries.begin(), c.entries.end(),
              [](const Coefficient& a, const Coefficient& b) {
                return a.variable < b.variable;
              });
    // Merge duplicates in place, then drop entries that cancelled to zero
    // (presolve's singleton/empty-row detection relies on live counts).
    size_t out = 0;
    for (size_t i = 0; i < c.entries.size(); ++i) {
      if (out > 0 && c.entries[out - 1].variable == c.entries[i].variable) {
        c.entries[out - 1].value += c.entries[i].value;
      } else {
        c.entries[out++] = c.entries[i];
      }
    }
    c.entries.resize(out);
    std::erase_if(c.entries,
                  [](const Coefficient& e) { return e.value == 0.0; });
  }
  return Status::OK();
}

size_t LpModel::num_nonzeros() const {
  size_t count = 0;
  for (const Constraint& c : constraints_) count += c.entries.size();
  return count;
}

double LpModel::ObjectiveValue(const std::vector<double>& x) const {
  PRIVSAN_CHECK(x.size() == variables_.size());
  double value = 0.0;
  for (size_t j = 0; j < variables_.size(); ++j) {
    value += variables_[j].objective * x[j];
  }
  return value;
}

bool LpModel::IsFeasible(const std::vector<double>& x, double tol) const {
  PRIVSAN_CHECK(x.size() == variables_.size());
  for (size_t j = 0; j < variables_.size(); ++j) {
    if (x[j] < variables_[j].lower - tol || x[j] > variables_[j].upper + tol) {
      return false;
    }
  }
  for (const Constraint& c : constraints_) {
    double lhs = 0.0;
    for (const Coefficient& entry : c.entries) {
      lhs += entry.value * x[entry.variable];
    }
    switch (c.sense) {
      case ConstraintSense::kLessEqual:
        if (lhs > c.rhs + tol) return false;
        break;
      case ConstraintSense::kGreaterEqual:
        if (lhs < c.rhs - tol) return false;
        break;
      case ConstraintSense::kEqual:
        if (std::abs(lhs - c.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

}  // namespace lp
}  // namespace privsan
