// Compressed sparse column matrix used by the simplex solver for fast
// column access (FTRAN and pricing both walk columns), with a parallel
// CSR view: the dual simplex prices rows (alpha = A^T rho with rho sparse),
// which walks rows instead.
#ifndef PRIVSAN_LP_SPARSE_MATRIX_H_
#define PRIVSAN_LP_SPARSE_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace privsan {
namespace lp {

struct Triplet {
  int row = 0;
  int col = 0;
  double value = 0.0;
};

struct SparseEntry {
  int index = 0;  // row index (CSC) or column index (CSR)
  double value = 0.0;
};

// Cell of an epoch-validated sparse accumulator (alpha = A^T rho in the
// simplex pivot row): `value` is live only when `epoch` matches the
// accumulation round's counter, so clearing between rounds is a counter
// bump instead of a pass over the touched indices. Value and mark share a
// 16-byte cell deliberately — the accumulation's random access per matrix
// entry then costs one cache line, not two (a measured hot spot: the pivot
// row visits most of the matrix on every simplex iteration).
struct SparseAccumCell {
  double value = 0.0;
  int64_t epoch = 0;
};

// A dense work vector paired with an optional nonzero pattern, the currency
// of the hyper-sparse FTRAN/BTRAN path (lp/lu_factorization). `values` is
// always a full m-vector so dense consumers and dense fallbacks work
// unchanged; when `pattern_valid` is set, every nonzero of `values` is
// listed in `pattern` and every entry outside it is exactly +0.0. The
// pattern may list zero-valued entries (cancellations) and, on input to the
// kernel, duplicates; kernels deduplicate and return a sorted,
// duplicate-free pattern so consumers iterating it visit entries in the
// same ascending-index order a dense scan would.
struct SparseVector {
  std::vector<double> values;
  std::vector<int> pattern;
  bool pattern_valid = false;

  // Sizes to dimension m, all zeros, empty valid pattern.
  void Reset(int m) {
    values.assign(m, 0.0);
    pattern.clear();
    pattern_valid = true;
  }

  // Re-zeros in O(|pattern|) when the pattern is valid (the hot path),
  // leaving an empty valid pattern for the caller to seed.
  void Clear() {
    if (pattern_valid) {
      for (int i : pattern) values[i] = 0.0;
    } else {
      values.assign(values.size(), 0.0);
    }
    pattern.clear();
    pattern_valid = true;
  }
};

// Immutable CSC + CSR matrix. Duplicate triplets are summed during
// construction; explicit zeros are dropped.
class SparseMatrix {
 public:
  SparseMatrix() = default;
  SparseMatrix(int rows, int cols, std::vector<Triplet> triplets);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t nonzeros() const { return entries_.size(); }

  // The entries of column j, sorted by row index.
  std::span<const SparseEntry> Column(int j) const {
    return {entries_.data() + offsets_[j], offsets_[j + 1] - offsets_[j]};
  }

  // The entries of row i, sorted by column index.
  std::span<const SparseEntry> Row(int i) const {
    return {row_entries_.data() + row_offsets_[i],
            row_offsets_[i + 1] - row_offsets_[i]};
  }

  // y += alpha * A[:, j]
  void AddColumnTo(int j, double alpha, std::vector<double>& y) const;

  // Returns dot(A[:, j], x).
  double ColumnDot(int j, const std::vector<double>& x) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<size_t> offsets_;  // size cols_+1
  std::vector<SparseEntry> entries_;
  std::vector<size_t> row_offsets_;  // size rows_+1
  std::vector<SparseEntry> row_entries_;
};

}  // namespace lp
}  // namespace privsan

#endif  // PRIVSAN_LP_SPARSE_MATRIX_H_
