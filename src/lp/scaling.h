// Row/column equilibration for the simplex constraint matrix.
//
// The DP constraint systems the UMPs generate mix coefficient magnitudes
// freely (multiplicity counts against e^eps weights spanning several
// orders), and threshold partial pivoting judges every candidate pivot
// against its column's largest magnitude — on a badly scaled column the
// threshold rejects pivots that are perfectly stable, forcing denser
// choices. Equilibration narrows the magnitude spread first, so
// markowitz_threshold can chase sparsity instead of compensating for units.
//
// ComputeEquilibration returns per-row factors R and per-structural-column
// factors C such that the scaled matrix R A C has entries near 1 in
// magnitude: iterative geometric-mean scaling (each pass divides rows, then
// columns, by sqrt(min * max) of their current nonzero magnitudes), with
// every factor snapped to a power of two — so scaling and unscaling are
// EXACT in floating point, no rounding is introduced anywhere — and the
// cumulative factors clamped to [1/16, 16].
//
// The caller (lp/simplex.cc) owns applying the factors: A -> R A C,
// b -> R b, bounds -> /C, costs -> *C, then x -> C x' and y -> R y' on the
// way back. Slack and artificial columns take C = 1/R_r so their
// coefficients stay exactly +-1. Basis snapshots hold only statuses, which
// are scale-invariant — warm-start hints cross scaled and unscaled solves
// untouched, and identical matrices always produce identical factors, so
// every solve of a sweep scales the same way.
#ifndef PRIVSAN_LP_SCALING_H_
#define PRIVSAN_LP_SCALING_H_

#include <vector>

#include "lp/sparse_matrix.h"

namespace privsan {
namespace lp {

struct ScalingFactors {
  std::vector<double> row;  // R_r, size m (empty when inactive)
  std::vector<double> col;  // C_j, size n_struct
  // False when every factor came out 1.0 — the caller skips the rescale.
  bool any = false;
};

// Equilibrates the structural part of an m-row constraint matrix given as
// triplets (entries with col >= n_struct — slacks — are ignored; their
// factors are derived from R by the caller). `passes` alternating
// row/column sweeps; the factors converge geometrically, so a handful
// suffice.
ScalingFactors ComputeEquilibration(int m, int n_struct,
                                    const std::vector<Triplet>& triplets,
                                    int passes = 4);

}  // namespace lp
}  // namespace privsan

#endif  // PRIVSAN_LP_SCALING_H_
