// Ratio tests for the revised simplex, split out of the iteration driver in
// lp/simplex.cc.
//
//   * PrimalRatioTest — Harris-style two-pass tolerancing over the basic
//     variables: pass 1 finds the tightest blocking step, pass 2 re-scans
//     the slots whose ratio lies within a small window above it and keeps
//     the one with the largest pivot magnitude (numerical stability) — or,
//     under Bland's rule, the smallest basic variable index (termination).
//     A bounded entering variable may also "bound flip": travel to its own
//     opposite bound without any basis change.
//   * DualRatioTest — the bound-flip dual ratio test: walk the
//     sign-eligible columns in ascending |d_j / alpha_j| order; a candidate
//     whose whole range cannot absorb the leaving variable's violation is
//     queued to bound-flip (its reduced cost crosses zero at the eventual
//     dual step, so the flip keeps dual feasibility), and the first
//     candidate that can absorb what remains enters the basis. Without the
//     flips, degenerate instances thrash for thousands of iterations
//     moving one sliver at a time.
//
// Both are pure functions of the driver's state — they choose, the driver
// applies.
#ifndef PRIVSAN_LP_RATIO_TEST_H_
#define PRIVSAN_LP_RATIO_TEST_H_

#include <span>
#include <vector>

#include "lp/simplex.h"
#include "lp/sparse_matrix.h"

namespace privsan {
namespace lp {

struct PrimalRatioChoice {
  // Slot of the blocking basic variable; -1 when nothing blocks — then the
  // entering variable bound-flips by `step`, or the LP is unbounded along
  // this column when `unbounded` is set.
  int leaving_row = -1;
  // Nonnegative step magnitude of the entering variable.
  double step = 0.0;
  // Whether the blocking variable leaves at its upper bound.
  bool leaving_at_upper = false;
  // No blocking row and no finite bound flip.
  bool unbounded = false;
};

// `direction` is the FTRAN image B^-1 A_entering; `direction_sign` +1/-1 is
// the travel direction; `bound_flip_step` is how far the entering variable
// may travel before hitting its own opposite bound (infinity when none).
// When the direction carries a valid pattern (hyper-sparse FTRAN) both
// passes walk only the pattern — it is sorted ascending, so the Harris
// pass-2 tie-break visits slots in the same order as the dense scan and
// the choice is bit-identical.
PrimalRatioChoice PrimalRatioTest(const SparseVector& direction,
                                  int direction_sign, double bound_flip_step,
                                  std::span<const int> basis,
                                  std::span<const double> x,
                                  std::span<const double> lower,
                                  std::span<const double> upper, bool bland,
                                  const SimplexOptions& options);

struct DualRatioChoice {
  // Entering column; -1 is a Farkas certificate — the primal is infeasible
  // (even flipping every eligible column cannot absorb the violation).
  int entering = -1;
  // Columns to bound-flip before the dual step (in ratio order).
  std::vector<int> bound_flips;
};

// `alpha_touched`/`alpha` are the computed entries of the leaving slot's
// pivot row; `below` and `violation` describe the leaving variable's bound
// violation (from DualPricer::ChooseLeaving).
DualRatioChoice DualRatioTest(std::span<const int> alpha_touched,
                              const std::vector<SparseAccumCell>& alpha,
                              std::span<const double> reduced_costs,
                              std::span<const VarStatus> state,
                              std::span<const double> lower,
                              std::span<const double> upper, bool below,
                              double violation,
                              const SimplexOptions& options);

}  // namespace lp
}  // namespace privsan

#endif  // PRIVSAN_LP_RATIO_TEST_H_
