#include "lp/lu_factorization.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <utility>

#include "util/logging.h"

namespace privsan {
namespace lp {

namespace {
// Pivot magnitude below which a factorization declares the basis singular.
constexpr double kSingularTol = 1e-11;
// Candidate columns examined per elimination step before settling for the
// best Markowitz count seen (a full scan only runs when none of them has a
// numerically acceptable pivot).
constexpr int kColumnCandidates = 8;
}  // namespace

bool LuFactorization::Refactorize(const SparseMatrix& A,
                                  std::vector<int>& basis) {
  const int m = A.rows();
  PRIVSAN_CHECK(static_cast<int>(basis.size()) == m);
  singular_info_.Clear();

  // The active submatrix, row-major and exact: rows[r] holds (slot column,
  // value) for every nonzero of row r over the not-yet-eliminated columns.
  // col_rows is the column-major *pattern* only — it may hold stale rows
  // (eliminated, or holding a cancelled entry); gathers re-validate against
  // the row data, deduped with a stamp.
  std::vector<std::vector<SparseEntry>> rows(m);
  std::vector<int> col_count(m, 0), row_count(m, 0);
  std::vector<std::vector<int>> col_rows(m);
  for (int c = 0; c < m; ++c) {
    for (const SparseEntry& e : A.Column(basis[c])) {
      rows[e.index].push_back(SparseEntry{c, e.value});
    }
  }
  for (int r = 0; r < m; ++r) {
    row_count[r] = static_cast<int>(rows[r].size());
    for (const SparseEntry& e : rows[r]) {
      ++col_count[e.index];
      col_rows[e.index].push_back(r);
    }
  }

  std::vector<char> row_active(m, 1), col_active(m, 1);
  std::vector<int> gather_stamp(m, -1);

  // Count-indexed bucket lists over the active columns: bucket_head[k] is
  // the first active column with col_count == k, threaded through
  // bucket_next/bucket_prev. Every count change relinks the column, so the
  // per-step candidate search walks the cheapest buckets instead of
  // scanning all m columns — its cost tracks fill, not dimension.
  // min_count is a forward-moving floor hint, reset whenever a column is
  // filed below it (cancellation can lower counts).
  std::vector<int> bucket_head(m + 1, -1);
  std::vector<int> bucket_next(m, -1), bucket_prev(m, -1);
  int min_count = m;
  auto bucket_insert = [&](int c) {
    const int count = col_count[c];
    bucket_prev[c] = -1;
    bucket_next[c] = bucket_head[count];
    if (bucket_head[count] >= 0) bucket_prev[bucket_head[count]] = c;
    bucket_head[count] = c;
    if (count < min_count) min_count = count;
  };
  auto bucket_remove = [&](int c) {
    const int count = col_count[c];
    if (bucket_prev[c] >= 0) {
      bucket_next[bucket_prev[c]] = bucket_next[c];
    } else {
      bucket_head[count] = bucket_next[c];
    }
    if (bucket_next[c] >= 0) bucket_prev[bucket_next[c]] = bucket_prev[c];
  };
  // Call around any col_count change of an active column.
  auto count_changed = [&](int c, int delta) {
    bucket_remove(c);
    col_count[c] += delta;
    bucket_insert(c);
  };
  for (int c = 0; c < m; ++c) bucket_insert(c);

  // Scratch for the rank-1 row updates.
  std::vector<double> work(m, 0.0);
  std::vector<char> in_work(m, 0);
  std::vector<int> touched;
  touched.reserve(64);

  std::vector<LStep> lsteps;
  lsteps.reserve(m);
  std::vector<URow> urows;
  urows.reserve(m);
  std::vector<int> pivot_rows;  // step -> pivot row
  pivot_rows.reserve(m);
  std::vector<int> step_of_col(m, -1);
  std::vector<int> new_basis(m, -1);
  size_t l_nnz = 0, u_nnz = 0;

  // Entries of one candidate pivot column over the active rows.
  struct ColEntry {
    int row;
    double value;
  };
  std::vector<ColEntry> col_entries, pivot_entries;
  int stamp = 0;

  // Validated gather of column c; returns the column's max magnitude.
  auto gather_column = [&](int c) -> double {
    col_entries.clear();
    ++stamp;
    double colmax = 0.0;
    for (int r : col_rows[c]) {
      if (!row_active[r] || gather_stamp[r] == stamp) continue;
      gather_stamp[r] = stamp;
      for (const SparseEntry& e : rows[r]) {
        if (e.index == c) {
          col_entries.push_back(ColEntry{r, e.value});
          colmax = std::max(colmax, std::abs(e.value));
          break;
        }
      }
    }
    return colmax;
  };

  // Best threshold-acceptable pivot of column c by Markowitz count; returns
  // false when the column is numerically empty. On success fills
  // (row, value, cost).
  auto best_in_column = [&](int c, int& prow, double& pval,
                            size_t& cost) -> bool {
    const double colmax = gather_column(c);
    if (colmax < kSingularTol) return false;
    const double accept =
        std::max(markowitz_threshold_ * colmax, kSingularTol);
    prow = -1;
    cost = std::numeric_limits<size_t>::max();
    double pmag = 0.0;
    for (const ColEntry& e : col_entries) {
      const double mag = std::abs(e.value);
      if (mag < accept) continue;
      const size_t c_cost = static_cast<size_t>(col_count[c] - 1) *
                            static_cast<size_t>(row_count[e.row] - 1);
      const bool better =
          c_cost < cost || (c_cost == cost && mag > pmag) ||
          (c_cost == cost && mag == pmag && (prow < 0 || e.row < prow));
      if (better) {
        cost = c_cost;
        prow = e.row;
        pval = e.value;
        pmag = mag;
      }
    }
    return prow >= 0;
  };

  struct Cand {
    int count;
    int col;
  };
  const auto cheaper = [](const Cand& a, const Cand& b) {
    if (a.count != b.count) return a.count < b.count;
    return a.col < b.col;
  };
  std::vector<Cand> cands;
  cands.reserve(2 * kColumnCandidates);

  for (int step = 0; step < m; ++step) {
    // --- Markowitz pivot search over the cheapest candidate columns. ------
    // Gather whole buckets in ascending count order until the pool holds at
    // least kColumnCandidates columns (or every active column), then keep
    // the kColumnCandidates cheapest by (count, col): exactly the candidate
    // set a full scan would keep, at O(candidates) cost. The best
    // threshold-acceptable pivot among them wins; a full column scan runs
    // only when every candidate is numerically empty.
    const int active_cols = m - step;
    while (min_count < m && bucket_head[min_count] < 0) ++min_count;
    cands.clear();
    for (int count = min_count;
         count <= m && static_cast<int>(cands.size()) < kColumnCandidates &&
         static_cast<int>(cands.size()) < active_cols;
         ++count) {
      for (int c = bucket_head[count]; c >= 0; c = bucket_next[c]) {
        cands.push_back(Cand{count, c});
      }
    }
    std::sort(cands.begin(), cands.end(), cheaper);
    if (static_cast<int>(cands.size()) > kColumnCandidates) {
      cands.resize(kColumnCandidates);
    }

    int pivot_col = -1, pivot_row = -1;
    double pivot_value = 0.0;
    size_t best_cost = std::numeric_limits<size_t>::max();
    for (const Cand& cand : cands) {
      int prow;
      double pval;
      size_t cost;
      if (!best_in_column(cand.col, prow, pval, cost)) continue;
      if (cost < best_cost) {
        best_cost = cost;
        pivot_col = cand.col;
        pivot_row = prow;
        pivot_value = pval;
        pivot_entries = col_entries;
      }
      // A later candidate column has count >= this one, so its Markowitz
      // cost is at least (count - 1) * 0 = 0 — only a zero-cost pivot can
      // still win, and we already have one.
      if (best_cost == 0) break;
    }
    if (pivot_col < 0) {
      // None of the cheap candidates was numerically usable; scan them all.
      for (int c = 0; c < m && pivot_col < 0; ++c) {
        if (!col_active[c]) continue;
        int prow;
        double pval;
        size_t cost;
        if (best_in_column(c, prow, pval, cost)) {
          pivot_col = c;
          pivot_row = prow;
          pivot_value = pval;
          pivot_entries = col_entries;
        }
      }
    }
    if (pivot_col < 0) {
      // The remaining active columns are numerically dependent on the
      // eliminated ones. Report them (and the rows left uncovered) so the
      // solver can swap in row slacks; previous state stays untouched.
      for (int c = 0; c < m; ++c) {
        if (col_active[c]) singular_info_.dependent_columns.push_back(basis[c]);
      }
      for (int r = 0; r < m; ++r) {
        if (row_active[r]) singular_info_.unpivoted_rows.push_back(r);
      }
      return false;
    }

    // --- Eliminate (pivot_row, pivot_col). --------------------------------
    LStep lstep;
    lstep.pivot_row = pivot_row;
    URow urow;
    urow.pivot_row = pivot_row;
    urow.pivot = pivot_value;
    for (const SparseEntry& e : rows[pivot_row]) {
      if (e.index != pivot_col) urow.entries.push_back(e);  // cols, for now
    }

    for (const ColEntry& entry : pivot_entries) {
      const int r = entry.row;
      if (r == pivot_row) continue;
      const double f = entry.value / pivot_value;
      lstep.multipliers.push_back(SparseEntry{r, f});

      // rows[r] -= f * rows[pivot_row], via the dense scratch.
      touched.clear();
      for (const SparseEntry& e : rows[r]) {
        work[e.index] = e.value;
        in_work[e.index] = 1;
        touched.push_back(e.index);
      }
      for (const SparseEntry& e : rows[pivot_row]) {
        if (e.index == pivot_col) continue;
        if (!in_work[e.index]) {
          // Fill: a brand-new nonzero in row r.
          work[e.index] = 0.0;
          in_work[e.index] = 1;
          touched.push_back(e.index);
          count_changed(e.index, +1);
          col_rows[e.index].push_back(r);
        }
        work[e.index] -= f * e.value;
      }
      std::vector<SparseEntry>& row = rows[r];
      row.clear();
      for (int c : touched) {
        if (c == pivot_col) {
          // Eliminated; its count is zeroed when the column deactivates.
        } else if (work[c] == 0.0) {
          count_changed(c, -1);  // exact cancellation
        } else {
          row.push_back(SparseEntry{c, work[c]});
        }
        in_work[c] = 0;
      }
      row_count[r] = static_cast<int>(row.size());
    }

    // Deactivate the pivot row and column.
    row_active[pivot_row] = 0;
    for (const SparseEntry& e : rows[pivot_row]) {
      if (e.index != pivot_col) count_changed(e.index, -1);
    }
    bucket_remove(pivot_col);
    col_active[pivot_col] = 0;
    col_count[pivot_col] = 0;

    l_nnz += lstep.multipliers.size();
    u_nnz += 1 + urow.entries.size();
    step_of_col[pivot_col] = step;
    pivot_rows.push_back(pivot_row);
    new_basis[pivot_row] = basis[pivot_col];
    lsteps.push_back(std::move(lstep));
    urows.push_back(std::move(urow));
  }

  // Translate U entries from slot columns to the pivot rows of the steps
  // that own them, so the substitution passes index the work vector
  // directly. Record the column occupancy for the FT update's deletions.
  u_col_rows_.assign(m, {});
  for (URow& urow : urows) {
    for (SparseEntry& e : urow.entries) {
      e.index = pivot_rows[step_of_col[e.index]];
      u_col_rows_[e.index].push_back(urow.pivot_row);
    }
  }

  m_ = m;
  lsteps_ = std::move(lsteps);
  urows_ = std::move(urows);
  row_pos_.assign(m, -1);
  for (int k = 0; k < m; ++k) row_pos_[urows_[k].pivot_row] = k;
  // L adjacency for the Gilbert–Peierls reach. Multiplier rows are always
  // eliminated after the step that scatters into them, so both maps
  // describe a DAG the symbolic pass can walk without cycle detection.
  l_step_of_row_.assign(m, -1);
  l_row_steps_.assign(m, {});
  for (int k = 0; k < m; ++k) {
    l_step_of_row_[lsteps_[k].pivot_row] = k;
    for (const SparseEntry& e : lsteps_[k].multipliers) {
      l_row_steps_[e.index].push_back(k);
    }
  }
  mark_.assign(m, 0);
  mark_epoch_ = 0;
  reach_.clear();
  ft_etas_.clear();
  l_nnz_ = l_nnz;
  fresh_u_nnz_ = u_nnz;
  u_nnz_ = u_nnz;
  ft_nnz_ = 0;
  updates_seq_.Clear();
  updates_ = 0;
  uhat_.assign(m, 0.0);
  uhat_pat_.clear();
  spike_.assign(m, 0.0);
  for (int s : {0, 1}) {
    ftran_partial_[s].values.clear();
    ftran_partial_[s].pattern.clear();
    ftran_partial_[s].pattern_valid = false;
    ftran_result_[s].values.clear();
    ftran_result_[s].pattern.clear();
    ftran_result_[s].pattern_valid = false;
  }
  basis = std::move(new_basis);
  return true;
}

size_t LuFactorization::ReachBound() const {
  return static_cast<size_t>(hypersparse_threshold_ *
                             static_cast<double>(m_));
}

void LuFactorization::StoreMemo(SparseVector& memo,
                                const std::vector<double>& x,
                                bool sparse) const {
  if (!sparse) {
    memo.values = x;
    memo.pattern.clear();
    memo.pattern_valid = false;
    return;
  }
  // Pattern-restricted copy: re-zero whatever the slot held, then write
  // the current reach. A slot last written densely has no trustworthy
  // pattern, so it gets one full clear before rejoining the sparse regime.
  if (memo.values.size() != x.size()) {
    memo.values.assign(x.size(), 0.0);
  } else if (memo.pattern_valid) {
    for (int i : memo.pattern) memo.values[i] = 0.0;
  } else {
    std::fill(memo.values.begin(), memo.values.end(), 0.0);
  }
  memo.pattern.assign(reach_.begin(), reach_.end());
  for (int i : reach_) memo.values[i] = x[i];
  memo.pattern_valid = true;
}

bool LuFactorization::MemoMatches(const SparseVector& memo,
                                  const std::vector<double>& w,
                                  const std::vector<int>* w_pattern) {
  if (memo.values.size() != w.size()) return false;  // consumed or stale
  if (memo.pattern_valid && w_pattern != nullptr) {
    // Outside both patterns both vectors are exactly zero, so equality
    // over the union of patterns is equality everywhere.
    for (int i : *w_pattern) {
      if (memo.values[i] != w[i]) return false;
    }
    for (int i : memo.pattern) {
      if (memo.values[i] != w[i]) return false;
    }
    return true;
  }
  return memo.values == w;
}

void LuFactorization::Ftran(std::vector<double>& v) const {
  // L: forward-apply the multipliers in elimination order.
  for (const LStep& step : lsteps_) {
    const double t = v[step.pivot_row];
    if (t == 0.0) continue;
    for (const SparseEntry& e : step.multipliers) {
      v[e.index] -= e.value * t;
    }
  }
  // Forrest–Tomlin row etas, in append order.
  for (const RowEta& eta : ft_etas_) {
    double s = v[eta.row];
    for (const SparseEntry& e : eta.terms) s -= e.value * v[e.index];
    v[eta.row] = s;
  }
  // Memo for UpdateForrestTomlin: v right here is the partial image U^-1
  // still owes — exactly the û a pivot on this column would spike in.
  const bool memo = update_kind_ == LuUpdateKind::kForrestTomlin;
  if (memo) {
    ftran_slot_ ^= 1;
    StoreMemo(ftran_partial_[ftran_slot_], v, /*sparse=*/false);
  }
  // U: back-substitute in reverse of the current step order (Forrest–Tomlin
  // updates reorder the rows but keep them triangular in that order).
  for (auto it = urows_.rbegin(); it != urows_.rend(); ++it) {
    double s = v[it->pivot_row];
    for (const SparseEntry& e : it->entries) s -= e.value * v[e.index];
    v[it->pivot_row] = s / it->pivot;
  }
  if (memo) StoreMemo(ftran_result_[ftran_slot_], v, /*sparse=*/false);
  // Product-form updates on top.
  updates_seq_.Ftran(v);
}

void LuFactorization::Btran(std::vector<double>& v) const {
  updates_seq_.Btran(v);
  // U^T: forward-substitute in the current step order.
  for (const URow& urow : urows_) {
    const double y = v[urow.pivot_row] / urow.pivot;
    v[urow.pivot_row] = y;
    if (y == 0.0) continue;
    for (const SparseEntry& e : urow.entries) v[e.index] -= e.value * y;
  }
  // Forrest–Tomlin row etas transposed, in reverse append order.
  for (auto it = ft_etas_.rbegin(); it != ft_etas_.rend(); ++it) {
    const double t = v[it->row];
    if (t == 0.0) continue;
    for (const SparseEntry& e : it->terms) v[e.index] -= e.value * t;
  }
  // L^T: apply the multiplier columns transposed, in reverse order.
  for (auto it = lsteps_.rbegin(); it != lsteps_.rend(); ++it) {
    double s = v[it->pivot_row];
    for (const SparseEntry& e : it->multipliers) s -= e.value * v[e.index];
    v[it->pivot_row] = s;
  }
}

// Gilbert–Peierls FTRAN. Each factor half runs (1) a symbolic reach: from
// the pattern's rows, walk the half's static dependency edges, marking
// every row the numeric pass could write (the worklist doubles as the
// accumulated pattern; marks make membership O(1)); then (2) a numeric
// pass: the reach sorted into the dense kernel's application order, each
// reached row updated by exactly the dense formula. Rows outside the
// reach provably see only zero-valued inputs, so the dense kernel either
// skips them (its own t == 0 guards) or writes them a zero whose sign may
// differ — the single tolerated divergence. A reach that outgrows
// hypersparse_threshold * m abandons the pattern: the remaining halves
// run the dense loops and the call reports reach fraction 1.
void LuFactorization::FtranSparse(SparseVector& v) const {
  if (!v.pattern_valid) {
    Ftran(v.values);
    return;
  }
  ++kstats_.sparse_solves;
  std::vector<double>& x = v.values;
  if (SparseDormant()) {
    Ftran(x);  // stores the FT memos itself
    v.pattern.clear();
    v.pattern_valid = false;
    kstats_.reach_fraction_sum += 1.0;
    return;
  }
  const size_t bound = ReachBound();
  const bool memo = update_kind_ == LuUpdateKind::kForrestTomlin;

  // --- L: reach down the multiplier DAG (edges go to later steps). ------
  ++mark_epoch_;
  reach_.clear();
  for (int r : v.pattern) {
    if (x[r] != 0.0) Visit(r);
  }
  for (size_t i = 0; i < reach_.size() && reach_.size() <= bound; ++i) {
    for (const SparseEntry& e :
         lsteps_[l_step_of_row_[reach_[i]]].multipliers) {
      Visit(e.index);
    }
  }
  if (reach_.size() > bound) {
    // Nothing numeric has run yet — the whole solve goes dense.
    Ftran(x);
    v.pattern.clear();
    v.pattern_valid = false;
    kstats_.reach_fraction_sum += 1.0;
    ++sparse_miss_streak_;
    return;
  }
  std::sort(reach_.begin(), reach_.end(), [this](int a, int b) {
    return l_step_of_row_[a] < l_step_of_row_[b];
  });
  for (int r : reach_) {
    const double t = x[r];
    if (t == 0.0) continue;
    for (const SparseEntry& e : lsteps_[l_step_of_row_[r]].multipliers) {
      x[e.index] -= e.value * t;
    }
  }

  // Forrest–Tomlin row etas in append order. A run whose pivot row is
  // outside the pattern and whose terms are all numerically absent can
  // only write a zero — skip it without touching the pattern.
  for (const RowEta& eta : ft_etas_) {
    double s = x[eta.row];
    bool touched = Marked(eta.row);
    for (const SparseEntry& e : eta.terms) {
      if (x[e.index] != 0.0) touched = true;
      s -= e.value * x[e.index];
    }
    if (!touched) continue;
    x[eta.row] = s;
    Visit(eta.row);
  }

  if (memo) {
    ftran_slot_ ^= 1;
    StoreMemo(ftran_partial_[ftran_slot_], x, /*sparse=*/true);
  }

  // --- U: reach up the column occupancy (edges go to earlier positions).
  // u_col_rows_ may list stale rows; spuriously reached rows just compute
  // the same zero the dense pass would.
  for (size_t i = 0; i < reach_.size() && reach_.size() <= bound; ++i) {
    for (int pr : u_col_rows_[reach_[i]]) Visit(pr);
  }
  if (reach_.size() > bound) {
    for (auto it = urows_.rbegin(); it != urows_.rend(); ++it) {
      double s = x[it->pivot_row];
      for (const SparseEntry& e : it->entries) s -= e.value * x[e.index];
      x[it->pivot_row] = s / it->pivot;
    }
    if (memo) StoreMemo(ftran_result_[ftran_slot_], x, /*sparse=*/false);
    updates_seq_.Ftran(x);
    v.pattern.clear();
    v.pattern_valid = false;
    kstats_.reach_fraction_sum += 1.0;
    ++sparse_miss_streak_;
    return;
  }
  std::sort(reach_.begin(), reach_.end(), [this](int a, int b) {
    return row_pos_[a] > row_pos_[b];
  });
  for (int r : reach_) {
    const URow& row = urows_[row_pos_[r]];
    double s = x[r];
    for (const SparseEntry& e : row.entries) s -= e.value * x[e.index];
    x[r] = s / row.pivot;
  }
  if (memo) StoreMemo(ftran_result_[ftran_slot_], x, /*sparse=*/true);

  // Product-form updates (kProductForm only): the dense loop already
  // skips absent pivots; just record the fill they scatter.
  for (const Eta& eta : updates_seq_.etas()) {
    const double t = x[eta.slot];
    if (t == 0.0) continue;
    const double scaled = t / eta.pivot;
    x[eta.slot] = scaled;
    for (const SparseEntry& e : eta.off) {
      x[e.index] -= e.value * scaled;
      Visit(e.index);
    }
  }

  std::sort(reach_.begin(), reach_.end());
  v.pattern.assign(reach_.begin(), reach_.end());
  ++kstats_.sparse_hits;
  sparse_miss_streak_ = 0;
  kstats_.reach_fraction_sum +=
      m_ > 0 ? static_cast<double>(reach_.size()) / m_ : 0.0;
}

// Gilbert–Peierls BTRAN: same scheme, transposed halves in reverse order.
void LuFactorization::BtranSparse(SparseVector& v) const {
  if (!v.pattern_valid) {
    Btran(v.values);
    return;
  }
  ++kstats_.sparse_solves;
  std::vector<double>& x = v.values;
  if (SparseDormant()) {
    Btran(x);
    v.pattern.clear();
    v.pattern_valid = false;
    kstats_.reach_fraction_sum += 1.0;
    return;
  }
  const size_t bound = ReachBound();

  ++mark_epoch_;
  reach_.clear();
  for (int r : v.pattern) {
    if (x[r] != 0.0) Visit(r);
  }

  // Product-form updates transposed, reversed. The dense gather writes
  // every slot unconditionally; one whose slot and terms are all
  // numerically absent can only write a zero — skip it.
  {
    const auto etas = updates_seq_.etas();
    for (auto it = etas.rbegin(); it != etas.rend(); ++it) {
      double s = x[it->slot];
      bool touched = Marked(it->slot);
      for (const SparseEntry& e : it->off) {
        if (x[e.index] != 0.0) touched = true;
        s -= e.value * x[e.index];
      }
      if (!touched) continue;
      x[it->slot] = s / it->pivot;
      Visit(it->slot);
    }
  }

  // --- Uᵀ: forward-substitute; a row's nonzero scatters into its own
  // entries (later positions), so the reach follows the live row data.
  for (size_t i = 0; i < reach_.size() && reach_.size() <= bound; ++i) {
    for (const SparseEntry& e : urows_[row_pos_[reach_[i]]].entries) {
      Visit(e.index);
    }
  }
  if (reach_.size() > bound) {
    for (const URow& urow : urows_) {
      const double y = x[urow.pivot_row] / urow.pivot;
      x[urow.pivot_row] = y;
      if (y == 0.0) continue;
      for (const SparseEntry& e : urow.entries) x[e.index] -= e.value * y;
    }
    for (auto it = ft_etas_.rbegin(); it != ft_etas_.rend(); ++it) {
      const double t = x[it->row];
      if (t == 0.0) continue;
      for (const SparseEntry& e : it->terms) x[e.index] -= e.value * t;
    }
    for (auto it = lsteps_.rbegin(); it != lsteps_.rend(); ++it) {
      double s = x[it->pivot_row];
      for (const SparseEntry& e : it->multipliers) s -= e.value * x[e.index];
      x[it->pivot_row] = s;
    }
    v.pattern.clear();
    v.pattern_valid = false;
    kstats_.reach_fraction_sum += 1.0;
    ++sparse_miss_streak_;
    return;
  }
  std::sort(reach_.begin(), reach_.end(), [this](int a, int b) {
    return row_pos_[a] < row_pos_[b];
  });
  for (int r : reach_) {
    const URow& row = urows_[row_pos_[r]];
    const double y = x[r] / row.pivot;
    x[r] = y;
    if (y == 0.0) continue;
    for (const SparseEntry& e : row.entries) x[e.index] -= e.value * y;
  }

  // FT row etas transposed, reversed — the dense loop already skips
  // absent pivot rows; record the scattered fill.
  for (auto it = ft_etas_.rbegin(); it != ft_etas_.rend(); ++it) {
    const double t = x[it->row];
    if (t == 0.0) continue;
    for (const SparseEntry& e : it->terms) {
      x[e.index] -= e.value * t;
      Visit(e.index);
    }
  }

  // --- Lᵀ: a nonzero row feeds every step that carries it as a
  // multiplier (all earlier than the row's own step).
  for (size_t i = 0; i < reach_.size() && reach_.size() <= bound; ++i) {
    for (int s : l_row_steps_[reach_[i]]) Visit(lsteps_[s].pivot_row);
  }
  if (reach_.size() > bound) {
    for (auto it = lsteps_.rbegin(); it != lsteps_.rend(); ++it) {
      double s = x[it->pivot_row];
      for (const SparseEntry& e : it->multipliers) s -= e.value * x[e.index];
      x[it->pivot_row] = s;
    }
    v.pattern.clear();
    v.pattern_valid = false;
    kstats_.reach_fraction_sum += 1.0;
    ++sparse_miss_streak_;
    return;
  }
  std::sort(reach_.begin(), reach_.end(), [this](int a, int b) {
    return l_step_of_row_[a] > l_step_of_row_[b];
  });
  for (int r : reach_) {
    const LStep& step = lsteps_[l_step_of_row_[r]];
    double s = x[r];
    for (const SparseEntry& e : step.multipliers) s -= e.value * x[e.index];
    x[r] = s;
  }

  std::sort(reach_.begin(), reach_.end());
  v.pattern.assign(reach_.begin(), reach_.end());
  ++kstats_.sparse_hits;
  sparse_miss_streak_ = 0;
  kstats_.reach_fraction_sum +=
      m_ > 0 ? static_cast<double>(reach_.size()) / m_ : 0.0;
}

bool LuFactorization::Update(const std::vector<double>& w, int slot,
                             double pivot_tol) {
  if (std::abs(w[slot]) <= pivot_tol) return false;
  if (update_kind_ == LuUpdateKind::kForrestTomlin) {
    return UpdateForrestTomlin(w, nullptr, slot, pivot_tol);
  }
  updates_seq_.Append(w, slot);
  ++updates_;
  return true;
}

bool LuFactorization::UpdateSparse(const SparseVector& w, int slot,
                                   double pivot_tol) {
  if (std::abs(w.values[slot]) <= pivot_tol) return false;
  if (update_kind_ == LuUpdateKind::kForrestTomlin) {
    return UpdateForrestTomlin(
        w.values, w.pattern_valid ? &w.pattern : nullptr, slot, pivot_tol);
  }
  // Product form is the oracle path; its eta harvest is a dense scan and
  // stays one.
  updates_seq_.Append(w.values, slot);
  ++updates_;
  return true;
}

// Forrest–Tomlin: replace the column of U in basis slot `slot` by the
// entering column's partial FTRAN image û = U w (recovered from the full
// image `w` by one sparse row-wise product — exact, since the solver's w is
// B^-1 a_q under the current factors), cyclically permute the leaving step
// to the last position, and eliminate the row spike it leaves behind
// against the later U rows. The eliminated spike vanishes entirely — the
// new last row is the single diagonal d — and the multipliers form one row
// eta applied with L. Elimination writes only scratch until d is known, so
// a too-small d rejects with the factors untouched and the caller
// refactorizes cleanly.
bool LuFactorization::UpdateForrestTomlin(const std::vector<double>& w,
                                          const std::vector<int>* w_pattern,
                                          int slot, double pivot_tol) {
  const int n = static_cast<int>(urows_.size());
  const int t = row_pos_[slot];
  PRIVSAN_CHECK(t >= 0 && t < n);

  // û: reuse the partial image memoized by the Ftran that produced w —
  // the common case: the simplex pivots on the column it just FTRANed,
  // and the one FTRAN the dual phase interleaves (its combined bound-flip
  // delta) still leaves w's image in the other memo slot. No match in
  // either slot recovers û = U w by one row-wise product (exact: w is
  // B^-1 a_q under the current factors, so U w is the image after L and
  // the row etas). uhat_ is all-zeros on entry; uhat_sparse tells the
  // spread and the exit cleanup whether uhat_pat_ bounds its nonzeros.
  int hit = -1;
  for (int s : {ftran_slot_, ftran_slot_ ^ 1}) {
    if (MemoMatches(ftran_result_[s], w, w_pattern)) {
      hit = s;
      break;
    }
  }
  bool uhat_sparse = false;
  if (hit >= 0) {
    uhat_.swap(ftran_partial_[hit].values);
    uhat_pat_.swap(ftran_partial_[hit].pattern);
    uhat_sparse = ftran_partial_[hit].pattern_valid;
    // The partial slot now holds the old uhat_ — all zeros — so an empty
    // valid pattern keeps its invariant and the next sparse store cheap.
    ftran_partial_[hit].pattern.clear();
    ftran_partial_[hit].pattern_valid = true;
    ftran_result_[hit].values.clear();  // memo consumed
    ftran_result_[hit].pattern.clear();
    ftran_result_[hit].pattern_valid = false;
  } else {
    for (int k = 0; k < n; ++k) {
      const URow& row = urows_[k];
      double s = row.pivot * w[row.pivot_row];
      for (const SparseEntry& e : row.entries) s += e.value * w[e.index];
      uhat_[row.pivot_row] = s;
    }
  }
  // Restores the all-zeros invariant; every return below runs through it.
  auto clear_uhat = [&] {
    if (uhat_sparse) {
      for (int pr : uhat_pat_) uhat_[pr] = 0.0;
    } else {
      std::fill(uhat_.begin(), uhat_.end(), 0.0);
    }
    uhat_pat_.clear();
  };

  // Eliminate the leaving row's spike against the rows at later positions,
  // in position order (spike entries and their fill only ever sit in
  // columns owned by still-later rows, so one forward sweep empties it).
  // d accumulates the new diagonal: row j's entry in the entering column
  // is û[pivot_row_j].
  std::vector<int> spike_touched;
  for (const SparseEntry& e : urows_[t].entries) {
    spike_[e.index] = e.value;
    spike_touched.push_back(e.index);
  }
  double d = uhat_[slot];
  std::vector<SparseEntry> terms;
  for (int j = t + 1; j < n; ++j) {
    const URow& row = urows_[j];
    const double sj = spike_[row.pivot_row];
    if (sj == 0.0) continue;
    const double r = sj / row.pivot;
    spike_[row.pivot_row] = 0.0;
    for (const SparseEntry& e : row.entries) {
      if (spike_[e.index] == 0.0) spike_touched.push_back(e.index);
      spike_[e.index] -= r * e.value;
    }
    d -= r * uhat_[row.pivot_row];
    terms.push_back(SparseEntry{row.pivot_row, r});
  }
  for (int idx : spike_touched) spike_[idx] = 0.0;

  if (std::abs(d) <= pivot_tol) {
    clear_uhat();
    return false;  // nothing mutated
  }

  // Commit. Drop the leaving column's entries from the earlier rows — the
  // occupancy list names them directly (validated: it may carry rows whose
  // entry is gone, e.g. a row replaced by a later update).
  for (int pr : u_col_rows_[slot]) {
    if (pr == slot) continue;
    std::vector<SparseEntry>& es = urows_[row_pos_[pr]].entries;
    for (size_t i = 0; i < es.size(); ++i) {
      if (es[i].index == slot) {
        es[i] = es.back();
        es.pop_back();
        --u_nnz_;
        break;
      }
    }
  }
  u_col_rows_[slot].clear();

  // Remove the leaving row; later rows shift down one position.
  u_nnz_ -= 1 + urows_[t].entries.size();
  urows_.erase(urows_.begin() + t);
  for (int k = t; k < n - 1; ++k) row_pos_[urows_[k].pivot_row] = k;

  // Append the new row (bare diagonal — the spike eliminated away) and
  // spread the entering column û over the surviving rows. A memoized
  // sparse û spreads over its pattern only — each surviving row gains at
  // most one entry either way, appended at its end, so the factors come
  // out identical to the dense spread.
  urows_.push_back(URow{slot, d, {}});
  row_pos_[slot] = n - 1;
  ++u_nnz_;
  if (uhat_sparse) {
    for (int pr : uhat_pat_) {
      if (pr == slot) continue;
      const double val = uhat_[pr];
      if (val != 0.0) {
        urows_[row_pos_[pr]].entries.push_back(SparseEntry{slot, val});
        u_col_rows_[slot].push_back(pr);
        ++u_nnz_;
      }
    }
  } else {
    for (int k = 0; k < n - 1; ++k) {
      const int pr = urows_[k].pivot_row;
      const double val = uhat_[pr];
      if (val != 0.0) {
        urows_[k].entries.push_back(SparseEntry{slot, val});
        u_col_rows_[slot].push_back(pr);
        ++u_nnz_;
      }
    }
  }
  clear_uhat();

  if (!terms.empty()) {
    ft_nnz_ += terms.size();
    ft_etas_.push_back(RowEta{slot, std::move(terms)});
  }
  ++updates_;
  return true;
}

bool LuFactorization::ShouldRefactor() const {
  if (updates_ >= max_updates_) return true;
  const size_t base = std::max(factor_nonzeros(), static_cast<size_t>(m_));
  return total_nonzeros() >
         static_cast<size_t>(growth_limit_ * static_cast<double>(base));
}

}  // namespace lp
}  // namespace privsan
