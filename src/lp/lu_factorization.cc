#include "lp/lu_factorization.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <utility>

#include "util/logging.h"

namespace privsan {
namespace lp {

namespace {
// Pivot magnitude below which a factorization declares the basis singular.
constexpr double kSingularTol = 1e-11;
// Candidate columns examined per elimination step before settling for the
// best Markowitz count seen (a full scan only runs when none of them has a
// numerically acceptable pivot).
constexpr int kColumnCandidates = 8;
}  // namespace

bool LuFactorization::Refactorize(const SparseMatrix& A,
                                  std::vector<int>& basis) {
  const int m = A.rows();
  PRIVSAN_CHECK(static_cast<int>(basis.size()) == m);
  singular_info_.Clear();

  // The active submatrix, row-major and exact: rows[r] holds (slot column,
  // value) for every nonzero of row r over the not-yet-eliminated columns.
  // col_rows is the column-major *pattern* only — it may hold stale rows
  // (eliminated, or holding a cancelled entry); gathers re-validate against
  // the row data, deduped with a stamp.
  std::vector<std::vector<SparseEntry>> rows(m);
  std::vector<int> col_count(m, 0), row_count(m, 0);
  std::vector<std::vector<int>> col_rows(m);
  for (int c = 0; c < m; ++c) {
    for (const SparseEntry& e : A.Column(basis[c])) {
      rows[e.index].push_back(SparseEntry{c, e.value});
    }
  }
  for (int r = 0; r < m; ++r) {
    row_count[r] = static_cast<int>(rows[r].size());
    for (const SparseEntry& e : rows[r]) {
      ++col_count[e.index];
      col_rows[e.index].push_back(r);
    }
  }

  std::vector<char> row_active(m, 1), col_active(m, 1);
  std::vector<int> gather_stamp(m, -1);

  // Scratch for the rank-1 row updates.
  std::vector<double> work(m, 0.0);
  std::vector<char> in_work(m, 0);
  std::vector<int> touched;
  touched.reserve(64);

  std::vector<LStep> lsteps;
  lsteps.reserve(m);
  std::vector<URow> urows;
  urows.reserve(m);
  std::vector<int> pivot_rows;  // step -> pivot row
  pivot_rows.reserve(m);
  std::vector<int> step_of_col(m, -1);
  std::vector<int> new_basis(m, -1);
  size_t factor_nnz = 0;

  // Entries of one candidate pivot column over the active rows.
  struct ColEntry {
    int row;
    double value;
  };
  std::vector<ColEntry> col_entries, pivot_entries;
  int stamp = 0;

  // Validated gather of column c; returns the column's max magnitude.
  auto gather_column = [&](int c) -> double {
    col_entries.clear();
    ++stamp;
    double colmax = 0.0;
    for (int r : col_rows[c]) {
      if (!row_active[r] || gather_stamp[r] == stamp) continue;
      gather_stamp[r] = stamp;
      for (const SparseEntry& e : rows[r]) {
        if (e.index == c) {
          col_entries.push_back(ColEntry{r, e.value});
          colmax = std::max(colmax, std::abs(e.value));
          break;
        }
      }
    }
    return colmax;
  };

  // Best threshold-acceptable pivot of column c by Markowitz count; returns
  // false when the column is numerically empty. On success fills
  // (row, value, cost).
  auto best_in_column = [&](int c, int& prow, double& pval,
                            size_t& cost) -> bool {
    const double colmax = gather_column(c);
    if (colmax < kSingularTol) return false;
    const double accept =
        std::max(markowitz_threshold_ * colmax, kSingularTol);
    prow = -1;
    cost = std::numeric_limits<size_t>::max();
    double pmag = 0.0;
    for (const ColEntry& e : col_entries) {
      const double mag = std::abs(e.value);
      if (mag < accept) continue;
      const size_t c_cost = static_cast<size_t>(col_count[c] - 1) *
                            static_cast<size_t>(row_count[e.row] - 1);
      const bool better =
          c_cost < cost || (c_cost == cost && mag > pmag) ||
          (c_cost == cost && mag == pmag && (prow < 0 || e.row < prow));
      if (better) {
        cost = c_cost;
        prow = e.row;
        pval = e.value;
        pmag = mag;
      }
    }
    return prow >= 0;
  };

  for (int step = 0; step < m; ++step) {
    // --- Markowitz pivot search over the cheapest candidate columns. ------
    // Keep the kColumnCandidates active columns with the smallest counts
    // (ties by lower index), then take the best threshold-acceptable pivot
    // among them; fall back to a full column scan only when every candidate
    // is numerically empty.
    struct Cand {
      int count;
      int col;
    };
    const auto cheaper = [](const Cand& a, const Cand& b) {
      if (a.count != b.count) return a.count < b.count;
      return a.col < b.col;
    };
    std::vector<Cand> cands;  // max-heap under `cheaper`: front = costliest
    for (int c = 0; c < m; ++c) {
      if (!col_active[c]) continue;
      if (static_cast<int>(cands.size()) < kColumnCandidates) {
        cands.push_back(Cand{col_count[c], c});
        std::push_heap(cands.begin(), cands.end(), cheaper);
      } else if (col_count[c] < cands.front().count) {
        std::pop_heap(cands.begin(), cands.end(), cheaper);
        cands.back() = Cand{col_count[c], c};
        std::push_heap(cands.begin(), cands.end(), cheaper);
      }
    }
    std::sort(cands.begin(), cands.end(), cheaper);

    int pivot_col = -1, pivot_row = -1;
    double pivot_value = 0.0;
    size_t best_cost = std::numeric_limits<size_t>::max();
    for (const Cand& cand : cands) {
      int prow;
      double pval;
      size_t cost;
      if (!best_in_column(cand.col, prow, pval, cost)) continue;
      if (cost < best_cost) {
        best_cost = cost;
        pivot_col = cand.col;
        pivot_row = prow;
        pivot_value = pval;
        pivot_entries = col_entries;
      }
      // A later candidate column has count >= this one, so its Markowitz
      // cost is at least (count - 1) * 0 = 0 — only a zero-cost pivot can
      // still win, and we already have one.
      if (best_cost == 0) break;
    }
    if (pivot_col < 0) {
      // None of the cheap candidates was numerically usable; scan them all.
      for (int c = 0; c < m && pivot_col < 0; ++c) {
        if (!col_active[c]) continue;
        int prow;
        double pval;
        size_t cost;
        if (best_in_column(c, prow, pval, cost)) {
          pivot_col = c;
          pivot_row = prow;
          pivot_value = pval;
          pivot_entries = col_entries;
        }
      }
    }
    if (pivot_col < 0) {
      // The remaining active columns are numerically dependent on the
      // eliminated ones. Report them (and the rows left uncovered) so the
      // solver can swap in row slacks; previous state stays untouched.
      for (int c = 0; c < m; ++c) {
        if (col_active[c]) singular_info_.dependent_columns.push_back(basis[c]);
      }
      for (int r = 0; r < m; ++r) {
        if (row_active[r]) singular_info_.unpivoted_rows.push_back(r);
      }
      return false;
    }

    // --- Eliminate (pivot_row, pivot_col). --------------------------------
    LStep lstep;
    lstep.pivot_row = pivot_row;
    URow urow;
    urow.pivot_row = pivot_row;
    urow.pivot = pivot_value;
    for (const SparseEntry& e : rows[pivot_row]) {
      if (e.index != pivot_col) urow.entries.push_back(e);  // cols, for now
    }

    for (const ColEntry& entry : pivot_entries) {
      const int r = entry.row;
      if (r == pivot_row) continue;
      const double f = entry.value / pivot_value;
      lstep.multipliers.push_back(SparseEntry{r, f});

      // rows[r] -= f * rows[pivot_row], via the dense scratch.
      touched.clear();
      for (const SparseEntry& e : rows[r]) {
        work[e.index] = e.value;
        in_work[e.index] = 1;
        touched.push_back(e.index);
      }
      for (const SparseEntry& e : rows[pivot_row]) {
        if (e.index == pivot_col) continue;
        if (!in_work[e.index]) {
          // Fill: a brand-new nonzero in row r.
          work[e.index] = 0.0;
          in_work[e.index] = 1;
          touched.push_back(e.index);
          ++col_count[e.index];
          col_rows[e.index].push_back(r);
        }
        work[e.index] -= f * e.value;
      }
      std::vector<SparseEntry>& row = rows[r];
      row.clear();
      for (int c : touched) {
        if (c == pivot_col) {
          // Eliminated; its count is zeroed when the column deactivates.
        } else if (work[c] == 0.0) {
          --col_count[c];  // exact cancellation
        } else {
          row.push_back(SparseEntry{c, work[c]});
        }
        in_work[c] = 0;
      }
      row_count[r] = static_cast<int>(row.size());
    }

    // Deactivate the pivot row and column.
    row_active[pivot_row] = 0;
    for (const SparseEntry& e : rows[pivot_row]) {
      if (e.index != pivot_col) --col_count[e.index];
    }
    col_active[pivot_col] = 0;
    col_count[pivot_col] = 0;

    factor_nnz += 1 + lstep.multipliers.size() + urow.entries.size();
    step_of_col[pivot_col] = step;
    pivot_rows.push_back(pivot_row);
    new_basis[pivot_row] = basis[pivot_col];
    lsteps.push_back(std::move(lstep));
    urows.push_back(std::move(urow));
  }

  // Translate U entries from slot columns to the pivot rows of the steps
  // that own them, so the substitution passes index the work vector
  // directly.
  for (URow& urow : urows) {
    for (SparseEntry& e : urow.entries) {
      e.index = pivot_rows[step_of_col[e.index]];
    }
  }

  m_ = m;
  lsteps_ = std::move(lsteps);
  urows_ = std::move(urows);
  factor_nnz_ = factor_nnz;
  updates_seq_.Clear();
  updates_ = 0;
  basis = std::move(new_basis);
  return true;
}

void LuFactorization::Ftran(std::vector<double>& v) const {
  // L: forward-apply the multipliers in elimination order.
  for (const LStep& step : lsteps_) {
    const double t = v[step.pivot_row];
    if (t == 0.0) continue;
    for (const SparseEntry& e : step.multipliers) {
      v[e.index] -= e.value * t;
    }
  }
  // U: back-substitute in reverse elimination order.
  for (auto it = urows_.rbegin(); it != urows_.rend(); ++it) {
    double s = v[it->pivot_row];
    for (const SparseEntry& e : it->entries) s -= e.value * v[e.index];
    v[it->pivot_row] = s / it->pivot;
  }
  // Product-form updates on top.
  updates_seq_.Ftran(v);
}

void LuFactorization::Btran(std::vector<double>& v) const {
  updates_seq_.Btran(v);
  // U^T: forward-substitute in elimination order.
  for (const URow& urow : urows_) {
    const double y = v[urow.pivot_row] / urow.pivot;
    v[urow.pivot_row] = y;
    if (y == 0.0) continue;
    for (const SparseEntry& e : urow.entries) v[e.index] -= e.value * y;
  }
  // L^T: apply the multiplier columns transposed, in reverse order.
  for (auto it = lsteps_.rbegin(); it != lsteps_.rend(); ++it) {
    double s = v[it->pivot_row];
    for (const SparseEntry& e : it->multipliers) s -= e.value * v[e.index];
    v[it->pivot_row] = s;
  }
}

bool LuFactorization::Update(const std::vector<double>& w, int slot,
                             double pivot_tol) {
  if (std::abs(w[slot]) <= pivot_tol) return false;
  updates_seq_.Append(w, slot);
  ++updates_;
  return true;
}

bool LuFactorization::ShouldRefactor() const {
  if (updates_ >= max_updates_) return true;
  const size_t base = std::max(factor_nnz_, static_cast<size_t>(m_));
  return total_nonzeros() >
         static_cast<size_t>(growth_limit_ * static_cast<double>(base));
}

}  // namespace lp
}  // namespace privsan
