#include "lp/lu_factorization.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <utility>

#include "util/logging.h"

namespace privsan {
namespace lp {

namespace {
// Pivot magnitude below which a factorization declares the basis singular.
constexpr double kSingularTol = 1e-11;
// Candidate columns examined per elimination step before settling for the
// best Markowitz count seen (a full scan only runs when none of them has a
// numerically acceptable pivot).
constexpr int kColumnCandidates = 8;
}  // namespace

bool LuFactorization::Refactorize(const SparseMatrix& A,
                                  std::vector<int>& basis) {
  const int m = A.rows();
  PRIVSAN_CHECK(static_cast<int>(basis.size()) == m);
  singular_info_.Clear();

  // The active submatrix, row-major and exact: rows[r] holds (slot column,
  // value) for every nonzero of row r over the not-yet-eliminated columns.
  // col_rows is the column-major *pattern* only — it may hold stale rows
  // (eliminated, or holding a cancelled entry); gathers re-validate against
  // the row data, deduped with a stamp.
  std::vector<std::vector<SparseEntry>> rows(m);
  std::vector<int> col_count(m, 0), row_count(m, 0);
  std::vector<std::vector<int>> col_rows(m);
  for (int c = 0; c < m; ++c) {
    for (const SparseEntry& e : A.Column(basis[c])) {
      rows[e.index].push_back(SparseEntry{c, e.value});
    }
  }
  for (int r = 0; r < m; ++r) {
    row_count[r] = static_cast<int>(rows[r].size());
    for (const SparseEntry& e : rows[r]) {
      ++col_count[e.index];
      col_rows[e.index].push_back(r);
    }
  }

  std::vector<char> row_active(m, 1), col_active(m, 1);
  std::vector<int> gather_stamp(m, -1);

  // Count-indexed bucket lists over the active columns: bucket_head[k] is
  // the first active column with col_count == k, threaded through
  // bucket_next/bucket_prev. Every count change relinks the column, so the
  // per-step candidate search walks the cheapest buckets instead of
  // scanning all m columns — its cost tracks fill, not dimension.
  // min_count is a forward-moving floor hint, reset whenever a column is
  // filed below it (cancellation can lower counts).
  std::vector<int> bucket_head(m + 1, -1);
  std::vector<int> bucket_next(m, -1), bucket_prev(m, -1);
  int min_count = m;
  auto bucket_insert = [&](int c) {
    const int count = col_count[c];
    bucket_prev[c] = -1;
    bucket_next[c] = bucket_head[count];
    if (bucket_head[count] >= 0) bucket_prev[bucket_head[count]] = c;
    bucket_head[count] = c;
    if (count < min_count) min_count = count;
  };
  auto bucket_remove = [&](int c) {
    const int count = col_count[c];
    if (bucket_prev[c] >= 0) {
      bucket_next[bucket_prev[c]] = bucket_next[c];
    } else {
      bucket_head[count] = bucket_next[c];
    }
    if (bucket_next[c] >= 0) bucket_prev[bucket_next[c]] = bucket_prev[c];
  };
  // Call around any col_count change of an active column.
  auto count_changed = [&](int c, int delta) {
    bucket_remove(c);
    col_count[c] += delta;
    bucket_insert(c);
  };
  for (int c = 0; c < m; ++c) bucket_insert(c);

  // Scratch for the rank-1 row updates.
  std::vector<double> work(m, 0.0);
  std::vector<char> in_work(m, 0);
  std::vector<int> touched;
  touched.reserve(64);

  std::vector<LStep> lsteps;
  lsteps.reserve(m);
  std::vector<URow> urows;
  urows.reserve(m);
  std::vector<int> pivot_rows;  // step -> pivot row
  pivot_rows.reserve(m);
  std::vector<int> step_of_col(m, -1);
  std::vector<int> new_basis(m, -1);
  size_t l_nnz = 0, u_nnz = 0;

  // Entries of one candidate pivot column over the active rows.
  struct ColEntry {
    int row;
    double value;
  };
  std::vector<ColEntry> col_entries, pivot_entries;
  int stamp = 0;

  // Validated gather of column c; returns the column's max magnitude.
  auto gather_column = [&](int c) -> double {
    col_entries.clear();
    ++stamp;
    double colmax = 0.0;
    for (int r : col_rows[c]) {
      if (!row_active[r] || gather_stamp[r] == stamp) continue;
      gather_stamp[r] = stamp;
      for (const SparseEntry& e : rows[r]) {
        if (e.index == c) {
          col_entries.push_back(ColEntry{r, e.value});
          colmax = std::max(colmax, std::abs(e.value));
          break;
        }
      }
    }
    return colmax;
  };

  // Best threshold-acceptable pivot of column c by Markowitz count; returns
  // false when the column is numerically empty. On success fills
  // (row, value, cost).
  auto best_in_column = [&](int c, int& prow, double& pval,
                            size_t& cost) -> bool {
    const double colmax = gather_column(c);
    if (colmax < kSingularTol) return false;
    const double accept =
        std::max(markowitz_threshold_ * colmax, kSingularTol);
    prow = -1;
    cost = std::numeric_limits<size_t>::max();
    double pmag = 0.0;
    for (const ColEntry& e : col_entries) {
      const double mag = std::abs(e.value);
      if (mag < accept) continue;
      const size_t c_cost = static_cast<size_t>(col_count[c] - 1) *
                            static_cast<size_t>(row_count[e.row] - 1);
      const bool better =
          c_cost < cost || (c_cost == cost && mag > pmag) ||
          (c_cost == cost && mag == pmag && (prow < 0 || e.row < prow));
      if (better) {
        cost = c_cost;
        prow = e.row;
        pval = e.value;
        pmag = mag;
      }
    }
    return prow >= 0;
  };

  struct Cand {
    int count;
    int col;
  };
  const auto cheaper = [](const Cand& a, const Cand& b) {
    if (a.count != b.count) return a.count < b.count;
    return a.col < b.col;
  };
  std::vector<Cand> cands;
  cands.reserve(2 * kColumnCandidates);

  for (int step = 0; step < m; ++step) {
    // --- Markowitz pivot search over the cheapest candidate columns. ------
    // Gather whole buckets in ascending count order until the pool holds at
    // least kColumnCandidates columns (or every active column), then keep
    // the kColumnCandidates cheapest by (count, col): exactly the candidate
    // set a full scan would keep, at O(candidates) cost. The best
    // threshold-acceptable pivot among them wins; a full column scan runs
    // only when every candidate is numerically empty.
    const int active_cols = m - step;
    while (min_count < m && bucket_head[min_count] < 0) ++min_count;
    cands.clear();
    for (int count = min_count;
         count <= m && static_cast<int>(cands.size()) < kColumnCandidates &&
         static_cast<int>(cands.size()) < active_cols;
         ++count) {
      for (int c = bucket_head[count]; c >= 0; c = bucket_next[c]) {
        cands.push_back(Cand{count, c});
      }
    }
    std::sort(cands.begin(), cands.end(), cheaper);
    if (static_cast<int>(cands.size()) > kColumnCandidates) {
      cands.resize(kColumnCandidates);
    }

    int pivot_col = -1, pivot_row = -1;
    double pivot_value = 0.0;
    size_t best_cost = std::numeric_limits<size_t>::max();
    for (const Cand& cand : cands) {
      int prow;
      double pval;
      size_t cost;
      if (!best_in_column(cand.col, prow, pval, cost)) continue;
      if (cost < best_cost) {
        best_cost = cost;
        pivot_col = cand.col;
        pivot_row = prow;
        pivot_value = pval;
        pivot_entries = col_entries;
      }
      // A later candidate column has count >= this one, so its Markowitz
      // cost is at least (count - 1) * 0 = 0 — only a zero-cost pivot can
      // still win, and we already have one.
      if (best_cost == 0) break;
    }
    if (pivot_col < 0) {
      // None of the cheap candidates was numerically usable; scan them all.
      for (int c = 0; c < m && pivot_col < 0; ++c) {
        if (!col_active[c]) continue;
        int prow;
        double pval;
        size_t cost;
        if (best_in_column(c, prow, pval, cost)) {
          pivot_col = c;
          pivot_row = prow;
          pivot_value = pval;
          pivot_entries = col_entries;
        }
      }
    }
    if (pivot_col < 0) {
      // The remaining active columns are numerically dependent on the
      // eliminated ones. Report them (and the rows left uncovered) so the
      // solver can swap in row slacks; previous state stays untouched.
      for (int c = 0; c < m; ++c) {
        if (col_active[c]) singular_info_.dependent_columns.push_back(basis[c]);
      }
      for (int r = 0; r < m; ++r) {
        if (row_active[r]) singular_info_.unpivoted_rows.push_back(r);
      }
      return false;
    }

    // --- Eliminate (pivot_row, pivot_col). --------------------------------
    LStep lstep;
    lstep.pivot_row = pivot_row;
    URow urow;
    urow.pivot_row = pivot_row;
    urow.pivot = pivot_value;
    for (const SparseEntry& e : rows[pivot_row]) {
      if (e.index != pivot_col) urow.entries.push_back(e);  // cols, for now
    }

    for (const ColEntry& entry : pivot_entries) {
      const int r = entry.row;
      if (r == pivot_row) continue;
      const double f = entry.value / pivot_value;
      lstep.multipliers.push_back(SparseEntry{r, f});

      // rows[r] -= f * rows[pivot_row], via the dense scratch.
      touched.clear();
      for (const SparseEntry& e : rows[r]) {
        work[e.index] = e.value;
        in_work[e.index] = 1;
        touched.push_back(e.index);
      }
      for (const SparseEntry& e : rows[pivot_row]) {
        if (e.index == pivot_col) continue;
        if (!in_work[e.index]) {
          // Fill: a brand-new nonzero in row r.
          work[e.index] = 0.0;
          in_work[e.index] = 1;
          touched.push_back(e.index);
          count_changed(e.index, +1);
          col_rows[e.index].push_back(r);
        }
        work[e.index] -= f * e.value;
      }
      std::vector<SparseEntry>& row = rows[r];
      row.clear();
      for (int c : touched) {
        if (c == pivot_col) {
          // Eliminated; its count is zeroed when the column deactivates.
        } else if (work[c] == 0.0) {
          count_changed(c, -1);  // exact cancellation
        } else {
          row.push_back(SparseEntry{c, work[c]});
        }
        in_work[c] = 0;
      }
      row_count[r] = static_cast<int>(row.size());
    }

    // Deactivate the pivot row and column.
    row_active[pivot_row] = 0;
    for (const SparseEntry& e : rows[pivot_row]) {
      if (e.index != pivot_col) count_changed(e.index, -1);
    }
    bucket_remove(pivot_col);
    col_active[pivot_col] = 0;
    col_count[pivot_col] = 0;

    l_nnz += lstep.multipliers.size();
    u_nnz += 1 + urow.entries.size();
    step_of_col[pivot_col] = step;
    pivot_rows.push_back(pivot_row);
    new_basis[pivot_row] = basis[pivot_col];
    lsteps.push_back(std::move(lstep));
    urows.push_back(std::move(urow));
  }

  // Translate U entries from slot columns to the pivot rows of the steps
  // that own them, so the substitution passes index the work vector
  // directly. Record the column occupancy for the FT update's deletions.
  u_col_rows_.assign(m, {});
  for (URow& urow : urows) {
    for (SparseEntry& e : urow.entries) {
      e.index = pivot_rows[step_of_col[e.index]];
      u_col_rows_[e.index].push_back(urow.pivot_row);
    }
  }

  m_ = m;
  lsteps_ = std::move(lsteps);
  urows_ = std::move(urows);
  row_pos_.assign(m, -1);
  for (int k = 0; k < m; ++k) row_pos_[urows_[k].pivot_row] = k;
  ft_etas_.clear();
  l_nnz_ = l_nnz;
  fresh_u_nnz_ = u_nnz;
  u_nnz_ = u_nnz;
  ft_nnz_ = 0;
  updates_seq_.Clear();
  updates_ = 0;
  uhat_.assign(m, 0.0);
  spike_.assign(m, 0.0);
  for (int s : {0, 1}) {
    ftran_partial_[s].clear();
    ftran_result_[s].clear();
  }
  basis = std::move(new_basis);
  return true;
}

void LuFactorization::Ftran(std::vector<double>& v) const {
  // L: forward-apply the multipliers in elimination order.
  for (const LStep& step : lsteps_) {
    const double t = v[step.pivot_row];
    if (t == 0.0) continue;
    for (const SparseEntry& e : step.multipliers) {
      v[e.index] -= e.value * t;
    }
  }
  // Forrest–Tomlin row etas, in append order.
  for (const RowEta& eta : ft_etas_) {
    double s = v[eta.row];
    for (const SparseEntry& e : eta.terms) s -= e.value * v[e.index];
    v[eta.row] = s;
  }
  // Memo for UpdateForrestTomlin: v right here is the partial image U^-1
  // still owes — exactly the û a pivot on this column would spike in.
  const bool memo = update_kind_ == LuUpdateKind::kForrestTomlin;
  if (memo) {
    ftran_slot_ ^= 1;
    ftran_partial_[ftran_slot_] = v;
  }
  // U: back-substitute in reverse of the current step order (Forrest–Tomlin
  // updates reorder the rows but keep them triangular in that order).
  for (auto it = urows_.rbegin(); it != urows_.rend(); ++it) {
    double s = v[it->pivot_row];
    for (const SparseEntry& e : it->entries) s -= e.value * v[e.index];
    v[it->pivot_row] = s / it->pivot;
  }
  if (memo) ftran_result_[ftran_slot_] = v;
  // Product-form updates on top.
  updates_seq_.Ftran(v);
}

void LuFactorization::Btran(std::vector<double>& v) const {
  updates_seq_.Btran(v);
  // U^T: forward-substitute in the current step order.
  for (const URow& urow : urows_) {
    const double y = v[urow.pivot_row] / urow.pivot;
    v[urow.pivot_row] = y;
    if (y == 0.0) continue;
    for (const SparseEntry& e : urow.entries) v[e.index] -= e.value * y;
  }
  // Forrest–Tomlin row etas transposed, in reverse append order.
  for (auto it = ft_etas_.rbegin(); it != ft_etas_.rend(); ++it) {
    const double t = v[it->row];
    if (t == 0.0) continue;
    for (const SparseEntry& e : it->terms) v[e.index] -= e.value * t;
  }
  // L^T: apply the multiplier columns transposed, in reverse order.
  for (auto it = lsteps_.rbegin(); it != lsteps_.rend(); ++it) {
    double s = v[it->pivot_row];
    for (const SparseEntry& e : it->multipliers) s -= e.value * v[e.index];
    v[it->pivot_row] = s;
  }
}

bool LuFactorization::Update(const std::vector<double>& w, int slot,
                             double pivot_tol) {
  if (std::abs(w[slot]) <= pivot_tol) return false;
  if (update_kind_ == LuUpdateKind::kForrestTomlin) {
    return UpdateForrestTomlin(w, slot, pivot_tol);
  }
  updates_seq_.Append(w, slot);
  ++updates_;
  return true;
}

// Forrest–Tomlin: replace the column of U in basis slot `slot` by the
// entering column's partial FTRAN image û = U w (recovered from the full
// image `w` by one sparse row-wise product — exact, since the solver's w is
// B^-1 a_q under the current factors), cyclically permute the leaving step
// to the last position, and eliminate the row spike it leaves behind
// against the later U rows. The eliminated spike vanishes entirely — the
// new last row is the single diagonal d — and the multipliers form one row
// eta applied with L. Elimination writes only scratch until d is known, so
// a too-small d rejects with the factors untouched and the caller
// refactorizes cleanly.
bool LuFactorization::UpdateForrestTomlin(const std::vector<double>& w,
                                          int slot, double pivot_tol) {
  const int n = static_cast<int>(urows_.size());
  const int t = row_pos_[slot];
  PRIVSAN_CHECK(t >= 0 && t < n);

  // û: reuse the partial image memoized by the Ftran that produced w —
  // the common case: the simplex pivots on the column it just FTRANed,
  // and the one FTRAN the dual phase interleaves (its combined bound-flip
  // delta) still leaves w's image in the other memo slot. No match in
  // either slot recovers û = U w by one row-wise product (exact: w is
  // B^-1 a_q under the current factors, so U w is the image after L and
  // the row etas). Every pivot row is written, so uhat_ needs no clearing.
  int hit = -1;
  for (int s : {ftran_slot_, ftran_slot_ ^ 1}) {
    if (ftran_result_[s] == w) {
      hit = s;
      break;
    }
  }
  if (hit >= 0) {
    uhat_.swap(ftran_partial_[hit]);
    ftran_result_[hit].clear();  // memo consumed
  } else {
    for (int k = 0; k < n; ++k) {
      const URow& row = urows_[k];
      double s = row.pivot * w[row.pivot_row];
      for (const SparseEntry& e : row.entries) s += e.value * w[e.index];
      uhat_[row.pivot_row] = s;
    }
  }

  // Eliminate the leaving row's spike against the rows at later positions,
  // in position order (spike entries and their fill only ever sit in
  // columns owned by still-later rows, so one forward sweep empties it).
  // d accumulates the new diagonal: row j's entry in the entering column
  // is û[pivot_row_j].
  std::vector<int> spike_touched;
  for (const SparseEntry& e : urows_[t].entries) {
    spike_[e.index] = e.value;
    spike_touched.push_back(e.index);
  }
  double d = uhat_[slot];
  std::vector<SparseEntry> terms;
  for (int j = t + 1; j < n; ++j) {
    const URow& row = urows_[j];
    const double sj = spike_[row.pivot_row];
    if (sj == 0.0) continue;
    const double r = sj / row.pivot;
    spike_[row.pivot_row] = 0.0;
    for (const SparseEntry& e : row.entries) {
      if (spike_[e.index] == 0.0) spike_touched.push_back(e.index);
      spike_[e.index] -= r * e.value;
    }
    d -= r * uhat_[row.pivot_row];
    terms.push_back(SparseEntry{row.pivot_row, r});
  }
  for (int idx : spike_touched) spike_[idx] = 0.0;

  if (std::abs(d) <= pivot_tol) return false;  // nothing mutated yet

  // Commit. Drop the leaving column's entries from the earlier rows — the
  // occupancy list names them directly (validated: it may carry rows whose
  // entry is gone, e.g. a row replaced by a later update).
  for (int pr : u_col_rows_[slot]) {
    if (pr == slot) continue;
    std::vector<SparseEntry>& es = urows_[row_pos_[pr]].entries;
    for (size_t i = 0; i < es.size(); ++i) {
      if (es[i].index == slot) {
        es[i] = es.back();
        es.pop_back();
        --u_nnz_;
        break;
      }
    }
  }
  u_col_rows_[slot].clear();

  // Remove the leaving row; later rows shift down one position.
  u_nnz_ -= 1 + urows_[t].entries.size();
  urows_.erase(urows_.begin() + t);
  for (int k = t; k < n - 1; ++k) row_pos_[urows_[k].pivot_row] = k;

  // Append the new row (bare diagonal — the spike eliminated away) and
  // spread the entering column û over the surviving rows.
  urows_.push_back(URow{slot, d, {}});
  row_pos_[slot] = n - 1;
  ++u_nnz_;
  for (int k = 0; k < n - 1; ++k) {
    const int pr = urows_[k].pivot_row;
    const double val = uhat_[pr];
    if (val != 0.0) {
      urows_[k].entries.push_back(SparseEntry{slot, val});
      u_col_rows_[slot].push_back(pr);
      ++u_nnz_;
    }
  }

  if (!terms.empty()) {
    ft_nnz_ += terms.size();
    ft_etas_.push_back(RowEta{slot, std::move(terms)});
  }
  ++updates_;
  return true;
}

bool LuFactorization::ShouldRefactor() const {
  if (updates_ >= max_updates_) return true;
  const size_t base = std::max(factor_nonzeros(), static_cast<size_t>(m_));
  return total_nonzeros() >
         static_cast<size_t>(growth_limit_ * static_cast<double>(base));
}

}  // namespace lp
}  // namespace privsan
