#include "lp/bip_heuristics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace privsan {
namespace lp {

Status BipProblem::Validate() const {
  if (static_cast<int>(rhs.size()) != num_rows) {
    return Status::InvalidArgument("rhs size does not match num_rows");
  }
  for (double b : rhs) {
    if (!std::isfinite(b) || b <= 0.0) {
      return Status::InvalidArgument("BIP rhs entries must be finite and > 0");
    }
  }
  for (const auto& column : columns) {
    for (const SparseEntry& e : column) {
      if (e.index < 0 || e.index >= num_rows) {
        return Status::InvalidArgument("BIP column references unknown row");
      }
      if (!std::isfinite(e.value) || e.value <= 0.0) {
        return Status::InvalidArgument("BIP weights must be finite and > 0");
      }
    }
  }
  return Status::OK();
}

bool BipProblem::IsFeasible(const std::vector<uint8_t>& y, double tol) const {
  std::vector<double> load(num_rows, 0.0);
  for (int j = 0; j < num_vars(); ++j) {
    if (!y[j]) continue;
    for (const SparseEntry& e : columns[j]) load[e.index] += e.value;
  }
  for (int r = 0; r < num_rows; ++r) {
    if (load[r] > rhs[r] + tol) return false;
  }
  return true;
}

LpModel BipProblem::ToLpModel() const {
  LpModel model(ObjectiveSense::kMaximize);
  for (int j = 0; j < num_vars(); ++j) {
    model.AddVariable(0.0, 1.0, 1.0, "y" + std::to_string(j),
                      /*is_integer=*/true);
  }
  for (int r = 0; r < num_rows; ++r) {
    model.AddConstraint(ConstraintSense::kLessEqual, rhs[r],
                        "row" + std::to_string(r));
  }
  for (int j = 0; j < num_vars(); ++j) {
    for (const SparseEntry& e : columns[j]) {
      model.AddCoefficient(e.index, j, e.value);
    }
  }
  return model;
}

namespace {

// Admits variables in the given order while every row stays within rhs.
BipSolution AdmitGreedily(const BipProblem& problem,
                          const std::vector<int>& order) {
  BipSolution solution;
  solution.y.assign(problem.num_vars(), 0);
  std::vector<double> load(problem.num_rows, 0.0);
  for (int j : order) {
    bool fits = true;
    for (const SparseEntry& e : problem.columns[j]) {
      if (load[e.index] + e.value > problem.rhs[e.index] + 1e-12) {
        fits = false;
        break;
      }
    }
    if (!fits) continue;
    for (const SparseEntry& e : problem.columns[j]) {
      load[e.index] += e.value;
    }
    solution.y[j] = 1;
    ++solution.selected;
  }
  return solution;
}

double MaxWeight(const BipProblem& problem, int j) {
  double max_weight = 0.0;
  for (const SparseEntry& e : problem.columns[j]) {
    max_weight = std::max(max_weight, e.value);
  }
  return max_weight;
}

}  // namespace

Result<BipSolution> SolveBipGreedy(const BipProblem& problem) {
  PRIVSAN_RETURN_IF_ERROR(problem.Validate());
  std::vector<int> order(problem.num_vars());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> key(problem.num_vars());
  for (int j = 0; j < problem.num_vars(); ++j) {
    key[j] = MaxWeight(problem, j);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return key[a] < key[b]; });
  return AdmitGreedily(problem, order);
}

Result<BipSolution> SolveBipLpRounding(const BipProblem& problem,
                                       const SimplexOptions& options,
                                       const Basis* hint) {
  PRIVSAN_RETURN_IF_ERROR(problem.Validate());
  LpModel model = problem.ToLpModel();
  PRIVSAN_RETURN_IF_ERROR(model.Validate());
  SimplexSolver solver(options);
  LpSolution lp = solver.Solve(model, hint);
  if (lp.status == SolveStatus::kInfeasible ||
      lp.status == SolveStatus::kUnbounded) {
    // Cannot happen for a validated BIP relaxation (y = 0 is feasible and
    // the objective is bounded by n); treat it as a solver defect.
    return Status::Internal(std::string("LP relaxation not solved: ") +
                            SolveStatusToString(lp.status));
  }
  if (lp.status != SolveStatus::kOptimal) {
    // Iteration budget or numerical trouble: degrade to the constructive
    // greedy instead of failing the whole sanitization run.
    PRIVSAN_LOG(Warning) << "BIP LP relaxation returned "
                         << SolveStatusToString(lp.status)
                         << "; falling back to greedy rounding order";
    Result<BipSolution> greedy = SolveBipGreedy(problem);
    if (greedy.ok()) {
      greedy->lp_iterations = lp.iterations;
      greedy->lp_dual_iterations = lp.dual_iterations;
      greedy->lp_refactorizations = lp.refactorizations;
      greedy->lp_basis_repairs = lp.basis_repairs;
      greedy->lp_repair_aborted = lp.repair_aborted;
    }
    return greedy;
  }
  std::vector<int> order(problem.num_vars());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    if (lp.x[a] != lp.x[b]) return lp.x[a] > lp.x[b];
    return MaxWeight(problem, a) < MaxWeight(problem, b);
  });
  Result<BipSolution> rounded = AdmitGreedily(problem, order);
  if (rounded.ok()) {
    rounded->lp_iterations = lp.iterations;
    rounded->lp_dual_iterations = lp.dual_iterations;
    rounded->lp_refactorizations = lp.refactorizations;
    rounded->lp_basis_repairs = lp.basis_repairs;
    rounded->lp_repair_aborted = lp.repair_aborted;
    rounded->basis = std::move(lp.basis);
    rounded->lp_warm_started = lp.warm_started;
  }
  return rounded;
}

}  // namespace lp
}  // namespace privsan
