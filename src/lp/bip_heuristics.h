// Primal heuristics for the non-negative cardinality BIP
//
//     max  sum_j y_j
//     s.t. W y <= b,  W >= 0, b > 0,  y in {0,1}^n,
//
// which is exactly the D-UMP of Section 5.3 (a multidimensional knapsack).
// These play the role of the NEOS `feaspump` heuristic in the paper's
// solver comparison (Table 7 / Figure 5):
//
//   * SolveBipGreedy     — constructive: admit variables in increasing order
//                          of their worst-case row weight while all rows fit;
//   * SolveBipLpRounding — solve the [0,1] LP relaxation with the simplex,
//                          then admit variables by descending fractional
//                          value while all rows fit (feasibility-pump-like).
//
// The paper's own SPE heuristic (Algorithm 2) lives in core/spe.h; the exact
// solver stand-in is lp/branch_and_bound.h.
#ifndef PRIVSAN_LP_BIP_HEURISTICS_H_
#define PRIVSAN_LP_BIP_HEURISTICS_H_

#include <cstdint>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"
#include "lp/sparse_matrix.h"
#include "util/result.h"

namespace privsan {
namespace lp {

// Column-major representation: columns[j] lists (row, weight) with
// weight > 0; rhs[r] > 0 is row r's capacity.
struct BipProblem {
  int num_rows = 0;
  std::vector<std::vector<SparseEntry>> columns;
  std::vector<double> rhs;

  int num_vars() const { return static_cast<int>(columns.size()); }

  // Checks non-negativity / positivity requirements.
  Status Validate() const;

  // Whether selection `y` satisfies every row within `tol`.
  bool IsFeasible(const std::vector<uint8_t>& y, double tol = 1e-9) const;

  // Equivalent LpModel (binary integrality flags set), for branch & bound.
  LpModel ToLpModel() const;
};

struct BipSolution {
  std::vector<uint8_t> y;
  int64_t selected = 0;  // objective: number of y_j == 1
  // LP effort behind the solution (zero for the pure greedy).
  int64_t lp_iterations = 0;
  int64_t lp_dual_iterations = 0;
  int lp_refactorizations = 0;
  int lp_basis_repairs = 0;
  bool lp_repair_aborted = false;
  // Optimal basis of the LP relaxation (empty for the pure greedy and when
  // the LP fell back), reusable as a warm-start hint for the next solve of
  // a structurally identical relaxation.
  Basis basis;
  bool lp_warm_started = false;
};

Result<BipSolution> SolveBipGreedy(const BipProblem& problem);

// `hint` (optional) warm-starts the LP relaxation from a basis of a
// structurally identical relaxation — e.g. the previous cell of a budget
// sweep, where only the rhs changed.
Result<BipSolution> SolveBipLpRounding(const BipProblem& problem,
                                       const SimplexOptions& options = {},
                                       const Basis* hint = nullptr);

}  // namespace lp
}  // namespace privsan

#endif  // PRIVSAN_LP_BIP_HEURISTICS_H_
