#include "lp/basis_io.h"

#include <cstdint>
#include <string>

#include "util/binary_io.h"

namespace privsan {
namespace lp {

namespace {
// Far above any model this repo builds; bounds allocations on corrupt input.
constexpr uint64_t kMaxBasisEntries = 1ull << 28;
}  // namespace

void WriteBasis(std::ostream& out, const Basis& basis) {
  binary_io::WriteScalar<uint64_t>(out, basis.basic.size());
  binary_io::WriteScalar<uint64_t>(out, basis.state.size());
  for (int j : basis.basic) {
    binary_io::WriteScalar<int32_t>(out, static_cast<int32_t>(j));
  }
  for (VarStatus status : basis.state) {
    binary_io::WriteScalar<int8_t>(out, static_cast<int8_t>(status));
  }
}

Result<Basis> ReadBasis(std::istream& in) {
  PRIVSAN_ASSIGN_OR_RETURN(uint64_t num_basic,
                           binary_io::ReadCount(in, kMaxBasisEntries));
  PRIVSAN_ASSIGN_OR_RETURN(uint64_t num_state,
                           binary_io::ReadCount(in, kMaxBasisEntries));
  if (num_basic > num_state) {
    return Status::IoError("basis corrupt: more basic entries than variables");
  }
  Basis basis;
  basis.basic.resize(num_basic);
  for (uint64_t i = 0; i < num_basic; ++i) {
    int32_t j = 0;
    PRIVSAN_RETURN_IF_ERROR(binary_io::ReadScalar(in, &j));
    if (j < 0 || static_cast<uint64_t>(j) >= num_state) {
      return Status::IoError("basis corrupt: basic index out of range");
    }
    basis.basic[i] = j;
  }
  basis.state.resize(num_state);
  uint64_t basic_flags = 0;
  for (uint64_t i = 0; i < num_state; ++i) {
    int8_t raw = 0;
    PRIVSAN_RETURN_IF_ERROR(binary_io::ReadScalar(in, &raw));
    if (raw < static_cast<int8_t>(VarStatus::kBasic) ||
        raw > static_cast<int8_t>(VarStatus::kFree)) {
      return Status::IoError("basis corrupt: unknown variable status " +
                             std::to_string(raw));
    }
    basis.state[i] = static_cast<VarStatus>(raw);
    if (basis.state[i] == VarStatus::kBasic) ++basic_flags;
  }
  if (basic_flags != num_basic) {
    return Status::IoError(
        "basis corrupt: basic list and status flags disagree");
  }
  for (int j : basis.basic) {
    if (basis.state[j] != VarStatus::kBasic) {
      return Status::IoError(
          "basis corrupt: listed basic variable not flagged basic");
    }
  }
  return basis;
}

Status ValidateBasisShape(const Basis& basis, size_t num_structural,
                          size_t num_rows) {
  if (basis.empty()) return Status::OK();
  if (basis.state.size() != num_structural + num_rows ||
      basis.basic.size() != num_rows) {
    return Status::InvalidArgument(
        "basis shape mismatch: " + std::to_string(basis.state.size()) +
        " states / " + std::to_string(basis.basic.size()) +
        " basic vs model with " + std::to_string(num_structural) +
        " structurals and " + std::to_string(num_rows) + " rows");
  }
  return Status::OK();
}

}  // namespace lp
}  // namespace privsan
