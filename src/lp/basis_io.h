// Binary (de)serialization of simplex bases — the piece of LP state worth
// persisting across a service restart. A restored basis is only ever used
// as a warm-start hint, so the contract is the same as WarmStartHint's: a
// stale or mismatched basis costs a cold solve, never a wrong answer.
// ReadBasis validates internal consistency (status codes in range, basic
// list and state flags agreeing); shape-vs-model validation is the
// caller's job (ValidateBasisShape).
#ifndef PRIVSAN_LP_BASIS_IO_H_
#define PRIVSAN_LP_BASIS_IO_H_

#include <istream>
#include <ostream>

#include "lp/simplex.h"
#include "util/result.h"

namespace privsan {
namespace lp {

void WriteBasis(std::ostream& out, const Basis& basis);

Result<Basis> ReadBasis(std::istream& in);

// Whether `basis` fits a model with `num_structural` variables and
// `num_rows` constraints. An empty basis fits everything (it means "no
// warm start").
Status ValidateBasisShape(const Basis& basis, size_t num_structural,
                          size_t num_rows);

}  // namespace lp
}  // namespace privsan

#endif  // PRIVSAN_LP_BASIS_IO_H_
