#include "lp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>

#include "util/logging.h"
#include "util/timer.h"

namespace privsan {
namespace lp {

namespace {

struct Node {
  // Bound overrides relative to the root model: (variable, lower, upper).
  std::vector<std::tuple<int, double, double>> bound_changes;
  double lp_bound = 0.0;  // parent LP objective, in minimization sense
  // Parent's optimal basis: the child differs only in one variable bound,
  // so it re-solves dual-simplex style from here instead of from scratch.
  std::shared_ptr<const Basis> warm;
};

struct NodeOrder {
  // Best-first: smallest minimization bound first.
  bool operator()(const std::shared_ptr<Node>& a,
                  const std::shared_ptr<Node>& b) const {
    return a->lp_bound > b->lp_bound;
  }
};

// Rounds an LP point to integrality and keeps it only if feasible.
bool TryRoundedIncumbent(const LpModel& model,
                         const std::vector<double>& x_lp, double tol,
                         std::vector<double>& x_out) {
  std::vector<double> x = x_lp;
  for (int j = 0; j < model.num_variables(); ++j) {
    if (model.variable(j).is_integer) {
      x[j] = std::floor(x[j] + tol);
      x[j] = std::clamp(x[j], model.variable(j).lower,
                        model.variable(j).upper);
    }
  }
  if (!model.IsFeasible(x, 1e-6)) return false;
  x_out = std::move(x);
  return true;
}

}  // namespace

BnbResult SolveBranchAndBound(const LpModel& model,
                              const BnbOptions& options) {
  BnbResult result;
  WallTimer timer;

  const bool maximize = model.sense() == ObjectiveSense::kMaximize;
  // Work in minimization internally: min_obj = maximize ? -obj : obj.
  auto to_internal = [&](double v) { return maximize ? -v : v; };
  auto to_external = [&](double v) { return maximize ? -v : v; };

  LpModel scratch = model;  // bounds are mutated per node and restored
  SimplexSolver solver(options.simplex);

  double incumbent_internal = std::numeric_limits<double>::infinity();
  std::vector<double> incumbent_x;

  std::priority_queue<std::shared_ptr<Node>,
                      std::vector<std::shared_ptr<Node>>, NodeOrder>
      open;
  open.push(std::make_shared<Node>());
  open.top()->lp_bound = -std::numeric_limits<double>::infinity();

  double best_open_bound = -std::numeric_limits<double>::infinity();
  bool budget_hit = false;
  bool dropped_subtree = false;
  double dropped_bound = std::numeric_limits<double>::infinity();

  while (!open.empty()) {
    if (result.nodes_explored >= options.max_nodes ||
        timer.ElapsedSeconds() > options.time_limit_seconds) {
      budget_hit = true;
      best_open_bound = open.top()->lp_bound;
      break;
    }
    std::shared_ptr<Node> node = open.top();
    open.pop();
    // Fathom by bound.
    if (node->lp_bound >=
        incumbent_internal - std::abs(incumbent_internal) * options.gap_tol -
            1e-12) {
      continue;
    }
    ++result.nodes_explored;

    // Apply node bounds.
    std::vector<std::tuple<int, double, double>> saved;
    saved.reserve(node->bound_changes.size());
    for (const auto& [var, lo, hi] : node->bound_changes) {
      Variable& v = scratch.mutable_variable(var);
      saved.emplace_back(var, v.lower, v.upper);
      v.lower = std::max(v.lower, lo);
      v.upper = std::min(v.upper, hi);
    }
    const bool is_root = node->bound_changes.empty();
    const Basis* hint = nullptr;
    if (options.warm_start) {
      hint = node->warm.get();
      if (hint == nullptr && is_root) hint = options.root_hint;
    }
    LpSolution lp = solver.Solve(scratch, hint);
    // Restore bounds.
    for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
      Variable& v = scratch.mutable_variable(std::get<0>(*it));
      v.lower = std::get<1>(*it);
      v.upper = std::get<2>(*it);
    }
    result.lp_iterations += lp.iterations;
    result.lp_dual_iterations += lp.dual_iterations;
    result.lp_refactorizations += lp.refactorizations;
    result.lp_basis_repairs += lp.basis_repairs;
    if (lp.repair_aborted) ++result.repair_aborted;
    if (lp.warm_started) ++result.warm_solves;
    if (is_root) {
      result.root_warm_started = lp.warm_started;
      result.root_lp_iterations = lp.iterations;
      if (lp.status == SolveStatus::kOptimal) result.root_basis = lp.basis;
    }

    if (lp.status == SolveStatus::kInfeasible) continue;
    if (lp.status == SolveStatus::kUnbounded) {
      result.status = SolveStatus::kUnbounded;
      return result;
    }
    if (lp.status != SolveStatus::kOptimal) {
      // Numerical trouble on this node: its subtree is lost, so the run
      // can no longer prove optimality; fold the parent bound into the
      // dual bound so best_bound stays valid.
      dropped_subtree = true;
      dropped_bound = std::min(dropped_bound, node->lp_bound);
      continue;
    }

    const double node_bound = to_internal(lp.objective);
    if (node_bound >=
        incumbent_internal - std::abs(incumbent_internal) * options.gap_tol -
            1e-12) {
      continue;
    }

    // Find the most fractional integer variable.
    int branch_var = -1;
    double branch_score = options.integrality_tol;
    for (int j = 0; j < model.num_variables(); ++j) {
      if (!model.variable(j).is_integer) continue;
      const double frac = lp.x[j] - std::floor(lp.x[j]);
      const double dist = std::min(frac, 1.0 - frac);
      if (dist > branch_score) {
        branch_score = dist;
        branch_var = j;
      }
    }

    if (branch_var < 0) {
      // Integral LP optimum: new incumbent.
      if (node_bound < incumbent_internal) {
        incumbent_internal = node_bound;
        incumbent_x = lp.x;
        // Snap integer values exactly.
        for (int j = 0; j < model.num_variables(); ++j) {
          if (model.variable(j).is_integer) {
            incumbent_x[j] = std::round(incumbent_x[j]);
          }
        }
      }
      continue;
    }

    // Rounding heuristic: cheap incumbent from the fractional point.
    std::vector<double> rounded;
    if (TryRoundedIncumbent(model, lp.x, options.integrality_tol, rounded)) {
      const double rounded_obj = to_internal(model.ObjectiveValue(rounded));
      if (rounded_obj < incumbent_internal) {
        incumbent_internal = rounded_obj;
        incumbent_x = rounded;
      }
    }

    // Branch. Both children start the dual simplex from this node's
    // optimal basis (shared, immutable).
    const double value = lp.x[branch_var];
    std::shared_ptr<const Basis> warm;
    if (options.warm_start && !lp.basis.empty()) {
      warm = std::make_shared<const Basis>(std::move(lp.basis));
    }
    auto down = std::make_shared<Node>(*node);
    down->lp_bound = node_bound;
    down->warm = warm;
    down->bound_changes.emplace_back(
        branch_var, -std::numeric_limits<double>::infinity(),
        std::floor(value));
    open.push(std::move(down));

    auto up = std::make_shared<Node>(*node);
    up->lp_bound = node_bound;
    up->warm = warm;
    up->bound_changes.emplace_back(branch_var, std::ceil(value),
                                   std::numeric_limits<double>::infinity());
    open.push(std::move(up));
  }

  result.wall_seconds = timer.ElapsedSeconds();
  result.has_incumbent = !incumbent_x.empty();
  if (result.has_incumbent) {
    result.x = std::move(incumbent_x);
    result.objective = to_external(incumbent_internal);
  }
  if (budget_hit || dropped_subtree) {
    // Either a budget bit or a node LP failed (its subtree was lost):
    // the incumbent stands but optimality is unproven.
    result.status = SolveStatus::kIterationLimit;
    result.proven_optimal = false;
    double bound = incumbent_internal;
    if (budget_hit) bound = std::min(bound, best_open_bound);
    if (dropped_subtree) bound = std::min(bound, dropped_bound);
    result.best_bound = to_external(bound);
  } else {
    result.status = result.has_incumbent ? SolveStatus::kOptimal
                                         : SolveStatus::kInfeasible;
    result.proven_optimal = result.has_incumbent;
    result.best_bound = result.objective;
  }
  return result;
}

}  // namespace lp
}  // namespace privsan
