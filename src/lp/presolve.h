// LP presolve: reductions applied before phase 1, with exact postsolve.
//
// Reductions (iterated to a fixpoint):
//   * fixed variables (lower == upper) are substituted into every row;
//   * empty rows are checked for trivial feasibility and dropped;
//   * singleton rows (one live coefficient) become variable bounds and are
//     dropped — infeasibility of the implied bounds is detected here;
//   * empty columns (variables in no live row) are pinned to their
//     objective-favorable bound when it is finite (when it is infinite the
//     column is kept so the simplex reports unboundedness itself).
//
// Postsolve maps the reduced solution back to the original space:
// primal values of removed variables are restored, duals of dropped
// singleton rows are recovered from the variable's reduced cost (so KKT
// certificates hold on the original model), and the reduced basis is
// extended to a full basis (dropped rows contribute their slack as basic),
// which keeps warm starts valid across presolved solves.
#ifndef PRIVSAN_LP_PRESOLVE_H_
#define PRIVSAN_LP_PRESOLVE_H_

#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"

namespace privsan {
namespace lp {

struct PresolveInfo {
  // The reduced problem was proven infeasible during presolve.
  bool infeasible = false;

  int original_vars = 0;
  int original_rows = 0;

  // original index -> reduced index, or -1 when removed.
  std::vector<int> var_map;
  std::vector<int> row_map;
  // Value assigned to each removed variable (indexed by original index).
  std::vector<double> removed_value;

  // Singleton rows turned into bounds, in removal order.
  struct SingletonRow {
    int row = 0;
    int var = 0;
    double coeff = 0.0;
    ConstraintSense sense = ConstraintSense::kLessEqual;
    double rhs = 0.0;  // rhs after fixed-variable substitution
  };
  std::vector<SingletonRow> singleton_rows;

  int reduced_vars = 0;
  int reduced_rows = 0;

  bool NoOp() const {
    return reduced_vars == original_vars && reduced_rows == original_rows;
  }
};

// Builds the reduced model into `*reduced`. When info.infeasible is set the
// contents of `*reduced` are unspecified.
PresolveInfo BuildPresolve(const LpModel& model, LpModel* reduced);

// Rewrites `solution` (a solution of the reduced model) in the original
// model's space: primal x, duals, objective, and basis. `solution->status`
// is preserved; non-optimal solutions only get size fixups.
void PostsolveSolution(const LpModel& model, const PresolveInfo& info,
                       LpSolution* solution);

}  // namespace lp
}  // namespace privsan

#endif  // PRIVSAN_LP_PRESOLVE_H_
