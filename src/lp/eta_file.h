// Basis factorizations for the revised simplex.
//
// The solver only ever needs three operations on the basis matrix B (the
// m columns of A owned by the basic variables):
//
//   FTRAN:  v := B^-1 v        (entering column, basic values)
//   BTRAN:  v := B^-T v        (duals, dual-simplex row)
//   UPDATE: replace the column in one basis slot after a pivot
//
// `BasisRep` abstracts those; two implementations exist:
//
//   * EtaFile — the production representation: a product form of the
//     inverse. Refactorize() runs sparse Gaussian elimination in product
//     form (columns ordered by ascending fill, so slack/singleton columns
//     pivot for free) and every simplex pivot appends one eta vector.
//     FTRAN/BTRAN cost O(nnz of the eta file), not O(m^2).
//   * DenseBasis — the legacy explicit dense m x m inverse updated by
//     Gauss-Jordan pivots. Kept as the numerical fallback and as the
//     reference oracle for the dense-vs-eta equivalence tests.
//
// Refactorization policy lives with the representation: ShouldRefactor()
// reports growth of the update file; the solver additionally refactorizes
// on numerical drift (residual breach), not on a fixed iteration cadence.
#ifndef PRIVSAN_LP_ETA_FILE_H_
#define PRIVSAN_LP_ETA_FILE_H_

#include <cstddef>
#include <vector>

#include "lp/sparse_matrix.h"

namespace privsan {
namespace lp {

class BasisRep {
 public:
  virtual ~BasisRep() = default;

  // Factorizes the basis formed by columns `basis` of A. May permute
  // `basis` (slot re-assignment); callers must recompute basic values
  // afterwards. Returns false if the basis is numerically singular.
  virtual bool Refactorize(const SparseMatrix& A, std::vector<int>& basis) = 0;

  // v := B^-1 v. v has dimension m.
  virtual void Ftran(std::vector<double>& v) const = 0;

  // v := B^-T v. v has dimension m.
  virtual void Btran(std::vector<double>& v) const = 0;

  // Registers a pivot: the column whose FTRAN image is `w` replaces basis
  // slot `slot`. Returns false when |w[slot]| <= pivot_tol (caller should
  // refactorize instead).
  virtual bool Update(const std::vector<double>& w, int slot,
                      double pivot_tol) = 0;

  // Pivots registered since the last Refactorize().
  virtual int updates_since_refactor() const = 0;

  // Whether the update file has grown enough that refactorizing is cheaper
  // than continuing to apply it.
  virtual bool ShouldRefactor() const = 0;
};

// Product-form-of-the-inverse eta file.
class EtaFile : public BasisRep {
 public:
  // `max_updates`: pivots tolerated before ShouldRefactor() fires.
  // `growth_limit`: fires when eta nonzeros exceed growth_limit x the
  // fresh factorization's nonzeros.
  EtaFile(int max_updates, double growth_limit)
      : max_updates_(max_updates), growth_limit_(growth_limit) {}

  bool Refactorize(const SparseMatrix& A, std::vector<int>& basis) override;
  void Ftran(std::vector<double>& v) const override;
  void Btran(std::vector<double>& v) const override;
  bool Update(const std::vector<double>& w, int slot,
              double pivot_tol) override;
  int updates_since_refactor() const override { return updates_; }
  bool ShouldRefactor() const override;

  size_t eta_nonzeros() const { return nnz_; }

 private:
  struct Eta {
    int slot = 0;        // pivot position
    double pivot = 0.0;  // w[slot]
    std::vector<SparseEntry> off;  // (i, w[i]) for i != slot
  };

  void Append(const std::vector<double>& w, int slot);

  int m_ = 0;
  std::vector<Eta> etas_;  // factorization etas, then update etas
  int updates_ = 0;
  size_t nnz_ = 0;       // total eta entries (off + pivots)
  size_t base_nnz_ = 0;  // nnz_ right after Refactorize()
  int max_updates_;
  double growth_limit_;
};

// Explicit dense inverse (legacy representation, numerical fallback).
class DenseBasis : public BasisRep {
 public:
  explicit DenseBasis(int max_updates) : max_updates_(max_updates) {}

  bool Refactorize(const SparseMatrix& A, std::vector<int>& basis) override;
  void Ftran(std::vector<double>& v) const override;
  void Btran(std::vector<double>& v) const override;
  bool Update(const std::vector<double>& w, int slot,
              double pivot_tol) override;
  int updates_since_refactor() const override { return updates_; }
  bool ShouldRefactor() const override { return updates_ >= max_updates_; }

 private:
  int m_ = 0;
  std::vector<double> binv_;  // row-major m x m
  int updates_ = 0;
  int max_updates_;
};

}  // namespace lp
}  // namespace privsan

#endif  // PRIVSAN_LP_ETA_FILE_H_
