// Basis factorizations for the revised simplex.
//
// The solver only ever needs three operations on the basis matrix B (the
// m columns of A owned by the basic variables):
//
//   FTRAN:  v := B^-1 v        (entering column, basic values)
//   BTRAN:  v := B^-T v        (duals, dual-simplex row)
//   UPDATE: replace the column in one basis slot after a pivot
//
// `BasisRep` abstracts those; three implementations exist:
//
//   * LuFactorization (lp/lu_factorization.h) — the production
//     representation: sparse LU with Markowitz pivot ordering and threshold
//     partial pivoting, updated in product form on top of the factors.
//   * EtaFile — a pure product form of the inverse. Refactorize() runs
//     sparse Gaussian elimination in product form (columns ordered by
//     ascending fill, so slack/singleton columns pivot for free) and every
//     simplex pivot appends one eta vector. Kept as a selectable fallback
//     and as the reference oracle for the LU-vs-eta equivalence tests.
//   * DenseBasis — the legacy explicit dense m x m inverse updated by
//     Gauss-Jordan pivots. The numerical fallback of last resort and the
//     dense oracle for the property tests.
//
// Refactorization policy lives with the representation: ShouldRefactor()
// reports growth of the update file; the solver additionally refactorizes
// on numerical drift (residual breach), not on a fixed iteration cadence.
//
// Failure contract shared by every implementation: a Refactorize() that
// returns false leaves BOTH the previous factorization and the `basis`
// argument untouched, so the caller can repair the basis (swap the
// dependent columns reported in singular_info() for row slacks,
// lp/simplex.cc) and retry deterministically.
#ifndef PRIVSAN_LP_ETA_FILE_H_
#define PRIVSAN_LP_ETA_FILE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "lp/sparse_matrix.h"

namespace privsan {
namespace lp {

// One product-form eta: the inverse of an elementary matrix that differs
// from the identity only in column `slot`.
struct Eta {
  int slot = 0;        // pivot position
  double pivot = 0.0;  // w[slot]
  std::vector<SparseEntry> off;  // (i, w[i]) for i != slot
};

// An ordered sequence of product-form etas with the FTRAN/BTRAN loops
// shared by the eta file (which is nothing but one such sequence) and the
// LU factorization (which stacks one on top of its factors for updates).
class EtaSequence {
 public:
  void Clear() {
    etas_.clear();
    nnz_ = 0;
  }

  // Appends the eta formed by the FTRAN image `w` pivoting at `slot`.
  void Append(const std::vector<double>& w, int slot);

  // Appends an already-harvested eta (refactorization builds them in place).
  void Push(Eta eta) {
    nnz_ += eta.off.size() + 1;
    etas_.push_back(std::move(eta));
  }

  // v := E_k^-1 ... E_1^-1 v (application order = append order).
  void Ftran(std::vector<double>& v) const;

  // Ftran that appends every newly filled index to `touched`, so sparse
  // callers (refactorization) avoid an O(m) scan for the nonzeros. An index
  // may appear twice after an exact cancellation mid-product; callers must
  // tolerate duplicates.
  void FtranTracked(std::vector<double>& v, std::vector<int>& touched) const;

  // v := E_1^-T ... E_k^-T v (reverse order).
  void Btran(std::vector<double>& v) const;

  size_t size() const { return etas_.size(); }
  size_t nonzeros() const { return nnz_; }

  // The etas in application order, for callers that interleave their own
  // sparsity bookkeeping with the product (hyper-sparse FTRAN/BTRAN).
  std::span<const Eta> etas() const { return etas_; }

  void swap(EtaSequence& other) {
    etas_.swap(other.etas_);
    std::swap(nnz_, other.nnz_);
  }

 private:
  std::vector<Eta> etas_;
  size_t nnz_ = 0;  // total eta entries (off + pivots)
};

class BasisRep {
 public:
  // What a failed Refactorize() found: the rows left without a pivot and
  // the basis variables that could not be pivoted in (numerically
  // dependent on the others), paired by count. The solver uses this to
  // repair the basis in place — dependent columns leave for the uncovered
  // rows' slacks — instead of falling back to a cold solve.
  struct SingularInfo {
    std::vector<int> unpivoted_rows;
    std::vector<int> dependent_columns;  // variable ids from `basis`
    bool empty() const { return dependent_columns.empty(); }
    void Clear() {
      unpivoted_rows.clear();
      dependent_columns.clear();
    }
  };

  // Kernel-health counters for the hyper-sparse solve path. A "sparse
  // solve" is any FtranSparse/BtranSparse call that arrived with a valid
  // pattern; a "hit" is one that stayed on the pattern-driven kernel for
  // every factor half (no density fallback). reach_fraction_sum accumulates
  // |result pattern| / m per sparse solve (1.0 when it fell back dense), so
  // mean reach = reach_fraction_sum / sparse_solves. Representations
  // without a sparse kernel report all zeros.
  struct KernelStats {
    uint64_t sparse_solves = 0;
    uint64_t sparse_hits = 0;
    double reach_fraction_sum = 0.0;
  };

  virtual ~BasisRep() = default;

  // Factorizes the basis formed by columns `basis` of A. May permute
  // `basis` (slot re-assignment); callers must recompute basic values
  // afterwards. Returns false if the basis is numerically singular — then
  // `basis`, the previous factorization, and all counters are left exactly
  // as they were, and singular_info() describes the dependency (when the
  // representation can attribute it; DenseBasis cannot).
  virtual bool Refactorize(const SparseMatrix& A, std::vector<int>& basis) = 0;

  // v := B^-1 v. v has dimension m.
  virtual void Ftran(std::vector<double>& v) const = 0;

  // v := B^-T v. v has dimension m.
  virtual void Btran(std::vector<double>& v) const = 0;

  // Registers a pivot: the column whose FTRAN image is `w` replaces basis
  // slot `slot`. Returns false when |w[slot]| <= pivot_tol (caller should
  // refactorize instead).
  virtual bool Update(const std::vector<double>& w, int slot,
                      double pivot_tol) = 0;

  // Pattern-aware variants. Results are bit-identical to the dense
  // entry points above (modulo the sign of exact zeros) — the sparse-vs-
  // dense lockstep tests compare with operator==, no tolerances. The
  // defaults run the dense kernel and invalidate the pattern, so every
  // representation is a valid (if pattern-oblivious) target; only
  // LuFactorization overrides with a Gilbert–Peierls reach-driven kernel.
  virtual void FtranSparse(SparseVector& v) const {
    Ftran(v.values);
    v.pattern_valid = false;
  }
  virtual void BtranSparse(SparseVector& v) const {
    Btran(v.values);
    v.pattern_valid = false;
  }
  virtual bool UpdateSparse(const SparseVector& w, int slot,
                            double pivot_tol) {
    return Update(w.values, slot, pivot_tol);
  }

  // Cumulative over this representation's lifetime (not reset by
  // Refactorize), so the solver can sample once per solve.
  virtual KernelStats kernel_stats() const { return KernelStats{}; }

  // Pivots registered since the last Refactorize().
  virtual int updates_since_refactor() const = 0;

  // Whether the update file has grown enough that refactorizing is cheaper
  // than continuing to apply it.
  virtual bool ShouldRefactor() const = 0;

  // Nonzeros one FTRAN/BTRAN traverses — factors plus update file. The
  // solver exports this as the factorization-fill statistic.
  virtual size_t nonzeros() const = 0;

  // Valid after the most recent Refactorize() returned false; empty after
  // a success (or when the representation cannot attribute the failure).
  const SingularInfo& singular_info() const { return singular_info_; }

 protected:
  SingularInfo singular_info_;
};

// Product-form-of-the-inverse eta file.
class EtaFile : public BasisRep {
 public:
  // `max_updates`: pivots tolerated before ShouldRefactor() fires.
  // `growth_limit`: fires when eta nonzeros exceed growth_limit x the
  // fresh factorization's nonzeros.
  EtaFile(int max_updates, double growth_limit)
      : max_updates_(max_updates), growth_limit_(growth_limit) {}

  bool Refactorize(const SparseMatrix& A, std::vector<int>& basis) override;
  void Ftran(std::vector<double>& v) const override;
  void Btran(std::vector<double>& v) const override;
  bool Update(const std::vector<double>& w, int slot,
              double pivot_tol) override;
  int updates_since_refactor() const override { return updates_; }
  bool ShouldRefactor() const override;
  size_t nonzeros() const override { return etas_.nonzeros(); }

  size_t eta_nonzeros() const { return etas_.nonzeros(); }

 private:
  int m_ = 0;
  EtaSequence etas_;  // factorization etas, then update etas
  int updates_ = 0;
  size_t base_nnz_ = 0;  // nonzeros right after Refactorize()
  int max_updates_;
  double growth_limit_;
};

// Explicit dense inverse (legacy representation, numerical fallback).
class DenseBasis : public BasisRep {
 public:
  explicit DenseBasis(int max_updates) : max_updates_(max_updates) {}

  bool Refactorize(const SparseMatrix& A, std::vector<int>& basis) override;
  void Ftran(std::vector<double>& v) const override;
  void Btran(std::vector<double>& v) const override;
  bool Update(const std::vector<double>& w, int slot,
              double pivot_tol) override;
  int updates_since_refactor() const override { return updates_; }
  bool ShouldRefactor() const override { return updates_ >= max_updates_; }
  size_t nonzeros() const override {
    return static_cast<size_t>(m_) * static_cast<size_t>(m_);
  }

 private:
  int m_ = 0;
  std::vector<double> binv_;  // row-major m x m
  int updates_ = 0;
  int max_updates_;
};

}  // namespace lp
}  // namespace privsan

#endif  // PRIVSAN_LP_ETA_FILE_H_
