// Pricing for the revised simplex — who enters (primal) and who leaves
// (dual), split out of the iteration driver in lp/simplex.cc.
//
//   * PrimalPricer — Devex reference weights over the columns with
//     candidate-list partial pricing (multiple pricing): a full scan by
//     Devex score refills a small candidate list, minor iterations re-price
//     only the candidates, and a Bland mode (first improving index, full
//     scan) guarantees termination under degeneracy.
//   * DualPricer — the dual simplex's leaving-row choice. Largest bound
//     violation is the legacy rule; the default is dual Devex: row weights
//     approximating the steepest-edge norms ||e_i^T B^-1||^2, updated from
//     the FTRAN image of each entering column, with rows scored by
//     violation^2 / weight. On the long dual repairs of deep B&B children
//     and post-append warm starts this cuts the pivot count the same way
//     primal Devex does on cold solves.
//
// Both pricers hold only pricing state (weights, candidate list); the
// reduced costs, the basis, and the bound data stay in the driver and are
// passed in by view. ResetReference() must be called whenever the driver
// recomputes reduced costs exactly (refactorizations, phase switches) —
// the Devex reference framework moves with them.
#ifndef PRIVSAN_LP_PRICING_H_
#define PRIVSAN_LP_PRICING_H_

#include <span>
#include <vector>

#include "lp/simplex.h"
#include "lp/sparse_matrix.h"

namespace privsan {
namespace lp {

// The per-column data one pricing pass reads.
struct PricingView {
  std::span<const double> reduced_costs;  // maintained d, one per variable
  std::span<const VarStatus> state;
  std::span<const double> lower, upper;
  double optimality_tol = 0.0;
};

// Violation magnitude of column j (0 = not improving); `sign` is +1 when
// the entering variable would increase, -1 when it would decrease.
double PriceColumn(const PricingView& view, int j, int& sign);

class PrimalPricer {
 public:
  PrimalPricer(int n_total, const SimplexOptions& options);

  // The reduced costs were recomputed exactly: reset the Devex reference
  // framework and drop the (now stale) candidate list.
  void ResetReference();

  struct Choice {
    int entering = -1;
    int sign = 0;
  };

  // Picks the entering column off the maintained reduced costs.
  // `allow_partial` enables candidate-list minor iterations (the driver
  // disables them during degenerate stalls); `bland` switches to the first
  // improving index (full scan).
  Choice ChooseEntering(const PricingView& view, bool allow_partial,
                        bool bland);

  // Devex weight update along the pivot row after `entering` replaced
  // `leaving_var` with pivot element `pivot`. `alpha_touched`/`alpha` are
  // the pivot row's computed entries; `view.state` must already reflect the
  // post-pivot statuses.
  void OnPivot(const PricingView& view, int entering, int leaving_var,
               double pivot, std::span<const int> alpha_touched,
               const std::vector<SparseAccumCell>& alpha);

 private:
  Choice Refill(const PricingView& view);

  int n_total_;
  int candidate_list_size_;
  std::vector<double> gamma_;   // Devex reference weights
  std::vector<int> candidates_;
  double refill_best_score_ = 0.0;  // best Devex score at the last refill
  int minor_iterations_ = 0;        // pivots since the last refill
};

class DualPricer {
 public:
  DualPricer(int m, const SimplexOptions& options);

  // The basis was refactorized / reduced costs recomputed: reset the Devex
  // reference framework.
  void ResetReference();

  struct Leaving {
    int slot = -1;          // -1: primal feasible, nothing leaves
    bool below = false;     // violated bound side
    double violation = 0.0; // actual bound violation (not the Devex score)
  };

  // The leaving row: largest violation (legacy) or best violation^2/weight
  // (dual Devex).
  Leaving ChooseLeaving(std::span<const double> x, std::span<const int> basis,
                        std::span<const double> lower,
                        std::span<const double> upper) const;

  // Dual Devex weight update from the FTRAN image of the entering column
  // (`direction` = B^-1 A_entering) pivoting at `leaving_slot`. A valid
  // pattern restricts the weight scan to the image's nonzero rows (the
  // per-row max update is order-independent, so the result is identical).
  void OnPivot(const SparseVector& direction, int leaving_slot);

 private:
  bool devex_ = true;
  std::vector<double> weights_;
};

}  // namespace lp
}  // namespace privsan

#endif  // PRIVSAN_LP_PRICING_H_
