#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "lp/eta_file.h"
#include "lp/lu_factorization.h"
#include "lp/presolve.h"
#include "lp/pricing.h"
#include "lp/ratio_test.h"
#include "lp/scaling.h"
#include "lp/sparse_matrix.h"
#include "util/logging.h"

namespace privsan {
namespace lp {

const char* SolveStatusToString(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "Optimal";
    case SolveStatus::kInfeasible:
      return "Infeasible";
    case SolveStatus::kUnbounded:
      return "Unbounded";
    case SolveStatus::kIterationLimit:
      return "IterationLimit";
    case SolveStatus::kNumericalFailure:
      return "NumericalFailure";
  }
  return "?";
}

namespace {

constexpr VarStatus kBasic = VarStatus::kBasic;
constexpr VarStatus kAtLower = VarStatus::kAtLower;
constexpr VarStatus kAtUpper = VarStatus::kAtUpper;
constexpr VarStatus kFree = VarStatus::kFree;

// All mutable solver state for one Solve() call.
struct Work {
  int m = 0;        // rows
  int n_total = 0;  // structural + slacks + artificials
  int n_struct = 0;
  int artificial_begin = 0;  // first artificial index (== n_total if none)

  SparseMatrix cols;           // m x n_total
  std::vector<double> lb, ub;  // per variable
  std::vector<double> cost;    // phase-2 minimization costs (exact)
  std::vector<double> rhs;     // row right-hand sides
  double rhs_scale = 1.0;      // 1 + |rhs|_inf, for drift tolerances

  std::vector<double> x;          // current value of every variable
  std::vector<int> basis;         // slot -> basic variable
  std::vector<VarStatus> state;   // variable -> status
  std::unique_ptr<BasisRep> rep;  // basis factorization

  // Equilibration factors when options.scaling applied them (row empty
  // otherwise); the solve runs scaled, BuildSolution maps back.
  ScalingFactors scaling;

  int64_t iterations = 0;
  int64_t dual_iterations = 0;
  int refactorizations = 0;
  int basis_repairs = 0;
  size_t factor_nnz = 0;   // peak rep->nonzeros() observed
  int max_update_run = 0;  // longest update run between refactorizations
};

// The update file is largest right before a refactorization wipes it, so
// sampling there (and once more at the end of the solve) captures both the
// peak traversal cost and the longest update run.
void SampleRepStats(Work& w) {
  if (w.rep == nullptr) return;
  w.max_update_run =
      std::max(w.max_update_run, w.rep->updates_since_refactor());
  w.factor_nnz = std::max(w.factor_nnz, w.rep->nonzeros());
}

// Copies the representation's cumulative hyper-sparse kernel counters into
// a solution (one Work owns one representation, so a single read at the
// end of the solve sees everything).
void HarvestKernelStats(const Work& w, LpSolution& solution) {
  if (w.rep == nullptr) return;
  const BasisRep::KernelStats ks = w.rep->kernel_stats();
  solution.sparse_solves = ks.sparse_solves;
  solution.sparse_ftran_hits = ks.sparse_hits;
  solution.mean_reach_fraction =
      ks.sparse_solves > 0
          ? ks.reach_fraction_sum / static_cast<double>(ks.sparse_solves)
          : 0.0;
}

// Folds `other`'s sparse-kernel counters into `into` (retry and warm+cold
// merges): counts add, the mean reach re-weights by solve count.
void MergeKernelStats(LpSolution& into, const LpSolution& other) {
  const double reach_sum =
      into.mean_reach_fraction * static_cast<double>(into.sparse_solves) +
      other.mean_reach_fraction * static_cast<double>(other.sparse_solves);
  into.sparse_solves += other.sparse_solves;
  into.sparse_ftran_hits += other.sparse_ftran_hits;
  into.mean_reach_fraction =
      into.sparse_solves > 0
          ? reach_sum / static_cast<double>(into.sparse_solves)
          : 0.0;
}

enum class PhaseStatus { kOptimal, kUnbounded, kIterationLimit, kSingular };
enum class DualStatus {
  kOptimal,  // primal feasibility restored
  kPrimalInfeasible,
  kIterationLimit,
  kRepairAborted,  // warm_repair_pivot_cap exhausted (stale hint)
  kSingular,
};

std::unique_ptr<BasisRep> MakeBasisRep(const SimplexOptions& options) {
  switch (options.basis_kind) {
    case SimplexOptions::BasisKind::kDense:
      return std::make_unique<DenseBasis>(options.refactor_max_updates);
    case SimplexOptions::BasisKind::kEtaFile:
      return std::make_unique<EtaFile>(options.refactor_max_updates,
                                       options.refactor_growth);
    case SimplexOptions::BasisKind::kLu:
      break;
  }
  const bool ft =
      options.update_kind == SimplexOptions::UpdateKind::kForrestTomlin;
  // Forrest–Tomlin keeps U's fill near the data's, so the pivot-count cap
  // stops being the binding trigger: raise it 4x and let the measured
  // nonzero growth (ShouldRefactor) govern. Product form keeps the
  // original tuning — its eta file grows a column per pivot.
  const int max_updates =
      ft ? 4 * options.refactor_max_updates : options.refactor_max_updates;
  return std::make_unique<LuFactorization>(
      max_updates, options.refactor_growth, options.markowitz_threshold,
      ft ? LuUpdateKind::kForrestTomlin : LuUpdateKind::kProductForm,
      options.hypersparse_threshold);
}

// Applies fn(index, value) to every nonzero of v — over the pattern when
// the kernel preserved one (the pattern is sorted, so the visit order
// matches the dense ascending scan), else by scanning.
template <typename Fn>
void ForEachNonzero(const SparseVector& v, Fn&& fn) {
  if (v.pattern_valid) {
    for (int i : v.pattern) {
      const double value = v.values[i];
      if (value != 0.0) fn(i, value);
    }
  } else {
    const int size = static_cast<int>(v.values.size());
    for (int i = 0; i < size; ++i) {
      const double value = v.values[i];
      if (value != 0.0) fn(i, value);
    }
  }
}

double InitialNonbasicValue(double lower, double upper, VarStatus& state) {
  if (std::isfinite(lower)) {
    state = kAtLower;
    return lower;
  }
  if (std::isfinite(upper)) {
    state = kAtUpper;
    return upper;
  }
  state = kFree;
  return 0.0;
}

// x_B = B^-1 (rhs - N x_N) with the current factorization.
void RecomputeBasics(Work& w) {
  std::vector<double> effective = w.rhs;
  for (int j = 0; j < w.n_total; ++j) {
    if (w.state[j] == kBasic || w.x[j] == 0.0) continue;
    w.cols.AddColumnTo(j, -w.x[j], effective);
  }
  w.rep->Ftran(effective);
  for (int i = 0; i < w.m; ++i) w.x[w.basis[i]] = effective[i];
}

// Repairs a singular basis in place from the factorization's failure
// report: every dependent column leaves the basis (nonbasic at a usable
// bound) and an uncovered row's slack takes its slot. Returns false when
// the report is unusable (or a needed slack is itself already basic — then
// the dependency is not of the "column duplicates columns" shape this
// repair handles) and the caller should fail over as before.
bool RepairSingularBasis(Work& w) {
  const BasisRep::SingularInfo& info = w.rep->singular_info();
  if (info.empty() ||
      info.dependent_columns.size() != info.unpivoted_rows.size()) {
    return false;
  }
  // Replacement slacks: one uncovered row's slack per dependent column,
  // skipping slacks that are already basic.
  std::vector<int> slacks;
  slacks.reserve(info.unpivoted_rows.size());
  for (int r : info.unpivoted_rows) {
    const int slack = w.n_struct + r;
    if (slack < w.n_total && w.state[slack] != kBasic) slacks.push_back(slack);
  }
  if (slacks.size() < info.dependent_columns.size()) return false;

  // Match each dependent variable to a basis slot (the basis was left
  // unpermuted). A slot is consumed at most once so a report that names
  // the same variable twice — possible only for a corrupt caller-supplied
  // hint holding duplicate columns — still repairs every listed slot.
  std::vector<char> slot_taken(w.m, 0);
  for (size_t k = 0; k < info.dependent_columns.size(); ++k) {
    const int dropped = info.dependent_columns[k];
    int slot = -1;
    for (int i = 0; i < w.m; ++i) {
      if (!slot_taken[i] && w.basis[i] == dropped) {
        slot = i;
        break;
      }
    }
    if (slot < 0) return false;  // defensive; report names a nonbasic var
    slot_taken[slot] = 1;
    const int slack = slacks[k];
    w.basis[slot] = slack;
    w.state[slack] = kBasic;
    w.x[dropped] = InitialNonbasicValue(w.lb[dropped], w.ub[dropped],
                                        w.state[dropped]);
  }
  return true;
}

// Refactorizes the current basis and recomputes the basic values from the
// nonbasic ones. A singular basis is repaired in place (dependent columns
// swapped for row slacks) under the repair policy; returns false only when
// the basis stays numerically singular after the allowed repair attempts.
bool FactorizeAndRecompute(Work& w, const SimplexOptions& options) {
  SampleRepStats(w);
  for (int attempt = 0;; ++attempt) {
    if (w.rep->Refactorize(w.cols, w.basis)) {
      ++w.refactorizations;
      RecomputeBasics(w);
      return true;
    }
    if (options.repair_policy == SimplexOptions::RepairPolicy::kNone ||
        attempt >= options.max_basis_repairs || !RepairSingularBasis(w)) {
      return false;
    }
    ++w.basis_repairs;
  }
}

// |rhs - A x|_inf over every variable — the drift monitor. The incremental
// x updates accumulate error; a breach forces a refactorization.
double ResidualInfNorm(const Work& w) {
  std::vector<double> res = w.rhs;
  for (int j = 0; j < w.n_total; ++j) {
    if (w.x[j] != 0.0) w.cols.AddColumnTo(j, -w.x[j], res);
  }
  double norm = 0.0;
  for (double v : res) norm = std::max(norm, std::abs(v));
  return norm;
}

enum class RefactorCheck { kNone, kDone, kSingular };

// The shared refactorization policy of both simplex phases: refactorize on
// update-file growth or on numerical drift (residual breach, checked every
// drift_check_interval iterations) — never on a fixed cadence. Callers
// must refresh their maintained reduced costs on kDone.
RefactorCheck MaybeRefactor(Work& w, const SimplexOptions& options,
                            int& drift_countdown) {
  bool need = w.rep->ShouldRefactor();
  if (!need && options.drift_check_interval > 0 && --drift_countdown <= 0) {
    drift_countdown = options.drift_check_interval;
    if (ResidualInfNorm(w) > options.drift_tol * w.rhs_scale) need = true;
  }
  if (!need) return RefactorCheck::kNone;
  return FactorizeAndRecompute(w, options) ? RefactorCheck::kDone
                                           : RefactorCheck::kSingular;
}

// Exact reduced costs of every variable against the current basis:
// d = cost - A^T B^-T c_B (zero for basics). Shared by the primal phase,
// the dual phase, and the warm-start dual-feasibility repair.
void ComputeReducedCosts(const Work& w, const std::vector<double>& cost,
                         std::vector<double>& d) {
  std::vector<double> y(w.m);
  for (int i = 0; i < w.m; ++i) y[i] = cost[w.basis[i]];
  w.rep->Btran(y);
  d.resize(w.n_total);
  for (int j = 0; j < w.n_total; ++j) {
    d[j] = w.state[j] == kBasic ? 0.0 : cost[j] - w.cols.ColumnDot(j, y);
  }
}

// The pivot row alpha = e_slot^T B^-1 A via BTRAN of e_slot and the CSR
// view (only rows where rho is nonzero contribute). `touched` lists the
// distinct columns with a computed entry. The accumulator cells carry
// their own epoch mark (see SparseAccumCell): bumping `epoch` invalidates
// the previous row wholesale, the mark doubles as the duplicate guard
// (a partial sum cancelling to exactly 0.0 must not re-enter `touched` —
// the incremental reduced-cost update would fire twice), and each matrix
// entry costs a single random cache access.
void ComputePivotRow(const Work& w, int slot, SparseVector& rho,
                     std::vector<SparseAccumCell>& alpha,
                     std::vector<int>& touched, int64_t& epoch) {
  ++epoch;
  touched.clear();
  rho.Clear();
  rho.values[slot] = 1.0;
  rho.pattern.push_back(slot);
  w.rep->BtranSparse(rho);
  // Accumulate over rho's pattern when the kernel kept one. The pattern is
  // sorted ascending, so both the per-column accumulation order and the
  // first-touch order of `touched` match the dense row scan exactly.
  ForEachNonzero(rho, [&](int i, double r) {
    for (const SparseEntry& e : w.cols.Row(i)) {
      SparseAccumCell& cell = alpha[e.index];
      if (cell.epoch != epoch) {
        cell.epoch = epoch;
        cell.value = 0.0;
        touched.push_back(e.index);
      }
      cell.value += r * e.value;
    }
  });
}

// One simplex phase: minimize `cost` over the current basis until optimal.
// In phase 1 `cost` is 1 on artificials; unboundedness there indicates a
// numerical problem and is reported as kSingular. The pricing and ratio
// test live in lp/pricing.h and lp/ratio_test.h; this loop owns the state
// updates, the reduced-cost maintenance, and the refactorization policy.
PhaseStatus RunPhase(Work& w, const std::vector<double>& cost, bool phase1,
                     const SimplexOptions& options) {
  const int m = w.m;
  const double kInf = std::numeric_limits<double>::infinity();

  SparseVector direction;
  direction.Reset(m);
  SparseVector rho;
  rho.Reset(m);
  // Reduced costs are maintained incrementally across pivots (the classic
  // d'_j = d_j - (d_q / alpha_q) alpha_j update, sharing the alpha row with
  // the Devex weight update) and recomputed exactly at refactorizations and
  // before optimality is declared.
  std::vector<double> d(w.n_total);
  PrimalPricer pricer(w.n_total, options);
  std::vector<SparseAccumCell> alpha(w.n_total);
  std::vector<int> alpha_touched;
  int64_t alpha_epoch = 0;
  int stall = 0;
  bool bland = false;
  int update_failures = 0;
  int drift_countdown = options.drift_check_interval;

  const PricingView view{d, w.state, w.lb, w.ub, options.optimality_tol};

  // Exact reduced costs; also resets the Devex reference framework (the
  // weights' reference point moved).
  auto refresh_reduced = [&]() {
    ComputeReducedCosts(w, cost, d);
    pricer.ResetReference();
  };
  refresh_reduced();

  auto factorize = [&]() {
    if (!FactorizeAndRecompute(w, options)) return false;
    refresh_reduced();
    return true;
  };

  while (true) {
    if (w.iterations >= options.max_iterations) {
      return PhaseStatus::kIterationLimit;
    }
    ++w.iterations;

    switch (MaybeRefactor(w, options, drift_countdown)) {
      case RefactorCheck::kNone:
        break;
      case RefactorCheck::kDone:
        refresh_reduced();
        break;
      case RefactorCheck::kSingular:
        return PhaseStatus::kSingular;
    }

    // Pricing. Candidate-list partial pricing is only productive while
    // pivots make progress; under a degenerate stall the stale candidates
    // churn, so fall back to full scans until the stall clears.
    const bool allow_partial =
        options.partial_pricing &&
        stall < std::max(8, options.bland_trigger / 4);
    PrimalPricer::Choice choice =
        pricer.ChooseEntering(view, allow_partial, bland);
    if (choice.entering < 0) {
      // The maintained reduced costs say optimal; prove it from exact ones
      // before declaring.
      refresh_reduced();
      choice = pricer.ChooseEntering(view, /*allow_partial=*/false, bland);
      if (choice.entering < 0) return PhaseStatus::kOptimal;
    }
    const int entering = choice.entering;
    const int direction_sign = choice.sign;

    // FTRAN: direction = B^-1 A_entering, hyper-sparse when the column's
    // reach is (the common case on warm sweeps).
    direction.Clear();
    for (const SparseEntry& e : w.cols.Column(entering)) {
      direction.values[e.index] = e.value;
      direction.pattern.push_back(e.index);
    }
    w.rep->FtranSparse(direction);

    // How far the entering variable can move before hitting its own bound
    // in the travel direction (finite even for a free-state variable with
    // finite bounds — presolve postsolve can produce those).
    const double entering_bound = direction_sign > 0
                                      ? w.ub[entering]
                                      : w.lb[entering];
    const double bound_flip_t =
        std::isfinite(entering_bound)
            ? std::abs(entering_bound - w.x[entering])
            : kInf;
    const PrimalRatioChoice ratio =
        PrimalRatioTest(direction, direction_sign, bound_flip_t, w.basis,
                        w.x, w.lb, w.ub, bland, options);

    if (ratio.unbounded) {
      if (phase1) return PhaseStatus::kSingular;
      // Unboundedness was derived from the maintained reduced costs;
      // re-verify against exact ones before declaring (a stale entering
      // choice plus an unblocked direction must not abort the solve).
      refresh_reduced();
      int sign = 0;
      if (PriceColumn(view, entering, sign) > 0.0 && sign == direction_sign) {
        return PhaseStatus::kUnbounded;
      }
      continue;  // maintained d was stale; re-price
    }
    const int leaving_row = ratio.leaving_row;
    const double best_t = ratio.step;

    // An unstable pivot right after a refactorization is as good as the
    // arithmetic gets; otherwise refactorize and re-price — tiny window
    // pivots are usually update-file noise, and treating noise as a pivot
    // corrupts the basis (it becomes singular in exact arithmetic).
    if (leaving_row >= 0 &&
        std::abs(direction.values[leaving_row]) < options.stable_pivot_tol &&
        w.rep->updates_since_refactor() > 0) {
      if (!factorize()) return PhaseStatus::kSingular;
      continue;
    }

    // Degeneracy bookkeeping; switch to Bland's rule on a long stall.
    if (best_t <= 1e-10) {
      if (++stall >= options.bland_trigger) bland = true;
    } else {
      stall = 0;
      bland = false;
    }

    const double step = direction_sign * best_t;
    if (leaving_row < 0) {
      // Bound flip: entering travels to its own bound; basis and reduced
      // costs unchanged.
      ForEachNonzero(direction, [&](int i, double di) {
        w.x[w.basis[i]] -= step * di;
      });
      w.x[entering] = entering_bound;
      w.state[entering] = direction_sign > 0 ? kAtUpper : kAtLower;
      continue;
    }

    // alpha = e_r^T B^-1 A (the pivot row) — it feeds both the
    // reduced-cost update and the Devex weights.
    ComputePivotRow(w, leaving_row, rho, alpha, alpha_touched, alpha_epoch);

    // Register the pivot before touching x/state so a failed update leaves
    // a consistent point to refactorize from.
    if (!w.rep->UpdateSparse(direction, leaving_row, options.pivot_tol)) {
      if (++update_failures > 3 || !factorize()) {
        return PhaseStatus::kSingular;
      }
      continue;  // re-price against the fresh factorization
    }
    update_failures = 0;

    ForEachNonzero(direction, [&](int i, double di) {
      w.x[w.basis[i]] -= step * di;
    });
    w.x[entering] += step;

    const int leaving_var = w.basis[leaving_row];
    // Snap the leaving variable exactly onto the bound it reached.
    if (ratio.leaving_at_upper) {
      w.x[leaving_var] = w.ub[leaving_var];
      w.state[leaving_var] = kAtUpper;
    } else {
      w.x[leaving_var] = w.lb[leaving_var];
      w.state[leaving_var] = kAtLower;
    }
    w.basis[leaving_row] = entering;
    w.state[entering] = kBasic;

    // Reduced-cost and Devex updates along the alpha row.
    const double pivot = direction.values[leaving_row];
    const double theta_d = d[entering] / pivot;
    for (int j : alpha_touched) {
      if (w.state[j] == kBasic) continue;
      d[j] -= theta_d * alpha[j].value;
    }
    d[leaving_var] = -theta_d;
    d[entering] = 0.0;
    pricer.OnPivot(view, entering, leaving_var, pivot, alpha_touched, alpha);
  }
}

// Bounded-variable dual simplex: restores primal feasibility of a dual
// feasible basis after bound changes (the warm-start workhorse — a child
// node's bound tightening leaves the parent's reduced costs intact, so the
// parent basis is dual feasible for the child). Maintains dual feasibility
// by a min-ratio test; "no eligible entering column" is a Farkas
// certificate of primal infeasibility. The leaving row is picked by
// DualPricer (dual Devex by default); the entering column and the bound
// flips by DualRatioTest.
DualStatus RunDualPhase(Work& w, const std::vector<double>& cost,
                        const SimplexOptions& options) {
  const int m = w.m;
  // A warm basis is near-optimal; long dual runs signal a stale hint.
  // (Measured: completing the repair of a basis remapped across a large
  // AppendUsers costs more pivots than a fresh cold solve, so bailing out
  // here is the right call there too — small appends repair well within
  // this budget.)
  const int64_t budget = options.warm_repair_pivot_cap > 0
                             ? options.warm_repair_pivot_cap
                             : 4 * static_cast<int64_t>(m) + 1000;
  SparseVector rho, direction, flip_delta;
  rho.Reset(m);
  direction.Reset(m);
  flip_delta.Reset(m);
  std::vector<SparseAccumCell> alpha(w.n_total);
  std::vector<int> alpha_touched;
  int64_t alpha_epoch = 0;
  // Reduced costs, maintained incrementally across pivots off the same
  // alpha row that drives the ratio test; recomputed at refactorizations.
  std::vector<double> d(w.n_total);
  DualPricer pricer(m, options);
  int update_failures = 0;

  auto refresh_reduced = [&]() {
    ComputeReducedCosts(w, cost, d);
    pricer.ResetReference();
  };
  refresh_reduced();

  auto factorize = [&]() {
    if (!FactorizeAndRecompute(w, options)) return false;
    refresh_reduced();
    return true;
  };
  int drift_countdown = options.drift_check_interval;

  for (int64_t iter = 0; iter < budget; ++iter) {
    if (w.iterations >= options.max_iterations) {
      return DualStatus::kIterationLimit;
    }

    // ChooseLeaving reads the incrementally-updated x, so drifted basics
    // would silently mis-drive the leaving choice and the final "primal
    // feasible" verdict.
    switch (MaybeRefactor(w, options, drift_countdown)) {
      case RefactorCheck::kNone:
        break;
      case RefactorCheck::kDone:
        refresh_reduced();
        break;
      case RefactorCheck::kSingular:
        return DualStatus::kSingular;
    }

    const DualPricer::Leaving leaving =
        pricer.ChooseLeaving(w.x, w.basis, w.lb, w.ub);
    if (leaving.slot < 0) return DualStatus::kOptimal;
    const int leaving_slot = leaving.slot;
    const bool below = leaving.below;

    ++w.iterations;
    ++w.dual_iterations;

    // The pivot row: feeds eligibility, the ratio test, and the
    // reduced-cost update.
    ComputePivotRow(w, leaving_slot, rho, alpha, alpha_touched, alpha_epoch);

    const DualRatioChoice ratio =
        DualRatioTest(alpha_touched, alpha, d, w.state, w.lb, w.ub, below,
                      leaving.violation, options);
    if (ratio.entering < 0) return DualStatus::kPrimalInfeasible;
    const int entering = ratio.entering;

    // FTRAN the entering column and validate its pivot BEFORE applying
    // the queued flips: a rejected pivot must leave the point untouched —
    // stranded flips without the matching dual step would silently break
    // dual feasibility (flipped columns would sit on the wrong side of
    // their reduced cost).
    direction.Clear();
    for (const SparseEntry& e : w.cols.Column(entering)) {
      direction.values[e.index] = e.value;
      direction.pattern.push_back(e.index);
    }
    w.rep->FtranSparse(direction);
    const double pivot = direction.values[leaving_slot];
    if (std::abs(pivot) <= options.pivot_tol ||
        (std::abs(pivot) < options.stable_pivot_tol &&
         w.rep->updates_since_refactor() > 0)) {
      if (++update_failures > 3 || !factorize()) {
        return DualStatus::kSingular;
      }
      continue;
    }

    if (!ratio.bound_flips.empty()) {
      // Apply all queued flips with a single combined FTRAN. Flips do not
      // change the basis, so `direction` above stays valid. The seed
      // pattern may repeat indices across overlapping columns — the
      // kernel deduplicates.
      flip_delta.Clear();
      for (int j : ratio.bound_flips) {
        const double delta =
            w.state[j] == kAtLower ? w.ub[j] - w.lb[j] : w.lb[j] - w.ub[j];
        for (const SparseEntry& e : w.cols.Column(j)) {
          flip_delta.values[e.index] += e.value * delta;
          flip_delta.pattern.push_back(e.index);
        }
        w.x[j] += delta;
        w.state[j] = w.state[j] == kAtLower ? kAtUpper : kAtLower;
      }
      w.rep->FtranSparse(flip_delta);
      ForEachNonzero(flip_delta, [&](int i, double fi) {
        w.x[w.basis[i]] -= fi;
      });
    }

    const int leaving_var = w.basis[leaving_slot];
    const double target = below ? w.lb[leaving_var] : w.ub[leaving_var];
    const double dt = (w.x[leaving_var] - target) / pivot;

    if (!w.rep->UpdateSparse(direction, leaving_slot, options.pivot_tol)) {
      if (++update_failures > 3 || !factorize()) {
        return DualStatus::kSingular;
      }
      continue;
    }
    update_failures = 0;

    // Dual Devex weights ride the same FTRAN column the pivot consumes.
    pricer.OnPivot(direction, leaving_slot);

    ForEachNonzero(direction, [&](int i, double di) {
      w.x[w.basis[i]] -= dt * di;
    });
    w.x[entering] += dt;
    w.x[leaving_var] = target;
    w.state[leaving_var] = below ? kAtLower : kAtUpper;
    w.basis[leaving_slot] = entering;
    w.state[entering] = kBasic;

    // Reduced-cost update along the alpha row (dual step theta keeps every
    // d on its feasible side by the min-ratio choice above).
    const double theta_d = d[entering] / pivot;
    for (int j : alpha_touched) {
      if (w.state[j] == kBasic) continue;
      d[j] -= theta_d * alpha[j].value;
    }
    d[leaving_var] = -theta_d;
    d[entering] = 0.0;
  }
  return DualStatus::kRepairAborted;
}

// Deterministic hash-based uniform in [0, 1) for cost perturbation.
double PerturbationUnit(uint64_t j) {
  uint64_t z = (j + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

// Applies the deterministic ~1e-9 relative anti-degeneracy perturbation.
// Warm and cold solves must use the *same* formula: warm starts assume the
// parent's (perturbed) reduced costs stay dual feasible for the child.
void PerturbCosts(std::vector<double>& cost) {
  for (size_t j = 0; j < cost.size(); ++j) {
    if (cost[j] != 0.0) {
      cost[j] *= 1.0 + 1e-9 * PerturbationUnit(j);
    }
  }
}

// Bounds, costs, rhs and the structural+slack triplets shared by cold and
// warm solves. Leaves state/x/basis untouched.
void SetupVarsAndSlacks(const LpModel& model, bool maximize, Work& w,
                        std::vector<Triplet>& triplets) {
  const double kInf = std::numeric_limits<double>::infinity();
  const int m = model.num_constraints();
  const int n_struct = model.num_variables();

  w.m = m;
  w.n_struct = n_struct;
  w.lb.reserve(n_struct + m);
  w.ub.reserve(n_struct + m);
  w.cost.reserve(n_struct + m);
  for (int j = 0; j < n_struct; ++j) {
    const Variable& v = model.variable(j);
    w.lb.push_back(v.lower);
    w.ub.push_back(v.upper);
    w.cost.push_back(maximize ? -v.objective : v.objective);
  }
  for (int r = 0; r < m; ++r) {
    switch (model.constraint(r).sense) {
      case ConstraintSense::kLessEqual:
        w.lb.push_back(0.0);
        w.ub.push_back(kInf);
        break;
      case ConstraintSense::kGreaterEqual:
        w.lb.push_back(-kInf);
        w.ub.push_back(0.0);
        break;
      case ConstraintSense::kEqual:
        w.lb.push_back(0.0);
        w.ub.push_back(0.0);
        break;
    }
    w.cost.push_back(0.0);
  }

  w.rhs.resize(m);
  w.rhs_scale = 1.0;
  for (int r = 0; r < m; ++r) {
    w.rhs[r] = model.constraint(r).rhs;
    w.rhs_scale = std::max(w.rhs_scale, 1.0 + std::abs(w.rhs[r]));
  }

  for (int r = 0; r < m; ++r) {
    for (const Coefficient& e : model.constraint(r).entries) {
      if (e.value != 0.0) triplets.push_back(Triplet{r, e.variable, e.value});
    }
  }
  for (int r = 0; r < m; ++r) {
    triplets.push_back(Triplet{r, n_struct + r, 1.0});
  }
}

// Equilibrates the assembled solve data in place (triplets still hold the
// structural + slack columns; artificials, added later in the cold path,
// live in the already-scaled space). Column j of the scaled system is
// C_j * original; slack columns take C = 1/R_r, which keeps their
// coefficient exactly 1.0 and their bound signs intact. Bounds divide by
// C, costs and rhs multiply — all by powers of two, so every transform is
// exact and BuildSolution's inverse mapping reproduces the unscaled
// numbers bit for bit.
void ApplyScaling(Work& w, std::vector<Triplet>& triplets) {
  const ScalingFactors& s = w.scaling;
  auto col_scale = [&](int j) {
    return j < w.n_struct ? s.col[j] : 1.0 / s.row[j - w.n_struct];
  };
  for (Triplet& t : triplets) {
    t.value *= s.row[t.row] * col_scale(t.col);
  }
  const int nb = w.n_struct + w.m;
  for (int j = 0; j < nb; ++j) {
    const double c = col_scale(j);
    // +-inf and 0 divide exactly; finite bounds divide by a power of two.
    w.lb[j] /= c;
    w.ub[j] /= c;
    w.cost[j] *= c;
  }
  w.rhs_scale = 1.0;
  for (int r = 0; r < w.m; ++r) {
    w.rhs[r] *= s.row[r];
    w.rhs_scale = std::max(w.rhs_scale, 1.0 + std::abs(w.rhs[r]));
  }
}

// The optimal basis over structural + slack variables. Degenerate basic
// artificials are swapped for their row's slack so the snapshot is usable
// as a warm-start hint.
Basis ExportBasis(const Work& w) {
  Basis basis;
  const int nb = w.n_struct + w.m;
  basis.state.assign(w.state.begin(), w.state.begin() + nb);
  basis.basic.reserve(w.m);
  for (int i = 0; i < w.m; ++i) {
    int v = w.basis[i];
    if (v >= nb) {
      const auto column = w.cols.Column(v);
      const int slack = w.n_struct + column.front().index;
      if (basis.state[slack] != kBasic) {
        v = slack;
      } else {
        v = -1;
        for (int r = 0; r < w.m; ++r) {
          if (basis.state[w.n_struct + r] != kBasic) {
            v = w.n_struct + r;
            break;
          }
        }
        if (v < 0) return Basis{};  // defensive; cannot happen
      }
      basis.state[v] = kBasic;
    }
    basis.basic.push_back(v);
  }
  return basis;
}

LpSolution BuildSolution(Work& w, const LpModel& model, SolveStatus status,
                         bool maximize) {
  SampleRepStats(w);  // the final update run ended here, not at a refactor
  LpSolution solution;
  solution.status = status;
  solution.iterations = w.iterations;
  solution.dual_iterations = w.dual_iterations;
  solution.refactorizations = w.refactorizations;
  solution.basis_repairs = w.basis_repairs;
  solution.factor_nnz = w.factor_nnz;
  solution.max_update_run = w.max_update_run;
  HarvestKernelStats(w, solution);
  if (status != SolveStatus::kOptimal) return solution;

  solution.x.assign(w.x.begin(), w.x.begin() + w.n_struct);
  // Final duals priced on the exact phase-2 costs.
  std::vector<double> cb(w.m);
  for (int i = 0; i < w.m; ++i) cb[i] = w.cost[w.basis[i]];
  solution.duals = cb;
  w.rep->Btran(solution.duals);
  // Undo the equilibration: x = C x', y = R y' (exact — powers of two).
  if (!w.scaling.row.empty()) {
    for (int j = 0; j < w.n_struct; ++j) solution.x[j] *= w.scaling.col[j];
    for (int r = 0; r < w.m; ++r) solution.duals[r] *= w.scaling.row[r];
  }
  solution.objective = model.ObjectiveValue(solution.x);
  if (maximize) {
    for (double& d : solution.duals) d = -d;
  }
  solution.basis = ExportBasis(w);
  return solution;
}

LpSolution SolveImpl(const LpModel& model, const SimplexOptions& options_) {
  const double kInf = std::numeric_limits<double>::infinity();
  const int m = model.num_constraints();
  const int n_struct = model.num_variables();
  const bool maximize = model.sense() == ObjectiveSense::kMaximize;

  Work w;
  std::vector<Triplet> triplets;
  SetupVarsAndSlacks(model, maximize, w, triplets);
  if (options_.scaling == SimplexOptions::Scaling::kEquilibrate) {
    w.scaling = ComputeEquilibration(m, n_struct, triplets);
    if (w.scaling.any) {
      ApplyScaling(w, triplets);
    } else {
      w.scaling = ScalingFactors{};  // all-ones; skip the back-mapping
    }
  }

  // --- Initial point: structurals at a bound, slacks basic. ----------------
  w.state.assign(n_struct + m, kBasic);
  w.x.assign(n_struct + m, 0.0);
  std::vector<double> residual = w.rhs;
  for (int j = 0; j < n_struct; ++j) {
    w.x[j] = InitialNonbasicValue(w.lb[j], w.ub[j], w.state[j]);
  }
  const bool scaled = !w.scaling.row.empty();
  for (int r = 0; r < m; ++r) {
    for (const Coefficient& e : model.constraint(r).entries) {
      // The residual lives in the scaled space the solve runs in.
      const double v = scaled ? e.value * w.scaling.row[r] *
                                    w.scaling.col[e.variable]
                              : e.value;
      residual[r] -= v * w.x[e.variable];
    }
  }

  // --- Decide per row: slack basic, or slack at bound + artificial. --------
  w.basis.resize(m);
  struct PendingArtificial {
    int row;
    double coefficient;
    double value;
  };
  std::vector<PendingArtificial> artificials;
  for (int r = 0; r < m; ++r) {
    const int slack = n_struct + r;
    const double v = residual[r];
    if (v >= w.lb[slack] && v <= w.ub[slack]) {
      w.basis[r] = slack;
      w.state[slack] = kBasic;
      w.x[slack] = v;
    } else if (v > w.ub[slack]) {
      // Slack pinned at its upper bound; artificial absorbs the excess.
      w.state[slack] = kAtUpper;
      w.x[slack] = w.ub[slack];
      artificials.push_back(PendingArtificial{r, 1.0, v - w.ub[slack]});
    } else {
      w.state[slack] = kAtLower;
      w.x[slack] = w.lb[slack];
      artificials.push_back(PendingArtificial{r, -1.0, w.lb[slack] - v});
    }
  }

  w.artificial_begin = n_struct + m;
  std::vector<double> phase1_cost(w.lb.size(), 0.0);
  for (const PendingArtificial& a : artificials) {
    const int var = static_cast<int>(w.lb.size());
    w.lb.push_back(0.0);
    w.ub.push_back(kInf);
    w.cost.push_back(0.0);
    phase1_cost.push_back(1.0);
    w.state.push_back(kBasic);
    w.x.push_back(a.value);
    w.basis[a.row] = var;
    triplets.push_back(Triplet{a.row, var, a.coefficient});
  }
  w.n_total = static_cast<int>(w.lb.size());
  w.cols = SparseMatrix(m, w.n_total, std::move(triplets));

  w.rep = MakeBasisRep(options_);
  auto finish = [&](SolveStatus status) {
    return BuildSolution(w, model, status, maximize);
  };
  if (!FactorizeAndRecompute(w, options_)) {
    return finish(SolveStatus::kNumericalFailure);
  }

  // Anti-degeneracy cost perturbation: tiny deterministic relative noise on
  // every nonzero cost breaks ties among the (often thousands of) columns
  // that price identically in problems like O-UMP. `finish` reports the
  // objective and duals from the exact costs.
  std::vector<double> phase2_cost = w.cost;
  if (options_.perturb_costs) {
    PerturbCosts(phase2_cost);
    PerturbCosts(phase1_cost);
  }

  // --- Phase 1 -------------------------------------------------------------
  if (!artificials.empty()) {
    PhaseStatus status = RunPhase(w, phase1_cost, /*phase1=*/true, options_);
    if (status == PhaseStatus::kIterationLimit) {
      return finish(SolveStatus::kIterationLimit);
    }
    if (status == PhaseStatus::kSingular ||
        status == PhaseStatus::kUnbounded) {
      return finish(SolveStatus::kNumericalFailure);
    }
    double infeasibility = 0.0;
    for (int j = w.artificial_begin; j < w.n_total; ++j) {
      infeasibility += w.x[j];
    }
    if (infeasibility > options_.feasibility_tol) {
      return finish(SolveStatus::kInfeasible);
    }
    // Pin artificials at zero so they never move again; basic artificials
    // (degenerate, value ~0) stay basic but fixed.
    for (int j = w.artificial_begin; j < w.n_total; ++j) {
      w.lb[j] = 0.0;
      w.ub[j] = 0.0;
      if (w.state[j] != kBasic) {
        w.x[j] = 0.0;
        w.state[j] = kAtLower;
      }
    }
  }

  // --- Phase 2 -------------------------------------------------------------
  PhaseStatus status = RunPhase(w, phase2_cost, /*phase1=*/false, options_);
  switch (status) {
    case PhaseStatus::kOptimal:
      return finish(SolveStatus::kOptimal);
    case PhaseStatus::kUnbounded:
      return finish(SolveStatus::kUnbounded);
    case PhaseStatus::kIterationLimit:
      return finish(SolveStatus::kIterationLimit);
    case PhaseStatus::kSingular:
      return finish(SolveStatus::kNumericalFailure);
  }
  return finish(SolveStatus::kNumericalFailure);
}

// Warm start: rebuild the point around the hinted basis, repair dual
// feasibility by bound flips, restore primal feasibility with the dual
// simplex, then let a primal phase certify optimality. Sets `fallback`
// when the hint cannot be used (the caller then cold-solves); the returned
// solution still carries the iteration counters spent.
LpSolution WarmSolveImpl(const LpModel& model, const SimplexOptions& options_,
                         const Basis& hint, bool& fallback) {
  fallback = false;
  const int m = model.num_constraints();
  const int n_struct = model.num_variables();
  const bool maximize = model.sense() == ObjectiveSense::kMaximize;

  LpSolution failed;  // counter carrier for fallback returns
  if (static_cast<int>(hint.state.size()) != n_struct + m ||
      static_cast<int>(hint.basic.size()) != m) {
    fallback = true;
    return failed;
  }

  Work w;
  std::vector<Triplet> triplets;
  SetupVarsAndSlacks(model, maximize, w, triplets);
  // Equilibration and warm starts compose transparently: the factors
  // depend only on the (identical) matrix coefficients, and the hint holds
  // only scale-invariant statuses.
  if (options_.scaling == SimplexOptions::Scaling::kEquilibrate) {
    w.scaling = ComputeEquilibration(m, n_struct, triplets);
    if (w.scaling.any) {
      ApplyScaling(w, triplets);
    } else {
      w.scaling = ScalingFactors{};
    }
  }
  w.n_total = n_struct + m;
  w.artificial_begin = w.n_total;
  w.cols = SparseMatrix(m, w.n_total, std::move(triplets));

  // Hint consistency: every listed basic variable in range and marked
  // basic, no duplicates, exactly m basics.
  w.state = hint.state;
  w.basis = hint.basic;
  {
    int basic_count = 0;
    for (int j = 0; j < w.n_total; ++j) {
      if (w.state[j] == kBasic) ++basic_count;
    }
    std::vector<bool> seen(w.n_total, false);
    bool ok = basic_count == m;
    for (int v : w.basis) {
      if (v < 0 || v >= w.n_total || w.state[v] != kBasic || seen[v]) {
        ok = false;
        break;
      }
      seen[v] = true;
    }
    if (!ok) {
      fallback = true;
      return failed;
    }
  }

  // Nonbasic values under the *current* bounds; a state whose bound is
  // gone (e.g. relaxed to infinity) moves to a usable one.
  w.x.assign(w.n_total, 0.0);
  for (int j = 0; j < w.n_total; ++j) {
    switch (w.state[j]) {
      case kBasic:
        break;
      case kAtLower:
        if (std::isfinite(w.lb[j])) {
          w.x[j] = w.lb[j];
        } else if (std::isfinite(w.ub[j])) {
          w.state[j] = kAtUpper;
          w.x[j] = w.ub[j];
        } else {
          w.state[j] = kFree;
        }
        break;
      case kAtUpper:
        if (std::isfinite(w.ub[j])) {
          w.x[j] = w.ub[j];
        } else if (std::isfinite(w.lb[j])) {
          w.state[j] = kAtLower;
          w.x[j] = w.lb[j];
        } else {
          w.state[j] = kFree;
        }
        break;
      case kFree:
        if (0.0 < w.lb[j]) {
          w.state[j] = kAtLower;
          w.x[j] = w.lb[j];
        } else if (0.0 > w.ub[j]) {
          w.state[j] = kAtUpper;
          w.x[j] = w.ub[j];
        }
        break;
    }
  }

  w.rep = MakeBasisRep(options_);
  // A singular hint is repaired in place under the repair policy (the
  // dependent columns leave for row slacks — still a warm start); only an
  // unrepairable one falls back to a cold solve.
  if (!FactorizeAndRecompute(w, options_)) {
    fallback = true;
    failed.basis_repairs = w.basis_repairs;
    return failed;
  }

  std::vector<double> phase2_cost = w.cost;
  if (options_.perturb_costs) PerturbCosts(phase2_cost);

  // Dual feasibility repair: bound changes never move reduced costs, but a
  // state flip above (or a hint from a structurally shifted model — new
  // columns, changed coefficients after AppendUsers) can leave a nonbasic
  // variable on the wrong side. Flip it to its other bound when one exists;
  // otherwise shift its cost so its reduced cost is zero — the dual phase
  // then runs on the shifted costs, and the concluding primal phase (which
  // prices the true costs) pulls the shifted columns into the basis.
  std::vector<double> dual_cost = phase2_cost;
  {
    std::vector<double> reduced;
    ComputeReducedCosts(w, phase2_cost, reduced);
    const double dual_tol = 10.0 * options_.optimality_tol;
    bool flipped = false;
    for (int j = 0; j < w.n_total; ++j) {
      const VarStatus st = w.state[j];
      if (st == kBasic || w.lb[j] == w.ub[j]) continue;
      const double d = reduced[j];
      if (st == kAtLower && d < -dual_tol) {
        if (std::isfinite(w.ub[j])) {
          w.state[j] = kAtUpper;
          w.x[j] = w.ub[j];
          flipped = true;
        } else {
          dual_cost[j] -= d;
        }
      } else if (st == kAtUpper && d > dual_tol) {
        if (std::isfinite(w.lb[j])) {
          w.state[j] = kAtLower;
          w.x[j] = w.lb[j];
          flipped = true;
        } else {
          dual_cost[j] -= d;
        }
      } else if (st == kFree && std::abs(d) > dual_tol) {
        dual_cost[j] -= d;
      }
    }
    if (flipped) RecomputeBasics(w);
  }

  auto finish = [&](SolveStatus status) {
    LpSolution solution = BuildSolution(w, model, status, maximize);
    solution.warm_started = true;
    return solution;
  };
  // The caller folds these counters into the cold solve it runs next.
  auto fall_back = [&](bool repair_aborted = false) {
    fallback = true;
    SampleRepStats(w);
    failed.iterations = w.iterations;
    failed.dual_iterations = w.dual_iterations;
    failed.refactorizations = w.refactorizations;
    failed.basis_repairs = w.basis_repairs;
    failed.repair_aborted = repair_aborted;
    failed.factor_nnz = w.factor_nnz;
    failed.max_update_run = w.max_update_run;
    HarvestKernelStats(w, failed);
    return failed;
  };

  switch (RunDualPhase(w, dual_cost, options_)) {
    case DualStatus::kOptimal:
      break;
    case DualStatus::kPrimalInfeasible:
      if (options_.confirm_warm_infeasible) return fall_back();
      return finish(SolveStatus::kInfeasible);
    case DualStatus::kRepairAborted:
      return fall_back(/*repair_aborted=*/true);
    case DualStatus::kIterationLimit:
    case DualStatus::kSingular:
      return fall_back();
  }

  switch (RunPhase(w, phase2_cost, /*phase1=*/false, options_)) {
    case PhaseStatus::kOptimal:
      return finish(SolveStatus::kOptimal);
    case PhaseStatus::kUnbounded:
      return finish(SolveStatus::kUnbounded);
    case PhaseStatus::kIterationLimit:
    case PhaseStatus::kSingular:
      // A warm basis that cannot be polished to optimality is stale;
      // the cold path decides the real status.
      break;
  }
  return fall_back();
}

LpSolution SolveWithRetry(const LpModel& model,
                          const SimplexOptions& options) {
  LpSolution first = SolveImpl(model, options);
  if (first.status != SolveStatus::kNumericalFailure) return first;
  // One conservative retry: dense basis inverse, aggressive
  // refactorization, early Bland, larger pivots.
  PRIVSAN_LOG(Warning)
      << "simplex numerical failure; retrying with conservative settings";
  SimplexOptions retry = options;
  retry.basis_kind = SimplexOptions::BasisKind::kDense;
  retry.refactor_max_updates = 20;
  retry.bland_trigger = 8;
  retry.pivot_tol = 1e-8;
  retry.partial_pricing = false;
  LpSolution second = SolveImpl(model, retry);
  second.iterations += first.iterations;
  second.refactorizations += first.refactorizations;
  second.basis_repairs += first.basis_repairs;
  second.factor_nnz = std::max(second.factor_nnz, first.factor_nnz);
  second.max_update_run = std::max(second.max_update_run,
                                   first.max_update_run);
  MergeKernelStats(second, first);
  return second;
}

LpSolution ColdSolve(const LpModel& model, const SimplexOptions& options) {
  if (!options.presolve) return SolveWithRetry(model, options);
  LpModel reduced;
  PresolveInfo info = BuildPresolve(model, &reduced);
  if (info.infeasible) {
    LpSolution solution;
    solution.status = SolveStatus::kInfeasible;
    return solution;
  }
  if (info.NoOp()) return SolveWithRetry(model, options);
  LpSolution solution = SolveWithRetry(reduced, options);
  PostsolveSolution(model, info, &solution);
  return solution;
}

}  // namespace

SimplexSolver::SimplexSolver(SimplexOptions options) : options_(options) {}

LpSolution SimplexSolver::Solve(const LpModel& model) const {
  return Solve(model, nullptr);
}

LpSolution SimplexSolver::Solve(const LpModel& model,
                                const Basis* hint) const {
  LpSolution warm_counters;
  if (hint != nullptr && !hint->empty()) {
    bool fallback = false;
    LpSolution warm = WarmSolveImpl(model, options_, *hint, fallback);
    if (!fallback) return warm;
    warm_counters = std::move(warm);
  }
  LpSolution cold = ColdSolve(model, options_);
  cold.iterations += warm_counters.iterations;
  cold.dual_iterations += warm_counters.dual_iterations;
  cold.refactorizations += warm_counters.refactorizations;
  cold.basis_repairs += warm_counters.basis_repairs;
  cold.repair_aborted = warm_counters.repair_aborted;
  cold.factor_nnz = std::max(cold.factor_nnz, warm_counters.factor_nnz);
  cold.max_update_run =
      std::max(cold.max_update_run, warm_counters.max_update_run);
  MergeKernelStats(cold, warm_counters);
  return cold;
}

}  // namespace lp
}  // namespace privsan
