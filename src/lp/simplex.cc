#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "lp/sparse_matrix.h"
#include "util/logging.h"

namespace privsan {
namespace lp {

const char* SolveStatusToString(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "Optimal";
    case SolveStatus::kInfeasible:
      return "Infeasible";
    case SolveStatus::kUnbounded:
      return "Unbounded";
    case SolveStatus::kIterationLimit:
      return "IterationLimit";
    case SolveStatus::kNumericalFailure:
      return "NumericalFailure";
  }
  return "?";
}

namespace {

enum VarState : int8_t {
  kBasic = 0,
  kNonbasicLower = 1,
  kNonbasicUpper = 2,
  kNonbasicFree = 3,
};

// All mutable solver state for one Solve() call.
struct Work {
  int m = 0;        // rows
  int n_total = 0;  // structural + slacks + artificials
  int n_struct = 0;
  int artificial_begin = 0;  // first artificial index (== n_total if none)

  SparseMatrix cols;          // m x n_total
  std::vector<double> lb, ub;  // per variable
  std::vector<double> cost;    // phase-2 minimization costs
  std::vector<double> rhs;     // row right-hand sides

  std::vector<double> x;       // current value of every variable
  std::vector<int> basis;      // row -> basic variable
  std::vector<int8_t> state;   // variable -> VarState
  std::vector<double> binv;    // dense row-major m x m basis inverse

  int64_t iterations = 0;
  int refactorizations = 0;
};

enum class PhaseStatus { kOptimal, kUnbounded, kIterationLimit, kSingular };

double InitialNonbasicValue(double lower, double upper, int8_t& state) {
  if (std::isfinite(lower)) {
    state = kNonbasicLower;
    return lower;
  }
  if (std::isfinite(upper)) {
    state = kNonbasicUpper;
    return upper;
  }
  state = kNonbasicFree;
  return 0.0;
}

// Recomputes binv from the current basis (Gauss-Jordan with partial
// pivoting) and the basic variable values from the nonbasic ones.
// Returns false if the basis matrix is numerically singular.
bool Refactorize(Work& w) {
  const int m = w.m;
  ++w.refactorizations;

  // Dense B from basis columns.
  std::vector<double> dense(static_cast<size_t>(m) * m, 0.0);
  for (int i = 0; i < m; ++i) {
    for (const SparseEntry& e : w.cols.Column(w.basis[i])) {
      dense[static_cast<size_t>(e.index) * m + i] = e.value;
    }
  }
  // Invert: eliminate into identity.
  std::vector<double>& inv = w.binv;
  inv.assign(static_cast<size_t>(m) * m, 0.0);
  for (int i = 0; i < m; ++i) inv[static_cast<size_t>(i) * m + i] = 1.0;

  for (int col = 0; col < m; ++col) {
    // Partial pivot.
    int pivot_row = col;
    double best = std::abs(dense[static_cast<size_t>(col) * m + col]);
    for (int r = col + 1; r < m; ++r) {
      double v = std::abs(dense[static_cast<size_t>(r) * m + col]);
      if (v > best) {
        best = v;
        pivot_row = r;
      }
    }
    if (best < 1e-12) return false;
    if (pivot_row != col) {
      for (int k = 0; k < m; ++k) {
        std::swap(dense[static_cast<size_t>(pivot_row) * m + k],
                  dense[static_cast<size_t>(col) * m + k]);
        std::swap(inv[static_cast<size_t>(pivot_row) * m + k],
                  inv[static_cast<size_t>(col) * m + k]);
      }
    }
    const double pivot = dense[static_cast<size_t>(col) * m + col];
    const double inv_pivot = 1.0 / pivot;
    for (int k = 0; k < m; ++k) {
      dense[static_cast<size_t>(col) * m + k] *= inv_pivot;
      inv[static_cast<size_t>(col) * m + k] *= inv_pivot;
    }
    for (int r = 0; r < m; ++r) {
      if (r == col) continue;
      const double factor = dense[static_cast<size_t>(r) * m + col];
      if (factor == 0.0) continue;
      for (int k = 0; k < m; ++k) {
        dense[static_cast<size_t>(r) * m + k] -=
            factor * dense[static_cast<size_t>(col) * m + k];
        inv[static_cast<size_t>(r) * m + k] -=
            factor * inv[static_cast<size_t>(col) * m + k];
      }
    }
  }

  // x_B = B^-1 (rhs - sum over nonbasic j of A_j x_j).
  std::vector<double> effective = w.rhs;
  for (int j = 0; j < w.n_total; ++j) {
    if (w.state[j] == kBasic || w.x[j] == 0.0) continue;
    w.cols.AddColumnTo(j, -w.x[j], effective);
  }
  for (int i = 0; i < m; ++i) {
    const double* row = &w.binv[static_cast<size_t>(i) * m];
    double v = 0.0;
    for (int k = 0; k < m; ++k) v += row[k] * effective[k];
    w.x[w.basis[i]] = v;
  }
  return true;
}

// One simplex phase: minimize `cost` over the current basis until optimal.
// In phase 1 `cost` is 1 on artificials; unboundedness there indicates a
// numerical problem and is reported as kSingular.
PhaseStatus RunPhase(Work& w, const std::vector<double>& cost, bool phase1,
                     const SimplexOptions& options) {
  const int m = w.m;
  const double kInf = std::numeric_limits<double>::infinity();

  std::vector<double> duals(m);
  std::vector<double> direction(m);
  int stall = 0;
  bool bland = false;
  int64_t since_refactor = 0;

  while (true) {
    if (w.iterations >= options.max_iterations) {
      return PhaseStatus::kIterationLimit;
    }
    ++w.iterations;
    ++since_refactor;
    if (since_refactor >= options.refactor_interval) {
      if (!Refactorize(w)) return PhaseStatus::kSingular;
      since_refactor = 0;
    }

    // Duals: y^T = c_B^T B^-1. Skip zero-cost basics.
    std::fill(duals.begin(), duals.end(), 0.0);
    for (int i = 0; i < m; ++i) {
      const double cb = cost[w.basis[i]];
      if (cb == 0.0) continue;
      const double* row = &w.binv[static_cast<size_t>(i) * m];
      for (int k = 0; k < m; ++k) duals[k] += cb * row[k];
    }

    // Pricing: pick the entering variable.
    int entering = -1;
    int direction_sign = 0;  // +1: entering increases, -1: decreases
    double best_violation = options.optimality_tol;
    for (int j = 0; j < w.n_total; ++j) {
      const int8_t st = w.state[j];
      if (st == kBasic) continue;
      if (w.lb[j] == w.ub[j]) continue;  // fixed, cannot move
      const double reduced = cost[j] - w.cols.ColumnDot(j, duals);
      double violation = 0.0;
      int sign = 0;
      if ((st == kNonbasicLower || st == kNonbasicFree) &&
          reduced < -options.optimality_tol) {
        violation = -reduced;
        sign = +1;
      } else if ((st == kNonbasicUpper || st == kNonbasicFree) &&
                 reduced > options.optimality_tol) {
        violation = reduced;
        sign = -1;
      }
      if (sign == 0) continue;
      if (bland) {  // first improving index
        entering = j;
        direction_sign = sign;
        break;
      }
      if (violation > best_violation) {
        best_violation = violation;
        entering = j;
        direction_sign = sign;
      }
    }
    if (entering < 0) return PhaseStatus::kOptimal;

    // FTRAN: direction = B^-1 A_entering.
    auto column = w.cols.Column(entering);
    for (int i = 0; i < m; ++i) {
      const double* row = &w.binv[static_cast<size_t>(i) * m];
      double v = 0.0;
      for (const SparseEntry& e : column) v += e.value * row[e.index];
      direction[i] = v;
    }

    // Ratio test, two-pass Harris style. The entering variable moves by
    // t * direction_sign >= 0; basic variable in row i changes by
    // -direction_sign * t * direction[i]. Pass 1 finds the tightest step
    // t_row_min over the rows; pass 2 re-scans rows whose ratio lies within
    // a small window above t_row_min and keeps the one with the largest
    // pivot magnitude (numerical stability) — or, under Bland's rule, the
    // smallest basic variable index (termination).
    const double bound_flip_t =
        (std::isfinite(w.lb[entering]) && std::isfinite(w.ub[entering]))
            ? w.ub[entering] - w.lb[entering]
            : kInf;
    auto row_ratio = [&](int i) -> double {
      const double delta = direction_sign * direction[i];
      const int bv = w.basis[i];
      if (delta > options.pivot_tol) {
        if (!std::isfinite(w.lb[bv])) return kInf;
        return std::max((w.x[bv] - w.lb[bv]) / delta, 0.0);
      }
      if (delta < -options.pivot_tol) {
        if (!std::isfinite(w.ub[bv])) return kInf;
        return std::max((w.ub[bv] - w.x[bv]) / (-delta), 0.0);
      }
      return kInf;
    };

    double t_row_min = kInf;
    for (int i = 0; i < m; ++i) t_row_min = std::min(t_row_min, row_ratio(i));

    if (!std::isfinite(t_row_min) && !std::isfinite(bound_flip_t)) {
      return phase1 ? PhaseStatus::kSingular : PhaseStatus::kUnbounded;
    }

    int leaving_row = -1;
    bool leaving_at_upper = false;
    double best_t = bound_flip_t;
    if (t_row_min <= bound_flip_t) {
      const double window =
          t_row_min + std::max(1e-10, 1e-7 * t_row_min);
      double best_pivot = 0.0;
      int best_bv = std::numeric_limits<int>::max();
      for (int i = 0; i < m; ++i) {
        const double t = row_ratio(i);
        if (t > window) continue;
        const double pivot = std::abs(direction[i]);
        const bool take = bland ? w.basis[i] < best_bv : pivot > best_pivot;
        if (leaving_row < 0 || take) {
          leaving_row = i;
          best_pivot = pivot;
          best_bv = w.basis[i];
          leaving_at_upper = direction_sign * direction[i] < 0.0;
          best_t = std::min(t, bound_flip_t);
        }
      }
    }

    // Degeneracy bookkeeping; switch to Bland's rule on a long stall.
    if (best_t <= 1e-10) {
      if (++stall >= options.bland_trigger) bland = true;
    } else {
      stall = 0;
      bland = false;
    }

    // Apply the step.
    const double step = direction_sign * best_t;
    if (leaving_row < 0) {
      // Bound flip: entering moves across its range, basis unchanged.
      for (int i = 0; i < m; ++i) {
        if (direction[i] != 0.0) w.x[w.basis[i]] -= step * direction[i];
      }
      w.x[entering] += step;
      w.state[entering] =
          w.state[entering] == kNonbasicLower ? kNonbasicUpper
                                              : kNonbasicLower;
      continue;
    }

    for (int i = 0; i < m; ++i) {
      if (direction[i] != 0.0) w.x[w.basis[i]] -= step * direction[i];
    }
    w.x[entering] += step;

    const int leaving_var = w.basis[leaving_row];
    // Snap the leaving variable exactly onto the bound it reached.
    if (leaving_at_upper) {
      w.x[leaving_var] = w.ub[leaving_var];
      w.state[leaving_var] = kNonbasicUpper;
    } else {
      w.x[leaving_var] = w.lb[leaving_var];
      w.state[leaving_var] = kNonbasicLower;
    }
    w.basis[leaving_row] = entering;
    w.state[entering] = kBasic;

    // Basis inverse update: B_new^-1 = E * B^-1 with the eta column taken
    // from `direction` and pivot row `leaving_row`.
    const double pivot = direction[leaving_row];
    double* pivot_row_ptr = &w.binv[static_cast<size_t>(leaving_row) * m];
    const double inv_pivot = 1.0 / pivot;
    for (int k = 0; k < m; ++k) pivot_row_ptr[k] *= inv_pivot;
    for (int i = 0; i < m; ++i) {
      if (i == leaving_row) continue;
      const double factor = direction[i];
      if (factor == 0.0) continue;
      double* row = &w.binv[static_cast<size_t>(i) * m];
      for (int k = 0; k < m; ++k) row[k] -= factor * pivot_row_ptr[k];
    }
  }
}

// Deterministic hash-based uniform in [0, 1) for cost perturbation.
double PerturbationUnit(uint64_t j) {
  uint64_t z = (j + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

LpSolution SolveImpl(const LpModel& model, const SimplexOptions& options_) {
  const double kInf = std::numeric_limits<double>::infinity();
  LpSolution solution;

  const int m = model.num_constraints();
  const int n_struct = model.num_variables();
  const bool maximize = model.sense() == ObjectiveSense::kMaximize;

  Work w;
  w.m = m;
  w.n_struct = n_struct;

  // --- Variables: structural, then one slack per row. ----------------------
  w.lb.reserve(n_struct + m);
  w.ub.reserve(n_struct + m);
  w.cost.reserve(n_struct + m);
  for (int j = 0; j < n_struct; ++j) {
    const Variable& v = model.variable(j);
    w.lb.push_back(v.lower);
    w.ub.push_back(v.upper);
    w.cost.push_back(maximize ? -v.objective : v.objective);
  }
  for (int r = 0; r < m; ++r) {
    switch (model.constraint(r).sense) {
      case ConstraintSense::kLessEqual:
        w.lb.push_back(0.0);
        w.ub.push_back(kInf);
        break;
      case ConstraintSense::kGreaterEqual:
        w.lb.push_back(-kInf);
        w.ub.push_back(0.0);
        break;
      case ConstraintSense::kEqual:
        w.lb.push_back(0.0);
        w.ub.push_back(0.0);
        break;
    }
    w.cost.push_back(0.0);
  }

  // --- Initial point: structurals at a bound, slacks basic. ----------------
  w.state.assign(n_struct + m, kBasic);
  w.x.assign(n_struct + m, 0.0);
  w.rhs.resize(m);
  std::vector<double> residual(m);
  for (int r = 0; r < m; ++r) {
    w.rhs[r] = model.constraint(r).rhs;
    residual[r] = w.rhs[r];
  }
  for (int j = 0; j < n_struct; ++j) {
    w.x[j] = InitialNonbasicValue(w.lb[j], w.ub[j], w.state[j]);
  }
  for (int r = 0; r < m; ++r) {
    for (const Coefficient& e : model.constraint(r).entries) {
      residual[r] -= e.value * w.x[e.variable];
    }
  }

  // --- Decide per row: slack basic, or slack at bound + artificial. --------
  std::vector<Triplet> triplets;
  for (int r = 0; r < m; ++r) {
    for (const Coefficient& e : model.constraint(r).entries) {
      if (e.value != 0.0) triplets.push_back(Triplet{r, e.variable, e.value});
    }
  }
  for (int r = 0; r < m; ++r) {
    triplets.push_back(Triplet{r, n_struct + r, 1.0});
  }

  w.basis.resize(m);
  struct PendingArtificial {
    int row;
    double coefficient;
    double value;
  };
  std::vector<PendingArtificial> artificials;
  for (int r = 0; r < m; ++r) {
    const int slack = n_struct + r;
    const double v = residual[r];
    if (v >= w.lb[slack] && v <= w.ub[slack]) {
      w.basis[r] = slack;
      w.state[slack] = kBasic;
      w.x[slack] = v;
    } else if (v > w.ub[slack]) {
      // Slack pinned at its upper bound; artificial absorbs the excess.
      w.state[slack] = kNonbasicUpper;
      w.x[slack] = w.ub[slack];
      artificials.push_back(PendingArtificial{r, 1.0, v - w.ub[slack]});
    } else {
      w.state[slack] = kNonbasicLower;
      w.x[slack] = w.lb[slack];
      artificials.push_back(PendingArtificial{r, -1.0, w.lb[slack] - v});
    }
  }

  w.artificial_begin = n_struct + m;
  std::vector<double> phase1_cost(w.lb.size(), 0.0);
  for (const PendingArtificial& a : artificials) {
    const int var = static_cast<int>(w.lb.size());
    w.lb.push_back(0.0);
    w.ub.push_back(kInf);
    w.cost.push_back(0.0);
    phase1_cost.push_back(1.0);
    w.state.push_back(kBasic);
    w.x.push_back(a.value);
    w.basis[a.row] = var;
    triplets.push_back(Triplet{a.row, var, a.coefficient});
  }
  w.n_total = static_cast<int>(w.lb.size());
  w.cols = SparseMatrix(m, w.n_total, std::move(triplets));

  // Basis is diagonal (+-1); its inverse is the same diagonal.
  w.binv.assign(static_cast<size_t>(m) * m, 0.0);
  for (int r = 0; r < m; ++r) {
    double diag = 1.0;
    for (const SparseEntry& e : w.cols.Column(w.basis[r])) {
      if (e.index == r) diag = e.value;
    }
    w.binv[static_cast<size_t>(r) * m + r] = 1.0 / diag;
  }

  auto finish = [&](SolveStatus status) {
    solution.status = status;
    solution.iterations = w.iterations;
    solution.refactorizations = w.refactorizations;
    if (status == SolveStatus::kOptimal) {
      solution.x.assign(w.x.begin(), w.x.begin() + n_struct);
      solution.objective = model.ObjectiveValue(solution.x);
      // Final duals priced on the phase-2 costs.
      solution.duals.assign(m, 0.0);
      for (int i = 0; i < m; ++i) {
        const double cb = w.cost[w.basis[i]];
        if (cb == 0.0) continue;
        const double* row = &w.binv[static_cast<size_t>(i) * m];
        for (int k = 0; k < m; ++k) solution.duals[k] += cb * row[k];
      }
      if (maximize) {
        for (double& d : solution.duals) d = -d;
      }
    }
    return solution;
  };

  // Anti-degeneracy cost perturbation: tiny deterministic relative noise on
  // every nonzero cost breaks ties among the (often thousands of) columns
  // that price identically in problems like O-UMP. `finish` reports the
  // objective and duals from the exact costs.
  std::vector<double> phase2_cost = w.cost;
  if (options_.perturb_costs) {
    for (size_t j = 0; j < phase2_cost.size(); ++j) {
      if (phase2_cost[j] != 0.0) {
        phase2_cost[j] *= 1.0 + 1e-9 * PerturbationUnit(j);
      }
    }
    for (size_t j = 0; j < phase1_cost.size(); ++j) {
      if (phase1_cost[j] != 0.0) {
        phase1_cost[j] *= 1.0 + 1e-9 * PerturbationUnit(j);
      }
    }
  }

  // --- Phase 1 -------------------------------------------------------------
  if (!artificials.empty()) {
    PhaseStatus status = RunPhase(w, phase1_cost, /*phase1=*/true, options_);
    if (status == PhaseStatus::kIterationLimit) {
      return finish(SolveStatus::kIterationLimit);
    }
    if (status == PhaseStatus::kSingular ||
        status == PhaseStatus::kUnbounded) {
      return finish(SolveStatus::kNumericalFailure);
    }
    double infeasibility = 0.0;
    for (int j = w.artificial_begin; j < w.n_total; ++j) {
      infeasibility += w.x[j];
    }
    if (infeasibility > options_.feasibility_tol) {
      return finish(SolveStatus::kInfeasible);
    }
    // Pin artificials at zero so they never move again; basic artificials
    // (degenerate, value ~0) stay basic but fixed.
    for (int j = w.artificial_begin; j < w.n_total; ++j) {
      w.lb[j] = 0.0;
      w.ub[j] = 0.0;
      if (w.state[j] != kBasic) {
        w.x[j] = 0.0;
        w.state[j] = kNonbasicLower;
      }
    }
  }

  // --- Phase 2 -------------------------------------------------------------
  PhaseStatus status = RunPhase(w, phase2_cost, /*phase1=*/false, options_);
  switch (status) {
    case PhaseStatus::kOptimal:
      return finish(SolveStatus::kOptimal);
    case PhaseStatus::kUnbounded:
      return finish(SolveStatus::kUnbounded);
    case PhaseStatus::kIterationLimit:
      return finish(SolveStatus::kIterationLimit);
    case PhaseStatus::kSingular:
      return finish(SolveStatus::kNumericalFailure);
  }
  return finish(SolveStatus::kNumericalFailure);
}

}  // namespace

SimplexSolver::SimplexSolver(SimplexOptions options) : options_(options) {}

LpSolution SimplexSolver::Solve(const LpModel& model) const {
  LpSolution solution = SolveImpl(model, options_);
  if (solution.status != SolveStatus::kNumericalFailure) return solution;
  // One conservative retry: refactorize aggressively, lean on Bland's rule
  // early, and demand larger pivots.
  PRIVSAN_LOG(Warning)
      << "simplex numerical failure; retrying with conservative settings";
  SimplexOptions retry = options_;
  retry.refactor_interval = 200;
  retry.bland_trigger = 8;
  retry.pivot_tol = 1e-8;
  LpSolution second = SolveImpl(model, retry);
  second.iterations += solution.iterations;
  second.refactorizations += solution.refactorizations;
  return second;
}

}  // namespace lp
}  // namespace privsan
