#include "lp/pricing.h"

#include <algorithm>
#include <cmath>

namespace privsan {
namespace lp {

double PriceColumn(const PricingView& view, int j, int& sign) {
  sign = 0;
  const VarStatus st = view.state[j];
  if (st == VarStatus::kBasic || view.lower[j] == view.upper[j]) return 0.0;
  const double reduced = view.reduced_costs[j];
  if ((st == VarStatus::kAtLower || st == VarStatus::kFree) &&
      reduced < -view.optimality_tol) {
    sign = +1;
    return -reduced;
  }
  if ((st == VarStatus::kAtUpper || st == VarStatus::kFree) &&
      reduced > view.optimality_tol) {
    sign = -1;
    return reduced;
  }
  return 0.0;
}

// ---- PrimalPricer -----------------------------------------------------------

PrimalPricer::PrimalPricer(int n_total, const SimplexOptions& options)
    : n_total_(n_total),
      candidate_list_size_(std::max(8, options.candidate_list_size)),
      gamma_(n_total, 1.0) {}

void PrimalPricer::ResetReference() {
  std::fill(gamma_.begin(), gamma_.end(), 1.0);
  candidates_.clear();
  refill_best_score_ = 0.0;
  minor_iterations_ = 0;
}

// Full scan by Devex score; refills the candidate list with the top scorers
// and returns the best.
PrimalPricer::Choice PrimalPricer::Refill(const PricingView& view) {
  struct Cand {
    double score;
    int j;
    int sign;
  };
  std::vector<Cand> found;
  Choice choice;
  double best = 0.0;
  for (int j = 0; j < n_total_; ++j) {
    int sign = 0;
    const double violation = PriceColumn(view, j, sign);
    if (sign == 0) continue;
    const double score = violation * violation / gamma_[j];
    found.push_back(Cand{score, j, sign});
    if (score > best) {
      best = score;
      choice.entering = j;
      choice.sign = sign;
    }
  }
  const size_t keep = static_cast<size_t>(candidate_list_size_);
  if (found.size() > keep) {
    std::nth_element(
        found.begin(), found.begin() + keep, found.end(),
        [](const Cand& a, const Cand& b) { return a.score > b.score; });
    found.resize(keep);
  }
  candidates_.clear();
  for (const Cand& c : found) candidates_.push_back(c.j);
  refill_best_score_ = best;
  minor_iterations_ = 0;
  return choice;
}

PrimalPricer::Choice PrimalPricer::ChooseEntering(const PricingView& view,
                                                  bool allow_partial,
                                                  bool bland) {
  if (bland) {
    // First improving index — guarantees termination under degeneracy.
    Choice choice;
    for (int j = 0; j < n_total_; ++j) {
      int sign = 0;
      if (PriceColumn(view, j, sign) > 0.0) {
        choice.entering = j;
        choice.sign = sign;
        return choice;
      }
    }
    return choice;
  }
  if (!allow_partial) return Refill(view);

  // Minor iteration: re-price only the candidate list. Refill when the
  // list drains, after candidate_list_size pivots (classic multiple
  // pricing), or when the surviving candidates' scores have decayed to
  // noise next to what the last full scan saw — stale candidates under
  // degeneracy are worse than the O(n) scan they save.
  Choice choice;
  double best = 0.0;
  size_t out = 0;
  for (size_t k = 0; k < candidates_.size(); ++k) {
    const int j = candidates_[k];
    int sign = 0;
    const double violation = PriceColumn(view, j, sign);
    if (sign == 0) continue;
    candidates_[out++] = j;
    const double score = violation * violation / gamma_[j];
    if (score > best) {
      best = score;
      choice.entering = j;
      choice.sign = sign;
    }
  }
  candidates_.resize(out);
  ++minor_iterations_;
  if (choice.entering < 0 || minor_iterations_ >= candidate_list_size_ ||
      best < 0.05 * refill_best_score_) {
    choice = Refill(view);
  }
  return choice;
}

void PrimalPricer::OnPivot(const PricingView& view, int entering,
                           int leaving_var, double pivot,
                           std::span<const int> alpha_touched,
                           const std::vector<SparseAccumCell>& alpha) {
  const double gamma_q = gamma_[entering];
  const double inv_pivot_sq = 1.0 / (pivot * pivot);
  for (int j : alpha_touched) {
    if (view.state[j] == VarStatus::kBasic) continue;
    const double candidate_weight =
        alpha[j].value * alpha[j].value * inv_pivot_sq * gamma_q;
    if (candidate_weight > gamma_[j]) gamma_[j] = candidate_weight;
  }
  gamma_[leaving_var] = std::max(gamma_q * inv_pivot_sq, 1.0);
}

// ---- DualPricer -------------------------------------------------------------

DualPricer::DualPricer(int m, const SimplexOptions& options)
    : devex_(options.dual_pricing == SimplexOptions::DualPricing::kDevex),
      weights_(m, 1.0) {}

void DualPricer::ResetReference() {
  std::fill(weights_.begin(), weights_.end(), 1.0);
}

DualPricer::Leaving DualPricer::ChooseLeaving(
    std::span<const double> x, std::span<const int> basis,
    std::span<const double> lower, std::span<const double> upper) const {
  Leaving leaving;
  double best_score = 0.0;
  const int m = static_cast<int>(basis.size());
  for (int i = 0; i < m; ++i) {
    const int bv = basis[i];
    const double v = x[bv];
    double violation = 0.0;
    bool below = false;
    if (v < lower[bv] - 1e-9 * (1.0 + std::abs(lower[bv]))) {
      below = true;
      violation = lower[bv] - v;
    } else if (v > upper[bv] + 1e-9 * (1.0 + std::abs(upper[bv]))) {
      violation = v - upper[bv];
    } else {
      continue;
    }
    const double score =
        devex_ ? violation * violation / weights_[i] : violation;
    if (score > best_score) {
      best_score = score;
      leaving.slot = i;
      leaving.below = below;
      leaving.violation = violation;
    }
  }
  return leaving;
}

void DualPricer::OnPivot(const SparseVector& direction, int leaving_slot) {
  if (!devex_) return;
  const std::vector<double>& dir = direction.values;
  const double pivot = dir[leaving_slot];
  const double gamma_r = weights_[leaving_slot];
  const double inv_pivot_sq = 1.0 / (pivot * pivot);
  auto bump = [&](int i) {
    if (i == leaving_slot || dir[i] == 0.0) return;
    const double candidate = dir[i] * dir[i] * inv_pivot_sq * gamma_r;
    if (candidate > weights_[i]) weights_[i] = candidate;
  };
  if (direction.pattern_valid) {
    for (int i : direction.pattern) bump(i);
  } else {
    const int m = static_cast<int>(dir.size());
    for (int i = 0; i < m; ++i) bump(i);
  }
  weights_[leaving_slot] = std::max(gamma_r * inv_pivot_sq, 1.0);
}

}  // namespace lp
}  // namespace privsan
