// LP-based branch & bound for mixed / binary integer programs.
//
// This is privsan's stand-in for the exact BIP solvers the paper runs
// (Matlab bintprog, NEOS qsopt_ex / scip): a best-first search on the
// simplex relaxation with most-fractional branching and node / wall-clock
// budgets. On small instances it proves optimality; on D-UMP-sized
// instances the budgets bite and it returns the best incumbent found —
// exactly the regime Table 7 of the paper evaluates.
#ifndef PRIVSAN_LP_BRANCH_AND_BOUND_H_
#define PRIVSAN_LP_BRANCH_AND_BOUND_H_

#include <cstdint>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"

namespace privsan {
namespace lp {

struct BnbOptions {
  SimplexOptions simplex;
  double integrality_tol = 1e-6;
  // Relative optimality gap at which a node is fathomed.
  double gap_tol = 1e-9;
  int64_t max_nodes = 100000;
  double time_limit_seconds = 60.0;
  // Re-solve child nodes from the parent's optimal basis (dual-simplex
  // bound restoration) instead of from scratch.
  bool warm_start = true;
};

struct BnbResult {
  // kOptimal: incumbent proven optimal. kIterationLimit: a budget was hit;
  // `x`/`objective` hold the best incumbent if `has_incumbent`.
  SolveStatus status = SolveStatus::kNumericalFailure;
  bool has_incumbent = false;
  bool proven_optimal = false;
  double objective = 0.0;       // incumbent objective (model sense)
  double best_bound = 0.0;      // dual bound on the true optimum
  std::vector<double> x;        // incumbent point (structural variables)
  int64_t nodes_explored = 0;
  double wall_seconds = 0.0;
  // Aggregate LP effort across all node solves.
  int64_t lp_iterations = 0;
  int64_t lp_dual_iterations = 0;
  int lp_refactorizations = 0;
  // Node LPs that ran from the parent basis (vs cold phase-1 solves).
  int64_t warm_solves = 0;
};

// Solves `model` honoring Variable::is_integer flags. The model must be
// Validate()d. Maximization and minimization both supported.
BnbResult SolveBranchAndBound(const LpModel& model,
                              const BnbOptions& options = {});

}  // namespace lp
}  // namespace privsan

#endif  // PRIVSAN_LP_BRANCH_AND_BOUND_H_
