// LP-based branch & bound for mixed / binary integer programs.
//
// This is privsan's stand-in for the exact BIP solvers the paper runs
// (Matlab bintprog, NEOS qsopt_ex / scip): a best-first search on the
// simplex relaxation with most-fractional branching and node / wall-clock
// budgets. On small instances it proves optimality; on D-UMP-sized
// instances the budgets bite and it returns the best incumbent found —
// exactly the regime Table 7 of the paper evaluates.
#ifndef PRIVSAN_LP_BRANCH_AND_BOUND_H_
#define PRIVSAN_LP_BRANCH_AND_BOUND_H_

#include <cstdint>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"

namespace privsan {
namespace lp {

struct BnbOptions {
  SimplexOptions simplex;
  double integrality_tol = 1e-6;
  // Relative optimality gap at which a node is fathomed.
  double gap_tol = 1e-9;
  int64_t max_nodes = 100000;
  double time_limit_seconds = 60.0;
  // Re-solve child nodes from the parent's optimal basis (dual-simplex
  // bound restoration) instead of from scratch.
  bool warm_start = true;
  // Optional warm-start basis for the root LP — typically the optimal root
  // basis of a structurally identical model solved at a different rhs (a
  // neighbouring (ε, δ) cell in a budget sweep). Not owned; may be null.
  const Basis* root_hint = nullptr;
};

struct BnbResult {
  // kOptimal: incumbent proven optimal. kIterationLimit: a budget was hit;
  // `x`/`objective` hold the best incumbent if `has_incumbent`.
  SolveStatus status = SolveStatus::kNumericalFailure;
  bool has_incumbent = false;
  bool proven_optimal = false;
  double objective = 0.0;       // incumbent objective (model sense)
  double best_bound = 0.0;      // dual bound on the true optimum
  std::vector<double> x;        // incumbent point (structural variables)
  int64_t nodes_explored = 0;
  double wall_seconds = 0.0;
  // Aggregate LP effort across all node solves.
  int64_t lp_iterations = 0;
  int64_t lp_dual_iterations = 0;
  int lp_refactorizations = 0;
  // Singular bases repaired in place across node solves (swap dependent
  // columns for row slacks, lp/simplex.h RepairPolicy).
  int lp_basis_repairs = 0;
  // Node warm starts whose dual repair hit warm_repair_pivot_cap and fell
  // back to a cold solve.
  int64_t repair_aborted = 0;
  // Node LPs that ran from the parent basis (vs cold phase-1 solves).
  int64_t warm_solves = 0;
  // Iterations of the root relaxation alone — the part a `root_hint` from a
  // neighbouring budget cell shrinks (tree totals are not comparable across
  // runs, since a different root vertex reorders the search).
  int64_t root_lp_iterations = 0;
  // Optimal basis of the root relaxation, reusable as `root_hint` for the
  // next solve of a structurally identical model. Empty if the root LP did
  // not reach optimality.
  Basis root_basis;
  // Whether the root LP itself ran from `root_hint`.
  bool root_warm_started = false;
};

// Solves `model` honoring Variable::is_integer flags. The model must be
// Validate()d. Maximization and minimization both supported.
BnbResult SolveBranchAndBound(const LpModel& model,
                              const BnbOptions& options = {});

}  // namespace lp
}  // namespace privsan

#endif  // PRIVSAN_LP_BRANCH_AND_BOUND_H_
