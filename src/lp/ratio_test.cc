#include "lp/ratio_test.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace privsan {
namespace lp {

PrimalRatioChoice PrimalRatioTest(const SparseVector& direction,
                                  int direction_sign, double bound_flip_step,
                                  std::span<const int> basis,
                                  std::span<const double> x,
                                  std::span<const double> lower,
                                  std::span<const double> upper, bool bland,
                                  const SimplexOptions& options) {
  const double kInf = std::numeric_limits<double>::infinity();
  const int m = static_cast<int>(basis.size());
  const std::vector<double>& dir = direction.values;

  // The step at which slot i's basic variable hits a bound; infinity when
  // it never blocks.
  auto row_ratio = [&](int i) -> double {
    const double delta = direction_sign * dir[i];
    const int bv = basis[i];
    if (delta > options.pivot_tol) {
      if (!std::isfinite(lower[bv])) return kInf;
      return std::max((x[bv] - lower[bv]) / delta, 0.0);
    }
    if (delta < -options.pivot_tol) {
      if (!std::isfinite(upper[bv])) return kInf;
      return std::max((upper[bv] - x[bv]) / (-delta), 0.0);
    }
    return kInf;
  };

  // A slot outside the pattern has direction exactly 0.0 and never blocks,
  // so both passes may restrict to the pattern; its ascending order keeps
  // the pass-2 scan order identical to the dense loop.
  const bool sparse = direction.pattern_valid;

  PrimalRatioChoice choice;

  // Pass 1: the tightest blocking step.
  double t_row_min = kInf;
  if (sparse) {
    for (int i : direction.pattern) {
      t_row_min = std::min(t_row_min, row_ratio(i));
    }
  } else {
    for (int i = 0; i < m; ++i) t_row_min = std::min(t_row_min, row_ratio(i));
  }

  if (!std::isfinite(t_row_min) && !std::isfinite(bound_flip_step)) {
    choice.unbounded = true;
    return choice;
  }

  choice.step = bound_flip_step;
  if (t_row_min <= bound_flip_step) {
    // Pass 2 (Harris-style): among the slots within a small tolerance
    // window above the tightest step, prefer the largest pivot magnitude —
    // or the smallest basic index under Bland's rule.
    const double window = t_row_min + std::max(1e-10, 1e-7 * t_row_min);
    double best_pivot = 0.0;
    int best_bv = std::numeric_limits<int>::max();
    auto consider = [&](int i) {
      const double t = row_ratio(i);
      if (t > window) return;
      const double pivot = std::abs(dir[i]);
      const bool take = bland ? basis[i] < best_bv : pivot > best_pivot;
      if (choice.leaving_row < 0 || take) {
        choice.leaving_row = i;
        best_pivot = pivot;
        best_bv = basis[i];
        choice.leaving_at_upper = direction_sign * dir[i] < 0.0;
        choice.step = std::min(t, bound_flip_step);
      }
    };
    if (sparse) {
      for (int i : direction.pattern) consider(i);
    } else {
      for (int i = 0; i < m; ++i) consider(i);
    }
  }
  return choice;
}

DualRatioChoice DualRatioTest(std::span<const int> alpha_touched,
                              const std::vector<SparseAccumCell>& alpha,
                              std::span<const double> reduced_costs,
                              std::span<const VarStatus> state,
                              std::span<const double> lower,
                              std::span<const double> upper, bool below,
                              double violation,
                              const SimplexOptions& options) {
  struct DualCand {
    double ratio;
    double abs_alpha;
    int j;
  };
  std::vector<DualCand> eligible;
  for (int j : alpha_touched) {
    const VarStatus st = state[j];
    if (st == VarStatus::kBasic || lower[j] == upper[j]) continue;
    const double a = alpha[j].value;
    if (std::abs(a) <= options.pivot_tol) continue;
    bool ok;
    if (st == VarStatus::kFree) {
      ok = true;
    } else if (below) {
      // x_B[r] must increase: dx = -a * dt with dt >= 0 from lower
      // (need a < 0) or dt <= 0 from upper (need a > 0).
      ok = st == VarStatus::kAtLower ? a < 0.0 : a > 0.0;
    } else {
      ok = st == VarStatus::kAtLower ? a > 0.0 : a < 0.0;
    }
    if (!ok) continue;
    eligible.push_back(
        DualCand{std::abs(reduced_costs[j]) / std::abs(a), std::abs(a), j});
  }
  DualRatioChoice choice;
  if (eligible.empty()) return choice;  // Farkas: primal infeasible
  std::sort(eligible.begin(), eligible.end(),
            [](const DualCand& a, const DualCand& b) {
              if (a.ratio != b.ratio) return a.ratio < b.ratio;
              return a.abs_alpha > b.abs_alpha;
            });
  double remaining = violation;
  size_t flip_end = 0;  // eligible[0..flip_end) bound-flip
  for (size_t k = 0; k < eligible.size(); ++k) {
    const int j = eligible[k].j;
    const double capacity = state[j] == VarStatus::kFree
                                ? std::numeric_limits<double>::infinity()
                                : eligible[k].abs_alpha * (upper[j] - lower[j]);
    if (capacity < remaining) {
      remaining -= capacity;
      flip_end = k + 1;
    } else {
      choice.entering = j;
      break;
    }
  }
  if (choice.entering < 0) return choice;  // flips alone cannot absorb it
  choice.bound_flips.reserve(flip_end);
  for (size_t k = 0; k < flip_end; ++k) {
    choice.bound_flips.push_back(eligible[k].j);
  }
  return choice;
}

}  // namespace lp
}  // namespace privsan
