// Sparse LU basis factorization with Markowitz pivot ordering.
//
// The eta file (lp/eta_file.h) is a product form of the inverse: every
// factorization eta carries the *whole* transformed column, above and below
// the pivot, and its static column ordering (ascending nonzero count)
// ignores what elimination does to the rows. On the dense "bumps" the UMP
// bases grow into at scale, that fill compounds — FTRAN/BTRAN cost is the
// eta-file nonzero count, so fill is time.
//
// LuFactorization replaces it with a right-looking sparse LU:
//
//   * Markowitz pivot ordering — each elimination step picks the pivot
//     (i, j) minimizing the fill bound (r_i - 1)(c_j - 1) over the active
//     submatrix. Candidate columns come from count-indexed bucket lists
//     (doubly linked, relinked on every count change), so the per-step
//     search costs O(candidates), not O(m) — the whole refactorization is
//     proportional to fill, not dimension.
//   * threshold partial pivoting — a pivot must also satisfy
//     |a_ij| >= markowitz_threshold * max_k |a_kj|, trading a bounded
//     amount of stability for the freedom to chase sparsity,
//   * simplex updates on top of the factors, in one of two forms
//     (LuUpdateKind):
//       - kForrestTomlin (default): the entering column's partial image
//         û = U w replaces its column of U; the leaving row of U becomes a
//         row spike that is eliminated against the later U rows, the
//         multipliers recorded as one *row eta* applied with L. U stays
//         upper triangular (in the maintained step order) and as sparse as
//         the data allows across long pivot runs — per-update cost and
//         growth are both fill-proportional.
//       - kProductForm: each pivot appends one whole-column eta applied
//         after the factors (the eta file's update rule). Retained as the
//         test oracle and fallback.
//
// Solves (B = P^T L U with the permutations carried in the step order):
//   FTRAN  v := B^-1 v :  forward-apply the L multipliers in elimination
//                         order, then the Forrest–Tomlin row etas in
//                         append order, back-substitute U in the current
//                         step order, then the product-form etas;
//   BTRAN  v := B^-T v :  product-form etas reversed, forward-substitute
//                         U^T, the FT row etas transposed in reverse, then
//                         the L multipliers transposed in reverse.
//
// Shares the BasisRep failure contract: a singular Refactorize() leaves
// the previous factorization and `basis` untouched and reports the
// unpivoted rows / dependent columns in singular_info(), which is what
// lets the solver repair the basis in place (lp/simplex.cc) instead of
// cold-solving. A Forrest–Tomlin Update() whose spike pivot is too small
// returns false *without mutating the factors* — the caller refactorizes
// and the representation stays usable throughout.
#ifndef PRIVSAN_LP_LU_FACTORIZATION_H_
#define PRIVSAN_LP_LU_FACTORIZATION_H_

#include <cstddef>
#include <vector>

#include "lp/eta_file.h"
#include "lp/sparse_matrix.h"

namespace privsan {
namespace lp {

// How simplex pivots are folded into an existing LU factorization.
enum class LuUpdateKind {
  kForrestTomlin,  // update U in place + one row eta per pivot (default)
  kProductForm,    // whole-column eta per pivot (oracle / fallback)
};

class LuFactorization : public BasisRep {
 public:
  // `max_updates` / `growth_limit`: the refactorization policy, as in
  // EtaFile (growth is measured as total nonzeros — factors, update fill,
  // and eta entries — against the fresh factors). `markowitz_threshold` in
  // (0, 1]: larger is more stable, smaller is sparser; 0.1 is the textbook
  // default.
  LuFactorization(int max_updates, double growth_limit,
                  double markowitz_threshold = 0.1,
                  LuUpdateKind update_kind = LuUpdateKind::kForrestTomlin)
      : max_updates_(max_updates),
        growth_limit_(growth_limit),
        markowitz_threshold_(markowitz_threshold),
        update_kind_(update_kind) {}

  bool Refactorize(const SparseMatrix& A, std::vector<int>& basis) override;
  void Ftran(std::vector<double>& v) const override;
  void Btran(std::vector<double>& v) const override;
  bool Update(const std::vector<double>& w, int slot,
              double pivot_tol) override;
  int updates_since_refactor() const override { return updates_; }
  bool ShouldRefactor() const override;
  size_t nonzeros() const override { return total_nonzeros(); }

  LuUpdateKind update_kind() const { return update_kind_; }

  // Nonzeros of the fresh L + U factors (the fill the Markowitz ordering
  // minimizes; excludes any update bookkeeping).
  size_t factor_nonzeros() const { return l_nnz_ + fresh_u_nnz_; }
  // Current nonzeros of U alone, including Forrest–Tomlin update fill —
  // the quantity whose growth the FT update is built to contain.
  size_t u_nonzeros() const { return u_nnz_; }
  // Everything FTRAN/BTRAN actually traverse: L, current U, FT row etas,
  // and product-form update etas.
  size_t total_nonzeros() const {
    return l_nnz_ + u_nnz_ + ft_nnz_ + updates_seq_.nonzeros();
  }

 private:
  // One elimination step's L column: v[row] -= multiplier * v[pivot_row].
  struct LStep {
    int pivot_row = 0;
    std::vector<SparseEntry> multipliers;  // (row, l_row) below the pivot
  };
  // One elimination step's U row. Entries point at the pivot *rows* of the
  // steps owning those columns (translated once at factorization end), so
  // both substitution passes index the work vector directly.
  struct URow {
    int pivot_row = 0;
    double pivot = 0.0;
    std::vector<SparseEntry> entries;  // (pivot_row of owning step, u)
  };
  // One Forrest–Tomlin row elimination, applied with (after) L:
  //   FTRAN: v[row] -= sum terms.value * v[terms.index]
  //   BTRAN: v[terms.index] -= terms.value * v[row]   (transposed, reversed)
  struct RowEta {
    int row = 0;
    std::vector<SparseEntry> terms;  // (pivot_row of eliminating U row, r)
  };

  bool UpdateForrestTomlin(const std::vector<double>& w, int slot,
                           double pivot_tol);

  int m_ = 0;
  std::vector<LStep> lsteps_;   // in elimination order
  std::vector<URow> urows_;     // in *current* step order (FT reorders)
  std::vector<int> row_pos_;    // pivot_row -> position in urows_
  std::vector<RowEta> ft_etas_; // Forrest–Tomlin row etas, append order
  // Column occupancy of U, keyed by the owning step's pivot_row: which
  // rows (by their pivot_row) hold a nonzero in that column. May carry
  // stale listings after a row is replaced — consumers re-validate against
  // the row data — but never misses a live entry, so the FT update deletes
  // the leaving column in O(column) instead of scanning U.
  std::vector<std::vector<int>> u_col_rows_;
  size_t l_nnz_ = 0;
  size_t fresh_u_nnz_ = 0;  // U nonzeros right after Refactorize()
  size_t u_nnz_ = 0;        // current U nonzeros (tracks FT fill)
  size_t ft_nnz_ = 0;       // row-eta terms
  EtaSequence updates_seq_; // product-form updates (kProductForm only)
  int updates_ = 0;
  int max_updates_;
  double growth_limit_;
  double markowitz_threshold_;
  LuUpdateKind update_kind_;

  // Update-path scratch, sized at Refactorize (avoids per-pivot allocation).
  mutable std::vector<double> uhat_;
  mutable std::vector<double> spike_;
  // Forrest–Tomlin FTRAN memo: the partial image (after L and the row
  // etas, before U back-substitution) and the final result of recent
  // Ftran() calls. When Update()'s w matches a slot's result element for
  // element, that slot's partial IS the û the update needs — recovered
  // for free instead of by an O(nnz(U)) product. Two slots, written round
  // robin: the dual simplex FTRANs its combined bound-flip delta between
  // the entering column's FTRAN and the Update, so a single-slot memo
  // would miss on exactly the warm-start repair iterations that matter.
  // No match anywhere falls back to computing U w directly.
  mutable std::vector<double> ftran_partial_[2];
  mutable std::vector<double> ftran_result_[2];
  mutable int ftran_slot_ = 0;
};

}  // namespace lp
}  // namespace privsan

#endif  // PRIVSAN_LP_LU_FACTORIZATION_H_
