// Sparse LU basis factorization with Markowitz pivot ordering.
//
// The eta file (lp/eta_file.h) is a product form of the inverse: every
// factorization eta carries the *whole* transformed column, above and below
// the pivot, and its static column ordering (ascending nonzero count)
// ignores what elimination does to the rows. On the dense "bumps" the UMP
// bases grow into at scale, that fill compounds — FTRAN/BTRAN cost is the
// eta-file nonzero count, so fill is time.
//
// LuFactorization replaces it with a right-looking sparse LU:
//
//   * Markowitz pivot ordering — each elimination step picks the pivot
//     (i, j) minimizing the fill bound (r_i - 1)(c_j - 1) over the active
//     submatrix. Candidate columns come from count-indexed bucket lists
//     (doubly linked, relinked on every count change), so the per-step
//     search costs O(candidates), not O(m) — the whole refactorization is
//     proportional to fill, not dimension.
//   * threshold partial pivoting — a pivot must also satisfy
//     |a_ij| >= markowitz_threshold * max_k |a_kj|, trading a bounded
//     amount of stability for the freedom to chase sparsity,
//   * simplex updates on top of the factors, in one of two forms
//     (LuUpdateKind):
//       - kForrestTomlin (default): the entering column's partial image
//         û = U w replaces its column of U; the leaving row of U becomes a
//         row spike that is eliminated against the later U rows, the
//         multipliers recorded as one *row eta* applied with L. U stays
//         upper triangular (in the maintained step order) and as sparse as
//         the data allows across long pivot runs — per-update cost and
//         growth are both fill-proportional.
//       - kProductForm: each pivot appends one whole-column eta applied
//         after the factors (the eta file's update rule). Retained as the
//         test oracle and fallback.
//
// Solves (B = P^T L U with the permutations carried in the step order):
//   FTRAN  v := B^-1 v :  forward-apply the L multipliers in elimination
//                         order, then the Forrest–Tomlin row etas in
//                         append order, back-substitute U in the current
//                         step order, then the product-form etas;
//   BTRAN  v := B^-T v :  product-form etas reversed, forward-substitute
//                         U^T, the FT row etas transposed in reverse, then
//                         the L multipliers transposed in reverse.
//
// When the right-hand side carries a nonzero pattern (SparseVector), the
// FtranSparse/BtranSparse overrides run each of those four halves
// hyper-sparsely (Gilbert–Peierls): a symbolic reach over the static
// factor graphs finds the entries the solve can touch, the numeric pass
// applies only those, and the cost of a near-unit rho is the fill it
// creates, not m. See the member documentation below for the bit-identity
// contract with the dense kernels.
//
// Shares the BasisRep failure contract: a singular Refactorize() leaves
// the previous factorization and `basis` untouched and reports the
// unpivoted rows / dependent columns in singular_info(), which is what
// lets the solver repair the basis in place (lp/simplex.cc) instead of
// cold-solving. A Forrest–Tomlin Update() whose spike pivot is too small
// returns false *without mutating the factors* — the caller refactorizes
// and the representation stays usable throughout.
#ifndef PRIVSAN_LP_LU_FACTORIZATION_H_
#define PRIVSAN_LP_LU_FACTORIZATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lp/eta_file.h"
#include "lp/sparse_matrix.h"

namespace privsan {
namespace lp {

// How simplex pivots are folded into an existing LU factorization.
enum class LuUpdateKind {
  kForrestTomlin,  // update U in place + one row eta per pivot (default)
  kProductForm,    // whole-column eta per pivot (oracle / fallback)
};

class LuFactorization : public BasisRep {
 public:
  // `max_updates` / `growth_limit`: the refactorization policy, as in
  // EtaFile (growth is measured as total nonzeros — factors, update fill,
  // and eta entries — against the fresh factors). `markowitz_threshold` in
  // (0, 1]: larger is more stable, smaller is sparser; 0.1 is the textbook
  // default. `hypersparse_threshold`: FtranSparse/BtranSparse abandon the
  // Gilbert–Peierls reach for a dense factor pass once the reach set grows
  // past this fraction of m (0 disables the sparse kernel entirely).
  LuFactorization(int max_updates, double growth_limit,
                  double markowitz_threshold = 0.1,
                  LuUpdateKind update_kind = LuUpdateKind::kForrestTomlin,
                  double hypersparse_threshold = 0.1)
      : max_updates_(max_updates),
        growth_limit_(growth_limit),
        markowitz_threshold_(markowitz_threshold),
        hypersparse_threshold_(hypersparse_threshold),
        update_kind_(update_kind) {}

  bool Refactorize(const SparseMatrix& A, std::vector<int>& basis) override;
  void Ftran(std::vector<double>& v) const override;
  void Btran(std::vector<double>& v) const override;
  bool Update(const std::vector<double>& w, int slot,
              double pivot_tol) override;
  // Gilbert–Peierls hyper-sparse solves: a symbolic reach pass over the
  // static factor dependency graphs (seeded by v's nonzero pattern) finds
  // every entry the solve can touch, then the numeric pass applies exactly
  // the dense kernel's updates restricted to that reach, in the dense
  // kernel's order — results match Ftran/Btran bit for bit (the only
  // permitted divergence is the sign of exact zeros, which operator==
  // ignores). Falls back per factor half once the reach exceeds
  // hypersparse_threshold * m; the pattern is invalidated from that point
  // on and the call counts as a miss in kernel_stats().
  void FtranSparse(SparseVector& v) const override;
  void BtranSparse(SparseVector& v) const override;
  // Forrest–Tomlin update that exploits w's pattern: the memo comparison,
  // û recovery, and the spread of û over the surviving U rows all run over
  // the pattern instead of m. Bit-identical to Update(w.values, ...).
  bool UpdateSparse(const SparseVector& w, int slot,
                    double pivot_tol) override;
  KernelStats kernel_stats() const override { return kstats_; }
  int updates_since_refactor() const override { return updates_; }
  bool ShouldRefactor() const override;
  size_t nonzeros() const override { return total_nonzeros(); }

  LuUpdateKind update_kind() const { return update_kind_; }

  // Nonzeros of the fresh L + U factors (the fill the Markowitz ordering
  // minimizes; excludes any update bookkeeping).
  size_t factor_nonzeros() const { return l_nnz_ + fresh_u_nnz_; }
  // Current nonzeros of U alone, including Forrest–Tomlin update fill —
  // the quantity whose growth the FT update is built to contain.
  size_t u_nonzeros() const { return u_nnz_; }
  // Everything FTRAN/BTRAN actually traverse: L, current U, FT row etas,
  // and product-form update etas.
  size_t total_nonzeros() const {
    return l_nnz_ + u_nnz_ + ft_nnz_ + updates_seq_.nonzeros();
  }

 private:
  // One elimination step's L column: v[row] -= multiplier * v[pivot_row].
  struct LStep {
    int pivot_row = 0;
    std::vector<SparseEntry> multipliers;  // (row, l_row) below the pivot
  };
  // One elimination step's U row. Entries point at the pivot *rows* of the
  // steps owning those columns (translated once at factorization end), so
  // both substitution passes index the work vector directly.
  struct URow {
    int pivot_row = 0;
    double pivot = 0.0;
    std::vector<SparseEntry> entries;  // (pivot_row of owning step, u)
  };
  // One Forrest–Tomlin row elimination, applied with (after) L:
  //   FTRAN: v[row] -= sum terms.value * v[terms.index]
  //   BTRAN: v[terms.index] -= terms.value * v[row]   (transposed, reversed)
  struct RowEta {
    int row = 0;
    std::vector<SparseEntry> terms;  // (pivot_row of eliminating U row, r)
  };

  // `w_pattern` non-null: the caller vouches that every nonzero of w is
  // listed in it (sorted, duplicate-free) and everything outside is +0.0.
  bool UpdateForrestTomlin(const std::vector<double>& w,
                           const std::vector<int>* w_pattern, int slot,
                           double pivot_tol);

  // Reach-set ceiling for the sparse solves (hypersparse_threshold * m).
  size_t ReachBound() const;
  // Adaptive hyper-sparsity detection: after kSparseDormancyMisses
  // consecutive density fallbacks the symbolic pass is suspended — a
  // basis whose dependency graph percolates caps out on every solve, and
  // walking ReachBound() edges just to discover that again is the one way
  // the sparse kernel can *lose* to the dense one. Suspended solves go
  // straight dense (still counted as misses in kernel_stats()), except
  // every kSparseProbeInterval-th, which re-probes so a basis drifting
  // back into hyper-sparsity (e.g. after bound flips empty the work
  // vectors) reactivates the kernel. Any hit resets the streak.
  bool SparseDormant() const {
    if (sparse_miss_streak_ < kSparseDormancyMisses) return false;
    return ++dormant_clock_ % kSparseProbeInterval != 0;
  }
  // True when `i` was marked in the current reach epoch.
  bool Marked(int i) const { return mark_[i] == mark_epoch_; }
  // Marks `i` and appends it to the reach list if not already present.
  void Visit(int i) const {
    if (mark_[i] != mark_epoch_) {
      mark_[i] = mark_epoch_;
      reach_.push_back(i);
    }
  }
  // Stores `x` restricted to `pattern` into a memo slot in O(|patterns|),
  // or the whole vector when `sparse` is false.
  void StoreMemo(SparseVector& memo, const std::vector<double>& x,
                 bool sparse) const;
  // Whether memo (a previous FTRAN result) equals w element for element —
  // compared over the union of patterns when both are valid.
  static bool MemoMatches(const SparseVector& memo,
                          const std::vector<double>& w,
                          const std::vector<int>* w_pattern);

  int m_ = 0;
  std::vector<LStep> lsteps_;   // in elimination order
  std::vector<URow> urows_;     // in *current* step order (FT reorders)
  std::vector<int> row_pos_;    // pivot_row -> position in urows_
  std::vector<RowEta> ft_etas_; // Forrest–Tomlin row etas, append order
  // Static L adjacency for the Gilbert–Peierls reach (rebuilt per
  // Refactorize; FT updates never touch L):
  //   l_step_of_row_ : pivot row -> its elimination step (a bijection)
  //   l_row_steps_   : row -> the steps carrying it as a multiplier, in
  //                    ascending step order (each strictly before the
  //                    row's own step — BTRAN's Lᵀ reach walks these).
  std::vector<int> l_step_of_row_;
  std::vector<std::vector<int>> l_row_steps_;
  // Column occupancy of U, keyed by the owning step's pivot_row: which
  // rows (by their pivot_row) hold a nonzero in that column. May carry
  // stale listings after a row is replaced — consumers re-validate against
  // the row data — but never misses a live entry, so the FT update deletes
  // the leaving column in O(column) instead of scanning U.
  std::vector<std::vector<int>> u_col_rows_;
  size_t l_nnz_ = 0;
  size_t fresh_u_nnz_ = 0;  // U nonzeros right after Refactorize()
  size_t u_nnz_ = 0;        // current U nonzeros (tracks FT fill)
  size_t ft_nnz_ = 0;       // row-eta terms
  EtaSequence updates_seq_; // product-form updates (kProductForm only)
  int updates_ = 0;
  int max_updates_;
  double growth_limit_;
  double markowitz_threshold_;
  double hypersparse_threshold_;
  LuUpdateKind update_kind_;

  // Update-path scratch, sized at Refactorize (avoids per-pivot
  // allocation). uhat_ is all-zeros between updates so a memo-hit update
  // can spread û over just its pattern; uhat_pat_ remembers which entries
  // to re-zero on exit.
  mutable std::vector<double> uhat_;
  mutable std::vector<int> uhat_pat_;
  mutable std::vector<double> spike_;
  // Reach scratch for the sparse solves: an epoch-stamped mark array
  // (Marked == "row is in the current pattern") and the worklist that
  // doubles as the accumulated pattern. Bumping mark_epoch_ clears every
  // mark in O(1).
  mutable std::vector<int64_t> mark_;
  mutable int64_t mark_epoch_ = 0;
  mutable std::vector<int> reach_;
  mutable KernelStats kstats_;
  // Dormancy state (see SparseDormant); deliberately survives
  // Refactorize — the reach is a property of the basis structure, which
  // refactorization does not change.
  static constexpr int kSparseDormancyMisses = 16;
  static constexpr uint64_t kSparseProbeInterval = 64;
  mutable int sparse_miss_streak_ = 0;
  mutable uint64_t dormant_clock_ = 0;
  // Forrest–Tomlin FTRAN memo: the partial image (after L and the row
  // etas, before U back-substitution) and the final result of recent
  // Ftran() calls. When Update()'s w matches a slot's result element for
  // element, that slot's partial IS the û the update needs — recovered
  // for free instead of by an O(nnz(U)) product. Two slots, written round
  // robin: the dual simplex FTRANs its combined bound-flip delta between
  // the entering column's FTRAN and the Update, so a single-slot memo
  // would miss on exactly the warm-start repair iterations that matter.
  // No match anywhere falls back to computing U w directly. Sparse FTRANs
  // store pattern-restricted copies, keeping the memo maintenance — like
  // everything else on the hyper-sparse path — fill-proportional.
  mutable SparseVector ftran_partial_[2];
  mutable SparseVector ftran_result_[2];
  mutable int ftran_slot_ = 0;
};

}  // namespace lp
}  // namespace privsan

#endif  // PRIVSAN_LP_LU_FACTORIZATION_H_
