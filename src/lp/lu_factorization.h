// Sparse LU basis factorization with Markowitz pivot ordering.
//
// The eta file (lp/eta_file.h) is a product form of the inverse: every
// factorization eta carries the *whole* transformed column, above and below
// the pivot, and its static column ordering (ascending nonzero count)
// ignores what elimination does to the rows. On the dense "bumps" the UMP
// bases grow into at scale, that fill compounds — FTRAN/BTRAN cost is the
// eta-file nonzero count, so fill is time.
//
// LuFactorization replaces it with a right-looking sparse LU:
//
//   * Markowitz pivot ordering — each elimination step picks the pivot
//     (i, j) minimizing the fill bound (r_i - 1)(c_j - 1) over the active
//     submatrix (candidate columns searched in ascending column count),
//   * threshold partial pivoting — a pivot must also satisfy
//     |a_ij| >= markowitz_threshold * max_k |a_kj|, trading a bounded
//     amount of stability for the freedom to chase sparsity,
//   * product-form updates on top of the factors — each simplex pivot
//     appends one eta to a sequence applied after L/U in FTRAN (and before
//     them, reversed, in BTRAN), exactly the eta file's update rule, so
//     the two representations stay drop-in interchangeable.
//
// Solves (B = P^T L U with the permutations carried in the step order):
//   FTRAN  v := B^-1 v :  forward-apply the L multipliers in elimination
//                         order, back-substitute U in reverse order, then
//                         the update etas;
//   BTRAN  v := B^-T v :  update etas reversed, forward-substitute U^T,
//                         then the L multipliers transposed in reverse.
//
// Shares the BasisRep failure contract: a singular Refactorize() leaves
// the previous factorization and `basis` untouched and reports the
// unpivoted rows / dependent columns in singular_info(), which is what
// lets the solver repair the basis in place (lp/simplex.cc) instead of
// cold-solving.
#ifndef PRIVSAN_LP_LU_FACTORIZATION_H_
#define PRIVSAN_LP_LU_FACTORIZATION_H_

#include <cstddef>
#include <vector>

#include "lp/eta_file.h"
#include "lp/sparse_matrix.h"

namespace privsan {
namespace lp {

class LuFactorization : public BasisRep {
 public:
  // `max_updates` / `growth_limit`: the refactorization policy, as in
  // EtaFile (growth is measured as total nonzeros — factors plus update
  // etas — against the fresh factors). `markowitz_threshold` in (0, 1]:
  // larger is more stable, smaller is sparser; 0.1 is the textbook default.
  LuFactorization(int max_updates, double growth_limit,
                  double markowitz_threshold = 0.1)
      : max_updates_(max_updates),
        growth_limit_(growth_limit),
        markowitz_threshold_(markowitz_threshold) {}

  bool Refactorize(const SparseMatrix& A, std::vector<int>& basis) override;
  void Ftran(std::vector<double>& v) const override;
  void Btran(std::vector<double>& v) const override;
  bool Update(const std::vector<double>& w, int slot,
              double pivot_tol) override;
  int updates_since_refactor() const override { return updates_; }
  bool ShouldRefactor() const override;

  // Nonzeros of the L + U factors alone (the fill the Markowitz ordering
  // minimizes; excludes update etas).
  size_t factor_nonzeros() const { return factor_nnz_; }
  // Factors plus the update etas — what FTRAN/BTRAN actually traverse.
  size_t total_nonzeros() const { return factor_nnz_ + updates_seq_.nonzeros(); }

 private:
  // One elimination step's L column: v[row] -= multiplier * v[pivot_row].
  struct LStep {
    int pivot_row = 0;
    std::vector<SparseEntry> multipliers;  // (row, l_row) below the pivot
  };
  // One elimination step's U row. Entries point at the pivot *rows* of the
  // later steps owning those columns (translated once at factorization
  // end), so both substitution passes index the work vector directly.
  struct URow {
    int pivot_row = 0;
    double pivot = 0.0;
    std::vector<SparseEntry> entries;  // (pivot_row of owning step, u)
  };

  int m_ = 0;
  std::vector<LStep> lsteps_;  // in elimination order
  std::vector<URow> urows_;    // in elimination order
  size_t factor_nnz_ = 0;
  EtaSequence updates_seq_;    // product-form updates on top of the factors
  int updates_ = 0;
  int max_updates_;
  double growth_limit_;
  double markowitz_threshold_;
};

}  // namespace lp
}  // namespace privsan

#endif  // PRIVSAN_LP_LU_FACTORIZATION_H_
