// Histogram views over a SearchLog, in the paper's vocabulary (Section 3.2):
//
//   * QueryUrlHistogram      — the input counts {c_ij} plus |D|;
//   * OutputCounts           — the decision vector {x_ij} of a UMP, with
//                              |O| = sum x_ij;
//   * TripletHistogramView   — per-pair (user, count) rows {c_ijk}.
//
// These are thin, copy-light adapters; SearchLog owns the storage.
#ifndef PRIVSAN_LOG_HISTOGRAM_H_
#define PRIVSAN_LOG_HISTOGRAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "log/search_log.h"
#include "util/result.h"

namespace privsan {

// The input query-url histogram {c_ij} with its total |D|.
struct QueryUrlHistogram {
  std::vector<uint64_t> counts;  // indexed by PairId
  uint64_t total = 0;            // |D|

  static QueryUrlHistogram FromLog(const SearchLog& log);

  double Support(PairId p) const {
    return static_cast<double>(counts[p]) / static_cast<double>(total);
  }
};

// The output query-url histogram {x_ij} produced by a UMP solver.
struct OutputCounts {
  std::vector<uint64_t> counts;  // indexed by PairId of the *input* log
  uint64_t total = 0;            // |O|

  static OutputCounts FromVector(std::vector<uint64_t> x);

  double Support(PairId p) const {
    return total == 0 ? 0.0
                      : static_cast<double>(counts[p]) /
                            static_cast<double>(total);
  }
};

// Per-pair view of the triplet histogram {c_ijk}.
class TripletHistogramView {
 public:
  explicit TripletHistogramView(const SearchLog& log) : log_(&log) {}

  std::span<const UserCount> Row(PairId p) const { return log_->TripletsOf(p); }
  uint64_t RowTotal(PairId p) const { return log_->pair_total(p); }
  size_t num_pairs() const { return log_->num_pairs(); }

  // The multinomial trial probabilities for pair p: c_ijk / c_ij, aligned
  // with Row(p).
  std::vector<double> TrialProbabilities(PairId p) const;

 private:
  const SearchLog* log_;
};

}  // namespace privsan

#endif  // PRIVSAN_LOG_HISTOGRAM_H_
