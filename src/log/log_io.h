// TSV serialization of search logs.
//
// File format (one click-through tuple per line, tab-separated):
//   user_id <TAB> query <TAB> url <TAB> count
// Lines starting with '#' are comments. Duplicate (user, query, url) rows
// are summed on read, matching SearchLogBuilder semantics.
#ifndef PRIVSAN_LOG_LOG_IO_H_
#define PRIVSAN_LOG_LOG_IO_H_

#include <string>

#include "log/search_log.h"
#include "util/result.h"

namespace privsan {

Status WriteSearchLogTsv(const SearchLog& log, const std::string& path);

Result<SearchLog> ReadSearchLogTsv(const std::string& path);

}  // namespace privsan

#endif  // PRIVSAN_LOG_LOG_IO_H_
